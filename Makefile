GO ?= go

.PHONY: build test race vet fuzz bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the NDJSON codec (regression corpus + 10s each).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzImportPings -fuzztime=10s ./internal/atlasfmt/
	$(GO) test -run=NONE -fuzz=FuzzImportTraces -fuzztime=10s ./internal/atlasfmt/
	$(GO) test -run=NONE -fuzz=FuzzReadPingsCSV -fuzztime=10s ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzReadTracesJSONL -fuzztime=10s ./internal/dataset/

# Full benchmark suite with allocation stats, including the store
# fan-out/merge and the serve cached-vs-cold comparison.
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# verify is the pre-merge gate: static analysis plus the full suite
# under the race detector.
verify: vet race
