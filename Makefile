GO ?= go

.PHONY: build test race vet lint lint-json fuzz fuzz-smoke bench bench-obs bench-obs-smoke bench-serve bench-serve-smoke bench-wire bench-wire-smoke bench-segment bench-segment-smoke chaos-smoke verify

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order so
# order-dependent tests surface instead of passing by accident.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# lint is the repo-specific determinism & concurrency pass — the
# determinism analyzers (norawtime, noglobalrand, floateq,
# uncheckederr, ctxpropagate, storeappend) plus the flow-aware set
# built on the internal CFG (spanend, goroutineleak, lockheld,
# frameexhaustive, metricname; DESIGN.md §13). Findings exit nonzero;
# grandfathered counts live in lint.baseline (currently empty).
lint:
	$(GO) run ./cmd/cloudyvet ./...

# lint-json is the CI-facing variant: same run, findings as a JSON
# array for the GitHub annotation step.
lint-json:
	$(GO) run ./cmd/cloudyvet -json ./...

race:
	$(GO) test -race -shuffle=on ./...

# Short fuzz pass over the text and binary codecs (regression corpus +
# 10s each).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzImportPings -fuzztime=10s ./internal/atlasfmt/
	$(GO) test -run=NONE -fuzz=FuzzImportTraces -fuzztime=10s ./internal/atlasfmt/
	$(GO) test -run=NONE -fuzz=FuzzReadPingsCSV -fuzztime=10s ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzReadTracesJSONL -fuzztime=10s ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzWireDecode -fuzztime=10s ./internal/wirecodec/
	$(GO) test -run=NONE -fuzz=FuzzSegmentDecode -fuzztime=10s -fuzzminimizetime=1x ./internal/segment/
	$(GO) test -run=NONE -fuzz=FuzzSketchMerge -fuzztime=10s -fuzzminimizetime=1x ./internal/sketch/

# fuzz-smoke is the pre-merge slice of the fuzz pass: 2s per codec
# target, enough to replay the corpus and shake out shallow regressions
# on every verify run. The segment/sketch targets cap minimization at
# one exec: their seeds are whole ~100 KB segment images, and default
# minimization would stall for a minute per interesting input.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzImportPings -fuzztime=2s ./internal/atlasfmt/
	$(GO) test -run=NONE -fuzz=FuzzImportTraces -fuzztime=2s ./internal/atlasfmt/
	$(GO) test -run=NONE -fuzz=FuzzReadPingsCSV -fuzztime=2s ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzReadTracesJSONL -fuzztime=2s ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzWireDecode -fuzztime=2s ./internal/wirecodec/
	$(GO) test -run=NONE -fuzz=FuzzSegmentDecode -fuzztime=2s -fuzzminimizetime=1x ./internal/segment/
	$(GO) test -run=NONE -fuzz=FuzzSketchMerge -fuzztime=2s -fuzzminimizetime=1x ./internal/sketch/

# Full benchmark suite with allocation stats, including the store
# fan-out/merge and the serve cached-vs-cold comparison.
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# Observability overhead: the full spine (campaign → feed → seal) bare
# vs instrumented. Reference numbers live in BENCH_obs.json; the
# instrumented run must stay within ~5% of the bare one.
bench-obs:
	$(GO) test -run=NONE -bench=BenchmarkObsOverhead -benchtime=5x -count=3 ./internal/obs/

# CI smoke slice: one iteration per case, just proving the instrumented
# spine runs end to end.
bench-obs-smoke:
	$(GO) test -run=NONE -bench=BenchmarkObsOverhead -benchtime=1x ./internal/obs/

# Serving-path latency under load: the loadgen harness sweeps
# concurrency levels against an in-process server, hedging off vs on,
# over a cache-busting endpoint mix. Reference numbers (p99 vs
# concurrency) live in BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/cloudy loadgen -scale 0.05 -cycles 2 -clients 8,64,256 -requests 200 -out BENCH_serve.json

# CI smoke slice: one small cell per hedge mode, just proving the
# harness drives the admission/hedging/swap stack end to end.
bench-serve-smoke:
	$(GO) run ./cmd/cloudy loadgen -scale 0.02 -cycles 1 -clients 8 -requests 25

# Wire codec vs NDJSON on real campaign records; the acceptance floor
# is a 2x encode+decode speedup. Reference numbers live in
# BENCH_wire.json.
bench-wire:
	$(GO) run ./cmd/cloudy benchwire -scale 0.02 -cycles 1 -iters 5 -out BENCH_wire.json

# CI smoke slice: one pass per codec, no report file.
bench-wire-smoke:
	$(GO) run ./cmd/cloudy benchwire -scale 0.02 -cycles 1 -iters 1

# Columnar segment format vs the in-memory streaming build it
# complements: build/write/mmap-open timing, per-endpoint query latency
# exact vs sketch, the 100x single-group sketch probe (must stay
# sub-ms) and sketch-vs-exact error quantiles. Reference numbers live
# in BENCH_segment.json; the streaming-build baseline lives in
# BENCH_streaming.json.
bench-segment:
	$(GO) run ./cmd/cloudy benchsegment -rows 200000 -iters 9 -out BENCH_segment.json

# CI smoke slice: small row count, two reps per cell, no report file —
# just proving write → mmap → every endpoint answers in both modes.
bench-segment-smoke:
	$(GO) run ./cmd/cloudy benchsegment -rows 20000 -iters 2

# Worker-kill chaos test under the race detector: one worker of three
# dies mid-stream, its shard must be reassigned and the merged store
# must seal bit-identical to the single-process run.
chaos-smoke:
	$(GO) test -race -run 'TestChaosWorkerKilledMidSweep|TestChaosWindowedReplay' -count=1 ./internal/cluster/

# verify is the pre-merge gate: generic static analysis (vet), the
# repo-specific determinism/concurrency lint (cloudyvet), the full
# shuffled suite under the race detector, and a fuzz smoke pass over
# the codec corpus.
verify: vet lint race fuzz-smoke
