// Ablation experiments: DESIGN.md calls out three modelling decisions
// that carry the paper's findings — the providers' private WANs, the
// direct-peering fabric, and the platforms' probe-deployment skews.
// Each ablation disables one and checks (and benchmarks) that the
// corresponding finding disappears, which is the strongest evidence the
// reproduction's shapes come from the modelled mechanism rather than
// from accident.
package cloudy_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/stats"
	"repro/internal/world"
)

// ablationRun is one campaign under a variant configuration.
type ablationRun struct {
	store     *dataset.Store
	processed []pipeline.Processed
	w         *world.World
}

func runVariant(worldCfg world.Config, simTweak func(*netsim.Simulator), probeCfg probes.Config) ablationRun {
	w := world.MustBuild(worldCfg)
	sim := netsim.New(w)
	if simTweak != nil {
		simTweak(sim)
	}
	fleet := probes.GenerateSpeedchecker(w, probeCfg)
	cfg := measure.Config{
		Seed: 9, Cycles: 3, ProbesPerCountry: 25, TargetsPerProbe: 6,
		MinProbesPerCountry: 2, RequestsPerMinute: 1000, Workers: 8,
		BothPingProtocols: measure.FlagOn, Traceroutes: true, NeighborContinentTargets: true,
	}
	campaign, err := measure.New(sim, fleet, cfg)
	if err != nil {
		panic(err)
	}
	store, _, err := campaign.Run(context.Background())
	if err != nil {
		panic(err)
	}
	return ablationRun{store: store, processed: pipeline.NewProcessor(w).ProcessAll(store), w: w}
}

var (
	baselineOnce sync.Once
	baselineRun  ablationRun
)

func baseline() ablationRun {
	baselineOnce.Do(func() {
		baselineRun = runVariant(world.Config{Seed: 9}, nil, probes.Config{Seed: 9, Scale: 0.04})
	})
	return baselineRun
}

// jpIndiaPools extracts the JP→IN direct and transit RTT pools.
func jpIndiaPools(run ablationRun) (direct, transit []float64) {
	for i := range run.processed {
		p := &run.processed[i]
		if p.Record.VP.Country != "JP" || p.Record.Target.Country != "IN" ||
			p.EndToEndRTTms <= 0 || p.Class == pipeline.ClassUnknown {
			continue
		}
		if p.Class == pipeline.ClassDirect || p.Class == pipeline.ClassDirectIXP {
			direct = append(direct, p.EndToEndRTTms)
		} else {
			transit = append(transit, p.EndToEndRTTms)
		}
	}
	return
}

// TestAblationPrivateWAN: with the providers' private backbones
// disabled, direct peering loses its tail-taming effect on the long
// Asian routes (Fig 13b's mechanism).
func TestAblationPrivateWAN(t *testing.T) {
	base := baseline()
	ablated := runVariant(world.Config{Seed: 9},
		func(s *netsim.Simulator) { s.DisablePrivateWAN = true },
		probes.Config{Seed: 9, Scale: 0.04})

	bd, bt := jpIndiaPools(base)
	ad, at := jpIndiaPools(ablated)
	if len(bd) < 20 || len(bt) < 20 || len(ad) < 20 || len(at) < 20 {
		t.Skipf("thin pools: base %d/%d, ablated %d/%d", len(bd), len(bt), len(ad), len(at))
	}
	bdBox, _ := stats.Summarize(bd)
	btBox, _ := stats.Summarize(bt)
	adBox, _ := stats.Summarize(ad)
	atBox, _ := stats.Summarize(at)

	baseAdvantage := btBox.IQR() - bdBox.IQR()
	ablatedAdvantage := atBox.IQR() - adBox.IQR()
	if baseAdvantage <= 0 {
		t.Fatalf("baseline lost the Fig 13b effect: direct IQR %.1f vs transit %.1f", bdBox.IQR(), btBox.IQR())
	}
	if ablatedAdvantage > baseAdvantage*0.6 {
		t.Errorf("without private WANs the tail advantage should collapse: base %.1f ms, ablated %.1f ms",
			baseAdvantage, ablatedAdvantage)
	}
	// And direct medians should rise without the private backbone.
	if adBox.Median <= bdBox.Median {
		t.Errorf("ablated direct median %.0f should exceed baseline %.0f", adBox.Median, bdBox.Median)
	}
}

// TestAblationPeeringFabric: with every pair forced onto the public
// Internet, Figure 10 flattens — no provider has a direct majority.
func TestAblationPeeringFabric(t *testing.T) {
	ablated := runVariant(world.Config{Seed: 9, ForcePublicPeering: true}, nil,
		probes.Config{Seed: 9, Scale: 0.04})
	shares := analysis.Interconnections(ablated.processed)
	if len(shares) == 0 {
		t.Fatal("no interconnection shares")
	}
	for _, s := range shares {
		if s.DirectPct > 10 {
			t.Errorf("%s: direct %.1f%% despite force-public ablation", s.Provider, s.DirectPct)
		}
		if s.MultiASPct < 50 {
			t.Errorf("%s: 2+AS only %.1f%% under force-public", s.Provider, s.MultiASPct)
		}
	}
	// The baseline, by contrast, has hypergiant direct majorities.
	for _, s := range analysis.Interconnections(baseline().processed) {
		if s.Provider == "GCP" && s.DirectPct < 50 {
			t.Errorf("baseline GCP direct = %.1f%%", s.DirectPct)
		}
	}
}

// TestAblationProbeSkew: with uniform per-country deployment, the South
// American Speedchecker advantage of Fig 5 (driven by the Brazil-heavy
// fleet) weakens or disappears.
func TestAblationProbeSkew(t *testing.T) {
	skewed := probes.GenerateSpeedchecker(baseline().w, probes.Config{Seed: 9, Scale: 0.2})
	flat := probes.GenerateSpeedchecker(baseline().w, probes.Config{Seed: 9, Scale: 0.2, UniformWeights: true})
	brShare := func(f *probes.Fleet) float64 {
		sa := f.InContinent(geo.SA)
		return float64(len(f.InCountry("BR"))) / float64(len(sa))
	}
	if s, u := brShare(skewed), brShare(flat); s < 0.7 || u > 0.35 {
		t.Errorf("Brazil share: skewed %.2f (want >0.7), uniform %.2f (want <0.35)", s, u)
	}
	// Uniform fleets also lose the DE/GB/IR/JP density peaks.
	if len(flat.InCountry("DE")) >= len(skewed.InCountry("DE"))/2 {
		t.Errorf("uniform fleet kept the German density peak: %d vs %d",
			len(flat.InCountry("DE")), len(skewed.InCountry("DE")))
	}
}

// TestGeoDensityStatistic reproduces the §3.2 coverage ratios.
func TestGeoDensityStatistic(t *testing.T) {
	b := baseline()
	sc := probes.GenerateSpeedchecker(b.w, probes.Config{Seed: 9, Scale: 1})
	at := probes.GenerateAtlas(b.w, probes.Config{Seed: 9, Scale: 1})
	dcs := map[geo.Continent]int{}
	for _, r := range b.w.Inventory.Regions() {
		dcs[r.Continent]++
	}
	gds := analysis.GeoDensities(analysis.Density(sc), analysis.Density(at), dcs, 1)
	byCont := map[geo.Continent]analysis.GeoDensity{}
	for _, g := range gds {
		byCont[g.Continent] = g
	}
	// §3.2: ≈12× in EU, ≈6× in NA, much higher in developing regions.
	if r := byCont[geo.EU].Ratio; r < 10 || r > 16 {
		t.Errorf("EU geoDensity ratio = %.1f, want ≈12", r)
	}
	if r := byCont[geo.NA].Ratio; r < 4 || r > 9 {
		t.Errorf("NA geoDensity ratio = %.1f, want ≈6", r)
	}
	if byCont[geo.AS].Ratio <= byCont[geo.NA].Ratio {
		t.Error("developing-region coverage advantage should exceed NA")
	}
	// §4.1: Africa has by far the worst datacenter-to-landmass ratio.
	if byCont[geo.AF].DCsPerMKm2 >= byCont[geo.EU].DCsPerMKm2/10 {
		t.Errorf("AF DC density %.3f should be a tiny fraction of EU's %.3f",
			byCont[geo.AF].DCsPerMKm2, byCont[geo.EU].DCsPerMKm2)
	}
}

// ---- ablation benchmarks (DESIGN.md §5) ----

func BenchmarkAblationPrivateWANOff(b *testing.B) {
	base := baseline()
	sim := netsim.New(base.w)
	sim.DisablePrivateWAN = true
	p := probes.GenerateSpeedchecker(base.w, probes.Config{Seed: 9, Scale: 0.01}).InCountry("JP")[0]
	r := base.w.Inventory.RegionsOf("GCP")[0]
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += sim.Ping(p, r, dataset.TCP, i).RTTms
	}
	b.ReportMetric(sum/float64(b.N), "mean-rtt-ms")
}

func BenchmarkAblationForcePublicWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		world.MustBuild(world.Config{Seed: int64(i), ForcePublicPeering: true})
	}
}

func BenchmarkAblationUniformFleet(b *testing.B) {
	base := baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probes.GenerateSpeedchecker(base.w, probes.Config{Seed: int64(i), Scale: 0.01, UniformWeights: true})
	}
}
