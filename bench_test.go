// Benchmark harness: one testing.B target per table and figure of the
// paper (see DESIGN.md §3 for the experiment index). Each bench runs
// the analysis that regenerates its figure from a shared campaign
// dataset and reports the figure's headline number as a custom metric,
// so `go test -bench=. -benchmem` doubles as the experiment runner
// behind EXPERIMENTS.md.
package cloudy_test

import (
	"context"
	"io"
	"sync"
	"testing"

	cloudy "repro"
	"repro/internal/analysis"
	"repro/internal/asn"
	"repro/internal/bgp"
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/netaddr"
	"repro/internal/probes"
	"repro/internal/world"
)

var (
	benchOnce  sync.Once
	benchStudy *cloudy.Study
)

// benchData runs one moderately sized campaign shared by all figure
// benches (seeded, deterministic).
func benchData(b *testing.B) *cloudy.Study {
	b.Helper()
	benchOnce.Do(func() {
		s, err := cloudy.RunStudy(context.Background(), cloudy.StudyConfig{
			Seed: 1, Scale: 0.05, Cycles: 4, TargetsPerProbe: 6,
		})
		if err != nil {
			panic(err)
		}
		benchStudy = s
	})
	return benchStudy
}

// ---- T1: Table 1 ----

func BenchmarkTable1Inventory(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		counts := s.World.Inventory.CountByContinent()
		total = 0
		for _, row := range counts {
			for _, n := range row {
				total += n
			}
		}
	}
	b.ReportMetric(float64(total), "datacenters")
}

// ---- F1/F2/F14: probe distributions ----

func BenchmarkFig1Fig2Distributions(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var sc, at analysis.FleetDensity
	for i := 0; i < b.N; i++ {
		sc = analysis.Density(s.SC)
		at = analysis.Density(s.Atlas)
	}
	b.ReportMetric(float64(sc.Total), "sc-probes")
	b.ReportMetric(float64(at.Total), "atlas-probes")
}

func BenchmarkFig14ProbeDensity(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var d analysis.FleetDensity
	for i := 0; i < b.N; i++ {
		d = analysis.Density(s.SC)
	}
	if len(d.PerCountry) > 0 {
		b.ReportMetric(float64(d.PerCountry[0].Probes), "densest-country-probes")
	}
}

// ---- F3 + takeaway ----

func BenchmarkFig3LatencyMap(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var entries []analysis.CountryLatency
	for i := 0; i < b.N; i++ {
		entries = analysis.LatencyMap(s.Store, 10)
	}
	b.ReportMetric(float64(len(entries)), "countries")
}

func BenchmarkTakeawayThresholds(b *testing.B) {
	s := benchData(b)
	entries := analysis.LatencyMap(s.Store, 10)
	b.ResetTimer()
	var t analysis.ThresholdSummary
	for i := 0; i < b.N; i++ {
		t = analysis.Thresholds(entries)
	}
	b.ReportMetric(float64(t.UnderHPL), "countries-under-hpl")
	b.ReportMetric(float64(t.UnderHRT), "countries-under-hrt")
}

// ---- F4 ----

func BenchmarkFig4ContinentCDF(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var dists []analysis.ContinentDistribution
	for i := 0; i < b.N; i++ {
		dists = analysis.ContinentDistributions(s.Store, "speedchecker")
	}
	for _, d := range dists {
		if d.Continent == geo.EU {
			b.ReportMetric(100*d.UnderHPL, "eu-under-hpl-pct")
		}
		if d.Continent == geo.AF {
			b.ReportMetric(100*d.UnderHPL, "af-under-hpl-pct")
		}
	}
}

// ---- F5 / F16 ----

func BenchmarkFig5PlatformDiff(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var diffs []analysis.PlatformDiff
	for i := 0; i < b.N; i++ {
		diffs = analysis.PlatformComparison(s.Store)
	}
	for _, d := range diffs {
		if d.Continent == geo.AF {
			b.ReportMetric(100*d.AtlasFasterShare, "af-atlas-faster-pct")
		}
	}
}

func BenchmarkFig16MatchedComparison(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var m []analysis.MatchedDiff
	for i := 0; i < b.N; i++ {
		m = analysis.MatchedComparison(s.Store, 3)
	}
	b.ReportMetric(float64(len(m)), "matched-continents")
}

// ---- F6 ----

func BenchmarkFig6InterContinental(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var af []analysis.InterContinentBox
	for i := 0; i < b.N; i++ {
		af = analysis.InterContinental(s.Store,
			[]string{"DZ", "EG", "ET", "KE", "MA", "SN", "TN", "ZA"},
			[]geo.Continent{geo.EU, geo.NA, geo.AF})
		analysis.InterContinental(s.Store,
			[]string{"AR", "BO", "BR", "CL", "CO", "EC", "PE", "VE"},
			[]geo.Continent{geo.NA, geo.SA})
	}
	for _, box := range af {
		if box.Country == "EG" && box.TargetContinent == geo.EU {
			b.ReportMetric(box.Box.Median, "eg-to-eu-median-ms")
		}
		if box.Country == "EG" && box.TargetContinent == geo.AF {
			b.ReportMetric(box.Box.Median, "eg-to-af-median-ms")
		}
	}
}

// ---- F7 / F19 ----

func BenchmarkFig7aLastMileShare(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var glob []analysis.LastMileImpact
	for i := 0; i < b.N; i++ {
		analysis.LastMile(s.Processed, false)
		glob = analysis.GlobalLastMile(s.Processed)
	}
	for _, im := range glob {
		if im.Category == analysis.CatHomeUserISP {
			b.ReportMetric(im.SharePct.Median, "global-home-share-pct")
		}
	}
}

func BenchmarkFig7bLastMileAbsolute(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var glob []analysis.LastMileImpact
	for i := 0; i < b.N; i++ {
		glob = analysis.GlobalLastMile(s.Processed)
	}
	for _, im := range glob {
		switch im.Category {
		case analysis.CatHomeUserISP:
			b.ReportMetric(im.AbsMs.Median, "home-abs-ms")
		case analysis.CatAtlas:
			b.ReportMetric(im.AbsMs.Median, "atlas-abs-ms")
		}
	}
}

func BenchmarkFig19LastMileClosest(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var imps []analysis.LastMileImpact
	for i := 0; i < b.N; i++ {
		imps = analysis.LastMile(s.Processed, true)
	}
	b.ReportMetric(float64(len(imps)), "groups")
}

// ---- F8 / F9 ----

func BenchmarkFig8LastMileCv(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var groups []analysis.CvGroup
	for i := 0; i < b.N; i++ {
		groups = analysis.LastMileCvByContinent(s.Processed, 5)
	}
	for _, g := range groups {
		if g.Continent == geo.EU && g.Category == analysis.CatHomeUserISP {
			b.ReportMetric(g.MedianCv, "eu-home-median-cv")
		}
	}
}

func BenchmarkFig9CountryCv(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var groups []analysis.CvGroup
	for i := 0; i < b.N; i++ {
		groups = analysis.LastMileCvByCountry(s.Processed, analysis.Fig9Countries, 5)
	}
	b.ReportMetric(float64(len(groups)), "country-groups")
}

// ---- F10 / F11 ----

func BenchmarkFig10Interconnections(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var shares []analysis.InterconnectShare
	for i := 0; i < b.N; i++ {
		shares = analysis.Interconnections(s.Processed)
	}
	for _, sh := range shares {
		switch sh.Provider {
		case "GCP":
			b.ReportMetric(sh.DirectPct, "gcp-direct-pct")
		case "VLTR":
			b.ReportMetric(sh.MultiASPct, "vltr-public-pct")
		}
	}
}

func BenchmarkFig11Pervasiveness(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var rows []analysis.PervasivenessRow
	for i := 0; i < b.N; i++ {
		rows = analysis.Pervasiveness(s.Processed)
	}
	for _, r := range rows {
		if r.Provider == "GCP" {
			b.ReportMetric(r.PerContinent[geo.EU], "gcp-eu-pervasiveness")
		}
		if r.Provider == "VLTR" {
			b.ReportMetric(r.PerContinent[geo.EU], "vltr-eu-pervasiveness")
		}
	}
}

// ---- F12/F13/F17/F18: case studies ----

func benchCaseStudy(b *testing.B, vp, dc string, metric string) {
	s := benchData(b)
	b.ResetTimer()
	var m analysis.PeeringMatrix
	var lat []analysis.PeeringLatency
	for i := 0; i < b.N; i++ {
		m = analysis.CaseStudyMatrix(s.Processed, s.World.Registry, vp, dc, 5)
		lat = analysis.CaseStudyLatency(s.Processed, vp, dc, 5)
	}
	b.ReportMetric(float64(len(m.Rows)), "top-isps")
	var dsum, tsum float64
	for _, pl := range lat {
		dsum += pl.Direct.Median
		tsum += pl.Transit.Median
	}
	if n := float64(len(lat)); n > 0 {
		b.ReportMetric(tsum/n-dsum/n, metric)
	}
}

func BenchmarkFig12GermanyUK(b *testing.B)  { benchCaseStudy(b, "DE", "GB", "transit-minus-direct-ms") }
func BenchmarkFig13JapanIndia(b *testing.B) { benchCaseStudy(b, "JP", "IN", "transit-minus-direct-ms") }
func BenchmarkFig17UkraineUK(b *testing.B)  { benchCaseStudy(b, "UA", "GB", "transit-minus-direct-ms") }
func BenchmarkFig18BahrainIndia(b *testing.B) {
	benchCaseStudy(b, "BH", "IN", "transit-minus-direct-ms")
}

// ---- F15 / S1 ----

func BenchmarkFig15IcmpVsTcp(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var rows []analysis.ProtocolComparison
	for i := 0; i < b.N; i++ {
		rows = analysis.ProtocolComparisons(s.Store)
	}
	var worst float64
	for _, r := range rows {
		if r.MedianGapPct > worst {
			worst = r.MedianGapPct
		}
	}
	b.ReportMetric(worst, "worst-icmp-gap-pct")
}

func BenchmarkCampaignConfidence(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(s.SCStats.ConfidentCountries())
	}
	b.ReportMetric(float64(n), "confident-countries")
	b.ReportMetric(float64(s.SCStats.Pings), "pings")
	b.ReportMetric(float64(s.SCStats.Traceroutes), "traceroutes")
}

// ---- substrate microbenches ----

func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := world.Build(world.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPingSimulation(b *testing.B) {
	s := benchData(b)
	p := s.SC.InCountry("DE")[0]
	r := s.World.Inventory.RegionsOf("GCP")[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sim.Ping(p, r, dataset.TCP, i)
	}
}

func BenchmarkTracerouteSimulation(b *testing.B) {
	s := benchData(b)
	p := s.SC.InCountry("JP")[0]
	r := s.World.Inventory.RegionsOf("AMZN")[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sim.Traceroute(p, r, i)
	}
}

func BenchmarkPipelineProcess(b *testing.B) {
	s := benchData(b)
	if len(s.Store.Traces) == 0 {
		b.Skip("no traces")
	}
	proc := cloudy.NewProcessor(s.World)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.Process(&s.Store.Traces[i%len(s.Store.Traces)])
	}
}

func BenchmarkBGPPathCold(b *testing.B) {
	// A fresh three-tier hierarchy per iteration batch measures the
	// uncached valley-free computation.
	g := &bgp.Graph{}
	var tier1 [8]asn.Number
	for i := range tier1 {
		tier1[i] = asn.Number(i + 1)
		for j := 0; j < i; j++ {
			g.AddPeering(tier1[i], tier1[j])
		}
	}
	next := asn.Number(100)
	var access []asn.Number
	for t2 := 0; t2 < 40; t2++ {
		t2AS := next
		next++
		g.AddTransit(tier1[t2%len(tier1)], t2AS)
		g.AddTransit(tier1[(t2+3)%len(tier1)], t2AS)
		for a := 0; a < 6; a++ {
			g.AddTransit(t2AS, next)
			access = append(access, next)
			next++
		}
	}
	// Walk a large distinct pair space so most lookups miss the cache.
	n := len(access)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pair := (i * 241) % (n * n)
		src := access[pair/n]
		dst := access[pair%n]
		if _, ok := g.Path(src, dst); !ok {
			b.Fatal("disconnected bench graph")
		}
	}
}

func BenchmarkBGPPathWarm(b *testing.B) {
	s := benchData(b)
	isps := s.World.AccessISPs("DE")
	gcp, _ := s.World.Inventory.Provider("GCP")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.World.Graph.Path(isps[i%len(isps)].Number, gcp.ASN)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	s := benchData(b)
	ip := netaddr.MustParseIP("60.0.16.1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.World.Registry.ResolveIP(ip + netaddr.IP(i%4096))
	}
}

func BenchmarkFleetGeneration(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probes.GenerateSpeedchecker(s.World, probes.Config{Seed: int64(i), Scale: 0.01})
	}
}

func BenchmarkFullReport(b *testing.B) {
	s := benchData(b)
	results := s.Analyze(cloudy.AnalyzeConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WriteReport(io.Discard, results)
	}
}

// ---- §8 conclusion / §7 discussion ----

func BenchmarkProviderConsistency(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var rows []analysis.ProviderConsistency
	for i := 0; i < b.N; i++ {
		rows = analysis.ProviderComparison(s.Store, 10)
	}
	for _, r := range rows {
		if r.Continent == geo.EU {
			b.ReportMetric(r.MedianSpreadMs, "eu-median-spread-ms")
			b.ReportMetric(r.MaxKS, "eu-max-ks")
		}
	}
}

func BenchmarkEdgeWhatIf(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var vs []edge.Verdict
	for i := 0; i < b.N; i++ {
		vs = edge.Verdicts(edge.Evaluate(s.Processed, 4))
	}
	for _, v := range vs {
		if v.Continent == geo.AF {
			b.ReportMetric(v.GainMs, "af-regional-edge-gain-ms")
		}
		if v.Continent == geo.EU {
			b.ReportMetric(v.GainMs, "eu-regional-edge-gain-ms")
		}
	}
}

func BenchmarkFlattening(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var rows []analysis.Flattening
	for i := 0; i < b.N; i++ {
		rows = analysis.PathFlattening(s.Processed)
	}
	for _, r := range rows {
		switch r.Provider {
		case "GCP":
			b.ReportMetric(r.MeanASes, "gcp-mean-aspath")
		case "VLTR":
			b.ReportMetric(r.MeanASes, "vltr-mean-aspath")
		}
	}
}

func BenchmarkGaoInference(b *testing.B) {
	s := benchData(b)
	var paths [][]asn.Number
	for _, cc := range []string{"DE", "JP", "US", "BR"} {
		for _, isp := range s.World.AccessISPs(cc) {
			for _, other := range s.World.AccessISPs("GB") {
				if p, ok := s.World.Graph.Path(isp.Number, other.Number); ok {
					paths = append(paths, p)
				}
			}
		}
	}
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		edges := bgp.InferRelationships(paths)
		correct, total := s.World.Graph.Score(edges)
		if total > 0 {
			acc = float64(correct) / float64(total)
		}
	}
	b.ReportMetric(acc, "inference-accuracy")
}

func BenchmarkFig14Closeness(b *testing.B) {
	s := benchData(b)
	b.ResetTimer()
	var rows []analysis.Closeness
	for i := 0; i < b.N; i++ {
		rows = analysis.FleetCloseness(s.SC, 10)
	}
	if len(rows) > 0 {
		b.ReportMetric(rows[0].MedianNN, "densest-median-nn-km")
	}
}
