// Package cloudy reproduces "Cloudy with a Chance of Short RTTs:
// Analyzing Cloud Connectivity in the Internet" (IMC 2021) as a
// runnable system: a synthetic-Internet substrate, the Speedchecker and
// RIPE Atlas vantage-point fleets, the six-month measurement campaign,
// the traceroute-processing pipeline, and every analysis behind the
// paper's tables and figures.
//
// The quickest way in is the one-call study:
//
//	study, err := cloudy.RunStudy(ctx, cloudy.StudyConfig{Seed: 1, Scale: 0.05})
//	results := study.Analyze(cloudy.AnalyzeConfig{})
//	study.WriteReport(os.Stdout, results)
//
// For finer control, build the pieces separately:
//
//	w, _ := cloudy.NewWorld(1)                   // synthesize the Internet
//	sim := cloudy.NewSimulator(w)                // data-plane emulator
//	fleet := cloudy.SpeedcheckerFleet(w, cloudy.FleetConfig{Seed: 1, Scale: 0.1})
//	campaign, _ := cloudy.NewCampaign(sim, fleet, cloudy.CampaignConfig{})
//	store, stats, _ := campaign.Run(ctx)
//	processed := cloudy.NewProcessor(w).ProcessAll(store)
//
// Everything is deterministic under a seed; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-versus-measured results.
package cloudy

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dnssim"
	"repro/internal/edge"
	"repro/internal/faults"
	"repro/internal/geoip"
	"repro/internal/hloc"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/tcping"
	"repro/internal/world"
)

// World is the synthetic Internet: AS ecosystem, exchanges, cloud
// providers and their interconnection decisions.
type World = world.World

// WorldConfig parameterizes world synthesis.
type WorldConfig = world.Config

// NewWorld synthesizes a world from a seed with default parameters.
func NewWorld(seed int64) (*World, error) {
	return world.Build(world.Config{Seed: seed})
}

// Simulator emulates pings and traceroutes over a world.
type Simulator = netsim.Simulator

// NewSimulator returns a paper-calibrated simulator.
func NewSimulator(w *World) *Simulator { return netsim.New(w) }

// Fleet is a set of vantage points; Probe is one of them.
type (
	Fleet       = probes.Fleet
	Probe       = probes.Probe
	FleetConfig = probes.Config
)

// SpeedcheckerFleet generates the wireless end-user fleet of §3.2.
func SpeedcheckerFleet(w *World, cfg FleetConfig) *Fleet {
	return probes.GenerateSpeedchecker(w, cfg)
}

// AtlasFleet generates the wired managed fleet of §3.2.
func AtlasFleet(w *World, cfg FleetConfig) *Fleet {
	return probes.GenerateAtlas(w, cfg)
}

// Campaign runs a measurement campaign; CampaignConfig shapes it; Store
// holds the collected records.
type (
	Campaign       = measure.Campaign
	CampaignConfig = measure.Config
	CampaignStats  = measure.Stats
	Store          = dataset.Store
	PingRecord     = dataset.PingRecord
	Traceroute     = dataset.TracerouteRecord
)

// NewCampaign assembles a campaign over one fleet, validating cfg.
func NewCampaign(sim *Simulator, fleet *Fleet, cfg CampaignConfig) (*Campaign, error) {
	return measure.New(sim, fleet, cfg)
}

// Fault-injection re-exports: a FaultPlan (or any FaultInjector) wired
// into both the simulator and CampaignConfig.Faults runs a chaos
// campaign that stays deterministic under its seed; Checkpoint carries
// a paused campaign's state across a restart.
type (
	FaultInjector = faults.Injector
	FaultPlan     = faults.Plan
	Checkpoint    = measure.Checkpoint
)

// FaultProfile resolves a named fault profile ("flaky-wireless",
// "quota-storm", "partition"); FaultProfiles lists the names.
var (
	FaultProfile  = faults.Profile
	FaultProfiles = faults.Names
)

// Processor turns raw traceroutes into classified, AS-attributed paths;
// Processed is its per-trace output.
type (
	Processor = pipeline.Processor
	Processed = pipeline.Processed
)

// NewProcessor returns a traceroute processor over a world's
// registries.
func NewProcessor(w *World) *Processor { return pipeline.NewProcessor(w) }

// Study aliases re-export the end-to-end orchestrator.
type (
	Study         = core.Study
	StudyConfig   = core.Config
	StudyResults  = core.Results
	AnalyzeConfig = core.AnalyzeConfig
)

// RunStudy executes the full reproduction: world, fleets, both
// campaigns, processing.
func RunStudy(ctx context.Context, cfg StudyConfig) (*Study, error) {
	return core.Run(ctx, cfg)
}

// Analysis result types, one per figure family.
type (
	CountryLatency        = analysis.CountryLatency        // Fig 3
	ThresholdSummary      = analysis.ThresholdSummary      // §4.1 takeaway
	ContinentDistribution = analysis.ContinentDistribution // Fig 4
	PlatformDiff          = analysis.PlatformDiff          // Fig 5
	InterContinentBox     = analysis.InterContinentBox     // Fig 6
	LastMileImpact        = analysis.LastMileImpact        // Fig 7/19
	CvGroup               = analysis.CvGroup               // Fig 8/9
	InterconnectShare     = analysis.InterconnectShare     // Fig 10
	PervasivenessRow      = analysis.PervasivenessRow      // Fig 11
	PeeringMatrix         = analysis.PeeringMatrix         // Fig 12a etc.
	PeeringLatency        = analysis.PeeringLatency        // Fig 12b etc.
)

// QoE thresholds of §2.1, re-exported for callers classifying latencies.
const (
	MTPms = analysis.MTPms
	HPLms = analysis.HPLms
	HRTms = analysis.HRTms
)

// WritePingsCSV and ReadPingsCSV stream the published dataset's ping
// format; WriteTracesJSONL and ReadTracesJSONL its traceroute format.
var (
	WritePingsCSV    = dataset.WritePingsCSV
	ReadPingsCSV     = dataset.ReadPingsCSV
	WriteTracesJSONL = dataset.WriteTracesJSONL
	ReadTracesJSONL  = dataset.ReadTracesJSONL
)

// Sink streams records during collection; FileSink writes the
// published formats in constant memory (set CampaignConfig.Sink).
type (
	Sink     = dataset.Sink
	FileSink = dataset.FileSink
)

// NewFileSink wraps two destinations for streamed collection.
var NewFileSink = dataset.NewFileSink

// Edge re-exports the §7 what-if evaluator.
type (
	EdgeScenario = edge.Scenario
	EdgeVerdict  = edge.Verdict
	FiveGWhatIf  = edge.FiveG
)

// EvaluateEdge replays measurements under the three compute placements;
// EvaluateFiveG scales the wireless last mile (0.5 ≈ measured early 5G,
// 0.05 ≈ the promised radio); EdgeVerdicts condenses the conclusions.
var (
	EvaluateEdge  = edge.Evaluate
	EvaluateFiveG = edge.Evaluate5G
	EdgeVerdicts  = edge.Verdicts
)

// DNS re-exports: the synthetic namespace (region VM hostnames, router
// rDNS) and its UDP server/client.
type (
	DNSZone   = dnssim.Zone
	DNSServer = dnssim.Server
	DNSClient = dnssim.Client
)

// DNS constructors and helpers.
var (
	NewDNSZone     = dnssim.NewZone
	NewDNSServer   = dnssim.NewServer
	NewDNSClient   = dnssim.NewClient
	RegionHostname = dnssim.RegionHostname
)

// Geolocation re-exports: the noisy database, and the HLOC-style hybrid
// locator that repairs it with rDNS hints.
type (
	GeoIPDB       = geoip.DB
	HybridLocator = hloc.Locator
)

// Geolocation constructors.
var (
	BuildGeoIP       = geoip.Build
	NewHybridLocator = hloc.New
)

// TCPPinger measures real TCP-handshake RTTs against live endpoints
// (§3.3's TCP ping; see cmd/cloudping).
type TCPPinger = tcping.Pinger

// InferASRelationships runs Gao's relationship-inference algorithm over
// observed AS paths — the self-validation loop showing the synthetic
// topology carries the structure real inference depends on.
var InferASRelationships = bgp.InferRelationships
