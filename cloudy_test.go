package cloudy_test

import (
	"bytes"
	"context"
	"testing"

	cloudy "repro"
	"repro/internal/asn"
)

type asnNumber = asn.Number

// TestPublicAPI exercises the facade the examples and downstream users
// consume: world → simulator → fleet → campaign → pipeline, plus the
// dataset codecs.
func TestPublicAPI(t *testing.T) {
	w, err := cloudy.NewWorld(5)
	if err != nil {
		t.Fatal(err)
	}
	sim := cloudy.NewSimulator(w)
	fleet := cloudy.SpeedcheckerFleet(w, cloudy.FleetConfig{Seed: 5, Scale: 0.01})
	if fleet.Len() == 0 {
		t.Fatal("empty fleet")
	}
	atlas := cloudy.AtlasFleet(w, cloudy.FleetConfig{Seed: 5, Scale: 0.2})
	if atlas.Len() == 0 {
		t.Fatal("empty atlas fleet")
	}

	camp, err := cloudy.NewCampaign(sim, fleet, cloudy.CampaignConfig{
		Seed: 5, Cycles: 1, TargetsPerProbe: 3, MinProbesPerCountry: 2,
		RequestsPerMinute: 1000, Workers: 4, Traceroutes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, stats, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	np, nt := store.Len()
	if np == 0 || nt == 0 || stats.Pings != np {
		t.Fatalf("campaign: %d pings, %d traces, stats %+v", np, nt, stats)
	}

	processed := cloudy.NewProcessor(w).ProcessAll(store)
	if len(processed) != nt {
		t.Fatalf("processed %d of %d", len(processed), nt)
	}

	var pings, traces bytes.Buffer
	if err := cloudy.WritePingsCSV(&pings, store.Pings); err != nil {
		t.Fatal(err)
	}
	back, err := cloudy.ReadPingsCSV(&pings)
	if err != nil || len(back) != np {
		t.Fatalf("ping round trip: %d records, err %v", len(back), err)
	}
	if err := cloudy.WriteTracesJSONL(&traces, store.Traces); err != nil {
		t.Fatal(err)
	}
	backT, err := cloudy.ReadTracesJSONL(&traces)
	if err != nil || len(backT) != nt {
		t.Fatalf("trace round trip: %d records, err %v", len(backT), err)
	}
}

func TestThresholdConstants(t *testing.T) {
	if cloudy.MTPms != 20 || cloudy.HPLms != 100 || cloudy.HRTms != 250 {
		t.Errorf("QoE thresholds drifted: %v %v %v", cloudy.MTPms, cloudy.HPLms, cloudy.HRTms)
	}
}

// TestFacadeExtensions exercises the extended public surface: DNS,
// geolocation, edge what-ifs and relationship inference.
func TestFacadeExtensions(t *testing.T) {
	w, err := cloudy.NewWorld(8)
	if err != nil {
		t.Fatal(err)
	}
	// Naming plane.
	zone := cloudy.NewDNSZone(w)
	region := w.Inventory.Regions()[0]
	if ip, ok := zone.LookupA(cloudy.RegionHostname(region.ID)); !ok || ip != w.RegionIP(region) {
		t.Error("zone lookup failed through the facade")
	}
	// Hybrid geolocation repairs a noisy database.
	db := cloudy.BuildGeoIP(w, 0.3, 8)
	locator := cloudy.NewHybridLocator(db, zone)
	isp := w.AccessISPs("FR")[0]
	loc, ok := locator.Locate(w.RouterIP(isp.Number, 1))
	if !ok || loc.Country != "FR" {
		t.Errorf("hybrid locate = %+v, %v", loc, ok)
	}
	// Relationship inference over facade-visible paths.
	var paths [][]asnNumber
	for _, a := range w.AccessISPs("FR") {
		for _, b := range w.AccessISPs("DE") {
			if p, ok := w.Graph.Path(a.Number, b.Number); ok {
				paths = append(paths, p)
			}
		}
	}
	if edges := cloudy.InferASRelationships(paths); len(edges) == 0 {
		t.Error("no relationships inferred")
	}
}
