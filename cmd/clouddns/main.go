// Command clouddns serves the synthetic Internet's namespace over real
// UDP DNS: A records for every cloud region's VM hostname (the
// CloudHarmony catalogue of §3.1) and PTR records for router space.
// Point dig at it:
//
//	clouddns -listen 127.0.0.1:5354 &
//	dig @127.0.0.1 -p 5354 amzn-eu-dublin.compute.cloudy.test
//	dig @127.0.0.1 -p 5354 -x 104.0.1.10
//
// With -catalogue it just prints the hostname catalogue and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"repro/internal/dnssim"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	listen := flag.String("listen", "127.0.0.1:5354", "UDP listen address")
	catalogue := flag.Bool("catalogue", false, "print the hostname catalogue and exit")
	flag.Parse()

	w, err := world.Build(world.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clouddns:", err)
		os.Exit(1)
	}
	zone := dnssim.NewZone(w)

	if *catalogue {
		names := zone.Hostnames()
		sort.Strings(names)
		for _, name := range names {
			ip, _ := zone.LookupA(name)
			fmt.Printf("%-50s %s\n", name, ip)
		}
		return
	}

	srv, err := dnssim.NewServer(zone, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clouddns:", err)
		os.Exit(1)
	}
	tcpSrv, err := dnssim.NewTCPServer(zone, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clouddns:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "clouddns: serving %d names on %s (udp+tcp, seed %d)\n",
		len(zone.Hostnames()), srv.Addr(), *seed)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errs := make(chan error, 2)
	go func() { errs <- srv.Serve(ctx) }()
	go func() { errs <- tcpSrv.Serve(ctx) }()
	if err := <-errs; err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "clouddns:", err)
		os.Exit(1)
	}
}
