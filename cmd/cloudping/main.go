// Command cloudping measures TCP-handshake round-trip latency to a live
// endpoint — the paper's "TCP ping" (§3.3), runnable against any real
// cloud VM or service.
//
//	cloudping [-c count] [-i interval] [-t timeout] host:port
//	cloudping -icmp [-c count] [-t timeout] host
//
// The default mode times TCP handshakes; -icmp sends real ICMP echoes
// (needs CAP_NET_RAW or an allowing ping_group_range). Either way it
// prints one line per probe and a summary, classifying the median
// against the paper's QoE thresholds (MTP 20 ms, HPL 100 ms, HRT 250 ms).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/analysis"
	"repro/internal/icmp"
	"repro/internal/stats"
	"repro/internal/tcping"
)

func main() {
	count := flag.Int("c", 4, "number of probes")
	interval := flag.Duration("i", time.Second, "interval between probes")
	timeout := flag.Duration("t", 3*time.Second, "per-probe timeout")
	useICMP := flag.Bool("icmp", false, "send ICMP echoes instead of TCP handshakes")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: cloudping [-icmp] [-c count] [-i interval] [-t timeout] host[:port]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	addr := flag.Arg(0)
	if *useICMP {
		runICMP(addr, *count, *timeout)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p := tcping.Pinger{Address: addr, Count: *count, Interval: *interval, Timeout: *timeout}
	results, sum, err := p.Run(ctx)
	for _, r := range results {
		if r.OK() {
			fmt.Printf("seq=%d connected to %s rtt=%.2f ms\n", r.Seq, addr, ms(r.RTT))
		} else {
			fmt.Printf("seq=%d failed: %v\n", r.Seq, r.Err)
		}
	}
	if err != nil && err != context.Canceled {
		fmt.Fprintln(os.Stderr, "cloudping:", err)
		os.Exit(1)
	}
	fmt.Printf("--- %s tcping statistics ---\n", addr)
	fmt.Printf("%d probes, %d succeeded, %.0f%% loss\n", sum.Sent, sum.Succeeded, sum.LossPct)
	if sum.Succeeded > 0 {
		fmt.Printf("rtt min/median/mean/max/stddev = %.2f/%.2f/%.2f/%.2f/%.2f ms\n",
			ms(sum.Min), ms(sum.Median), ms(sum.Mean), ms(sum.Max), ms(sum.StdDev))
		fmt.Printf("QoE: %s\n", qoe(ms(sum.Median)))
	}
	if sum.Succeeded == 0 {
		os.Exit(1)
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// qoe classifies a median latency against the §2.1 thresholds.
func qoe(medianMs float64) string {
	switch {
	case medianMs < analysis.MTPms:
		return "meets MTP (immersive AR/VR feasible)"
	case medianMs < analysis.HPLms:
		return "meets HPL (cloud gaming feasible, MTP out of reach)"
	case medianMs < analysis.HRTms:
		return "meets HRT only (human-in-the-loop tasks)"
	default:
		return "misses all QoE thresholds"
	}
}

// runICMP sends real ICMP echoes and reports like ping(8).
func runICMP(addr string, count int, timeout time.Duration) {
	p := icmp.Pinger{Addr: addr, Count: count, Timeout: timeout}
	results, err := p.Run()
	if errors.Is(err, icmp.ErrUnsupported) {
		fmt.Fprintln(os.Stderr, "cloudping:", err)
		fmt.Fprintln(os.Stderr, "hint: retry without -icmp for the TCP-handshake mode")
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudping:", err)
		os.Exit(1)
	}
	var rtts []float64
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("icmp_seq=%d timeout/error: %v\n", r.Seq, r.Err)
			continue
		}
		fmt.Printf("icmp_seq=%d rtt=%.2f ms\n", r.Seq, ms(r.RTT))
		rtts = append(rtts, ms(r.RTT))
	}
	fmt.Printf("--- %s icmp statistics ---\n", addr)
	fmt.Printf("%d probes, %d replies\n", len(results), len(rtts))
	if len(rtts) == 0 {
		os.Exit(1)
	}
	med, _ := stats.Median(rtts)
	fmt.Printf("median %.2f ms — QoE: %s\n", med, qoe(med))
}
