// Command cloudtrace runs one traceroute over the synthetic Internet
// and prints the hop list, the resolved AS-level path, and the §6.1
// interconnection classification — the full measurement-and-processing
// path for a single <probe country, provider, region city> triple.
//
//	cloudtrace [-seed N] [-isp ASN] -from DE -provider GCP [-city Frankfurt]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/asn"
	"repro/internal/cloud"
	"repro/internal/dnssim"
	"repro/internal/geo"
	"repro/internal/geoip"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/world"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	from := flag.String("from", "DE", "probe country (ISO code)")
	ispFlag := flag.Uint("isp", 0, "serving ISP ASN (0 = largest in country)")
	provider := flag.String("provider", "GCP", "cloud provider code")
	city := flag.String("city", "", "region city (default: closest)")
	cycles := flag.Int("n", 1, "number of traces")
	flag.Parse()

	if err := run(*seed, *from, asn.Number(*ispFlag), *provider, *city, *cycles); err != nil {
		fmt.Fprintln(os.Stderr, "cloudtrace:", err)
		os.Exit(1)
	}
}

func run(seed int64, from string, isp asn.Number, provider, city string, cycles int) error {
	w, err := world.Build(world.Config{Seed: seed})
	if err != nil {
		return err
	}
	country, ok := geo.CountryByCode(strings.ToUpper(from))
	if !ok {
		return fmt.Errorf("unknown country %q", from)
	}
	sim := netsim.New(w)
	fleet := probes.GenerateSpeedchecker(w, probes.Config{Seed: seed, Scale: 0.02})

	var probe *probes.Probe
	for _, p := range fleet.InCountry(country.Code) {
		if isp == 0 || p.ISP.Number == isp {
			probe = p
			break
		}
	}
	if probe == nil {
		return fmt.Errorf("no probe in %s on AS%d", country.Code, isp)
	}

	region, err := pickRegion(w, provider, city, probe)
	if err != nil {
		return err
	}
	proc := pipeline.NewProcessor(w)
	// Router geolocation with a realistic 10% database error rate; the
	// paper's caveat about GeoIP accuracy applies here too.
	geodb := geoip.Build(w, 0.1, seed)
	zone := dnssim.NewZone(w)
	fmt.Printf("probe %s (%s, %s, %s access) → %s (%s, %s)\n",
		probe.ID, probe.ISP.Name, probe.Country, probe.Access, region.ID, region.City, region.Country)

	for c := 0; c < cycles; c++ {
		tr := sim.Traceroute(probe, region, c)
		got := proc.Process(&tr)
		fmt.Printf("\ntraceroute #%d to %s:\n", c+1, tr.Target.IP)
		for _, h := range tr.Hops {
			if !h.Responded {
				fmt.Printf("%3d  *\n", h.TTL)
				continue
			}
			owner := "?"
			if a, ok := w.Registry.ResolveIP(h.IP); ok {
				owner = fmt.Sprintf("%s (%s)", a.Name, a.Number)
			} else if h.IP.IsPrivate() {
				owner = "private"
			}
			where := ""
			if loc, ok := geodb.Locate(h.IP); ok {
				where = " [" + loc.Country + "]"
			}
			rdns := ""
			if name, ok := zone.LookupPTR(h.IP); ok {
				rdns = "  " + name
			}
			fmt.Printf("%3d  %-15s %8.2f ms  %s%s%s\n", h.TTL, h.IP, h.RTTms, owner, where, rdns)
		}
		var hops []string
		for _, h := range got.ASPath {
			hops = append(hops, fmt.Sprintf("%s[%s]", h.ASN, h.Type))
		}
		fmt.Printf("AS path: %s\n", strings.Join(hops, " → "))
		fmt.Printf("classification: %s (%d intermediate ASes), pervasiveness %.2f, last-mile %s %.1f ms (%.0f%% of e2e)\n",
			got.Class, got.Intermediates, got.Pervasiveness,
			got.LastMile.Kind, got.LastMile.UserToISPms, 100*got.LastMile.ShareOfTotal)
	}
	return nil
}

func pickRegion(w *world.World, provider, city string, probe *probes.Probe) (*cloud.Region, error) {
	regions := w.Inventory.RegionsOf(strings.ToUpper(provider))
	if len(regions) == 0 {
		return nil, fmt.Errorf("unknown provider %q (try %s)",
			provider, strings.Join(w.Inventory.ProviderCodes(), " "))
	}
	if city == "" {
		best := regions[0]
		for _, r := range regions[1:] {
			if geo.DistanceKm(probe.Loc, r.Loc) < geo.DistanceKm(probe.Loc, best.Loc) {
				best = r
			}
		}
		return best, nil
	}
	for _, r := range regions {
		if strings.EqualFold(r.City, city) {
			return r, nil
		}
	}
	return nil, fmt.Errorf("%s has no region in %q", provider, city)
}
