package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<18)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(out)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("run failed: %v", ferr)
	}
	return out
}

func TestRunTrace(t *testing.T) {
	out := capture(t, func() error { return run(1, "JP", 0, "AMZN", "Tokyo", 1) })
	for _, want := range []string{"traceroute #1", "AS path:", "classification:", "last-mile"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	// Closest-region default and ISP pinning also work.
	out = capture(t, func() error { return run(1, "de", 3320, "GCP", "", 1) })
	if !strings.Contains(out, "Deutsche Telekom") || !strings.Contains(out, "Frankfurt") {
		t.Errorf("pinned trace output wrong:\n%s", out)
	}
}

func TestRunTraceErrors(t *testing.T) {
	if err := run(1, "XX", 0, "AMZN", "", 1); err == nil {
		t.Error("unknown country should fail")
	}
	if err := run(1, "DE", 0, "NOPE", "", 1); err == nil {
		t.Error("unknown provider should fail")
	}
	if err := run(1, "DE", 0, "AMZN", "Atlantis", 1); err == nil {
		t.Error("unknown city should fail")
	}
	if err := run(1, "DE", 99999, "AMZN", "", 1); err == nil {
		t.Error("unknown ISP should fail")
	}
}
