package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/sample"
	"repro/internal/wirecodec"
)

// wireBenchSide is one codec's encode+decode measurement.
type wireBenchSide struct {
	NsPerPass      int64   `json:"ns_per_pass"`
	Bytes          int     `json:"bytes"`
	MBPerSec       float64 `json:"mb_per_sec"`
	BytesPerRecord float64 `json:"bytes_per_record"`
}

// wireBenchReport is the BENCH_wire.json document: the binary wire
// codec A/B'd against the NDJSON-era text codecs (ping CSV +
// traceroute JSONL) over the same campaign records.
type wireBenchReport struct {
	Seed      int64         `json:"seed"`
	Scale     float64       `json:"scale"`
	Cycles    int           `json:"cycles"`
	Pings     int           `json:"pings"`
	Traces    int           `json:"traces"`
	Iters     int           `json:"iters"`
	Wire      wireBenchSide `json:"wire"`
	NDJSON    wireBenchSide `json:"ndjson"`
	Speedup   float64       `json:"speedup"`    // ndjson ns / wire ns
	SizeRatio float64       `json:"size_ratio"` // ndjson bytes / wire bytes
}

// cmdBenchwire benchmarks the cluster wire protocol's sample codec
// against the text formats on real campaign records and writes
// BENCH_wire.json. Each side's figure is the best full encode+decode
// pass of -iters attempts.
func cmdBenchwire(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("benchwire", flag.ExitOnError)
	f := addStudyFlags(fs)
	iters := fs.Int("iters", 5, "measurement passes per codec (best-of)")
	outPath := fs.String("out", "", "write the JSON benchmark report here (e.g. BENCH_wire.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "collecting corpus: seed %d, scale %.2f, %d cycles...\n",
		*f.seed, *f.scale, *f.cycles)
	study, err := core.Run(ctx, core.Config{
		Seed: *f.seed, Scale: *f.scale, Cycles: *f.cycles, FaultProfile: *f.faults,
	})
	if err != nil {
		return err
	}
	pings, traces := study.Store.Pings, study.Store.Traces
	if len(pings) == 0 {
		return fmt.Errorf("benchwire: campaign produced no records")
	}
	fmt.Fprintf(os.Stderr, "corpus: %d pings, %d traceroutes\n", len(pings), len(traces))

	rep := wireBenchReport{
		Seed: *f.seed, Scale: *f.scale, Cycles: *f.cycles,
		Pings: len(pings), Traces: len(traces), Iters: *iters,
	}
	records := float64(len(pings) + len(traces))

	rep.Wire, err = bestOf(*iters, records, func() (int, error) { return wirePass(pings, traces) })
	if err != nil {
		return err
	}
	rep.NDJSON, err = bestOf(*iters, records, func() (int, error) { return ndjsonPass(pings, traces) })
	if err != nil {
		return err
	}
	rep.Speedup = float64(rep.NDJSON.NsPerPass) / float64(rep.Wire.NsPerPass)
	rep.SizeRatio = float64(rep.NDJSON.Bytes) / float64(rep.Wire.Bytes)

	fmt.Fprintf(os.Stdout, "wire:   %8.2f ms/pass  %7.2f MB/s  %5.1f B/record\n",
		float64(rep.Wire.NsPerPass)/1e6, rep.Wire.MBPerSec, rep.Wire.BytesPerRecord)
	fmt.Fprintf(os.Stdout, "ndjson: %8.2f ms/pass  %7.2f MB/s  %5.1f B/record\n",
		float64(rep.NDJSON.NsPerPass)/1e6, rep.NDJSON.MBPerSec, rep.NDJSON.BytesPerRecord)
	fmt.Fprintf(os.Stdout, "wire codec is %.1fx faster and %.1fx smaller than NDJSON\n",
		rep.Speedup, rep.SizeRatio)

	if *outPath != "" {
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(body, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}
	return nil
}

// bestOf runs pass() n times and keeps the fastest, deriving the
// throughput figures from it.
func bestOf(n int, records float64, pass func() (int, error)) (wireBenchSide, error) {
	var side wireBenchSide
	for i := 0; i < n; i++ {
		start := time.Now()
		nBytes, err := pass()
		ns := time.Since(start).Nanoseconds()
		if err != nil {
			return side, err
		}
		if side.NsPerPass == 0 || ns < side.NsPerPass {
			side.NsPerPass = ns
			side.Bytes = nBytes
		}
	}
	secs := float64(side.NsPerPass) / 1e9
	if secs > 0 {
		side.MBPerSec = float64(side.Bytes) / (1 << 20) / secs
	}
	if records > 0 {
		side.BytesPerRecord = float64(side.Bytes) / records
	}
	return side, nil
}

// wirePass encodes everything through the binary codec and decodes it
// back, verifying the counts.
func wirePass(pings []sample.Sample, traces []sample.TraceSample) (int, error) {
	var buf bytes.Buffer
	w := wirecodec.NewWriter(&buf, wirecodec.Options{})
	for i := range pings {
		if err := w.Ping(pings[i]); err != nil {
			return 0, err
		}
	}
	for i := range traces {
		if err := w.Trace(traces[i]); err != nil {
			return 0, err
		}
	}
	if err := w.Finish(); err != nil {
		return 0, err
	}
	nP, nT, err := wirecodec.NewReader(bytes.NewReader(buf.Bytes()), wirecodec.Options{}).Scan(nil, nil)
	if err != nil {
		return 0, err
	}
	if nP != uint64(len(pings)) || nT != uint64(len(traces)) {
		return 0, fmt.Errorf("benchwire: wire pass decoded %d/%d records, want %d/%d",
			nP, nT, len(pings), len(traces))
	}
	return buf.Len(), nil
}

// ndjsonPass is the same round trip through the text formats the
// cluster plane replaces: ping CSV plus traceroute JSONL.
func ndjsonPass(pings []sample.Sample, traces []sample.TraceSample) (int, error) {
	var csvBuf, jsonlBuf bytes.Buffer
	sink := dataset.NewFileSink(&csvBuf, &jsonlBuf)
	for i := range pings {
		if err := sink.Ping(pings[i]); err != nil {
			return 0, err
		}
	}
	for i := range traces {
		if err := sink.Trace(traces[i]); err != nil {
			return 0, err
		}
	}
	if err := sink.Close(); err != nil {
		return 0, err
	}
	total := csvBuf.Len() + jsonlBuf.Len()
	nP := 0
	if err := dataset.ScanPings(bytes.NewReader(csvBuf.Bytes()), func(dataset.PingRecord) error {
		nP++
		return nil
	}); err != nil {
		return 0, err
	}
	nT := 0
	if err := dataset.ScanTraces(bytes.NewReader(jsonlBuf.Bytes()), func(dataset.TracerouteRecord) error {
		nT++
		return nil
	}); err != nil && err != io.EOF {
		return 0, err
	}
	if nP != len(pings) || nT != len(traces) {
		return 0, fmt.Errorf("benchwire: ndjson pass decoded %d/%d records, want %d/%d",
			nP, nT, len(pings), len(traces))
	}
	return total, nil
}
