package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/store"
	"repro/internal/world"
)

// cmdCoordinator runs the distributed campaign plane's control side:
// it listens for workers, leases out country shards, merges the
// returned binary sample streams into a store.Feed, and prints the
// sealed store's summary and digest — the value a single-process run
// of the same seed would produce bit for bit.
func cmdCoordinator(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("coordinator", flag.ExitOnError)
	f := addStudyFlags(fs)
	addr := fs.String("addr", "127.0.0.1:9070", "listen address for workers")
	clusterShards := fs.Int("cluster-shards", 0, "country groups to lease out (0 = default 8; bin-packed by probe count)")
	cycleWindows := fs.Int("cycle-windows", 1, "split the cycle axis into this many windows per group; each (group, window) leases and replays independently")
	storeShards := fs.Int("shards", 0, "store shard count (0 = default)")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "reclaim a shard after its worker goes silent this long (0 = only on disconnect)")
	allowFaults := fs.Bool("allow-faults", false, "permit -faults profiles and -cycle-quota (forfeits bit-identical merging)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	ctx = obs.ContextWithTracer(ctx, tracer)
	w, err := world.Build(world.Config{Seed: *f.seed})
	if err != nil {
		return err
	}
	feed := store.NewFeed(pipeline.NewProcessor(w), store.Options{Shards: *storeShards, Obs: reg})

	start := time.Now()
	coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Campaign: cluster.CampaignConfig{
			Seed: *f.seed, Scale: *f.scale, Cycles: *f.cycles, FaultProfile: *f.faults,
			Scenario: *f.scenario, DiurnalAmplitude: *f.diurnal, CycleQuota: *f.cycleQuota,
		},
		Shards:       *clusterShards,
		CycleWindows: *cycleWindows,
		LeaseTTL:     *leaseTTL,
		Clock:        func() time.Duration { return time.Since(start) },
		AllowFaults:  *allowFaults,
		Obs:          reg,
	}, feed)
	if err != nil {
		return err
	}

	ln, bound, err := cluster.ListenTCP(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "coordinator listening on %s (seed %d, scale %.2f, %d cycles; ctrl-c aborts)\n",
		bound, *f.seed, *f.scale, *f.cycles)
	res, err := coord.Run(ctx, ln)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "merged %d pings, %d traceroutes from %d workers (%d shards, %d reassigned)\n",
		res.Pings, res.Traces, res.Workers, res.Shards, res.Reassigned)

	st := feed.SealContext(ctx)
	sum := st.Summary()
	fmt.Fprintf(os.Stdout, "store sealed: %d rows in %d shards (%d countries, %d providers)\n",
		sum.Rows, sum.Shards, sum.Countries, sum.Providers)
	fmt.Fprintf(os.Stdout, "store digest: %s\n", st.Digest())
	return nil
}

// cmdWorker runs one member of the worker fleet: it dials the
// coordinator, receives the campaign config, and serves leased shards
// until the coordinator shuts the fleet down.
func cmdWorker(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9070", "coordinator address")
	name := fs.String("name", "", "worker name (default: host-pid)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	fmt.Fprintf(os.Stderr, "worker %s dialing %s\n", *name, *addr)
	w := cluster.NewWorker(cluster.WorkerOptions{Name: *name, Obs: obs.NewRegistry()})
	err := w.Run(ctx, func(ctx context.Context) (cluster.Conn, error) {
		return cluster.DialTCP(ctx, *addr)
	})
	if err == nil {
		fmt.Fprintf(os.Stderr, "worker %s done\n", *name)
	}
	return err
}
