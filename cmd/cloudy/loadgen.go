package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/segment"
	"repro/internal/serve"
	"repro/internal/store"
)

// benchRun is one (concurrency, hedging) cell of the sweep.
type benchRun struct {
	Clients     int            `json:"clients"`
	Hedge       bool           `json:"hedge"`
	Requests    int            `json:"requests"`
	DurationSec float64        `json:"duration_sec"`
	RPS         float64        `json:"rps"`
	P50Ms       float64        `json:"p50_ms"`
	P95Ms       float64        `json:"p95_ms"`
	P99Ms       float64        `json:"p99_ms"`
	MeanMs      float64        `json:"mean_ms"`
	Status      map[string]int `json:"status"`
	Anomalies   int            `json:"anomalies"`
	Epochs      []string       `json:"epochs"`
	HedgesFired uint64         `json:"hedges_fired"`
	HedgesWon   uint64         `json:"hedges_won"`
	// Segment carries the segment reader's counter deltas for this run
	// (blocks read/pruned, sketch merges) when the sweep targets a
	// -segments directory.
	Segment map[string]uint64 `json:"segment,omitempty"`
}

// benchReport is the BENCH_serve.json document.
type benchReport struct {
	Seed              int64   `json:"seed"`
	Scale             float64 `json:"scale"`
	Cycles            int     `json:"cycles"`
	RequestsPerClient int     `json:"requests_per_client"`
	Endpoints         int     `json:"endpoints"`
	CacheEntries      int     `json:"cache_entries"`
	Target            string  `json:"target"` // "in-process" or the -base URL
	// HedgeCrossoverClients is the smallest swept concurrency at which
	// hedge-on p99 stops beating hedge-off p99 (0 = hedging stayed
	// ahead at every level). Only present for -hedge both sweeps.
	HedgeCrossoverClients *int `json:"hedge_crossover_clients,omitempty"`
	// SegmentsDir is set when the in-process sweep served an mmap'd
	// segment directory instead of a freshly built store.
	SegmentsDir string     `json:"segments_dir,omitempty"`
	Runs        []benchRun `json:"runs"`
}

// hedgeCrossover pairs the sweep's hedge-on/off runs by concurrency
// and returns the smallest level where hedging's p99 no longer beats
// the unhedged p99 — the point where firing duplicate shard probes
// starts amplifying the very load that causes the stragglers. Returns
// 0 if hedging won at every level, and ok=false when the sweep holds
// no comparable pair.
func hedgeCrossover(runs []benchRun) (crossover int, ok bool) {
	on := map[int]float64{}
	off := map[int]float64{}
	for _, r := range runs {
		if r.Hedge {
			on[r.Clients] = r.P99Ms
		} else {
			off[r.Clients] = r.P99Ms
		}
	}
	var levels []int
	for c := range on {
		if _, both := off[c]; both {
			levels = append(levels, c)
		}
	}
	if len(levels) == 0 {
		return 0, false
	}
	sort.Ints(levels)
	for _, c := range levels {
		if on[c] >= off[c] {
			return c, true
		}
	}
	return 0, true
}

// benchEndpoints is the cache-busting query mix: enough distinct keys
// that a small response cache keeps missing and the sweep measures the
// store's hedged fan-out, not LRU lookups. Weights fall off zipf-style
// by position, like dashboard traffic.
func benchEndpoints() []load.Endpoint {
	var eps []load.Endpoint
	for i := 0; i < 8; i++ {
		eps = append(eps, load.Endpoint{Path: fmt.Sprintf("/v1/latency-map?min=%d", 10+i)})
	}
	for _, platform := range []string{"speedchecker", "atlas"} {
		for i := 0; i < 4; i++ {
			eps = append(eps, load.Endpoint{Path: fmt.Sprintf("/v1/cdf?platform=%s&points=%d", platform, 32+8*i)})
		}
	}
	eps = append(eps,
		load.Endpoint{Path: "/v1/platform-diff"},
		load.Endpoint{Path: "/v1/peering-shares"})
	return eps
}

// cmdLoadgen sweeps concurrency levels against the query API and
// reports latency quantiles per level. In-process (the default) it
// builds the store once and A/Bs hedging via store views; with -base
// it hammers an already-running server over TCP instead.
func cmdLoadgen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	f := addStudyFlags(fs)
	base := fs.String("base", "", "target a running server at this base URL (e.g. http://127.0.0.1:8080) instead of in-process")
	clientsList := fs.String("clients", "8,64,256", "comma-separated concurrency sweep")
	requests := fs.Int("requests", 200, "requests per client")
	hedgeMode := fs.String("hedge", "both", "in-process hedging: on, off or both (A/B per concurrency)")
	cacheEntries := fs.Int("cache", 8, "in-process server cache entries (small, so the sweep hits the store)")
	outPath := fs.String("out", "", "write the JSON benchmark report here (e.g. BENCH_serve.json)")
	segmentsDir := fs.String("segments", "", "in-process: sweep an mmap'd segment directory (cloudy segment -out DIR) instead of building a store")
	exactFlag := fs.Bool("exact", false, "with -segments: exact column scans instead of the merged quantile sketches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *segmentsDir != "" && *base != "" {
		return fmt.Errorf("-segments drives an in-process reader and cannot be combined with -base")
	}
	if *exactFlag && *segmentsDir == "" {
		return fmt.Errorf("-exact only applies to -segments")
	}
	sweep, err := parseClients(*clientsList)
	if err != nil {
		return err
	}
	var hedges []bool
	switch *hedgeMode {
	case "off":
		hedges = []bool{false}
	case "on":
		hedges = []bool{true}
	case "both":
		hedges = []bool{false, true}
	default:
		return fmt.Errorf("-hedge must be on, off or both, got %q", *hedgeMode)
	}

	report := benchReport{
		Seed: *f.seed, Scale: *f.scale, Cycles: *f.cycles,
		RequestsPerClient: *requests, Endpoints: len(benchEndpoints()),
		CacheEntries: *cacheEntries, Target: "in-process",
	}

	if *base != "" {
		// External target: the server owns its hedging and admission
		// policy; the sweep just drives it.
		report.Target = *base
		client := &http.Client{Timeout: 30 * time.Second}
		for _, clients := range sweep {
			run, err := oneRun(ctx, *base, client, clients, *requests, *f.seed, nil, false)
			if err != nil {
				return err
			}
			report.Runs = append(report.Runs, run)
			printRun(run)
		}
		return writeReport(report, *outPath)
	}

	if *segmentsDir != "" {
		// Segment sweep: one mmap'd reader shared by every run. Hedging
		// is a live-store fan-out concept and does not apply, so only
		// unhedged cells run; instead, each run reports the reader's
		// counter deltas (blocks read vs pruned, sketch merges).
		segReg := obs.NewRegistry()
		rd, err := segment.Open(*segmentsDir, segment.Options{Exact: *exactFlag, Obs: segReg})
		if err != nil {
			return err
		}
		defer rd.Close()
		report.SegmentsDir = *segmentsDir
		mode := "segments"
		if *exactFlag {
			mode = "segments-exact"
		}
		segCounters := []struct {
			name string
			c    *obs.Counter
		}{
			{"segment_blocks_read_total", segReg.Counter("segment_blocks_read_total")},
			{"segment_blocks_pruned_total", segReg.Counter("segment_blocks_pruned_total")},
			{"segment_sketch_merges_total", segReg.Counter("segment_sketch_merges_total")},
			{"segment_block_errors_total", segReg.Counter("segment_block_errors_total")},
		}
		for _, clients := range sweep {
			runReg := obs.NewRegistry()
			srv := serve.New(rd, serve.Options{
				CacheEntries: *cacheEntries, Obs: runReg, StoreMode: mode,
				Admit: admit.Options{RatePerSec: -1, MaxInFlight: -1},
			})
			before := map[string]uint64{}
			for _, sc := range segCounters {
				before[sc.name] = sc.c.Load()
			}
			run, err := oneRun(ctx, "http://loadgen", load.HandlerClient{Handler: srv.Handler()},
				clients, *requests, *f.seed, runReg, false)
			if err != nil {
				return err
			}
			run.Segment = map[string]uint64{}
			for _, sc := range segCounters {
				run.Segment[sc.name] = sc.c.Load() - before[sc.name]
			}
			report.Runs = append(report.Runs, run)
			printRun(run)
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
		return writeReport(report, *outPath)
	}

	// In-process: one store build, shared by every run; hedging toggles
	// through WithHedge views of the same sealed shards. Quotas and the
	// concurrency ceiling are disabled — the bench measures the store
	// and hedging, not the admission layer.
	buildReg := obs.NewRegistry()
	st, err := campaignStore(ctx, core.Config{
		Seed: *f.seed, Scale: *f.scale, Cycles: *f.cycles, FaultProfile: *f.faults, Obs: buildReg,
	}, buildReg, 0)
	if err != nil {
		return err
	}
	fired := buildReg.Counter("store_hedges_fired_total")
	won := buildReg.Counter("store_hedges_won_total")

	for _, clients := range sweep {
		for _, hedged := range hedges {
			view := st
			if hedged {
				view = st.WithHedge(store.HedgeOptions{Enabled: true})
			}
			runReg := obs.NewRegistry()
			srv := serve.New(view, serve.Options{
				CacheEntries: *cacheEntries, Obs: runReg,
				Admit: admit.Options{RatePerSec: -1, MaxInFlight: -1},
			})
			firedBefore, wonBefore := fired.Load(), won.Load()
			run, err := oneRun(ctx, "http://loadgen", load.HandlerClient{Handler: srv.Handler()},
				clients, *requests, *f.seed, runReg, hedged)
			if err != nil {
				return err
			}
			run.HedgesFired = fired.Load() - firedBefore
			run.HedgesWon = won.Load() - wonBefore
			report.Runs = append(report.Runs, run)
			printRun(run)
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
	}
	if cross, ok := hedgeCrossover(report.Runs); ok {
		report.HedgeCrossoverClients = &cross
		if cross == 0 {
			fmt.Fprintln(os.Stdout, "hedge crossover: none — hedging beat the unhedged p99 at every swept concurrency")
		} else {
			fmt.Fprintf(os.Stdout, "hedge crossover: %d clients — hedge-on p99 stops beating hedge-off there\n", cross)
		}
	}
	return writeReport(report, *outPath)
}

// oneRun drives one load.Run cell and times it for throughput.
func oneRun(ctx context.Context, base string, doer load.Doer, clients, requests int, seed int64, reg *obs.Registry, hedged bool) (benchRun, error) {
	started := time.Now()
	res, err := load.Run(ctx, base, doer, load.Options{
		Clients: clients, RequestsPerClient: requests,
		Endpoints: benchEndpoints(), Seed: seed, Obs: reg,
	})
	if err != nil {
		return benchRun{}, err
	}
	elapsed := time.Since(started).Seconds()
	run := benchRun{
		Clients: clients, Hedge: hedged, Requests: res.Requests,
		DurationSec: elapsed,
		P50Ms:       res.P50Ms, P95Ms: res.P95Ms, P99Ms: res.P99Ms, MeanMs: res.MeanMs,
		Status:    map[string]int{},
		Anomalies: res.AnomalyCount,
		Epochs:    res.Epochs,
	}
	if elapsed > 0 {
		run.RPS = float64(res.Requests) / elapsed
	}
	for code, n := range res.Status {
		run.Status[strconv.Itoa(code)] = n
	}
	if res.AnomalyCount > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d anomalies at %d clients (first: %v)\n",
			res.AnomalyCount, clients, res.Anomalies[0])
	}
	return run, nil
}

func printRun(r benchRun) {
	hedge := "off"
	if r.Hedge {
		hedge = "on"
	}
	fmt.Fprintf(os.Stdout, "clients=%-4d hedge=%-3s p50=%6.2fms p95=%6.2fms p99=%6.2fms rps=%8.0f anomalies=%d\n",
		r.Clients, hedge, r.P50Ms, r.P95Ms, r.P99Ms, r.RPS, r.Anomalies)
}

func writeReport(rep benchReport, path string) error {
	if path == "" {
		return nil
	}
	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(body, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d runs)\n", path, len(rep.Runs))
	return nil
}

func parseClients(list string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-clients entries must be positive integers, got %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-clients is empty")
	}
	return out, nil
}
