package main

import "testing"

func runPair(clients int, p99Off, p99On float64) []benchRun {
	return []benchRun{
		{Clients: clients, Hedge: false, P99Ms: p99Off},
		{Clients: clients, Hedge: true, P99Ms: p99On},
	}
}

func TestHedgeCrossover(t *testing.T) {
	var runs []benchRun
	runs = append(runs, runPair(8, 10, 6)...)    // hedging wins
	runs = append(runs, runPair(64, 20, 15)...)  // still wins
	runs = append(runs, runPair(256, 40, 55)...) // amplification: loses
	cross, ok := hedgeCrossover(runs)
	if !ok || cross != 256 {
		t.Errorf("crossover = %d (ok=%v), want 256", cross, ok)
	}

	// Hedging ahead everywhere → crossover 0, still comparable.
	cross, ok = hedgeCrossover(append(runPair(8, 10, 6), runPair(64, 20, 12)...))
	if !ok || cross != 0 {
		t.Errorf("all-wins sweep: crossover = %d (ok=%v), want 0, true", cross, ok)
	}

	// A tie counts as the crossover: hedging no longer pays for its
	// duplicate probes.
	cross, ok = hedgeCrossover(runPair(32, 25, 25))
	if !ok || cross != 32 {
		t.Errorf("tie: crossover = %d (ok=%v), want 32", cross, ok)
	}

	// Single-sided sweeps have nothing to compare.
	if _, ok := hedgeCrossover([]benchRun{{Clients: 8, Hedge: true, P99Ms: 5}}); ok {
		t.Error("hedge-only sweep should not report a crossover")
	}
	if _, ok := hedgeCrossover(nil); ok {
		t.Error("empty sweep should not report a crossover")
	}

	// Unpaired levels are ignored; the earliest paired loss wins even
	// when runs arrive out of order.
	runs = append(runPair(128, 30, 35), benchRun{Clients: 512, Hedge: true, P99Ms: 99})
	runs = append(runs, runPair(16, 12, 8)...)
	cross, ok = hedgeCrossover(runs)
	if !ok || cross != 128 {
		t.Errorf("out-of-order sweep: crossover = %d (ok=%v), want 128", cross, ok)
	}
}
