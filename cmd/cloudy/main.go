// Command cloudy runs the reproduction of "Cloudy with a Chance of
// Short RTTs" end to end and prints the paper's tables and figures.
//
// Usage:
//
//	cloudy world  [-seed N]                      summarize the synthetic Internet
//	cloudy report [-seed N] [-scale F] [-cycles N] [-figure ID]
//	                                             run the study; print all (or one) figure
//	cloudy export [-seed N] [-scale F] -pings F -traces F
//	                                             run the study; write the dataset
//	cloudy serve  [-seed N] [-scale F] [-addr A] run or load a campaign, build the
//	                                             sharded store, serve the /v1 query API
//	                                             (admission control, hedged fan-out and
//	                                             -reseal live store swaps built in);
//	                                             -segments DIR serves sealed columnar
//	                                             files from mmap instead
//	cloudy segment -out DIR                      run or load a campaign and write the
//	                                             sealed store as columnar segment files
//	                                             with merged quantile sketches
//	cloudy benchsegment [-out F]                 benchmark segment build/open/query
//	                                             against the in-memory streaming build
//	cloudy loadgen [-seed N] [-clients LIST]     drive a concurrency sweep against the
//	                                             query API (in-process or -base URL) and
//	                                             write BENCH_serve.json
//	cloudy coordinator [-seed N] [-addr A]       lease campaign shards to a worker fleet
//	                                             and merge the returned binary streams
//	cloudy worker [-addr A] [-name ID]           serve campaign shards for a coordinator
//	cloudy benchwire [-out F]                    benchmark the binary wire codec against
//	                                             the NDJSON text formats
//
// Figure IDs accepted by -figure: table1, fig3, fig4, fig5, fig6,
// fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig15, fig16, fig17,
// fig18, fig19, plus the extensions: flattening, providers, edge, 5g,
// closeness, takeaway.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"time"

	"repro/internal/admit"
	"repro/internal/analysis"
	"repro/internal/atlasfmt"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/report"
	"repro/internal/sample"
	"repro/internal/segment"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/world"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch os.Args[1] {
	case "world":
		err = cmdWorld(os.Args[2:])
	case "report":
		err = cmdReport(ctx, os.Args[2:])
	case "export":
		err = cmdExport(ctx, os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "serve":
		err = cmdServe(ctx, os.Args[2:])
	case "segment":
		err = cmdSegment(ctx, os.Args[2:])
	case "benchsegment":
		err = cmdBenchSegment(ctx, os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(ctx, os.Args[2:])
	case "coordinator":
		err = cmdCoordinator(ctx, os.Args[2:])
	case "worker":
		err = cmdWorker(ctx, os.Args[2:])
	case "benchwire":
		err = cmdBenchwire(ctx, os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cloudy:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cloudy world   [-seed N]
  cloudy report  [-seed N] [-scale F] [-cycles N] [-figure ID]
                 [-scenario NAME] [-diurnal F] [-cycle-quota N]
  cloudy export  [-seed N] [-scale F] [-format csv|atlas] -pings FILE -traces FILE
  cloudy analyze [-seed N] -pings FILE -traces FILE
  cloudy serve   [-seed N] [-scale F] [-addr HOST:PORT] [-shards N] [-pings FILE -traces FILE]
                 [-segments DIR [-exact]] [-hedge] [-hedge-inflight-limit N|auto]
                 [-quota-rate R] [-quota-burst B] [-max-inflight N] [-reseal DUR]
  cloudy segment [-seed N] [-scale F] [-cycles N] [-shards N] [-pings FILE -traces FILE]
                 -out DIR [-check]
  cloudy benchsegment [-seed N] [-rows N] [-shards N] [-partitions N] [-iters N] [-out FILE]
  cloudy loadgen [-seed N] [-scale F] [-clients LIST] [-requests N] [-hedge on|off|both]
                 [-base URL] [-out FILE]
  cloudy coordinator [-seed N] [-scale F] [-addr HOST:PORT] [-cluster-shards N]
                 [-cycle-windows N] [-lease-ttl DUR] [-shards N]
  cloudy worker  [-addr HOST:PORT] [-name ID]
  cloudy benchwire [-seed N] [-scale F] [-cycles N] [-iters N] [-out FILE]`)
}

func cmdWorld(args []string) error {
	fs := flag.NewFlagSet("world", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "world seed")
	faultProfile := fs.String("faults", "", faultsUsage)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := faults.Profile(*faultProfile, *seed)
	if err != nil {
		return err
	}
	w, err := world.Build(world.Config{Seed: *seed})
	if err != nil {
		return err
	}
	if plan != nil {
		fmt.Fprintf(os.Stdout, "fault profile: %s\n\n", plan)
	}
	out := os.Stdout
	report.Table1(out, w.Inventory)
	fmt.Fprintf(out, "\nsynthetic Internet: %d ASes (%d tier-1 carriers, %d exchanges)\n",
		w.Registry.Len(), len(w.Tier1s()), len(w.IXPs()))
	access, tier2 := 0, 0
	for _, c := range geo.AllCountries() {
		access += len(w.AccessISPs(c.Code))
		tier2 += len(w.Tier2s(c.Code))
	}
	fmt.Fprintf(out, "%d access ISPs and %d national transit providers across %d countries\n",
		access, tier2, len(geo.AllCountries()))
	sc := probes.GenerateSpeedchecker(w, probes.Config{Seed: *seed, Scale: 0.02})
	fmt.Fprintf(out, "sample fleet at 2%% scale: %d speedchecker probes in %d countries\n",
		sc.Len(), len(sc.Countries()))
	return nil
}

const faultsUsage = "fault-injection profile: flaky-wireless, quota-storm, partition or none"

const scenarioUsage = "longitudinal event scenario: cable-cut, region-launch or none (fires at the campaign midpoint; prove it via /v1/changepoint)"

type studyFlags struct {
	seed       *int64
	scale      *float64
	cycles     *int
	faults     *string
	scenario   *string
	diurnal    *float64
	cycleQuota *int
}

func addStudyFlags(fs *flag.FlagSet) studyFlags {
	return studyFlags{
		seed:       fs.Int64("seed", 1, "study seed"),
		scale:      fs.Float64("scale", 0.05, "fleet scale (1.0 = the paper's 115K probes)"),
		cycles:     fs.Int("cycles", 4, "country sweeps (the paper's six months ≈ 12)"),
		faults:     fs.String("faults", "", faultsUsage),
		scenario:   fs.String("scenario", "", scenarioUsage),
		diurnal:    fs.Float64("diurnal", 0, "diurnal probe-availability amplitude in [0,1] (0 = off)"),
		cycleQuota: fs.Int("cycle-quota", 0, "measurement request budget per cycle (0 = unlimited)"),
	}
}

// coreConfig expands the study flags into a core.Config.
func (f studyFlags) coreConfig() core.Config {
	return core.Config{
		Seed: *f.seed, Scale: *f.scale, Cycles: *f.cycles,
		FaultProfile: *f.faults, Scenario: *f.scenario,
		DiurnalAmplitude: *f.diurnal, CycleQuota: *f.cycleQuota,
	}
}

func runStudy(ctx context.Context, f studyFlags) (*core.Study, core.Results, error) {
	fmt.Fprintf(os.Stderr, "running study: seed %d, scale %.2f, %d cycles...\n",
		*f.seed, *f.scale, *f.cycles)
	if *f.faults != "" && *f.faults != "none" {
		fmt.Fprintf(os.Stderr, "fault profile: %s\n", *f.faults)
	}
	if *f.scenario != "" && *f.scenario != "none" {
		fmt.Fprintf(os.Stderr, "event scenario: %s\n", *f.scenario)
	}
	study, err := core.Run(ctx, f.coreConfig())
	if err != nil {
		return nil, core.Results{}, err
	}
	np, nt := study.Store.Len()
	fmt.Fprintf(os.Stderr, "collected %d pings, %d traceroutes\n", np, nt)
	if study.SCStats.Lost > 0 || study.SCStats.Retries > 0 {
		fmt.Fprintf(os.Stderr, "loss accounting: %d attempts, %d retries, %d lost, %d quarantine trips\n",
			study.SCStats.Attempts, study.SCStats.Retries, study.SCStats.Lost, study.SCStats.Quarantined)
	}
	return study, study.Analyze(core.AnalyzeConfig{}), nil
}

func cmdReport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	f := addStudyFlags(fs)
	figure := fs.String("figure", "", "render a single figure (e.g. fig10)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	study, results, err := runStudy(ctx, f)
	if err != nil {
		return err
	}
	out := os.Stdout
	if *figure == "" {
		study.WriteReport(out, results)
		return nil
	}
	switch *figure {
	case "table1":
		report.Table1(out, study.World.Inventory)
	case "fig1", "fig2", "fig14":
		report.Density(out, results.SCDensity, 15)
		report.Density(out, results.AtlasDensity, 15)
	case "fig3":
		report.LatencyMap(out, results.LatencyMap)
	case "fig4":
		report.ContinentCDFs(out, results.ContinentCDFs, 8)
	case "fig5":
		report.PlatformDiffs(out, results.PlatformDiffs)
	case "fig6":
		report.InterContinental(out, results.AfricaBoxes)
		report.InterContinental(out, results.SouthAmericaBoxes)
	case "fig7":
		report.LastMile(out, results.LastMileAll, results.LastMileGlobal, "Figure 7")
	case "fig8":
		report.CvGroups(out, results.CvByContinent, "Figure 8")
	case "fig9":
		report.CvGroups(out, results.CvByCountry, "Figure 9")
	case "fig10":
		report.Interconnections(out, results.Interconnections)
	case "fig11":
		report.Pervasiveness(out, results.Pervasiveness)
	case "fig12":
		report.CaseStudy(out, results.GermanyUK.Matrix, results.GermanyUK.Latency, "Figure 12 (DE→UK)")
	case "fig13":
		report.CaseStudy(out, results.JapanIndia.Matrix, results.JapanIndia.Latency, "Figure 13 (JP→IN)")
	case "fig15":
		report.Protocols(out, results.Protocols)
	case "fig16":
		report.Matched(out, results.MatchedDiffs)
	case "fig17":
		report.CaseStudy(out, results.UkraineUK.Matrix, results.UkraineUK.Latency, "Figure 17 (UA→UK)")
	case "fig18":
		report.CaseStudy(out, results.BahrainIndia.Matrix, results.BahrainIndia.Latency, "Figure 18 (BH→IN)")
	case "fig19":
		report.LastMile(out, results.LastMileNearest, nil, "Figure 19")
	case "flattening":
		report.Flattening(out, results.Flattening)
	case "providers":
		report.ProviderConsistency(out, results.ProviderConsistency)
	case "edge":
		report.EdgeScenarios(out, results.EdgeScenarios, results.EdgeVerdicts)
	case "5g":
		report.FiveG(out, results.FiveGToday, results.FiveGPromised)
	case "closeness":
		report.Closeness(out, results.SCCloseness, 12)
	case "takeaway":
		s := analysis.Thresholds(results.LatencyMap)
		fmt.Fprintf(out, "countries %d: <MTP %d, <HPL %d, <HRT %d\n",
			s.Countries, s.UnderMTP, s.UnderHPL, s.UnderHRT)
	default:
		return fmt.Errorf("unknown figure %q", *figure)
	}
	return nil
}

func cmdExport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	f := addStudyFlags(fs)
	pingsPath := fs.String("pings", "", "ping output path (CSV or Atlas NDJSON)")
	tracesPath := fs.String("traces", "", "traceroute output path (JSONL or Atlas NDJSON)")
	format := fs.String("format", "csv", "output format: csv (published dataset) or atlas (RIPE Atlas NDJSON + meta sidecar)")
	stream := fs.Bool("stream", false, "stream records to disk during the campaign (csv format only; constant memory, use for -scale 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pingsPath == "" || *tracesPath == "" {
		return fmt.Errorf("export needs -pings and -traces paths")
	}
	if *format != "csv" && *format != "atlas" {
		return fmt.Errorf("unknown format %q", *format)
	}
	if *stream {
		if *format != "csv" {
			return fmt.Errorf("-stream supports only -format csv")
		}
		return streamExport(ctx, f, *pingsPath, *tracesPath)
	}
	study, _, err := runStudy(ctx, f)
	if err != nil {
		return err
	}
	pf, err := os.Create(*pingsPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	tf, err := os.Create(*tracesPath)
	if err != nil {
		return err
	}
	defer tf.Close()
	switch *format {
	case "csv":
		if err := study.ExportDataset(pf, tf); err != nil {
			return err
		}
	case "atlas":
		meta := atlasfmt.NewMeta()
		if err := atlasfmt.ExportPings(pf, study.Store.Pings, meta); err != nil {
			return err
		}
		if err := atlasfmt.ExportTraces(tf, study.Store.Traces, meta); err != nil {
			return err
		}
		mf, err := os.Create(*pingsPath + ".meta.json")
		if err != nil {
			return err
		}
		defer mf.Close()
		if err := meta.WriteMeta(mf); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote sidecar %s\n", *pingsPath+".meta.json")
	}
	fmt.Fprintf(os.Stderr, "wrote %s and %s\n", *pingsPath, *tracesPath)
	return nil
}

// streamExport runs both campaigns with a file sink, never holding the
// dataset in memory — the path for full-scale (-scale 1) runs.
func streamExport(ctx context.Context, f studyFlags, pingsPath, tracesPath string) error {
	setup, err := core.Prepare(f.coreConfig())
	if err != nil {
		return err
	}
	pf, err := os.Create(pingsPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	tf, err := os.Create(tracesPath)
	if err != nil {
		return err
	}
	defer tf.Close()
	bufP := bufio.NewWriterSize(pf, 1<<20)
	bufT := bufio.NewWriterSize(tf, 1<<20)

	// One sink across both campaigns: a second sink would emit a second
	// CSV header mid-file. A degraded file sink means an incomplete
	// export, so any error is fatal here.
	sink := dataset.NewFileSink(bufP, bufT)
	_, scStats, atStats, err := setup.RunCampaigns(ctx, sink)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamed %d pings, %d traceroutes\n",
		scStats.Pings+atStats.Pings, scStats.Traceroutes+atStats.Traceroutes)
	if err := bufP.Flush(); err != nil {
		return err
	}
	return bufT.Flush()
}

// cmdServe builds the sharded measurement store — from a fresh campaign
// (honouring -faults) or a previously exported dataset — and serves it
// over the /v1 HTTP query API until interrupted, then drains (readiness
// flips first). Admission control is on by default; -reseal re-runs the
// campaign on an interval and atomically swaps the fresh store in while
// serving.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	f := addStudyFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	pingsPath := fs.String("pings", "", "serve a prior export: ping CSV path (requires -traces)")
	tracesPath := fs.String("traces", "", "serve a prior export: traceroute JSONL path (requires -pings)")
	shards := fs.Int("shards", 0, "store shard count (0 = default)")
	cacheEntries := fs.Int("cache", 256, "response cache entries")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	hedgeFlag := fs.Bool("hedge", false, "hedge straggler shards in the query fan-out")
	hedgeLimit := fs.String("hedge-inflight-limit", "", `hedging in-flight ceiling: "" = half the admission ceiling, "auto" = the hedge_crossover_clients calibrated into BENCH_serve.json by loadgen, or an explicit integer`)
	quotaRate := fs.Float64("quota-rate", 0, "per-client quota, requests/s (0 = default 100, negative disables)")
	quotaBurst := fs.Float64("quota-burst", 0, "per-client burst capacity (0 = 2x rate)")
	maxInflight := fs.Int("max-inflight", 0, "global concurrency ceiling, shed 503 past it (0 = default 1024, negative disables)")
	reseal := fs.Duration("reseal", 0, "re-run the campaign with a bumped seed and swap the store live on this interval (campaign mode only)")
	segmentsDir := fs.String("segments", "", "serve a segment directory written by `cloudy segment -out DIR` from mmap instead of building a store")
	exactFlag := fs.Bool("exact", false, "with -segments: answer figure queries from the full columns instead of the merged quantile sketches")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*pingsPath == "") != (*tracesPath == "") {
		return fmt.Errorf("serve needs both -pings and -traces to load an export")
	}
	if *reseal > 0 && *pingsPath != "" {
		return fmt.Errorf("-reseal re-runs the campaign and cannot be combined with -pings/-traces")
	}
	if *exactFlag && *segmentsDir == "" {
		return fmt.Errorf("-exact only applies to -segments")
	}

	// One registry and tracer span the whole process: campaign, bus,
	// store feed, seal and the query service all register here, so
	// /v1/metricsz and /v1/tracez show the full spine.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	ctx = obs.ContextWithTracer(ctx, tracer)

	// Segment mode: the store was sealed and written earlier; mmap the
	// columnar files and answer from page cache. Hedging and re-sealing
	// are live-store concepts and do not apply.
	if *segmentsDir != "" {
		if *pingsPath != "" || *reseal > 0 || *hedgeFlag {
			return fmt.Errorf("-segments serves sealed files and cannot be combined with -pings/-traces, -reseal or -hedge")
		}
		rd, err := segment.Open(*segmentsDir, segment.Options{Exact: *exactFlag, Obs: reg})
		if err != nil {
			return err
		}
		defer rd.Close()
		mode := "segments"
		if *exactFlag {
			mode = "segments-exact"
		}
		sum := rd.Summary()
		fmt.Fprintf(os.Stderr, "segments mounted (%s): %d rows in %d shards (%d countries, %d providers)\n",
			mode, sum.Rows, sum.Shards, sum.Countries, sum.Providers)
		srv := serve.New(rd, serve.Options{
			CacheEntries: *cacheEntries, Timeout: *timeout,
			Obs: reg, Tracer: tracer, EnablePprof: *pprofFlag, StoreMode: mode,
			Admit: admit.Options{
				RatePerSec: *quotaRate, Burst: *quotaBurst, MaxInFlight: *maxInflight,
			},
		})
		fmt.Fprintf(os.Stderr, "serving http://%s/v1/{latency-map,cdf,platform-diff,peering-shares,healthz,readyz,statsz,metricsz,tracez} (ctrl-c drains)\n", *addr)
		return srv.ListenAndServe(ctx, *addr)
	}

	// Both paths below build the columnar store incrementally through a
	// store.Feed — no dataset.Store is ever materialized for serving.
	var st *store.Store
	if *pingsPath != "" {
		w, err := world.Build(world.Config{Seed: *f.seed})
		if err != nil {
			return err
		}
		feed := store.NewFeed(pipeline.NewProcessor(w), store.Options{Shards: *shards, Obs: reg})
		if err := scanExport(*pingsPath, *tracesPath, feed); err != nil {
			return err
		}
		np, nt := feed.Len()
		fmt.Fprintf(os.Stderr, "streamed %d pings, %d traceroutes from export\n", np, nt)
		st = feed.SealContext(ctx)
	} else {
		cfg := f.coreConfig()
		cfg.Obs = reg
		var err error
		st, err = campaignStore(ctx, cfg, reg, *shards)
		if err != nil {
			return err
		}
	}
	// Hedging is gated on the server's live admission gauge: past the
	// ceiling, firing a second shard probe per straggler would amplify
	// exactly the load that is causing the straggling. The server
	// doesn't exist yet, so the gauge is late-bound; srv is assigned
	// before the listener accepts its first request.
	var srv *serve.Server
	hedgeOpts := store.HedgeOptions{Enabled: true}
	if eff := *maxInflight; eff >= 0 {
		if eff == 0 {
			eff = admit.DefaultMaxInFlight
		}
		hedgeOpts.InFlight = func() int64 {
			if srv == nil {
				return 0
			}
			return srv.InFlight()
		}
		limit, err := resolveHedgeLimit(*hedgeLimit, eff)
		if err != nil {
			return err
		}
		hedgeOpts.InFlightLimit = limit
	}
	if *hedgeFlag {
		st = st.WithHedge(hedgeOpts)
	}
	sum := st.Summary()
	fmt.Fprintf(os.Stderr, "store sealed: %d rows in %d shards (%d countries, %d providers; shard balance %d..%d rows)\n",
		sum.Rows, sum.Shards, sum.Countries, sum.Providers, sum.MinShardRows, sum.MaxShardRows)

	srv = serve.New(st, serve.Options{
		CacheEntries: *cacheEntries, Timeout: *timeout,
		Obs: reg, Tracer: tracer, EnablePprof: *pprofFlag, StoreMode: "memory",
		Admit: admit.Options{
			RatePerSec: *quotaRate, Burst: *quotaBurst, MaxInFlight: *maxInflight,
		},
	})
	if *reseal > 0 {
		go resealLoop(ctx, srv, f, reg, *shards, *hedgeFlag, hedgeOpts, *reseal)
	}
	fmt.Fprintf(os.Stderr, "serving http://%s/v1/{latency-map,cdf,platform-diff,peering-shares,healthz,readyz,statsz,metricsz,tracez} (ctrl-c drains)\n", *addr)
	return srv.ListenAndServe(ctx, *addr)
}

// resolveHedgeLimit turns the -hedge-inflight-limit flag into the
// concrete in-flight ceiling above which hedging stands down. The empty
// spec keeps the historical heuristic (half the admission ceiling);
// "auto" seeds the ceiling from the hedge_crossover_clients that a
// `cloudy loadgen` sweep calibrated into BENCH_serve.json — the
// concurrency where hedging's p99 win inverts — and an explicit
// integer is taken as-is.
func resolveHedgeLimit(spec string, admissionCeiling int) (int64, error) {
	switch spec {
	case "":
		return int64(admissionCeiling) / 2, nil
	case "auto":
		data, err := os.ReadFile("BENCH_serve.json")
		if err != nil {
			return 0, fmt.Errorf("-hedge-inflight-limit auto: %w (run `cloudy loadgen -hedge both -out BENCH_serve.json` first)", err)
		}
		var rep struct {
			HedgeCrossoverClients *int `json:"hedge_crossover_clients"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			return 0, fmt.Errorf("-hedge-inflight-limit auto: parsing BENCH_serve.json: %w", err)
		}
		if rep.HedgeCrossoverClients == nil {
			return 0, fmt.Errorf("-hedge-inflight-limit auto: BENCH_serve.json carries no hedge_crossover_clients (the sweep found no crossover); pass an explicit limit")
		}
		return int64(*rep.HedgeCrossoverClients), nil
	default:
		n, err := strconv.ParseInt(spec, 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf(`-hedge-inflight-limit: want "", "auto" or a non-negative integer, got %q`, spec)
		}
		return n, nil
	}
}

// campaignStore runs the campaigns into a fresh store.Feed and seals
// it. A sample.CounterSink rides alongside the feed so the campaign
// fans out through the bounded bus — the same streaming spine a
// multi-destination run uses, with its queue telemetry live on
// /v1/metricsz while the campaign runs.
func campaignStore(ctx context.Context, cfg core.Config, reg *obs.Registry, shards int) (*store.Store, error) {
	fmt.Fprintf(os.Stderr, "running study: seed %d, scale %.2f, %d cycles...\n",
		cfg.Seed, cfg.Scale, cfg.Cycles)
	setup, err := core.Prepare(cfg)
	if err != nil {
		return nil, err
	}
	feed := store.NewFeed(pipeline.NewProcessor(setup.World), store.Options{Shards: shards, Obs: reg})
	spill, scStats, atStats, err := setup.RunCampaigns(ctx, feed, sample.NewCounterSink(reg))
	if err != nil {
		if spill == nil || !(scStats.SinkDegraded || atStats.SinkDegraded) {
			return nil, err
		}
		// The campaigns completed; the undelivered remainder sits in
		// the spill store. Fold it back in and serve the full dataset.
		fmt.Fprintf(os.Stderr, "sink degraded (%v); folding %d spilled records back into the feed\n",
			err, scStats.Spilled+atStats.Spilled)
		for i := range spill.Pings {
			if perr := feed.Ping(spill.Pings[i]); perr != nil {
				return nil, perr
			}
		}
		for i := range spill.Traces {
			if terr := feed.Trace(spill.Traces[i]); terr != nil {
				return nil, terr
			}
		}
	}
	fmt.Fprintf(os.Stderr, "streamed %d pings, %d traceroutes\n",
		scStats.Pings+atStats.Pings, scStats.Traceroutes+atStats.Traceroutes)
	return feed.SealContext(ctx), nil
}

// resealLoop is the live re-seal: on every tick it re-runs the
// campaign with a bumped seed into a brand-new feed — the old store
// keeps serving throughout — and atomically swaps the fresh seal in.
// Cache keys, singleflight keys and ETags all carry the store epoch,
// so the swap drops zero requests and can never confirm a stale 304.
func resealLoop(ctx context.Context, srv *serve.Server, f studyFlags, reg *obs.Registry, shards int, hedge bool, hedgeOpts store.HedgeOptions, interval time.Duration) {
	for n := int64(1); ; n++ {
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
		seed := *f.seed + n
		cfg := f.coreConfig()
		cfg.Seed, cfg.Obs = seed, reg
		st, err := campaignStore(ctx, cfg, reg, shards)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintf(os.Stderr, "reseal: %v\n", err)
			continue
		}
		if hedge {
			st = st.WithHedge(hedgeOpts)
		}
		epoch := srv.Swap(st)
		fmt.Fprintf(os.Stderr, "resealed: epoch %d mounted (seed %d, %d rows)\n",
			epoch, seed, st.Summary().Rows)
	}
}

// scanExport streams a previously exported dataset into any sink
// through the constant-memory codec cursors — the one export-loading
// path shared by `cloudy serve` (sink = store.Feed) and
// `cloudy analyze` (sink = dataset.StoreSink).
func scanExport(pingsPath, tracesPath string, sink dataset.Sink) error {
	pf, err := os.Open(pingsPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	tf, err := os.Open(tracesPath)
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := dataset.ScanPings(bufio.NewReaderSize(pf, 1<<20), sink.Ping); err != nil {
		return err
	}
	if err := dataset.ScanTraces(bufio.NewReaderSize(tf, 1<<20), sink.Trace); err != nil {
		return err
	}
	return sink.Close()
}

// cmdAnalyze re-runs every analysis over a previously exported dataset
// (the "published dataset + scripts" reproducibility path).
func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "seed the dataset was collected under")
	pingsPath := fs.String("pings", "", "ping CSV path")
	tracesPath := fs.String("traces", "", "traceroute JSONL path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pingsPath == "" || *tracesPath == "" {
		return fmt.Errorf("analyze needs -pings and -traces paths")
	}
	sink := dataset.NewStoreSink(nil)
	if err := scanExport(*pingsPath, *tracesPath, sink); err != nil {
		return err
	}
	np, nt := sink.Store.Len()
	fmt.Fprintf(os.Stderr, "loaded %d pings, %d traceroutes\n", np, nt)
	study, err := core.FromStore(core.Config{Seed: *seed}, sink.Store)
	if err != nil {
		return err
	}
	study.WriteReport(os.Stdout, study.Analyze(core.AnalyzeConfig{}))
	return nil
}
