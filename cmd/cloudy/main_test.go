package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout for the duration of fn.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(out)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", ferr, out)
	}
	return out
}

func TestCmdWorld(t *testing.T) {
	out := captureStdout(t, func() error { return cmdWorld([]string{"-seed", "3"}) })
	for _, want := range []string{"Table 1", "195", "tier-1 carriers", "access ISPs"} {
		if !strings.Contains(out, want) {
			t.Errorf("world output missing %q", want)
		}
	}
}

func TestExportAnalyzeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full CLI round trip in -short mode")
	}
	dir := t.TempDir()
	pings := filepath.Join(dir, "p.csv")
	traces := filepath.Join(dir, "t.jsonl")

	// Streamed export at a tiny scale.
	err := cmdExport(context.Background(), []string{
		"-seed", "3", "-scale", "0.01", "-cycles", "1", "-stream",
		"-pings", pings, "-traces", traces,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(pings); err != nil || fi.Size() == 0 {
		t.Fatalf("ping export missing: %v", err)
	}

	// Re-analysis over the exported files.
	out := captureStdout(t, func() error {
		return cmdAnalyze([]string{"-seed", "3", "-pings", pings, "-traces", traces})
	})
	for _, want := range []string{"Figure 3", "Figure 10", "Figure 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q", want)
		}
	}
}

func TestExportValidation(t *testing.T) {
	if err := cmdExport(context.Background(), []string{"-pings", "x"}); err == nil {
		t.Error("missing -traces should fail")
	}
	if err := cmdExport(context.Background(), []string{
		"-pings", "a", "-traces", "b", "-format", "xml"}); err == nil {
		t.Error("unknown format should fail")
	}
	if err := cmdExport(context.Background(), []string{
		"-pings", "a", "-traces", "b", "-format", "atlas", "-stream"}); err == nil {
		t.Error("-stream with atlas format should fail")
	}
	if err := cmdAnalyze([]string{"-pings", "only"}); err == nil {
		t.Error("analyze without -traces should fail")
	}
	if err := cmdAnalyze([]string{"-pings", "/nope/a", "-traces", "/nope/b"}); err == nil {
		t.Error("analyze with missing files should fail")
	}
}

func TestServeValidation(t *testing.T) {
	if err := cmdServe(context.Background(), []string{"-pings", "only.csv"}); err == nil {
		t.Error("serve with -pings but no -traces should fail")
	}
	if err := cmdServe(context.Background(), []string{"-traces", "only.jsonl"}); err == nil {
		t.Error("serve with -traces but no -pings should fail")
	}
	if err := cmdServe(context.Background(), []string{
		"-pings", "/nope/a.csv", "-traces", "/nope/b.jsonl"}); err == nil {
		t.Error("serve with missing export files should fail")
	}
}
