package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/segment"
	"repro/internal/store"
	"repro/internal/world"
)

// cmdSegment runs (or loads) a campaign, seals the sharded store and
// writes it out as columnar segment files — the durable form `cloudy
// serve -segments` mounts from mmap.
func cmdSegment(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("segment", flag.ExitOnError)
	f := addStudyFlags(fs)
	outDir := fs.String("out", "", "directory to write the segment files into (required)")
	shards := fs.Int("shards", 0, "store shard count (0 = default)")
	pingsPath := fs.String("pings", "", "seal a prior export: ping CSV path (requires -traces)")
	tracesPath := fs.String("traces", "", "seal a prior export: traceroute JSONL path (requires -pings)")
	check := fs.Bool("check", false, "re-read every written file and validate frames, checksums and zone maps")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" {
		return fmt.Errorf("segment needs -out DIR")
	}
	if (*pingsPath == "") != (*tracesPath == "") {
		return fmt.Errorf("segment needs both -pings and -traces to load an export")
	}

	reg := obs.NewRegistry()
	var st *store.Store
	if *pingsPath != "" {
		w, err := world.Build(world.Config{Seed: *f.seed})
		if err != nil {
			return err
		}
		feed := store.NewFeed(pipeline.NewProcessor(w), store.Options{Shards: *shards, Obs: reg})
		if err := scanExport(*pingsPath, *tracesPath, feed); err != nil {
			return err
		}
		np, nt := feed.Len()
		fmt.Fprintf(os.Stderr, "streamed %d pings, %d traceroutes from export\n", np, nt)
		st = feed.SealContext(ctx)
	} else {
		cfg := f.coreConfig()
		cfg.Obs = reg
		var err error
		st, err = campaignStore(ctx, cfg, reg, *shards)
		if err != nil {
			return err
		}
	}

	started := time.Now()
	if err := segment.Write(*outDir, st); err != nil {
		return err
	}
	elapsed := time.Since(started)
	sum := st.Summary()
	var total int64
	files := segmentFiles(*outDir, sum.Shards)
	for _, name := range files {
		fi, err := os.Stat(name)
		if err != nil {
			return err
		}
		total += fi.Size()
	}
	fmt.Fprintf(os.Stderr, "wrote %d segment files (%d bytes) for %d rows in %v\n",
		len(files), total, sum.Rows, elapsed.Round(time.Millisecond))

	if *check {
		for _, name := range files {
			raw, err := os.ReadFile(name)
			if err != nil {
				return err
			}
			if filepath.Base(name) == segment.MetaFile {
				err = segment.CheckMeta(raw)
			} else {
				err = segment.CheckShard(raw)
			}
			if err != nil {
				return fmt.Errorf("check %s: %w", filepath.Base(name), err)
			}
		}
		fmt.Fprintf(os.Stderr, "check passed: every frame, checksum and zone map validates\n")
	}
	return nil
}

func segmentFiles(dir string, shards int) []string {
	names := []string{filepath.Join(dir, segment.MetaFile)}
	for i := 0; i < shards; i++ {
		names = append(names, filepath.Join(dir, segment.ShardFile(i)))
	}
	return names
}

// ---- benchsegment ----

// segQueryBench is one endpoint × mode latency cell.
type segQueryBench struct {
	Endpoint string  `json:"endpoint"`
	Mode     string  `json:"mode"` // "exact" or "sketch"
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
}

// segErrorQuantiles summarizes sketch-vs-exact divergence over one
// family of figures.
type segErrorQuantiles struct {
	Figure string  `json:"figure"`
	Kind   string  `json:"kind"` // "relative" or "absolute"
	N      int     `json:"n"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
}

// segmentBenchReport is the BENCH_segment.json document.
type segmentBenchReport struct {
	Seed       int64 `json:"seed"`
	Rows       int   `json:"rows"`
	Shards     int   `json:"shards"`
	Partitions int   `json:"partitions"`
	Cycles     int   `json:"cycles"`
	Iters      int   `json:"iters"`
	// BuildNs is the in-memory streaming build (store.Builder feed +
	// seal) — what `cloudy serve` must do before the first query when no
	// segments exist. WriteNs/OpenNs are the segment write and the mmap
	// mount of the same data; BuildToOpenRatio = BuildNs/OpenNs is the
	// availability-to-first-query speedup segments buy.
	BuildNs          int64           `json:"build_ns"`
	WriteNs          int64           `json:"write_ns"`
	OpenNs           int64           `json:"open_ns"`
	Bytes            int64           `json:"bytes"`
	BuildToOpenRatio float64         `json:"build_to_open_ratio"`
	Queries          []segQueryBench `json:"queries"`
	// GroupRows is the sample count of the single-group probe store
	// (100x the base per-group count); GroupP99Us must stay sub-ms —
	// sketch size is bounded by the compression, not the sample count.
	GroupRows  uint64              `json:"group_rows"`
	GroupP50Us float64             `json:"group_p50_us"`
	GroupP99Us float64             `json:"group_p99_us"`
	Errors     []segErrorQuantiles `json:"errors"`
}

// synthStore seals a synthetic sharded store: rows samples spread over
// countries × providers × cycles on both platforms, deterministic in
// seed. boostCountry (if set) gets 100x its share — the single-group
// probe fixture.
func synthStore(seed int64, shards, partitions, cycles, rows int, boostCountry string) *store.Store {
	countries := []struct {
		code string
		base float64
	}{
		{"DE", 18}, {"GB", 24}, {"US", 35}, {"BR", 62}, {"JP", 41}, {"ZA", 88},
	}
	providers := []string{"AMZN", "GCP", "MSFT"}
	cells := len(countries) * len(providers) * cycles * 2
	perCell := rows / cells
	if perCell < 1 {
		perCell = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := store.NewBuilder(store.Options{Shards: shards, Partitions: partitions, Cycles: cycles})
	for _, c := range countries {
		meta, _ := geo.CountryByCode(c.code)
		n := perCell
		if c.code == boostCountry {
			n = perCell * 100
		}
		for _, platform := range []string{"speedchecker", "atlas"} {
			offset := 0.0
			if platform == "atlas" {
				offset = -2.5
			}
			for _, prov := range providers {
				for cyc := 0; cyc < cycles; cyc++ {
					for k := 0; k < n; k++ {
						b.Add(store.Sample{
							Platform: platform, Country: c.code, Continent: meta.Continent,
							Provider: prov,
							RTTms:    c.base + offset + 30*rng.Float64(),
							Cycle:    cyc,
						})
					}
				}
			}
		}
	}
	for cyc := 0; cyc < cycles; cyc++ {
		b.AddPeeringCountsAt(cyc, map[string]map[pipeline.Class]int{
			"AMZN": {pipeline.ClassDirect: 5 + cyc, pipeline.ClassDirectIXP: 2},
			"GCP":  {pipeline.ClassDirect: 3, pipeline.ClassDirectIXP: 4 + cyc%3},
		})
	}
	return b.Seal()
}

func durQuantile(ds []time.Duration, q float64) float64 {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(q * float64(len(ds)-1))
	return float64(ds[idx]) / float64(time.Microsecond)
}

func floatQuantiles(xs []float64, figure, kind string) segErrorQuantiles {
	sort.Float64s(xs)
	at := func(q float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		return xs[int(q*float64(len(xs)-1))]
	}
	out := segErrorQuantiles{Figure: figure, Kind: kind, N: len(xs), P50: at(0.5), P95: at(0.95)}
	if len(xs) > 0 {
		out.Max = xs[len(xs)-1]
	}
	return out
}

// cmdBenchSegment benchmarks the segment subsystem against the
// in-memory build it replaces: streaming build vs write+mmap-open of
// the same rows, per-endpoint query latency in exact vs sketch mode, a
// sub-ms single-group sketch probe at 100x sample count, and
// sketch-vs-exact error quantiles. Writes BENCH_segment.json with -out.
func cmdBenchSegment(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("benchsegment", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "synthesis seed")
	rows := fs.Int("rows", 200000, "approximate total sample count")
	shards := fs.Int("shards", 4, "store shard count")
	partitions := fs.Int("partitions", 4, "cycle partitions per shard")
	cycles := fs.Int("cycles", 8, "campaign cycles")
	iters := fs.Int("iters", 20, "measurement repetitions per cell")
	outPath := fs.String("out", "", "write the JSON benchmark report here (e.g. BENCH_segment.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep := segmentBenchReport{
		Seed: *seed, Rows: *rows, Shards: *shards, Partitions: *partitions,
		Cycles: *cycles, Iters: *iters,
	}

	// Build (streaming in-memory) timing: median of iters full builds.
	var builds []time.Duration
	var st *store.Store
	for i := 0; i < *iters; i++ {
		t0 := time.Now()
		st = synthStore(*seed, *shards, *partitions, *cycles, *rows, "")
		builds = append(builds, time.Since(t0))
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	sort.Slice(builds, func(i, j int) bool { return builds[i] < builds[j] })
	rep.BuildNs = int64(builds[len(builds)/2])

	dir, err := os.MkdirTemp("", "cloudy-benchsegment-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var writes, opens []time.Duration
	for i := 0; i < *iters; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("w%d", i))
		t0 := time.Now()
		if err := segment.Write(sub, st); err != nil {
			return err
		}
		writes = append(writes, time.Since(t0))
		t0 = time.Now()
		r, err := segment.Open(sub, segment.Options{})
		if err != nil {
			return err
		}
		opens = append(opens, time.Since(t0))
		r.Close()
		if i > 0 {
			os.RemoveAll(sub)
		}
	}
	sort.Slice(writes, func(i, j int) bool { return writes[i] < writes[j] })
	sort.Slice(opens, func(i, j int) bool { return opens[i] < opens[j] })
	rep.WriteNs = int64(writes[len(writes)/2])
	rep.OpenNs = int64(opens[len(opens)/2])
	if rep.OpenNs > 0 {
		rep.BuildToOpenRatio = float64(rep.BuildNs) / float64(rep.OpenNs)
	}
	segDir := filepath.Join(dir, "w0")
	sum := st.Summary()
	for _, name := range segmentFiles(segDir, sum.Shards) {
		fi, err := os.Stat(name)
		if err != nil {
			return err
		}
		rep.Bytes += fi.Size()
	}

	exact, err := segment.Open(segDir, segment.Options{Exact: true})
	if err != nil {
		return err
	}
	defer exact.Close()
	approx, err := segment.Open(segDir, segment.Options{})
	if err != nil {
		return err
	}
	defer approx.Close()

	// Per-endpoint latency, exact vs sketch. Each cell re-runs the full
	// figure query; nothing is cached between reps.
	type cell struct {
		name string
		run  func(r *segment.Reader)
	}
	cells := []cell{
		{"latency-map", func(r *segment.Reader) { r.LatencyMap(5) }},
		{"cdf", func(r *segment.Reader) { r.ContinentCDFs("speedchecker") }},
		{"platform-diff", func(r *segment.Reader) { r.PlatformDiff() }},
		{"peering-shares", func(r *segment.Reader) { r.PeeringShares() }},
		{"changepoint", func(r *segment.Reader) { r.Changepoint("speedchecker", *cycles/2, 0) }},
	}
	for _, c := range cells {
		for _, mode := range []struct {
			name string
			r    *segment.Reader
		}{{"exact", exact}, {"sketch", approx}} {
			var ds []time.Duration
			for i := 0; i < *iters; i++ {
				t0 := time.Now()
				c.run(mode.r)
				ds = append(ds, time.Since(t0))
			}
			rep.Queries = append(rep.Queries, segQueryBench{
				Endpoint: c.name, Mode: mode.name,
				P50Us: durQuantile(ds, 0.5), P99Us: durQuantile(ds, 0.99),
			})
			if ctx.Err() != nil {
				return ctx.Err()
			}
		}
	}

	// Single-group probe at 100x the base per-group sample count: the
	// sketch answer must stay sub-ms because merged digests are bounded
	// by the compression, not by how many samples fed them.
	probe := synthStore(*seed+1, *shards, *partitions, *cycles, *rows/10, "DE")
	probeDir := filepath.Join(dir, "probe")
	if err := segment.Write(probeDir, probe); err != nil {
		return err
	}
	pr, err := segment.Open(probeDir, segment.Options{})
	if err != nil {
		return err
	}
	defer pr.Close()
	var groupDs []time.Duration
	reps := *iters * 50
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		_, n, ok := pr.GroupQuantiles(store.DimCountry, "speedchecker", "DE", store.Window{}, 0.5, 0.95, 0.99)
		groupDs = append(groupDs, time.Since(t0))
		if !ok {
			return fmt.Errorf("benchsegment: group probe refused the sketch path")
		}
		rep.GroupRows = n
	}
	rep.GroupP50Us = durQuantile(groupDs, 0.5)
	rep.GroupP99Us = durQuantile(groupDs, 0.99)

	// Sketch-vs-exact error quantiles across the figure families.
	var medianErrs, fracErrs, diffErrs []float64
	emap, amap := exact.LatencyMap(1), approx.LatencyMap(1)
	for i := range emap {
		if emap[i].MedianMs != 0 {
			medianErrs = append(medianErrs, absf(amap[i].MedianMs-emap[i].MedianMs)/emap[i].MedianMs)
		}
	}
	for _, platform := range []string{"speedchecker", "atlas"} {
		ec, ac := exact.ContinentCDFs(platform), approx.ContinentCDFs(platform)
		for i := range ec {
			fracErrs = append(fracErrs,
				absf(ac[i].UnderMTP-ec[i].UnderMTP),
				absf(ac[i].UnderHPL-ec[i].UnderHPL),
				absf(ac[i].UnderHRT-ec[i].UnderHRT))
		}
	}
	ed, ad := exact.PlatformDiff(), approx.PlatformDiff()
	for i := range ed {
		for c := range ed[i].Diffs {
			diffErrs = append(diffErrs, absf(ad[i].Diffs[c]-ed[i].Diffs[c]))
		}
	}
	rep.Errors = []segErrorQuantiles{
		floatQuantiles(medianErrs, "latency-map-median", "relative"),
		floatQuantiles(fracErrs, "cdf-threshold-fraction", "absolute"),
		floatQuantiles(diffErrs, "platform-diff-ms", "absolute"),
	}

	fmt.Fprintf(os.Stdout, "build %.1fms  write %.1fms  open %.2fms  ratio %.0fx  (%d rows, %d bytes)\n",
		float64(rep.BuildNs)/1e6, float64(rep.WriteNs)/1e6, float64(rep.OpenNs)/1e6,
		rep.BuildToOpenRatio, sum.Rows, rep.Bytes)
	for _, q := range rep.Queries {
		fmt.Fprintf(os.Stdout, "%-14s %-6s p50=%8.1fµs p99=%8.1fµs\n", q.Endpoint, q.Mode, q.P50Us, q.P99Us)
	}
	fmt.Fprintf(os.Stdout, "group probe (%d rows): p50=%.1fµs p99=%.1fµs\n", rep.GroupRows, rep.GroupP50Us, rep.GroupP99Us)
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stdout, "error %-24s (%s, n=%d): p50=%.5f p95=%.5f max=%.5f\n",
			e.Figure, e.Kind, e.N, e.P50, e.P95, e.Max)
	}

	if *outPath != "" {
		body, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(body, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}
	return nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
