// Command cloudyvet runs the repo's determinism & concurrency lint pass
// (internal/lint) over the module: it loads every package, type-checks
// it with a stdlib-only importer, and applies the repo-specific
// analyzers (norawtime, noglobalrand, floateq, uncheckederr,
// ctxpropagate, storeappend).
//
// Usage:
//
//	cloudyvet [-baseline file] [-write-baseline] [packages]
//
// Packages default to ./... (the whole module). Findings print as
// "file:line:col: analyzer: message" and any finding exits 1; load or
// usage errors exit 2. -write-baseline regenerates the baseline file
// from the current findings instead of failing, which is how a
// grandfathered finding set is first recorded.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cloudyvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "lint.baseline", "baseline file of grandfathered findings (module-relative unless absolute; empty to disable)")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the baseline file from current findings and exit 0")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "cloudyvet:", err)
		return 2
	}
	pkgs, err := loadPatterns(loader, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "cloudyvet:", err)
		return 2
	}

	rel := func(path string) string {
		if r, err := filepath.Rel(loader.ModRoot, path); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(path)
	}

	findings := lint.Run(lint.DefaultConfig(), pkgs)

	resolveBaseline := func(p string) string {
		if filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(loader.ModRoot, p)
	}

	if *writeBaseline {
		f, err := os.Create(resolveBaseline(*baselinePath))
		if err != nil {
			fmt.Fprintln(stderr, "cloudyvet:", err)
			return 2
		}
		werr := lint.WriteBaseline(f, findings, rel)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "cloudyvet:", werr)
			return 2
		}
		fmt.Fprintf(stderr, "cloudyvet: wrote %d grandfathered finding(s) to %s\n", len(findings), *baselinePath)
		return 0
	}

	if *baselinePath != "" {
		f, err := os.Open(resolveBaseline(*baselinePath))
		switch {
		case err == nil:
			base, perr := lint.ParseBaseline(f)
			f.Close()
			if perr != nil {
				fmt.Fprintln(stderr, "cloudyvet:", perr)
				return 2
			}
			findings = base.Filter(findings, rel)
		case os.IsNotExist(err):
			// No baseline committed: every finding counts.
		default:
			fmt.Fprintln(stderr, "cloudyvet:", err)
			return 2
		}
	}

	for _, f := range findings {
		fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "cloudyvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// loadPatterns resolves package patterns: "./..." (or "all") loads the
// whole module; "dir/..." loads the subtree; anything else is a single
// package directory.
func loadPatterns(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	var pkgs []*lint.Package
	seen := map[string]bool{}
	add := func(ps ...*lint.Package) {
		for _, p := range ps {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			ps, err := loader.LoadModule()
			if err != nil {
				return nil, err
			}
			add(ps...)
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			ps, err := loader.LoadModule()
			if err != nil {
				return nil, err
			}
			abs, err := filepath.Abs(root)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(loader.ModRoot, abs)
			if err != nil {
				return nil, err
			}
			rel = filepath.ToSlash(rel)
			if rel == "." {
				rel = ""
			}
			for _, p := range ps {
				if rel == "" || p.RelPath == rel || strings.HasPrefix(p.RelPath, rel+"/") {
					add(p)
				}
			}
		default:
			p, err := loader.LoadDir(pat)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return pkgs, nil
}
