// Command cloudyvet runs the repo's determinism & concurrency lint pass
// (internal/lint) over the module: it loads every package, type-checks
// it with a stdlib-only importer, and applies the repo-specific
// analyzers — the determinism set (norawtime, noglobalrand, floateq,
// uncheckederr, ctxpropagate, storeappend) and the flow-aware set
// (spanend, goroutineleak, lockheld, frameexhaustive, metricname).
//
// Usage:
//
//	cloudyvet [-baseline file] [-write-baseline] [-json] [-v] [-workers n] [packages]
//
// Packages default to ./... (the whole module). Findings print as
// "file:line:col: analyzer: message" and any finding exits 1; load or
// usage errors exit 2. -write-baseline regenerates the baseline file
// from the current findings instead of failing, which is how a
// grandfathered finding set is first recorded. -json emits the
// (baseline-filtered) findings as a JSON array of
// {file,line,col,analyzer,message} objects on stdout — the shape CI
// turns into GitHub error annotations — with the same exit codes.
// -v reports load/analysis wall time and per-analyzer cost on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire shape. file is module-relative, so the
// CI annotation step can hand it straight to ::error file=...
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cloudyvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "lint.baseline", "baseline file of grandfathered findings (module-relative unless absolute; empty to disable)")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the baseline file from current findings and exit 0")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	verbose := fs.Bool("v", false, "report load/analysis timing and per-analyzer cost on stderr")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "packages analyzed concurrently")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// The stopwatch lives here, not in internal/lint: the lint package
	// is itself under norawtime, so the driver injects elapsed time the
	// same way the engine injects clocks into the simulators.
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "cloudyvet:", err)
		return 2
	}
	pkgs, err := loadPatterns(loader, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "cloudyvet:", err)
		return 2
	}
	loadDone := clock()

	rel := func(path string) string {
		if r, err := filepath.Rel(loader.ModRoot, path); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(path)
	}

	opts := lint.RunOptions{Workers: *workers}
	if *verbose {
		opts.Clock = clock
	}
	findings, timings := lint.RunWith(lint.DefaultConfig(), pkgs, opts)
	if *verbose {
		fmt.Fprintf(stderr, "cloudyvet: %d package(s), load %s, analysis %s (%d workers)\n",
			len(pkgs), loadDone.Round(time.Millisecond), (clock() - loadDone).Round(time.Millisecond), *workers)
		for _, t := range timings {
			fmt.Fprintf(stderr, "cloudyvet:   %-16s %8s  %3d pkg(s)  %d finding(s)\n",
				t.Name, t.Elapsed.Round(10*time.Microsecond), t.Packages, t.Findings)
		}
	}

	resolveBaseline := func(p string) string {
		if filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(loader.ModRoot, p)
	}

	if *writeBaseline {
		f, err := os.Create(resolveBaseline(*baselinePath))
		if err != nil {
			fmt.Fprintln(stderr, "cloudyvet:", err)
			return 2
		}
		werr := lint.WriteBaseline(f, findings, rel)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "cloudyvet:", werr)
			return 2
		}
		fmt.Fprintf(stderr, "cloudyvet: wrote %d grandfathered finding(s) to %s\n", len(findings), *baselinePath)
		return 0
	}

	if *baselinePath != "" {
		f, err := os.Open(resolveBaseline(*baselinePath))
		switch {
		case err == nil:
			base, perr := lint.ParseBaseline(f)
			f.Close()
			if perr != nil {
				fmt.Fprintln(stderr, "cloudyvet:", perr)
				return 2
			}
			findings = base.Filter(findings, rel)
		case os.IsNotExist(err):
			// No baseline committed: every finding counts.
		default:
			fmt.Fprintln(stderr, "cloudyvet:", err)
			return 2
		}
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     rel(f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "cloudyvet:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "cloudyvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// loadPatterns resolves package patterns: "./..." (or "all") loads the
// whole module; "dir/..." loads the subtree; anything else is a single
// package directory.
func loadPatterns(loader *lint.Loader, patterns []string) ([]*lint.Package, error) {
	var pkgs []*lint.Package
	seen := map[string]bool{}
	add := func(ps ...*lint.Package) {
		for _, p := range ps {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all":
			ps, err := loader.LoadModule()
			if err != nil {
				return nil, err
			}
			add(ps...)
		case strings.HasSuffix(pat, "/..."):
			root := strings.TrimSuffix(pat, "/...")
			ps, err := loader.LoadModule()
			if err != nil {
				return nil, err
			}
			abs, err := filepath.Abs(root)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(loader.ModRoot, abs)
			if err != nil {
				return nil, err
			}
			rel = filepath.ToSlash(rel)
			if rel == "." {
				rel = ""
			}
			for _, p := range ps {
				if rel == "" || p.RelPath == rel || strings.HasPrefix(p.RelPath, rel+"/") {
					add(p)
				}
			}
		default:
			p, err := loader.LoadDir(pat)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return pkgs, nil
}
