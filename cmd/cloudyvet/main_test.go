package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture points at a golden fixture package relative to this test's
// working directory (cmd/cloudyvet).
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
}

// TestViolationsExitNonzero seeds the driver with the norawtime fixture
// (known violations, in the default norawtime scope) and requires the
// documented nonzero exit plus a file:line:col diagnostic.
func TestViolationsExitNonzero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline=", fixture("norawtime")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "norawtime: time.Now reads the wall clock") {
		t.Errorf("missing time.Now diagnostic in output:\n%s", out)
	}
	if !strings.Contains(out, "internal/lint/testdata/src/norawtime/a.go:") {
		t.Errorf("diagnostics are not module-relative file:line form:\n%s", out)
	}
}

// TestCleanPackageExitsZero runs the driver over a package that must be
// clean under every analyzer.
func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline=", filepath.Join("..", "..", "internal", "stats")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestBaselineGrandfathersAndCatchesGrowth writes a baseline covering
// the fixture's findings (exit 0), then shows the same baseline still
// fails a fixture pair whose count grew.
func TestBaselineGrandfathersAndCatchesGrowth(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.baseline")

	var stdout, stderr strings.Builder
	if code := run([]string{"-baseline", base, "-write-baseline", fixture("norawtime")}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "norawtime") {
		t.Fatalf("baseline has no norawtime entries:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", base, fixture("norawtime")}, &stdout, &stderr); code != 0 {
		t.Fatalf("grandfathered run exit = %d, want 0; stdout:\n%s", code, stdout.String())
	}

	// The noglobalrand fixture's wall-clock findings are not in the
	// baseline, so adding that package to the run must fail again.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", base, fixture("norawtime"), fixture("noglobalrand")}, &stdout, &stderr); code != 1 {
		t.Fatalf("unbaselined package exit = %d, want 1; stdout:\n%s", code, stdout.String())
	}
}

// TestJSONRoundTrip drives -json over a fixture with known findings and
// round-trips the output through the same transformation CI applies
// (jq building ::error annotations): every object must carry a
// module-relative file, a 1-based line/col, the analyzer and the
// message, and reassembling the plain-text form from the JSON must
// reproduce the non-JSON run exactly.
func TestJSONRoundTrip(t *testing.T) {
	var jsonOut, stderr strings.Builder
	code := run([]string{"-baseline=", "-json", fixture("metricname")}, &jsonOut, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(jsonOut.String()), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, jsonOut.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded from -json output")
	}
	var rebuilt, annotations strings.Builder
	for _, f := range findings {
		if !strings.HasPrefix(f.File, "internal/lint/testdata/src/metricname/") {
			t.Errorf("file %q is not module-relative", f.File)
		}
		if f.Line <= 0 || f.Col <= 0 {
			t.Errorf("finding %+v has non-positive position", f)
		}
		if f.Analyzer != "metricname" {
			t.Errorf("analyzer = %q, want metricname", f.Analyzer)
		}
		if f.Message == "" {
			t.Errorf("finding %s:%d has an empty message", f.File, f.Line)
		}
		fmt.Fprintf(&rebuilt, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		// The CI annotation shape; its fields must never contain a
		// newline or the annotation breaks.
		ann := fmt.Sprintf("::error file=%s,line=%d,col=%d::%s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		if strings.ContainsAny(ann, "\n\r") {
			t.Errorf("annotation contains a line break: %q", ann)
		}
		fmt.Fprintln(&annotations, ann)
	}
	var plainOut strings.Builder
	stderr.Reset()
	if code := run([]string{"-baseline=", fixture("metricname")}, &plainOut, &stderr); code != 1 {
		t.Fatalf("plain run exit = %d, want 1; stderr: %s", code, stderr.String())
	}
	if rebuilt.String() != plainOut.String() {
		t.Errorf("JSON does not round-trip to the plain output:\njson-rebuilt:\n%s\nplain:\n%s", rebuilt.String(), plainOut.String())
	}
}

// TestJSONCleanIsEmptyArray keeps the clean-run JSON shape stable for
// the CI jq step: an empty array, not null, and exit 0.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline=", "-json", filepath.Join("..", "..", "internal", "stats")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout.String())
	}
}
