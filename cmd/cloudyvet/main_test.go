package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture points at a golden fixture package relative to this test's
// working directory (cmd/cloudyvet).
func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", "src", name)
}

// TestViolationsExitNonzero seeds the driver with the norawtime fixture
// (known violations, in the default norawtime scope) and requires the
// documented nonzero exit plus a file:line:col diagnostic.
func TestViolationsExitNonzero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline=", fixture("norawtime")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "norawtime: time.Now reads the wall clock") {
		t.Errorf("missing time.Now diagnostic in output:\n%s", out)
	}
	if !strings.Contains(out, "internal/lint/testdata/src/norawtime/a.go:") {
		t.Errorf("diagnostics are not module-relative file:line form:\n%s", out)
	}
}

// TestCleanPackageExitsZero runs the driver over a package that must be
// clean under every analyzer.
func TestCleanPackageExitsZero(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-baseline=", filepath.Join("..", "..", "internal", "stats")}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestBaselineGrandfathersAndCatchesGrowth writes a baseline covering
// the fixture's findings (exit 0), then shows the same baseline still
// fails a fixture pair whose count grew.
func TestBaselineGrandfathersAndCatchesGrowth(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.baseline")

	var stdout, stderr strings.Builder
	if code := run([]string{"-baseline", base, "-write-baseline", fixture("norawtime")}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0; stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "norawtime") {
		t.Fatalf("baseline has no norawtime entries:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", base, fixture("norawtime")}, &stdout, &stderr); code != 0 {
		t.Fatalf("grandfathered run exit = %d, want 0; stdout:\n%s", code, stdout.String())
	}

	// The noglobalrand fixture's wall-clock findings are not in the
	// baseline, so adding that package to the run must fail again.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", base, fixture("norawtime"), fixture("noglobalrand")}, &stdout, &stderr); code != 1 {
		t.Fatalf("unbaselined package exit = %d, want 1; stdout:\n%s", code, stdout.String())
	}
}
