// Atlasbridge demonstrates interoperability with the RIPE Atlas result
// format the comparison dataset ships in: it runs a small campaign,
// exports the measurements as Atlas NDJSON plus the probe-metadata
// sidecar, re-imports them, and re-runs an analysis over the imported
// records to show the round trip is lossless.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	cloudy "repro"
	"repro/internal/analysis"
	"repro/internal/atlasfmt"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)
	study, err := cloudy.RunStudy(context.Background(), cloudy.StudyConfig{
		Seed: 13, Scale: 0.02, Cycles: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	np, nt := study.Store.Len()
	fmt.Printf("campaign: %d pings, %d traceroutes\n", np, nt)

	// Export to the Atlas wire format.
	meta := atlasfmt.NewMeta()
	var pingsNDJSON, tracesNDJSON bytes.Buffer
	if err := atlasfmt.ExportPings(&pingsNDJSON, study.Store.Pings, meta); err != nil {
		log.Fatal(err)
	}
	if err := atlasfmt.ExportTraces(&tracesNDJSON, study.Store.Traces, meta); err != nil {
		log.Fatal(err)
	}
	var sidecar bytes.Buffer
	if err := meta.WriteMeta(&sidecar); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d KiB of Atlas NDJSON pings, %d KiB traceroutes, %d probe IDs in the sidecar\n",
		pingsNDJSON.Len()/1024, tracesNDJSON.Len()/1024, len(meta.ProbeIDs()))

	// Re-import through the sidecar, as an Atlas user would join the
	// probe-metadata API.
	loadedMeta, err := atlasfmt.ReadMeta(&sidecar)
	if err != nil {
		log.Fatal(err)
	}
	pings, skippedP, err := atlasfmt.ImportPings(&pingsNDJSON, loadedMeta)
	if err != nil {
		log.Fatal(err)
	}
	traces, skippedT, err := atlasfmt.ImportTraces(&tracesNDJSON, loadedMeta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-imported %d pings (%d skipped), %d traceroutes (%d skipped)\n",
		len(pings), skippedP, len(traces), skippedT)

	// Same analysis, same answers.
	imported := dataset.FromRecords(pings, traces)
	orig := analysis.ContinentDistributions(study.Store, "speedchecker")
	redo := analysis.ContinentDistributions(imported, "speedchecker")
	fmt.Println("\nunder-HPL share per continent, original vs re-imported:")
	for i := range orig {
		if i >= len(redo) {
			break
		}
		fmt.Printf("  %s: %.4f vs %.4f\n", orig[i].Continent, orig[i].UnderHPL, redo[i].UnderHPL)
		if orig[i].UnderHPL != redo[i].UnderHPL {
			log.Fatalf("round trip drifted on %s", orig[i].Continent)
		}
	}
	fmt.Println("lossless ✓")
}
