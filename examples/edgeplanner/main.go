// Edgeplanner runs the §7 what-if analysis: replay the measured
// campaign under three compute placements (status-quo cloud, a regional
// edge datacenter per country, a server at the last-mile hop) and
// decide, per continent, whether building edge infrastructure is worth
// it — the paper's "which networks can live without the edge?".
package main

import (
	"context"
	"fmt"
	"log"

	cloudy "repro"
	"repro/internal/edge"
)

func main() {
	log.SetFlags(0)
	study, err := cloudy.RunStudy(context.Background(), cloudy.StudyConfig{
		Seed: 21, Scale: 0.05, Cycles: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	scenarios := edge.Evaluate(study.Processed, 4 /* ms regional haul */)
	fmt.Println("Attainable latency by compute placement (medians, % under QoE thresholds):")
	fmt.Printf("%-5s %-15s %9s %7s %7s %7s\n", "cont", "placement", "median", "<MTP", "<HPL", "<HRT")
	for _, s := range scenarios {
		fmt.Printf("%-5s %-15s %7.1fms %6.0f%% %6.0f%% %6.0f%%\n",
			s.Continent, s.Placement, s.Latency.Median,
			100*s.UnderMTP, 100*s.UnderHPL, 100*s.UnderHRT)
	}

	fmt.Println("\nVerdicts (sorted by what a regional edge would buy):")
	for _, v := range edge.Verdicts(scenarios) {
		decision := "cloud is enough — spend on peering, not edge"
		if v.EdgeWorthwhile {
			decision = "regional edge worthwhile"
		}
		fmt.Printf("  %-3s cloud %5.1f ms → edge %5.1f ms (gain %5.1f ms): %s\n",
			v.Continent, v.CloudMedianMs, v.EdgeMedianMs, v.GainMs, decision)
		if v.MTPFeasibleAtLastMile {
			fmt.Printf("      (surprisingly, MTP would be feasible at the last mile here)\n")
		}
	}
	fmt.Println("\n§7's conclusion holds when no continent reaches MTP even at the last-mile hop,")
	fmt.Println("and only under-provisioned continents clear the edge-worthwhile bar.")
}
