// Lastmile isolates the wireless access segment the way §5 of the paper
// does, and answers the §7 question for latency-critical applications:
// if a compute server sat directly at the last-mile hop — the best any
// edge deployment can do — would Motion-to-Photon applications work?
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	cloudy "repro"
	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	study, err := cloudy.RunStudy(context.Background(), cloudy.StudyConfig{
		Seed: 3, Scale: 0.05, Cycles: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	impacts := analysis.LastMile(study.Processed, false)
	global := analysis.GlobalLastMile(study.Processed)
	report.LastMile(os.Stdout, impacts, global, "Last-mile share and absolute latency (Figure 7)")

	cvs := analysis.LastMileCvByContinent(study.Processed, 5)
	fmt.Println()
	report.CvGroups(os.Stdout, cvs, "Last-mile stability (Figure 8, Cv = σ/μ per probe)")

	// The §7 verdict: collect the wireless USR-ISP samples and ask how
	// often even a zero-distance edge server would meet MTP.
	var wireless []float64
	for i := range study.Processed {
		p := &study.Processed[i]
		lm := p.LastMile
		if p.Record.VP.Platform == "speedchecker" && lm.Kind.String() != "?" && lm.Kind.String() != "wired" && lm.UserToISPms > 0 {
			wireless = append(wireless, lm.UserToISPms)
		}
	}
	if len(wireless) == 0 {
		log.Fatal("no wireless last-mile samples")
	}
	cdf, err := stats.NewCDF(wireless)
	if err != nil {
		log.Fatal(err)
	}
	med, _ := stats.Median(wireless)
	fmt.Printf("\nEdge feasibility check (%d wireless last-mile samples):\n", len(wireless))
	fmt.Printf("  median wireless access RTT: %.1f ms (MTP budget is %d ms end-to-end)\n", med, cloudy.MTPms)
	fmt.Printf("  even with a server AT the last-mile hop, only %.0f%% of accesses fit MTP\n",
		100*cdf.At(cloudy.MTPms))
	fmt.Printf("  ...but %.0f%% fit HPL, which the cloud already delivers in dense regions\n",
		100*cdf.At(cloudy.HPLms))
	fmt.Println("conclusion (§7): MTP-class apps stay infeasible over today's wireless no matter")
	fmt.Println("where compute sits; HPL/HRT apps don't need the edge where datacenters are dense.")
}
