// Latencymap reproduces the Figure 3 world map and uses it the way the
// paper's §7 discussion does: deciding, per country, whether edge
// computing would buy anything over the current cloud deployment.
//
// A country whose cloud median already sits under HPL gains little from
// edge servers (only a very dense edge could push it below MTP, and the
// wireless last-mile alone nearly consumes the MTP budget); a country
// stuck above HRT needs infrastructure — regional datacenters or better
// transit — before edge placement even matters.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	cloudy "repro"
)

func main() {
	log.SetFlags(0)
	study, err := cloudy.RunStudy(context.Background(), cloudy.StudyConfig{
		Seed: 7, Scale: 0.05, Cycles: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	results := study.Analyze(cloudy.AnalyzeConfig{MinMapSamples: 8})

	entries := results.LatencyMap
	sort.Slice(entries, func(i, j int) bool { return entries[i].MedianMs < entries[j].MedianMs })

	fmt.Println("Cloud access latency by country (median to closest in-continent DC):")
	fmt.Printf("%-4s %-4s %9s  %-12s %s\n", "cc", "cont", "median", "band", "edge-computing verdict")
	for _, e := range entries {
		fmt.Printf("%-4s %-4s %7.0fms  %-12s %s\n",
			e.Country, e.Continent, e.MedianMs, e.Band, verdict(e.MedianMs))
	}

	best, worst := entries[0], entries[len(entries)-1]
	fmt.Printf("\nfastest: %s (%.0f ms) — slowest: %s (%.0f ms), a %.0f× spread driven by datacenter geography\n",
		best.Country, best.MedianMs, worst.Country, worst.MedianMs, worst.MedianMs/best.MedianMs)

	// The Figure 6 question: can under-served regions escape via
	// neighbouring continents?
	fmt.Println("\nInter-continental escape routes (Figure 6):")
	for _, b := range results.AfricaBoxes {
		fmt.Printf("  %s → nearest %s DC: median %.0f ms\n", b.Country, b.TargetContinent, b.Box.Median)
	}
}

// verdict applies the §7 "which networks can live without the edge"
// reasoning to one country's median.
func verdict(median float64) string {
	switch {
	case median < cloudy.MTPms:
		return "cloud already meets MTP; edge unnecessary"
	case median < cloudy.HPLms:
		return "cloud meets HPL; edge helps only MTP apps (last-mile limits those anyway)"
	case median < cloudy.HRTms:
		return "regional edge or a nearby datacenter would help noticeably"
	default:
		return "needs infrastructure: even HRT is out of reach today"
	}
}
