// Peering reproduces the §6 analysis for one country pair chosen on the
// command line: it classifies every observed ISP→cloud interconnection
// (direct / one private carrier / public Internet / via IXP), prints the
// Figure 12a-style matrix, and quantifies what direct peering buys in
// median latency and in tail tightness.
//
//	go run ./examples/peering [-from JP] [-to IN]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	cloudy "repro"
	"repro/internal/analysis"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	from := flag.String("from", "JP", "vantage-point country")
	to := flag.String("to", "IN", "datacenter country")
	flag.Parse()

	study, err := cloudy.RunStudy(context.Background(), cloudy.StudyConfig{
		Seed: 11, Scale: 0.06, Cycles: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	matrix := analysis.CaseStudyMatrix(study.Processed, study.World.Registry, *from, *to, 5)
	latency := analysis.CaseStudyLatency(study.Processed, *from, *to, 5)
	if len(matrix.Rows) == 0 {
		log.Fatalf("no classified paths from %s to %s — try a pair with datacenters (JP→IN, DE→GB, UA→GB, BH→IN)", *from, *to)
	}
	report.CaseStudy(os.Stdout, matrix, latency, fmt.Sprintf("Peering case study (%s→%s)", *from, *to))

	if len(latency) > 0 {
		fmt.Println("\nWhat direct peering buys here:")
		for _, pl := range latency {
			medGain := pl.Transit.Median - pl.Direct.Median
			iqrGain := pl.Transit.IQR() - pl.Direct.IQR()
			fmt.Printf("  %-5s median %+.0f ms, interquartile range %+.0f ms\n",
				pl.Provider, -medGain, -iqrGain)
		}
		fmt.Println("(negative numbers mean direct peering is better — the paper finds the")
		fmt.Println(" median gain negligible in Europe but the tail gain substantial in Asia)")
	}

	// Global context: the Figure 10 breakdown across all providers.
	fmt.Println()
	report.Interconnections(os.Stdout, analysis.Interconnections(study.Processed))
}
