// Quickstart: run a scaled-down version of the full study and print the
// paper's headline results — the Figure 3 latency map takeaway, the
// platform comparison, and the Figure 10 peering breakdown.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	cloudy "repro"
)

func main() {
	log.SetFlags(0)
	fmt.Println("Reproducing 'Cloudy with a Chance of Short RTTs' (IMC 2021) at 3% scale...")

	study, err := cloudy.RunStudy(context.Background(), cloudy.StudyConfig{
		Seed:   42,
		Scale:  0.03, // 3% of the 115K-probe fleet keeps this under a minute
		Cycles: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	np, nt := study.Store.Len()
	fmt.Printf("campaign done: %d pings, %d traceroutes from %d+%d probes\n\n",
		np, nt, study.SC.Len(), study.Atlas.Len())

	results := study.Analyze(cloudy.AnalyzeConfig{MinMapSamples: 6})

	// §4.1 takeaway: who meets which QoE threshold.
	t := results.Thresholds
	fmt.Printf("Of %d measured countries: %d meet MTP (<%d ms), %d meet HPL (<%d ms), %d meet HRT (<%d ms)\n",
		t.Countries, t.UnderMTP, cloudy.MTPms, t.UnderHPL, cloudy.HPLms, t.UnderHRT, cloudy.HRTms)

	// §4.2: the measurement platform matters.
	fmt.Println("\nPlatform comparison (share of the distribution where Atlas is faster):")
	for _, d := range results.PlatformDiffs {
		fmt.Printf("  %s: %.0f%%\n", d.Continent, 100*d.AtlasFasterShare)
	}

	// §6.1: who peers directly.
	fmt.Println("\nInterconnection breakdown (Figure 10):")
	for _, s := range results.Interconnections {
		fmt.Printf("  %-5s direct %5.1f%%  1-AS %5.1f%%  2+AS %5.1f%%  (%d paths)\n",
			s.Provider, s.DirectPct, s.OneASPct, s.MultiASPct, s.N)
	}

	fmt.Println("\nFull report: go run ./cmd/cloudy report")
	_ = os.Stdout
}
