// Package admit is the admission-control layer in front of the query
// service: per-client token-bucket quotas (the Globalping lesson — a
// public measurement API without per-client limits is one curl loop
// away from an outage) and a global concurrency limiter that sheds
// load outright once too many requests are in flight, so the server
// answers a cheap 503 instead of queueing work it will time out on.
//
// The package never reads the wall clock. Time enters exclusively
// through the injected Clock — the HTTP layer passes a monotonic
// stopwatch, deterministic tests pass a hand-cranked fake — which
// keeps admit inside the repo's norawtime contract (internal/lint)
// and makes every refill decision replayable.
package admit

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/obs"
)

// Clock returns elapsed time from an arbitrary fixed origin. It must
// be monotonic; absolute wall time is never needed.
type Clock func() time.Duration

// DefaultMaxInFlight is the concurrency ceiling when Options leaves
// MaxInFlight zero. Exported so layers that key off saturation (the
// store's adaptive hedging guard) can derive thresholds from it.
const DefaultMaxInFlight = 1024

// Options tunes a Controller.
type Options struct {
	// RatePerSec is the per-client token refill rate (default 100).
	// Negative disables the quota layer entirely.
	RatePerSec float64
	// Burst is the per-client bucket capacity (default 2×RatePerSec).
	Burst float64
	// MaxClients bounds the bucket table; the least-recently-seen
	// client is evicted past it (default 8192). A fresh bucket starts
	// full, so eviction can only ever be generous, never starving.
	MaxClients int
	// MaxInFlight is the global concurrency ceiling (default
	// DefaultMaxInFlight). Negative disables shedding.
	MaxInFlight int
	// Clock supplies monotonic time for bucket refill. Required when
	// the quota layer is enabled.
	Clock Clock
	// Obs registers the admission instruments: admitted/denied/shed
	// counters, live in-flight and client-table gauges. Nil runs
	// uninstrumented.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.RatePerSec == 0 {
		o.RatePerSec = 100
	}
	if o.Burst <= 0 {
		o.Burst = 2 * o.RatePerSec
	}
	if o.MaxClients <= 0 {
		o.MaxClients = 8192
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = DefaultMaxInFlight
	}
	return o
}

// Controller is the combined quota + limiter gate. All methods are
// safe for concurrent use.
type Controller struct {
	opts Options

	// Quota state: one token bucket per client key, LRU-bounded.
	mu      sync.Mutex
	buckets map[string]*list.Element
	lru     *list.List // front = most recently seen

	// Limiter state.
	inflight  *obs.Gauge
	maxHigh   *obs.Gauge
	mAdmitted *obs.Counter
	mDenied   *obs.Counter
	mShed     *obs.Counter
	mEvicted  *obs.Counter
}

type bucket struct {
	client string
	tokens float64
	last   time.Duration
}

// New builds a Controller. opts.Clock is required unless the quota
// layer is disabled (RatePerSec < 0).
func New(opts Options) *Controller {
	opts = opts.withDefaults()
	if opts.RatePerSec > 0 && opts.Clock == nil {
		panic("admit: quota enabled without a Clock")
	}
	c := &Controller{
		opts:      opts,
		buckets:   map[string]*list.Element{},
		lru:       list.New(),
		inflight:  opts.Obs.Gauge("admit_in_flight"),
		maxHigh:   opts.Obs.Gauge("admit_in_flight_high_water"),
		mAdmitted: opts.Obs.Counter("admit_admitted_total"),
		mDenied:   opts.Obs.Counter("admit_quota_denied_total"),
		mShed:     opts.Obs.Counter("admit_shed_total"),
		mEvicted:  opts.Obs.Counter("admit_quota_evictions_total"),
	}
	opts.Obs.GaugeFunc("admit_quota_clients", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.buckets))
	})
	return c
}

// Acquire claims one slot of the global concurrency budget. ok=false
// means the request must be shed (503); on ok=true the caller must
// invoke release exactly once when the request finishes.
func (c *Controller) Acquire() (release func(), ok bool) {
	if c.opts.MaxInFlight < 0 {
		c.mAdmitted.Inc()
		return func() {}, true
	}
	if cur := c.inflight.Load() + 1; cur > int64(c.opts.MaxInFlight) {
		c.mShed.Inc()
		return nil, false
	}
	// Admission is advisory, not a strict semaphore: between the load
	// and the add a burst can overshoot by the number of racing
	// requests, which shedding tolerates (the ceiling protects the
	// process, it is not an exact accounting invariant).
	c.inflight.Add(1)
	c.maxHigh.SetMax(c.inflight.Load())
	c.mAdmitted.Inc()
	return func() { c.inflight.Add(-1) }, true
}

// InFlight returns the current concurrency reading.
func (c *Controller) InFlight() int64 { return c.inflight.Load() }

// Allow spends one token from client's bucket. When the bucket is
// empty it returns ok=false and the duration until one token will
// have refilled — the Retry-After the HTTP layer should advertise.
func (c *Controller) Allow(client string) (ok bool, retryAfter time.Duration) {
	if c.opts.RatePerSec < 0 {
		return true, 0
	}
	now := c.opts.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	var b *bucket
	if el, found := c.buckets[client]; found {
		c.lru.MoveToFront(el)
		b = el.Value.(*bucket)
		b.tokens += c.opts.RatePerSec * (now - b.last).Seconds()
		if b.tokens > c.opts.Burst {
			b.tokens = c.opts.Burst
		}
		b.last = now
	} else {
		b = &bucket{client: client, tokens: c.opts.Burst, last: now}
		c.buckets[client] = c.lru.PushFront(b)
		for len(c.buckets) > c.opts.MaxClients {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.buckets, oldest.Value.(*bucket).client)
			c.mEvicted.Inc()
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	c.mDenied.Inc()
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / c.opts.RatePerSec * float64(time.Second))
}

// QuotaEnabled reports whether the per-client quota layer is active.
func (c *Controller) QuotaEnabled() bool { return c.opts.RatePerSec > 0 }

// Clients returns the current bucket-table size.
func (c *Controller) Clients() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buckets)
}
