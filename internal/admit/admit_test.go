package admit

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a hand-cranked monotonic clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Duration
}

func (f *fakeClock) Now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now += d
	f.mu.Unlock()
}

func TestQuotaBurstAndRefill(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry()
	c := New(Options{RatePerSec: 10, Burst: 3, Clock: clk.Now, Obs: reg})

	for i := 0; i < 3; i++ {
		if ok, _ := c.Allow("alice"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := c.Allow("alice")
	if ok {
		t.Fatal("4th request within burst window admitted")
	}
	if want := 100 * time.Millisecond; retry != want {
		t.Errorf("Retry-After = %v, want %v (1 token at 10/s)", retry, want)
	}
	if got := reg.Counter("admit_quota_denied_total").Load(); got != 1 {
		t.Errorf("denied counter = %d, want 1", got)
	}

	// A different client has its own full bucket.
	if ok, _ := c.Allow("bob"); !ok {
		t.Error("independent client denied")
	}

	// Half a token refilled: still denied, retry shrinks.
	clk.Advance(50 * time.Millisecond)
	if ok, retry = c.Allow("alice"); ok || retry != 50*time.Millisecond {
		t.Errorf("after 50ms: ok=%v retry=%v, want denied/50ms", ok, retry)
	}
	clk.Advance(60 * time.Millisecond)
	if ok, _ = c.Allow("alice"); !ok {
		t.Error("token refilled but still denied")
	}

	// Refill never exceeds the burst capacity.
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := c.Allow("alice"); !ok {
			t.Fatalf("post-idle burst request %d denied", i)
		}
	}
	if ok, _ := c.Allow("alice"); ok {
		t.Error("idle time grew the bucket past its burst capacity")
	}
}

func TestQuotaClientTableBounded(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry()
	c := New(Options{RatePerSec: 10, MaxClients: 4, Clock: clk.Now, Obs: reg})
	for i := 0; i < 10; i++ {
		c.Allow(fmt.Sprintf("client-%d", i))
	}
	if got := c.Clients(); got != 4 {
		t.Errorf("client table = %d entries, want 4 (bounded)", got)
	}
	if got := reg.Counter("admit_quota_evictions_total").Load(); got != 6 {
		t.Errorf("evictions = %d, want 6", got)
	}
	// The most recently seen clients survive.
	var sb strings.Builder
	reg.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "admit_quota_clients 4") {
		t.Errorf("metricsz missing live client gauge:\n%s", sb.String())
	}
}

func TestQuotaDisabled(t *testing.T) {
	c := New(Options{RatePerSec: -1})
	for i := 0; i < 1000; i++ {
		if ok, _ := c.Allow("anyone"); !ok {
			t.Fatal("disabled quota denied a request")
		}
	}
	if c.QuotaEnabled() {
		t.Error("QuotaEnabled = true with negative rate")
	}
}

func TestLimiterShedsPastCeiling(t *testing.T) {
	clk := &fakeClock{}
	reg := obs.NewRegistry()
	c := New(Options{RatePerSec: -1, MaxInFlight: 2, Clock: clk.Now, Obs: reg})

	r1, ok1 := c.Acquire()
	r2, ok2 := c.Acquire()
	if !ok1 || !ok2 {
		t.Fatal("requests under the ceiling were shed")
	}
	if _, ok := c.Acquire(); ok {
		t.Fatal("request over the ceiling admitted")
	}
	if got := reg.Counter("admit_shed_total").Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	r1()
	if r3, ok := c.Acquire(); !ok {
		t.Fatal("slot not reusable after release")
	} else {
		r3()
	}
	r2()
	if got := c.InFlight(); got != 0 {
		t.Errorf("in-flight after all releases = %d, want 0", got)
	}
}

func TestLimiterDisabled(t *testing.T) {
	c := New(Options{RatePerSec: -1, MaxInFlight: -1})
	for i := 0; i < 100; i++ {
		if _, ok := c.Acquire(); !ok {
			t.Fatal("disabled limiter shed a request")
		}
	}
}

func TestConcurrentAdmission(t *testing.T) {
	clk := &fakeClock{}
	c := New(Options{RatePerSec: 1e9, MaxInFlight: 64, Clock: clk.Now})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if release, ok := c.Acquire(); ok {
					c.Allow(fmt.Sprintf("client-%d", g))
					release()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.InFlight(); got != 0 {
		t.Errorf("in-flight after quiesce = %d, want 0", got)
	}
}

func TestNewPanicsWithoutClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with quota enabled and no Clock did not panic")
		}
	}()
	New(Options{RatePerSec: 10})
}
