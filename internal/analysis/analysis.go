// Package analysis computes every table and figure of the paper's
// evaluation from a collected dataset: the latency geography of §4, the
// platform comparison of §4.2, the wireless last-mile isolation of §5,
// and the peering analyses of §6. Each figure has one typed entry point
// so the benchmark harness and the report renderer share identical
// results.
package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/geo"
)

// QoE thresholds of §2.1, in milliseconds.
const (
	MTPms = 20  // Motion-to-Photon: immersive AR/VR
	HPLms = 100 // Human-Perceivable Latency: cloud gaming
	HRTms = 250 // Human Reaction Time: human-controlled tasks
)

// Band is the latency group used by the Figure 3 world map.
type Band uint8

// Figure 3 latency bands.
const (
	BandUnder30 Band = iota
	Band30to60
	Band60to100
	Band100to250
	BandOver250
)

// String returns the legend label.
func (b Band) String() string {
	switch b {
	case BandUnder30:
		return "<30 ms"
	case Band30to60:
		return "30-60 ms"
	case Band60to100:
		return "60-100 ms"
	case Band100to250:
		return "100-250 ms"
	default:
		return ">250 ms"
	}
}

// BandOf buckets a median latency.
func BandOf(ms float64) Band {
	switch {
	case ms < 30:
		return BandUnder30
	case ms < 60:
		return Band30to60
	case ms < 100:
		return Band60to100
	case ms < 250:
		return Band100to250
	default:
		return BandOver250
	}
}

// nearestKey groups samples per <probe, region>.
type nearestKey struct {
	probe  string
	region string
}

// NearestAssignment maps each probe to its closest datacenter —
// "closest" defined as the paper does: the region with the lowest mean
// latency over time (footnote 1, §4.1) among same-continent targets.
type NearestAssignment struct {
	// Region is the closest region ID per probe.
	Region map[string]string
	// Samples holds every RTT from the probe to its closest region.
	Samples map[string][]float64
	// Cycles holds the normalized campaign cycle of each sample,
	// aligned index-for-index with Samples — the time axis the
	// partitioned store buckets by.
	Cycles map[string][]int32
	// Meta keeps one representative record per probe for grouping.
	Meta map[string]dataset.VantagePoint
}

// Nearest computes the closest-datacenter assignment from pings of one
// platform, considering only same-continent targets. Speedchecker uses
// TCP and ICMP interchangeably, Atlas only TCP, exactly as §3.3
// prescribes. It is the batch adapter over NearestCollector.
func Nearest(store *dataset.Store, platform string) NearestAssignment {
	c := NewNearestCollector(platform)
	for i := range store.Pings {
		c.Add(&store.Pings[i])
	}
	return c.Finalize()
}

// ByCountry regroups nearest-DC samples per VP country. The sharded
// measurement store ingests this regrouping, so it is exported.
func (na NearestAssignment) ByCountry() map[string][]float64 {
	out := make(map[string][]float64)
	for probe, xs := range na.Samples {
		out[na.Meta[probe].Country] = append(out[na.Meta[probe].Country], xs...)
	}
	return out
}

// ByContinent regroups nearest-DC samples per VP continent.
func (na NearestAssignment) ByContinent() map[geo.Continent][]float64 {
	out := make(map[geo.Continent][]float64)
	for probe, xs := range na.Samples {
		out[na.Meta[probe].Continent] = append(out[na.Meta[probe].Continent], xs...)
	}
	return out
}

func sortedCountries(m map[string][]float64) []string {
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
