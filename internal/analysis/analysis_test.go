package analysis

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/world"
)

// fixture runs one small two-platform campaign shared by all tests.
type fixture struct {
	w         *world.World
	store     *dataset.Store
	processed []pipeline.Processed
	sc        *probes.Fleet
	atlas     *probes.Fleet
}

var (
	fixOnce sync.Once
	fix     fixture
)

func testData(t testing.TB) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		w := world.MustBuild(world.Config{Seed: 1})
		sim := netsim.New(w)
		sc := probes.GenerateSpeedchecker(w, probes.Config{Seed: 1, Scale: 0.06})
		at := probes.GenerateAtlas(w, probes.Config{Seed: 1, Scale: 1})
		cfg := measure.Config{
			Seed: 1, Cycles: 4, ProbesPerCountry: 40, TargetsPerProbe: 6,
			MinProbesPerCountry: 2, RequestsPerMinute: 1000, Workers: 8,
			BothPingProtocols: measure.FlagOn, Traceroutes: true, NeighborContinentTargets: true,
		}
		campaign, err := measure.New(sim, sc, cfg)
		if err != nil {
			panic(err)
		}
		store, _, err := campaign.Run(context.Background())
		if err != nil {
			panic(err)
		}
		// Atlas probes are always on; one uncapped cycle preserves the
		// platform's true geographic proportions.
		atCfg := cfg
		atCfg.ProbesPerCountry = 0
		atCfg.Cycles = 1
		atCampaign, err := measure.New(sim, at, atCfg)
		if err != nil {
			panic(err)
		}
		atStore, _, err := atCampaign.Run(context.Background())
		if err != nil {
			panic(err)
		}
		store.Merge(atStore)
		fix = fixture{
			w: w, store: store,
			processed: pipeline.NewProcessor(w).ProcessAll(store),
			sc:        sc, atlas: at,
		}
	})
	return &fix
}

func TestLatencyMapShape(t *testing.T) {
	f := testData(t)
	entries := LatencyMap(f.store, 10)
	if len(entries) < 80 {
		t.Fatalf("latency map covers %d countries", len(entries))
	}
	byCountry := map[string]CountryLatency{}
	for _, e := range entries {
		byCountry[e.Country] = e
		if e.MedianMs <= 0 || e.Samples < 10 {
			t.Errorf("%s: degenerate entry %+v", e.Country, e)
		}
		if BandOf(e.MedianMs) != e.Band {
			t.Errorf("%s: band mismatch", e.Country)
		}
	}
	// §4.1: countries with in-land DCs do far better than those without.
	de, deOK := byCountry["DE"]
	eg, egOK := byCountry["EG"]
	if !deOK || !egOK {
		t.Fatal("DE or EG missing from the map")
	}
	if de.MedianMs >= eg.MedianMs {
		t.Errorf("Germany (%.0f ms) should beat Egypt (%.0f ms)", de.MedianMs, eg.MedianMs)
	}
	if de.Band > Band60to100 {
		t.Errorf("Germany in band %v, want a fast band", de.Band)
	}
	if eg.Band < Band100to250 {
		t.Errorf("Egypt in band %v, want a slow band (nearest in-continent DC is in ZA)", eg.Band)
	}
	// China is the MTP outlier (§4.1).
	if cn, ok := byCountry["CN"]; ok && cn.MedianMs >= 32 {
		t.Errorf("China median = %.0f ms, want the fastest bucket", cn.MedianMs)
	}
}

func TestThresholdTakeaway(t *testing.T) {
	f := testData(t)
	entries := LatencyMap(f.store, 10)
	s := Thresholds(entries)
	if s.Countries == 0 {
		t.Fatal("no countries")
	}
	// §4.1 takeaway shape: almost no country meets MTP, most meet HPL,
	// nearly all meet HRT.
	if s.UnderMTP > s.Countries/10 {
		t.Errorf("%d/%d countries under MTP, want almost none", s.UnderMTP, s.Countries)
	}
	hplFrac := float64(s.UnderHPL) / float64(s.Countries)
	if hplFrac < 0.6 || hplFrac > 0.95 {
		t.Errorf("HPL share = %.2f, want ≈ 96/120 = 0.8", hplFrac)
	}
	if float64(s.UnderHRT)/float64(s.Countries) < 0.9 {
		t.Errorf("HRT share = %d/%d, want nearly all", s.UnderHRT, s.Countries)
	}
	if s.UnderMTP > s.UnderHPL || s.UnderHPL > s.UnderHRT {
		t.Error("threshold counts must be monotone")
	}
}

func TestContinentDistributions(t *testing.T) {
	f := testData(t)
	dists := ContinentDistributions(f.store, "speedchecker")
	byCont := map[geo.Continent]ContinentDistribution{}
	for _, d := range dists {
		byCont[d.Continent] = d
		if d.UnderMTP > d.UnderHPL || d.UnderHPL > d.UnderHRT {
			t.Errorf("%v: CDF not monotone across thresholds", d.Continent)
		}
	}
	for _, cont := range []geo.Continent{geo.EU, geo.NA, geo.AF, geo.AS, geo.SA, geo.OC} {
		if _, ok := byCont[cont]; !ok {
			t.Fatalf("missing distribution for %v", cont)
		}
	}
	// Fig 4: EU/NA ≈ 90% under HPL; Africa < 35%; Africa HRT ≈ 65%.
	if byCont[geo.EU].UnderHPL < 0.75 {
		t.Errorf("EU under-HPL = %.2f, want ≈ 0.9", byCont[geo.EU].UnderHPL)
	}
	if byCont[geo.NA].UnderHPL < 0.7 {
		t.Errorf("NA under-HPL = %.2f, want ≈ 0.9", byCont[geo.NA].UnderHPL)
	}
	if byCont[geo.AF].UnderHPL > 0.45 {
		t.Errorf("AF under-HPL = %.2f, want < 0.45 (paper: <10%%)", byCont[geo.AF].UnderHPL)
	}
	if byCont[geo.AF].UnderHPL >= byCont[geo.EU].UnderHPL {
		t.Error("Africa must trail Europe")
	}
	if hrt := byCont[geo.AF].UnderHRT; hrt < 0.4 || hrt > 0.95 {
		t.Errorf("AF under-HRT = %.2f, want ≈ 0.65", hrt)
	}
}

func TestPlatformComparison(t *testing.T) {
	f := testData(t)
	diffs := PlatformComparison(f.store)
	byCont := map[geo.Continent]PlatformDiff{}
	for _, d := range diffs {
		byCont[d.Continent] = d
		if len(d.Diffs) != 99 {
			t.Errorf("%v: %d percentile diffs", d.Continent, len(d.Diffs))
		}
	}
	// Fig 5: Atlas faster nearly everywhere; the gap is greatest in
	// Africa; South America leans towards Speedchecker (Brazil skew).
	for _, cont := range []geo.Continent{geo.EU, geo.NA, geo.AF} {
		d, ok := byCont[cont]
		if !ok {
			t.Fatalf("missing %v", cont)
		}
		if d.AtlasFasterShare < 0.5 {
			t.Errorf("%v: Atlas faster share = %.2f, want > 0.5", cont, d.AtlasFasterShare)
		}
	}
	if af, sa := byCont[geo.AF], byCont[geo.SA]; af.AtlasFasterShare <= sa.AtlasFasterShare {
		t.Errorf("AF gap (%.2f) should exceed SA (%.2f)", af.AtlasFasterShare, sa.AtlasFasterShare)
	}
	if sa, ok := byCont[geo.SA]; ok && sa.AtlasFasterShare > 0.5 {
		t.Errorf("SA: Speedchecker should win more often (Atlas share %.2f)", sa.AtlasFasterShare)
	}
}

func TestMatchedComparison(t *testing.T) {
	f := testData(t)
	matched := MatchedComparison(f.store, 3)
	if len(matched) == 0 {
		t.Fatal("no matched continents")
	}
	for _, m := range matched {
		if m.MatchedGroups < 3 || len(m.Diffs) == 0 {
			t.Errorf("%v: degenerate matched diff", m.Continent)
		}
		// Fig 16: within the same <country, ISP>, Atlas is faster for
		// the large majority of the distribution.
		atlasFaster := 0
		for _, d := range m.Diffs {
			if d > 0 {
				atlasFaster++
			}
		}
		if frac := float64(atlasFaster) / float64(len(m.Diffs)); frac < 0.6 {
			t.Errorf("%v: matched Atlas-faster share = %.2f, want high", m.Continent, frac)
		}
	}
}

func TestProtocolComparisons(t *testing.T) {
	f := testData(t)
	rows := ProtocolComparisons(f.store)
	if len(rows) < 5 {
		t.Fatalf("protocol comparison rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MedianGapPct < 0 {
			t.Errorf("%v: TCP median above ICMP (%.1f%%)", r.Continent, r.MedianGapPct)
		}
		if r.MedianGapPct > 8 {
			t.Errorf("%v: ICMP gap %.1f%%, want small (§3.3 ≈2%%)", r.Continent, r.MedianGapPct)
		}
	}
}

func TestInterContinentalFig6(t *testing.T) {
	f := testData(t)
	boxes := InterContinental(f.store,
		[]string{"DZ", "EG", "MA", "KE", "ZA"},
		[]geo.Continent{geo.AF, geo.EU, geo.NA})
	get := func(cc string, cont geo.Continent) (InterContinentBox, bool) {
		for _, b := range boxes {
			if b.Country == cc && b.TargetContinent == cont {
				return b, true
			}
		}
		return InterContinentBox{}, false
	}
	// Fig 6a: Egypt reaches EU far faster than in-continent (ZA) DCs,
	// and even NA beats the in-continent option.
	egEU, ok1 := get("EG", geo.EU)
	egAF, ok2 := get("EG", geo.AF)
	egNA, ok3 := get("EG", geo.NA)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing Egypt boxes")
	}
	if egEU.Box.Median >= egAF.Box.Median {
		t.Errorf("EG→EU (%.0f) should beat EG→AF (%.0f)", egEU.Box.Median, egAF.Box.Median)
	}
	if egNA.Box.Median >= egAF.Box.Median {
		t.Errorf("EG→NA (%.0f) should beat EG→AF (%.0f)", egNA.Box.Median, egAF.Box.Median)
	}
	// South Africa has the quickest in-continent access.
	zaAF, ok := get("ZA", geo.AF)
	if !ok {
		t.Fatal("missing ZA box")
	}
	if zaAF.Box.Median >= egAF.Box.Median {
		t.Error("ZA in-continent access should beat Egypt's")
	}
	// Fig 6b: Bolivia's two options are comparable.
	sa := InterContinental(f.store, []string{"BO", "BR", "CO"}, []geo.Continent{geo.SA, geo.NA})
	var boSA, boNA, coSA, coNA InterContinentBox
	for _, b := range sa {
		switch {
		case b.Country == "BO" && b.TargetContinent == geo.SA:
			boSA = b
		case b.Country == "BO" && b.TargetContinent == geo.NA:
			boNA = b
		case b.Country == "CO" && b.TargetContinent == geo.SA:
			coSA = b
		case b.Country == "CO" && b.TargetContinent == geo.NA:
			coNA = b
		}
	}
	if boSA.Box.N == 0 || boNA.Box.N == 0 {
		t.Fatal("missing Bolivia boxes")
	}
	ratio := boSA.Box.Median / boNA.Box.Median
	if ratio < 0.55 || ratio > 1.8 {
		t.Errorf("Bolivia SA/NA ratio = %.2f, want near parity", ratio)
	}
	// Colombia reaches NA quicker than the SA datacenters (Fig 6b).
	if coSA.Box.N > 0 && coNA.Box.N > 0 && coNA.Box.Median >= coSA.Box.Median {
		t.Errorf("CO→NA (%.0f) should beat CO→SA (%.0f)", coNA.Box.Median, coSA.Box.Median)
	}
}

func TestDensitySummaries(t *testing.T) {
	f := testData(t)
	sc := Density(f.sc)
	at := Density(f.atlas)
	if sc.Total != f.sc.Len() || at.Total != f.atlas.Len() {
		t.Error("totals mismatch")
	}
	if sc.PerContinent[geo.EU] <= sc.PerContinent[geo.NA] {
		t.Error("Speedchecker EU must dominate NA")
	}
	if len(sc.PerCountry) < 100 {
		t.Errorf("country coverage = %d", len(sc.PerCountry))
	}
	for i := 1; i < len(sc.PerCountry); i++ {
		if sc.PerCountry[i].Probes > sc.PerCountry[i-1].Probes {
			t.Fatal("per-country density not sorted")
		}
	}
}

func TestLatencyMapConfidenceIntervals(t *testing.T) {
	f := testData(t)
	for _, e := range LatencyMap(f.store, 10) {
		if !(e.CILowMs <= e.MedianMs && e.MedianMs <= e.CIHighMs) {
			t.Errorf("%s: CI [%v,%v] does not bracket median %v", e.Country, e.CILowMs, e.CIHighMs, e.MedianMs)
		}
		if e.CIHighMs-e.CILowMs < 0 {
			t.Errorf("%s: negative CI width", e.Country)
		}
	}
}

func TestTraceAnomalyFlagged(t *testing.T) {
	f := testData(t)
	nonMonotone, total := 0, 0
	for i := range f.processed {
		p := &f.processed[i]
		if p.EndToEndRTTms <= 0 {
			continue
		}
		total++
		if p.NonMonotoneHops > 0 {
			nonMonotone++
		}
	}
	if total == 0 {
		t.Fatal("no traces")
	}
	frac := float64(nonMonotone) / float64(total)
	// Per-hop noise makes mild non-monotonicity common but not
	// universal — the pipeline must see (and count) it.
	if frac < 0.05 || frac > 0.95 {
		t.Errorf("non-monotone trace fraction = %.2f, want a visible middle ground", frac)
	}
}

func TestFleetCloseness(t *testing.T) {
	f := testData(t)
	rows := FleetCloseness(f.sc, 10)
	if len(rows) < 30 {
		t.Fatalf("closeness rows = %d", len(rows))
	}
	byCountry := map[string]Closeness{}
	for i, r := range rows {
		byCountry[r.Country] = r
		if r.MedianNN <= 0 {
			t.Errorf("%s: non-positive closeness", r.Country)
		}
		if i > 0 && rows[i].MedianNN < rows[i-1].MedianNN {
			t.Fatal("closeness not sorted")
		}
	}
	// Dense countries cluster far tighter than sparse ones: Germany's
	// thousands of probes sit tens of km apart; sparse big countries
	// spread over hundreds.
	de, okDE := byCountry["DE"]
	ca, okCA := byCountry["CA"]
	if okDE && okCA && de.MedianNN >= ca.MedianNN {
		t.Errorf("DE closeness %.0f km should be tighter than CA %.0f km", de.MedianNN, ca.MedianNN)
	}
	if got := FleetCloseness(f.sc, 1<<30); got != nil {
		t.Errorf("impossible floor should yield nil, got %v", got)
	}
}

// TestNearestSemantics pins the closest-datacenter rules on hand-built
// records: lowest mean wins, ties break to the lexicographically first
// region, cross-continent targets are ignored, and Atlas uses TCP only.
func TestNearestSemantics(t *testing.T) {
	mk := func(probe, platform, region string, proto dataset.Protocol, rtt float64) dataset.PingRecord {
		return dataset.PingRecord{
			VP:       dataset.VantagePoint{ProbeID: probe, Platform: platform, Country: "DE", Continent: geo.EU},
			Target:   dataset.Target{Region: region, Provider: "GCP", Country: "DE", Continent: geo.EU},
			Protocol: proto, RTTms: rtt,
		}
	}
	store := &dataset.Store{}
	// Probe p1: region A mean 30, region B mean 20 → B wins.
	store.AddPing(mk("p1", "speedchecker", "a", dataset.TCP, 30))
	store.AddPing(mk("p1", "speedchecker", "b", dataset.TCP, 25))
	store.AddPing(mk("p1", "speedchecker", "b", dataset.ICMP, 15)) // ICMP counts for SC
	// Probe p2: exact tie between regions c and d → c (lexicographic).
	store.AddPing(mk("p2", "speedchecker", "d", dataset.TCP, 40))
	store.AddPing(mk("p2", "speedchecker", "c", dataset.TCP, 40))
	// A cross-continent sample that must not participate.
	far := mk("p1", "speedchecker", "far", dataset.TCP, 1)
	far.Target.Continent = geo.NA
	store.AddPing(far)
	// Atlas probe: ICMP must be ignored, so region f (TCP 20) beats
	// region e (ICMP 5, TCP 30).
	store.AddPing(mk("p3", "atlas", "e", dataset.ICMP, 5))
	store.AddPing(mk("p3", "atlas", "e", dataset.TCP, 30))
	store.AddPing(mk("p3", "atlas", "f", dataset.TCP, 20))

	sc := Nearest(store, "speedchecker")
	if sc.Region["p1"] != "b" {
		t.Errorf("p1 nearest = %q, want b", sc.Region["p1"])
	}
	if got := len(sc.Samples["p1"]); got != 2 {
		t.Errorf("p1 nearest samples = %d, want both protocols", got)
	}
	if sc.Region["p2"] != "c" {
		t.Errorf("p2 tie-break = %q, want c", sc.Region["p2"])
	}
	at := Nearest(store, "atlas")
	if at.Region["p3"] != "f" {
		t.Errorf("p3 (atlas) nearest = %q, want f (ICMP excluded)", at.Region["p3"])
	}
	if len(at.Samples["p3"]) != 1 {
		t.Errorf("atlas samples = %d, want TCP only", len(at.Samples["p3"]))
	}
}
