package analysis

import (
	"sort"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/sample"
	"repro/internal/stats"
)

// This file is the single-pass core of the analysis package: one scan
// over a ping stream accumulates every grouped aggregate the figure
// functions need, so a report costs one pass instead of seven. The
// batch *dataset.Store entry points (Nearest, InterContinental, ...)
// are thin adapters over the same collectors and produce bit-identical
// results: per-group Welford sums and sample lists accumulate in stream
// order, exactly as the old per-figure scans did in store order.

// NearestCollector accumulates the closest-datacenter assignment of one
// platform incrementally. Feed every record through Add (non-matching
// records are ignored), then call Finalize once the stream ends; the
// collector must not be reused afterwards.
type NearestCollector struct {
	platform string
	sums     map[nearestKey]*stats.Welford
	samples  map[nearestKey][]float64
	cycles   map[nearestKey][]int32
	meta     map[string]dataset.VantagePoint
}

// NewNearestCollector returns a collector for one platform's pings.
// Speedchecker uses TCP and ICMP interchangeably, Atlas only TCP,
// exactly as §3.3 prescribes.
func NewNearestCollector(platform string) *NearestCollector {
	return &NearestCollector{
		platform: platform,
		sums:     make(map[nearestKey]*stats.Welford),
		samples:  make(map[nearestKey][]float64),
		cycles:   make(map[nearestKey][]int32),
		meta:     make(map[string]dataset.VantagePoint),
	}
}

func (c *NearestCollector) use(r *dataset.PingRecord) bool {
	if r.VP.Platform != c.platform || r.Target.Continent != r.VP.Continent {
		return false
	}
	return c.platform == "speedchecker" || r.Protocol == dataset.TCP
}

// Add feeds one record into the collector.
func (c *NearestCollector) Add(r *dataset.PingRecord) {
	if !c.use(r) {
		return
	}
	k := nearestKey{r.VP.ProbeID, r.Target.Region}
	w := c.sums[k]
	if w == nil {
		w = &stats.Welford{}
		c.sums[k] = w
	}
	w.Add(r.RTTms)
	c.samples[k] = append(c.samples[k], r.RTTms)
	c.cycles[k] = append(c.cycles[k], int32(sample.CampaignCycle(r.Cycle)))
	c.meta[r.VP.ProbeID] = r.VP
}

// Finalize picks each probe's lowest-mean region (footnote 1, §4.1) and
// returns the assignment. Sample lists keep stream order, so the result
// is bit-identical to the two-pass batch scan it replaces.
func (c *NearestCollector) Finalize() NearestAssignment {
	best := make(map[string]string)
	bestMean := make(map[string]float64)
	for k, w := range c.sums {
		m, seen := bestMean[k.probe]
		//lint:ignore floateq exact tie of identically-accumulated means; the region-name tie-break keeps the winner independent of map order
		if !seen || w.Mean() < m || (w.Mean() == m && k.region < best[k.probe]) {
			best[k.probe] = k.region
			bestMean[k.probe] = w.Mean()
		}
	}
	out := NearestAssignment{
		Region:  best,
		Samples: make(map[string][]float64, len(best)),
		Cycles:  make(map[string][]int32, len(best)),
		Meta:    c.meta,
	}
	for probe, region := range best {
		out.Samples[probe] = c.samples[nearestKey{probe, region}]
		out.Cycles[probe] = c.cycles[nearestKey{probe, region}]
	}
	return out
}

// interCollector accumulates the Figure 6 grouping: per
// <VP country, target continent, region> mean and samples over all
// Speedchecker pings. The country/continent filter is applied at query
// time, so one collection serves every InterContinental call.
type interKey struct {
	country string
	cont    geo.Continent
	region  string
}

type interGroup struct {
	country string
	cont    geo.Continent
}

type interCollector struct {
	sums  map[interKey]*stats.Welford
	lists map[interKey][]float64
}

func newInterCollector() *interCollector {
	return &interCollector{
		sums:  make(map[interKey]*stats.Welford),
		lists: make(map[interKey][]float64),
	}
}

func (c *interCollector) add(r *dataset.PingRecord) {
	if r.VP.Platform != "speedchecker" {
		return
	}
	k := interKey{r.VP.Country, r.Target.Continent, r.Target.Region}
	w := c.sums[k]
	if w == nil {
		w = &stats.Welford{}
		c.sums[k] = w
	}
	w.Add(r.RTTms)
	c.lists[k] = append(c.lists[k], r.RTTms)
}

func (c *interCollector) boxes(countries []string, targets []geo.Continent) []InterContinentBox {
	best := make(map[interGroup]string)
	bestMean := make(map[interGroup]float64)
	for k, w := range c.sums {
		if !containsString(countries, k.country) || !containsContinent(targets, k.cont) {
			continue
		}
		g := interGroup{k.country, k.cont}
		//lint:ignore floateq exact tie of identically-accumulated means; the region-name tie-break keeps the winner independent of map order
		if m, ok := bestMean[g]; !ok || w.Mean() < m || (w.Mean() == m && k.region < best[g]) {
			best[g] = k.region
			bestMean[g] = w.Mean()
		}
	}
	var out []InterContinentBox
	for _, cc := range countries {
		for _, tc := range targets {
			region, ok := best[interGroup{cc, tc}]
			if !ok {
				continue
			}
			xs := c.lists[interKey{cc, tc, region}]
			if len(xs) == 0 {
				continue
			}
			box, err := stats.Summarize(xs)
			if err != nil {
				continue
			}
			out = append(out, InterContinentBox{Country: cc, TargetContinent: tc, Box: box})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Country != out[j].Country {
			return out[i].Country < out[j].Country
		}
		return out[i].TargetContinent < out[j].TargetContinent
	})
	return out
}

// protoCollector accumulates the Figure 15 grouping: samples per
// <protocol, continent, country, region> over Speedchecker pings.
type protoKey struct {
	proto   dataset.Protocol
	cont    geo.Continent
	country string
	region  string
}

type protoCollector struct {
	lists map[protoKey][]float64
}

func newProtoCollector() *protoCollector {
	return &protoCollector{lists: make(map[protoKey][]float64)}
}

func (c *protoCollector) add(r *dataset.PingRecord) {
	if r.VP.Platform != "speedchecker" {
		return
	}
	k := protoKey{r.Protocol, r.VP.Continent, r.VP.Country, r.Target.Region}
	c.lists[k] = append(c.lists[k], r.RTTms)
}

func (c *protoCollector) comparisons() []ProtocolComparison {
	perCont := map[geo.Continent]struct {
		tcp, icmp []float64
		gaps      []float64
	}{}
	for k, tcpSamples := range c.lists {
		if k.proto != dataset.TCP {
			continue
		}
		icmpSamples := c.lists[protoKey{dataset.ICMP, k.cont, k.country, k.region}]
		if len(tcpSamples) == 0 || len(icmpSamples) == 0 {
			continue
		}
		mt, err1 := stats.Median(tcpSamples)
		mi, err2 := stats.Median(icmpSamples)
		if err1 != nil || err2 != nil || mt <= 0 {
			continue
		}
		agg := perCont[k.cont]
		agg.tcp = append(agg.tcp, mt)
		agg.icmp = append(agg.icmp, mi)
		agg.gaps = append(agg.gaps, 100*(mi-mt)/mt)
		perCont[k.cont] = agg
	}
	var out []ProtocolComparison
	for _, cont := range geo.Continents() {
		agg, ok := perCont[cont]
		if !ok || len(agg.tcp) == 0 {
			continue
		}
		bt, err1 := stats.Summarize(agg.tcp)
		bi, err2 := stats.Summarize(agg.icmp)
		gap, err3 := stats.Median(agg.gaps)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		out = append(out, ProtocolComparison{
			Continent: cont, TCP: bt, ICMP: bi,
			MedianGapPct: gap, Pairs: len(agg.tcp),
		})
	}
	return out
}

// providerCollector accumulates the per-provider analogue of Nearest:
// per <probe, figure provider, region> mean and samples.
type ppRegionKey struct {
	probe    string
	provider string
	region   string
}

type ppGroup struct {
	probe    string
	provider string
}

type ppAgg struct {
	w    stats.Welford
	xs   []float64
	cont geo.Continent
}

type providerCollector struct {
	groups map[ppRegionKey]*ppAgg
}

func newProviderCollector() *providerCollector {
	return &providerCollector{groups: make(map[ppRegionKey]*ppAgg)}
}

func (c *providerCollector) add(r *dataset.PingRecord) {
	if r.VP.Platform != "speedchecker" || r.Target.Continent != r.VP.Continent {
		return
	}
	prov := figureProvider(r.Target.Provider)
	if prov == "" {
		return
	}
	k := ppRegionKey{r.VP.ProbeID, prov, r.Target.Region}
	agg := c.groups[k]
	if agg == nil {
		agg = &ppAgg{cont: r.VP.Continent}
		c.groups[k] = agg
	}
	agg.w.Add(r.RTTms)
	agg.xs = append(agg.xs, r.RTTms)
}

func (c *providerCollector) consistency(minSamples int) []ProviderConsistency {
	best := make(map[ppGroup]string)
	bestMean := make(map[ppGroup]float64)
	for k, agg := range c.groups {
		g := ppGroup{k.probe, k.provider}
		//lint:ignore floateq exact tie of identically-accumulated means; the region-name tie-break keeps the winner independent of map order
		if m, ok := bestMean[g]; !ok || agg.w.Mean() < m || (agg.w.Mean() == m && k.region < best[g]) {
			best[g] = k.region
			bestMean[g] = agg.w.Mean()
		}
	}
	// Pool winning groups per <continent, provider>. The pooling order
	// differs from the old store-order scan, but every consumer below
	// (Summarize, KolmogorovSmirnov) sorts internally, so the figures
	// are unchanged; iterate sorted groups for determinism regardless.
	winners := make([]ppGroup, 0, len(best))
	for g := range best {
		winners = append(winners, g)
	}
	sort.Slice(winners, func(i, j int) bool {
		if winners[i].probe != winners[j].probe {
			return winners[i].probe < winners[j].probe
		}
		return winners[i].provider < winners[j].provider
	})
	type cpKey struct {
		cont geo.Continent
		prov string
	}
	samples := make(map[cpKey][]float64)
	for _, g := range winners {
		agg := c.groups[ppRegionKey{g.probe, g.provider, best[g]}]
		key := cpKey{agg.cont, g.provider}
		samples[key] = append(samples[key], agg.xs...)
	}

	var out []ProviderConsistency
	for _, cont := range geo.Continents() {
		pc := ProviderConsistency{Continent: cont}
		var dists [][]float64
		for _, prov := range cloud.FigureProviderCodes() {
			xs := samples[cpKey{cont, prov}]
			if len(xs) < minSamples {
				continue
			}
			box, err := stats.Summarize(xs)
			if err != nil {
				continue
			}
			pc.Providers = append(pc.Providers, ProviderLatency{Provider: prov, Box: box, N: len(xs)})
			dists = append(dists, xs)
		}
		if len(pc.Providers) < 2 {
			continue
		}
		lo, hi := pc.Providers[0].Box.Median, pc.Providers[0].Box.Median
		for _, p := range pc.Providers[1:] {
			if p.Box.Median < lo {
				lo = p.Box.Median
			}
			if p.Box.Median > hi {
				hi = p.Box.Median
			}
		}
		pc.MedianSpreadMs = hi - lo
		for i := range dists {
			for j := i + 1; j < len(dists); j++ {
				if d, err := stats.KolmogorovSmirnov(dists[i], dists[j]); err == nil && d > pc.MaxKS {
					pc.MaxKS = d
				}
			}
		}
		sort.Slice(pc.Providers, func(i, j int) bool {
			return pc.Providers[i].Box.Median < pc.Providers[j].Box.Median
		})
		out = append(out, pc)
	}
	return out
}

// Aggregates holds every grouped reduction one pass over a ping stream
// can pre-compute: the nearest-DC assignments of both platforms, the
// inter-continent grouping, the protocol pairs and the per-provider
// grouping. All ping figures draw from it — Collect once, then ask for
// LatencyMap, ContinentDistributions, PlatformComparison,
// MatchedComparison, ProtocolComparisons, ProviderComparison and
// InterContinental without touching the records again.
type Aggregates struct {
	sc        *NearestCollector
	atlas     *NearestCollector
	inter     *interCollector
	protos    *protoCollector
	providers *providerCollector

	scNA *NearestAssignment // lazily finalized
	atNA *NearestAssignment
}

// NewAggregates returns an empty accumulator; feed it with Add or let
// Collect drain a Source into it.
func NewAggregates() *Aggregates {
	return &Aggregates{
		sc:        NewNearestCollector("speedchecker"),
		atlas:     NewNearestCollector("atlas"),
		inter:     newInterCollector(),
		protos:    newProtoCollector(),
		providers: newProviderCollector(),
	}
}

// Add feeds one ping into every collector.
func (a *Aggregates) Add(r *dataset.PingRecord) {
	a.sc.Add(r)
	a.atlas.Add(r)
	a.inter.add(r)
	a.protos.add(r)
	a.providers.add(r)
}

// Collect drains src through a single pass and returns the aggregates
// every figure draws from.
func Collect(src dataset.Source) (*Aggregates, error) {
	a := NewAggregates()
	for {
		r, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return a, nil
		}
		a.Add(&r)
	}
}

// CollectStore is the batch adapter: one pass over the materialized
// store's pings.
func CollectStore(store *dataset.Store) *Aggregates {
	a := NewAggregates()
	for i := range store.Pings {
		a.Add(&store.Pings[i])
	}
	return a
}

// Nearest returns the (cached) closest-datacenter assignment for
// "speedchecker" or "atlas"; other platforms yield an empty assignment.
func (a *Aggregates) Nearest(platform string) NearestAssignment {
	switch platform {
	case "speedchecker":
		if a.scNA == nil {
			na := a.sc.Finalize()
			a.scNA = &na
		}
		return *a.scNA
	case "atlas":
		if a.atNA == nil {
			na := a.atlas.Finalize()
			a.atNA = &na
		}
		return *a.atNA
	}
	return NearestAssignment{}
}

// LatencyMap computes Figure 3 from the collected aggregates.
func (a *Aggregates) LatencyMap(minSamples int) []CountryLatency {
	return LatencyMapFrom(a.Nearest("speedchecker").ByCountry(), minSamples)
}

// ContinentDistributions computes Figure 4 for one platform.
func (a *Aggregates) ContinentDistributions(platform string) []ContinentDistribution {
	return ContinentDistributionsFrom(a.Nearest(platform).ByContinent())
}

// PlatformComparison computes Figure 5.
func (a *Aggregates) PlatformComparison() []PlatformDiff {
	return PlatformComparisonFrom(
		a.Nearest("speedchecker").ByContinent(),
		a.Nearest("atlas").ByContinent())
}

// MatchedComparison computes Figure 16.
func (a *Aggregates) MatchedComparison(minGroups int) []MatchedDiff {
	return MatchedComparisonFrom(a.Nearest("speedchecker"), a.Nearest("atlas"), minGroups)
}

// ProtocolComparisons computes Figure 15.
func (a *Aggregates) ProtocolComparisons() []ProtocolComparison {
	return a.protos.comparisons()
}

// ProviderComparison computes the per-continent provider consistency.
func (a *Aggregates) ProviderComparison(minSamples int) []ProviderConsistency {
	return a.providers.consistency(minSamples)
}

// InterContinental computes Figure 6a/6b for the given VP countries and
// target continents.
func (a *Aggregates) InterContinental(countries []string, targets []geo.Continent) []InterContinentBox {
	return a.inter.boxes(countries, targets)
}
