package analysis

import (
	"bytes"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geo"
)

// BenchmarkStreamingVsMaterialized pits the two export-analysis paths
// against each other over the same CSV bytes:
//
//   - materialized: decode the whole export into a dataset.Store, then
//     run every ping figure as an independent full scan (the legacy
//     batch entry points);
//   - streaming: pull the export through the codec cursor into one
//     single-pass Collect and answer every figure from the Aggregates.
//
// The streaming side never materializes the record slice, so its
// allocations are bounded by the grouped sample lists.
func BenchmarkStreamingVsMaterialized(b *testing.B) {
	f := testData(b)
	var pingsCSV bytes.Buffer
	if err := dataset.WritePingsCSV(&pingsCSV, f.store.Pings); err != nil {
		b.Fatal(err)
	}
	raw := pingsCSV.Bytes()
	africa := []string{"DZ", "EG", "ET", "KE", "MA", "SN", "TN", "ZA"}
	africaTargets := []geo.Continent{geo.EU, geo.NA, geo.AF}

	b.Run("materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pings, err := dataset.ReadPingsCSV(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			ds := dataset.FromRecords(pings, nil)
			_ = LatencyMap(ds, 10)
			_ = ContinentDistributions(ds, "speedchecker")
			_ = ContinentDistributions(ds, "atlas")
			_ = PlatformComparison(ds)
			_ = MatchedComparison(ds, 3)
			_ = ProtocolComparisons(ds)
			_ = ProviderComparison(ds, 5)
			_ = InterContinental(ds, africa, africaTargets)
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agg, err := Collect(dataset.NewPingCursor(bytes.NewReader(raw)))
			if err != nil {
				b.Fatal(err)
			}
			_ = agg.LatencyMap(10)
			_ = agg.ContinentDistributions("speedchecker")
			_ = agg.ContinentDistributions("atlas")
			_ = agg.PlatformComparison()
			_ = agg.MatchedComparison(3)
			_ = agg.ProtocolComparisons()
			_ = agg.ProviderComparison(5)
			_ = agg.InterContinental(africa, africaTargets)
		}
	})
}
