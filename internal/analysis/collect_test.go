package analysis

import (
	"reflect"
	"testing"

	"repro/internal/geo"
)

// TestCollectMatchesBatch proves the single-pass core: one Collect scan
// over the campaign's pings must reproduce every batch figure
// bit-identically — same Welford accumulation order, same tie-breaks,
// same sample-list order.
func TestCollectMatchesBatch(t *testing.T) {
	f := testData(t)
	agg, err := Collect(f.store.PingSource())
	if err != nil {
		t.Fatal(err)
	}

	for _, platform := range []string{"speedchecker", "atlas"} {
		na := Nearest(f.store, platform)
		got := agg.Nearest(platform)
		if !reflect.DeepEqual(na.Region, got.Region) {
			t.Fatalf("%s: Nearest regions diverge", platform)
		}
		if !reflect.DeepEqual(na.Samples, got.Samples) {
			t.Fatalf("%s: Nearest samples diverge", platform)
		}
		if !reflect.DeepEqual(na.Meta, got.Meta) {
			t.Fatalf("%s: Nearest meta diverges", platform)
		}
	}

	if want, got := LatencyMap(f.store, 10), agg.LatencyMap(10); !reflect.DeepEqual(want, got) {
		t.Fatal("LatencyMap diverges")
	}
	for _, platform := range []string{"speedchecker", "atlas"} {
		want := ContinentDistributions(f.store, platform)
		if got := agg.ContinentDistributions(platform); !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: ContinentDistributions diverge", platform)
		}
	}
	if want, got := PlatformComparison(f.store), agg.PlatformComparison(); !reflect.DeepEqual(want, got) {
		t.Fatal("PlatformComparison diverges")
	}
	if want, got := MatchedComparison(f.store, 3), agg.MatchedComparison(3); !reflect.DeepEqual(want, got) {
		t.Fatal("MatchedComparison diverges")
	}
	if want, got := ProtocolComparisons(f.store), agg.ProtocolComparisons(); !reflect.DeepEqual(want, got) {
		t.Fatal("ProtocolComparisons diverge")
	}
	if want, got := ProviderComparison(f.store, 5), agg.ProviderComparison(5); !reflect.DeepEqual(want, got) {
		t.Fatal("ProviderComparison diverges")
	}

	countries := []string{"DE", "BR", "JP", "ZA"}
	targets := []geo.Continent{geo.EU, geo.NA, geo.AS}
	want := InterContinental(f.store, countries, targets)
	if got := agg.InterContinental(countries, targets); !reflect.DeepEqual(want, got) {
		t.Fatal("InterContinental diverges")
	}
	// A second query with a different filter must work off the same
	// collection (the filter is applied at query time).
	want2 := InterContinental(f.store, []string{"AU"}, []geo.Continent{geo.OC, geo.AS})
	if got := agg.InterContinental([]string{"AU"}, []geo.Continent{geo.OC, geo.AS}); !reflect.DeepEqual(want2, got) {
		t.Fatal("second InterContinental query diverges")
	}
}

// TestCollectStoreMatchesCollect checks the batch adapter is the same
// single pass.
func TestCollectStoreMatchesCollect(t *testing.T) {
	f := testData(t)
	fromSrc, err := Collect(f.store.PingSource())
	if err != nil {
		t.Fatal(err)
	}
	fromStore := CollectStore(f.store)
	if want, got := fromSrc.LatencyMap(10), fromStore.LatencyMap(10); !reflect.DeepEqual(want, got) {
		t.Fatal("CollectStore LatencyMap diverges from Collect")
	}
	if want, got := fromSrc.ProtocolComparisons(), fromStore.ProtocolComparisons(); !reflect.DeepEqual(want, got) {
		t.Fatal("CollectStore ProtocolComparisons diverge from Collect")
	}
}
