package analysis

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/probes"
	"repro/internal/stats"
)

// CountryDensity is one Figure 1b/2/14 entry.
type CountryDensity struct {
	Country string
	Probes  int
}

// FleetDensity summarizes a fleet's geographic deployment: counts per
// continent (the headline numbers of Figures 1b and 2) and per country,
// densest first (the Figure 14 "closeness" view).
type FleetDensity struct {
	Platform     string
	Total        int
	PerContinent map[geo.Continent]int
	PerCountry   []CountryDensity
}

// GeoDensity is the §3.2 coverage comparison for one continent:
// probes per million km² on each platform and their ratio (the paper
// reports Speedchecker at ≈12× Atlas in EU, ≈6× in NA, and 30-40× in
// developing regions).
type GeoDensity struct {
	Continent    geo.Continent
	SCPerMKm2    float64
	AtlasPerMKm2 float64
	Ratio        float64
	DCsPerMKm2   float64 // §4.1: datacenter-to-landmass provisioning
	SCProbes     int
	AtlasProbes  int
	Datacenters  int
}

// GeoDensities compares two fleets' geographic coverage per continent,
// optionally folding in datacenter provisioning (pass counts per
// continent, or nil). scScale is the Speedchecker fleet's sampling
// scale: a study run at Scale 0.1 extrapolates its probe counts by 10×
// so the ratios reflect the full platforms.
func GeoDensities(sc, atlas FleetDensity, dcs map[geo.Continent]int, scScale float64) []GeoDensity {
	if scScale <= 0 {
		scScale = 1
	}
	var out []GeoDensity
	for _, cont := range geo.Continents() {
		area := cont.AreaMKm2()
		if area <= 0 {
			continue
		}
		scFull := float64(sc.PerContinent[cont]) / scScale
		g := GeoDensity{
			Continent: cont,
			SCProbes:  int(scFull), AtlasProbes: atlas.PerContinent[cont],
			SCPerMKm2:    scFull / area,
			AtlasPerMKm2: float64(atlas.PerContinent[cont]) / area,
		}
		if g.AtlasProbes > 0 {
			g.Ratio = scFull / float64(g.AtlasProbes)
		}
		if dcs != nil {
			g.Datacenters = dcs[cont]
			g.DCsPerMKm2 = float64(dcs[cont]) / area
		}
		out = append(out, g)
	}
	return out
}

// Density computes a fleet's deployment summary.
func Density(f *probes.Fleet) FleetDensity {
	d := FleetDensity{
		Platform:     f.Platform.String(),
		Total:        f.Len(),
		PerContinent: f.CountByContinent(),
	}
	for _, cc := range f.Countries() {
		d.PerCountry = append(d.PerCountry, CountryDensity{Country: cc, Probes: len(f.InCountry(cc))})
	}
	sort.Slice(d.PerCountry, func(i, j int) bool {
		if d.PerCountry[i].Probes != d.PerCountry[j].Probes {
			return d.PerCountry[i].Probes > d.PerCountry[j].Probes
		}
		return d.PerCountry[i].Country < d.PerCountry[j].Country
	})
	return d
}

// Closeness is the Appendix A.1 "geographical closeness" view of a
// fleet: how tightly a country's probes cluster, measured as the median
// distance from each probe to its nearest in-country neighbour. Lower
// is denser.
type Closeness struct {
	Country  string
	Probes   int
	MedianNN float64 // km to the nearest neighbour, median over probes
}

// FleetCloseness computes per-country closeness for countries with at
// least minProbes probes (quadratic per country; cap keeps it cheap).
func FleetCloseness(f *probes.Fleet, minProbes int) []Closeness {
	const cap = 300 // distances over more probes add nothing but time
	var out []Closeness
	for _, cc := range f.Countries() {
		ps := f.InCountry(cc)
		if len(ps) < minProbes {
			continue
		}
		if len(ps) > cap {
			ps = ps[:cap]
		}
		var nn []float64
		for i, p := range ps {
			best := -1.0
			for j, q := range ps {
				if i == j {
					continue
				}
				if d := geo.DistanceKm(p.Loc, q.Loc); best < 0 || d < best {
					best = d
				}
			}
			if best >= 0 {
				nn = append(nn, best)
			}
		}
		med, err := stats.Median(nn)
		if err != nil {
			continue
		}
		out = append(out, Closeness{Country: cc, Probes: len(f.InCountry(cc)), MedianNN: med})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MedianNN < out[j].MedianNN {
			return true
		}
		if out[i].MedianNN > out[j].MedianNN {
			return false
		}
		return out[i].Country < out[j].Country
	})
	return out
}
