package analysis

import (
	"repro/internal/geo"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// LastMileCategory labels the four curves of Figure 7.
type LastMileCategory string

// Figure 7 categories.
const (
	CatHomeUserISP   LastMileCategory = "SC home (USR-ISP)"
	CatCell          LastMileCategory = "SC cell"
	CatHomeRouterISP LastMileCategory = "SC home (RTR-ISP)"
	CatAtlas         LastMileCategory = "Atlas"
)

// LastMileImpact is one Figure 7 group: per continent and category, the
// distribution of the last-mile share of the end-to-end latency (7a)
// and of the absolute last-mile latency (7b).
type LastMileImpact struct {
	Continent geo.Continent
	Category  LastMileCategory
	SharePct  stats.FiveNum // share of total latency, percent
	AbsMs     stats.FiveNum
	N         int
}

// lastMileOf extracts (share%, absolute ms) per category from one
// processed trace.
func lastMileOf(p *pipeline.Processed, cat LastMileCategory) (float64, float64, bool) {
	lm := p.LastMile
	switch cat {
	case CatHomeUserISP:
		if p.Record.VP.Platform == "speedchecker" && lm.Kind == pipeline.KindHome {
			return 100 * lm.ShareOfTotal, lm.UserToISPms, true
		}
	case CatCell:
		if p.Record.VP.Platform == "speedchecker" && lm.Kind == pipeline.KindCell {
			return 100 * lm.ShareOfTotal, lm.UserToISPms, true
		}
	case CatHomeRouterISP:
		if p.Record.VP.Platform == "speedchecker" && lm.Kind == pipeline.KindHome && lm.RouterToISPms > 0 {
			share := 0.0
			if p.EndToEndRTTms > 0 {
				share = 100 * lm.RouterToISPms / p.EndToEndRTTms
			}
			return share, lm.RouterToISPms, true
		}
	case CatAtlas:
		if p.Record.VP.Platform == "atlas" && lm.Kind == pipeline.KindWired {
			return 100 * lm.ShareOfTotal, lm.UserToISPms, true
		}
	}
	return 0, 0, false
}

// LastMile computes Figure 7 (and, with nearestOnly, Figure 19) from
// processed traceroutes. When nearestOnly is set, only traces towards
// the probe's nearest datacenter count, where the last-mile share is
// most pronounced (Appendix A.5).
func LastMile(processed []pipeline.Processed, nearestOnly bool) []LastMileImpact {
	nearest := map[string]string{}
	if nearestOnly {
		type pair struct{ probe, region string }
		sums := map[pair]*stats.Welford{}
		for i := range processed {
			p := &processed[i]
			if p.EndToEndRTTms <= 0 || p.Record.Target.Continent != p.Record.VP.Continent {
				continue
			}
			k := pair{p.Record.VP.ProbeID, p.Record.Target.Region}
			w := sums[k]
			if w == nil {
				w = &stats.Welford{}
				sums[k] = w
			}
			w.Add(p.EndToEndRTTms)
		}
		bestMean := map[string]float64{}
		for k, w := range sums {
			//lint:ignore floateq exact tie of identically-accumulated means; the region-name tie-break keeps the winner independent of map order
			if m, ok := bestMean[k.probe]; !ok || w.Mean() < m || (w.Mean() == m && k.region < nearest[k.probe]) {
				nearest[k.probe] = k.region
				bestMean[k.probe] = w.Mean()
			}
		}
	}

	type key struct {
		cont geo.Continent
		cat  LastMileCategory
	}
	shares := map[key][]float64{}
	abs := map[key][]float64{}
	cats := []LastMileCategory{CatHomeUserISP, CatCell, CatHomeRouterISP, CatAtlas}
	for i := range processed {
		p := &processed[i]
		if p.EndToEndRTTms <= 0 || p.LastMile.Kind == pipeline.KindUnknown {
			continue
		}
		if nearestOnly && nearest[p.Record.VP.ProbeID] != p.Record.Target.Region {
			continue
		}
		for _, cat := range cats {
			if s, a, ok := lastMileOf(p, cat); ok {
				k := key{p.Record.VP.Continent, cat}
				shares[k] = append(shares[k], s)
				abs[k] = append(abs[k], a)
			}
		}
	}
	var out []LastMileImpact
	for _, cont := range geo.Continents() {
		for _, cat := range cats {
			k := key{cont, cat}
			if len(shares[k]) == 0 {
				continue
			}
			sBox, err1 := stats.Summarize(shares[k])
			aBox, err2 := stats.Summarize(abs[k])
			if err1 != nil || err2 != nil {
				continue
			}
			out = append(out, LastMileImpact{
				Continent: cont, Category: cat,
				SharePct: sBox, AbsMs: aBox, N: len(shares[k]),
			})
		}
	}
	return out
}

// GlobalLastMile aggregates Figure 7's "Global" column.
func GlobalLastMile(processed []pipeline.Processed) []LastMileImpact {
	var shares, abs [4][]float64
	cats := []LastMileCategory{CatHomeUserISP, CatCell, CatHomeRouterISP, CatAtlas}
	for i := range processed {
		p := &processed[i]
		if p.EndToEndRTTms <= 0 {
			continue
		}
		for ci, cat := range cats {
			if s, a, ok := lastMileOf(p, cat); ok {
				shares[ci] = append(shares[ci], s)
				abs[ci] = append(abs[ci], a)
			}
		}
	}
	var out []LastMileImpact
	for ci, cat := range cats {
		if len(shares[ci]) == 0 {
			continue
		}
		sBox, err1 := stats.Summarize(shares[ci])
		aBox, err2 := stats.Summarize(abs[ci])
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, LastMileImpact{
			Continent: geo.ContinentUnknown, Category: cat,
			SharePct: sBox, AbsMs: aBox, N: len(shares[ci]),
		})
	}
	return out
}

// CvGroup is one Figure 8/9 box: the distribution of per-probe
// last-mile coefficients of variation.
type CvGroup struct {
	// Continent is set for Figure 8, Country for Figure 9.
	Continent geo.Continent
	Country   string
	Category  LastMileCategory // CatHomeUserISP or CatCell
	Cvs       []float64
	MedianCv  float64
}

// cvPerProbe computes Cv of the USR-ISP last-mile across each probe's
// measurements, keeping probes with at least minSamples samples
// (the paper used pairs with ≥10 samples).
func cvPerProbe(processed []pipeline.Processed, minSamples int) map[string]*struct {
	vpCountry string
	vpCont    geo.Continent
	kind      pipeline.ProbeKind
	w         stats.Welford
} {
	type acc = struct {
		vpCountry string
		vpCont    geo.Continent
		kind      pipeline.ProbeKind
		w         stats.Welford
	}
	accs := map[string]*acc{}
	for i := range processed {
		p := &processed[i]
		lm := p.LastMile
		if p.Record.VP.Platform != "speedchecker" || lm.Kind == pipeline.KindUnknown || lm.Kind == pipeline.KindWired {
			continue
		}
		a := accs[p.Record.VP.ProbeID]
		if a == nil {
			a = &acc{vpCountry: p.Record.VP.Country, vpCont: p.Record.VP.Continent, kind: lm.Kind}
			accs[p.Record.VP.ProbeID] = a
		}
		a.w.Add(lm.UserToISPms)
	}
	for id, a := range accs {
		if a.w.N() < minSamples {
			delete(accs, id)
		}
	}
	return accs
}

// LastMileCvByContinent computes Figure 8.
func LastMileCvByContinent(processed []pipeline.Processed, minSamples int) []CvGroup {
	accs := cvPerProbe(processed, minSamples)
	type key struct {
		cont geo.Continent
		kind pipeline.ProbeKind
	}
	cvs := map[key][]float64{}
	for _, a := range accs {
		cvs[key{a.vpCont, a.kind}] = append(cvs[key{a.vpCont, a.kind}], a.w.Cv())
	}
	var out []CvGroup
	for _, cont := range geo.Continents() {
		for _, kc := range []struct {
			kind pipeline.ProbeKind
			cat  LastMileCategory
		}{{pipeline.KindHome, CatHomeUserISP}, {pipeline.KindCell, CatCell}} {
			xs := cvs[key{cont, kc.kind}]
			med, err := stats.Median(xs)
			if err != nil {
				// Empty bucket: skip it rather than plot MedianCv = 0,
				// which would read as a perfectly stable last mile.
				continue
			}
			out = append(out, CvGroup{Continent: cont, Category: kc.cat, Cvs: xs, MedianCv: med})
		}
	}
	return out
}

// LastMileCvByCountry computes Figure 9 for the given representative
// countries (the paper uses ZA MA JP IR GB UA US MX BR AR).
func LastMileCvByCountry(processed []pipeline.Processed, countries []string, minSamples int) []CvGroup {
	accs := cvPerProbe(processed, minSamples)
	type key struct {
		country string
		kind    pipeline.ProbeKind
	}
	cvs := map[key][]float64{}
	for _, a := range accs {
		cvs[key{a.vpCountry, a.kind}] = append(cvs[key{a.vpCountry, a.kind}], a.w.Cv())
	}
	var out []CvGroup
	for _, cc := range countries {
		for _, kc := range []struct {
			kind pipeline.ProbeKind
			cat  LastMileCategory
		}{{pipeline.KindHome, CatHomeUserISP}, {pipeline.KindCell, CatCell}} {
			xs := cvs[key{cc, kc.kind}]
			med, err := stats.Median(xs)
			if err != nil {
				// Empty bucket: skip it rather than plot MedianCv = 0.
				continue
			}
			out = append(out, CvGroup{Country: cc, Category: kc.cat, Cvs: xs, MedianCv: med})
		}
	}
	return out
}

// Fig9Countries is the paper's Figure 9 country list, two per
// continent (AF, AS, EU, NA, SA).
var Fig9Countries = []string{"ZA", "MA", "JP", "IR", "GB", "UA", "US", "MX", "BR", "AR"}
