package analysis

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/pipeline"
)

func impactFor(imps []LastMileImpact, cont geo.Continent, cat LastMileCategory) (LastMileImpact, bool) {
	for _, im := range imps {
		if im.Continent == cont && im.Category == cat {
			return im, true
		}
	}
	return LastMileImpact{}, false
}

func TestLastMileShareFig7a(t *testing.T) {
	f := testData(t)
	imps := LastMile(f.processed, false)
	if len(imps) < 12 {
		t.Fatalf("only %d last-mile groups", len(imps))
	}
	for _, im := range imps {
		if im.SharePct.Median < 0 || im.SharePct.Median > 100 {
			t.Errorf("%v/%s: share median %.1f out of range", im.Continent, im.Category, im.SharePct.Median)
		}
	}
	// Fig 7a: the share is substantial, and larger in well-provisioned
	// continents (EU) than in Africa, where paths are long.
	euHome, ok1 := impactFor(imps, geo.EU, CatHomeUserISP)
	afCell, ok2 := impactFor(imps, geo.AF, CatCell)
	euCell, ok3 := impactFor(imps, geo.EU, CatCell)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing EU/AF last-mile groups")
	}
	if euHome.SharePct.Median < 30 {
		t.Errorf("EU home share = %.0f%%, want ≈ 40-60%%", euHome.SharePct.Median)
	}
	if afCell.SharePct.Median >= euCell.SharePct.Median {
		t.Errorf("AF share (%.0f%%) should trail EU (%.0f%%): African paths are long", afCell.SharePct.Median, euCell.SharePct.Median)
	}
	// The RTR-ISP wired tail is a strictly smaller share than USR-ISP.
	euWire, ok := impactFor(imps, geo.EU, CatHomeRouterISP)
	if !ok {
		t.Fatal("missing EU RTR-ISP group")
	}
	if euWire.SharePct.Median >= euHome.SharePct.Median {
		t.Error("RTR-ISP share must sit below USR-ISP share")
	}
}

func TestLastMileAbsoluteFig7b(t *testing.T) {
	f := testData(t)
	imps := LastMile(f.processed, false)
	// Fig 7b: USR-ISP medians hover around 20-25 ms for both home and
	// cell everywhere; Atlas sits near 10 ms, resembling the wired
	// RTR-ISP tail.
	for _, cont := range []geo.Continent{geo.EU, geo.NA, geo.AS} {
		home, ok1 := impactFor(imps, cont, CatHomeUserISP)
		cell, ok2 := impactFor(imps, cont, CatCell)
		if !ok1 || !ok2 {
			t.Fatalf("missing %v groups", cont)
		}
		if home.AbsMs.Median < 12 || home.AbsMs.Median > 35 {
			t.Errorf("%v home abs = %.1f ms, want ≈ 20-25", cont, home.AbsMs.Median)
		}
		if d := home.AbsMs.Median - cell.AbsMs.Median; d < -10 || d > 10 {
			t.Errorf("%v: home %.1f vs cell %.1f differ too much", cont, home.AbsMs.Median, cell.AbsMs.Median)
		}
	}
	euAtlas, ok := impactFor(imps, geo.EU, CatAtlas)
	euHome, _ := impactFor(imps, geo.EU, CatHomeUserISP)
	euWire, _ := impactFor(imps, geo.EU, CatHomeRouterISP)
	if !ok {
		t.Fatal("missing Atlas group")
	}
	if euAtlas.AbsMs.Median >= euHome.AbsMs.Median {
		t.Errorf("Atlas last-mile (%.1f) must beat wireless (%.1f)", euAtlas.AbsMs.Median, euHome.AbsMs.Median)
	}
	// Atlas resembles the wired part of the home path (§5).
	if d := euAtlas.AbsMs.Median - euWire.AbsMs.Median; d < -6 || d > 6 {
		t.Errorf("Atlas (%.1f) should resemble SC RTR-ISP (%.1f)", euAtlas.AbsMs.Median, euWire.AbsMs.Median)
	}
	// Wireless accounts for 2-3× the wired access latency (§4.2).
	ratio := euHome.AbsMs.Median / euAtlas.AbsMs.Median
	if ratio < 1.5 || ratio > 4 {
		t.Errorf("wireless/wired ratio = %.1f, want ≈ 2-3", ratio)
	}
}

func TestLastMileNearestFig19(t *testing.T) {
	f := testData(t)
	all := LastMile(f.processed, false)
	nearest := LastMile(f.processed, true)
	// A.5: towards the closest DC the last-mile share grows, approaching
	// half of the total latency globally.
	allHome, ok1 := impactFor(all, geo.EU, CatHomeUserISP)
	nearHome, ok2 := impactFor(nearest, geo.EU, CatHomeUserISP)
	if !ok1 || !ok2 {
		t.Fatal("missing EU home groups")
	}
	if nearHome.SharePct.Median <= allHome.SharePct.Median {
		t.Errorf("nearest-DC share (%.0f%%) should exceed all-targets share (%.0f%%)",
			nearHome.SharePct.Median, allHome.SharePct.Median)
	}
	if nearHome.SharePct.Median < 40 {
		t.Errorf("nearest-DC EU home share = %.0f%%, want ≈ 50%%+", nearHome.SharePct.Median)
	}
}

func TestGlobalLastMile(t *testing.T) {
	f := testData(t)
	glob := GlobalLastMile(f.processed)
	if len(glob) < 3 {
		t.Fatalf("global groups = %d", len(glob))
	}
	var home, cell *LastMileImpact
	for i := range glob {
		if glob[i].Category == CatHomeUserISP {
			home = &glob[i]
		}
		if glob[i].Category == CatCell {
			cell = &glob[i]
		}
	}
	if home == nil || cell == nil {
		t.Fatal("missing global home/cell")
	}
	// §5: wireless takes ≈ 40-50% of the total median latency globally.
	if home.SharePct.Median < 25 || home.SharePct.Median > 75 {
		t.Errorf("global home share = %.0f%%, want ≈ 40-50%%", home.SharePct.Median)
	}
	if cell.SharePct.Median < 25 || cell.SharePct.Median > 75 {
		t.Errorf("global cell share = %.0f%%, want ≈ 40-50%%", cell.SharePct.Median)
	}
}

func TestLastMileCvFig8(t *testing.T) {
	f := testData(t)
	groups := LastMileCvByContinent(f.processed, 5)
	if len(groups) < 8 {
		t.Fatalf("cv groups = %d", len(groups))
	}
	for _, g := range groups {
		if g.MedianCv <= 0 {
			t.Errorf("%v/%s: non-positive Cv", g.Continent, g.Category)
		}
		// Fig 8: median Cv hovers around 0.5 everywhere, for both
		// access types.
		if g.MedianCv < 0.2 || g.MedianCv > 1.1 {
			t.Errorf("%v/%s: median Cv = %.2f, want ≈ 0.5", g.Continent, g.Category, g.MedianCv)
		}
	}
	// Home and cell are comparable per continent (§5).
	for _, cont := range []geo.Continent{geo.EU, geo.AS} {
		var home, cell float64
		for _, g := range groups {
			if g.Continent != cont {
				continue
			}
			if g.Category == CatHomeUserISP {
				home = g.MedianCv
			} else if g.Category == CatCell {
				cell = g.MedianCv
			}
		}
		if home == 0 || cell == 0 {
			t.Fatalf("missing %v home/cell Cv", cont)
		}
		if d := home - cell; d < -0.35 || d > 0.35 {
			t.Errorf("%v: home Cv %.2f vs cell %.2f too far apart", cont, home, cell)
		}
	}
}

func TestLastMileCvFig9(t *testing.T) {
	f := testData(t)
	groups := LastMileCvByCountry(f.processed, Fig9Countries, 5)
	if len(groups) < 8 {
		t.Fatalf("country cv groups = %d", len(groups))
	}
	seen := map[string]bool{}
	for _, g := range groups {
		seen[g.Country] = true
		if g.MedianCv < 0.15 || g.MedianCv > 1.2 {
			t.Errorf("%s/%s: median Cv = %.2f, want comparable across the globe", g.Country, g.Category, g.MedianCv)
		}
	}
	// Dense-probe countries must all be present.
	for _, cc := range []string{"JP", "GB", "US", "BR"} {
		if !seen[cc] {
			t.Errorf("missing Fig 9 country %s", cc)
		}
	}
	// Countries outside the list are excluded.
	for _, g := range groups {
		found := false
		for _, cc := range Fig9Countries {
			if g.Country == cc {
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected country %s", g.Country)
		}
	}
}

func TestCvMinSamplesFilter(t *testing.T) {
	f := testData(t)
	loose := LastMileCvByContinent(f.processed, 2)
	strict := LastMileCvByContinent(f.processed, 1000)
	if len(strict) != 0 {
		t.Errorf("impossible sample floor still yielded %d groups", len(strict))
	}
	total := func(gs []CvGroup) int {
		n := 0
		for _, g := range gs {
			n += len(g.Cvs)
		}
		return n
	}
	if total(loose) == 0 {
		t.Fatal("loose filter yielded nothing")
	}
}

func TestLastMileEmptyInput(t *testing.T) {
	if got := LastMile(nil, false); got != nil {
		t.Errorf("empty input should yield nil, got %v", got)
	}
	if got := GlobalLastMile(nil); got != nil {
		t.Errorf("empty input should yield nil, got %v", got)
	}
	if got := LastMileCvByContinent(nil, 1); got != nil {
		t.Errorf("empty input should yield nil, got %v", got)
	}
	if got := LastMileCvByCountry([]pipeline.Processed{}, Fig9Countries, 1); got != nil {
		t.Errorf("empty input should yield nil, got %v", got)
	}
}
