package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/stats"
)

// CountryLatency is one Figure 3 map entry: the median RTT from a
// country's probes to their closest same-continent datacenter.
type CountryLatency struct {
	Country   string
	Continent geo.Continent
	MedianMs  float64
	// CILowMs and CIHighMs bound the median at 95% confidence
	// (percentile bootstrap) — the per-country counterpart of the
	// paper's §3.3 sample-size requirement.
	CILowMs  float64
	CIHighMs float64
	Band     Band
	Samples  int
}

// LatencyMap computes Figure 3 from Speedchecker TCP pings. Countries
// with fewer than minSamples nearest-DC samples are skipped (the paper
// required at least 100 probes per country).
func LatencyMap(store *dataset.Store, minSamples int) []CountryLatency {
	return LatencyMapFrom(Nearest(store, "speedchecker").ByCountry(), minSamples)
}

// LatencyMapFrom computes Figure 3 from per-country nearest-DC sample
// sets, however they were materialized — the batch Nearest pass above
// or the sharded measurement store's merged vectors. Samples are
// canonicalized to ascending order first, so both producers yield
// bit-identical maps (the bootstrap resamples by index).
func LatencyMapFrom(byCountry map[string][]float64, minSamples int) []CountryLatency {
	var out []CountryLatency
	for _, cc := range sortedCountries(byCountry) {
		if len(byCountry[cc]) < minSamples {
			continue
		}
		xs := append([]float64(nil), byCountry[cc]...)
		sort.Float64s(xs)
		med, err := stats.MedianSorted(xs)
		if err != nil {
			continue
		}
		c, ok := geo.CountryByCode(cc)
		if !ok {
			continue
		}
		lo, hi, err := stats.BootstrapMedianCI(xs, 200, 0.95, int64(len(xs)))
		if err != nil {
			lo, hi = med, med
		}
		out = append(out, CountryLatency{
			Country: cc, Continent: c.Continent,
			MedianMs: med, CILowMs: lo, CIHighMs: hi,
			Band: BandOf(med), Samples: len(xs),
		})
	}
	return out
}

// ThresholdSummary is the §4.1 takeaway: how many countries meet each
// QoE threshold at the median.
type ThresholdSummary struct {
	Countries int
	UnderMTP  int
	UnderHPL  int
	UnderHRT  int
}

// Thresholds summarizes a latency map against MTP/HPL/HRT.
func Thresholds(entries []CountryLatency) ThresholdSummary {
	s := ThresholdSummary{Countries: len(entries)}
	for _, e := range entries {
		if e.MedianMs < MTPms {
			s.UnderMTP++
		}
		if e.MedianMs < HPLms {
			s.UnderHPL++
		}
		if e.MedianMs < HRTms {
			s.UnderHRT++
		}
	}
	return s
}

// ContinentDistribution is one Figure 4 curve: the distribution of all
// nearest-DC RTT samples from one continent.
type ContinentDistribution struct {
	Continent geo.Continent
	CDF       stats.CDF
	// Fractions of samples under each QoE threshold.
	UnderMTP, UnderHPL, UnderHRT float64
	N                            int
}

// ContinentDistributions computes Figure 4 for one platform.
func ContinentDistributions(store *dataset.Store, platform string) []ContinentDistribution {
	return ContinentDistributionsFrom(Nearest(store, platform).ByContinent())
}

// ContinentDistributionsFrom computes Figure 4 from per-continent
// nearest-DC sample sets. The CDF constructor sorts internally, so the
// result is independent of sample order and identical between the batch
// and store-backed paths.
func ContinentDistributionsFrom(byCont map[geo.Continent][]float64) []ContinentDistribution {
	var out []ContinentDistribution
	for _, cont := range geo.Continents() {
		xs := byCont[cont]
		if len(xs) == 0 {
			continue
		}
		cdf, err := stats.NewCDF(xs)
		if err != nil {
			continue
		}
		out = append(out, ContinentDistribution{
			Continent: cont, CDF: cdf,
			UnderMTP: cdf.At(MTPms), UnderHPL: cdf.At(HPLms), UnderHRT: cdf.At(HRTms),
			N: len(xs),
		})
	}
	return out
}

// InterContinentBox is one Figure 6 box: latency from one country's
// probes to the nearest datacenter on one target continent.
type InterContinentBox struct {
	Country         string
	TargetContinent geo.Continent
	Box             stats.FiveNum
}

// InterContinental computes Figure 6a/6b: for each listed VP country,
// the distribution of RTTs towards the closest DC on each target
// continent — "closest" per <country, target continent> as the region
// with the lowest mean RTT. All Speedchecker samples (both protocols,
// as the paper uses all recorded measurements here) are included. It is
// the batch adapter over the single-pass inter-continent collector.
func InterContinental(store *dataset.Store, countries []string, targets []geo.Continent) []InterContinentBox {
	c := newInterCollector()
	for i := range store.Pings {
		c.add(&store.Pings[i])
	}
	return c.boxes(countries, targets)
}

func containsString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsContinent(s []geo.Continent, v geo.Continent) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
