package analysis

import (
	"sort"

	"repro/internal/asn"
	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// InterconnectShare is one Figure 10 bar: the percentage of a
// provider's observed paths in each interconnection category. Direct
// folds in peerings established over IXP fabrics, as Figure 10 does
// (IXPs are stripped from the AS-level topology, §6.1).
type InterconnectShare struct {
	Provider   string
	DirectPct  float64
	OneASPct   float64
	MultiASPct float64
	N          int
}

// Interconnections computes Figure 10 from processed Speedchecker
// traceroutes.
func Interconnections(processed []pipeline.Processed) []InterconnectShare {
	return InterconnectionsFromCounts(InterconnectCounts(processed))
}

// InterconnectCounts tallies classified Speedchecker paths per figure
// provider and interconnection class — the incremental summary the
// sharded measurement store keeps per shard and merges by addition.
func InterconnectCounts(processed []pipeline.Processed) map[string]map[pipeline.Class]int {
	counts := map[string]map[pipeline.Class]int{}
	for i := range processed {
		CountInterconnect(counts, &processed[i])
	}
	return counts
}

// CountInterconnect folds one processed trace into a per-provider class
// tally — the one-record step InterconnectCounts batches, exported so a
// live campaign sink can keep the tally while traces stream in.
func CountInterconnect(counts map[string]map[pipeline.Class]int, p *pipeline.Processed) {
	if p.Record.VP.Platform != "speedchecker" || p.Class == pipeline.ClassUnknown {
		return
	}
	prov := figureProvider(p.Record.Target.Provider)
	if prov == "" {
		return
	}
	if counts[prov] == nil {
		counts[prov] = map[pipeline.Class]int{}
	}
	counts[prov][p.Class]++
}

// InterconnectionsFromCounts turns per-provider class tallies into the
// Figure 10 percentage bars.
func InterconnectionsFromCounts(counts map[string]map[pipeline.Class]int) []InterconnectShare {
	var out []InterconnectShare
	for _, code := range cloud.FigureProviderCodes() {
		cc := counts[code]
		if len(cc) == 0 {
			continue
		}
		s := InterconnectShare{Provider: code}
		for cl, n := range cc {
			s.N += n
			switch cl {
			case pipeline.ClassDirect, pipeline.ClassDirectIXP:
				s.DirectPct += float64(n)
			case pipeline.ClassPrivate:
				s.OneASPct += float64(n)
			case pipeline.ClassPublic:
				s.MultiASPct += float64(n)
			}
		}
		n := float64(s.N)
		s.DirectPct = 100 * s.DirectPct / n
		s.OneASPct = 100 * s.OneASPct / n
		s.MultiASPct = 100 * s.MultiASPct / n
		out = append(out, s)
	}
	return out
}

// figureProvider folds Lightsail into Amazon, as the paper's peering
// figures plot nine providers.
func figureProvider(code string) string {
	if code == "LTSL" {
		return "AMZN"
	}
	for _, c := range cloud.FigureProviderCodes() {
		if c == code {
			return c
		}
	}
	return ""
}

// PervasivenessRow is one Figure 11 group: the mean route pervasiveness
// of one provider per VP continent.
type PervasivenessRow struct {
	Provider     string
	PerContinent map[geo.Continent]float64
	N            int
}

// Pervasiveness computes Figure 11: the ratio of provider-owned routers
// to total path length, averaged per provider and VP continent.
func Pervasiveness(processed []pipeline.Processed) []PervasivenessRow {
	type key struct {
		prov string
		cont geo.Continent
	}
	sums := map[key]*stats.Welford{}
	totals := map[string]int{}
	for i := range processed {
		p := &processed[i]
		if p.Record.VP.Platform != "speedchecker" || !p.ReachedCloud {
			continue
		}
		prov := figureProvider(p.Record.Target.Provider)
		if prov == "" {
			continue
		}
		k := key{prov, p.Record.VP.Continent}
		w := sums[k]
		if w == nil {
			w = &stats.Welford{}
			sums[k] = w
		}
		w.Add(p.Pervasiveness)
		totals[prov]++
	}
	var out []PervasivenessRow
	for _, code := range cloud.FigureProviderCodes() {
		if totals[code] == 0 {
			continue
		}
		row := PervasivenessRow{Provider: code, PerContinent: map[geo.Continent]float64{}, N: totals[code]}
		for _, cont := range geo.Continents() {
			if w := sums[key{code, cont}]; w != nil && w.N() > 0 {
				row.PerContinent[cont] = w.Mean()
			}
		}
		out = append(out, row)
	}
	return out
}

// MatrixCell is one cell of a Figure 12a/13a/17a/18a peering matrix:
// the majority interconnection type between one serving ISP and one
// provider, with the share of paths using it.
type MatrixCell struct {
	Class pipeline.Class
	Pct   float64
	N     int
}

// ISPRow is one matrix row.
type ISPRow struct {
	ISP   asn.Number
	Name  string
	Cells map[string]MatrixCell // provider code → cell
	N     int
}

// PeeringMatrix is one case-study matrix (e.g. German ISPs → UK DCs).
type PeeringMatrix struct {
	VPCountry string
	DCCountry string
	Rows      []ISPRow
}

// CaseStudyMatrix computes a Figure 12a-style matrix: the topN serving
// ISPs of vpCountry (by recorded measurements) against all providers,
// over paths towards datacenters in dcCountry.
func CaseStudyMatrix(processed []pipeline.Processed, registry *asn.Registry, vpCountry, dcCountry string, topN int) PeeringMatrix {
	type cellKey struct {
		isp  asn.Number
		prov string
	}
	classCounts := map[cellKey]map[pipeline.Class]int{}
	ispCounts := map[asn.Number]int{}
	for i := range processed {
		p := &processed[i]
		if p.Record.VP.Platform != "speedchecker" ||
			p.Record.VP.Country != vpCountry ||
			p.Record.Target.Country != dcCountry ||
			p.Class == pipeline.ClassUnknown {
			continue
		}
		prov := figureProvider(p.Record.Target.Provider)
		if prov == "" {
			continue
		}
		k := cellKey{p.Record.VP.ISP, prov}
		if classCounts[k] == nil {
			classCounts[k] = map[pipeline.Class]int{}
		}
		classCounts[k][p.Class]++
		ispCounts[p.Record.VP.ISP]++
	}
	// Top-N ISPs by measurement volume (§6.2 footnote 2).
	type rank struct {
		isp asn.Number
		n   int
	}
	var ranks []rank
	for isp, n := range ispCounts {
		ranks = append(ranks, rank{isp, n})
	}
	sort.Slice(ranks, func(i, j int) bool {
		if ranks[i].n != ranks[j].n {
			return ranks[i].n > ranks[j].n
		}
		return ranks[i].isp < ranks[j].isp
	})
	if len(ranks) > topN {
		ranks = ranks[:topN]
	}
	m := PeeringMatrix{VPCountry: vpCountry, DCCountry: dcCountry}
	for _, r := range ranks {
		row := ISPRow{ISP: r.isp, Cells: map[string]MatrixCell{}, N: r.n}
		if a, ok := registry.Lookup(r.isp); ok {
			row.Name = a.Name
		}
		for _, prov := range cloud.FigureProviderCodes() {
			cc := classCounts[cellKey{r.isp, prov}]
			if len(cc) == 0 {
				continue
			}
			bestClass, bestN, total := pipeline.ClassUnknown, 0, 0
			for cl, n := range cc {
				total += n
				if n > bestN || (n == bestN && cl < bestClass) {
					bestClass, bestN = cl, n
				}
			}
			row.Cells[prov] = MatrixCell{
				Class: bestClass,
				Pct:   100 * float64(bestN) / float64(total),
				N:     total,
			}
		}
		m.Rows = append(m.Rows, row)
	}
	return m
}

// PeeringLatency is one Figure 12b/13b/17b/18b provider entry: latency
// boxes for paths with direct peering versus paths through intermediate
// ASes.
type PeeringLatency struct {
	Provider string
	Direct   stats.FiveNum
	Transit  stats.FiveNum
	NDirect  int
	NTransit int
}

// CaseStudyLatency computes a Figure 12b-style comparison: end-to-end
// traceroute RTTs from vpCountry towards dcCountry datacenters, split
// by direct peering versus intermediate-AS paths. Provider groups with
// fewer than minSamples on either side are dropped, as the paper only
// shows pairs with at least 100 measurements.
func CaseStudyLatency(processed []pipeline.Processed, vpCountry, dcCountry string, minSamples int) []PeeringLatency {
	direct := map[string][]float64{}
	transit := map[string][]float64{}
	for i := range processed {
		p := &processed[i]
		if p.Record.VP.Platform != "speedchecker" ||
			p.Record.VP.Country != vpCountry ||
			p.Record.Target.Country != dcCountry ||
			p.Class == pipeline.ClassUnknown || p.EndToEndRTTms <= 0 {
			continue
		}
		prov := figureProvider(p.Record.Target.Provider)
		if prov == "" {
			continue
		}
		switch p.Class {
		case pipeline.ClassDirect, pipeline.ClassDirectIXP:
			direct[prov] = append(direct[prov], p.EndToEndRTTms)
		default:
			transit[prov] = append(transit[prov], p.EndToEndRTTms)
		}
	}
	var out []PeeringLatency
	for _, prov := range cloud.FigureProviderCodes() {
		d, tr := direct[prov], transit[prov]
		if len(d) < minSamples || len(tr) < minSamples {
			continue
		}
		db, err1 := stats.Summarize(d)
		tb, err2 := stats.Summarize(tr)
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, PeeringLatency{
			Provider: prov, Direct: db, Transit: tb,
			NDirect: len(d), NTransit: len(tr),
		})
	}
	return out
}

// Flattening is one provider's AS-path-length distribution — the
// "flattening of the traditionally hierarchical Internet topology" the
// paper builds on (§2.1): traffic to hypergiants crosses almost no
// intermediate ASes, while small providers still live behind the
// hierarchy.
type Flattening struct {
	Provider string
	// MeanASes is the mean number of distinct ASes on the path
	// (serving ISP and provider included).
	MeanASes float64
	Box      stats.FiveNum
	N        int
}

// PathFlattening computes per-provider AS-path lengths from processed
// Speedchecker traceroutes that reached the provider.
func PathFlattening(processed []pipeline.Processed) []Flattening {
	lengths := map[string][]float64{}
	for i := range processed {
		p := &processed[i]
		if p.Record.VP.Platform != "speedchecker" || !p.ReachedCloud || p.Class == pipeline.ClassUnknown {
			continue
		}
		prov := figureProvider(p.Record.Target.Provider)
		if prov == "" {
			continue
		}
		lengths[prov] = append(lengths[prov], float64(p.Intermediates+2))
	}
	var out []Flattening
	for _, code := range cloud.FigureProviderCodes() {
		xs := lengths[code]
		if len(xs) == 0 {
			continue
		}
		box, err := stats.Summarize(xs)
		if err != nil {
			continue
		}
		out = append(out, Flattening{Provider: code, MeanASes: box.Mean, Box: box, N: len(xs)})
	}
	return out
}
