package analysis

import (
	"testing"

	"repro/internal/asn"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

func shareFor(t *testing.T, shares []InterconnectShare, code string) InterconnectShare {
	t.Helper()
	for _, s := range shares {
		if s.Provider == code {
			return s
		}
	}
	t.Fatalf("no interconnect share for %s", code)
	return InterconnectShare{}
}

func TestInterconnectionsFig10(t *testing.T) {
	f := testData(t)
	shares := Interconnections(f.processed)
	if len(shares) != 9 {
		t.Fatalf("providers in Fig 10 = %d, want 9", len(shares))
	}
	for _, s := range shares {
		sum := s.DirectPct + s.OneASPct + s.MultiASPct
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("%s: percentages sum to %.1f", s.Provider, sum)
		}
		if s.N < 100 {
			t.Errorf("%s: only %d classified paths", s.Provider, s.N)
		}
	}
	// Hypergiants bypass transit: direct is the dominant category.
	for _, code := range []string{"AMZN", "GCP", "MSFT"} {
		s := shareFor(t, shares, code)
		if s.DirectPct < 50 {
			t.Errorf("%s direct = %.0f%%, want > 50%% (§6.1 takeaway)", code, s.DirectPct)
		}
	}
	// Small providers ride the public Internet.
	for _, code := range []string{"VLTR", "LIN", "ORCL"} {
		s := shareFor(t, shares, code)
		if s.MultiASPct < s.DirectPct {
			t.Errorf("%s: 2+ AS (%.0f%%) should dominate direct (%.0f%%)", code, s.MultiASPct, s.DirectPct)
		}
		if s.DirectPct > 30 {
			t.Errorf("%s direct = %.0f%%, want small", code, s.DirectPct)
		}
	}
	// Alibaba's datacenters are islands outside China.
	baba := shareFor(t, shares, "BABA")
	if baba.MultiASPct < 40 {
		t.Errorf("BABA 2+ AS = %.0f%%, want dominant (islands outside CN)", baba.MultiASPct)
	}
	// DigitalOcean leans on private interconnects (its WANs are
	// localized).
	do := shareFor(t, shares, "DO")
	if do.OneASPct < do.DirectPct {
		t.Errorf("DO: 1 AS (%.0f%%) should beat direct (%.0f%%)", do.OneASPct, do.DirectPct)
	}
}

func TestPervasivenessFig11(t *testing.T) {
	f := testData(t)
	rows := Pervasiveness(f.processed)
	if len(rows) != 9 {
		t.Fatalf("pervasiveness rows = %d", len(rows))
	}
	get := func(code string) PervasivenessRow {
		for _, r := range rows {
			if r.Provider == code {
				return r
			}
		}
		t.Fatalf("missing %s", code)
		return PervasivenessRow{}
	}
	// Fig 11: Google, Microsoft and Amazon own most of the route in
	// almost every continent; public-backbone providers own ≈20%.
	for _, code := range []string{"AMZN", "GCP", "MSFT"} {
		r := get(code)
		high := 0
		for _, cont := range []geo.Continent{geo.EU, geo.NA, geo.AS} {
			if v, ok := r.PerContinent[cont]; ok && v > 0.5 {
				high++
			}
		}
		if high < 2 {
			t.Errorf("%s: pervasiveness above 0.5 in only %d major continents: %v", code, high, r.PerContinent)
		}
	}
	for _, code := range []string{"VLTR", "LIN"} {
		r := get(code)
		for cont, v := range r.PerContinent {
			if v > 0.45 {
				t.Errorf("%s in %v: pervasiveness %.2f, want ≈ 0.2", code, cont, v)
			}
		}
	}
	// Ordering: every hypergiant beats every public provider on EU.
	if get("GCP").PerContinent[geo.EU] <= get("VLTR").PerContinent[geo.EU] {
		t.Error("GCP EU pervasiveness should exceed Vultr")
	}
}

func TestGermanyUKCaseStudyFig12(t *testing.T) {
	f := testData(t)
	m := CaseStudyMatrix(f.processed, f.w.Registry, "DE", "GB", 5)
	if len(m.Rows) != 5 {
		t.Fatalf("Fig 12a rows = %d, want top-5", len(m.Rows))
	}
	// The five named German ISPs dominate measurement volume.
	wantISPs := map[asn.Number]bool{3320: true, 3209: true, 6805: true, 6830: true, 8881: true}
	present, directCells := 0, 0
	for _, row := range m.Rows {
		if !wantISPs[row.ISP] {
			t.Errorf("unexpected top German ISP %v (%s)", row.ISP, row.Name)
		}
		// Hypergiants: direct peering with every top German ISP. At test
		// scale a cell can be empty (no sampled paths); present cells
		// must be direct, and the matrix must be mostly filled.
		for _, prov := range []string{"AMZN", "GCP", "MSFT"} {
			cell, ok := row.Cells[prov]
			if !ok {
				continue
			}
			present++
			if cell.Class == pipeline.ClassDirect || cell.Class == pipeline.ClassDirectIXP {
				directCells++
			} else {
				t.Errorf("%v → %s majority class = %v, want direct", row.ISP, prov, cell.Class)
			}
		}
	}
	if present < 12 {
		t.Errorf("only %d/15 hypergiant cells sampled", present)
	}
	if directCells != present {
		t.Errorf("direct cells %d of %d present", directCells, present)
	}
	// The two public exceptions of Fig 12a.
	for _, row := range m.Rows {
		switch row.ISP {
		case 3209: // Vodafone → DO public
			if c, ok := row.Cells["DO"]; ok && c.Class != pipeline.ClassPublic {
				t.Errorf("Vodafone→DO = %v, want 2+ AS", c.Class)
			}
		case 6805: // Telefonica → BABA public
			if c, ok := row.Cells["BABA"]; ok && c.Class != pipeline.ClassPublic {
				t.Errorf("Telefonica→BABA = %v, want 2+ AS", c.Class)
			}
		}
	}

	// Fig 12b: direct vs transit latency towards UK DCs is comparable.
	// Per-provider groups are thin at test scale, so pool across
	// providers as for Fig 13b.
	var direct, transit []float64
	for i := range f.processed {
		p := &f.processed[i]
		if p.Record.VP.Platform != "speedchecker" || p.Record.VP.Country != "DE" ||
			p.Record.Target.Country != "GB" || p.EndToEndRTTms <= 0 ||
			p.Class == pipeline.ClassUnknown {
			continue
		}
		if p.Class == pipeline.ClassDirect || p.Class == pipeline.ClassDirectIXP {
			direct = append(direct, p.EndToEndRTTms)
		} else {
			transit = append(transit, p.EndToEndRTTms)
		}
	}
	if len(direct) < 20 || len(transit) < 20 {
		t.Fatalf("thin DE→GB pools: %d direct, %d transit", len(direct), len(transit))
	}
	db, _ := stats.Summarize(direct)
	tb, _ := stats.Summarize(transit)
	if gap := tb.Median - db.Median; gap < -15 || gap > 20 {
		t.Errorf("DE→GB direct %.0f vs transit %.0f — gap too large for Europe (§6.2: minimal)",
			db.Median, tb.Median)
	}
}

func TestJapanIndiaCaseStudyFig13(t *testing.T) {
	f := testData(t)
	m := CaseStudyMatrix(f.processed, f.w.Registry, "JP", "IN", 5)
	if len(m.Rows) == 0 {
		t.Fatal("no Fig 13a rows")
	}
	for _, row := range m.Rows {
		// DigitalOcean strictly public in Asia.
		if c, ok := row.Cells["DO"]; ok && c.Class != pipeline.ClassPublic {
			t.Errorf("%v → DO = %v, want 2+ AS", row.ISP, c.Class)
		}
		// NTT (4713) → Amazon is not direct.
		if row.ISP == 4713 {
			if c, ok := row.Cells["AMZN"]; ok && (c.Class == pipeline.ClassDirect || c.Class == pipeline.ClassDirectIXP) {
				t.Errorf("NTT→AMZN should not be direct, got %v", c.Class)
			}
		}
	}

	// Fig 13b: direct peering reduces latency variation. Per-provider
	// samples are thin at test scale, so pool across providers.
	var direct, transit []float64
	for i := range f.processed {
		p := &f.processed[i]
		if p.Record.VP.Platform != "speedchecker" || p.Record.VP.Country != "JP" ||
			p.Record.Target.Country != "IN" || p.EndToEndRTTms <= 0 ||
			p.Class == pipeline.ClassUnknown {
			continue
		}
		if p.Class == pipeline.ClassDirect || p.Class == pipeline.ClassDirectIXP {
			direct = append(direct, p.EndToEndRTTms)
		} else {
			transit = append(transit, p.EndToEndRTTms)
		}
	}
	if len(direct) < 20 || len(transit) < 20 {
		t.Skipf("thin JP→IN pools: %d direct, %d transit", len(direct), len(transit))
	}
	db, _ := stats.Summarize(direct)
	tb, _ := stats.Summarize(transit)
	if db.IQR() >= tb.IQR() {
		t.Errorf("direct IQR %.1f should sit below transit IQR %.1f", db.IQR(), tb.IQR())
	}
	// Medians remain comparable (§6.2: the win is in the tails).
	if db.Median >= tb.Median*1.1 {
		t.Errorf("direct median %.0f should not exceed transit %.0f", db.Median, tb.Median)
	}
}

func TestBahrainIndiaCaseStudyFig18(t *testing.T) {
	f := testData(t)
	lat := CaseStudyLatency(f.processed, "BH", "IN", 5)
	if len(lat) == 0 {
		t.Skip("not enough BH→IN pairs at this scale")
	}
	// Fig 18b: direct peering achieves consistently shorter latencies
	// for in-land Asian interconnections.
	for _, pl := range lat {
		if pl.Direct.Median >= pl.Transit.Median {
			t.Errorf("%s BH→IN: direct %.0f should beat transit %.0f",
				pl.Provider, pl.Direct.Median, pl.Transit.Median)
		}
	}
}

func TestUkraineUKCaseStudyFig17(t *testing.T) {
	f := testData(t)
	m := CaseStudyMatrix(f.processed, f.w.Registry, "UA", "GB", 5)
	if len(m.Rows) != 5 {
		t.Fatalf("Fig 17a rows = %d", len(m.Rows))
	}
	// The hypergiant direct-peering trend repeats for Ukrainian ISPs.
	directCells := 0
	for _, row := range m.Rows {
		for _, prov := range []string{"AMZN", "GCP", "MSFT"} {
			if c, ok := row.Cells[prov]; ok && (c.Class == pipeline.ClassDirect || c.Class == pipeline.ClassDirectIXP) {
				directCells++
			}
		}
	}
	if directCells < 12 { // of up to 15 hypergiant cells
		t.Errorf("hypergiant direct cells = %d/15, want the vast majority", directCells)
	}
}

func TestMatrixCellConsistency(t *testing.T) {
	f := testData(t)
	m := CaseStudyMatrix(f.processed, f.w.Registry, "DE", "GB", 5)
	for _, row := range m.Rows {
		if row.Name == "" {
			t.Errorf("ISP %v has no name", row.ISP)
		}
		for prov, cell := range row.Cells {
			if cell.Pct < 0 || cell.Pct > 100 || cell.N <= 0 {
				t.Errorf("%v→%s: bad cell %+v", row.ISP, prov, cell)
			}
			if cell.Class == pipeline.ClassUnknown {
				t.Errorf("%v→%s: unknown majority class", row.ISP, prov)
			}
		}
	}
	// Rows are ranked by measurement volume.
	for i := 1; i < len(m.Rows); i++ {
		if m.Rows[i].N > m.Rows[i-1].N {
			t.Error("matrix rows not sorted by measurement count")
		}
	}
}

func TestEmptyPeeringInputs(t *testing.T) {
	f := testData(t)
	if got := Interconnections(nil); got != nil {
		t.Errorf("empty interconnections = %v", got)
	}
	if got := Pervasiveness(nil); got != nil {
		t.Errorf("empty pervasiveness = %v", got)
	}
	m := CaseStudyMatrix(nil, f.w.Registry, "DE", "GB", 5)
	if len(m.Rows) != 0 {
		t.Error("empty matrix should have no rows")
	}
	if got := CaseStudyLatency(nil, "DE", "GB", 1); got != nil {
		t.Errorf("empty case-study latency = %v", got)
	}
}

// mkProcessed builds a synthetic processed trace for unit-testing the
// case-study aggregations without a full campaign.
func mkProcessed(isp asn.Number, prov, vpCountry, dcCountry string, class pipeline.Class, rtt float64) pipeline.Processed {
	rec := &dataset.TracerouteRecord{
		VP: dataset.VantagePoint{
			ProbeID: "p", Platform: "speedchecker", Country: vpCountry, ISP: isp,
		},
		Target: dataset.Target{Region: "r", Provider: prov, Country: dcCountry},
	}
	return pipeline.Processed{Record: rec, Class: class, EndToEndRTTms: rtt, ReachedCloud: true}
}

func TestCaseStudyLatencySynthetic(t *testing.T) {
	var processed []pipeline.Processed
	for i := 0; i < 30; i++ {
		processed = append(processed,
			mkProcessed(100, "GCP", "BH", "IN", pipeline.ClassDirect, 60+float64(i%5)),
			mkProcessed(101, "GCP", "BH", "IN", pipeline.ClassPublic, 120+float64(i%40)),
			// Below the sample floor on the direct side:
			mkProcessed(102, "LIN", "BH", "IN", pipeline.ClassPublic, 150),
			// Wrong country pair, must be ignored:
			mkProcessed(103, "GCP", "JP", "IN", pipeline.ClassDirect, 10),
		)
	}
	lat := CaseStudyLatency(processed, "BH", "IN", 10)
	if len(lat) != 1 || lat[0].Provider != "GCP" {
		t.Fatalf("rows = %+v", lat)
	}
	pl := lat[0]
	if pl.NDirect != 30 || pl.NTransit != 30 {
		t.Errorf("counts = %d/%d", pl.NDirect, pl.NTransit)
	}
	if pl.Direct.Median >= pl.Transit.Median {
		t.Error("direct median should be lower in this synthetic setup")
	}
	if pl.Direct.IQR() >= pl.Transit.IQR() {
		t.Error("direct IQR should be tighter in this synthetic setup")
	}
	// Lightsail folds into Amazon.
	var ltsl []pipeline.Processed
	for i := 0; i < 20; i++ {
		ltsl = append(ltsl,
			mkProcessed(100, "LTSL", "BH", "IN", pipeline.ClassDirect, 50),
			mkProcessed(100, "LTSL", "BH", "IN", pipeline.ClassPublic, 90))
	}
	lat = CaseStudyLatency(ltsl, "BH", "IN", 10)
	if len(lat) != 1 || lat[0].Provider != "AMZN" {
		t.Fatalf("LTSL fold failed: %+v", lat)
	}
}

func TestProviderConsistency(t *testing.T) {
	f := testData(t)
	rows := ProviderComparison(f.store, 10)
	if len(rows) < 4 {
		t.Fatalf("provider consistency rows = %d", len(rows))
	}
	var eu, af *ProviderConsistency
	for i := range rows {
		r := &rows[i]
		if r.MaxKS < 0 || r.MaxKS > 1 {
			t.Errorf("%v: KS out of range: %v", r.Continent, r.MaxKS)
		}
		for j := 1; j < len(r.Providers); j++ {
			if r.Providers[j].Box.Median < r.Providers[j-1].Box.Median {
				t.Errorf("%v: providers not sorted by median", r.Continent)
			}
		}
		switch r.Continent {
		case geo.EU:
			eu = r
		case geo.AF:
			af = r
		}
	}
	if eu == nil {
		t.Fatal("no EU row")
	}
	// §8: performance is consistent and comparable across providers in
	// developed continents.
	if eu.MedianSpreadMs > 25 {
		t.Errorf("EU provider median spread = %.1f ms, want tight", eu.MedianSpreadMs)
	}
	if len(eu.Providers) < 6 {
		t.Errorf("EU providers compared = %d", len(eu.Providers))
	}
	// In Asia, provider footprints differ wildly (Alibaba's Chinese
	// regions vs DigitalOcean's single Bangalore DC), so the spread
	// dwarfs Europe's (§8: developing regions are distance-dominated).
	var as *ProviderConsistency
	for i := range rows {
		if rows[i].Continent == geo.AS {
			as = &rows[i]
		}
	}
	if as == nil {
		t.Fatal("no AS row")
	}
	if as.MedianSpreadMs <= eu.MedianSpreadMs {
		t.Errorf("AS spread (%.1f) should exceed EU (%.1f)", as.MedianSpreadMs, eu.MedianSpreadMs)
	}
	_ = af
}

func TestPathFlattening(t *testing.T) {
	f := testData(t)
	rows := PathFlattening(f.processed)
	if len(rows) != 9 {
		t.Fatalf("flattening rows = %d", len(rows))
	}
	get := func(code string) Flattening {
		for _, r := range rows {
			if r.Provider == code {
				return r
			}
		}
		t.Fatalf("missing %s", code)
		return Flattening{}
	}
	// §2.1: traffic to hypergiants rides a flat Internet.
	for _, code := range []string{"AMZN", "GCP", "MSFT"} {
		r := get(code)
		if r.MeanASes > 2.7 {
			t.Errorf("%s mean AS-path length = %.2f, want flat (≈2)", code, r.MeanASes)
		}
	}
	// Small providers still live behind the hierarchy.
	for _, code := range []string{"VLTR", "BABA"} {
		r := get(code)
		if r.MeanASes < 3.0 {
			t.Errorf("%s mean AS-path length = %.2f, want hierarchical (≥3)", code, r.MeanASes)
		}
	}
	if get("GCP").MeanASes >= get("VLTR").MeanASes {
		t.Error("hypergiant paths must be flatter than public providers'")
	}
	for _, r := range rows {
		if r.Box.Min < 2 {
			t.Errorf("%s: path with fewer than 2 ASes", r.Provider)
		}
	}
}
