package analysis

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/stats"
)

// PlatformDiff is one Figure 5 curve: the distribution of latency
// differences (Speedchecker − Atlas) towards the nearest datacenter on
// one continent. Negative values mean Speedchecker was faster.
type PlatformDiff struct {
	Continent geo.Continent
	// Diffs are percentile-matched differences between the two
	// platforms' nearest-DC distributions (1st..99th percentile).
	Diffs []float64
	// AtlasFasterShare is the fraction of the distribution where Atlas
	// wins (diff > 0).
	AtlasFasterShare float64
	NSC, NAtlas      int
}

// percentileGrid returns {from/100, ..., to/100} stepping by step
// percentage points — the probe grids of Figures 5 and 16.
func percentileGrid(from, to, step int) []float64 {
	var out []float64
	for p := from; p <= to; p += step {
		out = append(out, float64(p)/100)
	}
	return out
}

var (
	centiles = percentileGrid(1, 99, 1) // Figure 5: 1st..99th
	ventiles = percentileGrid(5, 95, 5) // Figure 16: 5th..95th by 5
)

// PlatformComparison computes Figure 5. The two platforms measure from
// different probes, so the comparison matches distributions percentile
// by percentile, the standard approach for unpaired samples.
func PlatformComparison(store *dataset.Store) []PlatformDiff {
	return PlatformComparisonFrom(
		Nearest(store, "speedchecker").ByContinent(),
		Nearest(store, "atlas").ByContinent())
}

// PlatformComparisonFrom computes Figure 5 from per-continent
// nearest-DC sample sets of the two platforms. Each sample set is
// sorted exactly once for all 99 percentiles (Quantiles), not per
// percentile as the old per-q loop did.
func PlatformComparisonFrom(sc, at map[geo.Continent][]float64) []PlatformDiff {
	var out []PlatformDiff
	for _, cont := range geo.Continents() {
		xs, ys := sc[cont], at[cont]
		if len(xs) == 0 || len(ys) == 0 {
			continue
		}
		d := PlatformDiff{Continent: cont, NSC: len(xs), NAtlas: len(ys)}
		as, err1 := stats.Quantiles(xs, centiles...)
		bs, err2 := stats.Quantiles(ys, centiles...)
		if err1 != nil || err2 != nil {
			continue
		}
		atlasFaster := 0
		for i := range as {
			diff := as[i] - bs[i]
			d.Diffs = append(d.Diffs, diff)
			if diff > 0 {
				atlasFaster++
			}
		}
		d.AtlasFasterShare = float64(atlasFaster) / float64(len(centiles))
		out = append(out, d)
	}
	return out
}

// MatchedDiff is one Figure 16 curve: like Figure 5, but only over
// probe groups present on both platforms with the same serving ISP in
// the same country (the paper's <city, ASN> first-hop match). Continents
// without enough matched groups are excluded, as in the paper (AF, SA,
// OC).
type MatchedDiff struct {
	Continent     geo.Continent
	Diffs         []float64
	MatchedGroups int
}

// MatchedComparison computes Figure 16. minGroups is the minimum number
// of matched <country, ISP> groups per continent (the paper found
// enough only in EU, NA and AS).
func MatchedComparison(store *dataset.Store, minGroups int) []MatchedDiff {
	return MatchedComparisonFrom(
		Nearest(store, "speedchecker"),
		Nearest(store, "atlas"), minGroups)
}

// MatchedComparisonFrom computes Figure 16 from the two platforms'
// nearest-DC assignments, however they were produced — batch Nearest
// scans or one single-pass Collect.
func MatchedComparisonFrom(scNA, atNA NearestAssignment, minGroups int) []MatchedDiff {
	type group struct {
		country string
		isp     uint32
	}
	collect := func(na NearestAssignment) map[group]map[geo.Continent][]float64 {
		out := make(map[group]map[geo.Continent][]float64)
		for probe, xs := range na.Samples {
			vp := na.Meta[probe]
			g := group{vp.Country, uint32(vp.ISP)}
			if out[g] == nil {
				out[g] = make(map[geo.Continent][]float64)
			}
			out[g][vp.Continent] = append(out[g][vp.Continent], xs...)
		}
		return out
	}
	sc := collect(scNA)
	at := collect(atNA)

	perCont := make(map[geo.Continent][]float64)
	groups := make(map[geo.Continent]int)
	var keys []group
	for g := range sc {
		if _, ok := at[g]; ok {
			keys = append(keys, g)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].country != keys[j].country {
			return keys[i].country < keys[j].country
		}
		return keys[i].isp < keys[j].isp
	})
	for _, g := range keys {
		for cont, xs := range sc[g] {
			ys := at[g][cont]
			if len(xs) == 0 || len(ys) == 0 {
				continue
			}
			groups[cont]++
			as, err1 := stats.Quantiles(xs, ventiles...)
			bs, err2 := stats.Quantiles(ys, ventiles...)
			if err1 != nil || err2 != nil {
				continue
			}
			for i := range as {
				perCont[cont] = append(perCont[cont], as[i]-bs[i])
			}
		}
	}
	var out []MatchedDiff
	for _, cont := range geo.Continents() {
		if groups[cont] < minGroups {
			continue
		}
		out = append(out, MatchedDiff{Continent: cont, Diffs: perCont[cont], MatchedGroups: groups[cont]})
	}
	return out
}

// ProtocolComparison is one Figure 15 pair of boxes: ICMP vs TCP
// latency on one continent over Speedchecker, compared per
// <country, datacenter> pair as §3.3 does.
type ProtocolComparison struct {
	Continent geo.Continent
	// TCP and ICMP summarize the per-<country, datacenter> median
	// latencies under each protocol.
	TCP, ICMP stats.FiveNum
	// MedianGapPct is the median over pairs of (ICMP−TCP)/TCP, in
	// percent; §3.3 reports it within about 2% on Speedchecker.
	MedianGapPct float64
	Pairs        int
}

// ProtocolComparisons computes Figure 15. Comparing matched
// <country, datacenter> pairs (rather than pooled samples) is what the
// paper does, and it keeps the comparison meaningful on continents with
// strongly multi-modal latency. It is the batch adapter over the
// single-pass protocol collector.
func ProtocolComparisons(store *dataset.Store) []ProtocolComparison {
	c := newProtoCollector()
	for i := range store.Pings {
		c.add(&store.Pings[i])
	}
	return c.comparisons()
}
