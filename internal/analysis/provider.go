package analysis

import (
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/stats"
)

// ProviderLatency is one provider's nearest-DC latency distribution on
// one continent.
type ProviderLatency struct {
	Provider string
	Box      stats.FiveNum
	N        int
}

// ProviderConsistency captures the paper's conclusion that "cloud
// performance is almost consistent and comparable across providers in
// continents hosting developed countries": per continent, the
// per-provider medians and their spread.
type ProviderConsistency struct {
	Continent geo.Continent
	Providers []ProviderLatency
	// MedianSpreadMs is max−min of the per-provider medians.
	MedianSpreadMs float64
	// MaxKS is the largest two-sample KS distance between any provider
	// pair's distributions — 0 means identical, 1 disjoint.
	MaxKS float64
}

// ProviderComparison computes per-continent provider consistency from
// Speedchecker TCP pings towards each probe's nearest same-continent
// region of every provider. Providers with fewer than minSamples
// samples on a continent are skipped. It is the batch adapter over the
// single-pass provider collector.
func ProviderComparison(store *dataset.Store, minSamples int) []ProviderConsistency {
	c := newProviderCollector()
	for i := range store.Pings {
		c.add(&store.Pings[i])
	}
	return c.consistency(minSamples)
}
