package analysis

import (
	"sort"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/stats"
)

// ProviderLatency is one provider's nearest-DC latency distribution on
// one continent.
type ProviderLatency struct {
	Provider string
	Box      stats.FiveNum
	N        int
}

// ProviderConsistency captures the paper's conclusion that "cloud
// performance is almost consistent and comparable across providers in
// continents hosting developed countries": per continent, the
// per-provider medians and their spread.
type ProviderConsistency struct {
	Continent geo.Continent
	Providers []ProviderLatency
	// MedianSpreadMs is max−min of the per-provider medians.
	MedianSpreadMs float64
	// MaxKS is the largest two-sample KS distance between any provider
	// pair's distributions — 0 means identical, 1 disjoint.
	MaxKS float64
}

// ProviderComparison computes per-continent provider consistency from
// Speedchecker TCP pings towards each probe's nearest same-continent
// region of every provider. Providers with fewer than minSamples
// samples on a continent are skipped.
func ProviderComparison(store *dataset.Store, minSamples int) []ProviderConsistency {
	// Per <probe, provider>, find the region with the lowest mean and
	// collect its samples — the per-provider analogue of Nearest.
	type ppKey struct {
		probe    string
		provider string
		region   string
	}
	sums := map[ppKey]*stats.Welford{}
	meta := map[string]dataset.VantagePoint{}
	use := func(r *dataset.PingRecord) bool {
		return r.VP.Platform == "speedchecker" && r.Target.Continent == r.VP.Continent
	}
	for i := range store.Pings {
		r := &store.Pings[i]
		if !use(r) {
			continue
		}
		prov := figureProvider(r.Target.Provider)
		if prov == "" {
			continue
		}
		k := ppKey{r.VP.ProbeID, prov, r.Target.Region}
		w := sums[k]
		if w == nil {
			w = &stats.Welford{}
			sums[k] = w
		}
		w.Add(r.RTTms)
		meta[r.VP.ProbeID] = r.VP
	}
	type pp struct {
		probe    string
		provider string
	}
	best := map[pp]string{}
	bestMean := map[pp]float64{}
	for k, w := range sums {
		g := pp{k.probe, k.provider}
		//lint:ignore floateq exact tie of identically-accumulated means; the region-name tie-break keeps the winner independent of map order
		if m, ok := bestMean[g]; !ok || w.Mean() < m || (w.Mean() == m && k.region < best[g]) {
			best[g] = k.region
			bestMean[g] = w.Mean()
		}
	}
	type cpKey struct {
		cont geo.Continent
		prov string
	}
	samples := map[cpKey][]float64{}
	for i := range store.Pings {
		r := &store.Pings[i]
		if !use(r) {
			continue
		}
		prov := figureProvider(r.Target.Provider)
		if prov == "" {
			continue
		}
		if best[pp{r.VP.ProbeID, prov}] != r.Target.Region {
			continue
		}
		samples[cpKey{r.VP.Continent, prov}] = append(samples[cpKey{r.VP.Continent, prov}], r.RTTms)
	}

	var out []ProviderConsistency
	for _, cont := range geo.Continents() {
		pc := ProviderConsistency{Continent: cont}
		var dists [][]float64
		for _, prov := range cloud.FigureProviderCodes() {
			xs := samples[cpKey{cont, prov}]
			if len(xs) < minSamples {
				continue
			}
			box, err := stats.Summarize(xs)
			if err != nil {
				continue
			}
			pc.Providers = append(pc.Providers, ProviderLatency{Provider: prov, Box: box, N: len(xs)})
			dists = append(dists, xs)
		}
		if len(pc.Providers) < 2 {
			continue
		}
		lo, hi := pc.Providers[0].Box.Median, pc.Providers[0].Box.Median
		for _, p := range pc.Providers[1:] {
			if p.Box.Median < lo {
				lo = p.Box.Median
			}
			if p.Box.Median > hi {
				hi = p.Box.Median
			}
		}
		pc.MedianSpreadMs = hi - lo
		for i := range dists {
			for j := i + 1; j < len(dists); j++ {
				if d, err := stats.KolmogorovSmirnov(dists[i], dists[j]); err == nil && d > pc.MaxKS {
					pc.MaxKS = d
				}
			}
		}
		sort.Slice(pc.Providers, func(i, j int) bool {
			return pc.Providers[i].Box.Median < pc.Providers[j].Box.Median
		})
		out = append(out, pc)
	}
	return out
}
