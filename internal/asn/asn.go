// Package asn models autonomous systems: their numbers, organizations,
// network roles, announced prefixes, and per-AS Internet-user population
// estimates (the APNIC dataset equivalent from §3.2 of the paper).
//
// The registry doubles as the IP→ASN resolution database: it indexes all
// announced prefixes in a longest-prefix-match trie, playing the role of
// PyASN plus the Team Cymru fallback in the paper's traceroute pipeline.
package asn

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/netaddr"
)

// Number is an autonomous system number.
type Number uint32

// String formats the ASN in the conventional "AS1299" form.
func (n Number) String() string { return fmt.Sprintf("AS%d", uint32(n)) }

// Type classifies the network role of an AS, mirroring the network-type
// attribute the paper enriches from PeeringDB.
type Type uint8

// AS roles.
const (
	TypeUnknown Type = iota
	TypeTier1        // global transit carrier (e.g. Telia AS1299)
	TypeTier2        // regional/national transit provider
	TypeAccess       // eyeball / serving ISP hosting vantage points
	TypeCloud        // cloud provider WAN
	TypeIXP          // Internet exchange point peering LAN
	TypeEnterprise
)

// String returns the lowercase role name.
func (t Type) String() string {
	switch t {
	case TypeTier1:
		return "tier1"
	case TypeTier2:
		return "tier2"
	case TypeAccess:
		return "access"
	case TypeCloud:
		return "cloud"
	case TypeIXP:
		return "ixp"
	case TypeEnterprise:
		return "enterprise"
	default:
		return "unknown"
	}
}

// AS describes one autonomous system.
type AS struct {
	Number    Number
	Name      string // organization name, as PeeringDB would report it
	Type      Type
	Country   string // ISO code of headquarters / main operating country
	Continent geo.Continent
	Prefixes  []netaddr.Prefix
	// Users is the estimated Internet-user population served by the AS
	// (APNIC-style ad-based estimate, §3.2). Zero for non-access ASes.
	Users float64
}

// Registry stores all ASes of the synthetic Internet and resolves
// addresses to their origin AS. The zero value is ready to use.
// Registry is safe for concurrent readers after registration completes.
type Registry struct {
	byNumber map[Number]*AS
	ordered  []*AS
	trie     netaddr.Trie[Number]
}

// Register adds an AS to the registry and indexes its prefixes. It
// returns an error on a duplicate ASN or a prefix clash with another AS.
func (r *Registry) Register(a *AS) error {
	if a == nil || a.Number == 0 {
		return fmt.Errorf("asn: refusing to register nil or AS0")
	}
	if r.byNumber == nil {
		r.byNumber = make(map[Number]*AS)
	}
	if _, dup := r.byNumber[a.Number]; dup {
		return fmt.Errorf("asn: duplicate %v", a.Number)
	}
	for _, p := range a.Prefixes {
		if owner, _, ok := r.trie.Lookup(p.Addr); ok && owner != a.Number {
			if existing := r.byNumber[owner]; existing != nil {
				for _, q := range existing.Prefixes {
					if q.Overlaps(p) {
						return fmt.Errorf("asn: %v prefix %v overlaps %v of %v", a.Number, p, q, owner)
					}
				}
			}
		}
	}
	r.byNumber[a.Number] = a
	r.ordered = append(r.ordered, a)
	for _, p := range a.Prefixes {
		r.trie.Insert(p, a.Number)
	}
	return nil
}

// Lookup returns the AS with the given number.
func (r *Registry) Lookup(n Number) (*AS, bool) {
	a, ok := r.byNumber[n]
	return a, ok
}

// ResolveIP maps an address to its origin AS via longest-prefix match.
// Private and CGN addresses never resolve, matching the pipeline's
// treatment of unresolvable hops.
func (r *Registry) ResolveIP(ip netaddr.IP) (*AS, bool) {
	if ip.IsPrivate() {
		return nil, false
	}
	n, _, ok := r.trie.Lookup(ip)
	if !ok {
		return nil, false
	}
	a, ok := r.byNumber[n]
	return a, ok
}

// All returns every registered AS in registration order. Callers must
// not mutate the slice.
func (r *Registry) All() []*AS { return r.ordered }

// Len returns the number of registered ASes.
func (r *Registry) Len() int { return len(r.ordered) }

// ByType returns all ASes with the given role, in registration order.
func (r *Registry) ByType(t Type) []*AS {
	var out []*AS
	for _, a := range r.ordered {
		if a.Type == t {
			out = append(out, a)
		}
	}
	return out
}

// AccessIn returns the access ISPs operating in the given country,
// sorted by descending user population (the paper's "top-5 ISPs ordered
// by number of recorded measurements" uses the same ordering).
func (r *Registry) AccessIn(country string) []*AS {
	var out []*AS
	for _, a := range r.ordered {
		if a.Type == TypeAccess && a.Country == country {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Users != out[j].Users {
			return out[i].Users > out[j].Users
		}
		return out[i].Number < out[j].Number
	})
	return out
}

// UserCoverage returns the total user population of the given ASNs as a
// fraction of the population across all access ASes — the statistic the
// paper quotes as "ASes that cover 95.6% of the Internet user
// population".
func (r *Registry) UserCoverage(asns map[Number]bool) float64 {
	var total, covered float64
	for _, a := range r.ordered {
		if a.Type != TypeAccess {
			continue
		}
		total += a.Users
		if asns[a.Number] {
			covered += a.Users
		}
	}
	if total == 0 {
		return 0
	}
	return covered / total
}
