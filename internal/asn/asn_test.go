package asn

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/netaddr"
)

func mkAS(n Number, t Type, country string, users float64, prefixes ...string) *AS {
	a := &AS{Number: n, Name: n.String(), Type: t, Country: country, Users: users}
	for _, p := range prefixes {
		a.Prefixes = append(a.Prefixes, netaddr.MustParsePrefix(p))
	}
	return a
}

func TestRegisterAndLookup(t *testing.T) {
	var r Registry
	a := mkAS(3320, TypeAccess, "DE", 30, "84.128.0.0/10")
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup(3320)
	if !ok || got != a {
		t.Fatal("lookup after register failed")
	}
	if _, ok := r.Lookup(9999); ok {
		t.Error("lookup of unregistered ASN should miss")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	var r Registry
	if err := r.Register(mkAS(100, TypeTier1, "US", 0, "5.0.0.0/8")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(mkAS(100, TypeTier2, "US", 0)); err == nil {
		t.Error("duplicate ASN should fail")
	}
	if err := r.Register(nil); err == nil {
		t.Error("nil AS should fail")
	}
	if err := r.Register(&AS{Number: 0}); err == nil {
		t.Error("AS0 should fail")
	}
}

func TestResolveIP(t *testing.T) {
	var r Registry
	if err := r.Register(mkAS(1299, TypeTier1, "SE", 0, "62.115.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(mkAS(3209, TypeAccess, "DE", 25, "78.32.0.0/11")); err != nil {
		t.Fatal(err)
	}
	a, ok := r.ResolveIP(netaddr.MustParseIP("62.115.44.1"))
	if !ok || a.Number != 1299 {
		t.Errorf("ResolveIP = %v, %v", a, ok)
	}
	a, ok = r.ResolveIP(netaddr.MustParseIP("78.40.0.1"))
	if !ok || a.Number != 3209 {
		t.Errorf("ResolveIP = %v, %v", a, ok)
	}
	if _, ok := r.ResolveIP(netaddr.MustParseIP("8.8.8.8")); ok {
		t.Error("unannounced space should not resolve")
	}
	// Private and CGN space never resolves even if someone announced a
	// covering prefix.
	if _, ok := r.ResolveIP(netaddr.MustParseIP("192.168.1.1")); ok {
		t.Error("private space should not resolve")
	}
	if _, ok := r.ResolveIP(netaddr.MustParseIP("100.64.3.2")); ok {
		t.Error("CGN space should not resolve")
	}
}

func TestByTypeAndAccessIn(t *testing.T) {
	var r Registry
	must := func(a *AS) {
		t.Helper()
		if err := r.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	must(mkAS(3320, TypeAccess, "DE", 30, "84.128.0.0/10"))
	must(mkAS(3209, TypeAccess, "DE", 25, "78.32.0.0/11"))
	must(mkAS(6805, TypeAccess, "DE", 20, "91.0.0.0/10"))
	must(mkAS(2516, TypeAccess, "JP", 40, "106.128.0.0/10"))
	must(mkAS(1299, TypeTier1, "SE", 0, "62.115.0.0/16"))

	if got := len(r.ByType(TypeAccess)); got != 4 {
		t.Errorf("access count = %d", got)
	}
	if got := len(r.ByType(TypeTier1)); got != 1 {
		t.Errorf("tier1 count = %d", got)
	}
	de := r.AccessIn("DE")
	if len(de) != 3 {
		t.Fatalf("AccessIn(DE) = %d entries", len(de))
	}
	if de[0].Number != 3320 || de[1].Number != 3209 || de[2].Number != 6805 {
		t.Errorf("AccessIn(DE) not sorted by users: %v %v %v", de[0].Number, de[1].Number, de[2].Number)
	}
	if got := len(r.AccessIn("FR")); got != 0 {
		t.Errorf("AccessIn(FR) = %d", got)
	}
}

func TestAccessInStableTiebreak(t *testing.T) {
	var r Registry
	for _, n := range []Number{300, 100, 200} {
		if err := r.Register(mkAS(n, TypeAccess, "FR", 5)); err != nil {
			t.Fatal(err)
		}
	}
	fr := r.AccessIn("FR")
	if fr[0].Number != 100 || fr[1].Number != 200 || fr[2].Number != 300 {
		t.Errorf("equal-user tiebreak should order by ASN: %v %v %v",
			fr[0].Number, fr[1].Number, fr[2].Number)
	}
}

func TestUserCoverage(t *testing.T) {
	var r Registry
	must := func(a *AS) {
		t.Helper()
		if err := r.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	must(mkAS(1, TypeAccess, "DE", 60))
	must(mkAS(2, TypeAccess, "DE", 30))
	must(mkAS(3, TypeAccess, "FR", 10))
	must(mkAS(4, TypeTier1, "US", 0)) // ignored: not access

	cov := r.UserCoverage(map[Number]bool{1: true, 3: true})
	if want := 0.7; cov != want {
		t.Errorf("coverage = %v, want %v", cov, want)
	}
	if got := r.UserCoverage(nil); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
	var empty Registry
	if got := empty.UserCoverage(map[Number]bool{1: true}); got != 0 {
		t.Errorf("coverage over empty registry = %v", got)
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{
		TypeUnknown: "unknown", TypeTier1: "tier1", TypeTier2: "tier2",
		TypeAccess: "access", TypeCloud: "cloud", TypeIXP: "ixp",
		TypeEnterprise: "enterprise",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
	if Number(1299).String() != "AS1299" {
		t.Errorf("Number string = %q", Number(1299).String())
	}
}

func TestContinentFieldPreserved(t *testing.T) {
	var r Registry
	a := mkAS(5416, TypeAccess, "BH", 1)
	a.Continent = geo.AS
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Lookup(5416)
	if got.Continent != geo.AS {
		t.Errorf("continent = %v", got.Continent)
	}
}
