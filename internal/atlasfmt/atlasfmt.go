// Package atlasfmt encodes and decodes measurement results in the RIPE
// Atlas JSON result format — the format the Corneo et al. dataset the
// paper compares against is published in (§3.2, [30]).
//
// Atlas results identify probes by numeric IDs and carry no vantage
// metadata; Atlas users join results against the probe-metadata API.
// This package mirrors that split: exporting a store yields the NDJSON
// results plus a Meta sidecar (probe ID ↔ vantage point, address ↔
// target), and importing needs the sidecar back. Round trips are exact.
package atlasfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/dataset"
	"repro/internal/netaddr"
	"repro/internal/sample"
)

// epoch is the start of the paper's Atlas campaign (1 Sep 2019 UTC),
// used to synthesize plausible timestamps from cycle indexes.
const epoch = 1567296000

// cycleSeconds is the two-week campaign cycle length (§3.3).
const cycleSeconds = 14 * 24 * 3600

// Measurement-ID bases: Atlas measurement IDs are opaque int64s, so the
// exporter encodes the campaign cycle there for exact round trips.
const (
	pingMsmBase  = 1 << 32
	traceMsmBase = 1 << 33
)

// PingResult is one Atlas-format ping measurement.
type PingResult struct {
	Fw        int         `json:"fw"`
	MsmID     int64       `json:"msm_id"`
	PrbID     int         `json:"prb_id"`
	Timestamp int64       `json:"timestamp"`
	Type      string      `json:"type"` // "ping"
	DstAddr   string      `json:"dst_addr"`
	Proto     string      `json:"proto"` // "TCP" or "ICMP"
	Sent      int         `json:"sent"`
	Rcvd      int         `json:"rcvd"`
	Min       float64     `json:"min"`
	Avg       float64     `json:"avg"`
	Max       float64     `json:"max"`
	Result    []PingReply `json:"result"`
}

// PingReply is one echo within a ping measurement: either an RTT or a
// timeout marker {"x":"*"}.
type PingReply struct {
	RTT *float64 `json:"rtt,omitempty"`
	X   string   `json:"x,omitempty"`
}

// TraceResult is one Atlas-format traceroute.
type TraceResult struct {
	Fw        int        `json:"fw"`
	MsmID     int64      `json:"msm_id"`
	PrbID     int        `json:"prb_id"`
	Timestamp int64      `json:"timestamp"`
	Type      string     `json:"type"` // "traceroute"
	DstAddr   string     `json:"dst_addr"`
	Proto     string     `json:"proto"`
	Result    []TraceHop `json:"result"`
}

// TraceHop is one TTL step.
type TraceHop struct {
	Hop    int        `json:"hop"`
	Result []HopReply `json:"result"`
}

// HopReply is one response at a TTL: a responding router or a timeout.
type HopReply struct {
	From string   `json:"from,omitempty"`
	RTT  *float64 `json:"rtt,omitempty"`
	X    string   `json:"x,omitempty"`
}

// Meta is the probe/target metadata sidecar (the probe-metadata API
// equivalent) needed to reconstruct full records from Atlas results.
type Meta struct {
	Probes  map[int]dataset.VantagePoint `json:"probes"`
	Targets map[string]dataset.Target    `json:"targets"` // keyed by dst_addr
	// probeIDs maps our string probe IDs to Atlas numeric IDs during
	// export.
	probeIDs map[string]int
}

// NewMeta returns an empty sidecar ready for export.
func NewMeta() *Meta {
	return &Meta{
		Probes:   make(map[int]dataset.VantagePoint),
		Targets:  make(map[string]dataset.Target),
		probeIDs: make(map[string]int),
	}
}

// prbIDFor assigns stable numeric probe IDs in first-seen order.
func (m *Meta) prbIDFor(vp dataset.VantagePoint) int {
	if id, ok := m.probeIDs[vp.ProbeID]; ok {
		return id
	}
	id := len(m.probeIDs) + 1000000 // Atlas-style 7-digit IDs
	m.probeIDs[vp.ProbeID] = id
	m.Probes[id] = vp
	return id
}

func (m *Meta) register(t dataset.Target) string {
	addr := t.IP.String()
	if _, ok := m.Targets[addr]; !ok {
		m.Targets[addr] = t
	}
	return addr
}

// WriteMeta serializes the sidecar as JSON.
func (m *Meta) WriteMeta(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// ReadMeta parses a sidecar.
func ReadMeta(r io.Reader) (*Meta, error) {
	m := NewMeta()
	if err := json.NewDecoder(r).Decode(m); err != nil {
		return nil, fmt.Errorf("atlasfmt: reading meta: %w", err)
	}
	return m, nil
}

func protoName(p dataset.Protocol) string {
	if p == dataset.ICMP {
		return "ICMP"
	}
	return "TCP"
}

func parseProto(s string) (dataset.Protocol, error) {
	switch s {
	case "TCP":
		return dataset.TCP, nil
	case "ICMP":
		return dataset.ICMP, nil
	}
	return 0, fmt.Errorf("atlasfmt: unknown proto %q", s)
}

// ExportPings writes ping records as Atlas NDJSON, filling the sidecar.
func ExportPings(w io.Writer, recs []dataset.PingRecord, meta *Meta) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		r := &recs[i]
		rtt := r.RTTms
		res := PingResult{
			Fw: 5020, MsmID: pingMsmBase + int64(r.Cycle), PrbID: meta.prbIDFor(r.VP),
			Timestamp: epoch + int64(r.Cycle)*cycleSeconds + int64(i%cycleSeconds),
			Type:      "ping", DstAddr: meta.register(r.Target),
			Proto: protoName(r.Protocol),
			Sent:  1, Rcvd: 1, Min: rtt, Avg: rtt, Max: rtt,
			Result: []PingReply{{RTT: &rtt}},
		}
		if err := enc.Encode(&res); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportPings parses Atlas NDJSON pings back into records, one per
// received echo, joining against the sidecar. Results whose probe or
// target is missing from the sidecar are skipped and counted.
func ImportPings(r io.Reader, meta *Meta) (recs []dataset.PingRecord, skipped int, err error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	for line := 1; ; line++ {
		var res PingResult
		if err := dec.Decode(&res); err == io.EOF {
			return recs, skipped, nil
		} else if err != nil {
			return recs, skipped, fmt.Errorf("atlasfmt: ping line %d: %w", line, err)
		}
		if res.Type != "ping" {
			return recs, skipped, fmt.Errorf("atlasfmt: ping line %d: unexpected type %q", line, res.Type)
		}
		vp, okVP := meta.Probes[res.PrbID]
		target, okT := meta.Targets[res.DstAddr]
		if !okVP || !okT {
			skipped++
			continue
		}
		proto, err := parseProto(res.Proto)
		if err != nil {
			return recs, skipped, fmt.Errorf("atlasfmt: ping line %d: %w", line, err)
		}
		cycle := cycleOf(res.MsmID, pingMsmBase, res.Timestamp)
		for _, reply := range res.Result {
			if reply.RTT == nil {
				continue // timeout
			}
			recs = append(recs, dataset.PingRecord{
				VP: vp, Target: target, Protocol: proto,
				RTTms: *reply.RTT, Cycle: cycle,
				VTime: sample.VTimeOf(cycle, vp.Country),
			})
		}
	}
}

// ExportTraces writes traceroutes as Atlas NDJSON, filling the sidecar.
func ExportTraces(w io.Writer, recs []dataset.TracerouteRecord, meta *Meta) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		r := &recs[i]
		res := TraceResult{
			Fw: 5020, MsmID: traceMsmBase + int64(r.Cycle), PrbID: meta.prbIDFor(r.VP),
			Timestamp: epoch + int64(r.Cycle%4096)*cycleSeconds,
			Type:      "traceroute", DstAddr: meta.register(r.Target),
			Proto: "ICMP",
		}
		for _, h := range r.Hops {
			hop := TraceHop{Hop: h.TTL}
			if h.Responded {
				rtt := h.RTTms
				hop.Result = []HopReply{{From: h.IP.String(), RTT: &rtt}}
			} else {
				hop.Result = []HopReply{{X: "*"}}
			}
			res.Result = append(res.Result, hop)
		}
		if err := enc.Encode(&res); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ImportTraces parses Atlas NDJSON traceroutes, joining the sidecar.
func ImportTraces(r io.Reader, meta *Meta) (recs []dataset.TracerouteRecord, skipped int, err error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	for line := 1; ; line++ {
		var res TraceResult
		if err := dec.Decode(&res); err == io.EOF {
			return recs, skipped, nil
		} else if err != nil {
			return recs, skipped, fmt.Errorf("atlasfmt: trace line %d: %w", line, err)
		}
		if res.Type != "traceroute" {
			return recs, skipped, fmt.Errorf("atlasfmt: trace line %d: unexpected type %q", line, res.Type)
		}
		vp, okVP := meta.Probes[res.PrbID]
		target, okT := meta.Targets[res.DstAddr]
		if !okVP || !okT {
			skipped++
			continue
		}
		cycle := cycleOf(res.MsmID, traceMsmBase, res.Timestamp)
		rec := dataset.TracerouteRecord{
			VP: vp, Target: target,
			Cycle: cycle,
			VTime: sample.VTimeOf(cycle, vp.Country),
		}
		for _, hop := range res.Result {
			h := dataset.Hop{TTL: hop.Hop}
			if len(hop.Result) > 0 && hop.Result[0].RTT != nil {
				ip, err := netaddr.ParseIP(hop.Result[0].From)
				if err != nil {
					return recs, skipped, fmt.Errorf("atlasfmt: trace line %d: %w", line, err)
				}
				h.IP, h.RTTms, h.Responded = ip, *hop.Result[0].RTT, true
			}
			rec.Hops = append(rec.Hops, h)
		}
		recs = append(recs, rec)
	}
}

// cycleOf recovers the campaign cycle: our exporter encodes it in the
// measurement ID; foreign Atlas data falls back to the timestamp.
func cycleOf(msmID, base, timestamp int64) int {
	if msmID >= base {
		return int(msmID - base)
	}
	return int((timestamp - epoch) / cycleSeconds)
}

// ProbeIDs returns the exported numeric probe IDs, sorted — useful for
// joining against real Atlas probe metadata.
func (m *Meta) ProbeIDs() []int {
	out := make([]int, 0, len(m.Probes))
	for id := range m.Probes {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
