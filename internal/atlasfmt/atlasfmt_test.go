package atlasfmt

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/sample"
)

func samplePing(probe string, cycle int, rtt float64) dataset.PingRecord {
	return dataset.PingRecord{
		VP: dataset.VantagePoint{
			ProbeID: probe, Platform: "atlas", Country: "DE",
			Continent: geo.EU, ISP: 3320, Access: lastmile.Wired,
		},
		Target: dataset.Target{
			Region: "gcp-EU-frankfurt", Provider: "GCP", Country: "DE",
			Continent: geo.EU, IP: netaddr.MustParseIP("104.16.1.10"),
		},
		Protocol: dataset.TCP, RTTms: rtt, Cycle: cycle,
		VTime: sample.VTimeOf(cycle, "DE"),
	}
}

func sampleTrace(probe string, cycle int) dataset.TracerouteRecord {
	return dataset.TracerouteRecord{
		VP: dataset.VantagePoint{
			ProbeID: probe, Platform: "speedchecker", Country: "JP",
			Continent: geo.AS, ISP: 2516, Access: lastmile.Cellular,
		},
		Target: dataset.Target{
			Region: "amzn-AS-tokyo", Provider: "AMZN", Country: "JP",
			Continent: geo.AS, IP: netaddr.MustParseIP("104.0.1.10"),
		},
		Cycle: cycle,
		VTime: sample.VTimeOf(cycle, "JP"),
		Hops: []dataset.Hop{
			{TTL: 1, IP: netaddr.MustParseIP("60.0.0.20"), RTTms: 21.5, Responded: true},
			{TTL: 2, Responded: false},
			{TTL: 3, IP: netaddr.MustParseIP("104.0.1.10"), RTTms: 30.25, Responded: true},
		},
	}
}

func TestPingRoundTrip(t *testing.T) {
	recs := []dataset.PingRecord{
		samplePing("a", 0, 12.5),
		samplePing("a", 3, 14.25),
		samplePing("b", 1, 99.125),
	}
	meta := NewMeta()
	var buf bytes.Buffer
	if err := ExportPings(&buf, recs, meta); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("NDJSON lines = %d", lines)
	}
	got, skipped, err := ImportPings(&buf, meta)
	if err != nil || skipped != 0 {
		t.Fatalf("import: err %v, skipped %d", err, skipped)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	recs := []dataset.TracerouteRecord{
		sampleTrace("x", 2),
		sampleTrace("y", 1<<20), // the parallel-campaign cycle offset
	}
	meta := NewMeta()
	var buf bytes.Buffer
	if err := ExportTraces(&buf, recs, meta); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ImportTraces(&buf, meta)
	if err != nil || skipped != 0 {
		t.Fatalf("import: err %v, skipped %d", err, skipped)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestMetaSidecarRoundTrip(t *testing.T) {
	meta := NewMeta()
	var buf bytes.Buffer
	if err := ExportPings(&buf, []dataset.PingRecord{samplePing("a", 0, 5)}, meta); err != nil {
		t.Fatal(err)
	}
	var metaBuf bytes.Buffer
	if err := meta.WriteMeta(&metaBuf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadMeta(&metaBuf)
	if err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ImportPings(&buf, loaded)
	if err != nil || skipped != 0 || len(got) != 1 {
		t.Fatalf("import with loaded sidecar: %v, %d, %d records", err, skipped, len(got))
	}
	if got[0].VP.ProbeID != "a" || got[0].Target.Provider != "GCP" {
		t.Errorf("joined record wrong: %+v", got[0])
	}
	if ids := loaded.ProbeIDs(); len(ids) != 1 || ids[0] < 1000000 {
		t.Errorf("probe IDs = %v", ids)
	}
}

func TestImportSkipsUnknownProbes(t *testing.T) {
	meta := NewMeta()
	var buf bytes.Buffer
	if err := ExportPings(&buf, []dataset.PingRecord{samplePing("a", 0, 5)}, meta); err != nil {
		t.Fatal(err)
	}
	// Import against an empty sidecar: everything is skipped, no error.
	got, skipped, err := ImportPings(&buf, NewMeta())
	if err != nil || len(got) != 0 || skipped != 1 {
		t.Errorf("got %d records, %d skipped, err %v", len(got), skipped, err)
	}
}

func TestImportRejectsWrongTypes(t *testing.T) {
	meta := NewMeta()
	if _, _, err := ImportPings(strings.NewReader(`{"type":"traceroute"}`+"\n"), meta); err == nil {
		t.Error("ping importer accepted a traceroute")
	}
	if _, _, err := ImportTraces(strings.NewReader(`{"type":"ping"}`+"\n"), meta); err == nil {
		t.Error("trace importer accepted a ping")
	}
	if _, _, err := ImportPings(strings.NewReader("{bad json"), meta); err == nil {
		t.Error("bad JSON accepted")
	}
	var buf bytes.Buffer
	if err := ExportPings(&buf, []dataset.PingRecord{samplePing("a", 0, 5)}, meta); err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(buf.String(), `"TCP"`, `"GRE"`, 1)
	if _, _, err := ImportPings(strings.NewReader(broken), meta); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestTimeoutsAndForeignData(t *testing.T) {
	// A hand-written Atlas result with a timeout echo and a pre-existing
	// (foreign) msm_id: the importer must keep the received echoes and
	// fall back to timestamp-derived cycles.
	meta := NewMeta()
	meta.Probes[7] = samplePing("z", 0, 1).VP
	meta.Targets["104.16.1.10"] = samplePing("z", 0, 1).Target
	raw := `{"fw":4790,"msm_id":123,"prb_id":7,"timestamp":` +
		// epoch + 2 cycles
		"1569715200" + `,"type":"ping","dst_addr":"104.16.1.10","proto":"ICMP",` +
		`"sent":3,"rcvd":2,"min":10,"avg":11,"max":12,` +
		`"result":[{"rtt":10},{"x":"*"},{"rtt":12}]}` + "\n"
	got, skipped, err := ImportPings(strings.NewReader(raw), meta)
	if err != nil || skipped != 0 {
		t.Fatalf("err %v skipped %d", err, skipped)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2 (timeout dropped)", len(got))
	}
	if got[0].Cycle != 2 || got[0].Protocol != dataset.ICMP {
		t.Errorf("foreign record: %+v", got[0])
	}
}

func TestAtlasShapeOnTheWire(t *testing.T) {
	// The NDJSON must look like Atlas output: snake_case keys, "x":"*"
	// timeout markers, per-hop result arrays.
	meta := NewMeta()
	var buf bytes.Buffer
	if err := ExportTraces(&buf, []dataset.TracerouteRecord{sampleTrace("x", 0)}, meta); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"prb_id"`, `"dst_addr"`, `"msm_id"`, `"x":"*"`, `"hop":2`, `"from":"60.0.0.20"`} {
		if !strings.Contains(out, want) {
			t.Errorf("Atlas wire format missing %s:\n%s", want, out)
		}
	}
}
