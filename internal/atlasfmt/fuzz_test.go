package atlasfmt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// fuzzMeta builds a sidecar covering the sample probes and targets, so
// fuzzed inputs that keep valid IDs exercise the deep decode path
// rather than the skip counter. It is read-only during import, so
// sharing it across parallel fuzz workers is safe.
func fuzzMeta() *Meta {
	meta := NewMeta()
	var buf bytes.Buffer
	_ = ExportPings(&buf, []dataset.PingRecord{samplePing("a", 0, 12.5)}, meta)
	_ = ExportTraces(&buf, []dataset.TracerouteRecord{sampleTrace("x", 2)}, meta)
	return meta
}

// FuzzImportPings must never panic on arbitrary NDJSON, and whatever it
// accepts must survive an export/import round trip losslessly.
func FuzzImportPings(f *testing.F) {
	meta := fuzzMeta()
	var buf bytes.Buffer
	_ = ExportPings(&buf, []dataset.PingRecord{
		samplePing("a", 0, 12.5),
		samplePing("b", 3, 99.125),
	}, fuzzMeta())
	f.Add(buf.String())
	// Timeout markers and corrupted RTTs: negative, absurdly large, and
	// a reply with neither rtt nor x.
	f.Add(`{"type":"ping","msm_id":4294967296,"prb_id":1000000,"dst_addr":"104.16.1.10","proto":"TCP","result":[{"x":"*"},{"rtt":-5},{"rtt":1e308},{}]}` + "\n")
	// Unknown probe and target: the skip path.
	f.Add(`{"type":"ping","prb_id":42,"dst_addr":"1.2.3.4","proto":"ICMP","result":[{"rtt":10}]}` + "\n")
	f.Add("")
	f.Add("{}\n")
	f.Add(`{"type":"ping","proto":"UDP"}` + "\n")
	f.Add(`{"type":"ping",`)
	f.Fuzz(func(t *testing.T, s string) {
		recs, _, err := ImportPings(strings.NewReader(s), meta)
		if err != nil {
			return
		}
		// Accepted records re-export (fresh sidecar) and re-import to the
		// same count with nothing skipped.
		out := NewMeta()
		var ndjson bytes.Buffer
		if err := ExportPings(&ndjson, recs, out); err != nil {
			t.Fatalf("accepted records fail to export: %v", err)
		}
		back, skipped, err := ImportPings(&ndjson, out)
		if err != nil || skipped != 0 || len(back) != len(recs) {
			t.Fatalf("round trip broke: err %v, skipped %d, %d vs %d records",
				err, skipped, len(back), len(recs))
		}
	})
}

// FuzzImportTraces must never panic on arbitrary NDJSON — including
// traces with missing hops, empty hop results, and corrupted RTTs —
// and accepted traces must round-trip.
func FuzzImportTraces(f *testing.F) {
	meta := fuzzMeta()
	var buf bytes.Buffer
	_ = ExportTraces(&buf, []dataset.TracerouteRecord{sampleTrace("x", 2)}, fuzzMeta())
	f.Add(buf.String()) // sampleTrace already contains a non-responding hop
	// Truncated path: missing hops, a hop with an empty result list, a
	// negative RTT, and a hop whose reply has an unparseable address.
	f.Add(`{"type":"traceroute","msm_id":8589934594,"prb_id":1000001,"dst_addr":"104.0.1.10","result":[{"hop":1,"result":[]},{"hop":3,"result":[{"x":"*"}]},{"hop":4,"result":[{"from":"60.0.0.20","rtt":-3.5}]}]}` + "\n")
	f.Add(`{"type":"traceroute","prb_id":1000001,"dst_addr":"104.0.1.10","result":[{"hop":1,"result":[{"from":"not-an-ip","rtt":9}]}]}` + "\n")
	f.Add("")
	f.Add("{}\n")
	f.Add(`{"type":"traceroute"`)
	f.Fuzz(func(t *testing.T, s string) {
		recs, _, err := ImportTraces(strings.NewReader(s), meta)
		if err != nil {
			return
		}
		out := NewMeta()
		var ndjson bytes.Buffer
		if err := ExportTraces(&ndjson, recs, out); err != nil {
			t.Fatalf("accepted traces fail to export: %v", err)
		}
		back, skipped, err := ImportTraces(&ndjson, out)
		if err != nil || skipped != 0 || len(back) != len(recs) {
			t.Fatalf("round trip broke: err %v, skipped %d, %d vs %d traces",
				err, skipped, len(back), len(recs))
		}
	})
}
