// Package bgp computes AS-level forwarding paths over a graph of
// business relationships, following the Gao–Rexford model: routes
// propagate valley-free (uphill over customer→provider links, at most
// one peer–peer link at the top, then downhill over provider→customer
// links), and route selection prefers customer routes over peer routes
// over provider routes before comparing AS-path length.
//
// The paper's peering analysis (§6) is entirely a function of which
// AS-level path tenant traffic takes — direct into the cloud WAN, via a
// single private transit, or across the public Internet — so this
// package is the routing substrate underneath every traceroute in the
// reproduction.
package bgp

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/asn"
)

// Graph holds the inter-AS business relationships. The zero value is an
// empty graph ready for use. Mutations must complete before concurrent
// path queries begin.
type Graph struct {
	providers map[asn.Number][]asn.Number // AS → its transit providers
	customers map[asn.Number][]asn.Number // AS → its customers
	peers     map[asn.Number][]asn.Number // AS → settlement-free peers

	mu    sync.RWMutex
	cache map[[2]asn.Number]cached
}

type cached struct {
	path []asn.Number
	ok   bool
}

// AddTransit records that customer buys transit from provider.
// Duplicate links are ignored.
func (g *Graph) AddTransit(provider, customer asn.Number) {
	if provider == customer || provider == 0 || customer == 0 {
		return
	}
	if g.providers == nil {
		g.providers = make(map[asn.Number][]asn.Number)
		g.customers = make(map[asn.Number][]asn.Number)
	}
	if containsNum(g.providers[customer], provider) {
		return
	}
	g.providers[customer] = insertSorted(g.providers[customer], provider)
	g.customers[provider] = insertSorted(g.customers[provider], customer)
	g.invalidate()
}

// AddPeering records a settlement-free (or direct/PNI) peering between
// a and b. Duplicate links are ignored.
func (g *Graph) AddPeering(a, b asn.Number) {
	if a == b || a == 0 || b == 0 {
		return
	}
	if g.peers == nil {
		g.peers = make(map[asn.Number][]asn.Number)
	}
	if containsNum(g.peers[a], b) {
		return
	}
	g.peers[a] = insertSorted(g.peers[a], b)
	g.peers[b] = insertSorted(g.peers[b], a)
	g.invalidate()
}

// HasPeering reports whether a and b peer directly.
func (g *Graph) HasPeering(a, b asn.Number) bool {
	return containsNum(g.peers[a], b)
}

// HasTransit reports whether customer buys transit from provider.
func (g *Graph) HasTransit(provider, customer asn.Number) bool {
	return containsNum(g.providers[customer], provider)
}

// Providers returns the transit providers of a, sorted by ASN.
func (g *Graph) Providers(a asn.Number) []asn.Number { return g.providers[a] }

// Customers returns the customers of a, sorted by ASN.
func (g *Graph) Customers(a asn.Number) []asn.Number { return g.customers[a] }

// Peers returns the settlement-free peers of a, sorted by ASN.
func (g *Graph) Peers(a asn.Number) []asn.Number { return g.peers[a] }

// Degree returns the total number of adjacencies of a.
func (g *Graph) Degree(a asn.Number) int {
	return len(g.providers[a]) + len(g.customers[a]) + len(g.peers[a])
}

func (g *Graph) invalidate() {
	g.mu.Lock()
	g.cache = nil
	g.mu.Unlock()
}

func containsNum(s []asn.Number, n asn.Number) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= n })
	return i < len(s) && s[i] == n
}

func insertSorted(s []asn.Number, n asn.Number) []asn.Number {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= n })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = n
	return s
}

// Path returns the selected valley-free AS path from src to dst,
// inclusive of both endpoints, and whether any valley-free route exists.
// Results are cached; the cache is invalidated by graph mutation.
func (g *Graph) Path(src, dst asn.Number) ([]asn.Number, bool) {
	if src == dst {
		return []asn.Number{src}, true
	}
	key := [2]asn.Number{src, dst}
	g.mu.RLock()
	if c, ok := g.cache[key]; ok {
		g.mu.RUnlock()
		return c.path, c.ok
	}
	g.mu.RUnlock()

	path, ok := g.computePath(src, dst)
	g.mu.Lock()
	if g.cache == nil {
		g.cache = make(map[[2]asn.Number]cached)
	}
	g.cache[key] = cached{path, ok}
	g.mu.Unlock()
	return path, ok
}

// computePath implements the selection described in the package comment.
//
// Every valley-free path decomposes as: src climbs zero or more
// customer→provider links to an AS x, optionally crosses one peer link
// x–y, then descends zero or more provider→customer links from y to dst.
// We therefore BFS the uphill tree from src, BFS the downhill tree from
// dst (over the reversed provider→customer relation), and join them
// either directly (x with finite downhill distance) or across one peer
// edge.
func (g *Graph) computePath(src, dst asn.Number) ([]asn.Number, bool) {
	up, upParent := g.bfs(src, func(n asn.Number) []asn.Number { return g.providers[n] })
	down, downParent := g.bfs(dst, func(n asn.Number) []asn.Number { return g.providers[n] })
	// down[x] is the number of downhill hops from x to dst: BFS from dst
	// over "who are dst's providers" reaches exactly the ASes that can
	// descend to dst.

	type candidate struct {
		x, y    asn.Number // join point(s); x == y when no peer edge used
		peer    bool
		upLen   int
		downLen int
	}
	best := candidate{upLen: -1}
	better := func(c candidate) bool {
		if best.upLen < 0 {
			return true
		}
		// Local preference at the source: customer route (pure descent
		// from src) beats peer route beats provider route.
		pref := func(c candidate) int {
			switch {
			case c.upLen == 0 && !c.peer:
				return 0 // customer route
			case c.upLen == 0 && c.peer:
				return 1 // peer route
			default:
				return 2 // provider route
			}
		}
		cl, bl := c.upLen+c.downLen+boolToInt(c.peer), best.upLen+best.downLen+boolToInt(best.peer)
		if pref(c) != pref(best) {
			return pref(c) < pref(best)
		}
		if cl != bl {
			return cl < bl
		}
		// Deterministic tiebreak: prefer no peer edge, then smaller join
		// ASNs.
		if c.peer != best.peer {
			return !c.peer
		}
		if c.x != best.x {
			return c.x < best.x
		}
		return c.y < best.y
	}

	for x, ux := range up {
		if dx, ok := down[x]; ok {
			c := candidate{x: x, y: x, upLen: ux, downLen: dx}
			if better(c) {
				best = c
			}
		}
		for _, y := range g.peers[x] {
			if dy, ok := down[y]; ok {
				c := candidate{x: x, y: y, peer: true, upLen: ux, downLen: dy}
				if better(c) {
					best = c
				}
			}
		}
	}
	if best.upLen < 0 {
		return nil, false
	}

	// Reconstruct: src..x uphill, optional peer hop, y..dst downhill.
	var path []asn.Number
	for n := best.x; ; n = upParent[n] {
		path = append(path, n)
		if n == src {
			break
		}
	}
	reverse(path)
	if best.peer {
		path = append(path, best.y)
	}
	for n := best.y; n != dst; n = downParent[n] {
		if n != best.y {
			path = append(path, n)
		}
	}
	if path[len(path)-1] != dst {
		path = append(path, dst)
	}
	return path, true
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func reverse(s []asn.Number) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// bfs runs a breadth-first search from start over next(n) adjacency and
// returns distance and parent maps. The parent of start is start.
func (g *Graph) bfs(start asn.Number, next func(asn.Number) []asn.Number) (map[asn.Number]int, map[asn.Number]asn.Number) {
	dist := map[asn.Number]int{start: 0}
	parent := map[asn.Number]asn.Number{start: start}
	queue := []asn.Number{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range next(n) {
			if _, seen := dist[m]; seen {
				continue
			}
			dist[m] = dist[n] + 1
			parent[m] = n
			queue = append(queue, m)
		}
	}
	return dist, parent
}

// ValidateValleyFree checks that a path obeys the valley-free property
// under this graph's relationships: uphill links, at most one peer link,
// then downhill links, with every adjacent pair actually connected.
// It returns a descriptive error for the first violation.
func (g *Graph) ValidateValleyFree(path []asn.Number) error {
	if len(path) == 0 {
		return fmt.Errorf("bgp: empty path")
	}
	const (
		phaseUp = iota
		phasePeered
		phaseDown
	)
	phase := phaseUp
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		switch {
		case g.HasTransit(b, a): // a climbs to its provider b
			if phase != phaseUp {
				return fmt.Errorf("bgp: uphill link %v→%v after summit", a, b)
			}
		case g.HasPeering(a, b):
			if phase != phaseUp {
				return fmt.Errorf("bgp: second lateral link %v→%v", a, b)
			}
			phase = phasePeered
		case g.HasTransit(a, b): // a descends to its customer b
			phase = phaseDown
		default:
			return fmt.Errorf("bgp: no relationship between %v and %v", a, b)
		}
	}
	return nil
}
