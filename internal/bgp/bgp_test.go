package bgp

import (
	"math/rand"
	"testing"

	"repro/internal/asn"
)

// buildHierarchy wires a small Internet:
//
//	    T1 ──── T2        (tier-1 peers)
//	   /  \    /  \
//	  R1   R2 R3   R4     (regional transit, customers of tier-1s)
//	 /  \    |  \    \
//	A1  A2   A3  A4   A5  (access ISPs)
//
// plus a direct peering A1–A3.
func buildHierarchy() *Graph {
	g := &Graph{}
	g.AddPeering(1, 2) // T1-T2
	g.AddTransit(1, 11)
	g.AddTransit(1, 12)
	g.AddTransit(2, 13)
	g.AddTransit(2, 14)
	g.AddTransit(11, 101)
	g.AddTransit(11, 102)
	g.AddTransit(12, 103)
	g.AddTransit(13, 103) // A3 multihomed to R2 and R3
	g.AddTransit(13, 104)
	g.AddTransit(14, 105)
	g.AddPeering(101, 103)
	return g
}

func TestPathSelf(t *testing.T) {
	g := buildHierarchy()
	p, ok := g.Path(101, 101)
	if !ok || len(p) != 1 || p[0] != 101 {
		t.Errorf("self path = %v, %v", p, ok)
	}
}

func TestPathDirectPeering(t *testing.T) {
	g := buildHierarchy()
	p, ok := g.Path(101, 103)
	if !ok {
		t.Fatal("no path")
	}
	if len(p) != 2 || p[0] != 101 || p[1] != 103 {
		t.Errorf("want direct peering path [101 103], got %v", p)
	}
	if err := g.ValidateValleyFree(p); err != nil {
		t.Error(err)
	}
}

func TestPathViaCommonProvider(t *testing.T) {
	g := buildHierarchy()
	p, ok := g.Path(101, 102)
	if !ok {
		t.Fatal("no path")
	}
	want := []asn.Number{101, 11, 102}
	if !equalPath(p, want) {
		t.Errorf("path = %v, want %v", p, want)
	}
}

func TestPathAcrossTier1Peering(t *testing.T) {
	g := buildHierarchy()
	p, ok := g.Path(102, 105)
	if !ok {
		t.Fatal("no path")
	}
	want := []asn.Number{102, 11, 1, 2, 14, 105}
	if !equalPath(p, want) {
		t.Errorf("path = %v, want %v", p, want)
	}
	if err := g.ValidateValleyFree(p); err != nil {
		t.Error(err)
	}
}

func TestProviderToCustomerDescent(t *testing.T) {
	g := buildHierarchy()
	// Tier-1 reaching an access ISP is a pure customer route.
	p, ok := g.Path(1, 102)
	if !ok {
		t.Fatal("no path")
	}
	want := []asn.Number{1, 11, 102}
	if !equalPath(p, want) {
		t.Errorf("path = %v, want %v", p, want)
	}
}

func TestCustomerRoutePreferredOverPeer(t *testing.T) {
	// dst reachable both through a peer and through our own customer
	// cone; the customer route must win even when it is longer.
	g := &Graph{}
	g.AddTransit(10, 20) // 10 is provider of 20
	g.AddTransit(20, 30)
	g.AddPeering(10, 30) // also a direct peer shortcut
	p, ok := g.Path(10, 30)
	if !ok {
		t.Fatal("no path")
	}
	// Customer route 10→20→30 has pref 0; peer route 10→30 has pref 1.
	want := []asn.Number{10, 20, 30}
	if !equalPath(p, want) {
		t.Errorf("path = %v, want customer route %v", p, want)
	}
}

func TestNoValleyPath(t *testing.T) {
	// Two access ISPs whose providers neither peer nor share transit:
	// no valley-free route exists.
	g := &Graph{}
	g.AddTransit(11, 101)
	g.AddTransit(12, 102)
	if p, ok := g.Path(101, 102); ok {
		t.Errorf("unexpected path %v", p)
	}
}

func TestValleyRejected(t *testing.T) {
	g := buildHierarchy()
	// 102→11→101→103 would be a valley: 11 descends to its customer 101
	// and then 101 exports a peer route upward. ValidateValleyFree must
	// reject the hand-built valley.
	valley := []asn.Number{12, 1, 11, 101, 103, 13}
	if err := g.ValidateValleyFree(valley); err == nil {
		t.Error("valley path accepted")
	}
	if err := g.ValidateValleyFree(nil); err == nil {
		t.Error("empty path accepted")
	}
	if err := g.ValidateValleyFree([]asn.Number{101, 105}); err == nil {
		t.Error("disconnected hop accepted")
	}
}

func TestAllComputedPathsAreValleyFree(t *testing.T) {
	g := buildHierarchy()
	nodes := []asn.Number{1, 2, 11, 12, 13, 14, 101, 102, 103, 104, 105}
	for _, s := range nodes {
		for _, d := range nodes {
			p, ok := g.Path(s, d)
			if !ok {
				continue
			}
			if p[0] != s || p[len(p)-1] != d {
				t.Errorf("path %v does not span %v→%v", p, s, d)
			}
			if err := g.ValidateValleyFree(p); err != nil {
				t.Errorf("path %v→%v: %v (path %v)", s, d, err, p)
			}
		}
	}
}

// TestRandomGraphsValleyFree is the DESIGN.md property test: on random
// hierarchies every computed path validates, is simple, and is symmetric
// in existence when all links are bidirectionally usable.
func TestRandomGraphsValleyFree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g := &Graph{}
		const tiers = 3
		var level [tiers][]asn.Number
		next := asn.Number(1)
		for l := 0; l < tiers; l++ {
			n := 2 + rng.Intn(4)
			for i := 0; i < n; i++ {
				level[l] = append(level[l], next)
				next++
			}
		}
		// Tier-0 full mesh peering.
		for i := 0; i < len(level[0]); i++ {
			for j := i + 1; j < len(level[0]); j++ {
				g.AddPeering(level[0][i], level[0][j])
			}
		}
		// Each lower-tier AS buys transit from 1-2 upper-tier ASes.
		for l := 1; l < tiers; l++ {
			for _, a := range level[l] {
				for k := 0; k < 1+rng.Intn(2); k++ {
					g.AddTransit(level[l-1][rng.Intn(len(level[l-1]))], a)
				}
			}
		}
		// Some lateral peerings at the bottom.
		for k := 0; k < 3; k++ {
			a := level[tiers-1][rng.Intn(len(level[tiers-1]))]
			b := level[tiers-1][rng.Intn(len(level[tiers-1]))]
			g.AddPeering(a, b)
		}
		var all []asn.Number
		for _, l := range level {
			all = append(all, l...)
		}
		for _, s := range all {
			for _, d := range all {
				p, ok := g.Path(s, d)
				if !ok {
					t.Errorf("trial %d: no path %v→%v in connected hierarchy", trial, s, d)
					continue
				}
				if err := g.ValidateValleyFree(p); err != nil {
					t.Errorf("trial %d: %v (path %v)", trial, err, p)
				}
				seen := map[asn.Number]bool{}
				for _, n := range p {
					if seen[n] {
						t.Errorf("trial %d: loop in path %v", trial, p)
						break
					}
					seen[n] = true
				}
				if rp, rok := g.Path(d, s); !rok {
					t.Errorf("trial %d: %v→%v exists but reverse does not", trial, s, d)
				} else if len(rp) == 0 {
					t.Errorf("trial %d: empty reverse path", trial)
				}
			}
		}
	}
}

func TestCacheInvalidation(t *testing.T) {
	g := &Graph{}
	g.AddTransit(1, 2)
	g.AddTransit(1, 3)
	p1, ok := g.Path(2, 3)
	if !ok || len(p1) != 3 {
		t.Fatalf("initial path %v %v", p1, ok)
	}
	// Add a direct peering; the cached transit path must be dropped.
	g.AddPeering(2, 3)
	p2, ok := g.Path(2, 3)
	if !ok || len(p2) != 2 {
		t.Errorf("after peering, path = %v", p2)
	}
}

func TestAdjacencyAccessors(t *testing.T) {
	g := buildHierarchy()
	if !g.HasPeering(1, 2) || !g.HasPeering(2, 1) {
		t.Error("tier-1 peering not symmetric")
	}
	if !g.HasTransit(11, 101) {
		t.Error("transit link missing")
	}
	if g.HasTransit(101, 11) {
		t.Error("transit direction reversed")
	}
	if got := g.Degree(11); got != 3 { // provider 1, customers 101, 102
		t.Errorf("Degree(11) = %d", got)
	}
	if got := len(g.Customers(13)); got != 2 {
		t.Errorf("Customers(13) = %d", got)
	}
	if got := len(g.Providers(103)); got != 2 {
		t.Errorf("Providers(103) = %d", got)
	}
	if got := len(g.Peers(101)); got != 1 {
		t.Errorf("Peers(101) = %d", got)
	}
}

func TestSelfAndZeroLinksIgnored(t *testing.T) {
	g := &Graph{}
	g.AddTransit(5, 5)
	g.AddPeering(7, 7)
	g.AddTransit(0, 5)
	g.AddPeering(0, 5)
	if g.Degree(5) != 0 || g.Degree(7) != 0 {
		t.Error("self/zero links should be ignored")
	}
	// Duplicates collapse.
	g.AddPeering(1, 2)
	g.AddPeering(2, 1)
	g.AddTransit(3, 4)
	g.AddTransit(3, 4)
	if len(g.Peers(1)) != 1 || len(g.Customers(3)) != 1 {
		t.Error("duplicate links should collapse")
	}
}

func equalPath(a, b []asn.Number) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
