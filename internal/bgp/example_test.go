package bgp_test

import (
	"fmt"

	"repro/internal/bgp"
)

func ExampleGraph_Path() {
	g := &bgp.Graph{}
	// Two access ISPs under different regional transits, which both buy
	// from the same Tier-1.
	g.AddTransit(1, 10) // Tier-1 AS1 sells to regional AS10
	g.AddTransit(1, 20)
	g.AddTransit(10, 100) // regional AS10 sells to access AS100
	g.AddTransit(20, 200)

	path, ok := g.Path(100, 200)
	fmt.Println(path, ok)

	// A direct peering shortcut wins over the transit hierarchy.
	g.AddPeering(100, 200)
	path, _ = g.Path(100, 200)
	fmt.Println(path)
	// Output:
	// [AS100 AS10 AS1 AS20 AS200] true
	// [AS100 AS200]
}
