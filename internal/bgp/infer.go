package bgp

import (
	"sort"

	"repro/internal/asn"
)

// Relationship is an inferred business relationship between two ASes.
type Relationship uint8

// Relationship kinds, as Gao's algorithm labels them.
const (
	RelUnknown Relationship = iota
	RelProviderCustomer
	RelPeerPeer
)

// String names the relationship.
func (r Relationship) String() string {
	switch r {
	case RelProviderCustomer:
		return "p2c"
	case RelPeerPeer:
		return "p2p"
	default:
		return "unknown"
	}
}

// InferredEdge is one inferred adjacency. For RelProviderCustomer, A is
// the provider and B the customer.
type InferredEdge struct {
	A, B asn.Number
	Rel  Relationship
}

// InferRelationships implements the core of Gao's algorithm (the
// paper's [35]): given observed AS paths, (1) rank ASes by degree, (2)
// locate each path's top provider — the highest-degree AS — so the path
// splits into an uphill and a downhill phase, (3) vote every uphill
// link customer→provider and every downhill link provider→customer,
// and (4) label links adjacent to the top whose endpoints have similar
// degree as peer-peer.
//
// The study's pipeline consumes ground-truth relationships, but running
// the inference against paths the world itself emitted — and scoring it
// against the world's true graph — validates that the synthetic
// topology carries the statistical structure real inference algorithms
// depend on.
func InferRelationships(paths [][]asn.Number) []InferredEdge {
	// Degree from the paths themselves, as Gao does (no oracle).
	neighbors := map[asn.Number]map[asn.Number]bool{}
	addAdj := func(a, b asn.Number) {
		if neighbors[a] == nil {
			neighbors[a] = map[asn.Number]bool{}
		}
		neighbors[a][b] = true
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			addAdj(p[i], p[i+1])
			addAdj(p[i+1], p[i])
		}
	}
	degree := func(a asn.Number) int { return len(neighbors[a]) }

	type pair struct{ lo, hi asn.Number }
	key := func(a, b asn.Number) pair {
		if a < b {
			return pair{a, b}
		}
		return pair{b, a}
	}
	// Votes: how often (a,b) appeared with a acting as provider of b.
	providerVotes := map[pair]map[asn.Number]int{}
	vote := func(provider, customer asn.Number) {
		k := key(provider, customer)
		if providerVotes[k] == nil {
			providerVotes[k] = map[asn.Number]int{}
		}
		providerVotes[k][provider]++
	}
	peerCandidates := map[pair]int{}

	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		// Summit plateau: between the first and the last maximal-degree
		// AS the path crosses the top of the hierarchy; links before it
		// are uphill, links after it downhill, links inside it peering
		// candidates (Gao's refinement for paths that traverse several
		// comparable top providers).
		maxDeg := 0
		for _, a := range p {
			if d := degree(a); d > maxDeg {
				maxDeg = d
			}
		}
		top1, top2 := -1, -1
		for i, a := range p {
			if degree(a) == maxDeg {
				if top1 < 0 {
					top1 = i
				}
				top2 = i
			}
		}
		for i := 0; i < top1; i++ {
			vote(p[i+1], p[i]) // uphill: right side is the provider
		}
		for i := top2; i+1 < len(p); i++ {
			vote(p[i], p[i+1]) // downhill: left side is the provider
		}
		for i := top1; i < top2; i++ {
			peerCandidates[key(p[i], p[i+1])]++
		}
	}

	emitted := map[pair]bool{}
	var out []InferredEdge
	for k, votes := range providerVotes {
		emitted[k] = true
		aVotes, bVotes := votes[k.lo], votes[k.hi]
		e := InferredEdge{A: k.lo, B: k.hi}
		switch {
		case peerCandidates[k] > 0 && aVotes > 0 && bVotes > 0:
			// Crosses summits and is seen as provider in both
			// directions: peering.
			e.Rel = RelPeerPeer
		case aVotes > 0 && bVotes > 0 && similar(aVotes, bVotes):
			e.Rel = RelPeerPeer
		case aVotes >= bVotes:
			e.Rel = RelProviderCustomer // lo provides hi
		default:
			e.Rel = RelProviderCustomer
			e.A, e.B = k.hi, k.lo
		}
		out = append(out, e)
	}
	// Pairs only ever seen inside summit plateaus carry no directional
	// evidence: similar degrees say peering, a clear degree gap says the
	// bigger AS provides the smaller.
	for k := range peerCandidates {
		if emitted[k] {
			continue
		}
		da, db := degree(k.lo), degree(k.hi)
		e := InferredEdge{A: k.lo, B: k.hi, Rel: RelPeerPeer}
		if !similar(da, db) {
			e.Rel = RelProviderCustomer
			if db > da {
				e.A, e.B = k.hi, k.lo
			}
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// similar reports whether two counts are within a factor of two of each
// other — Gao's "comparable degree" heuristic.
func similar(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	return a*2 >= b
}

// Score compares inferred edges against this graph's ground truth and
// returns (correct, total) over edges that exist in the graph.
func (g *Graph) Score(edges []InferredEdge) (correct, total int) {
	for _, e := range edges {
		switch {
		case g.HasTransit(e.A, e.B) || g.HasTransit(e.B, e.A):
			total++
			if e.Rel == RelProviderCustomer && g.HasTransit(e.A, e.B) {
				correct++
			}
		case g.HasPeering(e.A, e.B):
			total++
			if e.Rel == RelPeerPeer {
				correct++
			}
		}
	}
	return correct, total
}
