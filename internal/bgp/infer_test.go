package bgp

import (
	"testing"

	"repro/internal/asn"
)

func TestInferOnHandHierarchy(t *testing.T) {
	g := buildHierarchy()
	// Train on all pairwise paths: Gao's degree heuristics need volume,
	// and real route collectors see paths from transit ASes too.
	nodes := []asn.Number{1, 2, 11, 12, 13, 14, 101, 102, 103, 104, 105}
	var paths [][]asn.Number
	for _, s := range nodes {
		for _, d := range nodes {
			if s == d {
				continue
			}
			if p, ok := g.Path(s, d); ok {
				paths = append(paths, p)
			}
		}
	}
	edges := InferRelationships(paths)
	if len(edges) == 0 {
		t.Fatal("nothing inferred")
	}
	correct, total := g.Score(edges)
	if total < 6 {
		t.Fatalf("scored only %d known edges", total)
	}
	// Degree-based inference is weak on a tiny, degree-flat graph (Gao
	// assumes real tables where tier-1 degrees dominate); the world-scale
	// test carries the real accuracy bar. Here we only require better
	// than coin flipping and the unambiguous relations below.
	if frac := float64(correct) / float64(total); frac < 0.5 {
		t.Errorf("inference accuracy = %.2f (%d/%d) on the toy hierarchy", frac, correct, total)
	}
	// Specific relations Gao must get right: R1 provides A1.
	for _, e := range edges {
		if (e.A == 11 && e.B == 101) || (e.A == 101 && e.B == 11) {
			if e.Rel != RelProviderCustomer || e.A != 11 {
				t.Errorf("R1-A1 inferred as %v with provider %v", e.Rel, e.A)
			}
		}
	}
}

func TestInferDegenerates(t *testing.T) {
	if got := InferRelationships(nil); got != nil {
		t.Errorf("no paths should infer nothing, got %v", got)
	}
	if got := InferRelationships([][]asn.Number{{42}}); got != nil {
		t.Errorf("single-AS path should infer nothing, got %v", got)
	}
	// A single two-AS path carries no directional evidence: with equal
	// observed degrees the algorithm calls it peering.
	got := InferRelationships([][]asn.Number{{1, 2}})
	if len(got) != 1 || got[0].Rel != RelPeerPeer {
		t.Errorf("two-AS path inference = %v", got)
	}
	if RelUnknown.String() != "unknown" || RelProviderCustomer.String() != "p2c" || RelPeerPeer.String() != "p2p" {
		t.Error("relationship labels wrong")
	}
}

func TestScoreIgnoresUnknownEdges(t *testing.T) {
	g := buildHierarchy()
	edges := []InferredEdge{
		{A: 11, B: 101, Rel: RelProviderCustomer}, // true transit
		{A: 1, B: 2, Rel: RelPeerPeer},            // true peering
		{A: 101, B: 105, Rel: RelPeerPeer},        // not adjacent: ignored
		{A: 101, B: 11, Rel: RelProviderCustomer}, // inverted: counted wrong
	}
	correct, total := g.Score(edges)
	if total != 3 || correct != 2 {
		t.Errorf("score = %d/%d, want 2/3", correct, total)
	}
}
