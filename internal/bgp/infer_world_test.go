package bgp_test

import (
	"testing"

	"repro/internal/asn"
	"repro/internal/bgp"
	"repro/internal/world"
)

func TestInferOnWorldPaths(t *testing.T) {
	// The real validation loop: paths the synthetic Internet emits must
	// let a real inference algorithm recover most of the hierarchy.
	w := world.MustBuild(world.Config{Seed: 4})
	var paths [][]asn.Number
	countries := []string{"DE", "GB", "US", "JP", "BR", "ZA", "IN", "FR", "AU", "EG", "UA", "KR"}
	for _, from := range countries {
		for _, isp := range w.AccessISPs(from) {
			for _, to := range countries {
				for _, other := range w.AccessISPs(to) {
					if other.Number == isp.Number {
						continue
					}
					if p, ok := w.Graph.Path(isp.Number, other.Number); ok {
						paths = append(paths, p)
					}
				}
			}
		}
	}
	if len(paths) < 1000 {
		t.Fatalf("only %d training paths", len(paths))
	}
	edges := bgp.InferRelationships(paths)
	correct, total := w.Graph.Score(edges)
	if total < 100 {
		t.Fatalf("scored only %d edges", total)
	}
	frac := float64(correct) / float64(total)
	// Gao reports high (but imperfect) accuracy on real tables; the
	// synthetic hierarchy should support at least that.
	if frac < 0.8 {
		t.Errorf("world inference accuracy = %.2f (%d/%d), want >= 0.8", frac, correct, total)
	}
	t.Logf("inference accuracy %.3f over %d edges from %d paths", frac, total, len(paths))
}
