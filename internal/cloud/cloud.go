// Package cloud describes the measurement endpoints of the study: the
// ten cloud services of Table 1 (nine providers, with Amazon EC2 and
// Amazon Lightsail listed separately, exactly as the paper does), their
// 195 compute regions with geographic placement, their backbone network
// class, and the per-continent interconnection policies that drive the
// peering analysis of §6.
package cloud

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
)

// Backbone classifies a provider's network backbone as Table 1 does:
// a fully private WAN, a WAN private within a continent ("Semi"), or
// reliance on the public Internet.
type Backbone uint8

// Backbone classes from Table 1.
const (
	BackbonePrivate Backbone = iota
	BackboneSemi
	BackbonePublic
)

// String returns the Table 1 label.
func (b Backbone) String() string {
	switch b {
	case BackbonePrivate:
		return "Private"
	case BackboneSemi:
		return "Semi"
	case BackbonePublic:
		return "Public"
	default:
		return "?"
	}
}

// PeeringPolicy parameterizes how a provider interconnects with serving
// ISPs on a continent: the probability that it has a direct peering
// (LOA-CFA style) with a given access ISP, and the probability that,
// absent direct peering, traffic enters via a single private transit
// carrier (PNI at an edge PoP) rather than the public Internet.
type PeeringPolicy struct {
	Direct         float64
	PrivateTransit float64
}

// Provider is one cloud service of Table 1.
type Provider struct {
	Code     string // short code used in the paper's figures (AMZN, GCP, ...)
	Name     string
	ASN      asn.Number
	Backbone Backbone
	// Peering maps continent → interconnection policy for ISPs on that
	// continent. Continents not present fall back to DefaultPeering.
	Peering        map[geo.Continent]PeeringPolicy
	DefaultPeering PeeringPolicy
	// HomeCountry, when set, marks a provider whose WAN is only openly
	// peered within one country (Alibaba in China: outside it the
	// datacenters operate as islands reached over public transit).
	HomeCountry string
}

// PolicyFor returns the interconnection policy towards an ISP in the
// given country/continent.
func (p *Provider) PolicyFor(country string, cont geo.Continent) PeeringPolicy {
	if p.HomeCountry != "" && country == p.HomeCountry {
		// Inside the home country the provider peers broadly.
		return PeeringPolicy{Direct: 0.75, PrivateTransit: 0.15}
	}
	if pol, ok := p.Peering[cont]; ok {
		return pol
	}
	return p.DefaultPeering
}

// Region is one compute cloud region (a datacenter endpoint).
type Region struct {
	Provider  *Provider
	ID        string // stable identifier, e.g. "amzn-eu-dublin"
	City      string
	Country   string // ISO code
	Continent geo.Continent
	Loc       geo.Point
}

// String returns the region ID.
func (r *Region) String() string { return r.ID }

// Inventory is the full endpoint catalogue.
type Inventory struct {
	providers []*Provider
	regions   []*Region
	byCode    map[string]*Provider
}

// NewInventory constructs the Table 1 catalogue. The result is immutable
// and safe for concurrent use.
func NewInventory() *Inventory {
	inv := &Inventory{byCode: make(map[string]*Provider)}
	for i := range providerTable {
		p := providerTable[i] // copy
		inv.providers = append(inv.providers, &p)
		inv.byCode[p.Code] = &p
	}
	for _, row := range regionTable {
		p, ok := inv.byCode[row.provider]
		if !ok {
			panic(fmt.Sprintf("cloud: region %s references unknown provider %s", row.city, row.provider))
		}
		country, ok := geo.CountryByCode(row.country)
		if !ok {
			panic(fmt.Sprintf("cloud: region %s in unknown country %s", row.city, row.country))
		}
		id := fmt.Sprintf("%s-%s-%s", lower(row.provider), country.Continent, row.slug)
		inv.regions = append(inv.regions, &Region{
			Provider:  p,
			ID:        id,
			City:      row.city,
			Country:   row.country,
			Continent: country.Continent,
			Loc:       geo.Point{Lat: row.lat, Lon: row.lon},
		})
	}
	return inv
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// Providers returns the ten provider entries in Table 1 order.
func (inv *Inventory) Providers() []*Provider { return inv.providers }

// Provider returns the provider with the given code.
func (inv *Inventory) Provider(code string) (*Provider, bool) {
	p, ok := inv.byCode[code]
	return p, ok
}

// Regions returns all 195 regions.
func (inv *Inventory) Regions() []*Region { return inv.regions }

// RegionsOf returns the regions of one provider.
func (inv *Inventory) RegionsOf(code string) []*Region {
	var out []*Region
	for _, r := range inv.regions {
		if r.Provider.Code == code {
			out = append(out, r)
		}
	}
	return out
}

// RegionsIn returns the regions on one continent.
func (inv *Inventory) RegionsIn(cont geo.Continent) []*Region {
	var out []*Region
	for _, r := range inv.regions {
		if r.Continent == cont {
			out = append(out, r)
		}
	}
	return out
}

// Closest returns the region geographically closest to p, optionally
// restricted to one continent (pass geo.ContinentUnknown for no
// restriction). It returns nil when no region matches.
func (inv *Inventory) Closest(p geo.Point, cont geo.Continent) *Region {
	var best *Region
	bestD := math.Inf(1)
	for _, r := range inv.regions {
		if cont != geo.ContinentUnknown && r.Continent != cont {
			continue
		}
		if d := geo.DistanceKm(p, r.Loc); d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// CountByContinent reproduces Table 1: per provider, the number of
// datacenters on each continent, in Table 1 provider order.
func (inv *Inventory) CountByContinent() map[string]map[geo.Continent]int {
	out := make(map[string]map[geo.Continent]int, len(inv.providers))
	for _, p := range inv.providers {
		out[p.Code] = make(map[geo.Continent]int)
	}
	for _, r := range inv.regions {
		out[r.Provider.Code][r.Continent]++
	}
	return out
}

// ProviderCodes returns the codes in Table 1 order.
func (inv *Inventory) ProviderCodes() []string {
	codes := make([]string, len(inv.providers))
	for i, p := range inv.providers {
		codes[i] = p.Code
	}
	return codes
}

// FigureProviderCodes returns the nine provider codes that appear in the
// paper's peering figures (Figures 10-13, 17, 18), alphabetically as
// plotted: Lightsail is folded into Amazon there.
func FigureProviderCodes() []string {
	codes := []string{"BABA", "AMZN", "DO", "GCP", "IBM", "LIN", "MSFT", "ORCL", "VLTR"}
	sort.Strings(codes)
	return codes
}
