package cloud

import (
	"strings"
	"testing"

	"repro/internal/geo"
)

func TestTable1Counts(t *testing.T) {
	inv := NewInventory()
	want := map[string][6]int{ // EU NA SA AS AF OC
		"AMZN": {6, 6, 1, 6, 1, 1},
		"GCP":  {6, 10, 1, 8, 0, 1},
		"MSFT": {14, 10, 1, 15, 2, 4},
		"DO":   {4, 6, 0, 1, 0, 0},
		"BABA": {2, 2, 0, 16, 0, 1},
		"VLTR": {4, 9, 0, 1, 0, 1},
		"LIN":  {2, 5, 0, 3, 0, 1},
		"LTSL": {4, 4, 0, 4, 0, 1},
		"ORCL": {4, 4, 1, 7, 0, 2},
		"IBM":  {6, 6, 0, 1, 0, 0},
	}
	conts := []geo.Continent{geo.EU, geo.NA, geo.SA, geo.AS, geo.AF, geo.OC}
	got := inv.CountByContinent()
	for code, w := range want {
		for i, cont := range conts {
			if got[code][cont] != w[i] {
				t.Errorf("%s %v: got %d datacenters, want %d", code, cont, got[code][cont], w[i])
			}
		}
	}
	if n := len(inv.Regions()); n != 195 {
		t.Errorf("total regions = %d, want 195", n)
	}
	// Continent totals from Table 1.
	totals := map[geo.Continent]int{geo.EU: 52, geo.NA: 62, geo.SA: 4, geo.AS: 62, geo.AF: 3, geo.OC: 12}
	for cont, w := range totals {
		if n := len(inv.RegionsIn(cont)); n != w {
			t.Errorf("regions in %v = %d, want %d", cont, n, w)
		}
	}
}

func TestProviders(t *testing.T) {
	inv := NewInventory()
	if n := len(inv.Providers()); n != 10 {
		t.Fatalf("providers = %d, want 10 (Table 1 rows)", n)
	}
	backbones := map[string]Backbone{
		"AMZN": BackbonePrivate, "GCP": BackbonePrivate, "MSFT": BackbonePrivate,
		"DO": BackboneSemi, "BABA": BackboneSemi, "IBM": BackboneSemi,
		"VLTR": BackbonePublic, "LIN": BackbonePublic,
		"LTSL": BackbonePrivate, "ORCL": BackbonePrivate,
	}
	for code, want := range backbones {
		p, ok := inv.Provider(code)
		if !ok {
			t.Fatalf("missing provider %s", code)
		}
		if p.Backbone != want {
			t.Errorf("%s backbone = %v, want %v", code, p.Backbone, want)
		}
		if p.ASN == 0 {
			t.Errorf("%s has no ASN", code)
		}
	}
	if _, ok := inv.Provider("NOPE"); ok {
		t.Error("unknown provider should miss")
	}
	seen := map[string]bool{}
	for _, c := range inv.ProviderCodes() {
		if seen[c] {
			t.Errorf("duplicate provider code %s", c)
		}
		seen[c] = true
	}
}

func TestRegionsWellFormed(t *testing.T) {
	inv := NewInventory()
	ids := map[string]bool{}
	for _, r := range inv.Regions() {
		if ids[r.ID] {
			t.Errorf("duplicate region ID %s", r.ID)
		}
		ids[r.ID] = true
		if !r.Loc.Valid() {
			t.Errorf("%s: invalid location %v", r.ID, r.Loc)
		}
		c, ok := geo.CountryByCode(r.Country)
		if !ok {
			t.Errorf("%s: unknown country %s", r.ID, r.Country)
			continue
		}
		if c.Continent != r.Continent {
			t.Errorf("%s: continent %v does not match country %s (%v)", r.ID, r.Continent, r.Country, c.Continent)
		}
		if !strings.HasPrefix(r.ID, lower(r.Provider.Code)) {
			t.Errorf("%s: ID does not begin with provider code", r.ID)
		}
		if r.String() != r.ID {
			t.Errorf("String() = %q, want %q", r.String(), r.ID)
		}
		// Datacenter coordinates should sit near the country centroid
		// (same country, so within ~3500 km even for US/CN/AU).
		if d := geo.DistanceKm(r.Loc, c.Centroid); d > 3500 {
			t.Errorf("%s: %.0f km from its country centroid", r.ID, d)
		}
	}
}

func TestAfricaDatacentersAreInTheSouth(t *testing.T) {
	// §4.1: the only three African DCs are colocated near South Africa,
	// which is what makes northern-African latency so poor.
	inv := NewInventory()
	af := inv.RegionsIn(geo.AF)
	if len(af) != 3 {
		t.Fatalf("AF regions = %d, want 3", len(af))
	}
	for _, r := range af {
		if r.Country != "ZA" {
			t.Errorf("African region %s not in ZA", r.ID)
		}
	}
}

func TestRegionsOf(t *testing.T) {
	inv := NewInventory()
	if n := len(inv.RegionsOf("MSFT")); n != 46 {
		t.Errorf("MSFT regions = %d, want 46", n)
	}
	if n := len(inv.RegionsOf("NOPE")); n != 0 {
		t.Errorf("unknown provider regions = %d", n)
	}
	for _, r := range inv.RegionsOf("BABA") {
		if r.Provider.Code != "BABA" {
			t.Errorf("RegionsOf returned foreign region %s", r.ID)
		}
	}
}

func TestClosest(t *testing.T) {
	inv := NewInventory()
	berlin := geo.Point{Lat: 52.52, Lon: 13.40}
	r := inv.Closest(berlin, geo.EU)
	if r == nil {
		t.Fatal("no closest region")
	}
	// Azure Berlin is an exact-city match.
	if r.City != "Berlin" {
		t.Errorf("closest to Berlin = %s (%s)", r.ID, r.City)
	}
	// Unrestricted search from Nairobi must find the ZA datacenters as
	// in-continent closest but something closer (Middle East / India)
	// globally or equal.
	nairobi := geo.Point{Lat: -1.29, Lon: 36.82}
	inAF := inv.Closest(nairobi, geo.AF)
	if inAF == nil || inAF.Continent != geo.AF {
		t.Fatalf("closest AF = %v", inAF)
	}
	global := inv.Closest(nairobi, geo.ContinentUnknown)
	if global == nil {
		t.Fatal("no global closest")
	}
	if geo.DistanceKm(nairobi, global.Loc) > geo.DistanceKm(nairobi, inAF.Loc) {
		t.Error("global closest farther than continental closest")
	}
	if inv.Closest(berlin, geo.Continent(99)) != nil {
		t.Error("impossible continent filter should return nil")
	}
}

func TestPolicyFor(t *testing.T) {
	inv := NewInventory()
	gcp, _ := inv.Provider("GCP")
	eu := gcp.PolicyFor("DE", geo.EU)
	if eu.Direct < 0.5 {
		t.Errorf("GCP EU direct policy = %v, want hypergiant-level", eu.Direct)
	}
	af := gcp.PolicyFor("KE", geo.AF)
	if af.Direct >= eu.Direct {
		t.Error("default policy should be weaker than EU policy")
	}
	baba, _ := inv.Provider("BABA")
	inside := baba.PolicyFor("CN", geo.AS)
	outside := baba.PolicyFor("JP", geo.AS)
	if inside.Direct <= outside.Direct {
		t.Errorf("Alibaba should peer broadly at home: CN=%v JP=%v", inside.Direct, outside.Direct)
	}
	if outside.Direct > 0.1 {
		t.Errorf("Alibaba islands outside CN: direct = %v", outside.Direct)
	}
	do, _ := inv.Provider("DO")
	if pol := do.PolicyFor("JP", geo.AS); pol.Direct != 0 {
		t.Errorf("DO in Asia should have no direct peering, got %v", pol.Direct)
	}
	// Policy probabilities must be valid.
	for _, p := range inv.Providers() {
		for _, cont := range geo.Continents() {
			pol := p.PolicyFor("US", cont)
			if pol.Direct < 0 || pol.PrivateTransit < 0 || pol.Direct+pol.PrivateTransit > 1 {
				t.Errorf("%s %v: invalid policy %+v", p.Code, cont, pol)
			}
		}
	}
}

func TestFigureProviderCodes(t *testing.T) {
	codes := FigureProviderCodes()
	if len(codes) != 9 {
		t.Fatalf("figure providers = %d, want 9", len(codes))
	}
	for _, c := range codes {
		if c == "LTSL" {
			t.Error("Lightsail must not appear in peering figures")
		}
	}
	inv := NewInventory()
	for _, c := range codes {
		if _, ok := inv.Provider(c); !ok {
			t.Errorf("figure provider %s not in inventory", c)
		}
	}
}

func TestBackboneString(t *testing.T) {
	if BackbonePrivate.String() != "Private" || BackboneSemi.String() != "Semi" ||
		BackbonePublic.String() != "Public" || Backbone(9).String() != "?" {
		t.Error("backbone strings wrong")
	}
}
