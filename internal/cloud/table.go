package cloud

import "repro/internal/geo"

// providerTable is Table 1, in the paper's row order, enriched with the
// providers' well-known WAN ASNs and per-continent interconnection
// policies. The policies are tuned so that the global AS-hop breakdown
// reproduces Figure 10: hypergiants mostly direct, DO/IBM mostly one
// private transit AS, LIN/VLTR/ORCL mostly public (2+ ASes), Alibaba
// public outside China.
var providerTable = []Provider{
	{
		Code: "AMZN", Name: "Amazon EC2", ASN: 16509, Backbone: BackbonePrivate,
		Peering: map[geo.Continent]PeeringPolicy{
			geo.EU: {Direct: 0.78, PrivateTransit: 0.15},
			geo.NA: {Direct: 0.78, PrivateTransit: 0.15},
			geo.AS: {Direct: 0.60, PrivateTransit: 0.25},
		},
		DefaultPeering: PeeringPolicy{Direct: 0.55, PrivateTransit: 0.25},
	},
	{
		Code: "GCP", Name: "Google Cloud Platform", ASN: 15169, Backbone: BackbonePrivate,
		Peering: map[geo.Continent]PeeringPolicy{
			geo.EU: {Direct: 0.82, PrivateTransit: 0.12},
			geo.NA: {Direct: 0.82, PrivateTransit: 0.12},
			geo.AS: {Direct: 0.65, PrivateTransit: 0.22},
		},
		DefaultPeering: PeeringPolicy{Direct: 0.60, PrivateTransit: 0.22},
	},
	{
		Code: "MSFT", Name: "Microsoft Azure", ASN: 8075, Backbone: BackbonePrivate,
		Peering: map[geo.Continent]PeeringPolicy{
			geo.EU: {Direct: 0.80, PrivateTransit: 0.13},
			geo.NA: {Direct: 0.80, PrivateTransit: 0.13},
			geo.AS: {Direct: 0.62, PrivateTransit: 0.24},
		},
		DefaultPeering: PeeringPolicy{Direct: 0.58, PrivateTransit: 0.24},
	},
	{
		Code: "DO", Name: "DigitalOcean", ASN: 14061, Backbone: BackboneSemi,
		Peering: map[geo.Continent]PeeringPolicy{
			geo.EU: {Direct: 0.18, PrivateTransit: 0.65},
			geo.NA: {Direct: 0.18, PrivateTransit: 0.65},
			// No PoP deployment in Asia: strictly public Internet there
			// (observed in Fig 13a).
			geo.AS: {Direct: 0.0, PrivateTransit: 0.05},
		},
		DefaultPeering: PeeringPolicy{Direct: 0.08, PrivateTransit: 0.45},
	},
	{
		Code: "BABA", Name: "Alibaba Cloud", ASN: 45102, Backbone: BackboneSemi,
		HomeCountry: "CN",
		// Outside China the datacenters are "islands" reached via public
		// transit providers.
		DefaultPeering: PeeringPolicy{Direct: 0.04, PrivateTransit: 0.12},
	},
	{
		Code: "VLTR", Name: "Vultr", ASN: 20473, Backbone: BackbonePublic,
		DefaultPeering: PeeringPolicy{Direct: 0.05, PrivateTransit: 0.22},
	},
	{
		Code: "LIN", Name: "Linode", ASN: 63949, Backbone: BackbonePublic,
		DefaultPeering: PeeringPolicy{Direct: 0.05, PrivateTransit: 0.25},
	},
	{
		Code: "LTSL", Name: "Amazon Lightsail", ASN: 14618, Backbone: BackbonePrivate,
		Peering: map[geo.Continent]PeeringPolicy{
			geo.EU: {Direct: 0.75, PrivateTransit: 0.17},
			geo.NA: {Direct: 0.75, PrivateTransit: 0.17},
			geo.AS: {Direct: 0.58, PrivateTransit: 0.26},
		},
		DefaultPeering: PeeringPolicy{Direct: 0.52, PrivateTransit: 0.26},
	},
	{
		Code: "ORCL", Name: "Oracle Cloud", ASN: 31898, Backbone: BackbonePrivate,
		// Oracle advertises a private backbone between regions but, per
		// Fig 10, tenant paths mostly ride the public Internet.
		DefaultPeering: PeeringPolicy{Direct: 0.08, PrivateTransit: 0.28},
	},
	{
		Code: "IBM", Name: "IBM Cloud", ASN: 36351, Backbone: BackboneSemi,
		Peering: map[geo.Continent]PeeringPolicy{
			geo.EU: {Direct: 0.25, PrivateTransit: 0.55},
			geo.NA: {Direct: 0.25, PrivateTransit: 0.55},
			// Hybrid: public transit for the long Asian paths (§6.1).
			geo.AS: {Direct: 0.05, PrivateTransit: 0.15},
		},
		DefaultPeering: PeeringPolicy{Direct: 0.10, PrivateTransit: 0.35},
	},
}

// regionTable lists all 195 compute regions. Counts per provider per
// continent match Table 1 exactly:
//
//	          EU NA SA AS AF OC
//	AMZN       6  6  1  6  1  1
//	GCP        6 10  1  8  -  1
//	MSFT      14 10  1 15  2  4
//	DO         4  6  -  1  -  -
//	BABA       2  2  - 16  -  1
//	VLTR       4  9  -  1  -  1
//	LIN        2  5  -  3  -  1
//	LTSL       4  4  -  4  -  1
//	ORCL       4  4  1  7  -  2
//	IBM        6  6  -  1  -  -
//	Total     52 62  4 62  3 12   = 195
var regionTable = []struct {
	provider string
	slug     string
	city     string
	country  string
	lat, lon float64
}{
	// ---- Amazon EC2 (21) ----
	{"AMZN", "dublin", "Dublin", "IE", 53.33, -6.25},
	{"AMZN", "london", "London", "GB", 51.51, -0.13},
	{"AMZN", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"AMZN", "paris", "Paris", "FR", 48.86, 2.35},
	{"AMZN", "stockholm", "Stockholm", "SE", 59.33, 18.07},
	{"AMZN", "milan", "Milan", "IT", 45.46, 9.19},
	{"AMZN", "virginia", "Ashburn", "US", 39.04, -77.49},
	{"AMZN", "ohio", "Columbus", "US", 39.96, -83.00},
	{"AMZN", "california", "San Jose", "US", 37.34, -121.89},
	{"AMZN", "oregon", "Boardman", "US", 45.84, -119.70},
	{"AMZN", "montreal", "Montreal", "CA", 45.50, -73.57},
	{"AMZN", "phoenix", "Phoenix", "US", 33.45, -112.07},
	{"AMZN", "saopaulo", "Sao Paulo", "BR", -23.55, -46.63},
	{"AMZN", "tokyo", "Tokyo", "JP", 35.68, 139.69},
	{"AMZN", "seoul", "Seoul", "KR", 37.57, 126.98},
	{"AMZN", "singapore", "Singapore", "SG", 1.35, 103.82},
	{"AMZN", "mumbai", "Mumbai", "IN", 19.08, 72.88},
	{"AMZN", "hongkong", "Hong Kong", "HK", 22.32, 114.17},
	{"AMZN", "bahrain", "Manama", "BH", 26.23, 50.59},
	{"AMZN", "capetown", "Cape Town", "ZA", -33.92, 18.42},
	{"AMZN", "sydney", "Sydney", "AU", -33.87, 151.21},
	// ---- Google Cloud (26) ----
	{"GCP", "belgium", "St. Ghislain", "BE", 50.45, 3.82},
	{"GCP", "london", "London", "GB", 51.51, -0.13},
	{"GCP", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"GCP", "netherlands", "Eemshaven", "NL", 53.44, 6.83},
	{"GCP", "zurich", "Zurich", "CH", 47.38, 8.54},
	{"GCP", "finland", "Hamina", "FI", 60.57, 27.20},
	{"GCP", "iowa", "Council Bluffs", "US", 41.26, -95.86},
	{"GCP", "scarolina", "Moncks Corner", "US", 33.20, -80.01},
	{"GCP", "virginia", "Ashburn", "US", 39.04, -77.49},
	{"GCP", "oregon", "The Dalles", "US", 45.59, -121.18},
	{"GCP", "losangeles", "Los Angeles", "US", 34.05, -118.24},
	{"GCP", "saltlake", "Salt Lake City", "US", 40.76, -111.89},
	{"GCP", "lasvegas", "Las Vegas", "US", 36.17, -115.14},
	{"GCP", "dallas", "Dallas", "US", 32.78, -96.80},
	{"GCP", "montreal", "Montreal", "CA", 45.50, -73.57},
	{"GCP", "toronto", "Toronto", "CA", 43.65, -79.38},
	{"GCP", "saopaulo", "Osasco", "BR", -23.53, -46.79},
	{"GCP", "tokyo", "Tokyo", "JP", 35.68, 139.69},
	{"GCP", "osaka", "Osaka", "JP", 34.69, 135.50},
	{"GCP", "seoul", "Seoul", "KR", 37.57, 126.98},
	{"GCP", "taiwan", "Changhua", "TW", 24.08, 120.54},
	{"GCP", "hongkong", "Hong Kong", "HK", 22.32, 114.17},
	{"GCP", "singapore", "Singapore", "SG", 1.35, 103.82},
	{"GCP", "jakarta", "Jakarta", "ID", -6.21, 106.85},
	{"GCP", "mumbai", "Mumbai", "IN", 19.08, 72.88},
	{"GCP", "sydney", "Sydney", "AU", -33.87, 151.21},
	// ---- Microsoft Azure (46) ----
	{"MSFT", "dublin", "Dublin", "IE", 53.33, -6.25},
	{"MSFT", "amsterdam", "Amsterdam", "NL", 52.37, 4.90},
	{"MSFT", "london", "London", "GB", 51.51, -0.13},
	{"MSFT", "cardiff", "Cardiff", "GB", 51.48, -3.18},
	{"MSFT", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"MSFT", "berlin", "Berlin", "DE", 52.52, 13.40},
	{"MSFT", "paris", "Paris", "FR", 48.86, 2.35},
	{"MSFT", "marseille", "Marseille", "FR", 43.30, 5.37},
	{"MSFT", "oslo", "Oslo", "NO", 59.91, 10.75},
	{"MSFT", "stavanger", "Stavanger", "NO", 58.97, 5.73},
	{"MSFT", "zurich", "Zurich", "CH", 47.38, 8.54},
	{"MSFT", "geneva", "Geneva", "CH", 46.20, 6.14},
	{"MSFT", "gavle", "Gavle", "SE", 60.67, 17.14},
	{"MSFT", "milan", "Milan", "IT", 45.46, 9.19},
	{"MSFT", "virginia", "Boydton", "US", 36.67, -78.39},
	{"MSFT", "virginia2", "Ashburn", "US", 39.04, -77.49},
	{"MSFT", "iowa", "Des Moines", "US", 41.59, -93.62},
	{"MSFT", "chicago", "Chicago", "US", 41.88, -87.63},
	{"MSFT", "sanantonio", "San Antonio", "US", 29.42, -98.49},
	{"MSFT", "cheyenne", "Cheyenne", "US", 41.14, -104.82},
	{"MSFT", "california", "San Francisco", "US", 37.77, -122.42},
	{"MSFT", "quincy", "Quincy", "US", 47.23, -119.85},
	{"MSFT", "toronto", "Toronto", "CA", 43.65, -79.38},
	{"MSFT", "quebec", "Quebec City", "CA", 46.81, -71.21},
	{"MSFT", "saopaulo", "Campinas", "BR", -22.91, -47.06},
	{"MSFT", "hongkong", "Hong Kong", "HK", 22.32, 114.17},
	{"MSFT", "singapore", "Singapore", "SG", 1.35, 103.82},
	{"MSFT", "tokyo", "Tokyo", "JP", 35.68, 139.69},
	{"MSFT", "osaka", "Osaka", "JP", 34.69, 135.50},
	{"MSFT", "seoul", "Seoul", "KR", 37.57, 126.98},
	{"MSFT", "busan", "Busan", "KR", 35.18, 129.08},
	{"MSFT", "pune", "Pune", "IN", 18.52, 73.86},
	{"MSFT", "chennai", "Chennai", "IN", 13.08, 80.27},
	{"MSFT", "mumbai", "Mumbai", "IN", 19.08, 72.88},
	{"MSFT", "dubai", "Dubai", "AE", 25.27, 55.30},
	{"MSFT", "abudhabi", "Abu Dhabi", "AE", 24.45, 54.38},
	{"MSFT", "shanghai", "Shanghai", "CN", 31.23, 121.47},
	{"MSFT", "beijing", "Beijing", "CN", 39.90, 116.40},
	{"MSFT", "jakarta", "Jakarta", "ID", -6.21, 106.85},
	{"MSFT", "telaviv", "Tel Aviv", "IL", 32.07, 34.79},
	{"MSFT", "johannesburg", "Johannesburg", "ZA", -26.20, 28.05},
	{"MSFT", "capetown", "Cape Town", "ZA", -33.92, 18.42},
	{"MSFT", "sydney", "Sydney", "AU", -33.87, 151.21},
	{"MSFT", "melbourne", "Melbourne", "AU", -37.81, 144.96},
	{"MSFT", "canberra", "Canberra", "AU", -35.28, 149.13},
	{"MSFT", "canberra2", "Canberra 2", "AU", -35.31, 149.19},
	// ---- DigitalOcean (11) ----
	{"DO", "london", "London", "GB", 51.51, -0.13},
	{"DO", "amsterdam2", "Amsterdam 2", "NL", 52.37, 4.90},
	{"DO", "amsterdam3", "Amsterdam 3", "NL", 52.35, 4.94},
	{"DO", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"DO", "newyork1", "New York 1", "US", 40.71, -74.01},
	{"DO", "newyork2", "New York 2", "US", 40.73, -74.00},
	{"DO", "newyork3", "New York 3", "US", 40.75, -73.99},
	{"DO", "sanfrancisco2", "San Francisco 2", "US", 37.77, -122.42},
	{"DO", "sanfrancisco3", "San Francisco 3", "US", 37.79, -122.40},
	{"DO", "toronto", "Toronto", "CA", 43.65, -79.38},
	{"DO", "bangalore", "Bangalore", "IN", 12.97, 77.59},
	// ---- Alibaba Cloud (21) ----
	{"BABA", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"BABA", "london", "London", "GB", 51.51, -0.13},
	{"BABA", "virginia", "Ashburn", "US", 39.04, -77.49},
	{"BABA", "siliconvalley", "San Mateo", "US", 37.56, -122.32},
	{"BABA", "hangzhou", "Hangzhou", "CN", 30.27, 120.16},
	{"BABA", "shanghai", "Shanghai", "CN", 31.23, 121.47},
	{"BABA", "beijing", "Beijing", "CN", 39.90, 116.40},
	{"BABA", "zhangjiakou", "Zhangjiakou", "CN", 40.77, 114.89},
	{"BABA", "hohhot", "Hohhot", "CN", 40.84, 111.75},
	{"BABA", "shenzhen", "Shenzhen", "CN", 22.54, 114.06},
	{"BABA", "chengdu", "Chengdu", "CN", 30.57, 104.07},
	{"BABA", "qingdao", "Qingdao", "CN", 36.07, 120.38},
	{"BABA", "heyuan", "Heyuan", "CN", 23.74, 114.70},
	{"BABA", "hongkong", "Hong Kong", "HK", 22.32, 114.17},
	{"BABA", "singapore", "Singapore", "SG", 1.35, 103.82},
	{"BABA", "kualalumpur", "Kuala Lumpur", "MY", 3.14, 101.69},
	{"BABA", "jakarta", "Jakarta", "ID", -6.21, 106.85},
	{"BABA", "mumbai", "Mumbai", "IN", 19.08, 72.88},
	{"BABA", "tokyo", "Tokyo", "JP", 35.68, 139.69},
	{"BABA", "dubai", "Dubai", "AE", 25.27, 55.30},
	{"BABA", "sydney", "Sydney", "AU", -33.87, 151.21},
	// ---- Vultr (15) ----
	{"VLTR", "london", "London", "GB", 51.51, -0.13},
	{"VLTR", "amsterdam", "Amsterdam", "NL", 52.37, 4.90},
	{"VLTR", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"VLTR", "paris", "Paris", "FR", 48.86, 2.35},
	{"VLTR", "newjersey", "Piscataway", "US", 40.55, -74.46},
	{"VLTR", "chicago", "Chicago", "US", 41.88, -87.63},
	{"VLTR", "atlanta", "Atlanta", "US", 33.75, -84.39},
	{"VLTR", "miami", "Miami", "US", 25.76, -80.19},
	{"VLTR", "dallas", "Dallas", "US", 32.78, -96.80},
	{"VLTR", "seattle", "Seattle", "US", 47.61, -122.33},
	{"VLTR", "siliconvalley", "San Jose", "US", 37.34, -121.89},
	{"VLTR", "losangeles", "Los Angeles", "US", 34.05, -118.24},
	{"VLTR", "toronto", "Toronto", "CA", 43.65, -79.38},
	{"VLTR", "tokyo", "Tokyo", "JP", 35.68, 139.69},
	{"VLTR", "sydney", "Sydney", "AU", -33.87, 151.21},
	// ---- Linode (11) ----
	{"LIN", "london", "London", "GB", 51.51, -0.13},
	{"LIN", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"LIN", "newark", "Newark", "US", 40.74, -74.17},
	{"LIN", "atlanta", "Atlanta", "US", 33.75, -84.39},
	{"LIN", "dallas", "Dallas", "US", 32.78, -96.80},
	{"LIN", "fremont", "Fremont", "US", 37.55, -121.99},
	{"LIN", "toronto", "Toronto", "CA", 43.65, -79.38},
	{"LIN", "tokyo", "Tokyo", "JP", 35.68, 139.69},
	{"LIN", "singapore", "Singapore", "SG", 1.35, 103.82},
	{"LIN", "mumbai", "Mumbai", "IN", 19.08, 72.88},
	{"LIN", "sydney", "Sydney", "AU", -33.87, 151.21},
	// ---- Amazon Lightsail (13) ----
	{"LTSL", "dublin", "Dublin", "IE", 53.33, -6.25},
	{"LTSL", "london", "London", "GB", 51.51, -0.13},
	{"LTSL", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"LTSL", "paris", "Paris", "FR", 48.86, 2.35},
	{"LTSL", "virginia", "Ashburn", "US", 39.04, -77.49},
	{"LTSL", "ohio", "Columbus", "US", 39.96, -83.00},
	{"LTSL", "oregon", "Boardman", "US", 45.84, -119.70},
	{"LTSL", "montreal", "Montreal", "CA", 45.50, -73.57},
	{"LTSL", "tokyo", "Tokyo", "JP", 35.68, 139.69},
	{"LTSL", "seoul", "Seoul", "KR", 37.57, 126.98},
	{"LTSL", "singapore", "Singapore", "SG", 1.35, 103.82},
	{"LTSL", "mumbai", "Mumbai", "IN", 19.08, 72.88},
	{"LTSL", "sydney", "Sydney", "AU", -33.87, 151.21},
	// ---- Oracle Cloud (18) ----
	{"ORCL", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"ORCL", "london", "London", "GB", 51.51, -0.13},
	{"ORCL", "amsterdam", "Amsterdam", "NL", 52.37, 4.90},
	{"ORCL", "zurich", "Zurich", "CH", 47.38, 8.54},
	{"ORCL", "ashburn", "Ashburn", "US", 39.04, -77.49},
	{"ORCL", "phoenix", "Phoenix", "US", 33.45, -112.07},
	{"ORCL", "toronto", "Toronto", "CA", 43.65, -79.38},
	{"ORCL", "montreal", "Montreal", "CA", 45.50, -73.57},
	{"ORCL", "saopaulo", "Sao Paulo", "BR", -23.55, -46.63},
	{"ORCL", "tokyo", "Tokyo", "JP", 35.68, 139.69},
	{"ORCL", "osaka", "Osaka", "JP", 34.69, 135.50},
	{"ORCL", "seoul", "Seoul", "KR", 37.57, 126.98},
	{"ORCL", "chuncheon", "Chuncheon", "KR", 37.87, 127.73},
	{"ORCL", "mumbai", "Mumbai", "IN", 19.08, 72.88},
	{"ORCL", "hyderabad", "Hyderabad", "IN", 17.39, 78.49},
	{"ORCL", "jeddah", "Jeddah", "SA", 21.49, 39.19},
	{"ORCL", "sydney", "Sydney", "AU", -33.87, 151.21},
	{"ORCL", "melbourne", "Melbourne", "AU", -37.81, 144.96},
	// ---- IBM Cloud (13) ----
	{"IBM", "london", "London", "GB", 51.51, -0.13},
	{"IBM", "frankfurt", "Frankfurt", "DE", 50.11, 8.68},
	{"IBM", "amsterdam", "Amsterdam", "NL", 52.37, 4.90},
	{"IBM", "paris", "Paris", "FR", 48.86, 2.35},
	{"IBM", "milan", "Milan", "IT", 45.46, 9.19},
	{"IBM", "oslo", "Oslo", "NO", 59.91, 10.75},
	{"IBM", "dallas", "Dallas", "US", 32.78, -96.80},
	{"IBM", "washington", "Washington DC", "US", 38.91, -77.04},
	{"IBM", "sanjose", "San Jose", "US", 37.34, -121.89},
	{"IBM", "houston", "Houston", "US", 29.76, -95.37},
	{"IBM", "toronto", "Toronto", "CA", 43.65, -79.38},
	{"IBM", "montreal", "Montreal", "CA", 45.50, -73.57},
	{"IBM", "tokyo", "Tokyo", "JP", 35.68, 139.69},
}
