// Package cluster is the distributed campaign plane: a coordinator
// that partitions a measurement campaign into country shards and
// leases them to a fleet of worker processes, each running its own
// measure engine and streaming samples back over the binary wire
// protocol (internal/wirecodec), merged through the coordinator's
// sample.Bus into whatever sinks the caller mounts (a store.Feed, an
// export file, both).
//
// # Protocol
//
// Every connection speaks wirecodec frames. Control messages are JSON
// bodies in control frames; samples ride the binary batch frames
// between them, sharing the per-connection dictionary state:
//
//	worker → hello{worker}            coordinator → campaign{config}
//	worker → lease_request            coordinator → lease{shard, countries, cycle window, ttl} | shutdown
//	worker → ping/trace batches, heartbeat{shard, telemetry} …
//	worker → shard_done{shard, pings, traces, telemetry}
//
// No new frame type was introduced for the longitudinal axis: lease
// windows and worker telemetry are fields of the JSON control envelope
// riding the existing FrameControl type, so the wirecodec frame space
// (and its exhaustiveness lint) is untouched.
//
// # Liveness and reassignment
//
// Any frame from a worker refreshes its lease. When a lease goes
// quiet past the TTL the coordinator closes the connection; a closed
// or errored connection with an active lease sends the shard back to
// the pending queue and discards the partial stream. Exactly-once
// merging falls out of that: a shard's records are buffered on the
// coordinator and committed to the bus only when shard_done arrives
// with matching counts, so a dead worker contributes nothing and its
// replacement re-runs the shard from scratch.
//
// # Determinism
//
// Re-running a shard re-emits the identical record stream: probe and
// target selection, retry jitter and every sample value are pure
// functions of (probe, country, cycle) — the same property the
// campaign engine's checkpoint/resume replay relies on — and a probe
// belongs to exactly one country, hence exactly one shard. A merged
// store seals bit-identically to a single-process run (the chaos test
// asserts store.ShardDigests equality) provided the campaign stays
// fault-free with no cycle quota: fault windows and the shared
// per-cycle request budget couple countries through the engine's
// virtual clock, so the coordinator refuses fault profiles and cycle
// quotas unless explicitly forced.
//
// With CoordinatorOptions.CycleWindows > 1 the campaign's cycle axis is
// further split into contiguous windows, and the lease unit becomes
// (country group, cycle window): a six-month campaign replays one
// window at a time. The sealed store's determinism contract is
// per-probe arrival order (probes are sorted at seal), so the
// coordinator commits a group's windows to the merge bus in ascending
// window order — a unit finishing early is parked at that barrier —
// which keeps every probe's stream in cycle order and the merged seal
// bit-identical to the one-process, one-window run.
//
// Like admit, the package never reads the wall clock: lease expiry
// reads the injected Clock, and periodic work paces itself on
// obs.After. Deterministic tests hand-crank the clock.
package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/wirecodec"
)

// Clock returns elapsed time from an arbitrary fixed origin; it must
// be monotonic (the admit pattern — wall time is never needed).
type Clock func() time.Duration

// CampaignConfig is the campaign shape the coordinator broadcasts to
// every worker in the campaign message: the full core.Config minus
// process-local concerns (registries, sinks). Both sides must derive
// their world and fleets from the same values or shard replay breaks.
type CampaignConfig struct {
	Seed            int64   `json:"seed"`
	Scale           float64 `json:"scale,omitempty"`
	Cycles          int     `json:"cycles,omitempty"`
	ProbeCap        int     `json:"probe_cap,omitempty"`
	TargetsPerProbe int     `json:"targets_per_probe,omitempty"`
	MinProbes       int     `json:"min_probes,omitempty"`
	// FaultProfile is carried for completeness but refused by the
	// coordinator unless AllowFaults is set: fault windows consult the
	// shared virtual clock, which couples countries across shards and
	// voids the bit-identical merge guarantee.
	FaultProfile string `json:"fault_profile,omitempty"`
	// Workers is the per-worker engine concurrency (0 = GOMAXPROCS);
	// it does not affect emitted records, only speed.
	Workers int `json:"workers,omitempty"`
	// Scenario and DiurnalAmplitude mirror the core.Config longitudinal
	// knobs. Both are pure functions of (country, cycle) — scenario
	// penalties are additive post-RNG and the diurnal gate draws no
	// extra randomness — so they preserve the bit-identical merge
	// guarantee.
	Scenario         string  `json:"scenario,omitempty"`
	DiurnalAmplitude float64 `json:"diurnal_amplitude,omitempty"`
	// CycleQuota does not preserve it: the per-cycle request budget is
	// shared across every country an engine sweeps, so a sharded run
	// spends it differently than the single process. Refused by the
	// coordinator unless AllowFaults is set, like FaultProfile.
	CycleQuota int `json:"cycle_quota,omitempty"`
}

// coreConfig expands the wire form back into a core.Config.
func (c CampaignConfig) coreConfig(reg *obs.Registry) core.Config {
	return core.Config{
		Seed: c.Seed, Scale: c.Scale, Cycles: c.Cycles,
		ProbeCap: c.ProbeCap, TargetsPerProbe: c.TargetsPerProbe,
		MinProbes: c.MinProbes, Workers: c.Workers,
		FaultProfile: c.FaultProfile, Obs: reg,
		Scenario:         c.Scenario,
		DiurnalAmplitude: c.DiurnalAmplitude,
		CycleQuota:       c.CycleQuota,
	}
}

// Control message types.
const (
	msgHello        = "hello"
	msgCampaign     = "campaign"
	msgLeaseRequest = "lease_request"
	msgLease        = "lease"
	msgHeartbeat    = "heartbeat"
	msgShardDone    = "shard_done"
	msgShutdown     = "shutdown"
)

// msg is the one JSON envelope every control frame carries; Type
// selects which fields are meaningful.
type msg struct {
	Type       string          `json:"type"`
	Worker     string          `json:"worker,omitempty"`
	Campaign   *CampaignConfig `json:"campaign,omitempty"`
	Shard      int             `json:"shard"`
	Countries  []string        `json:"countries,omitempty"`
	LeaseTTLMs int64           `json:"lease_ttl_ms,omitempty"`
	Pings      uint64          `json:"pings"`
	Traces     uint64          `json:"traces"`
	// FromCycle and ToCycle window a lease on the campaign's cycle axis
	// (half-open, both zero = the whole campaign) — set on lease grants
	// when the coordinator runs with CycleWindows > 1.
	FromCycle int `json:"from_cycle,omitempty"`
	ToCycle   int `json:"to_cycle,omitempty"`
	// QuotaExhausted and FaultStrikes are the worker's cumulative engine
	// counters (cycle-quota exhaustions, injected fault strikes), carried
	// on heartbeats and shard_done; the coordinator folds the deltas into
	// its cluster_worker_* rollups.
	QuotaExhausted uint64 `json:"quota_exhausted,omitempty"`
	FaultStrikes   uint64 `json:"fault_strikes,omitempty"`
}

// writeControl frames, writes and flushes one control message.
// (Control messages must reach the peer promptly; record batches ride
// the shared buffered writer and flush on their own cadence.)
func writeControl(fw *wirecodec.FrameWriter, m msg) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("cluster: encoding %s: %w", m.Type, err)
	}
	if err := fw.WriteFrame(append([]byte{wirecodec.FrameControl}, body...)); err != nil {
		return err
	}
	return fw.Flush()
}

func parseControl(payload []byte) (msg, error) {
	var m msg
	if len(payload) < 1 || payload[0] != wirecodec.FrameControl {
		return m, fmt.Errorf("cluster: expected a control frame, got type 0x%02x", payload[0])
	}
	if err := json.Unmarshal(payload[1:], &m); err != nil {
		return m, fmt.Errorf("cluster: malformed control frame: %w", err)
	}
	return m, nil
}

// readControl reads the next frame and requires it to be control.
func readControl(fr *wirecodec.FrameReader) (msg, error) {
	payload, err := fr.ReadFrame()
	if err != nil {
		return msg{}, err
	}
	return parseControl(payload)
}

// partitionCountries packs every country code into at most n groups by
// greedy LPT bin-packing on weight — a country's probe allocation —
// so groups carry comparable measurement work instead of comparable
// country counts (n is capped at the country count). Sharding by
// country is what makes replay exact: a probe lives in one country, so
// its whole stream comes from one shard. Countries missing from the
// weight map count as 1, so coverage never depends on the weight
// source; ties keep database order, keeping the partition
// deterministic for a given weight map.
func partitionCountries(n int, weight map[string]int) [][]string {
	if n <= 0 {
		n = 1
	}
	all := geo.AllCountries()
	if n > len(all) {
		n = len(all)
	}
	type wc struct {
		code string
		w    int
	}
	ws := make([]wc, len(all))
	for i, c := range all {
		w := weight[c.Code]
		if w <= 0 {
			w = 1
		}
		ws[i] = wc{c.Code, w}
	}
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].w > ws[j].w })
	out := make([][]string, n)
	load := make([]int, n)
	for _, c := range ws {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		out[best] = append(out[best], c.code)
		load[best] += c.w
	}
	return out
}
