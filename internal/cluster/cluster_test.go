package cluster

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/store"
	"repro/internal/wirecodec"
	"repro/internal/world"
)

// testCampaign is the shared tiny-but-nonempty campaign every cluster
// test runs: small enough to finish fast, big enough that each shard
// streams a few kilobytes (the chaos test's kill trigger needs that).
var testCampaign = CampaignConfig{Seed: 2, Scale: 0.02, Cycles: 1, TargetsPerProbe: 4}

// sealSingleProcess runs the campaign in one process into a fresh feed
// and seals it — the ground truth the distributed runs must match.
func sealSingleProcess(t *testing.T, camp CampaignConfig, storeShards int) *store.Store {
	t.Helper()
	setup, err := core.Prepare(camp.coreConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	feed := store.NewFeed(pipeline.NewProcessor(setup.World), store.Options{Shards: storeShards})
	if _, _, _, err := setup.RunCampaigns(context.Background(), feed); err != nil {
		t.Fatal(err)
	}
	return feed.Seal()
}

func newTestFeed(t *testing.T, camp CampaignConfig, storeShards int) *store.Feed {
	t.Helper()
	w, err := world.Build(world.Config{Seed: camp.Seed})
	if err != nil {
		t.Fatal(err)
	}
	return store.NewFeed(pipeline.NewProcessor(w), store.Options{Shards: storeShards})
}

func TestPartitionCountries(t *testing.T) {
	all := geo.AllCountries()
	weights := probes.CountryQuotas(probes.Config{Scale: 1})
	for _, n := range []int{1, 3, len(all), len(all) + 50} {
		shards := partitionCountries(n, weights)
		seen := map[string]int{}
		for _, shard := range shards {
			if len(shard) == 0 {
				t.Fatalf("n=%d produced an empty shard", n)
			}
			for _, code := range shard {
				seen[code]++
			}
		}
		if len(seen) != len(all) {
			t.Fatalf("n=%d covers %d of %d countries", n, len(seen), len(all))
		}
		for code, k := range seen {
			if k != 1 {
				t.Fatalf("n=%d assigns %s to %d shards", n, code, k)
			}
		}
	}
}

// TestPartitionCountriesBalanced pins the bin-packer's balance: with
// real probe allocations the heaviest group must weigh at most 1.5×
// the lightest, so no lease is a stand-out straggler.
func TestPartitionCountriesBalanced(t *testing.T) {
	weights := probes.CountryQuotas(probes.Config{Scale: 1})
	for _, n := range []int{2, 4, DefaultShards} {
		shards := partitionCountries(n, weights)
		loads := make([]int, len(shards))
		for i, shard := range shards {
			for _, code := range shard {
				w := weights[code]
				if w <= 0 {
					w = 1
				}
				loads[i] += w
			}
		}
		lo, hi := loads[0], loads[0]
		for _, l := range loads[1:] {
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		if lo == 0 || float64(hi)/float64(lo) > 1.5 {
			t.Errorf("n=%d shard weights %v: max/min ratio %.2f exceeds 1.5", n, loads, float64(hi)/float64(lo))
		}
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second}); err == nil {
		t.Error("LeaseTTL without a Clock must be rejected")
	}
	faulty := CoordinatorOptions{Campaign: CampaignConfig{FaultProfile: "flaky-wireless"}}
	if _, err := NewCoordinator(faulty); err == nil {
		t.Error("fault profile without AllowFaults must be rejected")
	}
	faulty.AllowFaults = true
	if _, err := NewCoordinator(faulty); err != nil {
		t.Errorf("AllowFaults should admit a fault profile: %v", err)
	}
	quota := CoordinatorOptions{Campaign: CampaignConfig{CycleQuota: 100}}
	if _, err := NewCoordinator(quota); err == nil {
		t.Error("cycle quota without AllowFaults must be rejected")
	}
	quota.AllowFaults = true
	if _, err := NewCoordinator(quota); err != nil {
		t.Errorf("AllowFaults should admit a cycle quota: %v", err)
	}
	if _, err := NewCoordinator(CoordinatorOptions{CycleWindows: 3}); err == nil {
		t.Error("CycleWindows without explicit Campaign.Cycles must be rejected")
	}
	if _, err := NewCoordinator(CoordinatorOptions{CycleWindows: 3, Campaign: CampaignConfig{Cycles: 6}}); err != nil {
		t.Errorf("CycleWindows with explicit cycles should be accepted: %v", err)
	}
}

// runFleet drives a coordinator plus n workers over a LocalTransport
// and returns the run result and each worker's error. wrap, when set,
// intercepts worker i's connection (the chaos test's kill switch).
func runFleet(t *testing.T, coord *Coordinator, n int, wrap func(i int, c Conn) Conn) (Result, []error) {
	t.Helper()
	return runFleetWorkers(t, coord, n, wrap, func(i int) WorkerOptions {
		return WorkerOptions{Name: string(rune('a' + i))}
	})
}

// runFleetWorkers is runFleet with per-worker options — the telemetry
// test hands each worker its own registry, as separate processes have.
func runFleetWorkers(t *testing.T, coord *Coordinator, n int, wrap func(i int, c Conn) Conn, optsFor func(i int) WorkerOptions) (Result, []error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	tr := NewLocalTransport()
	type coordOut struct {
		res Result
		err error
	}
	coordCh := make(chan coordOut, 1)
	go func() {
		res, err := coord.Run(ctx, tr)
		coordCh <- coordOut{res, err}
	}()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := NewWorker(optsFor(i))
			errs[i] = w.Run(ctx, func(ctx context.Context) (Conn, error) {
				c, err := tr.Dial(ctx)
				if err != nil || wrap == nil {
					return c, err
				}
				return wrap(i, c), nil
			})
		}(i)
	}
	out := <-coordCh
	if out.err != nil {
		t.Fatalf("coordinator: %v", out.err)
	}
	wg.Wait()
	return out.res, errs
}

// TestFleetMergesBitIdentical is the core tentpole guarantee: three
// workers splitting the sweep produce a sealed store whose every shard
// digest matches the single-process run bit for bit.
func TestFleetMergesBitIdentical(t *testing.T) {
	want := sealSingleProcess(t, testCampaign, 4)

	reg := obs.NewRegistry()
	feed := newTestFeed(t, testCampaign, 4)
	coord, err := NewCoordinator(CoordinatorOptions{
		Campaign: testCampaign, Shards: 4, Obs: reg,
	}, feed)
	if err != nil {
		t.Fatal(err)
	}
	res, errs := runFleet(t, coord, 3, nil)
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if res.Shards != 4 || res.Assigned != 4 || res.Reassigned != 0 {
		t.Errorf("unexpected ledger: %+v", res)
	}
	if res.Workers != 3 {
		t.Errorf("expected 3 registered workers, got %d", res.Workers)
	}
	if res.Pings == 0 || res.Traces == 0 {
		t.Fatalf("fleet streamed nothing: %+v", res)
	}

	got := feed.Seal()
	if got.Digest() != want.Digest() {
		t.Errorf("merged store digest %s != single-process %s", got.Digest(), want.Digest())
	}
	gd, wd := got.ShardDigests(), want.ShardDigests()
	for i := range gd {
		if gd[i] != wd[i] {
			t.Errorf("store shard %d digest diverges: %s != %s", i, gd[i], wd[i])
		}
	}
}

// killConn fails every write from the first "large" one on — the first
// flushed record batch — so the worker dies mid-shard, after real
// sample bytes went nowhere, while its lease is active.
type killConn struct {
	Conn
	mu    sync.Mutex
	limit int
	dead  bool
}

var errInjected = errors.New("injected connection failure")

func (k *killConn) Write(p []byte) (int, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.dead || len(p) >= k.limit {
		k.dead = true
		return 0, errInjected
	}
	return k.Conn.Write(p)
}

// TestChaosWorkerKilledMidSweep kills one of three workers mid-stream
// and requires (a) its shard to be reassigned and (b) the merged store
// to still seal bit-identical to the single-process run — the
// exactly-once, deterministic-replay contract under failure.
func TestChaosWorkerKilledMidSweep(t *testing.T) {
	want := sealSingleProcess(t, testCampaign, 4)

	reg := obs.NewRegistry()
	feed := newTestFeed(t, testCampaign, 4)
	coord, err := NewCoordinator(CoordinatorOptions{
		Campaign: testCampaign, Shards: 4, Obs: reg,
	}, feed)
	if err != nil {
		t.Fatal(err)
	}
	res, errs := runFleet(t, coord, 3, func(i int, c Conn) Conn {
		if i != 0 {
			return c
		}
		return &killConn{Conn: c, limit: 2048}
	})
	if errs[0] == nil {
		t.Fatal("killed worker reported no error; the kill never fired")
	}
	for i, err := range errs[1:] {
		if err != nil {
			t.Errorf("surviving worker %d: %v", i+1, err)
		}
	}
	if res.Reassigned < 1 {
		t.Fatalf("no shard was reassigned: %+v", res)
	}
	if res.Assigned != res.Shards+res.Reassigned {
		t.Errorf("assignment ledger inconsistent: %+v", res)
	}

	got := feed.Seal()
	if got.Digest() != want.Digest() {
		t.Errorf("merged store diverges after chaos: %s != %s", got.Digest(), want.Digest())
	}
	gd, wd := got.ShardDigests(), want.ShardDigests()
	for i := range gd {
		if gd[i] != wd[i] {
			t.Errorf("store shard %d digest diverges after chaos", i)
		}
	}
}

// TestLeaseExpiryReassigns registers a worker that takes a lease and
// goes silent; once the hand-cranked clock passes the TTL the reaper
// must reclaim the shard and a live worker must finish the sweep.
func TestLeaseExpiryReassigns(t *testing.T) {
	var now atomic.Int64
	clock := func() time.Duration { return time.Duration(now.Load()) }

	reg := obs.NewRegistry()
	feed := newTestFeed(t, testCampaign, 4)
	coord, err := NewCoordinator(CoordinatorOptions{
		Campaign: testCampaign, Shards: 2,
		LeaseTTL: 50 * time.Millisecond, Clock: clock, Obs: reg,
	}, feed)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	tr := NewLocalTransport()
	type coordOut struct {
		res Result
		err error
	}
	coordCh := make(chan coordOut, 1)
	go func() {
		res, err := coord.Run(ctx, tr)
		coordCh <- coordOut{res, err}
	}()

	// The silent worker speaks just enough protocol to take a lease.
	conn, err := tr.Dial(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := wirecodec.NewFrameWriter(conn, wirecodec.Options{})
	fr := wirecodec.NewFrameReader(conn, wirecodec.Options{})
	if err := writeControl(fw, msg{Type: msgHello, Worker: "silent"}); err != nil {
		t.Fatal(err)
	}
	if m, err := readControl(fr); err != nil || m.Type != msgCampaign {
		t.Fatalf("campaign handshake: %v %v", m, err)
	}
	if err := writeControl(fw, msg{Type: msgLeaseRequest}); err != nil {
		t.Fatal(err)
	}
	grant, err := readControl(fr)
	if err != nil || grant.Type != msgLease {
		t.Fatalf("lease grant: %v %v", grant, err)
	}
	if grant.LeaseTTLMs != 50 {
		t.Errorf("lease advertises TTL %dms, want 50", grant.LeaseTTLMs)
	}

	// Expire the silent lease, then field a live worker. The clock never
	// moves again, so the live worker's leases cannot expire.
	now.Store(int64(time.Hour))
	wErr := make(chan error, 1)
	go func() {
		w := NewWorker(WorkerOptions{Name: "live"})
		wErr <- w.Run(ctx, tr.Dial)
	}()

	out := <-coordCh
	if out.err != nil {
		t.Fatalf("coordinator: %v", out.err)
	}
	if err := <-wErr; err != nil {
		t.Errorf("live worker: %v", err)
	}
	if out.res.Reassigned < 1 {
		t.Fatalf("silent lease never expired: %+v", out.res)
	}
	if got := reg.Counter("cluster_lease_expiries_total").Load(); got < 1 {
		t.Errorf("expiry counter = %d, want >= 1", got)
	}
	if reg.Counter("cluster_shards_done_total").Load() != 2 {
		t.Errorf("done counter = %d, want 2", reg.Counter("cluster_shards_done_total").Load())
	}
	if out.res.Pings == 0 {
		t.Fatal("no records merged after reassignment")
	}
}

// TestClusterMetrics spot-checks the instrument surface the obs
// subsystem scrapes: live-worker gauge returns to zero, stream
// counters moved.
func TestClusterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	feed := newTestFeed(t, testCampaign, 4)
	coord, err := NewCoordinator(CoordinatorOptions{
		Campaign: testCampaign, Shards: 2, Obs: reg,
	}, feed)
	if err != nil {
		t.Fatal(err)
	}
	res, errs := runFleet(t, coord, 2, nil)
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if g := reg.Gauge("cluster_workers_live").Load(); g != 0 {
		t.Errorf("cluster_workers_live = %d after shutdown, want 0", g)
	}
	if got := reg.Counter("cluster_shards_assigned_total").Load(); got != uint64(res.Assigned) {
		t.Errorf("assigned counter %d != ledger %d", got, res.Assigned)
	}
	if reg.Counter("cluster_stream_rx_frames_total").Load() == 0 ||
		reg.Counter("cluster_stream_rx_bytes_total").Load() == 0 {
		t.Error("stream rx instruments never moved")
	}
}

// windowedCampaign spans two cycles so the cycle axis can be split into
// two windows per country group.
var windowedCampaign = CampaignConfig{Seed: 2, Scale: 0.02, Cycles: 2, TargetsPerProbe: 4}

// TestFleetWindowedMergesBitIdentical is the longitudinal tentpole
// guarantee: splitting every country group into per-window leases —
// (group, cycle window) units replayed independently, possibly out of
// order — still seals bit-identical to the one-process, one-window run,
// thanks to the coordinator's ascending-window commit barrier.
func TestFleetWindowedMergesBitIdentical(t *testing.T) {
	want := sealSingleProcess(t, windowedCampaign, 4)

	feed := newTestFeed(t, windowedCampaign, 4)
	coord, err := NewCoordinator(CoordinatorOptions{
		Campaign: windowedCampaign, Shards: 2, CycleWindows: 2,
	}, feed)
	if err != nil {
		t.Fatal(err)
	}
	res, errs := runFleet(t, coord, 3, nil)
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if res.Groups != 2 || res.Windows != 2 || res.Shards != 4 {
		t.Errorf("expected 2 groups x 2 windows = 4 units, got %+v", res)
	}
	if res.Pings == 0 || res.Traces == 0 {
		t.Fatalf("fleet streamed nothing: %+v", res)
	}

	got := feed.Seal()
	if got.Digest() != want.Digest() {
		t.Errorf("windowed merge digest %s != single-process %s", got.Digest(), want.Digest())
	}
	gd, wd := got.ShardDigests(), want.ShardDigests()
	for i := range gd {
		if gd[i] != wd[i] {
			t.Errorf("store shard %d digest diverges: %s != %s", i, gd[i], wd[i])
		}
	}
}

// TestChaosWindowedReplay kills a worker mid-window and requires the
// coordinator to re-lease just that (group, window) unit — not the
// whole campaign — and the merged store to still seal bit-identical:
// deterministic single-window replay under failure.
func TestChaosWindowedReplay(t *testing.T) {
	want := sealSingleProcess(t, windowedCampaign, 4)

	feed := newTestFeed(t, windowedCampaign, 4)
	coord, err := NewCoordinator(CoordinatorOptions{
		Campaign: windowedCampaign, Shards: 2, CycleWindows: 2,
	}, feed)
	if err != nil {
		t.Fatal(err)
	}
	res, errs := runFleet(t, coord, 3, func(i int, c Conn) Conn {
		if i != 0 {
			return c
		}
		return &killConn{Conn: c, limit: 2048}
	})
	if errs[0] == nil {
		t.Fatal("killed worker reported no error; the kill never fired")
	}
	for i, err := range errs[1:] {
		if err != nil {
			t.Errorf("surviving worker %d: %v", i+1, err)
		}
	}
	if res.Reassigned < 1 {
		t.Fatalf("no window unit was reassigned: %+v", res)
	}
	if res.Assigned != res.Shards+res.Reassigned {
		t.Errorf("assignment ledger inconsistent: %+v", res)
	}

	got := feed.Seal()
	if got.Digest() != want.Digest() {
		t.Errorf("windowed replay diverges after chaos: %s != %s", got.Digest(), want.Digest())
	}
	gd, wd := got.ShardDigests(), want.ShardDigests()
	for i := range gd {
		if gd[i] != wd[i] {
			t.Errorf("store shard %d digest diverges after windowed chaos", i)
		}
	}
}

// TestWorkerTelemetryRollsUp runs a quota-capped, fault-injecting
// campaign (AllowFaults: the run trades bit-identity for telemetry) and
// requires the coordinator's cluster_worker_* rollups to equal the sum
// of the per-worker engine counters shipped on heartbeats/shard_done.
func TestWorkerTelemetryRollsUp(t *testing.T) {
	camp := CampaignConfig{Seed: 2, Scale: 0.02, Cycles: 1, TargetsPerProbe: 4,
		FaultProfile: "flaky-wireless", CycleQuota: 50}
	reg := obs.NewRegistry()
	feed := newTestFeed(t, camp, 4)
	coord, err := NewCoordinator(CoordinatorOptions{
		Campaign: camp, Shards: 2, AllowFaults: true, Obs: reg,
	}, feed)
	if err != nil {
		t.Fatal(err)
	}
	workerRegs := make([]*obs.Registry, 2)
	res, errs := runFleetWorkers(t, coord, 2, nil, func(i int) WorkerOptions {
		workerRegs[i] = obs.NewRegistry()
		return WorkerOptions{Name: string(rune('a' + i)), Obs: workerRegs[i]}
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if res.Pings == 0 {
		t.Fatalf("fleet streamed nothing: %+v", res)
	}
	var wantQuota, wantFaults uint64
	for _, wr := range workerRegs {
		wantQuota += wr.Counter("measure_cycle_quota_exhausted_total").Load()
		wantFaults += wr.SumCounters("faults_injected_total")
	}
	if wantQuota == 0 {
		t.Fatal("quota never exhausted; the telemetry path went unexercised")
	}
	if got := reg.Counter("cluster_worker_quota_exhausted_total").Load(); got != wantQuota {
		t.Errorf("cluster_worker_quota_exhausted_total = %d, workers counted %d", got, wantQuota)
	}
	if got := reg.Counter("cluster_worker_fault_strikes_total").Load(); got != wantFaults {
		t.Errorf("cluster_worker_fault_strikes_total = %d, workers counted %d", got, wantFaults)
	}
}
