package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/wirecodec"
)

// DefaultShards is the shard count when CoordinatorOptions.Shards is
// zero: enough parallelism for a handful of workers without slicing
// the country set into confetti.
const DefaultShards = 8

// CoordinatorOptions configures a campaign coordinator.
type CoordinatorOptions struct {
	// Campaign is broadcast to every worker; both sides derive their
	// world and fleets from it.
	Campaign CampaignConfig
	// Shards is the number of country shards to lease out (default
	// DefaultShards, capped at the country count).
	Shards int
	// LeaseTTL bounds how long a lease may go without any frame from
	// its worker before the coordinator declares the worker dead and
	// re-queues the shard. Zero disables expiry: only connection errors
	// reassign.
	LeaseTTL time.Duration
	// Clock feeds lease expiry; required when LeaseTTL > 0 (the admit
	// pattern: the caller owns the clock, tests hand-crank it).
	Clock Clock
	// BusBuffer sizes the merge bus (default sample.DefaultBusBuffer).
	BusBuffer int
	// AllowFaults permits a fault-injecting campaign, surrendering the
	// bit-identical merge guarantee (fault windows couple countries
	// through the shared virtual clock). Off by default.
	AllowFaults bool
	// Obs registers the cluster instruments and the merge bus's; nil
	// runs uninstrumented.
	Obs *obs.Registry
}

// Result summarizes a coordinator run.
type Result struct {
	// Shards is how many country shards the campaign was split into.
	Shards int
	// Workers is how many distinct workers registered.
	Workers int
	// Assigned counts lease grants, including re-grants of reclaimed
	// shards; Reassigned counts shards reclaimed from dead workers.
	Assigned   int
	Reassigned int
	// Pings and Traces are the merged record totals.
	Pings  uint64
	Traces uint64
}

// Coordinator leases campaign shards to workers and merges their
// record streams into the mounted sinks. Build with NewCoordinator,
// drive with Run.
type Coordinator struct {
	opts  CoordinatorOptions
	sinks []dataset.Sink

	gWorkers    *obs.Gauge
	cAssigned   *obs.Counter
	cReassigned *obs.Counter
	cDone       *obs.Counter
	cExpired    *obs.Counter
	rxFrames    *obs.Counter
	rxBytes     *obs.Counter
	txFrames    *obs.Counter
	txBytes     *obs.Counter
}

// NewCoordinator validates the options and builds a coordinator over
// the given sinks (a store.Feed, an export sink, any combination).
func NewCoordinator(opts CoordinatorOptions, sinks ...dataset.Sink) (*Coordinator, error) {
	if opts.LeaseTTL > 0 && opts.Clock == nil {
		return nil, fmt.Errorf("cluster: LeaseTTL %v requires a Clock", opts.LeaseTTL)
	}
	if p := opts.Campaign.FaultProfile; p != "" && p != "none" && !opts.AllowFaults {
		return nil, fmt.Errorf("cluster: fault profile %q breaks bit-identical shard merging; set AllowFaults to run it anyway", p)
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	reg := opts.Obs
	return &Coordinator{
		opts: opts, sinks: sinks,
		gWorkers:    reg.Gauge("cluster_workers_live"),
		cAssigned:   reg.Counter("cluster_shards_assigned_total"),
		cReassigned: reg.Counter("cluster_shards_reassigned_total"),
		cDone:       reg.Counter("cluster_shards_done_total"),
		cExpired:    reg.Counter("cluster_lease_expiries_total"),
		rxFrames:    reg.Counter("cluster_stream_rx_frames_total"),
		rxBytes:     reg.Counter("cluster_stream_rx_bytes_total"),
		txFrames:    reg.Counter("cluster_stream_tx_frames_total"),
		txBytes:     reg.Counter("cluster_stream_tx_bytes_total"),
	}, nil
}

// lease is one shard currently assigned to a worker connection.
type lease struct {
	shard    int
	worker   string
	conn     Conn
	lastBeat time.Duration
}

// runState is the shared bookkeeping of one Run.
type runState struct {
	shards  [][]string
	pending chan int      // shards awaiting (re-)assignment; cap = len(shards)
	doneCh  chan struct{} // closed when every shard has merged, or on fatal error
	once    sync.Once

	commitMu sync.Mutex // serializes bus commits (the bus is single-producer)

	mu         sync.Mutex
	remaining  int
	leases     map[int]*lease
	conns      map[Conn]struct{}
	workers    map[string]bool
	assigned   int
	reassigned int
	pings      uint64
	traces     uint64
	err        error
}

func (st *runState) finish() { st.once.Do(func() { close(st.doneCh) }) }

func (st *runState) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
	st.finish()
}

// Run accepts workers on ln, leases every shard, merges the returned
// streams, and finishes when all shards have committed (or ctx is
// done). The merged totals and assignment ledger come back in Result.
func (c *Coordinator) Run(ctx context.Context, ln Listener) (Result, error) {
	shards := partitionCountries(c.opts.Shards)
	st := &runState{
		shards:    shards,
		pending:   make(chan int, len(shards)),
		doneCh:    make(chan struct{}),
		remaining: len(shards),
		leases:    map[int]*lease{},
		conns:     map[Conn]struct{}{},
		workers:   map[string]bool{},
	}
	for i := range shards {
		st.pending <- i
	}
	if len(shards) == 0 {
		st.finish()
	}
	bus := sample.NewBus(sample.BusOptions{Buffer: c.opts.BusBuffer, Obs: c.opts.Obs}, c.sinks...)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept(runCtx)
			if err != nil {
				return
			}
			st.mu.Lock()
			st.conns[conn] = struct{}{}
			st.mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.handleConn(runCtx, st, bus, conn)
				st.mu.Lock()
				delete(st.conns, conn)
				st.mu.Unlock()
				conn.Close()
			}()
		}
	}()
	if c.opts.LeaseTTL > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.reap(runCtx, st)
		}()
	}

	select {
	case <-st.doneCh:
	case <-ctx.Done():
	}
	cancel()
	ln.Close()
	// Unblock handlers parked in ReadFrame on idle connections.
	st.mu.Lock()
	for conn := range st.conns {
		conn.Close()
	}
	st.mu.Unlock()
	wg.Wait()
	busErr := bus.Close()

	st.mu.Lock()
	res := Result{
		Shards: len(shards), Workers: len(st.workers),
		Assigned: st.assigned, Reassigned: st.reassigned,
		Pings: st.pings, Traces: st.traces,
	}
	remaining, err := st.remaining, st.err
	st.mu.Unlock()
	if err == nil {
		err = busErr
	}
	if err == nil && ctx.Err() != nil {
		err = fmt.Errorf("cluster: coordinator stopped with %d of %d shards unmerged: %w",
			remaining, len(shards), ctx.Err())
	}
	return res, err
}

// handleConn owns one worker connection for its lifetime: handshake,
// lease grants, stream buffering, commit on shard_done. Any error —
// protocol, codec, transport — simply ends the connection; the
// deferred requeue puts an in-flight shard back on the market.
func (c *Coordinator) handleConn(ctx context.Context, st *runState, bus *sample.Bus, conn Conn) {
	fr := wirecodec.NewFrameReader(conn, wirecodec.Options{Frames: c.rxFrames, Bytes: c.rxBytes})
	fw := wirecodec.NewFrameWriter(conn, wirecodec.Options{Frames: c.txFrames, Bytes: c.txBytes})
	hello, err := readControl(fr)
	if err != nil || hello.Type != msgHello {
		return
	}
	worker := hello.Worker
	st.mu.Lock()
	st.workers[worker] = true
	st.mu.Unlock()
	c.gWorkers.Add(1)
	defer c.gWorkers.Add(-1)
	camp := c.opts.Campaign
	if err := writeControl(fw, msg{Type: msgCampaign, Campaign: &camp}); err != nil {
		return
	}

	// One decoder for the connection's whole life: the wire dictionary
	// and delta baselines span shard boundaries.
	dec := wirecodec.NewDecoder()
	var cur *lease
	var bufP []sample.Sample
	var bufT []sample.TraceSample
	defer func() {
		if cur != nil {
			c.requeue(st, cur)
		}
	}()
	for {
		payload, err := fr.ReadFrame()
		if err != nil {
			return
		}
		if cur != nil && c.opts.Clock != nil {
			// Any frame is proof of life, not just heartbeats: a worker
			// mid-stream is as alive as one idling between batches.
			st.mu.Lock()
			cur.lastBeat = c.opts.Clock()
			st.mu.Unlock()
		}
		switch payload[0] {
		case wirecodec.FrameControl:
			m, err := parseControl(payload)
			if err != nil {
				return
			}
			switch m.Type {
			case msgLeaseRequest:
				if cur != nil {
					return // a lease is already out; protocol violation
				}
				select {
				case id := <-st.pending:
					var now time.Duration
					if c.opts.Clock != nil {
						now = c.opts.Clock()
					}
					cur = &lease{shard: id, worker: worker, conn: conn, lastBeat: now}
					st.mu.Lock()
					st.leases[id] = cur
					st.assigned++
					st.mu.Unlock()
					c.cAssigned.Inc()
					bufP, bufT = bufP[:0], bufT[:0]
					grant := msg{Type: msgLease, Shard: id, Countries: st.shards[id],
						LeaseTTLMs: c.opts.LeaseTTL.Milliseconds()}
					if err := writeControl(fw, grant); err != nil {
						return
					}
				case <-st.doneCh:
					writeControl(fw, msg{Type: msgShutdown})
					return
				case <-ctx.Done():
					return
				}
			case msgHeartbeat:
				// Liveness already refreshed above.
			case msgShardDone:
				if cur == nil || m.Shard != cur.shard {
					return
				}
				if m.Pings != uint64(len(bufP)) || m.Traces != uint64(len(bufT)) {
					st.fail(fmt.Errorf(
						"cluster: worker %s shard %d reports %d pings / %d traces but the stream carried %d / %d",
						worker, cur.shard, m.Pings, m.Traces, len(bufP), len(bufT)))
					return
				}
				if err := c.commit(ctx, st, bus, cur, bufP, bufT); err != nil {
					st.fail(err)
					return
				}
				st.mu.Lock()
				delete(st.leases, cur.shard)
				st.pings += uint64(len(bufP))
				st.traces += uint64(len(bufT))
				st.remaining--
				done := st.remaining == 0
				st.mu.Unlock()
				cur = nil
				c.cDone.Inc()
				if done {
					st.finish()
				}
			default:
				return
			}
		case wirecodec.FramePings:
			if cur == nil {
				return
			}
			err := dec.DecodePings(payload, func(s sample.Sample) error {
				bufP = append(bufP, s)
				return nil
			})
			if err != nil {
				return
			}
		case wirecodec.FrameTraces:
			if cur == nil {
				return
			}
			err := dec.DecodeTraces(payload, func(t sample.TraceSample) error {
				bufT = append(bufT, t)
				return nil
			})
			if err != nil {
				return
			}
		default:
			return
		}
	}
}

// requeue reclaims a dead worker's shard: the buffered partial stream
// is discarded by the caller and the shard goes back on the pending
// queue for the next lease_request — exactly-once by construction.
func (c *Coordinator) requeue(st *runState, l *lease) {
	st.mu.Lock()
	if st.leases[l.shard] != l {
		st.mu.Unlock()
		return
	}
	delete(st.leases, l.shard)
	st.reassigned++
	st.mu.Unlock()
	c.cReassigned.Inc()
	st.pending <- l.shard // cap = len(shards): never blocks
}

// commit replays one completed shard's buffered records into the merge
// bus. The commit mutex upholds the bus's single-producer contract;
// within the shard, per-kind record order is the worker's engine order,
// which is all store.Feed needs for a bit-identical seal.
func (c *Coordinator) commit(ctx context.Context, st *runState, bus *sample.Bus, l *lease, pings []sample.Sample, traces []sample.TraceSample) error {
	_, span := obs.StartSpan(ctx, "cluster.merge")
	span.SetAttr("shard", fmt.Sprint(l.shard))
	span.SetAttr("worker", l.worker)
	span.SetAttr("pings", fmt.Sprint(len(pings)))
	span.SetAttr("traces", fmt.Sprint(len(traces)))
	defer span.End()
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	for _, p := range pings {
		//lint:ignore lockheld commitMu exists to serialize bus producers; blocking waiters on backpressure is the intended flow control
		if err := bus.Ping(p); err != nil {
			return fmt.Errorf("cluster: merging shard %d: %w", l.shard, err)
		}
	}
	for _, t := range traces {
		//lint:ignore lockheld commitMu exists to serialize bus producers; blocking waiters on backpressure is the intended flow control
		if err := bus.Trace(t); err != nil {
			return fmt.Errorf("cluster: merging shard %d: %w", l.shard, err)
		}
	}
	return nil
}

// reap expires leases that have gone quiet past the TTL by closing
// their connections; the connection handler then requeues the shard.
// Paced on obs.After so the package stays wall-clock-free.
func (c *Coordinator) reap(ctx context.Context, st *runState) {
	interval := c.opts.LeaseTTL / 4
	if interval <= 0 {
		interval = c.opts.LeaseTTL
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-st.doneCh:
			return
		case <-obs.After(interval):
			now := c.opts.Clock()
			st.mu.Lock()
			var stale []Conn
			for _, l := range st.leases {
				if now-l.lastBeat > c.opts.LeaseTTL {
					stale = append(stale, l.conn)
				}
			}
			st.mu.Unlock()
			for _, conn := range stale {
				c.cExpired.Inc()
				conn.Close()
			}
		}
	}
}
