package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/probes"
	"repro/internal/sample"
	"repro/internal/wirecodec"
)

// DefaultShards is the shard count when CoordinatorOptions.Shards is
// zero: enough parallelism for a handful of workers without slicing
// the country set into confetti.
const DefaultShards = 8

// CoordinatorOptions configures a campaign coordinator.
type CoordinatorOptions struct {
	// Campaign is broadcast to every worker; both sides derive their
	// world and fleets from it.
	Campaign CampaignConfig
	// Shards is the number of country groups to lease out (default
	// DefaultShards, capped at the country count). Groups are bin-packed
	// by per-country probe allocation so every lease carries comparable
	// work.
	Shards int
	// CycleWindows splits the campaign's cycle axis into that many
	// contiguous windows, multiplying the lease units: each unit is one
	// (country group, cycle window) and replays independently.
	// Campaign.Cycles must be set explicitly when CycleWindows > 1 (the
	// coordinator cannot see core's default). A group's windows commit
	// to the merge bus in ascending order — the window barrier — so
	// per-probe arrival order, and with it the sealed store's digest,
	// matches the single-process sweep. Default 1: whole-campaign
	// leases, the pre-windowed behavior.
	CycleWindows int
	// LeaseTTL bounds how long a lease may go without any frame from
	// its worker before the coordinator declares the worker dead and
	// re-queues the shard. Zero disables expiry: only connection errors
	// reassign.
	LeaseTTL time.Duration
	// Clock feeds lease expiry; required when LeaseTTL > 0 (the admit
	// pattern: the caller owns the clock, tests hand-crank it).
	Clock Clock
	// BusBuffer sizes the merge bus (default sample.DefaultBusBuffer).
	BusBuffer int
	// AllowFaults permits a fault-injecting campaign, surrendering the
	// bit-identical merge guarantee (fault windows couple countries
	// through the shared virtual clock). Off by default.
	AllowFaults bool
	// Obs registers the cluster instruments and the merge bus's; nil
	// runs uninstrumented.
	Obs *obs.Registry
}

// Result summarizes a coordinator run.
type Result struct {
	// Shards is how many lease units the campaign was split into:
	// country groups × cycle windows.
	Shards int
	// Groups and Windows are the two factors of Shards.
	Groups  int
	Windows int
	// Workers is how many distinct workers registered.
	Workers int
	// Assigned counts lease grants, including re-grants of reclaimed
	// shards; Reassigned counts shards reclaimed from dead workers.
	Assigned   int
	Reassigned int
	// Pings and Traces are the merged record totals.
	Pings  uint64
	Traces uint64
}

// Coordinator leases campaign shards to workers and merges their
// record streams into the mounted sinks. Build with NewCoordinator,
// drive with Run.
type Coordinator struct {
	opts  CoordinatorOptions
	sinks []dataset.Sink

	gWorkers    *obs.Gauge
	cAssigned   *obs.Counter
	cReassigned *obs.Counter
	cDone       *obs.Counter
	cExpired    *obs.Counter
	cQuota      *obs.Counter
	cFaults     *obs.Counter
	rxFrames    *obs.Counter
	rxBytes     *obs.Counter
	txFrames    *obs.Counter
	txBytes     *obs.Counter
}

// NewCoordinator validates the options and builds a coordinator over
// the given sinks (a store.Feed, an export sink, any combination).
func NewCoordinator(opts CoordinatorOptions, sinks ...dataset.Sink) (*Coordinator, error) {
	if opts.LeaseTTL > 0 && opts.Clock == nil {
		return nil, fmt.Errorf("cluster: LeaseTTL %v requires a Clock", opts.LeaseTTL)
	}
	if p := opts.Campaign.FaultProfile; p != "" && p != "none" && !opts.AllowFaults {
		return nil, fmt.Errorf("cluster: fault profile %q breaks bit-identical shard merging; set AllowFaults to run it anyway", p)
	}
	if q := opts.Campaign.CycleQuota; q != 0 && !opts.AllowFaults {
		return nil, fmt.Errorf("cluster: cycle quota %d couples countries through the shared per-cycle budget, breaking bit-identical shard merging; set AllowFaults to run it anyway", q)
	}
	if opts.CycleWindows > 1 && opts.Campaign.Cycles <= 0 {
		return nil, fmt.Errorf("cluster: CycleWindows %d requires an explicit Campaign.Cycles", opts.CycleWindows)
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	reg := opts.Obs
	return &Coordinator{
		opts: opts, sinks: sinks,
		gWorkers:    reg.Gauge("cluster_workers_live"),
		cAssigned:   reg.Counter("cluster_shards_assigned_total"),
		cReassigned: reg.Counter("cluster_shards_reassigned_total"),
		cDone:       reg.Counter("cluster_shards_done_total"),
		cExpired:    reg.Counter("cluster_lease_expiries_total"),
		cQuota:      reg.Counter("cluster_worker_quota_exhausted_total"),
		cFaults:     reg.Counter("cluster_worker_fault_strikes_total"),
		rxFrames:    reg.Counter("cluster_stream_rx_frames_total"),
		rxBytes:     reg.Counter("cluster_stream_rx_bytes_total"),
		txFrames:    reg.Counter("cluster_stream_tx_frames_total"),
		txBytes:     reg.Counter("cluster_stream_tx_bytes_total"),
	}, nil
}

// lease is one shard currently assigned to a worker connection.
type lease struct {
	shard    int
	worker   string
	conn     Conn
	lastBeat time.Duration
}

// runState is the shared bookkeeping of one Run. A lease unit ("shard"
// in the protocol) is one (country group, cycle window) pair, flattened
// as shard = window*len(groups) + group, so the FIFO pending queue
// hands out every group's first window before any later one.
type runState struct {
	groups  [][]string
	windows int
	cycles  int
	pending chan int      // units awaiting (re-)assignment; cap = unit count
	doneCh  chan struct{} // closed when every unit has merged, or on fatal error
	once    sync.Once

	// commitMu serializes bus commits (the bus is single-producer) and
	// guards the window barrier state below.
	commitMu sync.Mutex
	nextWin  []int             // per group: the next window allowed to commit
	held     map[int]heldShard // accepted units parked at the barrier

	mu         sync.Mutex
	remaining  int
	leases     map[int]*lease
	conns      map[Conn]struct{}
	workers    map[string]bool
	assigned   int
	reassigned int
	pings      uint64
	traces     uint64
	err        error
}

// heldShard is a completed lease unit whose group has an earlier window
// still uncommitted; its records wait, copied, at the window barrier.
type heldShard struct {
	worker string
	pings  []sample.Sample
	traces []sample.TraceSample
}

func (st *runState) unitCount() int     { return len(st.groups) * st.windows }
func (st *runState) groupOf(u int) int  { return u % len(st.groups) }
func (st *runState) windowOf(u int) int { return u / len(st.groups) }

// windowRange is the half-open cycle range of one window: an even split
// of the campaign's cycles with the remainder spread over the leading
// windows. A single window means an unbounded lease (the zero window),
// preserving the pre-windowed wire form.
func (st *runState) windowRange(win int) (from, to int) {
	if st.windows <= 1 {
		return 0, 0
	}
	base, rem := st.cycles/st.windows, st.cycles%st.windows
	from = win*base + min(win, rem)
	to = from + base
	if win < rem {
		to++
	}
	return from, to
}

func (st *runState) finish() { st.once.Do(func() { close(st.doneCh) }) }

func (st *runState) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
	st.finish()
}

// Run accepts workers on ln, leases every shard, merges the returned
// streams, and finishes when all shards have committed (or ctx is
// done). The merged totals and assignment ledger come back in Result.
func (c *Coordinator) Run(ctx context.Context, ln Listener) (Result, error) {
	camp := c.opts.Campaign
	groups := partitionCountries(c.opts.Shards,
		probes.CountryQuotas(probes.Config{Seed: camp.Seed, Scale: camp.Scale}))
	windows := c.opts.CycleWindows
	if windows <= 0 {
		windows = 1
	}
	if windows > 1 && windows > camp.Cycles {
		windows = camp.Cycles
	}
	n := len(groups) * windows
	st := &runState{
		groups:    groups,
		windows:   windows,
		cycles:    camp.Cycles,
		pending:   make(chan int, n),
		doneCh:    make(chan struct{}),
		remaining: n,
		nextWin:   make([]int, len(groups)),
		held:      map[int]heldShard{},
		leases:    map[int]*lease{},
		conns:     map[Conn]struct{}{},
		workers:   map[string]bool{},
	}
	for i := 0; i < n; i++ {
		st.pending <- i
	}
	if n == 0 {
		st.finish()
	}
	bus := sample.NewBus(sample.BusOptions{Buffer: c.opts.BusBuffer, Obs: c.opts.Obs}, c.sinks...)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept(runCtx)
			if err != nil {
				return
			}
			st.mu.Lock()
			st.conns[conn] = struct{}{}
			st.mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.handleConn(runCtx, st, bus, conn)
				st.mu.Lock()
				delete(st.conns, conn)
				st.mu.Unlock()
				conn.Close()
			}()
		}
	}()
	if c.opts.LeaseTTL > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.reap(runCtx, st)
		}()
	}

	select {
	case <-st.doneCh:
	case <-ctx.Done():
	}
	cancel()
	ln.Close()
	// Unblock handlers parked in ReadFrame on idle connections.
	st.mu.Lock()
	for conn := range st.conns {
		conn.Close()
	}
	st.mu.Unlock()
	wg.Wait()
	busErr := bus.Close()

	st.mu.Lock()
	res := Result{
		Shards: n, Groups: len(groups), Windows: windows,
		Workers:  len(st.workers),
		Assigned: st.assigned, Reassigned: st.reassigned,
		Pings: st.pings, Traces: st.traces,
	}
	remaining, err := st.remaining, st.err
	st.mu.Unlock()
	if err == nil {
		err = busErr
	}
	if err == nil && ctx.Err() != nil {
		err = fmt.Errorf("cluster: coordinator stopped with %d of %d shards unmerged: %w",
			remaining, n, ctx.Err())
	}
	return res, err
}

// handleConn owns one worker connection for its lifetime: handshake,
// lease grants, stream buffering, commit on shard_done. Any error —
// protocol, codec, transport — simply ends the connection; the
// deferred requeue puts an in-flight shard back on the market.
func (c *Coordinator) handleConn(ctx context.Context, st *runState, bus *sample.Bus, conn Conn) {
	fr := wirecodec.NewFrameReader(conn, wirecodec.Options{Frames: c.rxFrames, Bytes: c.rxBytes})
	fw := wirecodec.NewFrameWriter(conn, wirecodec.Options{Frames: c.txFrames, Bytes: c.txBytes})
	hello, err := readControl(fr)
	if err != nil || hello.Type != msgHello {
		return
	}
	worker := hello.Worker
	st.mu.Lock()
	st.workers[worker] = true
	st.mu.Unlock()
	c.gWorkers.Add(1)
	defer c.gWorkers.Add(-1)
	camp := c.opts.Campaign
	if err := writeControl(fw, msg{Type: msgCampaign, Campaign: &camp}); err != nil {
		return
	}

	// One decoder for the connection's whole life: the wire dictionary
	// and delta baselines span shard boundaries.
	dec := wirecodec.NewDecoder()
	var cur *lease
	var bufP []sample.Sample
	var bufT []sample.TraceSample
	// Last telemetry values reported by this worker; its counters are
	// cumulative, so the connection contributes deltas to the rollups.
	var lastQuota, lastFaults uint64
	defer func() {
		if cur != nil {
			c.requeue(st, cur)
		}
	}()
	for {
		payload, err := fr.ReadFrame()
		if err != nil {
			return
		}
		if cur != nil && c.opts.Clock != nil {
			// Any frame is proof of life, not just heartbeats: a worker
			// mid-stream is as alive as one idling between batches.
			st.mu.Lock()
			cur.lastBeat = c.opts.Clock()
			st.mu.Unlock()
		}
		switch payload[0] {
		case wirecodec.FrameControl:
			m, err := parseControl(payload)
			if err != nil {
				return
			}
			switch m.Type {
			case msgLeaseRequest:
				if cur != nil {
					return // a lease is already out; protocol violation
				}
				select {
				case id := <-st.pending:
					var now time.Duration
					if c.opts.Clock != nil {
						now = c.opts.Clock()
					}
					cur = &lease{shard: id, worker: worker, conn: conn, lastBeat: now}
					st.mu.Lock()
					st.leases[id] = cur
					st.assigned++
					st.mu.Unlock()
					c.cAssigned.Inc()
					bufP, bufT = bufP[:0], bufT[:0]
					from, to := st.windowRange(st.windowOf(id))
					grant := msg{Type: msgLease, Shard: id,
						Countries: st.groups[st.groupOf(id)],
						FromCycle: from, ToCycle: to,
						LeaseTTLMs: c.opts.LeaseTTL.Milliseconds()}
					if err := writeControl(fw, grant); err != nil {
						return
					}
				case <-st.doneCh:
					writeControl(fw, msg{Type: msgShutdown})
					return
				case <-ctx.Done():
					return
				}
			case msgHeartbeat:
				// Liveness already refreshed above.
				c.noteTelemetry(m, &lastQuota, &lastFaults)
			case msgShardDone:
				if cur == nil || m.Shard != cur.shard {
					return
				}
				c.noteTelemetry(m, &lastQuota, &lastFaults)
				if m.Pings != uint64(len(bufP)) || m.Traces != uint64(len(bufT)) {
					st.fail(fmt.Errorf(
						"cluster: worker %s shard %d reports %d pings / %d traces but the stream carried %d / %d",
						worker, cur.shard, m.Pings, m.Traces, len(bufP), len(bufT)))
					return
				}
				if err := c.accept(ctx, st, bus, cur, bufP, bufT); err != nil {
					st.fail(err)
					return
				}
				st.mu.Lock()
				delete(st.leases, cur.shard)
				st.pings += uint64(len(bufP))
				st.traces += uint64(len(bufT))
				st.remaining--
				done := st.remaining == 0
				st.mu.Unlock()
				cur = nil
				c.cDone.Inc()
				if done {
					st.finish()
				}
			default:
				return
			}
		case wirecodec.FramePings:
			if cur == nil {
				return
			}
			err := dec.DecodePings(payload, func(s sample.Sample) error {
				bufP = append(bufP, s)
				return nil
			})
			if err != nil {
				return
			}
		case wirecodec.FrameTraces:
			if cur == nil {
				return
			}
			err := dec.DecodeTraces(payload, func(t sample.TraceSample) error {
				bufT = append(bufT, t)
				return nil
			})
			if err != nil {
				return
			}
		default:
			return
		}
	}
}

// requeue reclaims a dead worker's shard: the buffered partial stream
// is discarded by the caller and the shard goes back on the pending
// queue for the next lease_request — exactly-once by construction.
func (c *Coordinator) requeue(st *runState, l *lease) {
	st.mu.Lock()
	if st.leases[l.shard] != l {
		st.mu.Unlock()
		return
	}
	delete(st.leases, l.shard)
	st.reassigned++
	st.mu.Unlock()
	c.cReassigned.Inc()
	st.pending <- l.shard // cap = len(shards): never blocks
}

// noteTelemetry folds a worker's cumulative engine counters into the
// cluster rollups. Counters only grow, so each connection contributes
// the delta since its last report; a reassigned shard's replacement
// worker reports on its own connection, so nothing double-counts.
func (c *Coordinator) noteTelemetry(m msg, lastQuota, lastFaults *uint64) {
	if m.QuotaExhausted > *lastQuota {
		c.cQuota.Add(m.QuotaExhausted - *lastQuota)
		*lastQuota = m.QuotaExhausted
	}
	if m.FaultStrikes > *lastFaults {
		c.cFaults.Add(m.FaultStrikes - *lastFaults)
		*lastFaults = m.FaultStrikes
	}
}

// accept merges one completed lease unit, upholding the per-group
// window barrier: a group's windows commit in ascending order so every
// probe's samples reach the feed in cycle order — the per-probe arrival
// order the store's bit-identical seal contract depends on. A unit
// finishing ahead of its predecessor is copied aside (the caller reuses
// its buffers) and flushed here by the predecessor's commit.
func (c *Coordinator) accept(ctx context.Context, st *runState, bus *sample.Bus, l *lease, pings []sample.Sample, traces []sample.TraceSample) error {
	st.commitMu.Lock()
	defer st.commitMu.Unlock()
	g := st.groupOf(l.shard)
	if st.windowOf(l.shard) != st.nextWin[g] {
		st.held[l.shard] = heldShard{
			worker: l.worker,
			pings:  append([]sample.Sample(nil), pings...),
			traces: append([]sample.TraceSample(nil), traces...),
		}
		return nil
	}
	unit, worker := l.shard, l.worker
	for {
		if err := c.commit(ctx, bus, unit, worker, pings, traces); err != nil {
			return err
		}
		st.nextWin[g]++
		next := g + st.nextWin[g]*len(st.groups)
		h, ok := st.held[next]
		if !ok {
			return nil
		}
		delete(st.held, next)
		unit, worker, pings, traces = next, h.worker, h.pings, h.traces
	}
}

// commit replays one lease unit's buffered records into the merge bus,
// under accept's commitMu — the bus's single-producer contract. Within
// the unit, per-kind record order is the worker's engine order, which
// together with the window barrier is all store.Feed needs for a
// bit-identical seal.
func (c *Coordinator) commit(ctx context.Context, bus *sample.Bus, unit int, worker string, pings []sample.Sample, traces []sample.TraceSample) error {
	_, span := obs.StartSpan(ctx, "cluster.merge")
	span.SetAttr("shard", fmt.Sprint(unit))
	span.SetAttr("worker", worker)
	span.SetAttr("pings", fmt.Sprint(len(pings)))
	span.SetAttr("traces", fmt.Sprint(len(traces)))
	defer span.End()
	for _, p := range pings {
		//lint:ignore lockheld commitMu exists to serialize bus producers; blocking waiters on backpressure is the intended flow control
		if err := bus.Ping(p); err != nil {
			return fmt.Errorf("cluster: merging shard %d: %w", unit, err)
		}
	}
	for _, t := range traces {
		//lint:ignore lockheld commitMu exists to serialize bus producers; blocking waiters on backpressure is the intended flow control
		if err := bus.Trace(t); err != nil {
			return fmt.Errorf("cluster: merging shard %d: %w", unit, err)
		}
	}
	return nil
}

// reap expires leases that have gone quiet past the TTL by closing
// their connections; the connection handler then requeues the shard.
// Paced on obs.After so the package stays wall-clock-free.
func (c *Coordinator) reap(ctx context.Context, st *runState) {
	interval := c.opts.LeaseTTL / 4
	if interval <= 0 {
		interval = c.opts.LeaseTTL
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-st.doneCh:
			return
		case <-obs.After(interval):
			now := c.opts.Clock()
			st.mu.Lock()
			var stale []Conn
			for _, l := range st.leases {
				if now-l.lastBeat > c.opts.LeaseTTL {
					stale = append(stale, l.conn)
				}
			}
			st.mu.Unlock()
			for _, conn := range stale {
				c.cExpired.Inc()
				conn.Close()
			}
		}
	}
}
