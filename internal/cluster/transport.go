package cluster

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
)

// Conn is one bidirectional byte stream between a worker and the
// coordinator; both the in-process and the TCP transports produce it.
type Conn = io.ReadWriteCloser

// ErrTransportClosed is returned by Accept and Dial on a transport
// that has been shut down.
var ErrTransportClosed = errors.New("cluster: transport closed")

// Listener is the coordinator's accept side. Accept blocks until a
// worker dials, the transport closes, or ctx is done.
type Listener interface {
	Accept(ctx context.Context) (Conn, error)
	Close() error
}

// LocalTransport connects workers to a coordinator inside one process
// over net.Pipe — the deterministic harness the cluster tests (and the
// chaos test) run on. The pipe is synchronous and unbuffered, which is
// exactly the backpressure a real socket's full send buffer applies:
// a worker cannot outrun the coordinator's merge.
type LocalTransport struct {
	conns chan Conn
	done  chan struct{}
	once  sync.Once
}

// NewLocalTransport builds an open transport.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{conns: make(chan Conn), done: make(chan struct{})}
}

// Dial connects a worker: it hands the coordinator side of a fresh
// pipe to the next Accept and returns the worker side.
func (t *LocalTransport) Dial(ctx context.Context) (Conn, error) {
	worker, coord := net.Pipe()
	select {
	case t.conns <- coord:
		return worker, nil
	case <-t.done:
		worker.Close()
		coord.Close()
		return nil, ErrTransportClosed
	case <-ctx.Done():
		worker.Close()
		coord.Close()
		return nil, ctx.Err()
	}
}

// Accept implements Listener.
func (t *LocalTransport) Accept(ctx context.Context) (Conn, error) {
	select {
	case c := <-t.conns:
		return c, nil
	case <-t.done:
		return nil, ErrTransportClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close implements Listener; pending and future Dials fail.
func (t *LocalTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	return nil
}

// tcpListener adapts a net.Listener to the ctx-aware Listener.
type tcpListener struct {
	ln net.Listener
}

// ListenTCP opens the coordinator's TCP accept side and reports the
// bound address (useful with a ":0" addr).
func ListenTCP(addr string) (Listener, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	return &tcpListener{ln: ln}, ln.Addr().String(), nil
}

// Accept implements Listener. Cancelling ctx closes the listener —
// acceptable because a coordinator run owns its listener for life.
func (l *tcpListener) Accept(ctx context.Context) (Conn, error) {
	stop := context.AfterFunc(ctx, func() { l.ln.Close() })
	defer stop()
	c, err := l.ln.Accept()
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	return c, nil
}

func (l *tcpListener) Close() error { return l.ln.Close() }

// DialTCP connects a worker to a coordinator's TCP address.
func DialTCP(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}
