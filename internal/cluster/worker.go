package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wirecodec"
)

// WorkerOptions configures one campaign worker.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator (heartbeats, span
	// attributes, error messages). Defaults to "worker".
	Name string
	// Obs registers the worker's engine and stream instruments; nil
	// runs uninstrumented.
	Obs *obs.Registry
}

// Dialer connects a worker to its coordinator — LocalTransport.Dial
// in-process, DialTCP across machines.
type Dialer func(ctx context.Context) (Conn, error)

// Worker runs campaign shards on behalf of a coordinator: it dials,
// registers, prepares the study world once from the broadcast
// campaign config, then loops lease → run shard → stream records →
// shard_done until the coordinator says shutdown.
type Worker struct {
	opts    WorkerOptions
	cShards *obs.Counter
	txF     *obs.Counter
	txB     *obs.Counter
	rxF     *obs.Counter
	rxB     *obs.Counter
}

// NewWorker builds a worker.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Name == "" {
		opts.Name = "worker"
	}
	reg := opts.Obs
	return &Worker{
		opts:    opts,
		cShards: reg.Counter("worker_shards_done_total"),
		txF:     reg.Counter("worker_stream_tx_frames_total"),
		txB:     reg.Counter("worker_stream_tx_bytes_total"),
		rxF:     reg.Counter("worker_stream_rx_frames_total"),
		rxB:     reg.Counter("worker_stream_rx_bytes_total"),
	}
}

// Run serves shards until the coordinator shuts the fleet down. A read
// failure while awaiting a lease is a normal end of service (the
// coordinator tears connections down when the campaign completes);
// any failure while a lease is held is an error — the coordinator
// will reassign the shard.
func (w *Worker) Run(ctx context.Context, dial Dialer) error {
	conn, err := dial(ctx)
	if err != nil {
		return fmt.Errorf("cluster: worker %s dialing: %w", w.opts.Name, err)
	}
	defer conn.Close()
	fw := wirecodec.NewFrameWriter(conn, wirecodec.Options{Frames: w.txF, Bytes: w.txB})
	fr := wirecodec.NewFrameReader(conn, wirecodec.Options{Frames: w.rxF, Bytes: w.rxB})
	if err := writeControl(fw, msg{Type: msgHello, Worker: w.opts.Name}); err != nil {
		return fmt.Errorf("cluster: worker %s hello: %w", w.opts.Name, err)
	}
	m, err := readControl(fr)
	if err != nil {
		return fmt.Errorf("cluster: worker %s awaiting campaign: %w", w.opts.Name, err)
	}
	if m.Type != msgCampaign || m.Campaign == nil {
		return fmt.Errorf("cluster: worker %s expected campaign, got %q", w.opts.Name, m.Type)
	}
	setup, err := core.Prepare(m.Campaign.coreConfig(w.opts.Obs))
	if err != nil {
		return fmt.Errorf("cluster: worker %s preparing: %w", w.opts.Name, err)
	}
	// One stream writer for the connection's whole life: its dictionary
	// and delta baselines pair with the coordinator's per-connection
	// decoder across shard boundaries.
	wr := wirecodec.NewStreamWriter(fw)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := writeControl(fw, msg{Type: msgLeaseRequest}); err != nil {
			return nil // coordinator gone while idle: clean exit
		}
		m, err := readControl(fr)
		if err != nil {
			return nil // torn down while idle: clean exit
		}
		switch m.Type {
		case msgShutdown:
			return nil
		case msgLease:
			if err := w.runShard(ctx, setup, fw, wr, m); err != nil {
				return err
			}
			w.cShards.Inc()
		default:
			return fmt.Errorf("cluster: worker %s expected lease, got %q", w.opts.Name, m.Type)
		}
	}
}

// runShard executes one leased unit: the campaign restricted to the
// lease's countries and cycle window, streamed through the shared wire
// writer, sealed with a shard_done carrying this unit's record counts
// and the worker's cumulative telemetry.
func (w *Worker) runShard(ctx context.Context, setup *core.Setup, fw *wirecodec.FrameWriter, wr *wirecodec.Writer, grant msg) error {
	p0, t0 := wr.Len()
	stop := func() {}
	if grant.LeaseTTLMs > 0 {
		var hbCtx context.Context
		hbCtx, stop = context.WithCancel(ctx)
		go w.heartbeat(hbCtx, fw, grant.Shard, time.Duration(grant.LeaseTTLMs)*time.Millisecond/3)
	}
	_, _, _, err := setup.RunCampaignsWindow(ctx, grant.Countries, grant.FromCycle, grant.ToCycle, wr)
	stop()
	if err != nil {
		return fmt.Errorf("cluster: worker %s shard %d: %w", w.opts.Name, grant.Shard, err)
	}
	if err := wr.Close(); err != nil {
		return fmt.Errorf("cluster: worker %s flushing shard %d: %w", w.opts.Name, grant.Shard, err)
	}
	p1, t1 := wr.Len()
	return writeControl(fw, w.telemetry(msg{Type: msgShardDone, Shard: grant.Shard, Pings: p1 - p0, Traces: t1 - t0}))
}

// telemetry stamps a control message with the worker's cumulative
// engine counters: cycle-quota exhaustions and injected fault strikes,
// summed across the fault kinds. Both read this worker's own registry
// (zero when the worker runs uninstrumented); the coordinator turns the
// cumulative values into deltas on its cluster_worker_* rollups.
func (w *Worker) telemetry(m msg) msg {
	m.QuotaExhausted = w.opts.Obs.Counter("measure_cycle_quota_exhausted_total").Load()
	m.FaultStrikes = w.opts.Obs.SumCounters("faults_injected_total")
	return m
}

// heartbeat keeps the lease warm while a long shard computes between
// flushes. Write errors are left for the campaign's own sink writes to
// surface; the loop just stops.
func (w *Worker) heartbeat(ctx context.Context, fw *wirecodec.FrameWriter, shard int, every time.Duration) {
	if every <= 0 {
		every = time.Millisecond
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-obs.After(every):
			if writeControl(fw, w.telemetry(msg{Type: msgHeartbeat, Shard: shard})) != nil {
				return
			}
		}
	}
}
