// Package core orchestrates the full reproduction of the study: it
// synthesizes the Internet, generates the Speedchecker and RIPE Atlas
// vantage-point fleets, runs both measurement campaigns, feeds the
// traceroutes through the processing pipeline, computes every table and
// figure of the paper, and renders the experiment report.
//
// This is the system a reader of the paper would run end-to-end: the
// per-figure analyses live in internal/analysis, the substrates below;
// core is the composition.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/report"
	"repro/internal/world"
)

// Config sizes a study run.
type Config struct {
	// Seed drives world synthesis, fleet generation and campaign
	// sampling.
	Seed int64
	// Scale multiplies the paper's fleet sizes (default 0.05; 1.0 is
	// the full 115K+8.5K deployment).
	Scale float64
	// Cycles is the number of country sweeps (default 4; the paper's
	// six months ≈ 12).
	Cycles int
	// ProbeCap bounds the connected probes used per country per cycle
	// (0 = no cap; default 40 keeps dense countries tractable).
	ProbeCap int
	// TargetsPerProbe is the per-cycle region budget per probe
	// (default 8).
	TargetsPerProbe int
	// MinProbes gates countries into the campaign (default 2 at small
	// scales; the paper used 100 at full scale).
	MinProbes int
	// Workers is the measurement concurrency (0 = GOMAXPROCS).
	Workers int
	// FaultProfile names a fault-injection profile ("flaky-wireless",
	// "quota-storm", "partition"; empty or "none" runs fault-free). The
	// campaign engine's retries, circuit breaker and spill handling keep
	// the study completing under every built-in profile.
	FaultProfile string
	// Scenario names a longitudinal event scenario ("cable-cut",
	// "region-launch"; empty or "none" runs event-free). Scenarios fire
	// at the campaign midpoint and are seeded into the simulator and the
	// campaign engine, so the same seed replays the same event — and the
	// /v1/changepoint detector can prove it happened.
	Scenario string
	// DiurnalAmplitude modulates probe availability over the virtual day
	// (0 = off; see measure.Config.DiurnalAmplitude).
	DiurnalAmplitude float64
	// CycleQuota bounds measurement requests per cycle (0 = unlimited;
	// see measure.Config.CycleQuota).
	CycleQuota int
	// Obs registers every layer's instruments — campaign engine, fault
	// injections, fan-out bus, store feed — on one registry, so a single
	// /v1/metricsz scrape covers the whole spine. Nil runs
	// uninstrumented. Tracing rides the ctx handed to RunCampaigns
	// instead (see obs.ContextWithTracer).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.Cycles == 0 {
		c.Cycles = 4
	}
	if c.ProbeCap == 0 {
		c.ProbeCap = 40
	}
	if c.TargetsPerProbe == 0 {
		c.TargetsPerProbe = 8
	}
	if c.MinProbes == 0 {
		c.MinProbes = 2
	}
	return c
}

// Study is a completed end-to-end run.
type Study struct {
	Config     Config
	World      *world.World
	Sim        *netsim.Simulator
	SC         *probes.Fleet
	Atlas      *probes.Fleet
	Store      *dataset.Store
	Processed  []pipeline.Processed
	SCStats    measure.Stats
	AtlasStats measure.Stats
}

// FromStore rebuilds a Study around an existing dataset — the
// re-analysis path for data previously written by ExportDataset (or
// converted from Atlas format). The world and fleets are regenerated
// from the seed, so it must match the seed the dataset was collected
// under for IP→ASN resolution to line up.
func FromStore(cfg Config, store *dataset.Store) (*Study, error) {
	cfg = cfg.withDefaults()
	w, err := world.Build(world.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: building world: %w", err)
	}
	return &Study{
		Config: cfg, World: w, Sim: netsim.New(w),
		SC:        probes.GenerateSpeedchecker(w, probes.Config{Seed: cfg.Seed, Scale: cfg.Scale}),
		Atlas:     probes.GenerateAtlas(w, probes.Config{Seed: cfg.Seed, Scale: 1}),
		Store:     store,
		Processed: pipeline.NewProcessor(w).ProcessAll(store),
	}, nil
}

// Setup is a prepared-but-not-yet-run study: the synthesized world,
// both simulators, the fault plan and both fleets. Prepare builds it;
// RunCampaigns executes the campaigns — either materializing (no
// sinks), or streaming every record into caller-supplied sinks so a
// columnar store or an export file can be built while the campaign
// runs, under bounded memory.
type Setup struct {
	Config Config
	World  *world.World
	// Sim carries the fault injector (when the profile asks for one)
	// and drives the Speedchecker campaign.
	Sim *netsim.Simulator
	// AtlasSim is fault-free: Atlas is wired, and the profiles model
	// the Speedchecker side only. It aliases Sim when no plan is set.
	AtlasSim *netsim.Simulator
	Plan     *faults.Plan
	// Scenario is the resolved longitudinal event scenario (nil when
	// none): its Events ride both simulators, and its RegionAvailable
	// gate is handed to the campaign engine's target selection.
	Scenario *netsim.Scenario
	SC       *probes.Fleet
	Atlas    *probes.Fleet
}

// Prepare synthesizes the world, resolves the fault profile and
// generates both vantage-point fleets, without running anything.
func Prepare(cfg Config) (*Setup, error) {
	cfg = cfg.withDefaults()
	w, err := world.Build(world.Config{Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("core: building world: %w", err)
	}
	sim := netsim.New(w)
	plan, err := faults.Profile(cfg.FaultProfile, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	atSim := sim
	if plan != nil {
		sim.Faults = plan
		// A fresh simulator strips the injector; the RTT model itself is
		// a pure function of the world, so the values are unchanged.
		atSim = netsim.New(w)
	}
	var regionIDs []string
	for _, r := range w.Inventory.Regions() {
		regionIDs = append(regionIDs, r.ID)
	}
	scn, err := netsim.ScenarioProfile(cfg.Scenario, cfg.Cycles, regionIDs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if scn != nil {
		// Both simulators carry the event plan: the additive RTT
		// penalties leave the RNG stream untouched, so unaffected
		// measurements stay bit-identical to a scenario-free run.
		sim.Events = scn.Events
		atSim.Events = scn.Events
	}
	return &Setup{
		Config: cfg, World: w, Sim: sim, AtlasSim: atSim, Plan: plan, Scenario: scn,
		SC:    probes.GenerateSpeedchecker(w, probes.Config{Seed: cfg.Seed, Scale: cfg.Scale}),
		Atlas: probes.GenerateAtlas(w, probes.Config{Seed: cfg.Seed, Scale: 1}),
	}, nil
}

// RunCampaigns executes the Speedchecker and Atlas campaigns. With no
// sinks, both campaigns materialize and the returned store holds every
// record — the legacy batch path. With sinks, every record streams
// through a bounded fan-out bus into each sink instead, both campaigns
// share the one sink set (so a store.Feed sees both platforms), and
// the returned store holds only records spilled after a sink
// degradation. Sinks must tolerate repeated Close: each campaign
// closes (flushes) them when it finishes.
//
// A sink degradation does not abort the run: the campaigns complete,
// the undelivered remainder lands in the returned store (check
// Stats.SinkDegraded / Stats.Spilled), and the error reports the first
// sink failure. The store is nil only when a campaign itself fails.
func (s *Setup) RunCampaigns(ctx context.Context, sinks ...dataset.Sink) (*dataset.Store, measure.Stats, measure.Stats, error) {
	return s.RunCampaignsOver(ctx, nil, sinks...)
}

// RunCampaignsOver is RunCampaigns restricted to a set of country codes
// — the shard unit of the distributed campaign plane (internal/
// cluster). An empty set means the full sweep. Because probe and target
// selection, retry jitter and every record value are pure functions of
// (probe, country, cycle), a fault-free restricted run emits exactly
// the records the full sweep emits for those countries, in the same
// per-probe order; fault profiles and daily quotas couple countries
// through the shared virtual clock, so sharded runs should stay
// fault-free (the coordinator's default).
func (s *Setup) RunCampaignsOver(ctx context.Context, countries []string, sinks ...dataset.Sink) (*dataset.Store, measure.Stats, measure.Stats, error) {
	return s.RunCampaignsWindow(ctx, countries, 0, 0, sinks...)
}

// RunCampaignsWindow is RunCampaignsOver further restricted to the
// half-open cycle window [fromCycle, toCycle) on the campaign time axis
// (zero bounds are unconstrained) — the unit the cluster plane's
// window-scoped leases replay. The Atlas campaign runs a single cycle
// (cycle 0), so it only executes when the window contains cycle 0.
func (s *Setup) RunCampaignsWindow(ctx context.Context, countries []string, fromCycle, toCycle int, sinks ...dataset.Sink) (*dataset.Store, measure.Stats, measure.Stats, error) {
	cfg := s.Config
	scCfg := measure.Config{
		Seed:                     cfg.Seed,
		Cycles:                   cfg.Cycles,
		ProbesPerCountry:         cfg.ProbeCap,
		TargetsPerProbe:          cfg.TargetsPerProbe,
		MinProbesPerCountry:      cfg.MinProbes,
		Countries:                countries,
		FromCycle:                fromCycle,
		ToCycle:                  toCycle,
		DiurnalAmplitude:         cfg.DiurnalAmplitude,
		CycleQuota:               cfg.CycleQuota,
		RequestsPerMinute:        1000, // virtual-clock pacing only
		Workers:                  cfg.Workers,
		BothPingProtocols:        measure.FlagOn,
		Traceroutes:              true,
		NeighborContinentTargets: true,
		Sinks:                    sinks,
		Obs:                      cfg.Obs,
	}
	if s.Scenario != nil {
		scCfg.RegionAvailable = s.Scenario.RegionAvailable
	}
	if s.Plan != nil {
		// The control-plane injector is instrumented
		// (faults_injected_total by profile and kind); the simulator keeps
		// the bare plan so data-plane consultations of the same trace
		// draws are not double-counted.
		scCfg.Faults = faults.Instrument(s.Plan, s.Plan.Name, cfg.Obs)
	}
	scCampaign, err := measure.New(s.Sim, s.SC, scCfg)
	if err != nil {
		return nil, measure.Stats{}, measure.Stats{}, fmt.Errorf("core: speedchecker campaign: %w", err)
	}
	store, scStats, scErr := scCampaign.Run(ctx)
	if scErr != nil && !scStats.SinkDegraded {
		return nil, scStats, measure.Stats{}, fmt.Errorf("core: speedchecker campaign: %w", scErr)
	}
	// Atlas probes are always connected; a single uncapped cycle keeps
	// the platform's geographic proportions intact.
	atCfg := scCfg
	atCfg.Cycles = 1
	atCfg.ProbesPerCountry = 0
	atCfg.Faults = nil
	atCampaign, err := measure.New(s.AtlasSim, s.Atlas, atCfg)
	if err != nil {
		return nil, scStats, measure.Stats{}, fmt.Errorf("core: atlas campaign: %w", err)
	}
	atStore, atStats, atErr := atCampaign.Run(ctx)
	if atErr != nil && !atStats.SinkDegraded {
		return nil, scStats, atStats, fmt.Errorf("core: atlas campaign: %w", atErr)
	}
	store.Merge(atStore)
	var err2 error
	if scErr != nil || atErr != nil {
		err2 = fmt.Errorf("core: %w", errors.Join(scErr, atErr))
	}
	return store, scStats, atStats, err2
}

// Run executes the whole study, materializing the full dataset. It
// respects ctx cancellation.
func Run(ctx context.Context, cfg Config) (*Study, error) {
	setup, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	store, scStats, atStats, err := setup.RunCampaigns(ctx)
	if err != nil {
		return nil, err
	}
	return &Study{
		Config: setup.Config, World: setup.World, Sim: setup.Sim,
		SC: setup.SC, Atlas: setup.Atlas,
		Store:     store,
		Processed: pipeline.NewProcessor(setup.World).ProcessAll(store),
		SCStats:   scStats, AtlasStats: atStats,
	}, nil
}

// Results bundles every analysis of the paper's evaluation.
type Results struct {
	SCDensity    analysis.FleetDensity
	AtlasDensity analysis.FleetDensity
	SCCloseness  []analysis.Closeness // Fig 14 (A.1)

	LatencyMap []analysis.CountryLatency // Fig 3
	Thresholds analysis.ThresholdSummary // §4.1 takeaway

	ContinentCDFs []analysis.ContinentDistribution // Fig 4
	PlatformDiffs []analysis.PlatformDiff          // Fig 5
	MatchedDiffs  []analysis.MatchedDiff           // Fig 16
	Protocols     []analysis.ProtocolComparison    // Fig 15

	AfricaBoxes       []analysis.InterContinentBox // Fig 6a
	SouthAmericaBoxes []analysis.InterContinentBox // Fig 6b

	LastMileAll     []analysis.LastMileImpact // Fig 7
	LastMileGlobal  []analysis.LastMileImpact // Fig 7 "Global"
	LastMileNearest []analysis.LastMileImpact // Fig 19
	CvByContinent   []analysis.CvGroup        // Fig 8
	CvByCountry     []analysis.CvGroup        // Fig 9

	Interconnections []analysis.InterconnectShare // Fig 10
	Pervasiveness    []analysis.PervasivenessRow  // Fig 11

	GermanyUK    CaseStudy // Fig 12
	JapanIndia   CaseStudy // Fig 13
	UkraineUK    CaseStudy // Fig 17
	BahrainIndia CaseStudy // Fig 18

	ProviderConsistency []analysis.ProviderConsistency // §8 conclusion
	Flattening          []analysis.Flattening          // §2.1 flat-Internet view
	EdgeScenarios       []edge.Scenario                // §7 what-if
	EdgeVerdicts        []edge.Verdict
	FiveGToday          []edge.FiveG // §7: measured early-5G last mile (×0.5)
	FiveGPromised       []edge.FiveG // §7: the promised 1 ms radio (×0.05)
}

// CaseStudy is one §6.2 / A.4 country-pair study.
type CaseStudy struct {
	Matrix  analysis.PeeringMatrix
	Latency []analysis.PeeringLatency
}

// AnalyzeConfig tunes sample floors for the analyses.
type AnalyzeConfig struct {
	// MinMapSamples is the per-country floor for the Figure 3 map
	// (default 10; the paper used ≥100 probes per country).
	MinMapSamples int
	// MinCvSamples is the per-probe floor for Figures 8/9 (default 5;
	// the paper used 10).
	MinCvSamples int
	// MinCaseSamples is the per-provider floor for case-study latency
	// boxes (default 5; the paper used 100).
	MinCaseSamples int
	// MinMatchedGroups gates continents in Figure 16 (default 3).
	MinMatchedGroups int
}

func (c AnalyzeConfig) withDefaults() AnalyzeConfig {
	if c.MinMapSamples == 0 {
		c.MinMapSamples = 10
	}
	if c.MinCvSamples == 0 {
		c.MinCvSamples = 5
	}
	if c.MinCaseSamples == 0 {
		c.MinCaseSamples = 5
	}
	if c.MinMatchedGroups == 0 {
		c.MinMatchedGroups = 3
	}
	return c
}

// Analyze computes every figure and table from the collected dataset.
// All ping-derived figures draw from one single-pass collection over
// the store (analysis.CollectStore) instead of seven independent
// full scans; the results are bit-identical to the batch entry points.
func (s *Study) Analyze(cfg AnalyzeConfig) Results {
	cfg = cfg.withDefaults()
	caseStudy := func(vp, dc string) CaseStudy {
		return CaseStudy{
			Matrix:  analysis.CaseStudyMatrix(s.Processed, s.World.Registry, vp, dc, 5),
			Latency: analysis.CaseStudyLatency(s.Processed, vp, dc, cfg.MinCaseSamples),
		}
	}
	agg := analysis.CollectStore(s.Store)
	lm := agg.LatencyMap(cfg.MinMapSamples)
	scenarios := edge.Evaluate(s.Processed, 4)
	return Results{
		SCDensity:    analysis.Density(s.SC),
		AtlasDensity: analysis.Density(s.Atlas),
		SCCloseness:  analysis.FleetCloseness(s.SC, 10),

		LatencyMap: lm,
		Thresholds: analysis.Thresholds(lm),

		ContinentCDFs: agg.ContinentDistributions("speedchecker"),
		PlatformDiffs: agg.PlatformComparison(),
		MatchedDiffs:  agg.MatchedComparison(cfg.MinMatchedGroups),
		Protocols:     agg.ProtocolComparisons(),

		AfricaBoxes: agg.InterContinental(
			[]string{"DZ", "EG", "ET", "KE", "MA", "SN", "TN", "ZA"},
			[]geo.Continent{geo.EU, geo.NA, geo.AF}),
		SouthAmericaBoxes: agg.InterContinental(
			[]string{"AR", "BO", "BR", "CL", "CO", "EC", "PE", "VE"},
			[]geo.Continent{geo.NA, geo.SA}),

		LastMileAll:     analysis.LastMile(s.Processed, false),
		LastMileGlobal:  analysis.GlobalLastMile(s.Processed),
		LastMileNearest: analysis.LastMile(s.Processed, true),
		CvByContinent:   analysis.LastMileCvByContinent(s.Processed, cfg.MinCvSamples),
		CvByCountry:     analysis.LastMileCvByCountry(s.Processed, analysis.Fig9Countries, cfg.MinCvSamples),

		Interconnections: analysis.Interconnections(s.Processed),
		Pervasiveness:    analysis.Pervasiveness(s.Processed),

		GermanyUK:    caseStudy("DE", "GB"),
		JapanIndia:   caseStudy("JP", "IN"),
		UkraineUK:    caseStudy("UA", "GB"),
		BahrainIndia: caseStudy("BH", "IN"),

		ProviderConsistency: agg.ProviderComparison(cfg.MinCaseSamples),
		Flattening:          analysis.PathFlattening(s.Processed),
		EdgeScenarios:       scenarios,
		EdgeVerdicts:        edge.Verdicts(scenarios),
		FiveGToday:          edge.Evaluate5G(s.Processed, 0.5),
		FiveGPromised:       edge.Evaluate5G(s.Processed, 0.05),
	}
}

// WriteReport renders the full experiment report: every table and
// figure of the paper, regenerated from this run.
func (s *Study) WriteReport(w io.Writer, r Results) {
	report.Rule(w, "Setup (§3)")
	report.Table1(w, s.World.Inventory)
	report.Density(w, r.SCDensity, 10)
	report.Density(w, r.AtlasDensity, 10)
	report.CampaignStats(w, "Speedchecker campaign", s.SCStats)
	report.CampaignStats(w, "RIPE Atlas campaign", s.AtlasStats)
	report.DataQuality(w, "Speedchecker", s.SCStats)
	np, nt := s.Store.Len()
	fmt.Fprintf(w, "dataset: %d pings, %d traceroutes\n", np, nt)
	cov := s.World.UserCoverageOf(s.SC.ISPNumbers())
	atCov := s.World.UserCoverageOf(s.Atlas.ISPNumbers())
	fmt.Fprintf(w, "user-population coverage: speedchecker %.1f%%, atlas %.1f%%\n", 100*cov, 100*atCov)
	dcs := map[geo.Continent]int{}
	for _, region := range s.World.Inventory.Regions() {
		dcs[region.Continent]++
	}
	report.GeoDensities(w, analysis.GeoDensities(r.SCDensity, r.AtlasDensity, dcs, s.Config.Scale))

	report.Rule(w, "Cloud access latency (§4)")
	report.LatencyMap(w, r.LatencyMap)
	report.ContinentCDFs(w, r.ContinentCDFs, 8)
	report.PlatformDiffs(w, r.PlatformDiffs)
	report.InterContinental(w, r.AfricaBoxes)
	report.InterContinental(w, r.SouthAmericaBoxes)

	report.Rule(w, "Wireless last mile (§5)")
	report.LastMile(w, r.LastMileAll, r.LastMileGlobal, "Figure 7: last-mile share and absolute latency")
	report.CvGroups(w, r.CvByContinent, "Figure 8: last-mile Cv per continent")
	report.CvGroups(w, r.CvByCountry, "Figure 9: last-mile Cv in representative countries")

	report.ProviderConsistency(w, r.ProviderConsistency)

	report.Rule(w, "Cloud & ISP interconnections (§6)")
	report.Interconnections(w, r.Interconnections)
	report.Pervasiveness(w, r.Pervasiveness)
	report.Flattening(w, r.Flattening)
	report.CaseStudy(w, r.GermanyUK.Matrix, r.GermanyUK.Latency, "Figure 12 (DE→UK)")
	report.CaseStudy(w, r.JapanIndia.Matrix, r.JapanIndia.Latency, "Figure 13 (JP→IN)")

	report.Rule(w, "Edge computing discussion (§7)")
	report.EdgeScenarios(w, r.EdgeScenarios, r.EdgeVerdicts)
	report.FiveG(w, r.FiveGToday, r.FiveGPromised)

	report.Rule(w, "Appendices")
	report.Closeness(w, r.SCCloseness, 12)
	report.Protocols(w, r.Protocols)
	report.Matched(w, r.MatchedDiffs)
	report.CaseStudy(w, r.UkraineUK.Matrix, r.UkraineUK.Latency, "Figure 17 (UA→UK)")
	report.CaseStudy(w, r.BahrainIndia.Matrix, r.BahrainIndia.Latency, "Figure 18 (BH→IN)")
	report.LastMile(w, r.LastMileNearest, nil, "Figure 19: last-mile share towards the closest datacenter")
}

// ExportDataset writes the collected records in the published dataset's
// formats: pings as CSV, traceroutes as JSONL.
func (s *Study) ExportDataset(pings, traces io.Writer) error {
	if err := dataset.WritePingsCSV(pings, s.Store.Pings); err != nil {
		return fmt.Errorf("core: exporting pings: %w", err)
	}
	if err := dataset.WriteTracesJSONL(traces, s.Store.Traces); err != nil {
		return fmt.Errorf("core: exporting traceroutes: %w", err)
	}
	return nil
}
