package core

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/store"
)

var (
	studyOnce sync.Once
	study     *Study
	results   Results
)

func testStudy(t *testing.T) (*Study, Results) {
	t.Helper()
	studyOnce.Do(func() {
		s, err := Run(context.Background(), Config{Seed: 1, Scale: 0.03, Cycles: 3, TargetsPerProbe: 6})
		if err != nil {
			panic(err)
		}
		study = s
		results = s.Analyze(AnalyzeConfig{MinMapSamples: 6, MinCvSamples: 4, MinCaseSamples: 4})
	})
	return study, results
}

func TestEndToEndStudy(t *testing.T) {
	s, r := testStudy(t)
	np, nt := s.Store.Len()
	if np == 0 || nt == 0 {
		t.Fatalf("study collected nothing: %d pings, %d traces", np, nt)
	}
	if len(s.Processed) != nt {
		t.Errorf("processed %d of %d traces", len(s.Processed), nt)
	}
	if len(r.LatencyMap) < 40 {
		t.Errorf("latency map countries = %d", len(r.LatencyMap))
	}
	if len(r.ContinentCDFs) != 6 {
		t.Errorf("continent CDFs = %d", len(r.ContinentCDFs))
	}
	if len(r.Interconnections) != 9 {
		t.Errorf("Fig 10 providers = %d", len(r.Interconnections))
	}
	if len(r.GermanyUK.Matrix.Rows) == 0 {
		t.Error("Fig 12a empty")
	}
	if r.Thresholds.Countries == 0 || r.Thresholds.UnderHRT == 0 {
		t.Errorf("thresholds degenerate: %+v", r.Thresholds)
	}
	if s.SCStats.Pings == 0 || s.AtlasStats.Pings == 0 {
		t.Error("campaign stats empty")
	}
}

func TestReportRendering(t *testing.T) {
	s, r := testStudy(t)
	var buf bytes.Buffer
	s.WriteReport(&buf, r)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
		"Figure 12", "Figure 13", "Figure 15", "Figure 16",
		"Figure 17", "Figure 18", "Figure 19",
		"takeaway", "user-population coverage", "geoDensity",
		"Provider consistency", "Edge what-if",
		"Deutsche Telekom", "MSFT",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 4000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestExportDataset(t *testing.T) {
	s, _ := testStudy(t)
	var pings, traces bytes.Buffer
	if err := s.ExportDataset(&pings, &traces); err != nil {
		t.Fatal(err)
	}
	if pings.Len() == 0 || traces.Len() == 0 {
		t.Error("empty export")
	}
	// Header row plus one line per record.
	np, nt := s.Store.Len()
	if gotLines := strings.Count(pings.String(), "\n"); gotLines != np+1 {
		t.Errorf("ping CSV lines = %d, want %d", gotLines, np+1)
	}
	if gotLines := strings.Count(traces.String(), "\n"); gotLines != nt {
		t.Errorf("trace JSONL lines = %d, want %d", gotLines, nt)
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Seed: 1, Scale: 0.01}); err == nil {
		t.Fatal("cancelled run should fail")
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale == 0 || c.Cycles == 0 || c.ProbeCap == 0 || c.TargetsPerProbe == 0 || c.MinProbes == 0 {
		t.Errorf("config defaults missing: %+v", c)
	}
	a := AnalyzeConfig{}.withDefaults()
	if a.MinMapSamples == 0 || a.MinCvSamples == 0 || a.MinCaseSamples == 0 || a.MinMatchedGroups == 0 {
		t.Errorf("analyze defaults missing: %+v", a)
	}
}

func TestFromStoreReanalysis(t *testing.T) {
	s, r := testStudy(t)
	// Round-trip the dataset through the published formats, rebuild a
	// study around it, and check the analyses agree.
	var pings, traces bytes.Buffer
	if err := s.ExportDataset(&pings, &traces); err != nil {
		t.Fatal(err)
	}
	loadedPings, err := readPings(&pings)
	if err != nil {
		t.Fatal(err)
	}
	loadedTraces, err := readTraces(&traces)
	if err != nil {
		t.Fatal(err)
	}
	re, err := FromStore(Config{Seed: s.Config.Seed, Scale: s.Config.Scale},
		dataset.FromRecords(loadedPings, loadedTraces))
	if err != nil {
		t.Fatal(err)
	}
	r2 := re.Analyze(AnalyzeConfig{MinMapSamples: 6, MinCvSamples: 4, MinCaseSamples: 4})
	if len(r2.LatencyMap) != len(r.LatencyMap) {
		t.Fatalf("re-analysis map: %d vs %d countries", len(r2.LatencyMap), len(r.LatencyMap))
	}
	for i := range r.LatencyMap {
		a, b := r.LatencyMap[i], r2.LatencyMap[i]
		if a.Country != b.Country {
			t.Fatalf("map entry %d differs: %+v vs %+v", i, a, b)
		}
		// The CSV export quantizes RTTs to microseconds, which can flip
		// nearest-region ties for co-located datacenters; allow a small
		// drift.
		if diff := a.MedianMs - b.MedianMs; diff < -0.5 || diff > 0.5 {
			t.Fatalf("%s median drifted: %v vs %v", a.Country, a.MedianMs, b.MedianMs)
		}
	}
	// Peering classification must survive the round trip exactly.
	s1 := r.Interconnections
	s2 := r2.Interconnections
	if len(s1) != len(s2) {
		t.Fatalf("interconnections: %d vs %d providers", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Provider != s2[i].Provider || s1[i].N != s2[i].N {
			t.Fatalf("interconnect row %d differs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}

func readPings(r io.Reader) ([]dataset.PingRecord, error)        { return dataset.ReadPingsCSV(r) }
func readTraces(r io.Reader) ([]dataset.TracerouteRecord, error) { return dataset.ReadTracesJSONL(r) }

// TestRunCampaignsStreaming drives one prepared study into a
// materializing StoreSink and an incremental store.Feed at once, and
// requires the sealed feed to answer queries exactly like the batch
// store built from the materialized records of the same stream.
func TestRunCampaignsStreaming(t *testing.T) {
	setup, err := Prepare(Config{Seed: 2, Scale: 0.02, Cycles: 1, TargetsPerProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if setup.World == nil || setup.SC == nil || setup.Atlas == nil || setup.Sim == nil {
		t.Fatal("Prepare left fields unset")
	}
	if setup.Plan != nil || setup.AtlasSim != setup.Sim {
		t.Error("fault-free setup should share one simulator and carry no plan")
	}

	materialized := dataset.NewStoreSink(nil)
	feed := store.NewFeed(pipeline.NewProcessor(setup.World), store.Options{Shards: 4})
	spill, scStats, atStats, err := setup.RunCampaigns(context.Background(), materialized, feed)
	if err != nil {
		t.Fatal(err)
	}
	if scStats.SinkDegraded || atStats.SinkDegraded {
		t.Fatalf("healthy sinks degraded: sc %+v, atlas %+v", scStats, atStats)
	}
	if np, nt := spill.Len(); np != 0 || nt != 0 {
		t.Fatalf("spill store should be empty: %d pings, %d traces", np, nt)
	}
	ds := materialized.Store
	if np, nt := ds.Len(); np == 0 || nt == 0 {
		t.Fatalf("nothing streamed: %d pings, %d traces", np, nt)
	}

	sealed := feed.Seal()
	batch := store.FromDataset(ds, pipeline.NewProcessor(setup.World).ProcessAll(ds), store.Options{Shards: 4})
	if got, want := sealed.LatencyMap(6), batch.LatencyMap(6); !reflect.DeepEqual(got, want) {
		t.Error("streamed feed's LatencyMap diverges from batch")
	}
	if got, want := sealed.PeeringShares(), batch.PeeringShares(); !reflect.DeepEqual(got, want) {
		t.Error("streamed feed's PeeringShares diverge from batch")
	}
	if got, want := sealed.Summary(), batch.Summary(); !reflect.DeepEqual(got, want) {
		t.Errorf("streamed feed's Summary diverges from batch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestPrepareFaultProfile checks a plan splits the simulators.
func TestPrepareFaultProfile(t *testing.T) {
	setup, err := Prepare(Config{Seed: 1, FaultProfile: "flaky-wireless"})
	if err != nil {
		t.Fatal(err)
	}
	if setup.Plan == nil {
		t.Fatal("profile produced no plan")
	}
	if setup.AtlasSim == setup.Sim {
		t.Error("atlas must run on a fault-free simulator")
	}
	if setup.Sim.Faults == nil {
		t.Error("speedchecker simulator lost the injector")
	}
}
