package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/sample"
)

// pingHeader is the CSV column set for ping records, matching the
// published dataset's field inventory.
var pingHeader = []string{
	"probe", "platform", "vp_country", "vp_continent", "isp", "access",
	"region", "provider", "dc_country", "dc_continent", "dc_ip",
	"protocol", "rtt_ms", "cycle",
}

// WritePingsCSV streams ping records as CSV with a header row.
func WritePingsCSV(w io.Writer, recs []PingRecord) error {
	pw := NewPingWriter(w)
	for i := range recs {
		if err := pw.Write(recs[i]); err != nil {
			return err
		}
	}
	return pw.Flush()
}

// ReadPingsCSV parses the output of WritePingsCSV.
func ReadPingsCSV(r io.Reader) ([]PingRecord, error) {
	var out []PingRecord
	err := ScanPings(r, func(rec PingRecord) error {
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScanPings streams the output of WritePingsCSV through fn, one record
// at a time and in constant memory — the ingest path the measurement
// store uses to consume full-scale exports without materializing a
// []PingRecord first. Scanning stops at the first error fn returns.
func ScanPings(r io.Reader, fn func(PingRecord) error) error {
	return sample.Drain(NewPingCursor(r), fn)
}

// PingCursor is a pull cursor (sample.Source) over a CSV ping export.
// The header is validated lazily on the first Next call; decode errors
// are terminal and sticky.
type PingCursor struct {
	cr      *csv.Reader
	line    int
	started bool
	done    bool
	err     error
}

// NewPingCursor wraps r, which must carry the WritePingsCSV format.
func NewPingCursor(r io.Reader) *PingCursor {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	return &PingCursor{cr: cr, line: 1}
}

// Next implements sample.Source.
func (c *PingCursor) Next() (PingRecord, bool, error) {
	if c.err != nil || c.done {
		return PingRecord{}, false, c.err
	}
	if !c.started {
		c.started = true
		header, err := c.cr.Read()
		if err != nil {
			c.err = fmt.Errorf("dataset: reading header: %w", err)
			return PingRecord{}, false, c.err
		}
		if len(header) != len(pingHeader) {
			c.err = fmt.Errorf("dataset: header has %d columns, want %d", len(header), len(pingHeader))
			return PingRecord{}, false, c.err
		}
	}
	c.line++
	row, err := c.cr.Read()
	if err == io.EOF {
		c.done = true
		return PingRecord{}, false, nil
	}
	if err != nil {
		c.err = err
		return PingRecord{}, false, c.err
	}
	rec, err := parsePingRow(row)
	if err != nil {
		c.err = fmt.Errorf("dataset: line %d: %w", c.line, err)
		return PingRecord{}, false, c.err
	}
	return rec, true, nil
}

func parsePingRow(row []string) (PingRecord, error) {
	var r PingRecord
	vpCont, err := geo.ParseContinent(row[3])
	if err != nil {
		return r, err
	}
	ispNum, err := strconv.ParseUint(row[4], 10, 32)
	if err != nil {
		return r, fmt.Errorf("bad isp %q", row[4])
	}
	access, err := parseAccess(row[5])
	if err != nil {
		return r, err
	}
	dcCont, err := geo.ParseContinent(row[9])
	if err != nil {
		return r, err
	}
	ip, err := netaddr.ParseIP(row[10])
	if err != nil {
		return r, err
	}
	proto, err := ParseProtocol(row[11])
	if err != nil {
		return r, err
	}
	rtt, err := strconv.ParseFloat(row[12], 64)
	if err != nil {
		return r, fmt.Errorf("bad rtt %q", row[12])
	}
	cycle, err := strconv.Atoi(row[13])
	if err != nil {
		return r, fmt.Errorf("bad cycle %q", row[13])
	}
	r = PingRecord{
		VP: VantagePoint{
			ProbeID: row[0], Platform: row[1], Country: row[2],
			Continent: vpCont, ISP: asn.Number(ispNum), Access: access,
		},
		Target: Target{
			Region: row[6], Provider: row[7], Country: row[8],
			Continent: dcCont, IP: ip,
		},
		Protocol: proto, RTTms: rtt, Cycle: cycle,
		// VTime is derived, not a CSV column; the pure (cycle, country)
		// function reproduces the producer's stamp.
		VTime: sample.VTimeOf(cycle, row[2]),
	}
	return r, nil
}

func parseAccess(s string) (lastmile.Access, error) {
	switch s {
	case "home":
		return lastmile.WiFi, nil
	case "cell":
		return lastmile.Cellular, nil
	case "wired":
		return lastmile.Wired, nil
	}
	return 0, fmt.Errorf("dataset: unknown access %q", s)
}

// jsonTrace is the JSONL wire form of a TracerouteRecord.
type jsonTrace struct {
	Probe     string    `json:"probe"`
	Platform  string    `json:"platform"`
	Country   string    `json:"vp_country"`
	Continent string    `json:"vp_continent"`
	ISP       uint32    `json:"isp"`
	Access    string    `json:"access"`
	Region    string    `json:"region"`
	Provider  string    `json:"provider"`
	DCCountry string    `json:"dc_country"`
	DCCont    string    `json:"dc_continent"`
	DCIP      string    `json:"dc_ip"`
	Cycle     int       `json:"cycle"`
	Hops      []jsonHop `json:"hops"`
}

type jsonHop struct {
	TTL       int     `json:"ttl"`
	IP        string  `json:"ip,omitempty"`
	RTT       float64 `json:"rtt_ms"`
	Responded bool    `json:"responded"`
}

// WriteTracesJSONL streams traceroutes as one JSON object per line.
func WriteTracesJSONL(w io.Writer, recs []TracerouteRecord) error {
	tw := NewTraceWriter(w)
	for i := range recs {
		if err := tw.Write(recs[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// ReadTracesJSONL parses the output of WriteTracesJSONL.
func ReadTracesJSONL(r io.Reader) ([]TracerouteRecord, error) {
	var out []TracerouteRecord
	err := ScanTraces(r, func(rec TracerouteRecord) error {
		out = append(out, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScanTraces streams the output of WriteTracesJSONL through fn, one
// traceroute at a time — the constant-memory counterpart of
// ReadTracesJSONL.
func ScanTraces(r io.Reader, fn func(TracerouteRecord) error) error {
	return sample.DrainTraces(NewTraceCursor(r), fn)
}

// TraceCursor is a pull cursor (sample.TraceSource) over a JSONL
// traceroute export. Decode errors are terminal and sticky.
type TraceCursor struct {
	dec  *json.Decoder
	line int
	done bool
	err  error
}

// NewTraceCursor wraps r, which must carry the WriteTracesJSONL format.
func NewTraceCursor(r io.Reader) *TraceCursor {
	return &TraceCursor{dec: json.NewDecoder(bufio.NewReader(r))}
}

// Next implements sample.TraceSource.
func (c *TraceCursor) Next() (TracerouteRecord, bool, error) {
	if c.err != nil || c.done {
		return TracerouteRecord{}, false, c.err
	}
	c.line++
	var jt jsonTrace
	if err := c.dec.Decode(&jt); err == io.EOF {
		c.done = true
		return TracerouteRecord{}, false, nil
	} else if err != nil {
		c.err = fmt.Errorf("dataset: trace line %d: %w", c.line, err)
		return TracerouteRecord{}, false, c.err
	}
	rec, err := traceFromJSON(&jt)
	if err != nil {
		c.err = fmt.Errorf("dataset: trace line %d: %w", c.line, err)
		return TracerouteRecord{}, false, c.err
	}
	return rec, true, nil
}

func traceFromJSON(jt *jsonTrace) (TracerouteRecord, error) {
	vpCont, err := geo.ParseContinent(jt.Continent)
	if err != nil {
		return TracerouteRecord{}, err
	}
	dcCont, err := geo.ParseContinent(jt.DCCont)
	if err != nil {
		return TracerouteRecord{}, err
	}
	access, err := parseAccess(jt.Access)
	if err != nil {
		return TracerouteRecord{}, err
	}
	dcIP, err := netaddr.ParseIP(jt.DCIP)
	if err != nil {
		return TracerouteRecord{}, err
	}
	rec := TracerouteRecord{
		VP: VantagePoint{
			ProbeID: jt.Probe, Platform: jt.Platform, Country: jt.Country,
			Continent: vpCont, ISP: asn.Number(jt.ISP), Access: access,
		},
		Target: Target{
			Region: jt.Region, Provider: jt.Provider, Country: jt.DCCountry,
			Continent: dcCont, IP: dcIP,
		},
		Cycle: jt.Cycle,
		VTime: sample.VTimeOf(jt.Cycle, jt.Country),
	}
	for _, jh := range jt.Hops {
		h := Hop{TTL: jh.TTL, RTTms: jh.RTT, Responded: jh.Responded}
		if jh.Responded {
			ip, err := netaddr.ParseIP(jh.IP)
			if err != nil {
				return TracerouteRecord{}, err
			}
			h.IP = ip
		}
		rec.Hops = append(rec.Hops, h)
	}
	return rec, nil
}
