package dataset

import (
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/netaddr"
)

// validExport renders one ping CSV and one trace JSONL through the real
// writers, so corruption tests start from a byte-exact valid stream.
func validExport(t *testing.T) (string, string) {
	t.Helper()
	ip, err := netaddr.ParseIP("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	ping := PingRecord{
		VP:     VantagePoint{ProbeID: "p1", Platform: "speedchecker", Country: "DE", Continent: geo.EU},
		Target: Target{Region: "eu-central-1", Provider: "aws", Country: "DE", Continent: geo.EU, IP: ip},
		RTTms:  12.5,
	}
	trace := TracerouteRecord{
		VP:     ping.VP,
		Target: ping.Target,
		Hops:   []Hop{{TTL: 1, IP: ip, RTTms: 3.2, Responded: true}},
	}
	var pings, traces strings.Builder
	if err := WritePingsCSV(&pings, []PingRecord{ping, ping}); err != nil {
		t.Fatal(err)
	}
	if err := WriteTracesJSONL(&traces, []TracerouteRecord{trace, trace}); err != nil {
		t.Fatal(err)
	}
	return pings.String(), traces.String()
}

func TestScanPingsEmptyInput(t *testing.T) {
	err := ScanPings(strings.NewReader(""), func(PingRecord) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "reading header") {
		t.Fatalf("empty input: err = %v, want header error", err)
	}
}

func TestScanPingsHeaderOnly(t *testing.T) {
	csvText, _ := validExport(t)
	header := csvText[:strings.IndexByte(csvText, '\n')+1]
	n := 0
	if err := ScanPings(strings.NewReader(header), func(PingRecord) error { n++; return nil }); err != nil {
		t.Fatalf("header-only input: %v", err)
	}
	if n != 0 {
		t.Fatalf("header-only input produced %d records", n)
	}
}

func TestScanPingsShortHeader(t *testing.T) {
	err := ScanPings(strings.NewReader("probe,platform\n"), func(PingRecord) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("short header: err = %v, want column-count error", err)
	}
}

func TestScanPingsTruncatedRow(t *testing.T) {
	csvText, _ := validExport(t)
	lines := strings.SplitAfter(csvText, "\n")
	// Cut the last data row mid-field: fewer columns than the header.
	truncated := lines[0] + lines[1] + strings.Join(strings.Split(lines[2], ",")[:4], ",")
	n := 0
	err := ScanPings(strings.NewReader(truncated), func(PingRecord) error { n++; return nil })
	if err == nil {
		t.Fatal("truncated row scanned cleanly")
	}
	if n != 1 {
		t.Fatalf("delivered %d records before the truncated row, want 1", n)
	}
}

func TestScanPingsMalformedMidStream(t *testing.T) {
	csvText, _ := validExport(t)
	corrupted := strings.Replace(csvText, "12.500000", "not-a-number", 1)
	n := 0
	err := ScanPings(strings.NewReader(corrupted), func(PingRecord) error { n++; return nil })
	if err == nil || !strings.Contains(err.Error(), "dataset: line 2") {
		t.Fatalf("malformed row: err = %v, want line-2 error", err)
	}
	if n != 0 {
		t.Fatalf("delivered %d records past the malformed row", n)
	}
}

func TestPingCursorErrorIsSticky(t *testing.T) {
	csvText, _ := validExport(t)
	corrupted := strings.Replace(csvText, "tcp", "quic", 1)
	cur := NewPingCursor(strings.NewReader(corrupted))
	_, ok, err := cur.Next()
	if ok || err == nil {
		t.Fatalf("first Next = %v, %v; want terminal error", ok, err)
	}
	_, ok, err2 := cur.Next()
	if ok || err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("second Next = %v, %v; want the same sticky error", ok, err2)
	}
}

func TestScanTracesEmptyInput(t *testing.T) {
	n := 0
	if err := ScanTraces(strings.NewReader(""), func(TracerouteRecord) error { n++; return nil }); err != nil {
		t.Fatalf("empty JSONL: %v", err)
	}
	if n != 0 {
		t.Fatalf("empty JSONL produced %d records", n)
	}
}

func TestScanTracesTruncatedLine(t *testing.T) {
	_, jsonl := validExport(t)
	// Drop the tail of the second object, leaving unterminated JSON.
	truncated := jsonl[:len(jsonl)-20]
	n := 0
	err := ScanTraces(strings.NewReader(truncated), func(TracerouteRecord) error { n++; return nil })
	if err == nil || !strings.Contains(err.Error(), "trace line 2") {
		t.Fatalf("truncated JSONL: err = %v, want line-2 error", err)
	}
	if n != 1 {
		t.Fatalf("delivered %d traces before the truncation, want 1", n)
	}
}

func TestScanTracesMalformedMidStream(t *testing.T) {
	_, jsonl := validExport(t)
	lines := strings.SplitAfter(jsonl, "\n")
	corrupted := lines[0] + strings.Replace(lines[1], `"EU"`, `"XX"`, 1)
	n := 0
	err := ScanTraces(strings.NewReader(corrupted), func(TracerouteRecord) error { n++; return nil })
	if err == nil || !strings.Contains(err.Error(), "trace line 2") {
		t.Fatalf("malformed trace: err = %v, want line-2 error", err)
	}
	if n != 1 {
		t.Fatalf("delivered %d traces before the malformed one, want 1", n)
	}
}

func TestTraceCursorErrorIsSticky(t *testing.T) {
	cur := NewTraceCursor(strings.NewReader("{\"probe\":"))
	_, ok, err := cur.Next()
	if ok || err == nil {
		t.Fatalf("first Next = %v, %v; want terminal error", ok, err)
	}
	_, ok, err2 := cur.Next()
	if ok || err2 == nil {
		t.Fatalf("second Next = %v, %v; want the same sticky error", ok, err2)
	}
}
