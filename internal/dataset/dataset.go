// Package dataset defines the measurement records the campaign
// produces — ping data points and traceroutes, mirroring the fields of
// the published dataset (§3.3) — together with an in-memory store and
// CSV/JSONL codecs.
package dataset

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
)

// Protocol is the measurement protocol. The campaign runs TCP pings and
// ICMP traceroutes in parallel (§3.3).
type Protocol uint8

// Protocols.
const (
	TCP Protocol = iota
	ICMP
)

// String returns the protocol name.
func (p Protocol) String() string {
	if p == ICMP {
		return "icmp"
	}
	return "tcp"
}

// ParseProtocol is the inverse of String.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "tcp":
		return TCP, nil
	case "icmp":
		return ICMP, nil
	}
	return 0, fmt.Errorf("dataset: unknown protocol %q", s)
}

// VantagePoint captures the probe-side fields every record carries.
type VantagePoint struct {
	ProbeID   string
	Platform  string // "speedchecker" or "atlas"
	Country   string
	Continent geo.Continent
	ISP       asn.Number
	Access    lastmile.Access
}

// Target captures the endpoint-side fields.
type Target struct {
	Region    string // region ID
	Provider  string // provider code
	Country   string
	Continent geo.Continent
	IP        netaddr.IP
}

// PingRecord is one round-trip measurement.
type PingRecord struct {
	VP       VantagePoint
	Target   Target
	Protocol Protocol
	RTTms    float64
	// Cycle is the measurement cycle index (the campaign cycles through
	// all countries roughly every two weeks, §3.3).
	Cycle int
}

// Hop is one traceroute hop as captured on the wire: the pipeline adds
// AS attribution later.
type Hop struct {
	TTL       int
	IP        netaddr.IP
	RTTms     float64
	Responded bool
}

// TracerouteRecord is one ICMP traceroute.
type TracerouteRecord struct {
	VP     VantagePoint
	Target Target
	Hops   []Hop
	Cycle  int
}

// RTTms returns the end-to-end round trip of the traceroute — the RTT
// reported by the final responding hop — or 0 when the trace never
// reached a responder.
func (t *TracerouteRecord) RTTms() float64 {
	for i := len(t.Hops) - 1; i >= 0; i-- {
		if t.Hops[i].Responded {
			return t.Hops[i].RTTms
		}
	}
	return 0
}

// Reached reports whether the trace reached the target address.
func (t *TracerouteRecord) Reached() bool {
	n := len(t.Hops)
	return n > 0 && t.Hops[n-1].Responded && t.Hops[n-1].IP == t.Target.IP
}

// Store accumulates measurement records in memory. The zero value is
// ready for use. Store is not safe for concurrent mutation; the
// campaign engine serializes writes through a single collector.
type Store struct {
	Pings  []PingRecord
	Traces []TracerouteRecord
}

// AddPing appends a ping record.
func (s *Store) AddPing(r PingRecord) { s.Pings = append(s.Pings, r) }

// AddTrace appends a traceroute record.
func (s *Store) AddTrace(r TracerouteRecord) { s.Traces = append(s.Traces, r) }

// PingFilter selects ping records; zero fields match everything.
type PingFilter struct {
	Platform        string
	Protocol        *Protocol
	VPContinent     geo.Continent
	VPCountry       string
	Provider        string
	TargetContinent geo.Continent
	TargetCountry   string
}

func (f PingFilter) match(r *PingRecord) bool {
	if f.Platform != "" && r.VP.Platform != f.Platform {
		return false
	}
	if f.Protocol != nil && r.Protocol != *f.Protocol {
		return false
	}
	if f.VPContinent != geo.ContinentUnknown && r.VP.Continent != f.VPContinent {
		return false
	}
	if f.VPCountry != "" && r.VP.Country != f.VPCountry {
		return false
	}
	if f.Provider != "" && r.Target.Provider != f.Provider {
		return false
	}
	if f.TargetContinent != geo.ContinentUnknown && r.Target.Continent != f.TargetContinent {
		return false
	}
	if f.TargetCountry != "" && r.Target.Country != f.TargetCountry {
		return false
	}
	return true
}

// FilterPings returns the ping records matching f, in insertion order.
func (s *Store) FilterPings(f PingFilter) []PingRecord {
	var out []PingRecord
	for i := range s.Pings {
		if f.match(&s.Pings[i]) {
			out = append(out, s.Pings[i])
		}
	}
	return out
}

// RTTs extracts the RTT series of the ping records matching f.
func (s *Store) RTTs(f PingFilter) []float64 {
	var out []float64
	for i := range s.Pings {
		if f.match(&s.Pings[i]) {
			out = append(out, s.Pings[i].RTTms)
		}
	}
	return out
}

// Len returns (pings, traceroutes) counts.
func (s *Store) Len() (int, int) { return len(s.Pings), len(s.Traces) }

// Merge appends all records of other into s.
func (s *Store) Merge(other *Store) {
	s.Pings = append(s.Pings, other.Pings...)
	s.Traces = append(s.Traces, other.Traces...)
}
