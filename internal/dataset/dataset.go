// Package dataset defines the measurement records the campaign
// produces — ping data points and traceroutes, mirroring the fields of
// the published dataset (§3.3) — together with an in-memory store and
// CSV/JSONL codecs.
//
// The record model itself lives in repro/internal/sample; this package
// re-exports it under its historical names (PingRecord,
// TracerouteRecord, ...) via type aliases, so producers and consumers
// share one model rather than converting between two.
package dataset

import (
	"repro/internal/geo"
	"repro/internal/sample"
)

// Protocol is the measurement protocol. The campaign runs TCP pings and
// ICMP traceroutes in parallel (§3.3).
type Protocol = sample.Protocol

// Protocols.
const (
	TCP  = sample.TCP
	ICMP = sample.ICMP
)

// ParseProtocol is the inverse of Protocol.String.
func ParseProtocol(s string) (Protocol, error) { return sample.ParseProtocol(s) }

// VantagePoint captures the probe-side fields every record carries.
type VantagePoint = sample.VantagePoint

// Target captures the endpoint-side fields.
type Target = sample.Target

// PingRecord is one round-trip measurement.
type PingRecord = sample.Sample

// Hop is one traceroute hop as captured on the wire: the pipeline adds
// AS attribution later.
type Hop = sample.Hop

// TracerouteRecord is one ICMP traceroute.
type TracerouteRecord = sample.TraceSample

// Source is a pull cursor over ping records; see sample.Source for the
// contract.
type Source = sample.Source

// TraceSource is a pull cursor over traceroute records.
type TraceSource = sample.TraceSource

// Store accumulates measurement records in memory. The zero value is
// ready for use. Store is not safe for concurrent mutation; the
// campaign engine serializes writes through a single collector.
type Store struct {
	Pings  []PingRecord
	Traces []TracerouteRecord
}

// FromRecords builds a Store from pre-existing record slices (without
// copying). It is the sanctioned way to wrap decoded slices — direct
// composite literals over Pings/Traces are rejected by cloudyvet so the
// sink path stays the only ingestion door.
func FromRecords(pings []PingRecord, traces []TracerouteRecord) *Store {
	s := &Store{}
	s.Pings = pings
	s.Traces = traces
	return s
}

// AddPing appends a ping record.
func (s *Store) AddPing(r PingRecord) { s.Pings = append(s.Pings, r) }

// AddTrace appends a traceroute record.
func (s *Store) AddTrace(r TracerouteRecord) { s.Traces = append(s.Traces, r) }

// PingSource returns a cursor over the stored ping records in insertion
// order. The store must not be mutated while the cursor is live.
func (s *Store) PingSource() Source { return sample.NewSliceSource(s.Pings) }

// TraceSource returns a cursor over the stored traceroute records.
func (s *Store) TraceSource() TraceSource { return sample.NewSliceTraceSource(s.Traces) }

// PingFilter selects ping records; zero fields match everything.
type PingFilter struct {
	Platform        string
	Protocol        *Protocol
	VPContinent     geo.Continent
	VPCountry       string
	Provider        string
	TargetContinent geo.Continent
	TargetCountry   string
}

func (f PingFilter) match(r *PingRecord) bool {
	if f.Platform != "" && r.VP.Platform != f.Platform {
		return false
	}
	if f.Protocol != nil && r.Protocol != *f.Protocol {
		return false
	}
	if f.VPContinent != geo.ContinentUnknown && r.VP.Continent != f.VPContinent {
		return false
	}
	if f.VPCountry != "" && r.VP.Country != f.VPCountry {
		return false
	}
	if f.Provider != "" && r.Target.Provider != f.Provider {
		return false
	}
	if f.TargetContinent != geo.ContinentUnknown && r.Target.Continent != f.TargetContinent {
		return false
	}
	if f.TargetCountry != "" && r.Target.Country != f.TargetCountry {
		return false
	}
	return true
}

// FilterPings returns the ping records matching f, in insertion order.
func (s *Store) FilterPings(f PingFilter) []PingRecord {
	var out []PingRecord
	for i := range s.Pings {
		if f.match(&s.Pings[i]) {
			out = append(out, s.Pings[i])
		}
	}
	return out
}

// RTTs extracts the RTT series of the ping records matching f.
func (s *Store) RTTs(f PingFilter) []float64 {
	var out []float64
	for i := range s.Pings {
		if f.match(&s.Pings[i]) {
			out = append(out, s.Pings[i].RTTms)
		}
	}
	return out
}

// Len returns (pings, traceroutes) counts.
func (s *Store) Len() (int, int) { return len(s.Pings), len(s.Traces) }

// Merge appends all records of other into s.
func (s *Store) Merge(other *Store) {
	s.Pings = append(s.Pings, other.Pings...)
	s.Traces = append(s.Traces, other.Traces...)
}
