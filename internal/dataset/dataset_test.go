package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/sample"
)

func samplePing(i int) PingRecord {
	return PingRecord{
		VP: VantagePoint{
			ProbeID: "sc-DE-00001", Platform: "speedchecker", Country: "DE",
			Continent: geo.EU, ISP: 3320, Access: lastmile.WiFi,
		},
		Target: Target{
			Region: "amzn-EU-frankfurt", Provider: "AMZN", Country: "DE",
			Continent: geo.EU, IP: netaddr.MustParseIP("104.0.1.10"),
		},
		Protocol: TCP, RTTms: 31.25 + float64(i), Cycle: i,
		VTime: sample.VTimeOf(i, "DE"),
	}
}

func sampleTrace() TracerouteRecord {
	return TracerouteRecord{
		VP: VantagePoint{
			ProbeID: "sc-JP-00002", Platform: "speedchecker", Country: "JP",
			Continent: geo.AS, ISP: 2516, Access: lastmile.Cellular,
		},
		Target: Target{
			Region: "gcp-AS-tokyo", Provider: "GCP", Country: "JP",
			Continent: geo.AS, IP: netaddr.MustParseIP("104.16.1.10"),
		},
		Cycle: 3,
		VTime: sample.VTimeOf(3, "JP"),
		Hops: []Hop{
			{TTL: 1, IP: netaddr.MustParseIP("62.99.0.1"), RTTms: 21.0, Responded: true},
			{TTL: 2, Responded: false},
			{TTL: 3, IP: netaddr.MustParseIP("104.16.0.9"), RTTms: 29.5, Responded: true},
			{TTL: 4, IP: netaddr.MustParseIP("104.16.1.10"), RTTms: 33.2, Responded: true},
		},
	}
}

func TestPingCSVRoundTrip(t *testing.T) {
	recs := []PingRecord{samplePing(0), samplePing(1), samplePing(2)}
	var buf bytes.Buffer
	if err := WritePingsCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPingsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestPingCSVErrors(t *testing.T) {
	if _, err := ReadPingsCSV(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadPingsCSV(strings.NewReader("a,b\n")); err == nil {
		t.Error("short header should fail")
	}
	var buf bytes.Buffer
	if err := WritePingsCSV(&buf, []PingRecord{samplePing(0)}); err != nil {
		t.Fatal(err)
	}
	broken := strings.Replace(buf.String(), "tcp", "gopher", 1)
	if _, err := ReadPingsCSV(strings.NewReader(broken)); err == nil {
		t.Error("bad protocol should fail")
	}
	broken = strings.Replace(buf.String(), "EU", "XX", 1)
	if _, err := ReadPingsCSV(strings.NewReader(broken)); err == nil {
		t.Error("bad continent should fail")
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	recs := []TracerouteRecord{sampleTrace(), sampleTrace()}
	recs[1].VP.ProbeID = "sc-JP-00003"
	var buf bytes.Buffer
	if err := WriteTracesJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("JSONL lines = %d, want 2", lines)
	}
	got, err := ReadTracesJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestTraceJSONLErrors(t *testing.T) {
	if _, err := ReadTracesJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("bad json should fail")
	}
	if recs, err := ReadTracesJSONL(strings.NewReader("")); err != nil || len(recs) != 0 {
		t.Error("empty input should yield no records")
	}
}

func TestTraceDerivedFields(t *testing.T) {
	tr := sampleTrace()
	if got := tr.RTTms(); got != 33.2 {
		t.Errorf("RTTms = %v", got)
	}
	if !tr.Reached() {
		t.Error("trace should have reached target")
	}
	// Truncated trace: last responder is not the target.
	tr.Hops = tr.Hops[:3]
	if tr.Reached() {
		t.Error("truncated trace should not be 'reached'")
	}
	if got := tr.RTTms(); got != 29.5 {
		t.Errorf("truncated RTTms = %v", got)
	}
	empty := TracerouteRecord{}
	if empty.RTTms() != 0 || empty.Reached() {
		t.Error("empty trace should report zero RTT, not reached")
	}
}

func TestStoreFilters(t *testing.T) {
	var s Store
	r1 := samplePing(0)
	r2 := samplePing(1)
	r2.VP.Country, r2.VP.Continent = "JP", geo.AS
	r2.Protocol = ICMP
	r3 := samplePing(2)
	r3.Target.Provider = "GCP"
	r3.VP.Platform = "atlas"
	for _, r := range []PingRecord{r1, r2, r3} {
		s.AddPing(r)
	}
	s.AddTrace(sampleTrace())

	np, nt := s.Len()
	if np != 3 || nt != 1 {
		t.Fatalf("Len = %d, %d", np, nt)
	}
	if got := len(s.FilterPings(PingFilter{})); got != 3 {
		t.Errorf("empty filter matched %d", got)
	}
	if got := len(s.FilterPings(PingFilter{VPCountry: "JP"})); got != 1 {
		t.Errorf("country filter matched %d", got)
	}
	tcp := TCP
	if got := len(s.FilterPings(PingFilter{Protocol: &tcp})); got != 2 {
		t.Errorf("protocol filter matched %d", got)
	}
	if got := len(s.FilterPings(PingFilter{Provider: "GCP"})); got != 1 {
		t.Errorf("provider filter matched %d", got)
	}
	if got := len(s.FilterPings(PingFilter{Platform: "atlas"})); got != 1 {
		t.Errorf("platform filter matched %d", got)
	}
	if got := len(s.FilterPings(PingFilter{VPContinent: geo.EU, TargetContinent: geo.EU})); got != 2 {
		t.Errorf("continent filter matched %d", got)
	}
	if got := len(s.FilterPings(PingFilter{TargetCountry: "FR"})); got != 0 {
		t.Errorf("non-matching filter matched %d", got)
	}
	rtts := s.RTTs(PingFilter{VPCountry: "DE"})
	if len(rtts) != 2 || rtts[0] != r1.RTTms || rtts[1] != r3.RTTms {
		t.Errorf("RTTs = %v", rtts)
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	for _, p := range []Protocol{TCP, ICMP} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("protocol round trip %v failed", p)
		}
	}
	if _, err := ParseProtocol("udp"); err == nil {
		t.Error("unknown protocol should fail")
	}
}

func TestStoreSink(t *testing.T) {
	sink := NewStoreSink(nil)
	if err := sink.Ping(samplePing(0)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Trace(sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if np, nt := sink.Store.Len(); np != 1 || nt != 1 {
		t.Errorf("store sink holds %d/%d records, want 1/1", np, nt)
	}
	// Wrapping an existing store appends to it.
	existing := &Store{}
	existing.AddPing(samplePing(1))
	sink2 := NewStoreSink(existing)
	if err := sink2.Ping(samplePing(2)); err != nil {
		t.Fatal(err)
	}
	if np, _ := existing.Len(); np != 2 {
		t.Errorf("wrapped store holds %d pings, want 2", np)
	}
}
