package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadPingsCSV must never panic on arbitrary input, and must accept
// its own writer's output.
func FuzzReadPingsCSV(f *testing.F) {
	var buf bytes.Buffer
	_ = WritePingsCSV(&buf, []PingRecord{samplePing(0)})
	f.Add(buf.String())
	f.Add("")
	f.Add("a,b,c\n1,2,3\n")
	f.Fuzz(func(t *testing.T, s string) {
		recs, err := ReadPingsCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		// Whatever parsed must re-serialize and re-parse to the same
		// record count.
		var out bytes.Buffer
		if err := WritePingsCSV(&out, recs); err != nil {
			t.Fatalf("accepted records fail to serialize: %v", err)
		}
		back, err := ReadPingsCSV(&out)
		if err != nil || len(back) != len(recs) {
			t.Fatalf("round trip broke: %v, %d vs %d", err, len(back), len(recs))
		}
	})
}

// FuzzReadTracesJSONL must never panic on arbitrary input.
func FuzzReadTracesJSONL(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteTracesJSONL(&buf, []TracerouteRecord{sampleTrace()})
	f.Add(buf.String())
	f.Add("")
	f.Add("{}\n")
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = ReadTracesJSONL(strings.NewReader(s))
	})
}
