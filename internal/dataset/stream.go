package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sample"
)

// Sink consumes measurement records as they are produced. The campaign
// engine calls it from a single collector goroutine, so implementations
// need no locking. Close flushes buffered output. The interface is
// defined in repro/internal/sample (aliased here) so the fan-out
// sample.Bus and every sink below are interchangeable.
type Sink = sample.Sink

// PingWriter streams ping records as CSV, one call per record. It is
// the incremental form of WritePingsCSV.
type PingWriter struct {
	cw          *csv.Writer
	wroteHeader bool
}

// NewPingWriter wraps w.
func NewPingWriter(w io.Writer) *PingWriter {
	return &PingWriter{cw: csv.NewWriter(w)}
}

// Write appends one record (emitting the header first).
func (pw *PingWriter) Write(r PingRecord) error {
	if !pw.wroteHeader {
		if err := pw.cw.Write(pingHeader); err != nil {
			return err
		}
		pw.wroteHeader = true
	}
	return pw.cw.Write(pingRow(&r))
}

// Flush completes the stream.
func (pw *PingWriter) Flush() error {
	if !pw.wroteHeader {
		// An empty dataset still gets a parseable header.
		if err := pw.cw.Write(pingHeader); err != nil {
			return err
		}
		pw.wroteHeader = true
	}
	pw.cw.Flush()
	return pw.cw.Error()
}

func pingRow(r *PingRecord) []string {
	return []string{
		r.VP.ProbeID, r.VP.Platform, r.VP.Country, r.VP.Continent.String(),
		strconv.FormatUint(uint64(r.VP.ISP), 10), r.VP.Access.String(),
		r.Target.Region, r.Target.Provider, r.Target.Country,
		r.Target.Continent.String(), r.Target.IP.String(),
		r.Protocol.String(), strconv.FormatFloat(r.RTTms, 'f', 6, 64),
		strconv.Itoa(r.Cycle),
	}
}

// TraceWriter streams traceroutes as JSONL, one call per record.
type TraceWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewTraceWriter wraps w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriter(w)
	return &TraceWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one traceroute.
func (tw *TraceWriter) Write(r TracerouteRecord) error {
	return tw.enc.Encode(traceToJSON(&r))
}

// Flush completes the stream.
func (tw *TraceWriter) Flush() error { return tw.bw.Flush() }

func traceToJSON(r *TracerouteRecord) *jsonTrace {
	jt := &jsonTrace{
		Probe: r.VP.ProbeID, Platform: r.VP.Platform, Country: r.VP.Country,
		Continent: r.VP.Continent.String(), ISP: uint32(r.VP.ISP),
		Access: r.VP.Access.String(), Region: r.Target.Region,
		Provider: r.Target.Provider, DCCountry: r.Target.Country,
		DCCont: r.Target.Continent.String(), DCIP: r.Target.IP.String(),
		Cycle: r.Cycle,
	}
	for _, h := range r.Hops {
		jh := jsonHop{TTL: h.TTL, RTT: h.RTTms, Responded: h.Responded}
		if h.Responded {
			jh.IP = h.IP.String()
		}
		jt.Hops = append(jt.Hops, jh)
	}
	return jt
}

// FileSink streams pings and traceroutes to two writers in the
// published dataset's formats.
type FileSink struct {
	pings  *PingWriter
	traces *TraceWriter
}

// NewFileSink wraps the two destinations.
func NewFileSink(pings, traces io.Writer) *FileSink {
	return &FileSink{pings: NewPingWriter(pings), traces: NewTraceWriter(traces)}
}

// Ping implements Sink.
func (s *FileSink) Ping(r PingRecord) error { return s.pings.Write(r) }

// Trace implements Sink.
func (s *FileSink) Trace(r TracerouteRecord) error { return s.traces.Write(r) }

// Close flushes both streams.
func (s *FileSink) Close() error {
	if err := s.pings.Flush(); err != nil {
		return fmt.Errorf("dataset: flushing pings: %w", err)
	}
	if err := s.traces.Flush(); err != nil {
		return fmt.Errorf("dataset: flushing traces: %w", err)
	}
	return nil
}

// StoreSink is a Sink backed by an in-memory Store — useful when a
// campaign should exercise the streaming path (including its error
// handling) while keeping the records queryable afterwards.
type StoreSink struct{ Store *Store }

// NewStoreSink wraps store (allocating one if nil).
func NewStoreSink(store *Store) *StoreSink {
	if store == nil {
		store = &Store{}
	}
	return &StoreSink{Store: store}
}

// Ping implements Sink.
func (s *StoreSink) Ping(r PingRecord) error { s.Store.AddPing(r); return nil }

// Trace implements Sink.
func (s *StoreSink) Trace(r TracerouteRecord) error { s.Store.AddTrace(r); return nil }

// Close implements Sink.
func (s *StoreSink) Close() error { return nil }
