package dnssim

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netaddr"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 1})

func TestWireRoundTrip(t *testing.T) {
	rtt := []byte{1, 2, 3, 4}
	msg := &Message{
		ID: 0xBEEF, Response: true, Authoritative: true,
		RecursionDesired: true, RecursionAvailable: true,
		Questions: []Question{{Name: "vm.example.test", Type: TypeA, Class: ClassIN}},
		Answers: []RR{
			{Name: "vm.example.test", Type: TypeA, Class: ClassIN, TTL: 300, Data: rtt},
		},
	}
	pkt, err := msg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != msg.ID || !got.Response || !got.Authoritative ||
		!got.RecursionDesired || !got.RecursionAvailable || got.Rcode != 0 {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0] != msg.Questions[0] {
		t.Errorf("questions mismatch: %+v", got.Questions)
	}
	if len(got.Answers) != 1 || got.Answers[0].Name != "vm.example.test" ||
		string(got.Answers[0].Data) != string(rtt) || got.Answers[0].TTL != 300 {
		t.Errorf("answers mismatch: %+v", got.Answers)
	}
}

func TestWireCompressionPointers(t *testing.T) {
	// Hand-build a response using a compression pointer for the answer
	// name (offset 12 = the question name), as real servers emit.
	var pkt []byte
	pkt = be16(pkt, 0x1234)
	pkt = be16(pkt, flagQR)
	pkt = be16(pkt, 1) // QD
	pkt = be16(pkt, 1) // AN
	pkt = be16(pkt, 0)
	pkt = be16(pkt, 0)
	name, _ := encodeName("a.bc.de")
	pkt = append(pkt, name...)
	pkt = be16(pkt, TypeA)
	pkt = be16(pkt, ClassIN)
	pkt = append(pkt, 0xc0, 12) // pointer to offset 12
	pkt = be16(pkt, TypeA)
	pkt = be16(pkt, ClassIN)
	pkt = append(pkt, 0, 0, 1, 44) // TTL
	pkt = be16(pkt, 4)
	pkt = append(pkt, 9, 9, 9, 9)

	m, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "a.bc.de" {
		t.Errorf("pointer-decoded name = %q", m.Answers[0].Name)
	}
	if m.Answers[0].TTL != 300 {
		t.Errorf("TTL = %d", m.Answers[0].TTL)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil packet accepted")
	}
	if _, err := Decode(make([]byte, 5)); err == nil {
		t.Error("short packet accepted")
	}
	// Compression loop: pointer to itself.
	var pkt []byte
	pkt = be16(pkt, 1)
	pkt = be16(pkt, 0)
	pkt = be16(pkt, 1)
	pkt = be16(pkt, 0)
	pkt = be16(pkt, 0)
	pkt = be16(pkt, 0)
	pkt = append(pkt, 0xc0, 12, 0, 1, 0, 1)
	if _, err := Decode(pkt); err == nil {
		t.Error("compression loop accepted")
	}
	// Bad label in encoding.
	m := &Message{Questions: []Question{{Name: "a..b", Type: TypeA, Class: ClassIN}}}
	if _, err := m.Encode(); err == nil {
		t.Error("empty label accepted")
	}
}

func TestWireDecodeFuzz(t *testing.T) {
	// Random bytes must never panic the decoder.
	f := func(b []byte) bool {
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestZoneForward(t *testing.T) {
	z := NewZone(testW)
	if len(z.Hostnames()) != 195 {
		t.Fatalf("catalogue size = %d, want 195 regions", len(z.Hostnames()))
	}
	for _, r := range testW.Inventory.Regions() {
		ip, ok := z.LookupA(RegionHostname(r.ID))
		if !ok {
			t.Fatalf("no A record for %s", r.ID)
		}
		if ip != testW.RegionIP(r) {
			t.Fatalf("%s resolves to %v, want %v", r.ID, ip, testW.RegionIP(r))
		}
	}
	if _, ok := z.LookupA("nope." + Suffix); ok {
		t.Error("unknown name resolved")
	}
	// Case- and dot-insensitive.
	name := strings.ToUpper(RegionHostname(testW.Inventory.Regions()[0].ID)) + "."
	if _, ok := z.LookupA(name); !ok {
		t.Error("lookup should be case-insensitive and accept trailing dots")
	}
}

func TestZoneReverse(t *testing.T) {
	z := NewZone(testW)
	// A German ISP router: embedded country hint must say DE.
	isp := testW.AccessISPs("DE")[0]
	ptr, ok := z.LookupPTR(testW.RouterIP(isp.Number, 7))
	if !ok {
		t.Fatal("no PTR for a known router")
	}
	if cc, ok := CountryHint(ptr); !ok || cc != "DE" {
		t.Errorf("PTR %q carries hint %q, want DE", ptr, cc)
	}
	if !strings.Contains(ptr, slugify(isp.Name)) {
		t.Errorf("PTR %q does not name the operator %q", ptr, slugify(isp.Name))
	}
	// Private/unknown space has no name.
	if _, ok := z.LookupPTR(netaddr.MustParseIP("192.168.0.1")); ok {
		t.Error("private space has a PTR")
	}
	if _, ok := z.LookupPTR(netaddr.MustParseIP("8.8.8.8")); ok {
		t.Error("unannounced space has a PTR")
	}
	// Multi-PoP carriers embed different countries in different slices.
	telia := testW.Tier1s()[0]
	prefix, _ := testW.Prefix(telia.Number)
	hints := map[string]bool{}
	step := prefix.NumAddresses() / 16
	for i := uint64(0); i < 16; i++ {
		if name, ok := z.LookupPTR(prefix.Nth(i * step)); ok {
			if cc, ok := CountryHint(name); ok {
				hints[cc] = true
			}
		}
	}
	if len(hints) < 4 {
		t.Errorf("Tier-1 rDNS hints cover only %d countries", len(hints))
	}
}

func TestCountryHintRejects(t *testing.T) {
	for _, s := range []string{"", "foo", "r1.zz.carrier.net", "r1.de.carrier.org", "a.b"} {
		if _, ok := CountryHint(s); ok {
			t.Errorf("CountryHint(%q) should fail", s)
		}
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Telia Carrier":         "telia-carrier",
		"NTT Global IP Network": "ntt-global-ip-network",
		"1&1 Versatel":          "1-1-versatel",
		"Telefonica BR (Vivo)":  "telefonica-br-vivo",
		"  weird   spacing  ":   "weird-spacing",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestReverseNameRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := netaddr.IP(v)
		got, ok := parseReverseName(ReverseName(ip))
		return ok && got == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, s := range []string{"x.in-addr.arpa", "1.2.3.in-addr.arpa", "1.2.3.4.ip6.arpa", "256.1.1.1.in-addr.arpa"} {
		if _, ok := parseReverseName(s); ok {
			t.Errorf("parseReverseName(%q) should fail", s)
		}
	}
}

// startServer runs a zone server on loopback for the duration of the
// test.
func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := NewServer(NewZone(testW), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return srv
}

func TestServerEndToEnd(t *testing.T) {
	srv := startServer(t)
	c := NewClient(srv.Addr())

	region := testW.Inventory.Regions()[3]
	ip, err := c.QueryA(RegionHostname(region.ID))
	if err != nil {
		t.Fatal(err)
	}
	if ip != testW.RegionIP(region) {
		t.Errorf("A answer %v, want %v", ip, testW.RegionIP(region))
	}

	ptr, err := c.QueryPTR(ip)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ptr, ".net") {
		t.Errorf("PTR answer %q", ptr)
	}

	if _, err := c.QueryA("missing." + Suffix); !errors.Is(err, ErrNXDomain) {
		t.Errorf("NXDOMAIN expected, got %v", err)
	}
	if _, err := c.QueryPTR(netaddr.MustParseIP("192.168.0.1")); !errors.Is(err, ErrNXDomain) {
		t.Errorf("private PTR should be NXDOMAIN, got %v", err)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	srv := startServer(t)
	regions := testW.Inventory.Regions()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(srv.Addr())
			r := regions[i%len(regions)]
			ip, err := c.QueryA(RegionHostname(r.ID))
			if err != nil {
				errs <- err
				return
			}
			if ip != testW.RegionIP(r) {
				errs <- errors.New("wrong answer")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	srv := startServer(t)
	// Raw garbage must be dropped without killing the server.
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{1, 2, 3})
	conn.Close()
	time.Sleep(20 * time.Millisecond)
	// Still answering afterwards.
	c := NewClient(srv.Addr())
	if _, err := c.QueryA(RegionHostname(testW.Inventory.Regions()[0].ID)); err != nil {
		t.Fatalf("server died after garbage: %v", err)
	}
}

func TestServerUnsupportedTypes(t *testing.T) {
	srv := startServer(t)
	c := NewClient(srv.Addr())
	// Query an MX record (type 15): NOTIMPL.
	_, err := c.roundTrip(Question{Name: "x." + Suffix, Type: 15, Class: ClassIN})
	if err == nil || errors.Is(err, ErrNXDomain) {
		t.Errorf("unsupported type should fail with rcode, got %v", err)
	}
}
