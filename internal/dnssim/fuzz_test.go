package dnssim

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the wire decoder with arbitrary datagrams; it must
// never panic, and anything it accepts must re-encode losslessly enough
// to decode again (idempotence of the accepted subset).
func FuzzDecode(f *testing.F) {
	// Seed corpus: a real query, a real response, and compression.
	q := &Message{ID: 7, RecursionDesired: true,
		Questions: []Question{{Name: "vm.cloudy.test", Type: TypeA, Class: ClassIN}}}
	pkt, _ := q.Encode()
	f.Add(pkt)
	rtt := []byte{10, 0, 0, 1}
	r := &Message{ID: 7, Response: true,
		Questions: []Question{{Name: "vm.cloudy.test", Type: TypeA, Class: ClassIN}},
		Answers:   []RR{{Name: "vm.cloudy.test", Type: TypeA, Class: ClassIN, TTL: 60, Data: rtt}}}
	pkt2, _ := r.Encode()
	f.Add(pkt2)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xc0}, 40)) // pointer storm

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re, err := m.Encode()
		if err != nil {
			return // names with bad labels can't round-trip; fine
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoded message no longer decodes: %v", err)
		}
	})
}
