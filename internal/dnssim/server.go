package dnssim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/netaddr"
)

// Server answers A and PTR queries for a zone over UDP. Create with
// NewServer, start with Serve, stop by cancelling the context.
type Server struct {
	zone *Zone
	conn *net.UDPConn
}

// NewServer binds a UDP socket (use "127.0.0.1:0" in tests) and returns
// the server. Serve must be called to start answering.
func NewServer(zone *Zone, addr string) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnssim: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("dnssim: listening: %w", err)
	}
	return &Server{zone: zone, conn: conn}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Serve answers queries until ctx is cancelled, then closes the socket.
func (s *Server) Serve(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		s.conn.Close()
	}()
	buf := make([]byte, 1500)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dnssim: read: %w", err)
		}
		resp := s.handleUDP(buf[:n])
		if resp == nil {
			continue // unparseable: drop, like real servers under fuzz
		}
		if _, err := s.conn.WriteToUDP(resp, peer); err != nil && ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// handle builds the wire response for one query, or nil to drop.
func (s *Server) handle(pkt []byte) []byte {
	q, err := Decode(pkt)
	if err != nil || q.Response || len(q.Questions) != 1 {
		return nil
	}
	resp := &Message{
		ID: q.ID, Response: true, Authoritative: true,
		RecursionDesired: q.RecursionDesired,
		Questions:        q.Questions,
	}
	question := q.Questions[0]
	switch {
	case question.Class != ClassIN:
		resp.Rcode = RcodeNotImpl
	case question.Type == TypeA:
		if ip, ok := s.zone.LookupA(question.Name); ok {
			resp.Answers = append(resp.Answers, RR{
				Name: question.Name, Type: TypeA, Class: ClassIN, TTL: 300,
				Data: []byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)},
			})
		} else {
			resp.Rcode = RcodeNXDomain
		}
	case question.Type == TypePTR:
		ip, ok := parseReverseName(question.Name)
		if !ok {
			resp.Rcode = RcodeFormErr
			break
		}
		name, ok := s.zone.LookupPTR(ip)
		if !ok {
			resp.Rcode = RcodeNXDomain
			break
		}
		rdata, err := encodeName(name)
		if err != nil {
			resp.Rcode = RcodeFormErr
			break
		}
		resp.Answers = append(resp.Answers, RR{
			Name: question.Name, Type: TypePTR, Class: ClassIN, TTL: 300, Data: rdata,
		})
	default:
		resp.Rcode = RcodeNotImpl
	}
	out, err := resp.Encode()
	if err != nil {
		return nil
	}
	return out
}

// handleUDP applies the UDP payload limit on top of handle.
func (s *Server) handleUDP(pkt []byte) []byte {
	q, err := Decode(pkt)
	if err != nil || q.Response || len(q.Questions) != 1 {
		return nil
	}
	full := s.handle(pkt)
	if full == nil {
		return nil
	}
	if len(full) <= maxUDPPayload {
		return full
	}
	m, err := Decode(full)
	if err != nil {
		return nil
	}
	out, err := truncateForUDP(m)
	if err != nil {
		return nil
	}
	return out
}

// parseReverseName converts "4.3.2.1.in-addr.arpa" to 1.2.3.4.
func parseReverseName(name string) (netaddr.IP, bool) {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	const suffix = ".in-addr.arpa"
	if !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	parts := strings.Split(strings.TrimSuffix(name, suffix), ".")
	if len(parts) != 4 {
		return 0, false
	}
	var ip uint32
	for i := 3; i >= 0; i-- {
		n, err := strconv.Atoi(parts[i])
		if err != nil || n < 0 || n > 255 {
			return 0, false
		}
		ip = ip<<8 | uint32(n)
	}
	return netaddr.IP(ip), true
}

// ReverseName formats an address for a PTR query.
func ReverseName(ip netaddr.IP) string {
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa",
		byte(ip), byte(ip>>8), byte(ip>>16), byte(ip>>24))
}

// Client queries a dnssim server.
type Client struct {
	// Addr is the server's UDP address.
	Addr string
	// TCPAddr, when set, is used to retry queries whose UDP responses
	// came back truncated (the standard TC-bit fallback).
	TCPAddr string
	// Timeout bounds each query (default 2s).
	Timeout time.Duration
	rng     *rand.Rand
}

// NewClient returns a client for the given server address.
func NewClient(addr string) *Client {
	return &Client{Addr: addr, Timeout: 2 * time.Second, rng: rand.New(rand.NewSource(1))}
}

// ErrNXDomain reports a name that does not exist.
var ErrNXDomain = errors.New("dnssim: no such name")

// QueryA resolves a hostname to its address.
func (c *Client) QueryA(name string) (netaddr.IP, error) {
	m, err := c.roundTrip(Question{Name: name, Type: TypeA, Class: ClassIN})
	if err != nil {
		return 0, err
	}
	for _, rr := range m.Answers {
		if rr.Type == TypeA && len(rr.Data) == 4 {
			return netaddr.IP(uint32(rr.Data[0])<<24 | uint32(rr.Data[1])<<16 |
				uint32(rr.Data[2])<<8 | uint32(rr.Data[3])), nil
		}
	}
	return 0, fmt.Errorf("dnssim: no A record for %q", name)
}

// QueryPTR resolves an address to its reverse name.
func (c *Client) QueryPTR(ip netaddr.IP) (string, error) {
	m, err := c.roundTrip(Question{Name: ReverseName(ip), Type: TypePTR, Class: ClassIN})
	if err != nil {
		return "", err
	}
	for _, rr := range m.Answers {
		if rr.Type == TypePTR {
			return DecodeName(rr.Data)
		}
	}
	return "", fmt.Errorf("dnssim: no PTR record for %v", ip)
}

func (c *Client) roundTrip(q Question) (*Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.Dial("udp", c.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	id := uint16(c.rng.Intn(1 << 16))
	req := &Message{ID: id, RecursionDesired: true, Questions: []Question{q}}
	pkt, err := req.Encode()
	if err != nil {
		return nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := conn.Write(pkt); err != nil {
		return nil, err
	}
	buf := make([]byte, 1500)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		m, err := Decode(buf[:n])
		if err != nil || !m.Response || m.ID != id {
			continue // stray or corrupt datagram; keep waiting
		}
		if m.Truncated && c.TCPAddr != "" {
			return c.QueryTCP(c.TCPAddr, q)
		}
		if m.Rcode == RcodeNXDomain {
			return nil, ErrNXDomain
		}
		if m.Rcode != RcodeNoError {
			return nil, fmt.Errorf("dnssim: rcode %d", m.Rcode)
		}
		return m, nil
	}
}
