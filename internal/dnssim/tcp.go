package dnssim

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// maxUDPPayload is the classic 512-byte DNS-over-UDP limit (RFC 1035
// §4.2.1). Responses that would exceed it are truncated on UDP and the
// client retries over TCP, exactly as real resolvers do.
const maxUDPPayload = 512

// flagTC is the truncation bit.
const flagTC = 1 << 9

// TCPServer answers the same zone over DNS's TCP transport: each
// message is preceded by a two-byte length (RFC 1035 §4.2.2).
type TCPServer struct {
	zone *Zone
	ln   net.Listener
}

// NewTCPServer binds a TCP listener for the zone.
func NewTCPServer(zone *Zone, addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnssim: tcp listen: %w", err)
	}
	return &TCPServer{zone: zone, ln: ln}, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until ctx is cancelled. Each connection may
// carry multiple queries (DNS TCP pipelining).
func (s *TCPServer) Serve(ctx context.Context) error {
	go func() {
		<-ctx.Done()
		s.ln.Close()
	}()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dnssim: accept: %w", err)
		}
		go s.serveConn(ctx, conn)
	}
}

func (s *TCPServer) serveConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	srv := &Server{zone: s.zone}
	for {
		if ctx.Err() != nil {
			return
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		pkt, err := readTCPMessage(conn)
		if err != nil {
			return // EOF or a broken frame: drop the connection
		}
		resp := srv.handle(pkt)
		if resp == nil {
			return
		}
		if err := writeTCPMessage(conn, resp); err != nil {
			return
		}
	}
}

func readTCPMessage(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	if n == 0 {
		return nil, fmt.Errorf("dnssim: zero-length frame")
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

func writeTCPMessage(w io.Writer, msg []byte) error {
	if len(msg) > 0xffff {
		return fmt.Errorf("dnssim: message too large for TCP framing")
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}

// truncateForUDP returns the response to send over UDP: if the encoded
// message exceeds the 512-byte limit, the answers are dropped and the
// TC bit set, telling the client to retry over TCP.
func truncateForUDP(resp *Message) ([]byte, error) {
	full, err := resp.Encode()
	if err != nil {
		return nil, err
	}
	if len(full) <= maxUDPPayload {
		return full, nil
	}
	trunc := *resp
	trunc.Answers = nil
	trunc.Truncated = true
	return trunc.Encode()
}

// QueryTCP runs one query over the TCP transport.
func (c *Client) QueryTCP(addr string, q Question) (*Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	id := uint16(c.rng.Intn(1 << 16))
	req := &Message{ID: id, RecursionDesired: true, Questions: []Question{q}}
	pkt, err := req.Encode()
	if err != nil {
		return nil, err
	}
	if err := writeTCPMessage(conn, pkt); err != nil {
		return nil, err
	}
	raw, err := readTCPMessage(conn)
	if err != nil {
		return nil, err
	}
	m, err := Decode(raw)
	if err != nil {
		return nil, err
	}
	if !m.Response || m.ID != id {
		return nil, fmt.Errorf("dnssim: mismatched TCP response")
	}
	if m.Rcode == RcodeNXDomain {
		return nil, ErrNXDomain
	}
	if m.Rcode != RcodeNoError {
		return nil, fmt.Errorf("dnssim: rcode %d", m.Rcode)
	}
	return m, nil
}
