package dnssim

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startTCPServer runs a TCP zone server on loopback for the test.
func startTCPServer(t *testing.T) *TCPServer {
	t.Helper()
	srv, err := NewTCPServer(NewZone(testW), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Serve(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return srv
}

func TestTCPQuery(t *testing.T) {
	srv := startTCPServer(t)
	c := NewClient("")
	region := testW.Inventory.Regions()[7]
	m, err := c.QueryTCP(srv.Addr(), Question{
		Name: RegionHostname(region.ID), Type: TypeA, Class: ClassIN,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].Type != TypeA {
		t.Fatalf("answers = %+v", m.Answers)
	}
	// Multiple queries on one connection happen implicitly across calls;
	// also check NXDOMAIN over TCP.
	if _, err := c.QueryTCP(srv.Addr(), Question{
		Name: "missing." + Suffix, Type: TypeA, Class: ClassIN,
	}); err != ErrNXDomain {
		t.Errorf("NXDOMAIN over TCP = %v", err)
	}
}

func TestTCPPipelining(t *testing.T) {
	srv := startTCPServer(t)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(3 * time.Second))
	// Send two framed queries back to back on one connection.
	for i, region := range testW.Inventory.Regions()[:2] {
		req := &Message{ID: uint16(100 + i), RecursionDesired: true,
			Questions: []Question{{Name: RegionHostname(region.ID), Type: TypeA, Class: ClassIN}}}
		pkt, _ := req.Encode()
		if err := writeTCPMessage(conn, pkt); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		raw, err := readTCPMessage(conn)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		m, err := Decode(raw)
		if err != nil || m.Rcode != RcodeNoError || len(m.Answers) != 1 {
			t.Fatalf("response %d malformed: %+v, %v", i, m, err)
		}
	}
}

func TestTruncationFallback(t *testing.T) {
	// A hand-built oversized response must come back truncated on UDP,
	// and the client must transparently retry over TCP.
	var big Message
	big.ID = 9
	big.Response = true
	q := Question{Name: "big." + Suffix, Type: TypeA, Class: ClassIN}
	big.Questions = []Question{q}
	for i := 0; i < 60; i++ {
		big.Answers = append(big.Answers, RR{
			Name: q.Name, Type: TypeA, Class: ClassIN, TTL: 60,
			Data: []byte{10, 0, byte(i), 1},
		})
	}
	pkt, err := truncateForUDP(&big)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) > maxUDPPayload {
		t.Fatalf("truncated packet still %d bytes", len(pkt))
	}
	m, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Truncated || len(m.Answers) != 0 {
		t.Fatalf("truncation flags wrong: %+v", m)
	}
	// Small responses pass through untouched.
	small := &Message{ID: 1, Response: true, Questions: []Question{q}}
	pkt, err = truncateForUDP(small)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := Decode(pkt); got.Truncated {
		t.Error("small response should not be truncated")
	}
}

func TestClientRetriesOverTCP(t *testing.T) {
	// Wire a fake UDP responder that always sets TC, plus a real TCP
	// server; the client must fall back and succeed.
	tcpSrv := startTCPServer(t)

	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer udp.Close()
	go func() {
		buf := make([]byte, 1500)
		for {
			n, peer, err := udp.ReadFromUDP(buf)
			if err != nil {
				return
			}
			q, err := Decode(buf[:n])
			if err != nil {
				continue
			}
			resp := &Message{ID: q.ID, Response: true, Truncated: true, Questions: q.Questions}
			out, _ := resp.Encode()
			udp.WriteToUDP(out, peer)
		}
	}()

	c := NewClient(udp.LocalAddr().String())
	c.TCPAddr = tcpSrv.Addr()
	region := testW.Inventory.Regions()[0]
	ip, err := c.QueryA(RegionHostname(region.ID))
	if err != nil {
		t.Fatal(err)
	}
	if ip != testW.RegionIP(region) {
		t.Errorf("TCP-fallback answer %v, want %v", ip, testW.RegionIP(region))
	}
}

func TestTCPFraming(t *testing.T) {
	var buf bytes.Buffer
	msg := []byte{1, 2, 3, 4, 5}
	if err := writeTCPMessage(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := readTCPMessage(&buf)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("framing round trip: %v, %v", got, err)
	}
	// Zero-length and short frames fail.
	if _, err := readTCPMessage(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
	if _, err := readTCPMessage(bytes.NewReader([]byte{0, 5, 1})); err == nil {
		t.Error("short frame accepted")
	}
	if err := writeTCPMessage(&buf, make([]byte, 1<<17)); err == nil ||
		!strings.Contains(err.Error(), "too large") {
		t.Errorf("oversized frame: %v", err)
	}
}
