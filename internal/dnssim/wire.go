// Package dnssim provides the naming plane of the synthetic Internet:
// the per-region VM hostnames the paper retrieved from CloudHarmony
// (§3.1), and reverse DNS for router addresses in the style operators
// actually use (city code and carrier embedded in the name — the hint
// source of hostname-based geolocation systems like HLOC, which the
// paper cites).
//
// The package implements a minimal RFC 1035 wire codec (A and PTR
// records), a resolver backed directly by a world, and a real UDP
// server/client pair so the names are reachable the way a measurement
// platform would reach them.
package dnssim

import (
	"errors"
	"fmt"
	"strings"
)

// DNS record types and classes (RFC 1035).
const (
	TypeA   uint16 = 1
	TypePTR uint16 = 12
	ClassIN uint16 = 1
)

// Response codes.
const (
	RcodeNoError  = 0
	RcodeFormErr  = 1
	RcodeNXDomain = 3
	RcodeNotImpl  = 4
)

// Header flag bits.
const (
	flagQR = 1 << 15
	flagAA = 1 << 10
	flagRD = 1 << 8
	flagRA = 1 << 7
)

// (flagTC, the truncation bit, lives in tcp.go beside the transport
// that handles it.)

// Question is one DNS question.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is one resource record. Data holds the RDATA: 4 address bytes for
// A records, an encoded domain name for PTR records.
type RR struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	Data  []byte
}

// Message is a DNS message (header + sections; authority/additional are
// not used by this resolver).
type Message struct {
	ID                 uint16
	Response           bool
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	Rcode              int
	Questions          []Question
	Answers            []RR
}

// ErrTruncated reports a message that ended mid-field.
var ErrTruncated = errors.New("dnssim: truncated message")

// Encode serializes the message. Names are encoded without compression;
// decoders that support compression (all of them) interoperate.
func (m *Message) Encode() ([]byte, error) {
	buf := make([]byte, 0, 512)
	var flags uint16
	if m.Response {
		flags |= flagQR
	}
	if m.Authoritative {
		flags |= flagAA
	}
	if m.Truncated {
		flags |= flagTC
	}
	if m.RecursionDesired {
		flags |= flagRD
	}
	if m.RecursionAvailable {
		flags |= flagRA
	}
	flags |= uint16(m.Rcode & 0xf)
	buf = be16(buf, m.ID)
	buf = be16(buf, flags)
	buf = be16(buf, uint16(len(m.Questions)))
	buf = be16(buf, uint16(len(m.Answers)))
	buf = be16(buf, 0) // NSCOUNT
	buf = be16(buf, 0) // ARCOUNT
	for _, q := range m.Questions {
		n, err := encodeName(q.Name)
		if err != nil {
			return nil, err
		}
		buf = append(buf, n...)
		buf = be16(buf, q.Type)
		buf = be16(buf, q.Class)
	}
	for _, rr := range m.Answers {
		n, err := encodeName(rr.Name)
		if err != nil {
			return nil, err
		}
		buf = append(buf, n...)
		buf = be16(buf, rr.Type)
		buf = be16(buf, rr.Class)
		buf = append(buf, byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL))
		buf = be16(buf, uint16(len(rr.Data)))
		buf = append(buf, rr.Data...)
	}
	return buf, nil
}

func be16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }

// encodeName converts "a.b.c" into DNS label format.
func encodeName(name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	var out []byte
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("dnssim: bad label %q in %q", label, name)
			}
			out = append(out, byte(len(label)))
			out = append(out, label...)
		}
	}
	if len(out) > 254 {
		return nil, fmt.Errorf("dnssim: name too long: %q", name)
	}
	return append(out, 0), nil
}

// Decode parses a wire-format message, following compression pointers.
func Decode(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrTruncated
	}
	m := &Message{
		ID: uint16(b[0])<<8 | uint16(b[1]),
	}
	flags := uint16(b[2])<<8 | uint16(b[3])
	m.Response = flags&flagQR != 0
	m.Authoritative = flags&flagAA != 0
	m.Truncated = flags&flagTC != 0
	m.RecursionDesired = flags&flagRD != 0
	m.RecursionAvailable = flags&flagRA != 0
	m.Rcode = int(flags & 0xf)
	qd := int(uint16(b[4])<<8 | uint16(b[5]))
	an := int(uint16(b[6])<<8 | uint16(b[7]))
	off := 12
	for i := 0; i < qd; i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		if next+4 > len(b) {
			return nil, ErrTruncated
		}
		m.Questions = append(m.Questions, Question{
			Name:  name,
			Type:  uint16(b[next])<<8 | uint16(b[next+1]),
			Class: uint16(b[next+2])<<8 | uint16(b[next+3]),
		})
		off = next + 4
	}
	for i := 0; i < an; i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		if next+10 > len(b) {
			return nil, ErrTruncated
		}
		rr := RR{
			Name:  name,
			Type:  uint16(b[next])<<8 | uint16(b[next+1]),
			Class: uint16(b[next+2])<<8 | uint16(b[next+3]),
			TTL: uint32(b[next+4])<<24 | uint32(b[next+5])<<16 |
				uint32(b[next+6])<<8 | uint32(b[next+7]),
		}
		rdlen := int(uint16(b[next+8])<<8 | uint16(b[next+9]))
		next += 10
		if next+rdlen > len(b) {
			return nil, ErrTruncated
		}
		rr.Data = append([]byte(nil), b[next:next+rdlen]...)
		m.Answers = append(m.Answers, rr)
		off = next + rdlen
	}
	return m, nil
}

// decodeName reads a (possibly compressed) name starting at off and
// returns the dotted name plus the offset just past it.
func decodeName(b []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	next := off
	hops := 0
	for {
		if off >= len(b) {
			return "", 0, ErrTruncated
		}
		l := int(b[off])
		switch {
		case l == 0:
			if !jumped {
				next = off + 1
			}
			return strings.Join(labels, "."), next, nil
		case l&0xc0 == 0xc0: // compression pointer
			if off+1 >= len(b) {
				return "", 0, ErrTruncated
			}
			ptr := (l&0x3f)<<8 | int(b[off+1])
			if !jumped {
				next = off + 2
			}
			jumped = true
			off = ptr
			hops++
			if hops > 16 {
				return "", 0, errors.New("dnssim: compression loop")
			}
		default:
			if off+1+l > len(b) {
				return "", 0, ErrTruncated
			}
			labels = append(labels, string(b[off+1:off+1+l]))
			off += 1 + l
			if len(labels) > 64 {
				return "", 0, errors.New("dnssim: too many labels")
			}
		}
	}
}

// DecodeName exposes name decoding for PTR RDATA (which holds an
// encoded name, possibly with pointers into the enclosing message —
// this package's encoder never emits those, so standalone decoding is
// safe for its own output).
func DecodeName(rdata []byte) (string, error) {
	name, _, err := decodeName(rdata, 0)
	return name, err
}
