package dnssim

import (
	"fmt"
	"strings"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/netaddr"
	"repro/internal/world"
)

// Suffix is the top-level domain of the synthetic namespace.
const Suffix = "cloudy.test"

// Zone resolves the synthetic namespace directly against a world:
// forward A records for region VM hostnames (the CloudHarmony catalogue
// of §3.1), and reverse PTR records for every router, probe and VM
// address. PTR names embed the operator and the PoP country the way
// real carrier rDNS does, which is what hostname-based geolocation
// mines for hints.
type Zone struct {
	w       *world.World
	forward map[string]netaddr.IP
}

// NewZone indexes a world's names.
func NewZone(w *world.World) *Zone {
	z := &Zone{w: w, forward: make(map[string]netaddr.IP)}
	for _, r := range w.Inventory.Regions() {
		z.forward[RegionHostname(r.ID)] = w.RegionIP(r)
	}
	return z
}

// RegionHostname returns the VM hostname for a region ID, e.g.
// "amzn-eu-dublin.compute.cloudy.test".
func RegionHostname(regionID string) string {
	return strings.ToLower(regionID) + ".compute." + Suffix
}

// LookupA resolves a forward name. ok is false for unknown names.
func (z *Zone) LookupA(name string) (netaddr.IP, bool) {
	ip, ok := z.forward[strings.ToLower(strings.TrimSuffix(name, "."))]
	return ip, ok
}

// Hostnames returns all forward names, for catalogue listings.
func (z *Zone) Hostnames() []string {
	out := make([]string, 0, len(z.forward))
	for name := range z.forward {
		out = append(out, name)
	}
	return out
}

// LookupPTR synthesizes the reverse name for an address: operator slug,
// PoP country code and a host index, e.g. "r1042.de.telia-carrier.net"
// for a Telia router whose nearest PoP is German. Private, CGN and
// unattributed space has no reverse name.
func (z *Zone) LookupPTR(ip netaddr.IP) (string, bool) {
	if ip.IsPrivate() {
		return "", false
	}
	a, ok := z.w.Registry.ResolveIP(ip)
	if !ok {
		return "", false
	}
	prefix, ok := z.w.Prefix(a.Number)
	if !ok {
		return "", false
	}
	host := uint64(ip - prefix.Addr)
	cc := strings.ToLower(a.Country)
	// Multi-PoP carriers name routers after the PoP the address slice
	// maps to, mirroring how geoip assigns the same slices.
	if pops := z.w.PoPs(a.Number); len(pops) > 0 {
		slice := int(host * 64 / prefix.NumAddresses())
		cc = strings.ToLower(pops[slice%len(pops)].Country)
	}
	return fmt.Sprintf("r%d.%s.%s.net", host, cc, slugify(a.Name)), true
}

// CountryHint extracts the embedded country code from a reverse name
// produced by this zone — the HLOC-style geolocation hint.
func CountryHint(ptr string) (string, bool) {
	parts := strings.Split(strings.TrimSuffix(ptr, "."), ".")
	if len(parts) < 4 || parts[len(parts)-1] != "net" {
		return "", false
	}
	cc := strings.ToUpper(parts[1])
	if _, ok := geo.CountryByCode(cc); !ok {
		return "", false
	}
	return cc, true
}

// OwnerSlug returns the operator slug a reverse name carries.
func OwnerSlug(a *asn.AS) string { return slugify(a.Name) }

func slugify(name string) string {
	var b strings.Builder
	lastDash := true
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
