// Package edge answers the paper's §7 discussion questions
// quantitatively: which networks would benefit from edge computing, and
// which applications could an edge deployment actually enable?
//
// The paper argues from its measurements that (a) regions with dense
// datacenter deployment gain little from edge servers because transit
// latency is already minimal, (b) developing regions would gain from
// even sparse regional edges, and (c) Motion-to-Photon applications
// remain infeasible regardless of compute placement because the
// wireless last-mile alone consumes the budget. This package replays
// the collected measurements under three hypothetical deployments and
// reports the attainable latencies per continent, making those three
// claims checkable.
package edge

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// Placement is a hypothetical compute deployment.
type Placement uint8

// Placements, from the status quo to the physical optimum.
const (
	// PlacementCloud is the measured status quo: compute in the
	// providers' datacenters.
	PlacementCloud Placement = iota
	// PlacementRegional puts a small datacenter in every country that
	// hosts vantage points — the "regional edge" of §7: the last mile
	// and the in-country aggregation remain.
	PlacementRegional
	// PlacementLastMile puts the server at the ISP's first hop — the
	// densest edge physically possible: only the access link remains.
	PlacementLastMile
)

// String names the placement.
func (p Placement) String() string {
	switch p {
	case PlacementCloud:
		return "cloud"
	case PlacementRegional:
		return "regional-edge"
	case PlacementLastMile:
		return "last-mile-edge"
	default:
		return "?"
	}
}

// Scenario is the attainable latency distribution of one placement on
// one continent.
type Scenario struct {
	Continent geo.Continent
	Placement Placement
	Latency   stats.FiveNum
	// UnderMTP/HPL/HRT are sample fractions meeting each QoE threshold.
	UnderMTP, UnderHPL, UnderHRT float64
	N                            int
}

// Evaluate replays processed Speedchecker traceroutes under each
// placement. The cloud scenario uses the measured end-to-end RTT; the
// regional scenario keeps the last mile plus the measured in-ISP
// segment and adds a short regional haul; the last-mile scenario keeps
// only the access segment.
//
// regionalHaulMs is the round trip between the ISP aggregation point
// and the hypothetical regional datacenter (§7 sketches "a regional
// edge or a small datacenter"; 4 ms ≈ 200 fibre km is a reasonable
// default).
func Evaluate(processed []pipeline.Processed, regionalHaulMs float64) []Scenario {
	type key struct {
		cont geo.Continent
		pl   Placement
	}
	samples := map[key][]float64{}
	for i := range processed {
		p := &processed[i]
		lm := p.LastMile
		if p.Record.VP.Platform != "speedchecker" || p.EndToEndRTTms <= 0 ||
			lm.Kind == pipeline.KindUnknown || lm.UserToISPms <= 0 {
			continue
		}
		cont := p.Record.VP.Continent
		samples[key{cont, PlacementCloud}] = append(samples[key{cont, PlacementCloud}], p.EndToEndRTTms)
		samples[key{cont, PlacementRegional}] = append(samples[key{cont, PlacementRegional}],
			lm.UserToISPms+regionalHaulMs)
		samples[key{cont, PlacementLastMile}] = append(samples[key{cont, PlacementLastMile}],
			lm.UserToISPms)
	}
	var out []Scenario
	for _, cont := range geo.Continents() {
		for _, pl := range []Placement{PlacementCloud, PlacementRegional, PlacementLastMile} {
			xs := samples[key{cont, pl}]
			if len(xs) == 0 {
				continue
			}
			box, err := stats.Summarize(xs)
			if err != nil {
				continue
			}
			cdf, err := stats.NewCDF(xs)
			if err != nil {
				continue
			}
			out = append(out, Scenario{
				Continent: cont, Placement: pl, Latency: box,
				UnderMTP: cdf.At(analysis.MTPms),
				UnderHPL: cdf.At(analysis.HPLms),
				UnderHRT: cdf.At(analysis.HRTms),
				N:        len(xs),
			})
		}
	}
	return out
}

// Verdict condenses §7's conclusions for one continent.
type Verdict struct {
	Continent geo.Continent
	// CloudMedianMs and EdgeMedianMs compare the status quo with the
	// regional edge.
	CloudMedianMs float64
	EdgeMedianMs  float64
	// GainMs is the median improvement a regional edge would deliver.
	GainMs float64
	// EdgeWorthwhile applies the paper's bar: a regional edge is worth
	// building where it moves the median by more than the HPL-relative
	// noise floor (a third of the threshold).
	EdgeWorthwhile bool
	// MTPFeasibleAtLastMile reports whether even a last-mile server
	// meets MTP for the majority of accesses — §7 predicts it does not.
	MTPFeasibleAtLastMile bool
}

// FiveG is the §7 wireless what-if: the paper closes by noting that
// even 5G's promised latency reductions may not rescue MTP-class
// applications. FiveG replays the measurements with the wireless
// last-mile scaled by lastMileFactor (≈0.5 for measured early-5G
// improvements, ≈0.05 for the promised 1 ms radio) and reports MTP
// feasibility at the two placements that matter.
type FiveG struct {
	Continent geo.Continent
	// MTPAtLastMile is the share of accesses under MTP with a server at
	// the (scaled) last-mile hop.
	MTPAtLastMile float64
	// MTPViaCloud is the share under MTP keeping the measured wired
	// path beyond the (scaled) last mile.
	MTPViaCloud float64
	N           int
}

// Evaluate5G computes the 5G what-if per continent.
func Evaluate5G(processed []pipeline.Processed, lastMileFactor float64) []FiveG {
	type agg struct {
		lastMTP, cloudMTP, n int
	}
	byCont := map[geo.Continent]*agg{}
	for i := range processed {
		p := &processed[i]
		lm := p.LastMile
		if p.Record.VP.Platform != "speedchecker" || p.EndToEndRTTms <= 0 ||
			lm.Kind == pipeline.KindUnknown || lm.UserToISPms <= 0 {
			continue
		}
		a := byCont[p.Record.VP.Continent]
		if a == nil {
			a = &agg{}
			byCont[p.Record.VP.Continent] = a
		}
		a.n++
		scaledAccess := lm.UserToISPms * lastMileFactor
		if scaledAccess < analysis.MTPms {
			a.lastMTP++
		}
		wired := p.EndToEndRTTms - lm.UserToISPms
		if scaledAccess+wired < analysis.MTPms {
			a.cloudMTP++
		}
	}
	var out []FiveG
	for _, cont := range geo.Continents() {
		a, ok := byCont[cont]
		if !ok || a.n == 0 {
			continue
		}
		out = append(out, FiveG{
			Continent:     cont,
			MTPAtLastMile: float64(a.lastMTP) / float64(a.n),
			MTPViaCloud:   float64(a.cloudMTP) / float64(a.n),
			N:             a.n,
		})
	}
	return out
}

// Verdicts derives the §7 per-continent conclusions from scenarios.
func Verdicts(scenarios []Scenario) []Verdict {
	byKey := map[geo.Continent]map[Placement]Scenario{}
	for _, s := range scenarios {
		if byKey[s.Continent] == nil {
			byKey[s.Continent] = map[Placement]Scenario{}
		}
		byKey[s.Continent][s.Placement] = s
	}
	var out []Verdict
	for _, cont := range geo.Continents() {
		ms, ok := byKey[cont]
		if !ok {
			continue
		}
		cloud, okC := ms[PlacementCloud]
		regional, okR := ms[PlacementRegional]
		last, okL := ms[PlacementLastMile]
		if !okC || !okR || !okL {
			continue
		}
		v := Verdict{
			Continent:             cont,
			CloudMedianMs:         cloud.Latency.Median,
			EdgeMedianMs:          regional.Latency.Median,
			GainMs:                cloud.Latency.Median - regional.Latency.Median,
			MTPFeasibleAtLastMile: last.UnderMTP > 0.5,
		}
		v.EdgeWorthwhile = v.GainMs > analysis.HPLms/3
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GainMs > out[j].GainMs })
	return out
}
