package edge

import (
	"context"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/world"
)

var (
	dataOnce sync.Once
	procData []pipeline.Processed
)

func testProcessed(t *testing.T) []pipeline.Processed {
	t.Helper()
	dataOnce.Do(func() {
		w := world.MustBuild(world.Config{Seed: 2})
		sim := netsim.New(w)
		fleet := probes.GenerateSpeedchecker(w, probes.Config{Seed: 2, Scale: 0.04})
		cfg := measure.Config{
			Seed: 2, Cycles: 3, ProbesPerCountry: 25, TargetsPerProbe: 6,
			MinProbesPerCountry: 2, RequestsPerMinute: 1000, Workers: 8,
			BothPingProtocols: measure.FlagOff, Traceroutes: true, NeighborContinentTargets: true,
		}
		campaign, err := measure.New(sim, fleet, cfg)
		if err != nil {
			panic(err)
		}
		store, _, err := campaign.Run(context.Background())
		if err != nil {
			panic(err)
		}
		procData = pipeline.NewProcessor(w).ProcessAll(store)
	})
	return procData
}

func scenarioFor(ss []Scenario, cont geo.Continent, pl Placement) (Scenario, bool) {
	for _, s := range ss {
		if s.Continent == cont && s.Placement == pl {
			return s, true
		}
	}
	return Scenario{}, false
}

func TestEvaluateOrdering(t *testing.T) {
	ss := Evaluate(testProcessed(t), 4)
	if len(ss) < 15 {
		t.Fatalf("scenarios = %d", len(ss))
	}
	for _, cont := range []geo.Continent{geo.EU, geo.NA, geo.AS, geo.AF} {
		cloud, ok1 := scenarioFor(ss, cont, PlacementCloud)
		regional, ok2 := scenarioFor(ss, cont, PlacementRegional)
		last, ok3 := scenarioFor(ss, cont, PlacementLastMile)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%v: missing scenarios", cont)
		}
		// Physics: each denser placement can only improve the median.
		if !(last.Latency.Median <= regional.Latency.Median && regional.Latency.Median <= cloud.Latency.Median) {
			t.Errorf("%v: medians not monotone: last %.1f, regional %.1f, cloud %.1f",
				cont, last.Latency.Median, regional.Latency.Median, cloud.Latency.Median)
		}
		// Threshold fractions are monotone per scenario.
		for _, s := range []Scenario{cloud, regional, last} {
			if s.UnderMTP > s.UnderHPL || s.UnderHPL > s.UnderHRT {
				t.Errorf("%v/%v: threshold fractions not monotone", cont, s.Placement)
			}
		}
	}
}

func TestSection7Claims(t *testing.T) {
	ss := Evaluate(testProcessed(t), 4)
	// (c) MTP stays infeasible even at the last mile: the wireless
	// access alone is ≈20+ ms.
	for _, cont := range []geo.Continent{geo.EU, geo.NA, geo.AS, geo.AF} {
		last, ok := scenarioFor(ss, cont, PlacementLastMile)
		if !ok {
			t.Fatalf("missing last-mile scenario for %v", cont)
		}
		if last.UnderMTP > 0.55 {
			t.Errorf("%v: %.0f%% of last-mile accesses under MTP — §7 says the wireless budget forbids this",
				cont, 100*last.UnderMTP)
		}
		// But HPL is comfortably satisfied at the last mile.
		if last.UnderHPL < 0.9 {
			t.Errorf("%v: last-mile HPL share only %.0f%%", cont, 100*last.UnderHPL)
		}
	}
	// (a)+(b): a regional edge moves Africa far more than Europe.
	cloudEU, _ := scenarioFor(ss, geo.EU, PlacementCloud)
	regEU, _ := scenarioFor(ss, geo.EU, PlacementRegional)
	cloudAF, _ := scenarioFor(ss, geo.AF, PlacementCloud)
	regAF, _ := scenarioFor(ss, geo.AF, PlacementRegional)
	gainEU := cloudEU.Latency.Median - regEU.Latency.Median
	gainAF := cloudAF.Latency.Median - regAF.Latency.Median
	if gainAF <= gainEU*2 {
		t.Errorf("regional-edge gain: AF %.1f ms should dwarf EU %.1f ms", gainAF, gainEU)
	}
}

func TestVerdicts(t *testing.T) {
	ss := Evaluate(testProcessed(t), 4)
	vs := Verdicts(ss)
	if len(vs) < 4 {
		t.Fatalf("verdicts = %d", len(vs))
	}
	byCont := map[geo.Continent]Verdict{}
	for _, v := range vs {
		byCont[v.Continent] = v
		if v.GainMs != v.CloudMedianMs-v.EdgeMedianMs {
			t.Errorf("%v: gain arithmetic wrong", v.Continent)
		}
		if v.MTPFeasibleAtLastMile {
			t.Errorf("%v: MTP feasible at the last mile contradicts §7", v.Continent)
		}
	}
	// Verdicts are sorted by gain, biggest first; Africa leads Europe.
	for i := 1; i < len(vs); i++ {
		if vs[i].GainMs > vs[i-1].GainMs {
			t.Fatal("verdicts not sorted by gain")
		}
	}
	if !byCont[geo.AF].EdgeWorthwhile {
		t.Error("Africa should clear the edge-worthwhile bar")
	}
	if byCont[geo.EU].EdgeWorthwhile {
		t.Error("Europe should not clear the edge-worthwhile bar (§7: dense DCs already)")
	}
}

func TestEvaluateEmptyAndLabels(t *testing.T) {
	if got := Evaluate(nil, 4); got != nil {
		t.Errorf("empty evaluate = %v", got)
	}
	if got := Verdicts(nil); got != nil {
		t.Errorf("empty verdicts = %v", got)
	}
	if PlacementCloud.String() != "cloud" || PlacementRegional.String() != "regional-edge" ||
		PlacementLastMile.String() != "last-mile-edge" || Placement(9).String() != "?" {
		t.Error("placement labels wrong")
	}
}

func TestEvaluate5G(t *testing.T) {
	processed := testProcessed(t)
	today := Evaluate5G(processed, 1.0)     // today's wireless
	early5G := Evaluate5G(processed, 0.5)   // measured early-5G gains
	promised := Evaluate5G(processed, 0.05) // the promised 1 ms radio
	if len(today) < 4 || len(early5G) < 4 || len(promised) < 4 {
		t.Fatalf("continents: %d/%d/%d", len(today), len(early5G), len(promised))
	}
	byCont := func(rows []FiveG) map[geo.Continent]FiveG {
		m := map[geo.Continent]FiveG{}
		for _, r := range rows {
			m[r.Continent] = r
		}
		return m
	}
	t0, t5, tp := byCont(today), byCont(early5G), byCont(promised)
	for _, cont := range []geo.Continent{geo.EU, geo.NA, geo.AS} {
		// §7: today, MTP is a minority even at the last mile; early 5G
		// helps but doesn't settle it; the promised radio makes the
		// last-mile server MTP-feasible...
		if t0[cont].MTPAtLastMile > 0.55 {
			t.Errorf("%v today: MTP at last mile %.2f, want minority", cont, t0[cont].MTPAtLastMile)
		}
		if !(t0[cont].MTPAtLastMile <= t5[cont].MTPAtLastMile && t5[cont].MTPAtLastMile <= tp[cont].MTPAtLastMile) {
			t.Errorf("%v: MTP share not monotone in radio improvement", cont)
		}
		if tp[cont].MTPAtLastMile < 0.95 {
			t.Errorf("%v promised 5G: MTP at last mile only %.2f", cont, tp[cont].MTPAtLastMile)
		}
		// ...while via the cloud the wired path still eats the budget
		// except where datacenters are truly close.
		if tp[cont].MTPViaCloud >= tp[cont].MTPAtLastMile {
			t.Errorf("%v: cloud MTP share should trail last-mile share", cont)
		}
	}
	// Africa via cloud stays MTP-infeasible even with the promised radio.
	if tp[geo.AF].MTPViaCloud > 0.2 {
		t.Errorf("AF promised-5G cloud MTP = %.2f, want near zero", tp[geo.AF].MTPViaCloud)
	}
	if got := Evaluate5G(nil, 0.5); got != nil {
		t.Errorf("empty input should be nil, got %v", got)
	}
}
