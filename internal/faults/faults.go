// Package faults is the deterministic fault-injection layer of the
// reproduction. The paper's six-month campaign ran against a hostile
// substrate — transient Android probes (§3.3), lost pings, truncated
// traceroutes, API quota errors — and this package makes those failure
// modes injectable so the campaign engine can be exercised, and proven
// resilient, under each of them.
//
// Every decision is a pure function of (plan seed, fault kind, probe,
// region, cycle, attempt): two runs under the same plan inject exactly
// the same faults, so chaos campaigns stay as reproducible as clean
// ones. The zero value of Plan injects nothing, and a nil Injector is
// always treated as fault-free by the consumers in internal/netsim and
// internal/measure.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// Op identifies which measurement of a task a ping fault applies to.
type Op uint8

// Measurement operations.
const (
	OpPingTCP Op = iota
	OpPingICMP
)

// PingFault is the control-plane outcome of one ping attempt. The zero
// value is a clean attempt.
type PingFault struct {
	// Lost means no reply came back at all.
	Lost bool
	// DelayMs is added response latency; the campaign's per-task
	// deadline turns large delays into timeouts.
	DelayMs float64
}

// TraceFault shapes one traceroute. The zero value is a clean trace.
type TraceFault struct {
	// Lost drops the traceroute outright (never launched/answered).
	Lost bool
	// MaxHops, when positive, truncates the trace to at most this many
	// hops — the capture dies mid-path and the target is never seen.
	MaxHops int
	// DropHopProb is extra per-hop unresponsiveness layered on top of
	// the simulator's baseline (missing hops inside the trace).
	DropHopProb float64
}

// Injector decides, deterministically, which faults strike a campaign.
// internal/measure consults ProbeDropout, Ping, the Lost bit of Trace
// and Sink; internal/netsim consults CorruptRTT and the data-plane
// fields of Trace. A nil Injector means no faults.
type Injector interface {
	// ProbeDropout reports whether a probe that answered the discovery
	// poll vanishes before measuring this cycle — the mid-campaign
	// churn of §3.3's transient Android probes.
	ProbeDropout(probeID string, cycle int) bool
	// Ping returns the fault for one ping attempt. Retries pass
	// increasing attempt numbers, so transient loss can clear.
	Ping(probeID, regionID string, op Op, cycle, attempt int) PingFault
	// Trace returns the fault for one traceroute. The same draw is
	// visible to the campaign (Lost) and the simulator (truncation),
	// keyed only by the pair and cycle, so both layers agree.
	Trace(probeID, regionID string, cycle int) TraceFault
	// CorruptRTT may replace a measured RTT with an outlier — the
	// corrupted samples a real platform delivers.
	CorruptRTT(probeID, regionID string, cycle int, rtt float64) float64
	// Sink returns the error injected into the seq'th sink write: nil,
	// a Transient error (worth retrying), or a permanent one.
	Sink(seq int) error
}

// Transient wraps an error that is worth retrying — the API-quota blip
// or 5xx a measurement platform returns under load. Non-transient sink
// errors are permanent: the campaign degrades instead of retrying.
type Transient struct{ Err error }

// Error implements error.
func (t Transient) Error() string { return "transient: " + t.Err.Error() }

// Unwrap exposes the underlying error.
func (t Transient) Unwrap() error { return t.Err }

// IsTransient reports whether err is (or wraps) a Transient error.
func IsTransient(err error) bool {
	var t Transient
	return errors.As(err, &t)
}

// ErrQuota is the injected transient "API quota exceeded" error.
var ErrQuota = errors.New("faults: api quota exceeded")

// ErrSinkDown is the injected permanent sink failure.
var ErrSinkDown = errors.New("faults: sink permanently unavailable")

// Plan is a probability table implementing Injector. All fields are
// independent per-event probabilities in [0,1]; the zero value injects
// nothing. Draws hash (Seed, kind, keys), never a shared RNG, so a Plan
// is safe for concurrent use and immune to evaluation order.
type Plan struct {
	// Name labels the plan in reports ("flaky-wireless", ...).
	Name string
	// Seed decorrelates the fault stream from the world seed.
	Seed int64

	// Dropout is the chance a discovered probe vanishes for the rest of
	// the cycle before measuring.
	Dropout float64
	// PingLoss is the per-attempt chance a ping gets no reply.
	PingLoss float64
	// PingDelay is the per-attempt chance of a slow reply of
	// PingDelayMs — long enough to trip per-task deadlines.
	PingDelay   float64
	PingDelayMs float64
	// RTTOutlier is the chance a delivered RTT is corrupted by a
	// factor around RTTOutlierScale.
	RTTOutlier      float64
	RTTOutlierScale float64
	// TraceLoss drops a whole traceroute; TraceTruncate cuts one short
	// (2–8 hops survive); HopDrop is extra per-hop unresponsiveness.
	TraceLoss     float64
	TraceTruncate float64
	HopDrop       float64
	// SinkTransient is the per-write chance of a retryable sink error;
	// SinkFailAfter, when positive, makes write seq ≥ SinkFailAfter
	// fail permanently (the campaign must spill and continue).
	SinkTransient float64
	SinkFailAfter int
	// Partition makes this fraction of probes unreachable — every ping
	// and trace lost — during cycles [PartitionFrom, PartitionTo).
	Partition                  float64
	PartitionFrom, PartitionTo int
}

// Draw tags keep the per-kind fault streams independent.
const (
	tagDropout byte = iota + 1
	tagPingLoss
	tagPingDelay
	tagOutlier
	tagOutlierScale
	tagTraceLoss
	tagTraceTrunc
	tagTraceLen
	tagSink
	tagPartition
)

// u returns a uniform [0,1) draw keyed by the tag, two string keys and
// up to three integers.
func (p *Plan) u(tag byte, a, b string, n1, n2, n3 int) float64 {
	h := fnv.New64a()
	var seed [8]byte
	for i := range seed {
		seed[i] = byte(p.Seed >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte{tag})
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	var ns [12]byte
	for i, n := range []int{n1, n2, n3} {
		ns[4*i] = byte(n)
		ns[4*i+1] = byte(n >> 8)
		ns[4*i+2] = byte(n >> 16)
		ns[4*i+3] = byte(n >> 24)
	}
	h.Write(ns[:])
	return float64(splitmix64(h.Sum64())>>11) / float64(1<<53)
}

// splitmix64 finalizes the FNV hash: related keys (same pair,
// consecutive cycles) must not produce correlated draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// partitioned reports whether the probe sits behind the partition
// during this cycle. Membership hashes only the probe, so a partitioned
// probe stays unreachable for the whole window — retries must not save
// it; the circuit breaker must.
func (p *Plan) partitioned(probeID string, cycle int) bool {
	if p.Partition <= 0 || cycle < p.PartitionFrom || cycle >= p.PartitionTo {
		return false
	}
	return p.u(tagPartition, probeID, "", 0, 0, 0) < p.Partition
}

// ProbeDropout implements Injector.
func (p *Plan) ProbeDropout(probeID string, cycle int) bool {
	if p == nil || p.Dropout <= 0 {
		return false
	}
	return p.u(tagDropout, probeID, "", cycle, 0, 0) < p.Dropout
}

// Ping implements Injector.
func (p *Plan) Ping(probeID, regionID string, op Op, cycle, attempt int) PingFault {
	if p == nil {
		return PingFault{}
	}
	if p.partitioned(probeID, cycle) {
		return PingFault{Lost: true}
	}
	var f PingFault
	if p.PingLoss > 0 && p.u(tagPingLoss, probeID, regionID, int(op), cycle, attempt) < p.PingLoss {
		f.Lost = true
		return f
	}
	if p.PingDelay > 0 && p.u(tagPingDelay, probeID, regionID, int(op), cycle, attempt) < p.PingDelay {
		f.DelayMs = p.PingDelayMs
	}
	return f
}

// Trace implements Injector.
func (p *Plan) Trace(probeID, regionID string, cycle int) TraceFault {
	if p == nil {
		return TraceFault{}
	}
	if p.partitioned(probeID, cycle) {
		return TraceFault{Lost: true}
	}
	var f TraceFault
	if p.TraceLoss > 0 && p.u(tagTraceLoss, probeID, regionID, cycle, 0, 0) < p.TraceLoss {
		f.Lost = true
		return f
	}
	if p.TraceTruncate > 0 && p.u(tagTraceTrunc, probeID, regionID, cycle, 0, 0) < p.TraceTruncate {
		// The capture dies 2–8 hops in: deep enough to keep the
		// last-mile hops, shallow enough to lose the target.
		f.MaxHops = 2 + int(p.u(tagTraceLen, probeID, regionID, cycle, 0, 0)*6)
	}
	f.DropHopProb = p.HopDrop
	return f
}

// CorruptRTT implements Injector.
func (p *Plan) CorruptRTT(probeID, regionID string, cycle int, rtt float64) float64 {
	if p == nil || p.RTTOutlier <= 0 {
		return rtt
	}
	if p.u(tagOutlier, probeID, regionID, cycle, 0, 0) >= p.RTTOutlier {
		return rtt
	}
	scale := p.RTTOutlierScale
	if scale <= 1 {
		scale = 4
	}
	// Outliers spread over [scale/2, 3·scale/2): a retransmission-style
	// spike, not a fixed multiple that a filter could subtract.
	return rtt * scale * (0.5 + p.u(tagOutlierScale, probeID, regionID, cycle, 0, 0))
}

// Sink implements Injector.
func (p *Plan) Sink(seq int) error {
	if p == nil {
		return nil
	}
	if p.SinkFailAfter > 0 && seq >= p.SinkFailAfter {
		return ErrSinkDown
	}
	if p.SinkTransient > 0 && p.u(tagSink, "", "", seq, 0, 0) < p.SinkTransient {
		return Transient{Err: ErrQuota}
	}
	return nil
}

// String summarizes the plan for reports and the CLI.
func (p *Plan) String() string {
	if p == nil {
		return "none"
	}
	name := p.Name
	if name == "" {
		name = "custom"
	}
	return fmt.Sprintf("%s (dropout %.0f%%, ping loss %.1f%%, delay %.1f%%, outlier %.1f%%, "+
		"trace loss %.1f%%, truncate %.1f%%, sink transient %.1f%%, partition %.0f%%)",
		name, 100*p.Dropout, 100*p.PingLoss, 100*p.PingDelay, 100*p.RTTOutlier,
		100*p.TraceLoss, 100*p.TraceTruncate, 100*p.SinkTransient, 100*p.Partition)
}
