package faults

import (
	"errors"
	"strings"
	"testing"
)

// TestZeroValueInjectsNothing: the zero Plan and the nil Plan are both
// fully transparent.
func TestZeroValueInjectsNothing(t *testing.T) {
	for _, p := range []*Plan{nil, {}} {
		for cycle := 0; cycle < 5; cycle++ {
			if p.ProbeDropout("p1", cycle) {
				t.Fatal("zero plan dropped a probe")
			}
			if f := p.Ping("p1", "r1", OpPingTCP, cycle, 0); f.Lost || f.DelayMs != 0 {
				t.Fatalf("zero plan injected ping fault %+v", f)
			}
			if f := p.Trace("p1", "r1", cycle); f.Lost || f.MaxHops != 0 || f.DropHopProb != 0 {
				t.Fatalf("zero plan injected trace fault %+v", f)
			}
			if got := p.CorruptRTT("p1", "r1", cycle, 42.5); got != 42.5 {
				t.Fatalf("zero plan corrupted RTT: %v", got)
			}
			if err := p.Sink(cycle); err != nil {
				t.Fatalf("zero plan injected sink error: %v", err)
			}
		}
	}
}

// TestDeterminism: every decision is a pure function of (seed, kind,
// keys) — two plans with the same seed agree everywhere, and a
// different seed produces a different fault stream.
func TestDeterminism(t *testing.T) {
	a, err := Profile(ProfileFlakyWireless, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(ProfileFlakyWireless, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Profile(ProfileFlakyWireless, 8)
	if err != nil {
		t.Fatal(err)
	}
	probes := []string{"sc-DE-1", "sc-KE-2", "sc-BR-3"}
	diff := 0
	for _, p := range probes {
		for cycle := 0; cycle < 20; cycle++ {
			if a.ProbeDropout(p, cycle) != b.ProbeDropout(p, cycle) {
				t.Fatal("same seed disagrees on dropout")
			}
			fa := a.Ping(p, "r", OpPingTCP, cycle, 0)
			fb := b.Ping(p, "r", OpPingTCP, cycle, 0)
			if fa != fb {
				t.Fatal("same seed disagrees on ping fault")
			}
			ta, tb := a.Trace(p, "r", cycle), b.Trace(p, "r", cycle)
			if ta != tb {
				t.Fatal("same seed disagrees on trace fault")
			}
			if a.CorruptRTT(p, "r", cycle, 100) != b.CorruptRTT(p, "r", cycle, 100) {
				t.Fatal("same seed disagrees on RTT corruption")
			}
			if a.ProbeDropout(p, cycle) != c.ProbeDropout(p, cycle) ||
				fa != c.Ping(p, "r", OpPingTCP, cycle, 0) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical fault streams")
	}
}

// TestRatesRoughlyMatch: over many draws each probability lands near its
// configured value.
func TestRatesRoughlyMatch(t *testing.T) {
	p := &Plan{Seed: 3, PingLoss: 0.10, Dropout: 0.25}
	const n = 20000
	lost, dropped := 0, 0
	for i := 0; i < n; i++ {
		probe := "p" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if p.Ping(probe, "r", OpPingTCP, i, 0).Lost {
			lost++
		}
		if p.ProbeDropout(probe, i) {
			dropped++
		}
	}
	if got := float64(lost) / n; got < 0.08 || got > 0.12 {
		t.Errorf("ping loss rate = %.3f, want ≈ 0.10", got)
	}
	if got := float64(dropped) / n; got < 0.22 || got > 0.28 {
		t.Errorf("dropout rate = %.3f, want ≈ 0.25", got)
	}
}

// TestRetryAttemptsDecorrelated: the per-attempt draws differ, so a lost
// first attempt can succeed on retry (transient loss clears).
func TestRetryAttemptsDecorrelated(t *testing.T) {
	p := &Plan{Seed: 1, PingLoss: 0.5}
	recovered := false
	for i := 0; i < 200 && !recovered; i++ {
		probe := "probe-" + string(rune('a'+i%26))
		if p.Ping(probe, "r", OpPingTCP, i, 0).Lost && !p.Ping(probe, "r", OpPingTCP, i, 1).Lost {
			recovered = true
		}
	}
	if !recovered {
		t.Error("no lost ping ever recovered on retry — attempts are correlated")
	}
}

// TestPartitionSticky: a partitioned probe stays lost for every attempt
// and cycle inside the window — retries must not save it — and recovers
// outside the window.
func TestPartitionSticky(t *testing.T) {
	p := &Plan{Seed: 5, Partition: 0.5, PartitionFrom: 1, PartitionTo: 3}
	var inPart string
	for i := 0; i < 100; i++ {
		probe := "probe-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if p.Ping(probe, "r", OpPingTCP, 1, 0).Lost {
			inPart = probe
			break
		}
	}
	if inPart == "" {
		t.Fatal("no probe fell in a 50% partition")
	}
	for cycle := 1; cycle < 3; cycle++ {
		for attempt := 0; attempt < 5; attempt++ {
			if !p.Ping(inPart, "r", OpPingTCP, cycle, attempt).Lost {
				t.Fatalf("partitioned probe recovered at cycle %d attempt %d", cycle, attempt)
			}
		}
		if !p.Trace(inPart, "r", cycle).Lost {
			t.Fatalf("partitioned probe traced at cycle %d", cycle)
		}
	}
	if p.Ping(inPart, "r", OpPingTCP, 0, 0).Lost || p.Ping(inPart, "r", OpPingTCP, 3, 0).Lost {
		t.Error("partition leaked outside its [from, to) window")
	}
}

// TestTruncationBounds: injected truncations keep 2–8 hops.
func TestTruncationBounds(t *testing.T) {
	p := &Plan{Seed: 2, TraceTruncate: 1}
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		probe := "probe-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		f := p.Trace(probe, "r", i)
		if f.MaxHops < 2 || f.MaxHops > 8 {
			t.Fatalf("truncation to %d hops, want 2–8", f.MaxHops)
		}
		seen[f.MaxHops] = true
	}
	if len(seen) < 4 {
		t.Errorf("truncation lengths not spread: %v", seen)
	}
}

// TestCorruptRTTScales: corrupted samples land in [scale/2, 3·scale/2)
// times the original.
func TestCorruptRTTScales(t *testing.T) {
	p := &Plan{Seed: 4, RTTOutlier: 1, RTTOutlierScale: 6}
	for i := 0; i < 200; i++ {
		probe := "probe-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		got := p.CorruptRTT(probe, "r", i, 50)
		if got < 50*3 || got >= 50*9 {
			t.Fatalf("outlier %v outside [150, 450)", got)
		}
	}
}

// TestSinkErrors: transient draws wrap ErrQuota and are recognizable;
// SinkFailAfter flips to a permanent error.
func TestSinkErrors(t *testing.T) {
	p := &Plan{Seed: 6, SinkTransient: 0.5, SinkFailAfter: 100}
	sawTransient := false
	for seq := 0; seq < 100; seq++ {
		err := p.Sink(seq)
		if err == nil {
			continue
		}
		if !IsTransient(err) || !errors.Is(err, ErrQuota) {
			t.Fatalf("pre-cutoff sink error should be transient quota: %v", err)
		}
		sawTransient = true
	}
	if !sawTransient {
		t.Error("50% transient rate never fired in 100 writes")
	}
	for seq := 100; seq < 105; seq++ {
		err := p.Sink(seq)
		if !errors.Is(err, ErrSinkDown) || IsTransient(err) {
			t.Fatalf("post-cutoff sink error should be permanent: %v", err)
		}
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error misclassified as transient")
	}
}

// TestProfiles: each built-in name resolves, carries its name, and
// injects something; unknown names and "none" behave.
func TestProfiles(t *testing.T) {
	names := Names()
	if len(names) != 3 {
		t.Fatalf("profiles = %v", names)
	}
	for _, name := range names {
		p, err := Profile(name, 11)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name || p.Seed != 11 {
			t.Errorf("profile %s resolved to %+v", name, p)
		}
		if !strings.Contains(p.String(), name) {
			t.Errorf("String() of %s does not mention it: %s", name, p)
		}
	}
	for _, name := range []string{"", "none"} {
		if p, err := Profile(name, 1); p != nil || err != nil {
			t.Errorf("Profile(%q) = %v, %v; want nil, nil", name, p, err)
		}
	}
	if _, err := Profile("bogus", 1); err == nil {
		t.Error("unknown profile accepted")
	}
	var nilPlan *Plan
	if nilPlan.String() != "none" {
		t.Errorf("nil plan String = %q", nilPlan.String())
	}
}
