package faults

import "repro/internal/obs"

// instrumented wraps an Injector and counts every fault that actually
// strikes (not every consultation), labeled by plan profile and fault
// kind. Counting is pure observation: the wrapped injector's decisions
// pass through untouched, so an instrumented chaos campaign injects
// byte-for-byte the same faults as a bare one.
type instrumented struct {
	inner Injector

	dropouts      *obs.Counter
	pingLost      *obs.Counter
	pingDelayed   *obs.Counter
	traceLost     *obs.Counter
	traceTrunc    *obs.Counter
	rttCorrupted  *obs.Counter
	sinkTransient *obs.Counter
	sinkPermanent *obs.Counter
}

// Instrument wraps inj so every injected fault increments
// faults_injected_total{profile,kind} on reg. The profile label should
// be the plan name ("flaky-wireless"); kind is the fault stream. A nil
// injector stays nil (fault-free runs register nothing); a nil registry
// still wraps, with unregistered counters, so behaviour never depends
// on whether observability is enabled.
func Instrument(inj Injector, profile string, reg *obs.Registry) Injector {
	if inj == nil {
		return nil
	}
	c := func(kind string) *obs.Counter {
		return reg.Counter("faults_injected_total", "profile", profile, "kind", kind)
	}
	return &instrumented{
		inner:         inj,
		dropouts:      c("probe_dropout"),
		pingLost:      c("ping_loss"),
		pingDelayed:   c("ping_delay"),
		traceLost:     c("trace_loss"),
		traceTrunc:    c("trace_truncate"),
		rttCorrupted:  c("rtt_outlier"),
		sinkTransient: c("sink_transient"),
		sinkPermanent: c("sink_permanent"),
	}
}

// ProbeDropout implements Injector.
func (m *instrumented) ProbeDropout(probeID string, cycle int) bool {
	out := m.inner.ProbeDropout(probeID, cycle)
	if out {
		m.dropouts.Inc()
	}
	return out
}

// Ping implements Injector.
func (m *instrumented) Ping(probeID, regionID string, op Op, cycle, attempt int) PingFault {
	f := m.inner.Ping(probeID, regionID, op, cycle, attempt)
	if f.Lost {
		m.pingLost.Inc()
	} else if f.DelayMs > 0 {
		m.pingDelayed.Inc()
	}
	return f
}

// Trace implements Injector.
func (m *instrumented) Trace(probeID, regionID string, cycle int) TraceFault {
	f := m.inner.Trace(probeID, regionID, cycle)
	if f.Lost {
		m.traceLost.Inc()
	} else if f.MaxHops > 0 {
		m.traceTrunc.Inc()
	}
	return f
}

// CorruptRTT implements Injector.
func (m *instrumented) CorruptRTT(probeID, regionID string, cycle int, rtt float64) float64 {
	out := m.inner.CorruptRTT(probeID, regionID, cycle, rtt)
	if out != rtt {
		m.rttCorrupted.Inc()
	}
	return out
}

// Sink implements Injector.
func (m *instrumented) Sink(seq int) error {
	err := m.inner.Sink(seq)
	switch {
	case err == nil:
	case IsTransient(err):
		m.sinkTransient.Inc()
	default:
		m.sinkPermanent.Inc()
	}
	return err
}
