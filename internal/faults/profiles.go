package faults

import (
	"fmt"
	"sort"
)

// Named fault profiles, each a caricature of one operational failure
// mode the paper's campaign had to survive.
const (
	// ProfileFlakyWireless models the transient Android fleet of §3.3:
	// probes vanish mid-cycle, pings drop and stall, traceroutes die
	// mid-path, and the odd RTT comes back an order of magnitude off.
	ProfileFlakyWireless = "flaky-wireless"
	// ProfileQuotaStorm models a measurement API under load: bursts of
	// retryable quota errors at the sink plus slow, occasionally lost
	// responses.
	ProfileQuotaStorm = "quota-storm"
	// ProfilePartition cuts a fifth of the fleet off from cycle 1
	// onward — the retries-cannot-save-you case the circuit breaker
	// exists for.
	ProfilePartition = "partition"
)

// profiles maps each name to its plan template (Seed filled in by
// Profile).
var profiles = map[string]Plan{
	ProfileFlakyWireless: {
		Name:            ProfileFlakyWireless,
		Dropout:         0.12,
		PingLoss:        0.05,
		PingDelay:       0.04,
		PingDelayMs:     8000,
		RTTOutlier:      0.02,
		RTTOutlierScale: 6,
		TraceLoss:       0.04,
		TraceTruncate:   0.10,
		HopDrop:         0.08,
	},
	ProfileQuotaStorm: {
		Name:          ProfileQuotaStorm,
		PingLoss:      0.015,
		PingDelay:     0.06,
		PingDelayMs:   6000,
		TraceLoss:     0.01,
		SinkTransient: 0.12,
	},
	ProfilePartition: {
		Name:          ProfilePartition,
		Partition:     0.20,
		PartitionFrom: 1,
		PartitionTo:   1 << 30,
		PingLoss:      0.01,
		TraceLoss:     0.01,
	},
}

// Names lists the built-in profiles in a stable order.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for name := range profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Profile resolves a named profile into a Plan seeded with seed. The
// empty string and "none" resolve to nil — no injection.
func Profile(name string, seed int64) (*Plan, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	tmpl, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown profile %q (have %v)", name, Names())
	}
	tmpl.Seed = seed
	return &tmpl, nil
}
