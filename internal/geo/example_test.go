package geo_test

import (
	"fmt"

	"repro/internal/geo"
)

func ExampleDistanceKm() {
	frankfurt := geo.Point{Lat: 50.11, Lon: 8.68}
	london := geo.Point{Lat: 51.51, Lon: -0.13}
	fmt.Printf("%.0f km\n", geo.DistanceKm(frankfurt, london))
	// Output: 638 km
}

func ExampleCountryByCode() {
	de, _ := geo.CountryByCode("DE")
	fmt.Println(de.Name, de.Continent)
	// Output: Germany EU
}
