// Package geo provides geographic primitives for the cloud-connectivity
// study: WGS84 points, great-circle distance, continents, and a country
// database with centroids and Internet-user population weights.
//
// Geographic distance is the single most influential factor on cloud
// access latency in the paper (§4.1), so every latency computation in the
// simulator bottoms out in this package.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle math.
const EarthRadiusKm = 6371.0

// Point is a WGS84 coordinate. The zero value is the Gulf of Guinea
// (0, 0), which is a valid point.
type Point struct {
	Lat float64 // degrees, [-90, 90]
	Lon float64 // degrees, [-180, 180]
}

// Valid reports whether p lies within the WGS84 coordinate bounds.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// String formats the point as "lat,lon" with four decimals.
func (p Point) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon)
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }

// DistanceKm returns the great-circle distance between a and b in
// kilometres using the haversine formula.
func DistanceKm(a, b Point) float64 {
	la1, lo1 := radians(a.Lat), radians(a.Lon)
	la2, lo2 := radians(b.Lat), radians(b.Lon)
	dLat := la2 - la1
	dLon := lo2 - lo1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp for floating-point safety before the asin.
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Midpoint returns the great-circle midpoint between a and b.
func Midpoint(a, b Point) Point {
	la1, lo1 := radians(a.Lat), radians(a.Lon)
	la2, lo2 := radians(b.Lat), radians(b.Lon)
	dLon := lo2 - lo1
	bx := math.Cos(la2) * math.Cos(dLon)
	by := math.Cos(la2) * math.Sin(dLon)
	lat := math.Atan2(math.Sin(la1)+math.Sin(la2),
		math.Sqrt((math.Cos(la1)+bx)*(math.Cos(la1)+bx)+by*by))
	lon := lo1 + math.Atan2(by, math.Cos(la1)+bx)
	return Point{Lat: lat * 180 / math.Pi, Lon: normalizeLon(lon * 180 / math.Pi)}
}

// Interpolate returns the point a fraction f (0..1) of the way along the
// great circle from a to b. f=0 yields a, f=1 yields b.
func Interpolate(a, b Point, f float64) Point {
	if f <= 0 {
		return a
	}
	if f >= 1 {
		return b
	}
	d := DistanceKm(a, b) / EarthRadiusKm // angular distance
	if d == 0 {
		return a
	}
	la1, lo1 := radians(a.Lat), radians(a.Lon)
	la2, lo2 := radians(b.Lat), radians(b.Lon)
	sinD := math.Sin(d)
	fa := math.Sin((1-f)*d) / sinD
	fb := math.Sin(f*d) / sinD
	x := fa*math.Cos(la1)*math.Cos(lo1) + fb*math.Cos(la2)*math.Cos(lo2)
	y := fa*math.Cos(la1)*math.Sin(lo1) + fb*math.Cos(la2)*math.Sin(lo2)
	z := fa*math.Sin(la1) + fb*math.Sin(la2)
	lat := math.Atan2(z, math.Sqrt(x*x+y*y))
	lon := math.Atan2(y, x)
	return Point{Lat: lat * 180 / math.Pi, Lon: normalizeLon(lon * 180 / math.Pi)}
}

func normalizeLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}

// Continent identifies one of the six populated continents, using the
// two-letter codes the paper uses (EU, NA, SA, AS, AF, OC).
type Continent uint8

// Continents in the paper's ordering.
const (
	ContinentUnknown Continent = iota
	EU
	NA
	SA
	AS
	AF
	OC
)

// Continents lists all six populated continents in the paper's order.
func Continents() []Continent { return []Continent{EU, NA, SA, AS, AF, OC} }

// AreaMKm2 returns the continent's landmass in millions of km² — the
// denominator of the paper's "geoDensity" (probes per geographical
// distance, §3.2) and of §4.1's datacenters-to-landmass ratio.
func (c Continent) AreaMKm2() float64 {
	switch c {
	case EU:
		return 10.2
	case NA:
		return 24.7
	case SA:
		return 17.8
	case AS:
		return 44.6
	case AF:
		return 30.4
	case OC:
		return 8.5
	default:
		return 0
	}
}

// String returns the two-letter continent code.
func (c Continent) String() string {
	switch c {
	case EU:
		return "EU"
	case NA:
		return "NA"
	case SA:
		return "SA"
	case AS:
		return "AS"
	case AF:
		return "AF"
	case OC:
		return "OC"
	default:
		return "??"
	}
}

// ParseContinent converts a two-letter code to a Continent.
func ParseContinent(s string) (Continent, error) {
	switch s {
	case "EU":
		return EU, nil
	case "NA":
		return NA, nil
	case "SA":
		return SA, nil
	case "AS":
		return AS, nil
	case "AF":
		return AF, nil
	case "OC":
		return OC, nil
	}
	return ContinentUnknown, fmt.Errorf("geo: unknown continent %q", s)
}

// Country describes one country in the study's coverage: ISO 3166-1
// alpha-2 code, display name, continent, population centroid, and a
// relative Internet-user weight (APNIC-style population share used to
// distribute synthetic vantage points).
type Country struct {
	Code       string
	Name       string
	Continent  Continent
	Centroid   Point
	UserWeight float64 // relative Internet-user population, arbitrary units
}

// CountryByCode returns the country with the given ISO code.
func CountryByCode(code string) (Country, bool) {
	c, ok := countryIndex[code]
	return c, ok
}

// AllCountries returns the full country database in a stable order
// (the order of the embedded table). Callers must not mutate the result.
func AllCountries() []Country { return countries }

// CountriesIn returns the countries on the given continent, in database
// order.
func CountriesIn(cont Continent) []Country {
	var out []Country
	for _, c := range countries {
		if c.Continent == cont {
			out = append(out, c)
		}
	}
	return out
}

var countryIndex = func() map[string]Country {
	m := make(map[string]Country, len(countries))
	for _, c := range countries {
		m[c.Code] = c
	}
	return m
}()
