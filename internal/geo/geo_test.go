package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	// Reference distances (city-to-city, great circle), tolerance 3%.
	cases := []struct {
		name string
		a, b Point
		want float64
	}{
		{"London-NewYork", Point{51.5, -0.12}, Point{40.71, -74.0}, 5570},
		{"Frankfurt-London", Point{50.11, 8.68}, Point{51.5, -0.12}, 640},
		{"Tokyo-Mumbai", Point{35.68, 139.69}, Point{19.08, 72.88}, 6740},
		{"Johannesburg-Cairo", Point{-26.2, 28.05}, Point{30.04, 31.24}, 6270},
		{"SaoPaulo-Miami", Point{-23.55, -46.63}, Point{25.76, -80.19}, 6570},
	}
	for _, c := range cases {
		got := DistanceKm(c.a, c.b)
		if math.Abs(got-c.want)/c.want > 0.03 {
			t.Errorf("%s: got %.0f km, want ~%.0f km", c.name, got, c.want)
		}
	}
}

func TestDistanceZero(t *testing.T) {
	p := Point{48.1, 11.6}
	if d := DistanceKm(p, p); d != 0 {
		t.Errorf("distance to self = %v, want 0", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(la1, lo1, la2, lo2 float64) bool {
		a := Point{Lat: clamp(la1, -90, 90), Lon: clamp(lo1, -180, 180)}
		b := Point{Lat: clamp(la2, -90, 90), Lon: clamp(lo2, -180, 180)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceBounds(t *testing.T) {
	// No two points on Earth are farther apart than half the circumference.
	maxD := math.Pi * EarthRadiusKm
	f := func(la1, lo1, la2, lo2 float64) bool {
		a := Point{Lat: clamp(la1, -90, 90), Lon: clamp(lo1, -180, 180)}
		b := Point{Lat: clamp(la2, -90, 90), Lon: clamp(lo2, -180, 180)}
		d := DistanceKm(a, b)
		return d >= 0 && d <= maxD+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(la1, lo1, la2, lo2, la3, lo3 float64) bool {
		a := Point{Lat: clamp(la1, -90, 90), Lon: clamp(lo1, -180, 180)}
		b := Point{Lat: clamp(la2, -90, 90), Lon: clamp(lo2, -180, 180)}
		c := Point{Lat: clamp(la3, -90, 90), Lon: clamp(lo3, -180, 180)}
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidpointEquidistant(t *testing.T) {
	a := Point{50.9, 9.9}   // Germany
	b := Point{35.9, 137.7} // Japan
	m := Midpoint(a, b)
	da, db := DistanceKm(a, m), DistanceKm(b, m)
	if math.Abs(da-db) > 1.0 {
		t.Errorf("midpoint not equidistant: %f vs %f", da, db)
	}
	if !m.Valid() {
		t.Errorf("midpoint invalid: %v", m)
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	a := Point{-27.7, 27.1}
	b := Point{30.2, 31.1}
	if got := Interpolate(a, b, 0); got != a {
		t.Errorf("f=0: got %v, want %v", got, a)
	}
	if got := Interpolate(a, b, 1); got != b {
		t.Errorf("f=1: got %v, want %v", got, b)
	}
	if got := Interpolate(a, a, 0.5); got != a {
		t.Errorf("degenerate arc: got %v, want %v", got, a)
	}
}

func TestInterpolateAdditive(t *testing.T) {
	a := Point{40.71, -74.0}
	b := Point{51.5, -0.12}
	total := DistanceKm(a, b)
	m := Interpolate(a, b, 0.3)
	d1 := DistanceKm(a, m)
	if math.Abs(d1-0.3*total) > 1.0 {
		t.Errorf("interpolate(0.3): distance from a = %f, want %f", d1, 0.3*total)
	}
}

func TestInterpolateMonotonic(t *testing.T) {
	a := Point{1.35, 103.82}
	b := Point{35.9, 137.7}
	prev := -1.0
	for f := 0.0; f <= 1.0; f += 0.1 {
		d := DistanceKm(a, Interpolate(a, b, f))
		if d < prev-1e-6 {
			t.Fatalf("interpolation not monotonic at f=%.1f: %f < %f", f, d, prev)
		}
		prev = d
	}
}

func TestContinentRoundTrip(t *testing.T) {
	for _, c := range Continents() {
		got, err := ParseContinent(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v: got %v, err %v", c, got, err)
		}
	}
	if _, err := ParseContinent("XX"); err == nil {
		t.Error("ParseContinent(XX) should fail")
	}
	if ContinentUnknown.String() != "??" {
		t.Errorf("unknown continent string = %q", ContinentUnknown.String())
	}
}

func TestCountryDatabase(t *testing.T) {
	if len(AllCountries()) < 120 {
		t.Fatalf("country database too small: %d", len(AllCountries()))
	}
	seen := map[string]bool{}
	for _, c := range AllCountries() {
		if len(c.Code) != 2 {
			t.Errorf("bad code %q", c.Code)
		}
		if seen[c.Code] {
			t.Errorf("duplicate country code %q", c.Code)
		}
		seen[c.Code] = true
		if !c.Centroid.Valid() {
			t.Errorf("%s: invalid centroid %v", c.Code, c.Centroid)
		}
		if c.Continent == ContinentUnknown {
			t.Errorf("%s: unknown continent", c.Code)
		}
		if c.UserWeight <= 0 {
			t.Errorf("%s: non-positive user weight", c.Code)
		}
	}
	// Every country named in the paper's figures must exist.
	for _, code := range []string{
		"DZ", "EG", "ET", "KE", "MA", "SN", "TN", "ZA", // Fig 6a
		"AR", "BO", "BR", "CL", "CO", "EC", "PE", "VE", // Fig 6b
		"ZA", "MA", "JP", "IR", "GB", "UA", "US", "MX", // Fig 9
		"DE", "IN", "BH", "CN", "SG",
	} {
		if _, ok := CountryByCode(code); !ok {
			t.Errorf("missing paper country %s", code)
		}
	}
}

func TestCountriesInPartition(t *testing.T) {
	total := 0
	for _, cont := range Continents() {
		cs := CountriesIn(cont)
		if len(cs) == 0 {
			t.Errorf("no countries in %v", cont)
		}
		for _, c := range cs {
			if c.Continent != cont {
				t.Errorf("%s assigned to wrong continent", c.Code)
			}
		}
		total += len(cs)
	}
	if total != len(AllCountries()) {
		t.Errorf("continent partition covers %d of %d countries", total, len(AllCountries()))
	}
}

func TestCountryByCodeMiss(t *testing.T) {
	if _, ok := CountryByCode("ZZ"); ok {
		t.Error("CountryByCode(ZZ) should miss")
	}
}

func TestPointValid(t *testing.T) {
	for _, tc := range []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{-91, 0}, false},
	} {
		if got := tc.p.Valid(); got != tc.want {
			t.Errorf("Valid(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), hi-lo) + lo
}

func TestContinentAreas(t *testing.T) {
	var total float64
	for _, c := range Continents() {
		a := c.AreaMKm2()
		if a <= 0 {
			t.Errorf("%v: non-positive area", c)
		}
		total += a
	}
	// Populated continents sum to ≈136M km² (Antarctica excluded).
	if total < 120 || total > 150 {
		t.Errorf("total landmass = %.1f M km²", total)
	}
	if AS.AreaMKm2() <= EU.AreaMKm2() {
		t.Error("Asia must dwarf Europe")
	}
	if ContinentUnknown.AreaMKm2() != 0 {
		t.Error("unknown continent should have zero area")
	}
}
