// Package geoip is the study's GeoIPLookup substitute (§3.3): a
// prefix-to-location database for router hops. Real geolocation
// databases are known to be quite inaccurate at the router level — the
// paper cites country-level error studies and explicitly refrains from
// drawing routing geography conclusions — so this database is built
// with a configurable error rate: a fraction of prefixes deliberately
// resolve to the wrong country, letting analyses measure how conclusions
// degrade under realistic geolocation noise.
package geoip

import (
	"math/rand"

	"repro/internal/geo"
	"repro/internal/netaddr"
	"repro/internal/world"
)

// Location is one database answer.
type Location struct {
	Country string
	Loc     geo.Point
	// Mislocated marks entries the builder deliberately corrupted.
	// Real databases do not flag their errors; analyses use this only
	// to *evaluate* geolocation accuracy, never to filter.
	Mislocated bool
}

// DB maps address space to locations via longest-prefix match.
type DB struct {
	trie      netaddr.Trie[Location]
	errorRate float64
}

// Build derives a database from the world's address plan: each AS's
// prefix geolocates to its nearest-PoP country, split into /18 slices
// so multi-PoP carriers resolve per region. errorRate ∈ [0,1) corrupts
// that fraction of slices to a random other country, deterministic
// under seed.
func Build(w *world.World, errorRate float64, seed int64) *DB {
	db := &DB{errorRate: errorRate}
	rng := rand.New(rand.NewSource(seed))
	countries := geo.AllCountries()
	for _, a := range w.Registry.All() {
		pops := w.PoPs(a.Number)
		for _, p := range a.Prefixes {
			slices := sliceUp(p, 18)
			for i, s := range slices {
				loc := Location{}
				if len(pops) > 0 {
					pop := pops[i%len(pops)]
					loc.Country = pop.Country
					loc.Loc = pop.Loc
				} else if c, ok := geo.CountryByCode(a.Country); ok {
					loc.Country = a.Country
					loc.Loc = c.Centroid
				} else {
					continue
				}
				if rng.Float64() < errorRate {
					wrong := countries[rng.Intn(len(countries))]
					loc.Country = wrong.Code
					loc.Loc = wrong.Centroid
					loc.Mislocated = true
				}
				db.trie.Insert(s, loc)
			}
		}
	}
	return db
}

// sliceUp splits a prefix into sub-prefixes of the target length (or
// returns the prefix itself when it is already narrower).
func sliceUp(p netaddr.Prefix, target int) []netaddr.Prefix {
	if p.Len >= target {
		return []netaddr.Prefix{p}
	}
	n := 1 << (target - p.Len)
	if n > 64 {
		n = 64 // enough granularity per AS; keeps the trie compact
	}
	size := p.NumAddresses() / uint64(n)
	out := make([]netaddr.Prefix, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, netaddr.Prefix{Addr: p.Addr + netaddr.IP(uint64(i)*size), Len: target}.Normalize())
	}
	return out
}

// Locate resolves an address. Private and CGN space never resolves,
// matching real databases.
func (db *DB) Locate(ip netaddr.IP) (Location, bool) {
	if ip.IsPrivate() {
		return Location{}, false
	}
	loc, _, ok := db.trie.Lookup(ip)
	return loc, ok
}

// Len returns the number of database entries.
func (db *DB) Len() int { return db.trie.Len() }

// Accuracy evaluates the database against ground truth: the fraction of
// sampled router addresses whose resolved country is one the owning AS
// actually operates in (any of its PoP countries). This is the
// experiment behind the paper's decision to distrust hop geolocation.
func Accuracy(db *DB, w *world.World, samplesPerAS int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	correct, total := 0, 0
	for _, a := range w.Registry.All() {
		truth := map[string]bool{a.Country: true}
		for _, pop := range w.PoPs(a.Number) {
			truth[pop.Country] = true
		}
		for i := 0; i < samplesPerAS; i++ {
			ip := w.RouterIP(a.Number, rng.Intn(4096))
			if ip == 0 {
				continue
			}
			loc, ok := db.Locate(ip)
			if !ok {
				continue
			}
			total++
			if truth[loc.Country] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
