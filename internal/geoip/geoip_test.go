package geoip

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/netaddr"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 1})

func TestCleanDatabaseIsAccurate(t *testing.T) {
	db := Build(testW, 0, 1)
	if db.Len() == 0 {
		t.Fatal("empty database")
	}
	acc := Accuracy(db, testW, 5, 1)
	if acc < 0.99 {
		t.Errorf("clean database accuracy = %.3f, want ≈1", acc)
	}
}

func TestErrorRateDegradesAccuracy(t *testing.T) {
	clean := Accuracy(Build(testW, 0, 1), testW, 5, 1)
	noisy := Accuracy(Build(testW, 0.3, 1), testW, 5, 1)
	if noisy >= clean-0.1 {
		t.Errorf("30%% corruption barely moved accuracy: clean %.3f, noisy %.3f", clean, noisy)
	}
	// The paper's caveat in numbers: tens of percent of hops mislocate.
	if noisy > 0.85 || noisy < 0.4 {
		t.Errorf("noisy accuracy = %.3f, want roughly 1−errorRate", noisy)
	}
}

func TestLocateBasics(t *testing.T) {
	db := Build(testW, 0, 1)
	// A German access ISP's router must geolocate to Germany.
	isp := testW.AccessISPs("DE")[0]
	ip := testW.RouterIP(isp.Number, 3)
	loc, ok := db.Locate(ip)
	if !ok {
		t.Fatal("no location for a known router")
	}
	if loc.Country != "DE" {
		t.Errorf("German ISP router located in %s", loc.Country)
	}
	if !loc.Loc.Valid() {
		t.Error("invalid coordinates")
	}
	if loc.Mislocated {
		t.Error("clean database flagged a mislocation")
	}
	// Private space never resolves.
	if _, ok := db.Locate(netaddr.MustParseIP("192.168.1.1")); ok {
		t.Error("private address resolved")
	}
	if _, ok := db.Locate(netaddr.MustParseIP("100.64.0.1")); ok {
		t.Error("CGN address resolved")
	}
	// Unannounced space never resolves.
	if _, ok := db.Locate(netaddr.MustParseIP("8.8.8.8")); ok {
		t.Error("unannounced address resolved")
	}
}

func TestMultiPoPCarrierSpreads(t *testing.T) {
	// A Tier-1 with global PoPs should geolocate different slices of its
	// block to different countries.
	db := Build(testW, 0, 1)
	telia := testW.Tier1s()[0]
	prefix, _ := testW.Prefix(telia.Number)
	seen := map[string]bool{}
	step := prefix.NumAddresses() / 32
	for i := uint64(0); i < 32; i++ {
		if loc, ok := db.Locate(prefix.Nth(i * step)); ok {
			seen[loc.Country] = true
		}
	}
	if len(seen) < 5 {
		t.Errorf("Tier-1 slices resolve to only %d countries, want a global spread", len(seen))
	}
}

func TestDeterminism(t *testing.T) {
	a := Build(testW, 0.2, 7)
	b := Build(testW, 0.2, 7)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for _, isp := range testW.AccessISPs("JP") {
		ip := testW.RouterIP(isp.Number, 9)
		la, oka := a.Locate(ip)
		lb, okb := b.Locate(ip)
		if oka != okb || la != lb {
			t.Fatalf("same seed, different answers for %v", ip)
		}
	}
}

func TestSliceUp(t *testing.T) {
	p := netaddr.MustParsePrefix("10.0.0.0/16")
	slices := sliceUp(p, 18)
	if len(slices) != 4 {
		t.Fatalf("slices = %d", len(slices))
	}
	for i, s := range slices {
		if s.Len != 18 {
			t.Errorf("slice %d length %d", i, s.Len)
		}
		if !p.Contains(s.Addr) {
			t.Errorf("slice %d escapes parent", i)
		}
	}
	// Narrower than target: returned as-is.
	narrow := netaddr.MustParsePrefix("10.0.0.0/24")
	if got := sliceUp(narrow, 18); len(got) != 1 || got[0] != narrow {
		t.Errorf("narrow slice = %v", got)
	}
	// Cap at 64 slices for huge blocks.
	huge := netaddr.MustParsePrefix("10.0.0.0/8")
	if got := sliceUp(huge, 18); len(got) != 64 {
		t.Errorf("huge block slices = %d, want capped 64", len(got))
	}
}

func TestContinentSanity(t *testing.T) {
	// Every resolvable location names a country in the geo database.
	db := Build(testW, 0.1, 3)
	checked := 0
	for _, a := range testW.Registry.All()[:50] {
		ip := testW.RouterIP(a.Number, 1)
		if ip == 0 {
			continue
		}
		if loc, ok := db.Locate(ip); ok {
			checked++
			if _, ok := geo.CountryByCode(loc.Country); !ok {
				t.Errorf("location names unknown country %q", loc.Country)
			}
		}
	}
	if checked == 0 {
		t.Fatal("nothing resolved")
	}
}
