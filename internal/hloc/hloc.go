// Package hloc implements hints-based router geolocation in the spirit
// of HLOC, which the paper cites when discussing how unreliable plain
// GeoIP is at the router level (§3.3): combine a geolocation database
// with the country hints operators embed in their reverse-DNS names,
// and let the hints veto database entries that disagree.
package hloc

import (
	"repro/internal/dnssim"
	"repro/internal/geo"
	"repro/internal/geoip"
	"repro/internal/netaddr"
)

// Source says which evidence produced a location.
type Source uint8

// Evidence sources.
const (
	SourceNone Source = iota
	SourceDB          // geolocation database only
	SourceRDNS        // reverse-DNS hint only
	SourceBoth        // database confirmed by the hint
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceDB:
		return "db"
	case SourceRDNS:
		return "rdns"
	case SourceBoth:
		return "db+rdns"
	default:
		return "none"
	}
}

// Location is a hybrid answer.
type Location struct {
	Country string
	Loc     geo.Point
	Source  Source
	// Disputed marks answers where the database and the hint named
	// different countries (the hint won).
	Disputed bool
}

// Locator combines the two evidence sources.
type Locator struct {
	DB   *geoip.DB
	Zone *dnssim.Zone
}

// New returns a hybrid locator.
func New(db *geoip.DB, zone *dnssim.Zone) *Locator {
	return &Locator{DB: db, Zone: zone}
}

// Locate resolves an address using both sources. Resolution order
// follows HLOC's logic: a reverse-DNS country hint, when present, is
// authoritative (operators name their own routers); the database fills
// in when no hint exists; agreement upgrades confidence.
func (l *Locator) Locate(ip netaddr.IP) (Location, bool) {
	var hintCountry string
	if l.Zone != nil {
		if ptr, ok := l.Zone.LookupPTR(ip); ok {
			if cc, ok := dnssim.CountryHint(ptr); ok {
				hintCountry = cc
			}
		}
	}
	var dbLoc geoip.Location
	dbOK := false
	if l.DB != nil {
		dbLoc, dbOK = l.DB.Locate(ip)
	}
	switch {
	case hintCountry != "" && dbOK && dbLoc.Country == hintCountry:
		return Location{Country: dbLoc.Country, Loc: dbLoc.Loc, Source: SourceBoth}, true
	case hintCountry != "":
		c, ok := geo.CountryByCode(hintCountry)
		if !ok {
			break
		}
		return Location{Country: hintCountry, Loc: c.Centroid, Source: SourceRDNS,
			Disputed: dbOK && dbLoc.Country != hintCountry}, true
	case dbOK:
		return Location{Country: dbLoc.Country, Loc: dbLoc.Loc, Source: SourceDB}, true
	}
	return Location{}, false
}

// LocateCountry adapts the hybrid locator to the pipeline's HopLocator
// interface.
func (l *Locator) LocateCountry(ip netaddr.IP) (string, bool) {
	loc, ok := l.Locate(ip)
	return loc.Country, ok
}

// Stats summarizes a batch of hybrid lookups.
type Stats struct {
	Resolved  int
	ByDB      int
	ByRDNS    int
	Confirmed int
	Disputed  int
	Misses    int
}

// Evaluate resolves every address and tallies evidence usage.
func (l *Locator) Evaluate(ips []netaddr.IP) Stats {
	var s Stats
	for _, ip := range ips {
		loc, ok := l.Locate(ip)
		if !ok {
			s.Misses++
			continue
		}
		s.Resolved++
		switch loc.Source {
		case SourceDB:
			s.ByDB++
		case SourceRDNS:
			s.ByRDNS++
		case SourceBoth:
			s.Confirmed++
		}
		if loc.Disputed {
			s.Disputed++
		}
	}
	return s
}
