package hloc

import (
	"testing"

	"repro/internal/dnssim"
	"repro/internal/geoip"
	"repro/internal/netaddr"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 1})

// routerSample draws a spread of router addresses across the registry.
func routerSample(n int) []netaddr.IP {
	var out []netaddr.IP
	for _, a := range testW.Registry.All() {
		for i := 0; i < n; i++ {
			if ip := testW.RouterIP(a.Number, i*37); ip != 0 {
				out = append(out, ip)
			}
		}
	}
	return out
}

// accuracy measures how often a locator names a country the owning AS
// actually operates in.
func accuracy(locate func(netaddr.IP) (string, bool), ips []netaddr.IP) float64 {
	correct, total := 0, 0
	for _, ip := range ips {
		cc, ok := locate(ip)
		if !ok {
			continue
		}
		owner, ok := testW.Registry.ResolveIP(ip)
		if !ok {
			continue
		}
		total++
		truth := map[string]bool{owner.Country: true}
		for _, pop := range testW.PoPs(owner.Number) {
			truth[pop.Country] = true
		}
		if truth[cc] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func TestHintsRepairNoisyDatabase(t *testing.T) {
	noisy := geoip.Build(testW, 0.3, 1)
	zone := dnssim.NewZone(testW)
	hybrid := New(noisy, zone)
	ips := routerSample(4)

	dbAcc := accuracy(func(ip netaddr.IP) (string, bool) {
		loc, ok := noisy.Locate(ip)
		return loc.Country, ok
	}, ips)
	hybridAcc := accuracy(func(ip netaddr.IP) (string, bool) {
		loc, ok := hybrid.Locate(ip)
		return loc.Country, ok
	}, ips)
	if hybridAcc <= dbAcc+0.1 {
		t.Errorf("hints barely helped: db %.3f vs hybrid %.3f", dbAcc, hybridAcc)
	}
	if hybridAcc < 0.95 {
		t.Errorf("hybrid accuracy = %.3f, want ≈1 (hints are authoritative here)", hybridAcc)
	}
}

func TestEvidenceAccounting(t *testing.T) {
	noisy := geoip.Build(testW, 0.3, 1)
	zone := dnssim.NewZone(testW)
	hybrid := New(noisy, zone)
	ips := routerSample(3)
	// Add some unlocatable space.
	ips = append(ips, netaddr.MustParseIP("8.8.8.8"), netaddr.MustParseIP("192.168.0.1"))

	s := hybrid.Evaluate(ips)
	if s.Misses != 2 {
		t.Errorf("misses = %d, want 2", s.Misses)
	}
	if s.Resolved != len(ips)-2 {
		t.Errorf("resolved = %d of %d", s.Resolved, len(ips)-2)
	}
	// With a 30%-corrupted database, roughly that share of answers are
	// disputed (hint vetoes the DB).
	frac := float64(s.Disputed) / float64(s.Resolved)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("disputed share = %.2f, want ≈0.3", frac)
	}
	if s.Confirmed == 0 {
		t.Error("no confirmed answers despite mostly-clean DB")
	}
	if s.ByDB+s.ByRDNS+s.Confirmed != s.Resolved {
		t.Error("source counts do not partition resolved answers")
	}
}

func TestDegradedModes(t *testing.T) {
	zone := dnssim.NewZone(testW)
	db := geoip.Build(testW, 0, 1)
	ip := testW.RouterIP(testW.AccessISPs("JP")[0].Number, 5)

	// Hint-only locator.
	onlyHints := New(nil, zone)
	loc, ok := onlyHints.Locate(ip)
	if !ok || loc.Source != SourceRDNS || loc.Country != "JP" {
		t.Errorf("hint-only locate = %+v, %v", loc, ok)
	}
	// DB-only locator.
	onlyDB := New(db, nil)
	loc, ok = onlyDB.Locate(ip)
	if !ok || loc.Source != SourceDB {
		t.Errorf("db-only locate = %+v, %v", loc, ok)
	}
	// Neither.
	empty := New(nil, nil)
	if _, ok := empty.Locate(ip); ok {
		t.Error("locator without evidence resolved an address")
	}
	// Agreement upgrades to SourceBoth.
	both := New(db, zone)
	loc, ok = both.Locate(ip)
	if !ok || loc.Source != SourceBoth || loc.Disputed {
		t.Errorf("agreeing sources = %+v, %v", loc, ok)
	}
}

func TestSourceLabels(t *testing.T) {
	if SourceNone.String() != "none" || SourceDB.String() != "db" ||
		SourceRDNS.String() != "rdns" || SourceBoth.String() != "db+rdns" {
		t.Error("source labels wrong")
	}
}
