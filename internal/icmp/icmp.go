// Package icmp implements the ICMP echo wire format (RFC 792) with the
// Internet checksum, plus a pinger that uses it over a raw-ish socket
// where the platform allows (Linux unprivileged ping sockets, or raw
// sockets under CAP_NET_RAW) — the ICMP half of the paper's measurement
// pair (§3.3 runs TCP pings and ICMP traceroutes).
//
// The codec is pure and fully testable offline; the socket path
// degrades gracefully with ErrUnsupported where the kernel refuses,
// which is why the simulator carries the study itself.
package icmp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"time"
)

// Message types used here (RFC 792).
const (
	TypeEchoReply    = 0
	TypeEcho         = 8
	TypeTimeExceeded = 11
)

// Echo is an ICMP echo request or reply.
type Echo struct {
	Type    uint8 // TypeEcho or TypeEchoReply
	Code    uint8
	ID      uint16
	Seq     uint16
	Payload []byte
}

// headerLen is the echo header size.
const headerLen = 8

// Marshal serializes the echo with a correct checksum.
func (e *Echo) Marshal() []byte {
	b := make([]byte, headerLen+len(e.Payload))
	b[0] = e.Type
	b[1] = e.Code
	// bytes 2,3: checksum, filled below
	binary.BigEndian.PutUint16(b[4:], e.ID)
	binary.BigEndian.PutUint16(b[6:], e.Seq)
	copy(b[headerLen:], e.Payload)
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return b
}

// ErrBadPacket reports a packet that fails structural or checksum
// validation.
var ErrBadPacket = errors.New("icmp: bad packet")

// ParseEcho validates and decodes an echo message.
func ParseEcho(b []byte) (*Echo, error) {
	if len(b) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadPacket, len(b))
	}
	if Checksum(b) != 0 {
		return nil, fmt.Errorf("%w: checksum", ErrBadPacket)
	}
	t := b[0]
	if t != TypeEcho && t != TypeEchoReply {
		return nil, fmt.Errorf("%w: type %d is not an echo", ErrBadPacket, t)
	}
	return &Echo{
		Type: t, Code: b[1],
		ID:      binary.BigEndian.Uint16(b[4:]),
		Seq:     binary.BigEndian.Uint16(b[6:]),
		Payload: append([]byte(nil), b[headerLen:]...),
	}, nil
}

// Checksum computes the RFC 1071 Internet checksum. Over a packet whose
// checksum field is zeroed it yields the value to store; over a packet
// with a correct stored checksum it yields zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// ErrUnsupported reports that this platform or privilege level cannot
// open an ICMP socket; callers fall back to TCP pings (cmd/cloudping)
// or the simulator.
var ErrUnsupported = errors.New("icmp: socket unavailable (needs CAP_NET_RAW or ping_group_range)")

// Result is one echo round trip.
type Result struct {
	Seq int
	RTT time.Duration
	Err error
}

// Pinger sends ICMP echoes to one host.
type Pinger struct {
	// Addr is the destination host (name or IP).
	Addr string
	// Count is the number of echoes (default 3).
	Count int
	// Timeout bounds each round trip (default 2s).
	Timeout time.Duration
	// ID tags outgoing echoes (default: process ID).
	ID uint16
}

// Run sends the echoes. It returns ErrUnsupported when the socket
// cannot be opened — the common case for unprivileged processes.
func (p *Pinger) Run() ([]Result, error) {
	count := p.Count
	if count == 0 {
		count = 3
	}
	timeout := p.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	id := p.ID
	if id == 0 {
		id = uint16(os.Getpid())
	}
	conn, err := openICMP(p.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	results := make([]Result, 0, count)
	buf := make([]byte, 1500)
	for seq := 0; seq < count; seq++ {
		echo := &Echo{Type: TypeEcho, ID: id, Seq: uint16(seq), Payload: []byte("cloudy-rtt-probe")}
		start := time.Now()
		if _, err := conn.Write(echo.Marshal()); err != nil {
			results = append(results, Result{Seq: seq, Err: err})
			continue
		}
		conn.SetReadDeadline(start.Add(timeout))
		res := Result{Seq: seq, Err: os.ErrDeadlineExceeded}
		for {
			n, err := conn.Read(buf)
			if err != nil {
				res.Err = err
				break
			}
			reply, err := ParseEcho(trimIPHeader(buf[:n]))
			if err != nil || reply.Type != TypeEchoReply || reply.Seq != uint16(seq) {
				continue // someone else's traffic
			}
			res = Result{Seq: seq, RTT: time.Since(start)}
			break
		}
		results = append(results, res)
	}
	return results, nil
}

// trimIPHeader strips a leading IPv4 header when the socket delivers
// one (raw sockets do, ping sockets do not).
func trimIPHeader(b []byte) []byte {
	if len(b) > 0 && b[0]>>4 == 4 {
		ihl := int(b[0]&0x0f) * 4
		if ihl >= 20 && len(b) > ihl {
			return b[ihl:]
		}
	}
	return b
}
