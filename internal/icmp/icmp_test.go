package icmp

import (
	"encoding/binary"
	"errors"
	"os"
	"testing"
	"testing/quick"
	"time"
)

func TestEchoRoundTrip(t *testing.T) {
	e := &Echo{Type: TypeEcho, ID: 0xBEEF, Seq: 7, Payload: []byte("hello world")}
	pkt := e.Marshal()
	if Checksum(pkt) != 0 {
		t.Fatalf("marshalled packet fails checksum: %x", pkt)
	}
	got, err := ParseEcho(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != e.Type || got.ID != e.ID || got.Seq != e.Seq || string(got.Payload) != "hello world" {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestEchoRoundTripQuick(t *testing.T) {
	f := func(id, seq uint16, payload []byte) bool {
		e := &Echo{Type: TypeEchoReply, ID: id, Seq: seq, Payload: payload}
		got, err := ParseEcho(e.Marshal())
		if err != nil {
			return false
		}
		return got.ID == id && got.Seq == seq && string(got.Payload) == string(payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRejects(t *testing.T) {
	if _, err := ParseEcho(nil); !errors.Is(err, ErrBadPacket) {
		t.Error("nil packet accepted")
	}
	if _, err := ParseEcho(make([]byte, 4)); !errors.Is(err, ErrBadPacket) {
		t.Error("short packet accepted")
	}
	// Flip one bit: checksum must catch it.
	pkt := (&Echo{Type: TypeEcho, ID: 1, Seq: 2, Payload: []byte("x")}).Marshal()
	pkt[len(pkt)-1] ^= 0x40
	if _, err := ParseEcho(pkt); !errors.Is(err, ErrBadPacket) {
		t.Error("corrupted packet accepted")
	}
	// A non-echo type with a valid checksum is rejected too.
	te := make([]byte, 8)
	te[0] = TypeTimeExceeded
	binary.BigEndian.PutUint16(te[2:], Checksum(te))
	if _, err := ParseEcho(te); !errors.Is(err, ErrBadPacket) {
		t.Error("time-exceeded accepted as echo")
	}
}

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 → checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("checksum = %#x, want 0x220d", got)
	}
	// Odd length pads with zero.
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd-length checksum = %#x", got)
	}
	// Verification property: storing the checksum makes the sum zero.
	b2 := []byte{0x08, 0x00, 0x00, 0x00, 0x12, 0x34, 0x00, 0x01, 0xde, 0xad}
	binary.BigEndian.PutUint16(b2[2:], Checksum(b2))
	if Checksum(b2) != 0 {
		t.Error("stored checksum does not verify")
	}
}

func TestTrimIPHeader(t *testing.T) {
	inner := (&Echo{Type: TypeEchoReply, ID: 9, Seq: 1}).Marshal()
	// Synthesize a minimal IPv4 header (version 4, IHL 5).
	hdr := make([]byte, 20)
	hdr[0] = 0x45
	withIP := append(hdr, inner...)
	if got := trimIPHeader(withIP); len(got) != len(inner) || got[0] != TypeEchoReply {
		t.Errorf("header not trimmed: %x", got)
	}
	// Ping sockets deliver bare ICMP (first nibble 0 or 8, not 4).
	if got := trimIPHeader(inner); len(got) != len(inner) {
		t.Error("bare ICMP wrongly trimmed")
	}
	if got := trimIPHeader(nil); got != nil {
		t.Error("nil input mishandled")
	}
}

func TestPingLoopbackIfPermitted(t *testing.T) {
	p := Pinger{Addr: "127.0.0.1", Count: 2, Timeout: time.Second}
	results, err := p.Run()
	if errors.Is(err, ErrUnsupported) {
		t.Skipf("no ICMP capability here: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	ok := 0
	for _, r := range results {
		if r.Err == nil && r.RTT > 0 {
			ok++
		}
	}
	if ok == 0 {
		t.Errorf("no loopback echo replies: %+v (deadline err kind: %v)", results, os.ErrDeadlineExceeded)
	}
}

// FuzzParseEcho: the parser must be total, and anything it accepts must
// re-marshal to a packet it accepts again.
func FuzzParseEcho(f *testing.F) {
	f.Add((&Echo{Type: TypeEcho, ID: 1, Seq: 2, Payload: []byte("x")}).Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := ParseEcho(data)
		if err != nil {
			return
		}
		if _, err := ParseEcho(e.Marshal()); err != nil {
			t.Fatalf("accepted echo no longer parses after re-marshal: %v", err)
		}
	})
}
