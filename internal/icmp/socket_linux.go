//go:build linux

package icmp

import (
	"fmt"
	"net"
	"os"
	"syscall"
)

// openICMP opens a connected ICMP socket to addr: a raw socket when
// privileged, else a Linux "ping socket" (SOCK_DGRAM + IPPROTO_ICMP),
// which works unprivileged when net.ipv4.ping_group_range admits the
// process's group.
func openICMP(addr string) (net.Conn, error) {
	if conn, err := net.Dial("ip4:icmp", addr); err == nil {
		return conn, nil
	}
	ips, err := net.LookupIP(addr)
	if err != nil || len(ips) == 0 {
		return nil, fmt.Errorf("%w: resolving %q: %v", ErrUnsupported, addr, err)
	}
	var ip4 net.IP
	for _, ip := range ips {
		if v4 := ip.To4(); v4 != nil {
			ip4 = v4
			break
		}
	}
	if ip4 == nil {
		return nil, fmt.Errorf("%w: %q has no IPv4 address", ErrUnsupported, addr)
	}
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_DGRAM, syscall.IPPROTO_ICMP)
	if err != nil {
		return nil, fmt.Errorf("%w: ping socket: %v", ErrUnsupported, err)
	}
	var sa syscall.SockaddrInet4
	copy(sa.Addr[:], ip4)
	if err := syscall.Connect(fd, &sa); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("%w: connect: %v", ErrUnsupported, err)
	}
	f := os.NewFile(uintptr(fd), "ping:"+addr)
	conn, err := net.FileConn(f)
	f.Close() // FileConn dups the descriptor
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	return conn, nil
}
