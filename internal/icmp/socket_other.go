//go:build !linux

package icmp

import (
	"fmt"
	"net"
)

// openICMP opens a raw ICMP socket; non-Linux platforms have no
// unprivileged fallback here.
func openICMP(addr string) (net.Conn, error) {
	conn, err := net.Dial("ip4:icmp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsupported, err)
	}
	return conn, nil
}
