// Package lastmile models the access link between a vantage point and
// its serving ISP — the segment §5 of the paper isolates as the primary
// latency bottleneck.
//
// Three access technologies are modelled:
//
//   - WiFi ("SC home"): user device → home router (wireless) → ISP
//     aggregation (wired). The paper splits this as USR-ISP (both
//     segments) and RTR-ISP (wired part only).
//   - Cellular ("SC cell"): user device → base station → ISP, one
//     segment from the probe's perspective.
//   - Wired ("Atlas"): managed-network probes with a fixed connection.
//
// Delays draw from log-normal distributions with an occasional
// heavy-tail spike, calibrated so that wireless medians land around
// 20–25 ms with a per-probe coefficient of variation near 0.5
// (Figures 7b and 8), while the wired components sit near 10 ms.
package lastmile

import (
	"math"
	"math/rand"
)

// Access enumerates last-mile technologies.
type Access uint8

// Access technologies.
const (
	WiFi Access = iota
	Cellular
	Wired
)

// String returns the label used in the paper's figures.
func (a Access) String() string {
	switch a {
	case WiFi:
		return "home"
	case Cellular:
		return "cell"
	case Wired:
		return "wired"
	default:
		return "?"
	}
}

// Wireless reports whether the technology includes a radio segment.
func (a Access) Wireless() bool { return a == WiFi || a == Cellular }

// segment parameterizes one log-normal delay component.
type segment struct {
	medianMs  float64 // exp(mu) of the log-normal
	sigma     float64 // log-space standard deviation
	spikeProb float64 // probability of a heavy-tail spike
	spikeMax  float64 // maximal spike multiplier (uniform in [2, spikeMax])
}

func (s segment) sample(rng *rand.Rand) float64 {
	v := s.medianMs * math.Exp(s.sigma*rng.NormFloat64())
	if s.spikeProb > 0 && rng.Float64() < s.spikeProb {
		v *= 2 + rng.Float64()*(s.spikeMax-2)
	}
	return v
}

// Model holds the calibrated segment parameters. Use DefaultModel for
// the paper-calibrated values; fields are exported so ablation benches
// can perturb them.
type Model struct {
	WiFiAir       segment // user → home router over the air
	HomeWire      segment // home router → ISP aggregation (RTR-ISP)
	CellularRadio segment // user → base station → ISP first hop
	WiredLine     segment // Atlas-style managed wired access
}

// DefaultModel returns the calibration used throughout the study:
// USR-ISP medians ≈ 22 ms (WiFi) and 23 ms (cellular), RTR-ISP ≈ 9 ms,
// Atlas wired ≈ 10 ms, wireless Cv ≈ 0.5.
func DefaultModel() Model {
	return Model{
		WiFiAir:       segment{medianMs: 12.5, sigma: 0.48, spikeProb: 0.035, spikeMax: 7},
		HomeWire:      segment{medianMs: 9, sigma: 0.30, spikeProb: 0.01, spikeMax: 4},
		CellularRadio: segment{medianMs: 23, sigma: 0.40, spikeProb: 0.02, spikeMax: 5},
		WiredLine:     segment{medianMs: 10, sigma: 0.28, spikeProb: 0.008, spikeMax: 3},
	}
}

// Sample is one drawn last-mile round-trip, decomposed the way the
// paper's traceroute analysis decomposes it.
type Sample struct {
	Access Access
	// UserToISPms is the full probe→ISP round trip (USR-ISP).
	UserToISPms float64
	// RouterToISPms is the wired tail (RTR-ISP). It equals UserToISPms
	// for wired access and is zero for cellular, where no home router
	// exists on the path.
	RouterToISPms float64
}

// Draw samples one last-mile RTT for the given access technology.
func (m Model) Draw(a Access, rng *rand.Rand) Sample {
	switch a {
	case WiFi:
		air := m.WiFiAir.sample(rng)
		wire := m.HomeWire.sample(rng)
		return Sample{Access: a, UserToISPms: air + wire, RouterToISPms: wire}
	case Cellular:
		return Sample{Access: a, UserToISPms: m.CellularRadio.sample(rng)}
	default:
		wire := m.WiredLine.sample(rng)
		return Sample{Access: a, UserToISPms: wire, RouterToISPms: wire}
	}
}
