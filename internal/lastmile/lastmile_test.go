package lastmile

import (
	"math/rand"
	"testing"

	"repro/internal/stats"
)

func drawMany(t *testing.T, m Model, a Access, n int) ([]float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	user := make([]float64, n)
	router := make([]float64, n)
	for i := 0; i < n; i++ {
		s := m.Draw(a, rng)
		if s.UserToISPms <= 0 {
			t.Fatalf("non-positive sample %v", s)
		}
		user[i] = s.UserToISPms
		router[i] = s.RouterToISPms
	}
	return user, router
}

func TestWiFiCalibration(t *testing.T) {
	m := DefaultModel()
	user, router := drawMany(t, m, WiFi, 20000)
	med, _ := stats.Median(user)
	if med < 17 || med > 28 {
		t.Errorf("WiFi USR-ISP median = %.1f ms, want ≈ 20-25", med)
	}
	rmed, _ := stats.Median(router)
	if rmed < 6 || rmed > 12 {
		t.Errorf("WiFi RTR-ISP median = %.1f ms, want ≈ 9", rmed)
	}
	// The wired tail must always be a strict part of the full segment.
	for i := range user {
		if router[i] <= 0 || router[i] >= user[i] {
			t.Fatalf("RTR-ISP %f not inside USR-ISP %f", router[i], user[i])
		}
	}
	cv, _ := stats.CoefficientOfVariation(user)
	if cv < 0.3 || cv > 0.9 {
		t.Errorf("WiFi Cv = %.2f, want ≈ 0.5", cv)
	}
}

func TestCellularCalibration(t *testing.T) {
	m := DefaultModel()
	user, router := drawMany(t, m, Cellular, 20000)
	med, _ := stats.Median(user)
	if med < 18 || med > 29 {
		t.Errorf("cellular median = %.1f ms, want ≈ 23", med)
	}
	for _, r := range router {
		if r != 0 {
			t.Fatal("cellular access must not report a home-router segment")
		}
	}
	cv, _ := stats.CoefficientOfVariation(user)
	if cv < 0.3 || cv > 0.9 {
		t.Errorf("cellular Cv = %.2f, want ≈ 0.5", cv)
	}
}

func TestWiredCalibration(t *testing.T) {
	m := DefaultModel()
	user, router := drawMany(t, m, Wired, 20000)
	med, _ := stats.Median(user)
	if med < 8 || med > 13 {
		t.Errorf("wired median = %.1f ms, want ≈ 10", med)
	}
	// Wired probes have no radio: USR-ISP equals RTR-ISP.
	for i := range user {
		if user[i] != router[i] {
			t.Fatal("wired USR-ISP must equal RTR-ISP")
		}
	}
	// Wired is markedly more stable than wireless (Fig 7b: Atlas ≈ the
	// SC RTR-ISP wired tail).
	cvWired, _ := stats.CoefficientOfVariation(user)
	wifi, _ := drawMany(t, m, WiFi, 20000)
	cvWiFi, _ := stats.CoefficientOfVariation(wifi)
	if cvWired >= cvWiFi {
		t.Errorf("wired Cv %.2f should be below WiFi Cv %.2f", cvWired, cvWiFi)
	}
}

func TestWiFiAndCellularComparable(t *testing.T) {
	// §5: "the type of wireless access does not have a significant
	// impact" — medians within a few ms, Cv in the same band.
	m := DefaultModel()
	wifi, _ := drawMany(t, m, WiFi, 20000)
	cell, _ := drawMany(t, m, Cellular, 20000)
	mw, _ := stats.Median(wifi)
	mc, _ := stats.Median(cell)
	if d := mw - mc; d < -6 || d > 6 {
		t.Errorf("WiFi median %.1f vs cellular %.1f differ too much", mw, mc)
	}
	cw, _ := stats.CoefficientOfVariation(wifi)
	cc, _ := stats.CoefficientOfVariation(cell)
	if d := cw - cc; d < -0.25 || d > 0.25 {
		t.Errorf("Cv gap too large: WiFi %.2f vs cellular %.2f", cw, cc)
	}
}

func TestWirelessNearMTPThreshold(t *testing.T) {
	// §5 discussion: the wireless last-mile alone borders the 20 ms MTP
	// budget, which is what makes MTP apps infeasible even with edge.
	m := DefaultModel()
	for _, a := range []Access{WiFi, Cellular} {
		user, _ := drawMany(t, m, a, 20000)
		med, _ := stats.Median(user)
		if med < 15 {
			t.Errorf("%v median %.1f ms implausibly below the MTP border", a, med)
		}
	}
}

func TestDeterminism(t *testing.T) {
	m := DefaultModel()
	r1 := rand.New(rand.NewSource(99))
	r2 := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		a, b := m.Draw(WiFi, r1), m.Draw(WiFi, r2)
		if a != b {
			t.Fatal("same seed must give identical samples")
		}
	}
}

func TestAccessLabels(t *testing.T) {
	if WiFi.String() != "home" || Cellular.String() != "cell" || Wired.String() != "wired" || Access(9).String() != "?" {
		t.Error("access labels wrong")
	}
	if !WiFi.Wireless() || !Cellular.Wireless() || Wired.Wireless() {
		t.Error("Wireless() predicate wrong")
	}
}
