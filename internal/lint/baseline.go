package lint

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Baseline grandfathers pre-existing findings: each entry caps how many
// findings one analyzer may report in one file. A (file, analyzer) pair
// at or under its cap is suppressed wholesale; the moment the count
// grows past the cap, every finding for the pair is reported, so new
// violations cannot hide behind old ones. An empty baseline means the
// tree is fully clean.
//
// The format is line-oriented and diff-friendly:
//
//	# comment
//	internal/foo/bar.go analyzer 3
//
// Paths are module-relative with forward slashes.
type Baseline struct {
	caps map[baseKey]int
}

type baseKey struct {
	file     string
	analyzer string
}

// ParseBaseline reads a baseline file.
func ParseBaseline(r io.Reader) (*Baseline, error) {
	b := &Baseline{caps: map[baseKey]int{}}
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("baseline line %d: want \"<file> <analyzer> <count>\", got %q", lineNo, line)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("baseline line %d: bad count %q", lineNo, fields[2])
		}
		b.caps[baseKey{fields[0], fields[1]}] = n
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// Filter drops findings covered by the baseline. Findings are keyed by
// their module-relative file path, which rel must produce.
func (b *Baseline) Filter(findings []Finding, rel func(string) string) []Finding {
	if b == nil || len(b.caps) == 0 {
		return findings
	}
	counts := map[baseKey]int{}
	for _, f := range findings {
		counts[baseKey{rel(f.Pos.Filename), f.Analyzer}]++
	}
	var out []Finding
	for _, f := range findings {
		k := baseKey{rel(f.Pos.Filename), f.Analyzer}
		if cap, ok := b.caps[k]; ok && counts[k] <= cap {
			continue
		}
		out = append(out, f)
	}
	return out
}

// WriteBaseline renders findings as a baseline that exactly covers
// them.
func WriteBaseline(w io.Writer, findings []Finding, rel func(string) string) error {
	counts := map[baseKey]int{}
	for _, f := range findings {
		counts[baseKey{rel(f.Pos.Filename), f.Analyzer}]++
	}
	keys := make([]baseKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].analyzer < keys[j].analyzer
	})
	if _, err := fmt.Fprintln(w, "# cloudyvet baseline — grandfathered findings (file analyzer count)."); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "# A pair fails the build only when its finding count grows past the cap."); err != nil {
		return err
	}
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %s %d\n", k.file, k.analyzer, counts[k]); err != nil {
			return err
		}
	}
	return nil
}
