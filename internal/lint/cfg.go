package lint

import (
	"go/ast"
	"go/token"
)

// This file is the flow-analysis core behind the concurrency and
// observability analyzers (spanend, goroutineleak, lockheld): a
// per-function intraprocedural control-flow graph over ast.Stmt with
// just enough dataflow machinery for the invariants the repo cares
// about — "this value must reach a call on every path" (spanend) and
// "this fact holds between these two calls" (lockheld).
//
// Design constraints (DESIGN.md §13):
//
//   - Stdlib-only, like the rest of the lint framework: no
//     golang.org/x/tools/go/cfg. The builder below covers the Go
//     statements the module actually uses — if/for/range/switch/
//     type-switch/select, labeled break/continue, goto, fallthrough,
//     return — and parks unreachable code in predecessor-less blocks.
//   - Statement granularity. Conditions (if/for/switch tags) are
//     appended to the block evaluating them; compound statements are
//     decomposed so their bodies live in successor blocks. The one
//     wrapper type is rangeHead, which stands in for a RangeStmt's
//     loop head without dragging the loop body into the head block.
//   - Function literals are their own functions: the builder never
//     descends into a FuncLit, and analyzers visit each literal body
//     as an independent CFG (forEachFuncBody).
//   - Calls that provably never return (panic, os.Exit, log.Fatal*,
//     runtime.Goexit) terminate their block with no successors, so a
//     `default: panic(...)` arm does not count as a path to exit.

// cfgBlock is one straight-line run of nodes: no branching within,
// control transfers only at the end. nodes holds statements plus the
// condition/tag expressions evaluated by the block.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body. exit is a
// synthetic empty block every return (and the fall-off-the-end path)
// feeds into; panicking paths do not reach it.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// rangeHead marks the loop head of a range statement inside a block:
// the range expression and the key/value binding, without the body
// (which lives in the head's successor). Analyzers that care whether
// a loop ranges over a channel look at Loop.X's type.
type rangeHead struct {
	Loop *ast.RangeStmt
}

func (r rangeHead) Pos() token.Pos { return r.Loop.Pos() }
func (r rangeHead) End() token.Pos { return r.Loop.X.End() }

// cfgScope is one enclosing breakable/continuable construct.
type cfgScope struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select scopes
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	g            *funcCFG
	cur          *cfgBlock // nil after a terminator; lazily revived for dead code
	scopes       []cfgScope
	labels       map[string]*cfgBlock
	gotos        []pendingGoto
	pendingLabel string
	fallTo       *cfgBlock // fallthrough target inside a switch clause
}

// buildCFG constructs the control-flow graph of body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, labels: map[string]*cfgBlock{}}
	g.exit = b.newBlock()
	g.entry = b.newBlock()
	b.cur = g.entry
	b.stmt(body)
	b.linkCur(g.exit)
	for _, pg := range b.gotos {
		if to := b.labels[pg.label]; to != nil {
			b.link(pg.from, to)
		}
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

// linkCur links the current block to `to` and leaves cur unset; no-op
// when the current path already terminated.
func (b *cfgBuilder) linkCur(to *cfgBlock) {
	if b.cur != nil {
		b.link(b.cur, to)
		b.cur = nil
	}
}

// add appends a node to the current block, reviving a fresh
// (unreachable) block for statements after a terminator.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.nodes = append(b.cur.nodes, n)
}

// ensure returns the current block, reviving one if the path
// terminated.
func (b *cfgBuilder) ensure() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// takeLabel consumes the label of an enclosing LabeledStmt, so the
// construct being built can register it for labeled break/continue.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		b.add(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.link(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.linkCur(after)
		if s.Else != nil {
			els := b.newBlock()
			b.link(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.linkCur(after)
		} else {
			b.link(cond, after)
		}
		b.cur = after
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.newBlock()
		b.linkCur(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, after) // `for {}` has no normal exit, only breaks
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after, continueTo: post})
		b.cur = body
		b.stmt(s.Body)
		b.linkCur(post)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.linkCur(head)
		}
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.linkCur(head)
		b.cur = head
		b.add(rangeHead{Loop: s})
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		b.link(head, after)
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.linkCur(head)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after
	case *ast.SwitchStmt:
		var tag ast.Node
		if s.Tag != nil {
			tag = s.Tag
		}
		b.switchStmt(s.Init, tag, s.Body, true)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, s.Assign, s.Body, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.ensure()
		after := b.newBlock()
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			b.link(head, cb)
			b.cur = cb
			b.stmt(cc.Comm)
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.linkCur(after)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after
	case *ast.ReturnStmt:
		b.add(s)
		b.linkCur(b.g.exit)
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.LabeledStmt:
		lb := b.newBlock()
		b.linkCur(lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ExprStmt:
		b.add(s)
		if callNeverReturns(s.X) {
			b.cur = nil
		}
	default:
		// Assign, Decl, Send, IncDec, Defer, Go, Empty: straight-line.
		b.add(s)
	}
}

// switchStmt builds (type-)switch control flow. tag is the dispatch
// node evaluated by the head block (the switch tag expression or the
// type-switch guard assignment; nil for a bare switch). withFallthrough
// is true for value switches only.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Node, body *ast.BlockStmt, withFallthrough bool) {
	label := b.takeLabel()
	b.stmt(init)
	if tag != nil {
		b.add(tag)
	}
	head := b.ensure()
	after := b.newBlock()
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		b.link(head, bodies[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(head, after)
	}
	b.scopes = append(b.scopes, cfgScope{label: label, breakTo: after})
	savedFall := b.fallTo
	for i, c := range clauses {
		b.cur = bodies[i]
		b.fallTo = nil
		if withFallthrough && i+1 < len(clauses) {
			b.fallTo = bodies[i+1]
		}
		for _, st := range c.Body {
			b.stmt(st)
		}
		b.linkCur(after)
	}
	b.fallTo = savedFall
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if label == "" || sc.label == label {
				b.linkCur(sc.breakTo)
				return
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if sc.continueTo != nil && (label == "" || sc.label == label) {
				b.linkCur(sc.continueTo)
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		if b.cur != nil && label != "" {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		if b.fallTo != nil {
			b.linkCur(b.fallTo)
		} else {
			b.cur = nil
		}
	}
}

// callNeverReturns reports whether e is a call that provably does not
// return: the panic builtin, os.Exit, runtime.Goexit, log.Fatal*.
// Syntactic on purpose — the CFG builder has no type info, and a
// shadowed `panic` is not a pattern this module contains.
func callNeverReturns(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fn.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fn.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatalln"):
			return true
		}
	}
	return false
}

// pathToExit reports whether the function exit is reachable from the
// node after (from, startIdx) without first passing a node for which
// stop returns true. When bad is non-nil, reaching a bad node (before
// any stop node) also counts as an escaping path — spanend uses it to
// treat re-assignment of a live span as a leak of the old one.
func (g *funcCFG) pathToExit(from *cfgBlock, startIdx int, stop, bad func(ast.Node) bool) bool {
	type item struct {
		b *cfgBlock
		i int
	}
	seen := map[*cfgBlock]bool{}
	stack := []item{{from, startIdx}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if it.b == g.exit {
			return true
		}
		blocked := false
		for i := it.i; i < len(it.b.nodes); i++ {
			n := it.b.nodes[i]
			if bad != nil && bad(n) {
				return true
			}
			if stop(n) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		for _, s := range it.b.succs {
			if s == g.exit {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, item{s, 0})
			}
		}
	}
	return false
}

// forEachFuncBody invokes fn once per function body in file: every
// FuncDecl with a body and every FuncLit, each treated as its own
// function. node is the *ast.FuncDecl or *ast.FuncLit.
func forEachFuncBody(file *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(d, d.Body)
		}
		return true
	})
}

// inspectShallow walks n without descending into function literals:
// the traversal an intraprocedural analyzer wants when a statement's
// side effects matter but a closure's deferred body does not. The root
// itself is visited even when it is a FuncLit. A rangeHead root is
// unwrapped to the expressions the loop head actually evaluates.
func inspectShallow(n ast.Node, f func(ast.Node) bool) {
	if rh, ok := n.(rangeHead); ok {
		inspectShallow(rh.Loop.X, f)
		return
	}
	root := n
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != root {
			return false
		}
		return f(m)
	})
}
