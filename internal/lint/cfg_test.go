package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a single function and returns it.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file, err := parser.ParseFile(token.NewFileSet(), "t.go", "package p\nfunc f() {\n"+src+"\n}\n", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

// callNamed returns a stop/bad predicate matching any statement that
// contains a call to the named function.
func callNamed(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		inspectShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

// escapes reports whether the function body has a path from entry to
// exit that avoids every call to the named function — the reachability
// question spanend asks with stop = "the call that discharges the
// obligation".
func escapes(t *testing.T, src, mustPass string) bool {
	t.Helper()
	g := buildCFG(parseBody(t, src))
	return g.pathToExit(g.entry, 0, callNamed(mustPass), nil)
}

func TestCFGStraightLine(t *testing.T) {
	if escapes(t, "a(); done(); b()", "done") {
		t.Error("straight-line path should pass through done()")
	}
	if !escapes(t, "a(); b()", "done") {
		t.Error("exit must be reachable when done() is never called")
	}
}

func TestCFGBranches(t *testing.T) {
	// Only the then-branch discharges: the implicit else escapes.
	if !escapes(t, "if c {\ndone()\n}", "done") {
		t.Error("if without else must have an escaping path")
	}
	// Both arms discharge: no escape.
	if escapes(t, "if c {\ndone()\n} else {\ndone()\n}", "done") {
		t.Error("done() on both branches blocks every path")
	}
	// One arm discharges, the other returns early — early return IS a
	// path to exit.
	if !escapes(t, "if c {\ndone()\n} else {\nreturn\n}", "done") {
		t.Error("early return must count as a path to exit")
	}
	// One arm panics instead of returning: panic is not a path to exit.
	if escapes(t, "if c {\ndone()\n} else {\npanic(1)\n}", "done") {
		t.Error("a panicking arm is not a path to exit")
	}
}

func TestCFGLoops(t *testing.T) {
	// A conditional loop can run zero times: done() inside is skippable.
	if !escapes(t, "for i := 0; i < n; i++ {\ndone()\n}", "done") {
		t.Error("conditional loop body may be skipped")
	}
	// Same for range loops.
	if !escapes(t, "for range xs {\ndone()\n}", "done") {
		t.Error("range loop body may be skipped")
	}
	// for{} has no normal exit: the only way out passes through done().
	if escapes(t, "for {\nif c {\ndone()\nreturn\n}\n}", "done") {
		t.Error("infinite loop exits only via the guarded return after done()")
	}
	// ...but a break before done() escapes.
	if !escapes(t, "for {\nif c {\nbreak\n}\ndone()\nreturn\n}", "done") {
		t.Error("break must provide a path around done()")
	}
	// Labeled break out of the inner loop still reaches done(); labeled
	// break out of the OUTER loop escapes.
	if !escapes(t, "outer:\nfor {\nfor {\nbreak outer\n}\ndone()\nreturn\n}", "done") {
		t.Error("labeled break must target the labeled loop")
	}
}

func TestCFGSwitch(t *testing.T) {
	// No default: the untaken path escapes.
	if !escapes(t, "switch x {\ncase 1:\ndone()\n}", "done") {
		t.Error("switch without default must have an escaping path")
	}
	// Every arm including default discharges: no escape.
	if escapes(t, "switch x {\ncase 1:\ndone()\ndefault:\ndone()\n}", "done") {
		t.Error("done() in every arm blocks all paths")
	}
	// A panicking default does not count as a path to exit.
	if escapes(t, "switch x {\ncase 1:\ndone()\ndefault:\npanic(1)\n}", "done") {
		t.Error("panicking default is not a path to exit")
	}
	// Fallthrough: case 1 falls into case 2's done().
	if escapes(t, "switch x {\ncase 1:\nfallthrough\ncase 2:\ndone()\ndefault:\ndone()\n}", "done") {
		t.Error("fallthrough must reach the next clause's done()")
	}
}

func TestCFGSelect(t *testing.T) {
	if escapes(t, "select {\ncase <-a:\ndone()\ncase <-b:\ndone()\n}", "done") {
		t.Error("done() in every comm clause blocks all paths")
	}
	if !escapes(t, "select {\ncase <-a:\ndone()\ncase <-b:\n}", "done") {
		t.Error("a clause without done() must escape")
	}
}

func TestCFGDefer(t *testing.T) {
	// Defer statements are straight-line nodes: they stay in their
	// block in source order and do not fork control flow. hasDeferredEnd
	// (spanend) and applyLockOps (lockheld) rely on seeing the
	// *ast.DeferStmt itself.
	g := buildCFG(parseBody(t, "defer done()\na()"))
	var defers int
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				defers++
			}
		}
	}
	if defers != 1 {
		t.Fatalf("got %d DeferStmt nodes in the CFG, want 1", defers)
	}
	// The defer's call is not executed where it appears, so as a stop
	// predicate target it must still "block" only via its own node:
	// pathToExit sees the DeferStmt node containing the call.
	if escapes(t, "defer done()\na()", "done") {
		t.Error("the DeferStmt node itself satisfies the stop predicate")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	// Nothing after a return executes: done() after return does not
	// block the path.
	if !escapes(t, "if c {\nreturn\n}\ndone()", "done") {
		t.Error("return before done() must escape")
	}
	// Dead code after return lives in a predecessor-less block and
	// must not leak into reachability.
	if !escapes(t, "return\ndone()", "done") {
		t.Error("unreachable done() must not block the straight return")
	}
}

func TestCFGRangeHead(t *testing.T) {
	// The loop head is represented by a rangeHead wrapper carrying the
	// range expression but not the body.
	g := buildCFG(parseBody(t, "for v := range ch {\nuse(v)\n}"))
	var heads int
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			if rh, ok := n.(rangeHead); ok {
				heads++
				found := false
				inspectShallow(rh, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && id.Name == "ch" {
						found = true
					}
					return true
				})
				if !found {
					t.Error("rangeHead must expose the range expression")
				}
				inspectShallow(rh, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						t.Errorf("rangeHead leaked a body node: %v", call)
					}
					return true
				})
			}
		}
	}
	if heads != 1 {
		t.Fatalf("got %d rangeHead nodes, want 1", heads)
	}
}

func TestCFGGoto(t *testing.T) {
	// goto jumps over done() straight to the label.
	if !escapes(t, "goto out\ndone()\nout:\na()", "done") {
		t.Error("goto must provide a path around done()")
	}
}
