package lint

// Config pairs the analyzers to run with the package scope each one
// applies to.
type Config struct {
	Analyzers []*Analyzer
	Scopes    map[string]Scope
}

// DefaultConfig is the repo's determinism contract. Every exemption
// here is a policy decision with a reason; narrowing an exemption means
// fixing the package first.
func DefaultConfig() *Config {
	return &Config{
		Analyzers: []*Analyzer{
			NoRawTime, NoGlobalRand, FloatEq, UncheckedErr, CtxPropagate, StoreAppend,
			SpanEnd, GoroutineLeak, LockHeld, FrameExhaustive, MetricName,
		},
		Scopes: map[string]Scope{
			// Everything under internal/ is simulation or analysis code
			// and must be replayable from a seed, except the packages
			// that talk to the real network or serve real clients:
			//   - internal/serve: HTTP layer; uptime metrics, cache ages
			//     and request latency histograms legitimately read real
			//     time.
			//   - internal/tcping, internal/icmp: measure RTTs on real
			//     sockets; the wall clock IS the measurement.
			//   - internal/dnssim: binds real listeners and needs real
			//     socket deadlines.
			//   - internal/obs: the observability layer measures the wall
			//     clock by design (span durations, obs.Time stopwatches);
			//     it is the ONE place deterministic packages may route
			//     timing through, which is exactly why it cannot itself be
			//     clock-free.
			// cmd/ and examples/ are thin CLI shells over the library
			// and may time their own runs.
			NoRawTime.Name: {
				Include: []string{"internal"},
				Exclude: []string{"internal/serve", "internal/tcping", "internal/icmp", "internal/dnssim", "internal/obs"},
			},
			// The global rand source is forbidden everywhere, CLIs
			// included: a stray global draw anywhere in the process
			// perturbs nothing locally but couples seeds across
			// components the moment two of them share it.
			NoGlobalRand.Name: {Include: []string{""}},
			// Float equality is checked where figure math lives.
			FloatEq.Name: {
				Include: []string{"internal/stats", "internal/analysis", "internal/store"},
			},
			// Write paths: dataset encoders/sinks, the sharded store,
			// and the campaign engine's checkpoints.
			UncheckedErr.Name: {
				Include: []string{"internal/dataset", "internal/store", "internal/measure"},
			},
			// dataset.Store's record slices have exactly one sanctioned
			// writer: internal/dataset itself (FromRecords, AddPing,
			// AddTrace, Merge, the sinks). Everywhere else a direct
			// append bypasses the streaming spine.
			StoreAppend.Name: {
				Include: []string{""},
				Exclude: []string{"internal/dataset"},
			},
			// The packages whose exported API spawns goroutines or
			// blocks: the campaign engine (checkpoint/resume depends on
			// cancellation), the HTTP service (graceful drain), the
			// admission layer in front of it, the load harness
			// (thousands of client goroutines must die with the run),
			// the distributed campaign plane (coordinator accept
			// loops, worker lease loops and both transports block on
			// peers that may never answer), and the mmap-backed segment
			// reader (it sits directly on the serve path, so an exported
			// method that spawned or blocked would dodge request
			// cancellation).
			CtxPropagate.Name: {
				Include: []string{"internal/measure", "internal/serve", "internal/admit", "internal/load", "internal/cluster", "internal/segment"},
			},
			// The flow-aware invariants (DESIGN.md §13) hold everywhere:
			// a leaked span, a fire-and-forget goroutine, a channel op
			// under a mutex, a non-exhaustive frame switch or an
			// unbounded metric label is a bug in a CLI shell just as in
			// the spine. Intentional exceptions are taken in place with
			// lint:ignore and a recorded reason, never by scope.
			SpanEnd.Name:         {Include: []string{""}},
			GoroutineLeak.Name:   {Include: []string{""}},
			LockHeld.Name:        {Include: []string{""}},
			FrameExhaustive.Name: {Include: []string{""}},
			MetricName.Name:      {Include: []string{""}},
		},
	}
}
