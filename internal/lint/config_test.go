package lint

import (
	"path/filepath"
	"testing"
)

// TestNoRawTimeObsExemption pins the shape of the norawtime exemption
// for the observability layer: the same fixture full of time.Now /
// time.Since / time.Sleep calls is clean when it claims to live in
// internal/obs and still fails everywhere else under internal/. The
// fixture is re-tagged rather than duplicated so the exemption is
// proven against real analyzer findings, not just Scope.Matches.
func TestNoRawTimeObsExemption(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "norawtime"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()

	runAs := func(rel string) []Finding {
		clone := *pkg
		clone.RelPath = rel
		var out []Finding
		for _, f := range Run(cfg, []*Package{&clone}) {
			if f.Analyzer == NoRawTime.Name {
				out = append(out, f)
			}
		}
		return out
	}

	if got := runAs("internal/obs"); len(got) != 0 {
		t.Errorf("internal/obs must be exempt from norawtime, got %d finding(s): %v", len(got), got)
	}
	// Sibling packages — including ones that route timing through obs —
	// keep the full contract: a plain time.Now() still fails there.
	// internal/admit and internal/load are pinned explicitly: the
	// admission layer and the load harness were built clock-free
	// (injected Clock, obs.Time/obs.After) precisely so they would NOT
	// need an exemption, and this keeps anyone from quietly adding one.
	for _, rel := range []string{
		"internal/measure", "internal/store", "internal/obsidian",
		"internal/admit", "internal/load",
		// The distributed campaign plane and its wire codec are also
		// clock-free by construction — lease expiry reads an injected
		// Clock and the reaper/heartbeats pace on obs.After — so
		// neither may ever grow a norawtime exemption.
		"internal/cluster", "internal/wirecodec",
		// The mmap-backed segment reader and the quantile sketches are
		// pure functions of the bytes on disk; if either ever wanted
		// the clock it would break replayability of figure queries, so
		// the exemption list must never grow them.
		"internal/segment", "internal/sketch",
	} {
		if got := runAs(rel); len(got) == 0 {
			t.Errorf("norawtime found nothing in %s; the obs exemption leaked", rel)
		}
	}
}

// TestCtxPropagateCoversAdmissionAndLoad pins the ctxpropagate scope:
// the admission controller, the load harness and the distributed
// campaign plane ship goroutine-spawning / channel-blocking APIs and
// must stay inside the analyzer's Include list.
func TestCtxPropagateCoversAdmissionAndLoad(t *testing.T) {
	scope := DefaultConfig().Scopes[CtxPropagate.Name]
	for _, rel := range []string{
		"internal/measure", "internal/serve", "internal/admit",
		"internal/load", "internal/cluster", "internal/segment",
	} {
		if !scope.Matches(rel) {
			t.Errorf("ctxpropagate scope must cover %s", rel)
		}
	}
	if scope.Matches("internal/stats") {
		t.Error("ctxpropagate scope unexpectedly covers internal/stats")
	}
}

// TestAnalyzerSetPinned pins the exact analyzer roster. Dropping one
// silently (a merge artifact, a config refactor) would pass every other
// test — the fixtures run analyzers one at a time — so the roster
// itself is part of the contract.
func TestAnalyzerSetPinned(t *testing.T) {
	want := []string{
		"norawtime", "noglobalrand", "floateq", "uncheckederr",
		"ctxpropagate", "storeappend",
		"spanend", "goroutineleak", "lockheld", "frameexhaustive", "metricname",
	}
	cfg := DefaultConfig()
	if len(cfg.Analyzers) != len(want) {
		t.Fatalf("DefaultConfig has %d analyzers, want %d", len(cfg.Analyzers), len(want))
	}
	for i, az := range cfg.Analyzers {
		if az.Name != want[i] {
			t.Errorf("Analyzers[%d] = %s, want %s", i, az.Name, want[i])
		}
		if _, ok := cfg.Scopes[az.Name]; !ok {
			t.Errorf("analyzer %s has no scope entry", az.Name)
		}
	}
}

// TestNoRawTimeExemptionsPinned pins the norawtime Exclude list
// verbatim. Every entry is a policy decision documented in
// DefaultConfig; growing the list is how determinism erodes, so a new
// exemption must show up here — in review — and not only in config.go.
func TestNoRawTimeExemptionsPinned(t *testing.T) {
	want := []string{
		"internal/serve", "internal/tcping", "internal/icmp",
		"internal/dnssim", "internal/obs",
	}
	got := DefaultConfig().Scopes[NoRawTime.Name].Exclude
	if len(got) != len(want) {
		t.Fatalf("norawtime Exclude = %v, want exactly %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("norawtime Exclude[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestFlowAnalyzersCoverEverything pins the flow-aware analyzers to a
// module-wide scope with no excludes: their exceptions are taken in
// place with lint:ignore plus a reason, never by carving out packages.
func TestFlowAnalyzersCoverEverything(t *testing.T) {
	cfg := DefaultConfig()
	for _, az := range []*Analyzer{SpanEnd, GoroutineLeak, LockHeld, FrameExhaustive, MetricName} {
		scope := cfg.Scopes[az.Name]
		if !scope.Matches("") || !scope.Matches("internal/store") || !scope.Matches("cmd/cloudyvet") {
			t.Errorf("%s must apply module-wide, got %+v", az.Name, scope)
		}
		if len(scope.Exclude) != 0 {
			t.Errorf("%s must have no package-level excludes, got %v", az.Name, scope.Exclude)
		}
	}
}
