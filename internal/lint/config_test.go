package lint

import (
	"path/filepath"
	"testing"
)

// TestNoRawTimeObsExemption pins the shape of the norawtime exemption
// for the observability layer: the same fixture full of time.Now /
// time.Since / time.Sleep calls is clean when it claims to live in
// internal/obs and still fails everywhere else under internal/. The
// fixture is re-tagged rather than duplicated so the exemption is
// proven against real analyzer findings, not just Scope.Matches.
func TestNoRawTimeObsExemption(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "norawtime"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()

	runAs := func(rel string) []Finding {
		clone := *pkg
		clone.RelPath = rel
		var out []Finding
		for _, f := range Run(cfg, []*Package{&clone}) {
			if f.Analyzer == NoRawTime.Name {
				out = append(out, f)
			}
		}
		return out
	}

	if got := runAs("internal/obs"); len(got) != 0 {
		t.Errorf("internal/obs must be exempt from norawtime, got %d finding(s): %v", len(got), got)
	}
	// Sibling packages — including ones that route timing through obs —
	// keep the full contract: a plain time.Now() still fails there.
	// internal/admit and internal/load are pinned explicitly: the
	// admission layer and the load harness were built clock-free
	// (injected Clock, obs.Time/obs.After) precisely so they would NOT
	// need an exemption, and this keeps anyone from quietly adding one.
	for _, rel := range []string{
		"internal/measure", "internal/store", "internal/obsidian",
		"internal/admit", "internal/load",
		// The distributed campaign plane and its wire codec are also
		// clock-free by construction — lease expiry reads an injected
		// Clock and the reaper/heartbeats pace on obs.After — so
		// neither may ever grow a norawtime exemption.
		"internal/cluster", "internal/wirecodec",
	} {
		if got := runAs(rel); len(got) == 0 {
			t.Errorf("norawtime found nothing in %s; the obs exemption leaked", rel)
		}
	}
}

// TestCtxPropagateCoversAdmissionAndLoad pins the ctxpropagate scope:
// the admission controller, the load harness and the distributed
// campaign plane ship goroutine-spawning / channel-blocking APIs and
// must stay inside the analyzer's Include list.
func TestCtxPropagateCoversAdmissionAndLoad(t *testing.T) {
	scope := DefaultConfig().Scopes[CtxPropagate.Name]
	for _, rel := range []string{
		"internal/measure", "internal/serve", "internal/admit",
		"internal/load", "internal/cluster",
	} {
		if !scope.Matches(rel) {
			t.Errorf("ctxpropagate scope must cover %s", rel)
		}
	}
	if scope.Matches("internal/stats") {
		t.Error("ctxpropagate scope unexpectedly covers internal/stats")
	}
}
