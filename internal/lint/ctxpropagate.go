package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxPropagate enforces cancellation plumbing in the concurrent
// packages: an exported function that spawns goroutines or blocks on
// channel operations is a shutdown hazard unless callers can cancel it,
// so it must accept a context.Context and actually use it. The campaign
// engine's checkpoint/resume and the HTTP server's graceful drain both
// depend on cancellation reaching every blocking frame.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "exported functions that spawn goroutines or block on channels must accept and forward context.Context",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !fn.Name.IsExported() {
					continue
				}
				if !blocksOrSpawns(fn.Body) {
					continue
				}
				ctxParam := contextParam(pass, fn)
				if ctxParam == nil {
					pass.Reportf(fn.Name.Pos(),
						"exported %s spawns goroutines or blocks on channels but has no context.Context parameter",
						fn.Name.Name)
					continue
				}
				if ctxParam.Name() == "_" || !usesObject(pass, fn.Body, ctxParam) {
					pass.Reportf(fn.Name.Pos(),
						"exported %s accepts a context.Context but never forwards it",
						fn.Name.Name)
				}
			}
		}
	},
}

// blocksOrSpawns reports whether the body contains a go statement, a
// select, a channel send or a channel receive.
func blocksOrSpawns(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.GoStmt, *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}

// contextParam returns the function's context.Context parameter object,
// or nil.
func contextParam(pass *Pass, fn *ast.FuncDecl) *types.Var {
	def, ok := pass.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	params := def.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if types.TypeString(params.At(i).Type(), nil) == "context.Context" {
			return params.At(i)
		}
	}
	return nil
}

// usesObject reports whether obj is referenced anywhere in body.
func usesObject(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
