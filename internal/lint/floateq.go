package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands. Computed
// floats differ in the last ulp across compilers, architectures and
// evaluation orders, so equality tests silently flip figure output
// between hosts. Exact equality is occasionally the right tool — tie
// stepping in a merged CDF walk, sentinel zero checks on values that
// were stored, never computed — and those sites carry a
// "//lint:ignore floateq <reason>" directive in place.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "forbid ==/!= on floating-point operands in statistics/analysis/store code",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				if isFloat(pass.Info.TypeOf(bin.X)) || isFloat(pass.Info.TypeOf(bin.Y)) {
					pass.Reportf(bin.OpPos,
						"floating-point %s comparison; compare with a tolerance or restructure (lint:ignore with a reason if exact equality is intended)",
						bin.Op)
				}
				return true
			})
		}
	},
}

// isFloat reports whether t's underlying type is a float or complex
// basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
