package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FrameExhaustive keeps frame-type switches in lockstep with the wire
// protocol: any switch with a case naming one of wirecodec's Frame*
// constants must either cover every declared frame type or carry a
// non-empty default arm that handles the unknown type. The wire format
// is versioned and append-only — when FrameXxx number five lands, every
// dispatch that silently ignores unmatched frames corrupts a stream
// instead of erroring, and no test fails until a mixed-version fleet
// hits it.
var FrameExhaustive = &Analyzer{
	Name: "frameexhaustive",
	Doc:  "switches over wirecodec frame-type constants must cover every declared type or default to an error path",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				checkFrameSwitch(pass, sw)
				return true
			})
		}
	},
}

// frameConst resolves e to a wirecodec frame-type constant (a
// package-level const named Frame* in a package named wirecodec).
func frameConst(pass *Pass, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, ok := pass.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Name() != "wirecodec" {
		return nil
	}
	if !strings.HasPrefix(c.Name(), "Frame") || len(c.Name()) == len("Frame") {
		return nil
	}
	return c
}

// frameGroup enumerates every Frame* constant in the package that
// declared sample, with a type identical to sample's — the full set a
// frame switch must cover.
func frameGroup(sample *types.Const) []*types.Const {
	scope := sample.Pkg().Scope()
	var group []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Frame") || len(name) == len("Frame") {
			continue
		}
		if types.Identical(c.Type(), sample.Type()) {
			group = append(group, c)
		}
	}
	return group
}

func checkFrameSwitch(pass *Pass, sw *ast.SwitchStmt) {
	var sample *types.Const
	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if fc := frameConst(pass, e); fc != nil {
				covered[fc.Name()] = true
				if sample == nil {
					sample = fc
				}
			}
		}
	}
	if sample == nil {
		return // not a frame-type switch
	}
	if defaultClause != nil {
		if len(defaultClause.Body) == 0 {
			pass.Reportf(defaultClause.Pos(),
				"empty default in a frame-type switch silently drops unknown frames; return or record an error")
		}
		return
	}
	var missing []string
	for _, c := range frameGroup(sample) {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Pos(),
			"frame-type switch misses %s and has no default; new frame types would be silently ignored",
			strings.Join(missing, ", "))
	}
}
