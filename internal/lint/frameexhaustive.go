package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// frameConstGroups names the append-only tag-constant families the
// analyzer keeps switches in lockstep with: the wire protocol's Frame*
// types and the segment format's Block* kinds. Both formats are
// versioned and append-only, so a dispatch that silently ignores an
// unmatched tag corrupts a stream (or skips a block) instead of
// erroring the moment a newer writer meets an older reader.
var frameConstGroups = map[string]string{
	"wirecodec": "Frame",
	"segment":   "Block",
}

// FrameExhaustive keeps tag-type switches in lockstep with the binary
// formats: any switch with a case naming one of wirecodec's Frame* or
// segment's Block* constants must either cover every declared value of
// that group or carry a non-empty default arm that handles the unknown
// tag. The formats are versioned and append-only — when tag number five
// lands, every dispatch that silently ignores unmatched tags corrupts a
// stream instead of erroring, and no test fails until a mixed-version
// fleet hits it.
var FrameExhaustive = &Analyzer{
	Name: "frameexhaustive",
	Doc:  "switches over wirecodec frame-type or segment block-kind constants must cover every declared value or default to an error path",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok {
					return true
				}
				checkFrameSwitch(pass, sw)
				return true
			})
		}
	},
}

// frameConst resolves e to a tag constant from one of the registered
// groups (a package-level const named <prefix>* in a package listed in
// frameConstGroups) and returns it with its group prefix.
func frameConst(pass *Pass, e ast.Expr) (*types.Const, string) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil, ""
	}
	c, ok := pass.Info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil {
		return nil, ""
	}
	prefix, ok := frameConstGroups[c.Pkg().Name()]
	if !ok {
		return nil, ""
	}
	if !strings.HasPrefix(c.Name(), prefix) || len(c.Name()) == len(prefix) {
		return nil, ""
	}
	return c, prefix
}

// frameGroup enumerates every <prefix>* constant in the package that
// declared sample, with a type identical to sample's — the full set a
// tag switch must cover.
func frameGroup(sample *types.Const, prefix string) []*types.Const {
	scope := sample.Pkg().Scope()
	var group []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, prefix) || len(name) == len(prefix) {
			continue
		}
		if types.Identical(c.Type(), sample.Type()) {
			group = append(group, c)
		}
	}
	return group
}

func checkFrameSwitch(pass *Pass, sw *ast.SwitchStmt) {
	var sample *types.Const
	var prefix string
	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if fc, p := frameConst(pass, e); fc != nil {
				covered[fc.Name()] = true
				if sample == nil {
					sample, prefix = fc, p
				}
			}
		}
	}
	if sample == nil {
		return // not a frame-type switch
	}
	if defaultClause != nil {
		if len(defaultClause.Body) == 0 {
			pass.Reportf(defaultClause.Pos(),
				"empty default in a frame-type switch silently drops unknown frames; return or record an error")
		}
		return
	}
	var missing []string
	for _, c := range frameGroup(sample, prefix) {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(sw.Pos(),
			"frame-type switch misses %s and has no default; new frame types would be silently ignored",
			strings.Join(missing, ", "))
	}
}
