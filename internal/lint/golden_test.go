package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// goldenFixtures maps each fixture package under testdata/src to the
// analyzer it exercises. The suppress fixture reuses floateq because
// suppression is analyzer-agnostic.
var goldenFixtures = map[string]*Analyzer{
	"norawtime":    NoRawTime,
	"noglobalrand": NoGlobalRand,
	"floateq":      FloatEq,
	"uncheckederr": UncheckedErr,
	"ctxpropagate": CtxPropagate,
	"storeappend":  StoreAppend,
	"suppress":     FloatEq,

	// Flow-aware analyzers (DESIGN.md §13). These fixtures import the
	// real obs/sample/wirecodec packages so the type matching runs
	// against the genuine signatures.
	"spanend":         SpanEnd,
	"goroutineleak":   GoroutineLeak,
	"lockheld":        LockHeld,
	"frameexhaustive": FrameExhaustive,
	"metricname":      MetricName,
}

// wantRE pulls the quoted regexps out of a // want "..." comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants scans a fixture file for // want comments and returns the
// expected-message regexps per line.
func parseWants(t *testing.T, path string) map[int][]*regexp.Regexp {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int][]*regexp.Regexp{}
	for i, line := range strings.Split(string(data), "\n") {
		_, comment, ok := strings.Cut(line, "// want ")
		if !ok {
			continue
		}
		for _, m := range wantRE.FindAllStringSubmatch(comment, -1) {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
			}
			wants[i+1] = append(wants[i+1], re)
		}
	}
	return wants
}

// TestGolden runs each analyzer over its fixture package and requires
// the findings to match the // want comments exactly: every want must
// be hit and every finding must be wanted.
func TestGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(goldenFixtures))
	for name := range goldenFixtures {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		az := goldenFixtures[name]
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			cfg := &Config{
				Analyzers: []*Analyzer{az},
				Scopes:    map[string]Scope{az.Name: {Include: []string{""}}},
			}
			var findings []Finding
			for _, f := range Run(cfg, []*Package{pkg}) {
				if f.Analyzer == az.Name {
					findings = append(findings, f)
				}
			}

			wants := map[string]map[int][]*regexp.Regexp{}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".go") {
					path := filepath.Join(dir, e.Name())
					abs, err := filepath.Abs(path)
					if err != nil {
						t.Fatal(err)
					}
					wants[abs] = parseWants(t, path)
				}
			}

			matched := map[string]bool{}
			for _, f := range findings {
				hit := false
				for _, re := range wants[f.Pos.Filename][f.Pos.Line] {
					if re.MatchString(f.Message) {
						hit = true
						matched[fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, re)] = true
					}
				}
				if !hit {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for file, lines := range wants {
				for line, res := range lines {
					for _, re := range res {
						if !matched[fmt.Sprintf("%s:%d:%s", file, line, re)] {
							t.Errorf("%s:%d: no finding matched want %q", file, line, re)
						}
					}
				}
			}
		})
	}
}
