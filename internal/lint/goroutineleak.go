package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLeak forbids fire-and-forget goroutines: every `go`
// statement must have a visible exit path — a context it can watch, a
// channel it blocks on (so a peer's close/send/receive bounds its
// life), or a WaitGroup that joins it. An unbounded goroutine in the
// serving or campaign spine outlives its request, holds references
// past a store swap, and turns graceful drain into a timeout; the
// chaos tests only probabilistically catch what this check proves.
//
// Accepted exit signals in the spawned body (or, for `go f(args)`, in
// the arguments handed to f):
//
//   - any value of type context.Context (the goroutine, or its callee,
//     can select on Done)
//   - a channel operation: send, receive, select, range over a channel
//   - a channel-typed argument passed onward (the callee blocks on it)
//   - sync.WaitGroup.Done/Wait (the spawner joins it)
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "every go statement needs a ctx/done-channel/WaitGroup exit path; no fire-and-forget goroutines",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goroutineBounded(pass, file, gs) {
					pass.Reportf(gs.Pos(),
						"goroutine has no ctx/done-channel/WaitGroup exit path; fire-and-forget goroutines leak past drain")
				}
				return true
			})
		}
	},
}

func goroutineBounded(pass *Pass, file *ast.File, gs *ast.GoStmt) bool {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		// The literal's own parameters bind the call's arguments, so a
		// ctx/channel passed in is seen as a typed value in the body.
		return bodyHasExitSignal(pass, lit.Body)
	}
	// go f(args): intraprocedural, so trust a context or channel handed
	// to the callee — the exit path lives on the other side of the call.
	for _, arg := range gs.Call.Args {
		if t := pass.Info.TypeOf(arg); isContextType(t) || isChanType(t) {
			return true
		}
	}
	// go run(x) where run is a closure bound in this file: still
	// intraprocedural — follow the binding and scan the literal's body.
	if id, ok := gs.Call.Fun.(*ast.Ident); ok {
		if lits := localClosureBodies(pass, file, id); len(lits) > 0 {
			for _, lit := range lits {
				if !bodyHasExitSignal(pass, lit.Body) {
					return false
				}
			}
			return true
		}
	}
	// A method value bound to a receiver that carries its own lifecycle
	// is invisible here; require the explicit signal instead.
	return false
}

// localClosureBodies resolves id to the function literals bound to its
// object anywhere in file (run := func(...) {...}; var run = func...).
// If the variable is rebound, every binding must prove an exit signal,
// so all are returned.
func localClosureBodies(pass *Pass, file *ast.File, id *ast.Ident) []*ast.FuncLit {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	var lits []*ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || (pass.Info.Defs[lid] != obj && pass.Info.Uses[lid] != obj) {
					continue
				}
				if i < len(n.Rhs) {
					if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
						lits = append(lits, lit)
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Info.Defs[name] != obj {
					continue
				}
				if i < len(n.Values) {
					if lit, ok := n.Values[i].(*ast.FuncLit); ok {
						lits = append(lits, lit)
					}
				}
			}
		}
		return true
	})
	return lits
}

// bodyHasExitSignal scans a goroutine body (including nested literals,
// which run within the goroutine unless re-spawned) for an exit signal.
func bodyHasExitSignal(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if isContextType(pass.Info.TypeOf(n)) {
				found = true
			}
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(pass.Info.TypeOf(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			if isWaitGroupJoin(pass, n) {
				found = true
				return false
			}
			for _, arg := range n.Args {
				if t := pass.Info.TypeOf(arg); isContextType(t) || isChanType(t) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && types.TypeString(t, nil) == "context.Context"
}

// isChanType reports whether t (or what it points to) is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	t = t.Underlying()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem().Underlying()
	}
	_, ok := t.(*types.Chan)
	return ok
}

// isWaitGroupJoin reports whether call is Done() or Wait() on a
// sync.WaitGroup.
func isWaitGroupJoin(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Wait") {
		return false
	}
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return namedTypeIs(recv.Type(), "sync", "WaitGroup")
}

// namedTypeIs unwraps pointers/aliases and reports whether t is the
// named type pkgName.typeName (matching by package *name* so golden
// fixtures can mirror real packages).
func namedTypeIs(t types.Type, pkgName, typeName string) bool {
	for t != nil {
		t = types.Unalias(t)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}
