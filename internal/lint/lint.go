// Package lint is cloudyvet's analyzer framework: a stdlib-only static
// analysis pass (go/parser + go/types, no external dependencies) that
// enforces the repo-specific determinism and concurrency contract no
// generic tool checks.
//
// The reproduction's validity rests on one invariant: every figure in
// the paper pipeline must be bit-for-bit reproducible from a seed.
// Simulation and analysis code therefore must never read the wall
// clock, draw from the global math/rand source, or compare floats with
// ==. The analyzers here encode that contract:
//
//   - norawtime: no time.Now/Since/Sleep/... in sim/analysis packages;
//     virtual or injected clocks only.
//   - noglobalrand: no global math/rand draws and no time-seeded
//     sources anywhere; seeded *rand.Rand must be threaded through.
//   - floateq: no ==/!= on floating-point operands in the statistics,
//     analysis and store packages.
//   - uncheckederr: no silently discarded errors on dataset, store and
//     checkpoint write paths.
//   - ctxpropagate: exported functions in the concurrent packages that
//     spawn goroutines or block on channels must accept and forward a
//     context.Context.
//
// Findings print as "file:line:col: analyzer: message". Intentional
// exceptions are written in place with a "//lint:ignore <analyzer>
// <reason>" directive, whole packages are exempted by the per-analyzer
// scopes in DefaultConfig, and pre-existing findings can be
// grandfathered in a baseline file that fails the build only when a
// (file, analyzer) count grows.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
	"time"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in findings, lint:ignore directives,
	// baseline entries and scope configuration.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run inspects pass.Files and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one package's parsed and type-checked state to an
// analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test source files.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// RelPath is the package directory relative to the module root
	// ("" for the root package).
	RelPath string

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgPathOf resolves e to the import path of the package it names, or
// "" when e is not a package qualifier (the ident "time" in time.Now).
func (p *Pass) PkgPathOf(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// Finding is one diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding as file:line:col: analyzer: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer of cfg to every package, honouring scopes
// and inline suppressions, and returns the findings sorted by position.
// Baseline filtering is a separate step (Baseline.Filter) so callers
// can regenerate baselines from the raw finding set.
func Run(cfg *Config, pkgs []*Package) []Finding {
	findings, _ := RunWith(cfg, pkgs, RunOptions{})
	return findings
}

// RunOptions tunes a lint run.
type RunOptions struct {
	// Workers is the number of packages analyzed concurrently; values
	// below 1 mean serial. Packages are independent after loading (each
	// analyzer reads its own package's ASTs and the shared, immutable
	// type info), so the pool is a plain bounded fan-out.
	Workers int
	// Clock, when set, samples a monotonic stopwatch (elapsed time since
	// an arbitrary epoch) around each analyzer run to produce per-
	// analyzer timings. It is injected by the driver because this
	// package is itself under norawtime: the lint framework must not
	// read the wall clock it polices. Nil disables timing.
	Clock func() time.Duration
}

// AnalyzerTiming is the aggregate cost of one analyzer across every
// package it ran on. With Workers > 1 the Elapsed values are summed
// per-goroutine stopwatch time, i.e. CPU-ish cost, not wall clock.
type AnalyzerTiming struct {
	Name     string
	Elapsed  time.Duration
	Packages int
	Findings int
}

// RunWith is Run with a worker pool and optional per-analyzer timing.
// Findings are identical to a serial run: per-package results are
// collected in package order and sorted by position at the end, and
// each worker touches only its own package's state.
func RunWith(cfg *Config, pkgs []*Package, opts RunOptions) ([]Finding, []AnalyzerTiming) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}

	var mu sync.Mutex
	timings := map[string]*AnalyzerTiming{}
	record := func(name string, d time.Duration, findings int) {
		mu.Lock()
		defer mu.Unlock()
		t := timings[name]
		if t == nil {
			t = &AnalyzerTiming{Name: name}
			timings[name] = t
		}
		t.Elapsed += d
		t.Packages++
		t.Findings += findings
	}

	perPkg := make([][]Finding, len(pkgs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				perPkg[i] = runPackage(cfg, pkgs[i], opts.Clock, record)
			}
		}()
	}
	for i := range pkgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var all []Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})

	var ts []AnalyzerTiming
	for _, t := range timings {
		ts = append(ts, *t)
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Elapsed != ts[j].Elapsed {
			return ts[i].Elapsed > ts[j].Elapsed
		}
		return ts[i].Name < ts[j].Name
	})
	return all, ts
}

// runPackage applies cfg's analyzers to one package.
func runPackage(cfg *Config, pkg *Package, clock func() time.Duration, record func(string, time.Duration, int)) []Finding {
	sup, all := collectSuppressions(pkg.Fset, pkg.Files)
	for _, az := range cfg.Analyzers {
		if !cfg.Scopes[az.Name].Matches(pkg.RelPath) {
			continue
		}
		var found []Finding
		pass := &Pass{
			Analyzer: az,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			RelPath:  pkg.RelPath,
			findings: &found,
		}
		var start time.Duration
		if clock != nil {
			start = clock()
		}
		az.Run(pass)
		kept := 0
		for _, f := range found {
			if !sup.suppressed(f) {
				all = append(all, f)
				kept++
			}
		}
		if clock != nil {
			record(az.Name, clock()-start, kept)
		}
	}
	return all
}

// Scope selects the packages an analyzer applies to, by module-relative
// directory prefix. A package matches when it is under any Include
// prefix and under no Exclude prefix. The empty prefix "" matches every
// package.
type Scope struct {
	Include []string
	Exclude []string
}

// Matches reports whether the module-relative package path rel is in
// scope.
func (s Scope) Matches(rel string) bool {
	in := false
	for _, p := range s.Include {
		if hasPathPrefix(rel, p) {
			in = true
			break
		}
	}
	if !in {
		return false
	}
	for _, p := range s.Exclude {
		if hasPathPrefix(rel, p) {
			return false
		}
	}
	return true
}

// hasPathPrefix reports whether rel equals prefix or sits beneath it on
// a path-segment boundary ("internal/serve" matches "internal" but not
// "inter").
func hasPathPrefix(rel, prefix string) bool {
	if prefix == "" || rel == prefix {
		return true
	}
	return strings.HasPrefix(rel, strings.TrimSuffix(prefix, "/")+"/")
}
