package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestScopeMatches(t *testing.T) {
	cases := []struct {
		scope Scope
		rel   string
		want  bool
	}{
		{Scope{Include: []string{"internal"}}, "internal/stats", true},
		{Scope{Include: []string{"internal"}}, "internal", true},
		{Scope{Include: []string{"internal"}}, "internals", false},
		{Scope{Include: []string{"internal"}}, "cmd/cloudy", false},
		{Scope{Include: []string{""}}, "anything/at/all", true},
		{Scope{Include: []string{""}}, "", true},
		{Scope{Include: []string{"internal"}, Exclude: []string{"internal/serve"}}, "internal/serve", false},
		{Scope{Include: []string{"internal"}, Exclude: []string{"internal/serve"}}, "internal/served", true},
		{Scope{Include: []string{"internal"}, Exclude: []string{"internal/serve"}}, "internal/serve/sub", false},
	}
	for _, c := range cases {
		if got := c.scope.Matches(c.rel); got != c.want {
			t.Errorf("Scope%+v.Matches(%q) = %v, want %v", c.scope, c.rel, got, c.want)
		}
	}
}

func TestMalformedIgnoreDirective(t *testing.T) {
	src := `package p

func f(a, b float64) bool {
	//lint:ignore floateq
	return a == b
}

//lint:ignore
var x = 1
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup, bad := collectSuppressions(fset, []*ast.File{file})
	if len(bad) != 2 {
		t.Fatalf("got %d malformed-directive findings, want 2: %v", len(bad), bad)
	}
	for _, f := range bad {
		if f.Analyzer != "lint" || !strings.Contains(f.Message, "malformed lint:ignore") {
			t.Errorf("unexpected finding %v", f)
		}
	}
	// A directive missing its reason must not suppress anything.
	if sup.suppressed(Finding{Pos: token.Position{Filename: "p.go", Line: 5}, Analyzer: "floateq"}) {
		t.Error("malformed directive suppressed a finding")
	}
}

func TestBaselineFilter(t *testing.T) {
	find := func(file string, line int, az string) Finding {
		return Finding{Pos: token.Position{Filename: "/mod/" + file, Line: line}, Analyzer: az}
	}
	rel := func(p string) string { return strings.TrimPrefix(p, "/mod/") }

	base, err := ParseBaseline(strings.NewReader(`
# grandfathered
a.go floateq 2
b.go norawtime 1
`))
	if err != nil {
		t.Fatal(err)
	}

	// At or under the cap: fully suppressed.
	got := base.Filter([]Finding{
		find("a.go", 1, "floateq"),
		find("a.go", 9, "floateq"),
		find("b.go", 3, "norawtime"),
	}, rel)
	if len(got) != 0 {
		t.Fatalf("at-cap findings not suppressed: %v", got)
	}

	// Growth past the cap reports every finding for the pair, so new
	// violations cannot hide behind grandfathered ones.
	got = base.Filter([]Finding{
		find("a.go", 1, "floateq"),
		find("a.go", 9, "floateq"),
		find("a.go", 20, "floateq"),
		find("b.go", 3, "norawtime"),
	}, rel)
	if len(got) != 3 {
		t.Fatalf("grown pair: got %d findings, want all 3: %v", len(got), got)
	}

	// Pairs absent from the baseline always report.
	got = base.Filter([]Finding{find("c.go", 1, "floateq")}, rel)
	if len(got) != 1 {
		t.Fatalf("unbaselined finding suppressed: %v", got)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Pos: token.Position{Filename: "/mod/x.go", Line: 4}, Analyzer: "floateq"},
		{Pos: token.Position{Filename: "/mod/x.go", Line: 8}, Analyzer: "floateq"},
		{Pos: token.Position{Filename: "/mod/y.go", Line: 2}, Analyzer: "uncheckederr"},
	}
	rel := func(p string) string { return strings.TrimPrefix(p, "/mod/") }
	var sb strings.Builder
	if err := WriteBaseline(&sb, findings, rel); err != nil {
		t.Fatal(err)
	}
	base, err := ParseBaseline(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parsing written baseline %q: %v", sb.String(), err)
	}
	if got := base.Filter(findings, rel); len(got) != 0 {
		t.Fatalf("round-tripped baseline does not cover its own findings: %v", got)
	}
}

func TestBaselineParseErrors(t *testing.T) {
	for _, bad := range []string{
		"a.go floateq",       // missing count
		"a.go floateq x",     // non-numeric count
		"a.go floateq 0",     // zero cap is meaningless
		"a.go floateq 1 2 3", // trailing fields
	} {
		if _, err := ParseBaseline(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseBaseline(%q) succeeded, want error", bad)
		}
	}
}
