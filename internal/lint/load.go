package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked module package, ready for
// analysis.
type Package struct {
	// Path is the full import path, RelPath the module-relative
	// directory ("" for the module root package).
	Path    string
	RelPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader discovers, parses and type-checks every package in a module
// using only the standard library: module packages are parsed from
// their directories and the standard library is type-checked from
// GOROOT source through the same recursive importer, so no export data
// and no golang.org/x/tools are needed. Cgo is disabled — every stdlib
// package the analyses touch has a pure-Go fallback — which keeps the
// load deterministic and toolchain-only.
type Loader struct {
	ModRoot string // absolute path of the module root
	ModPath string // module path from go.mod

	fset *token.FileSet
	ctxt build.Context
	// cache holds stdlib packages; modCache holds module packages,
	// which are type-checked exactly once (with full Info) so every
	// importer sees the same *types.Package identity.
	cache    map[string]*loaded
	modCache map[string]*Package
	modBusy  map[string]bool
}

type loaded struct {
	pkg  *types.Package
	err  error
	busy bool
}

// NewLoader prepares a loader for the module rooted at dir (any
// directory inside the module works; the root is found by walking up to
// go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		ModRoot:  root,
		ModPath:  modPath,
		fset:     token.NewFileSet(),
		ctxt:     ctxt,
		cache:    map[string]*loaded{},
		modCache: map[string]*Package{},
		modBusy:  map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`)), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadModule walks the module tree and loads every buildable package,
// skipping testdata, vendor and hidden directories. _test.go files are
// never analyzed: tests may read real time and shared RNGs freely (the
// -shuffle gate covers their order-dependence instead).
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir. dir may
// live under testdata (the golden-test fixtures do), in which case the
// import path is synthesized from the module-relative location.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	importPath := l.ModPath
	if rel != "" {
		importPath = l.ModPath + "/" + rel
	}
	if p, ok := l.modCache[importPath]; ok {
		return p, nil
	}
	if l.modBusy[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.modBusy[importPath] = true
	defer delete(l.modBusy, importPath)

	asts, err := l.parseDir(abs, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := l.check(importPath, asts, info, false)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		Path:    importPath,
		RelPath: rel,
		Fset:    l.fset,
		Files:   asts,
		Types:   tpkg,
		Info:    info,
	}
	l.modCache[importPath] = p
	return p, nil
}

// parseDir parses the buildable non-test Go files of dir, honouring
// build constraints for the host platform. Files parse concurrently:
// token.FileSet is safe for concurrent use, and parsing dominates the
// cost of the source-based stdlib import, so the fan-out here is what
// keeps a whole-module run under the CI latency budget.
func (l *Loader) parseDir(dir string, mode parser.Mode) ([]*ast.File, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	asts := make([]*ast.File, len(bp.GoFiles))
	errs := make([]error, len(bp.GoFiles))
	var wg sync.WaitGroup
	for i, name := range bp.GoFiles {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			asts[i], errs[i] = parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode|parser.SkipObjectResolution)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return asts, nil
}

// check type-checks a parsed package, resolving imports through the
// loader itself. Imported (non-module) packages are checked with
// IgnoreFuncBodies: the analyzers only ever look at the module's own
// ASTs, so the stdlib contributes nothing but its exported API — and
// skipping its function bodies is what keeps a cold whole-module load
// inside the CI latency budget on one core.
func (l *Loader) check(path string, asts []*ast.File, info *types.Info, apiOnly bool) (*types.Package, error) {
	conf := types.Config{
		Importer:         l,
		FakeImportC:      true,
		IgnoreFuncBodies: apiOnly,
		// Collect the first error but keep going so one bad file does
		// not hide the rest of the report.
		Error: func(error) {},
	}
	return conf.Check(path, l.fset, asts, info)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the module tree, everything else from GOROOT source.
func (l *Loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Module packages go through LoadDir so analysis and import share
	// one *types.Package per path.
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if c, ok := l.cache[path]; ok {
		if c.busy {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		return c.pkg, c.err
	}
	entry := &loaded{busy: true}
	l.cache[path] = entry

	bp, err := l.ctxt.Import(path, srcDir, build.FindOnly)
	if err != nil {
		entry.busy, entry.err = false, err
		return nil, err
	}
	dir := bp.Dir
	asts, err := l.parseDir(dir, 0)
	if err != nil {
		entry.busy, entry.err = false, err
		return nil, err
	}
	pkg, err := l.check(path, asts, nil, true)
	entry.busy, entry.pkg, entry.err = false, pkg, err
	return pkg, err
}
