package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// LockHeld forbids blocking operations while a sync.Mutex or RWMutex
// is held: channel sends/receives/selects, ranging over a channel,
// network I/O (net / net/http calls, wirecodec frame reads/writes) and
// sample.Bus delivery (Ping/Trace/Close block on backpressure). A
// blocking call under a hot-path lock turns backpressure into a
// pile-up: every reader of that mutex parks behind a channel that may
// never drain, which is precisely the deadlock shape the serve/store/
// cluster chaos tests can only sample.
//
// The analysis is a forward may-held dataflow over the function CFG:
// Lock()/RLock() acquires, Unlock()/RUnlock() releases, paths merge by
// union (held on any incoming path counts as held), and a deferred
// Unlock intentionally does NOT release — the lock really is held for
// the rest of the function, which is exactly when a later channel op
// is a bug. Lock identity is the receiver expression's source text
// ("s.mu"), so aliased mutexes are out of scope, as is anything
// interprocedural.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no channel ops, network I/O or sample.Bus delivery while a sync.Mutex/RWMutex is held",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			forEachFuncBody(file, func(_ ast.Node, body *ast.BlockStmt) {
				checkLocks(pass, body)
			})
		}
	},
}

func checkLocks(pass *Pass, body *ast.BlockStmt) {
	// Cheap pre-scan: no Lock() call, no CFG.
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, kind := mutexOp(pass, call); kind == lockAcquire {
				found = true
			}
		}
		return !found
	})
	if !found {
		return
	}

	g := buildCFG(body)
	in := map[*cfgBlock]map[string]bool{}
	in[g.entry] = map[string]bool{}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		state := copyLockSet(in[blk])
		for _, n := range blk.nodes {
			applyLockOps(pass, n, state)
		}
		for _, succ := range blk.succs {
			if mergeLockSet(in, succ, state) {
				work = append(work, succ)
			}
		}
	}

	// Reporting pass: walk each block once with its fixpoint in-state.
	reported := map[token.Pos]bool{}
	for _, blk := range g.blocks {
		state, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		state = copyLockSet(state)
		for _, n := range blk.nodes {
			if len(state) > 0 {
				reportBlockingOps(pass, n, state, reported)
			}
			applyLockOps(pass, n, state)
		}
	}
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// mutexOp classifies call as a Lock/RLock (acquire) or Unlock/RUnlock
// (release) on a sync.Mutex or sync.RWMutex, returning the lock's
// identity — the receiver expression's source text.
func mutexOp(pass *Pass, call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", lockNone
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", lockNone
	}
	t := pass.Info.TypeOf(sel.X)
	if !namedTypeIs(t, "sync", "Mutex") && !namedTypeIs(t, "sync", "RWMutex") {
		return "", lockNone
	}
	return exprText(sel.X), kind
}

// applyLockOps updates the held-set with the acquires and releases in
// node n. Deferred unlocks are skipped: the lock stays held until the
// function returns, so everything after the defer runs under it.
func applyLockOps(pass *Pass, n ast.Node, state map[string]bool) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	inspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch key, kind := mutexOp(pass, call); kind {
		case lockAcquire:
			state[key] = true
		case lockRelease:
			delete(state, key)
		}
		return true
	})
}

// reportBlockingOps flags channel and I/O operations in node n while
// any lock in state is held.
func reportBlockingOps(pass *Pass, n ast.Node, state map[string]bool, reported map[token.Pos]bool) {
	held := anyLock(state)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	switch h := n.(type) {
	case rangeHead:
		if isChanType(pass.Info.TypeOf(h.Loop.X)) {
			report(h.Loop.Pos(), "ranging over a channel while %s is held blocks every waiter on the lock", held)
		}
		return
	case *ast.DeferStmt:
		return // runs at exit, not here
	}
	inspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.SendStmt:
			report(m.Arrow, "channel send while %s is held blocks every waiter on the lock", held)
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				report(m.OpPos, "channel receive while %s is held blocks every waiter on the lock", held)
			}
		case *ast.CallExpr:
			if pkg, name, ok := calleeFromPkg(pass, m); ok {
				switch pkg {
				case "net", "net/http":
					report(m.Pos(), "network I/O (%s.%s) while %s is held", pkg, name, held)
				}
			}
			if recv, method, ok := methodOnNamed(pass, m); ok {
				switch {
				case recvIs(recv, "sample", "Bus") && (method == "Ping" || method == "Trace" || method == "Close"):
					report(m.Pos(), "sample.Bus.%s blocks on backpressure; calling it while %s is held stalls every waiter", method, held)
				case recvInPkg(recv, "wirecodec") && blockingWireMethod(method):
					report(m.Pos(), "wirecodec %s does stream I/O; calling it while %s is held serializes the fleet on the lock", method, held)
				}
			}
		}
		return true
	})
}

// anyLock returns one held lock name for the message (deterministic:
// the lexicographically smallest).
func anyLock(state map[string]bool) string {
	best := ""
	for k := range state {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

func copyLockSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// mergeLockSet unions state into in[blk], reporting whether anything
// changed (union merge: held on any path counts).
func mergeLockSet(in map[*cfgBlock]map[string]bool, blk *cfgBlock, state map[string]bool) bool {
	cur, ok := in[blk]
	if !ok {
		in[blk] = copyLockSet(state)
		return true
	}
	changed := false
	for k := range state {
		if !cur[k] {
			cur[k] = true
			changed = true
		}
	}
	return changed
}

// calleeFromPkg resolves a call to a package-level function and
// returns its package path and name.
func calleeFromPkg(pass *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return "", "", false
	}
	f, isFn := pass.Info.Uses[id].(*types.Func)
	if !isFn || f.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := f.Type().(*types.Signature); isSig && sig.Recv() != nil {
		return "", "", false // methods resolved by methodOnNamed
	}
	return f.Pkg().Path(), f.Name(), true
}

// methodOnNamed resolves a call to a method and returns the receiver
// type and method name.
func methodOnNamed(pass *Pass, call *ast.CallExpr) (recv types.Type, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	f, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, "", false
	}
	sig, isSig := f.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, "", false
	}
	return sig.Recv().Type(), f.Name(), true
}

func recvIs(t types.Type, pkgName, typeName string) bool {
	return namedTypeIs(t, pkgName, typeName)
}

// recvInPkg reports whether the receiver's named type lives in a
// package with the given name.
func recvInPkg(t types.Type, pkgName string) bool {
	for t != nil {
		t = types.Unalias(t)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// blockingWireMethod lists the wirecodec methods that touch the
// underlying stream (as opposed to the pure encoders/decoders).
// Writer.Ping/Trace buffer, but flush to the stream at batch
// boundaries, so they block just as unpredictably.
func blockingWireMethod(name string) bool {
	switch name {
	case "WriteFrame", "Flush", "ReadFrame", "Scan",
		"WritePings", "WriteTraces", "WriteEOF",
		"Ping", "Trace", "Close", "Finish":
		return true
	}
	return false
}

// exprText renders an expression's source text, the identity key for
// lock expressions.
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
