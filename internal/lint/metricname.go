package lint

import (
	"go/ast"
	"go/constant"
	"regexp"
)

// MetricName enforces the instrument-naming contract of DESIGN.md §10:
// obs instrument names and label keys are compile-time snake_case
// constants, and label values must come from a bounded set. Instrument
// identity is interned at registration, so a name or label computed
// per call defeats the interning (one instrument per request) and an
// unbounded label value — probe IDs, country codes, raw paths — grows
// the registry without bound and makes /v1/metricsz scrape-hostile.
//
// Concretely, at every Registry.Counter/Gauge/Histogram/GaugeFunc call:
//
//   - the name argument must be a compile-time string constant matching
//     ^[a-z][a-z0-9]*(_[a-z0-9]+)*$
//   - label keys (the even variadic positions) must be compile-time
//     snake_case constants too
//   - label values may be constants or plain variable/field reads (a
//     value threaded from a bounded enumeration), but never an inline
//     computation (fmt.Sprint, strconv.Itoa, concatenation): compute
//     the bounded value upstream, or suppress with a recorded reason
//     if the cardinality really is bounded (e.g. a fixed shard count).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs instrument names must be compile-time snake_case constants with bounded label sets",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method, ok := registryCall(pass, call)
				if !ok {
					return true
				}
				checkInstrumentCall(pass, call, method)
				return true
			})
		}
	},
}

var snakeCaseRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// registryCall reports whether call is one of the instrument
// constructors on obs.Registry.
func registryCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	recv, method, ok := methodOnNamed(pass, call)
	if !ok {
		return "", false
	}
	switch method {
	case "Counter", "Gauge", "Histogram", "GaugeFunc":
	default:
		return "", false
	}
	if !namedTypeIs(recv, "obs", "Registry") {
		return "", false
	}
	return method, true
}

func checkInstrumentCall(pass *Pass, call *ast.CallExpr, method string) {
	if len(call.Args) == 0 {
		return
	}
	if name, ok := constString(pass, call.Args[0]); !ok {
		pass.Reportf(call.Args[0].Pos(),
			"obs instrument name must be a compile-time constant, not a computed value")
	} else if !snakeCaseRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"obs instrument name %q is not snake_case", name)
	}

	labelStart := 1
	if method == "Histogram" || method == "GaugeFunc" {
		labelStart = 2 // (name, buckets|func, labels...)
	}
	if len(call.Args) <= labelStart {
		return
	}
	labels := call.Args[labelStart:]
	if call.Ellipsis.IsValid() {
		// labels... spread: the slice's contents are invisible here.
		pass.Reportf(call.Ellipsis,
			"obs labels passed as a spread slice cannot be checked for bounded cardinality; pass literal key/value pairs")
		return
	}
	if len(labels)%2 != 0 {
		pass.Reportf(labels[0].Pos(),
			"obs labels must be alternating key/value pairs; got %d trailing argument(s)", len(labels))
	}
	for i, arg := range labels {
		if i%2 == 0 { // key
			if key, ok := constString(pass, arg); !ok {
				pass.Reportf(arg.Pos(), "obs label key must be a compile-time constant")
			} else if !snakeCaseRE.MatchString(key) {
				pass.Reportf(arg.Pos(), "obs label key %q is not snake_case", key)
			}
			continue
		}
		if !boundedLabelValue(pass, arg) {
			pass.Reportf(arg.Pos(),
				"obs label value is computed inline; unbounded label cardinality grows the registry without limit — hoist a bounded value or suppress with a reason")
		}
	}
}

// constString extracts a compile-time string constant value.
func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// boundedLabelValue accepts label values we can argue are bounded: a
// compile-time constant, or a plain read of a variable/field (a value
// chosen upstream from an enumeration, like an endpoint name or fault
// kind). An inline computation — call, concatenation, index — is the
// signature of per-record cardinality.
func boundedLabelValue(pass *Pass, e ast.Expr) bool {
	if _, ok := constString(pass, e); ok {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		_, ok := e.X.(*ast.Ident)
		return ok
	case *ast.ParenExpr:
		return boundedLabelValue(pass, e.X)
	}
	return false
}
