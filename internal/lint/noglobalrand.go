package lint

import (
	"go/ast"
	"go/types"
)

// randPkgs are the import paths whose global draw functions are
// forbidden everywhere: the global source is process-wide shared state,
// so any draw from it couples unrelated components and destroys seed
// reproducibility. Constructing a seeded *rand.Rand (rand.New,
// rand.NewSource, rand.NewPCG, ...) is the sanctioned pattern and is
// not flagged.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors build local sources instead of drawing from the
// global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// NoGlobalRand flags draws from the global math/rand source and
// time-seeded sources.
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc:  "forbid global math/rand draws and time-seeded sources; thread a seeded *rand.Rand",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if !randPkgs[pass.PkgPathOf(sel.X)] {
					return true
				}
				// Only package-level functions are draws; types
				// (rand.Rand, rand.Source) stay usable.
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok {
					return true
				}
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the global source; thread a seeded *rand.Rand through instead",
					fn.Name())
				return true
			})
		}
		// Second walk: constructors seeded from the wall clock.
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !randPkgs[pass.PkgPathOf(sel.X)] || !randConstructors[sel.Sel.Name] {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						s, ok := m.(*ast.SelectorExpr)
						if ok && pass.PkgPathOf(s.X) == "time" && rawTimeFuncs[s.Sel.Name] {
							pass.Reportf(call.Pos(),
								"rand.%s seeded from the wall clock is nondeterministic; derive the seed from the campaign seed",
								sel.Sel.Name)
							return false
						}
						return true
					})
				}
				return true
			})
		}
	},
}
