package lint

import (
	"go/ast"
)

// rawTimeFuncs are the package-level time functions that read or wait
// on the wall clock. Referencing any of them (calling or passing as a
// value) in a deterministic package breaks seed-reproducibility: the
// simulation tracks virtual minutes (measure.virtualClock) and the
// analyses are pure functions of their samples, so neither may observe
// real time.
var rawTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// NoRawTime flags wall-clock reads in packages that must be
// deterministic. Network-facing packages (real socket deadlines, HTTP
// uptime metrics) are exempted by scope, not by the analyzer.
var NoRawTime = &Analyzer{
	Name: "norawtime",
	Doc:  "forbid time.Now/Since/Sleep/... in deterministic sim and analysis packages",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if pass.PkgPathOf(sel.X) == "time" && rawTimeFuncs[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; thread the virtual/injected clock through instead",
						sel.Sel.Name)
				}
				return true
			})
		}
	},
}
