package lint

import (
	"go/ast"
	"go/types"
)

// SpanEnd enforces the tracing contract: every span returned by
// obs.StartSpan must reach its End() on every path out of the function
// that started it — a deferred End, or an explicit End on each return
// path. A span that exits un-Ended never records into the tracer's
// ring or the per-stage rollups, so /v1/tracez silently under-reports
// exactly the operations that failed, which is when the data matters.
//
// The check is flow-sensitive (CFG reachability), intraprocedural, and
// deliberately forgiving at the boundary: a span whose variable
// escapes the function — returned, passed as an argument, stored in a
// field — is assumed to be Ended by its new owner.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every obs.StartSpan result must reach .End() on all paths (defer or explicit)",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			forEachFuncBody(file, func(_ ast.Node, body *ast.BlockStmt) {
				checkSpans(pass, body)
			})
		}
	},
}

// isStartSpanCall reports whether call invokes StartSpan from a
// package named obs (the real repro/internal/obs, or a fixture
// mirroring it).
func isStartSpanCall(pass *Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	f, ok := pass.Info.Uses[id].(*types.Func)
	return ok && f.Name() == "StartSpan" && f.Pkg() != nil && f.Pkg().Name() == "obs"
}

// spanDef is one StartSpan assignment being tracked: the defining
// statement's position in the CFG and the span variable's object.
type spanDef struct {
	call  *ast.CallExpr
	stmt  *ast.AssignStmt
	block *cfgBlock
	idx   int
	obj   types.Object
}

func checkSpans(pass *Pass, body *ast.BlockStmt) {
	// Cheap pre-scan: most functions start no spans and never pay for
	// a CFG.
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isStartSpanCall(pass, call) {
			found = true
		}
		return !found
	})
	if !found {
		return
	}

	g := buildCFG(body)
	var defs []spanDef
	for _, blk := range g.blocks {
		for i, n := range blk.nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isStartSpanCall(pass, call) {
				continue
			}
			if len(as.Lhs) != 2 {
				continue
			}
			id, ok := as.Lhs[1].(*ast.Ident)
			if !ok {
				// Assigned straight into a field or element: the span
				// escapes; its owner is responsible for End.
				continue
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"result of obs.StartSpan discarded; the span can never End and will not record")
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			defs = append(defs, spanDef{call: call, stmt: as, block: blk, idx: i, obj: obj})
		}
	}

	for _, d := range defs {
		if spanEscapes(pass, body, d) {
			continue
		}
		if hasDeferredEnd(pass, g, d.obj) {
			continue
		}
		stop := func(n ast.Node) bool { return nodeEndsSpan(pass, n, d.obj) }
		bad := func(n ast.Node) bool { return reassignsSpan(pass, n, d.obj, d.stmt) }
		if g.pathToExit(d.block, d.idx+1, stop, bad) {
			pass.Reportf(d.call.Pos(),
				"span %s may exit the function without End(); defer %s.End() or End it on every path",
				d.obj.Name(), d.obj.Name())
		}
	}
}

// spanEscapes reports whether the span object is used as a plain value
// anywhere in body: anything other than a method call on it
// (span.End(), span.SetAttr(...)) or a re-assignment of the variable
// hands the span to code this intraprocedural pass cannot see.
func spanEscapes(pass *Pass, body *ast.BlockStmt, d spanDef) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || escaped {
			return !escaped
		}
		if pass.Info.Uses[id] != d.obj && pass.Info.Defs[id] != d.obj {
			return true
		}
		if len(stack) >= 2 {
			switch parent := stack[len(stack)-2].(type) {
			case *ast.SelectorExpr:
				if parent.X == id {
					return true // span.Method(...): stays local
				}
			case *ast.AssignStmt:
				for _, lhs := range parent.Lhs {
					if lhs == id {
						return true // (re-)definition, not an escape
					}
				}
			case *ast.ValueSpec:
				return true // var declaration
			}
		}
		escaped = true
		return false
	})
	return escaped
}

// hasDeferredEnd reports whether any defer in the function (a direct
// `defer span.End()` or a deferred closure whose body calls it)
// guarantees End at function exit.
func hasDeferredEnd(pass *Pass, g *funcCFG, obj types.Object) bool {
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			def, ok := n.(*ast.DeferStmt)
			if !ok {
				continue
			}
			if endsSpanCall(pass, def.Call, obj) {
				return true
			}
			if lit, ok := def.Call.Fun.(*ast.FuncLit); ok && containsEndOf(pass, lit.Body, obj) {
				return true
			}
		}
	}
	return false
}

// endsSpanCall reports whether call is `obj.End()`.
func endsSpanCall(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.Info.Uses[id] == obj
}

// containsEndOf reports whether n contains a call to obj.End(),
// descending into nested literals (a closure that Ends the span runs
// in this function's dynamic extent when deferred or invoked inline).
func containsEndOf(pass *Pass, n ast.Node, obj types.Object) bool {
	if rh, ok := n.(rangeHead); ok {
		return containsEndOf(pass, rh.Loop.X, obj)
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok && endsSpanCall(pass, call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// nodeEndsSpan is the CFG stop predicate: the node contains obj.End().
func nodeEndsSpan(pass *Pass, n ast.Node, obj types.Object) bool {
	return containsEndOf(pass, n, obj)
}

// reassignsSpan reports whether node n overwrites the span variable
// with a fresh StartSpan result (other than the tracked definition
// itself) — reaching it means the old span leaks.
func reassignsSpan(pass *Pass, n ast.Node, obj types.Object, self *ast.AssignStmt) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok || as == self || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isStartSpanCall(pass, call) {
		return false
	}
	id, ok := as.Lhs[1].(*ast.Ident)
	if !ok {
		return false
	}
	return pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj
}
