package lint

import (
	"go/ast"
	"go/types"
)

// storeFields are the dataset.Store record slices whose only sanctioned
// writers live in internal/dataset: everyone else must construct stores
// with FromRecords, grow them through AddPing/AddTrace/Merge, or stream
// records through a Sink. A direct append elsewhere bypasses the
// streaming spine and silently diverges from the sealed columnar store.
var storeFields = map[string]bool{"Pings": true, "Traces": true}

// isDatasetStore reports whether t (after unwrapping pointers and
// aliases) is the named type Store of a package named dataset.
func isDatasetStore(t types.Type) bool {
	for t != nil {
		t = types.Unalias(t)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Store" && obj.Pkg() != nil && obj.Pkg().Name() == "dataset"
}

// storeWriteTarget unwraps an assignment LHS down to a selector on a
// dataset.Store record slice: s.Pings, (s.Pings), s.Pings[i], ....
func storeWriteTarget(info *types.Info, lhs ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if storeFields[e.Sel.Name] && isDatasetStore(info.TypeOf(e.X)) {
				return e, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// StoreAppend forbids direct writes to dataset.Store.Pings/Traces
// outside internal/dataset (the scope exclusion in DefaultConfig).
var StoreAppend = &Analyzer{
	Name: "storeappend",
	Doc:  "forbid direct writes to dataset.Store.Pings/Traces outside internal/dataset; use FromRecords, AddPing/AddTrace or a Sink",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := storeWriteTarget(pass.Info, lhs); ok {
							pass.Reportf(sel.Pos(),
								"direct write to dataset.Store.%s; construct with FromRecords, grow with AddPing/AddTrace, or stream through a Sink",
								sel.Sel.Name)
						}
					}
				case *ast.CompositeLit:
					if !isDatasetStore(pass.Info.TypeOf(n)) {
						return true
					}
					// An empty literal is how a fresh spill store starts;
					// only literals that populate the record slices bypass
					// the sanctioned constructors.
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							// Positional literal: every field, including
							// the record slices, is being set.
							pass.Reportf(n.Pos(),
								"dataset.Store composite literal sets record slices directly; use FromRecords")
							break
						}
						if id, ok := kv.Key.(*ast.Ident); ok && storeFields[id.Name] {
							pass.Reportf(kv.Pos(),
								"dataset.Store composite literal sets %s directly; use FromRecords", id.Name)
						}
					}
				}
				return true
			})
		}
	},
}
