package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the inline suppression syntax:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// It suppresses matching findings on its own line (trailing comment) or
// on the line immediately below (comment above the offending
// statement). The reason is mandatory — an exception without a recorded
// justification is itself a finding.
const ignoreDirective = "//lint:ignore"

// suppressions maps file -> line -> analyzers suppressed at that line.
type suppressions map[string]map[int]map[string]bool

// suppressed reports whether f is covered by a directive on its line or
// the line above.
func (s suppressions) suppressed(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if set := lines[line]; set[f.Analyzer] || set["*"] {
			return true
		}
	}
	return false
}

// collectSuppressions scans a package's comments for lint:ignore
// directives. Malformed directives (no analyzer, or no reason) are
// returned as findings so they fail the build instead of silently
// suppressing nothing.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Finding) {
	sup := suppressions{}
	var bad []Finding
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, ignoreDirective)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, az := range strings.Split(fields[0], ",") {
					set[az] = true
				}
			}
		}
	}
	return sup, bad
}
