// Package ctxpropagate is a cloudyvet golden-file fixture.
package ctxpropagate

import "context"

func NoCtx(done chan struct{}) { // want "exported NoCtx spawns goroutines or blocks on channels but has no context.Context parameter"
	go func() { close(done) }()
	<-done
}

func DropsCtx(ctx context.Context, done chan struct{}) { // want "exported DropsCtx accepts a context.Context but never forwards it"
	<-done
}

func Forwards(ctx context.Context, done chan struct{}) {
	select {
	case <-ctx.Done():
	case <-done:
	}
}

func Pure(x int) int {
	// No goroutines, no channels: no context needed.
	return x * 2
}

func unexported(done chan struct{}) {
	// Internal helpers inherit cancellation from their exported
	// callers and are not flagged.
	<-done
}
