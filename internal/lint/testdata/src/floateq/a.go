// Package floateq is a cloudyvet golden-file fixture.
package floateq

func bad(a, b float64, c float32) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if c != 0 { // want "floating-point != comparison"
		return false
	}
	var xs []float64
	return len(xs) > 0 && xs[0] == a // want "floating-point == comparison"
}

func fine(a, b float64, i, j int) bool {
	if i == j { // integers compare exactly
		return true
	}
	if a < b || a > b { // ordering floats is allowed
		return false
	}
	return "x" == "y"[0:1]
}
