// Package frameexhaustive is a cloudyvet golden-file fixture. It
// imports the real repro/internal/wirecodec and repro/internal/segment
// so the constant-group enumeration runs against the genuine frame-type
// and block-kind declarations.
package frameexhaustive

import (
	"errors"

	"repro/internal/segment"
	"repro/internal/wirecodec"
)

var errUnknownFrame = errors.New("unknown frame type")

func handle(byte) {}

// Covering every declared frame type is exhaustive; no default needed.
func exhaustive(ft byte) {
	switch ft {
	case wirecodec.FrameControl:
		handle(ft)
	case wirecodec.FramePings:
		handle(ft)
	case wirecodec.FrameTraces:
		handle(ft)
	case wirecodec.FrameEOF:
		handle(ft)
	}
}

// A non-empty default arm handles the unknown type; partial coverage
// is fine.
func defaultErrors(ft byte) error {
	switch ft {
	case wirecodec.FramePings, wirecodec.FrameTraces:
		handle(ft)
	default:
		return errUnknownFrame
	}
	return nil
}

// An empty default swallows unknown frames silently.
func emptyDefault(ft byte) {
	switch ft {
	case wirecodec.FrameControl:
		handle(ft)
	default: // want "empty default in a frame-type switch silently drops unknown frames"
	}
}

// Partial coverage with no default: new frame types vanish.
func partial(ft byte) {
	switch ft { // want "frame-type switch misses FrameEOF, FrameTraces and has no default"
	case wirecodec.FrameControl:
		handle(ft)
	case wirecodec.FramePings:
		handle(ft)
	}
}

// Switches that never name a frame constant are not frame switches.
func unrelated(x byte) {
	switch x {
	case 1:
		handle(x)
	case 2:
		handle(x)
	}
}

func handleBlock(segment.BlockKind) {}

// The segment format's Block* kinds are a registered group too: a
// non-empty default arm handles the unknown kind.
func blockDefault(k segment.BlockKind) error {
	switch k {
	case segment.BlockColumn, segment.BlockSketch:
		handleBlock(k)
	default:
		return errUnknownFrame
	}
	return nil
}

// Partial Block* coverage with no default: new block kinds vanish.
func blockPartial(k segment.BlockKind) {
	switch k { // want "frame-type switch misses BlockDict, BlockFooter, BlockMeta, BlockPeering and has no default"
	case segment.BlockColumn:
		handleBlock(k)
	case segment.BlockSketch:
		handleBlock(k)
	}
}
