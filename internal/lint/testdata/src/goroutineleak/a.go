// Package goroutineleak is a cloudyvet golden-file fixture.
package goroutineleak

import (
	"context"
	"sync"
)

func work() {}

// No exit signal anywhere in the body: fire-and-forget.
func fireAndForget() {
	go func() { // want "goroutine has no ctx/done-channel/WaitGroup exit path"
		work()
	}()
}

// A context in the body is an exit path.
func watchesCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// A channel send bounds the goroutine's life (its peer must receive).
func sendsResult(results chan int) {
	go func() {
		results <- 1
	}()
}

// Receiving, selecting and ranging over a channel all count.
func drains(ch chan int, done chan struct{}) {
	go func() {
		for range ch {
			work()
		}
	}()
	go func() {
		select {
		case <-ch:
		case <-done:
		}
	}()
}

// A WaitGroup joins the goroutine back to its spawner.
func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// go f(args): a context or channel argument carries the exit path to
// the callee.
func spawnsNamed(ctx context.Context, ch chan int) {
	go worker(ctx)
	go pump(ch)
}

func worker(ctx context.Context) { <-ctx.Done() }
func pump(ch chan int)           { ch <- 1 }

// A named call with no signalling argument is opaque — flagged.
func spawnsOpaque() {
	go work() // want "goroutine has no ctx/done-channel/WaitGroup exit path"
}

// go run(x) where run is a closure bound in this function: the binding
// is followed and its body scanned.
func spawnsClosureVar(results chan int) {
	run := func(hedged bool) {
		if hedged {
			results <- 2
			return
		}
		results <- 1
	}
	go run(false)
	go run(true)
}

// The same shape without a signal in the closure body is still flagged.
func spawnsLeakyClosureVar() {
	spin := func() {
		for {
			work()
		}
	}
	go spin() // want "goroutine has no ctx/done-channel/WaitGroup exit path"
}
