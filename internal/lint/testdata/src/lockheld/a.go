// Package lockheld is a cloudyvet golden-file fixture. It imports the
// real repro/internal/sample and repro/internal/wirecodec so the
// blocking-method matching runs against the genuine types.
package lockheld

import (
	"sync"

	"repro/internal/sample"
	"repro/internal/wirecodec"
)

type server struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

// Channel ops after Unlock are fine.
func (s *server) releasedFirst(v int) {
	s.mu.Lock()
	x := v * 2
	s.mu.Unlock()
	s.ch <- x
}

// A send while the lock is held parks every other waiter.
func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s.mu is held"
	s.mu.Unlock()
}

// Deferred unlock does NOT release: the lock is genuinely held for the
// rest of the function, so the receive below runs under it.
func (s *server) deferUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while s.mu is held"
}

// Read locks block writers just the same.
func (s *server) rlockRange() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	for v := range s.ch { // want "ranging over a channel while s.rw is held"
		_ = v
	}
}

// May-held merge: the lock is taken on only one branch, but the op
// after the merge point still runs under it on that path.
func (s *server) mergeHeld(cond bool, v int) {
	if cond {
		s.mu.Lock()
	}
	s.ch <- v // want "channel send while s.mu is held"
	if cond {
		s.mu.Unlock()
	}
}

// Bus delivery blocks on backpressure; calling it under a lock turns
// backpressure into a pile-up.
func (s *server) busUnderLock(b *sample.Bus, p sample.Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.Ping(p) // want "sample.Bus.Ping blocks on backpressure"
}

// Wire-stream I/O under a lock serializes the fleet on it.
func (s *server) wireUnderLock(w *wirecodec.Writer, p sample.Sample) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return w.Ping(p) // want "wirecodec Ping does stream I/O"
}

func (s *server) wireFlushUnderLock(fw *wirecodec.FrameWriter) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fw.Flush() // want "wirecodec Flush does stream I/O"
}

// Bus calls with no lock held are fine.
func busFree(b *sample.Bus, p sample.Sample) error {
	return b.Ping(p)
}

// Distinct mutexes are tracked by receiver text: releasing one does
// not release the other.
func (s *server) twoLocks(o *server, v int) {
	s.mu.Lock()
	o.mu.Lock()
	o.mu.Unlock()
	s.ch <- v // want "channel send while s.mu is held"
	s.mu.Unlock()
}
