// Package metricname is a cloudyvet golden-file fixture. It imports
// the real repro/internal/obs so the Registry-method matching runs
// against the genuine constructors.
package metricname

import (
	"strconv"

	"repro/internal/obs"
)

const endpointLabel = "endpoint"

// Well-formed instruments: constant snake_case names, constant keys,
// bounded values.
func good(r *obs.Registry, endpoint string) {
	r.Counter("requests_total").Inc()
	r.Counter("requests_by_endpoint_total", "endpoint", endpoint).Inc()
	r.Counter("faults_total", endpointLabel, endpoint).Inc()
	r.Gauge("queue_depth").Set(0)
	r.Histogram("latency_ms", []float64{1, 2, 4}, "endpoint", endpoint)
	r.GaugeFunc("uptime_seconds", func() float64 { return 0 })
}

// Names must be compile-time constants.
func computedName(r *obs.Registry, suffix string) {
	r.Counter("requests_" + suffix) // want "obs instrument name must be a compile-time constant"
}

// ...and snake_case.
func badCase(r *obs.Registry) {
	r.Counter("RequestsTotal") // want "obs instrument name .RequestsTotal. is not snake_case"
	r.Gauge("queue-depth")     // want "obs instrument name .queue-depth. is not snake_case"
	r.Counter("_requests")     // want "obs instrument name ._requests. is not snake_case"
}

// Label keys follow the same rules as names.
func badKeys(r *obs.Registry, endpoint, key string) {
	r.Counter("a_total", key, endpoint)        // want "obs label key must be a compile-time constant"
	r.Counter("b_total", "EndPoint", endpoint) // want "obs label key .EndPoint. is not snake_case"
}

// Label values computed inline are per-record cardinality.
func unboundedValue(r *obs.Registry, i int) {
	r.Counter("shards_total", "shard", strconv.Itoa(i)).Inc() // want "obs label value is computed inline"
}

// Labels must come in pairs.
func oddLabels(r *obs.Registry) {
	r.Counter("c_total", "endpoint").Inc() // want "obs labels must be alternating key/value pairs"
}

// A spread slice hides the keys and values entirely.
func spreadLabels(r *obs.Registry, labels []string) {
	r.Counter("d_total", labels...).Inc() // want "obs labels passed as a spread slice cannot be checked"
}

// Histogram and GaugeFunc skip their non-label second argument.
func skipsSecondArg(r *obs.Registry, i int) {
	r.Histogram("h_ms", []float64{1}, "shard", strconv.Itoa(i))             // want "obs label value is computed inline"
	r.GaugeFunc("g", func() float64 { return 0 }, "shard", strconv.Itoa(i)) // want "obs label value is computed inline"
}
