// Package noglobalrand is a cloudyvet golden-file fixture.
package noglobalrand

import (
	"math/rand"
	"time"
)

func bad() float64 {
	rand.Seed(42)             // want "rand.Seed draws from the global source"
	n := rand.Intn(10)        // want "rand.Intn draws from the global source"
	_ = rand.Perm(n)          // want "rand.Perm draws from the global source"
	return rand.NormFloat64() // want "rand.NormFloat64 draws from the global source"
}

func badSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.New seeded from the wall clock" "rand.NewSource seeded from the wall clock"
}

func fine(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
