// Package norawtime is a cloudyvet golden-file fixture: each flagged
// line carries a want-comment regexp the harness checks against the
// analyzer's findings.
package norawtime

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	_ = time.Since(time.Time{})  // want "time.Since reads the wall clock"
	return time.Now()            // want "time.Now reads the wall clock"
}

func passedAsValue(f func() time.Time) func() time.Time {
	if f == nil {
		return time.Now // want "time.Now reads the wall clock"
	}
	return f
}

func fine() time.Duration {
	// Constructing durations and formatting stamps is deterministic;
	// only reading or waiting on the clock is flagged.
	d := 3 * time.Second
	return d.Round(time.Millisecond)
}
