// Package spanend is a cloudyvet golden-file fixture. It imports the
// real repro/internal/obs so the analyzer's type matching runs against
// the genuine StartSpan signature.
package spanend

import (
	"context"

	"repro/internal/obs"
)

// Deferred End: the canonical shape, never flagged.
func deferred(ctx context.Context) {
	ctx, span := obs.StartSpan(ctx, "deferred")
	defer span.End()
	_ = ctx
}

// A deferred closure that Ends the span also counts.
func deferredClosure(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "closure")
	defer func() {
		span.SetAttr("outcome", "done")
		span.End()
	}()
}

// Explicit End on every path out of the function.
func everyPath(ctx context.Context, cond bool) {
	_, span := obs.StartSpan(ctx, "every_path")
	if cond {
		span.End()
		return
	}
	span.End()
}

// End only on the early-return path: the fallthrough leaks.
func missesFallthrough(ctx context.Context, cond bool) {
	_, span := obs.StartSpan(ctx, "leaky") // want "span span may exit the function without End"
	if cond {
		span.End()
		return
	}
}

// No End at all.
func neverEnds(ctx context.Context) {
	_, sp := obs.StartSpan(ctx, "never") // want "span sp may exit the function without End"
	sp.SetAttr("outcome", "lost")
}

// A discarded span can never be Ended.
func discarded(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "discarded") // want "result of obs.StartSpan discarded"
}

// Reassigning the variable before End leaks the first span even though
// the second one is handled.
func reassigned(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "first") // want "span span may exit the function without End"
	_, span = obs.StartSpan(ctx, "second")
	span.End()
}

// End inside an infinite-retry loop that the exit cannot bypass: the
// loop body Ends the span before every return.
func endInLoop(ctx context.Context, tries int) {
	_, span := obs.StartSpan(ctx, "loop")
	for i := 0; ; i++ {
		if i >= tries {
			span.End()
			return
		}
	}
}

// A span returned to the caller escapes; its new owner Ends it.
func escapesReturn(ctx context.Context) (context.Context, *obs.Span) {
	ctx, span := obs.StartSpan(ctx, "escapes")
	return ctx, span
}

// A span handed to another function escapes too.
func escapesArg(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "handed_off")
	endLater(span)
}

func endLater(s *obs.Span) { s.End() }

// Spans inside function literals are checked per literal.
func insideClosure(ctx context.Context) func() {
	return func() {
		_, span := obs.StartSpan(ctx, "inner") // want "span span may exit the function without End"
		span.SetAttr("where", "closure")
	}
}
