// Package dataset is a cloudyvet golden-file fixture for storeappend;
// the Store type here mirrors repro/internal/dataset.Store. (The real
// internal/dataset package is exempted by scope, not by the analyzer.)
package dataset

type Store struct {
	Pings  []int
	Traces []int
}

func bad(s *Store, recs []int) {
	s.Pings = recs                 // want "direct write to dataset.Store.Pings"
	s.Traces = append(s.Traces, 1) // want "direct write to dataset.Store.Traces"
	(s.Pings) = recs               // want "direct write to dataset.Store.Pings"
	s.Pings[0] = 7                 // want "direct write to dataset.Store.Pings"
	var v Store
	v.Pings, v.Traces = recs, recs // want "direct write to dataset.Store.Pings" "direct write to dataset.Store.Traces"
}

func badLiterals(recs []int) {
	_ = Store{Pings: recs}   // want "composite literal sets Pings directly"
	_ = &Store{Traces: recs} // want "composite literal sets Traces directly"
	_ = Store{recs, recs}    // want "composite literal sets record slices directly"
}

type other struct{ Pings []int }

func fine(s *Store, o *other, recs []int) {
	_ = &Store{}     // a fresh spill store starts empty
	_ = len(s.Pings) // reads are unrestricted
	xs := s.Pings    // so is aliasing the slice for reading
	_ = xs
	o.Pings = recs // a Pings field on another type is not the store
	_ = append([]int(nil), s.Traces...)
}
