// Package suppress is a cloudyvet golden-file fixture for the
// //lint:ignore directive: the first comparison is suppressed by the
// preceding-line directive, the second by a trailing directive, and the
// third is not suppressed because the directive names a different
// analyzer.
package suppress

func cmp(a, b float64) bool {
	//lint:ignore floateq fixture: exact equality intended
	if a == b {
		return true
	}
	if a != b { //lint:ignore floateq fixture: exact equality intended
		return false
	}
	//lint:ignore norawtime wrong analyzer, does not cover floateq
	if a == b { // want "floating-point == comparison"
		return true
	}
	return a != b // want "floating-point != comparison"
}
