// Package uncheckederr is a cloudyvet golden-file fixture.
package uncheckederr

import (
	"bytes"
	"hash/fnv"
	"os"
	"strings"
)

func write(f *os.File, data []byte) {
	f.Write(data)   // want "call discards the error from f.Write"
	defer f.Close() // want "defer discards the error from f.Close"
	go f.Sync()     // want "go discards the error from f.Sync"
	_ = f.Close()   // explicit discard is visible and allowed
	if _, err := f.Write(data); err != nil {
		_ = err
	}
}

func infallible(data []byte) uint64 {
	// hash.Hash, bytes.Buffer and strings.Builder writes are
	// documented never to fail and are not flagged.
	h := fnv.New64a()
	h.Write(data)
	var buf bytes.Buffer
	buf.Write(data)
	var sb strings.Builder
	sb.WriteString("x")
	return h.Sum64()
}

func noError() {
	println("no error result, nothing to check")
}
