package lint

import (
	"go/ast"
	"go/types"
)

// infallibleRecv are receiver static types whose Write-family methods
// are documented to never return an error (hash.Hash: "it never returns
// an error"; bytes.Buffer and strings.Builder likewise). Checking those
// errors is pure noise, so the analyzer skips them instead of forcing a
// suppression at every fnv hash site.
var infallibleRecv = map[string]bool{
	"hash.Hash": true, "hash.Hash32": true, "hash.Hash64": true,
	"*bytes.Buffer": true, "bytes.Buffer": true,
	"*strings.Builder": true, "strings.Builder": true,
}

// UncheckedErr flags statements that silently discard an error result:
// a call used as a bare statement, or the function of a go/defer
// statement. The dataset, store and checkpoint packages are the write
// paths of a six-virtual-month campaign — a dropped write error there
// is dropped data. An explicit "_ =" assignment is the sanctioned,
// visible discard and is not flagged.
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc:  "forbid silently discarded errors on dataset/checkpoint/store write paths",
	Run: func(pass *Pass) {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var call *ast.CallExpr
				var how string
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, _ = st.X.(*ast.CallExpr)
					how = "call"
				case *ast.DeferStmt:
					call = st.Call
					how = "defer"
				case *ast.GoStmt:
					call = st.Call
					how = "go"
				default:
					return true
				}
				if call == nil || !returnsError(pass, call) || infallibleCall(pass, call) {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s discards the error from %s; handle it or discard explicitly with _ =",
					how, calleeName(call))
				return true
			})
		}
	},
}

// returnsError reports whether the call's result tuple contains an
// error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false // conversion or builtin
	}
	res := sig.Results()
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// infallibleCall reports whether the call is a Write-family method on a
// receiver type documented never to fail.
func infallibleCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return false
	}
	recv := pass.Info.TypeOf(sel.X)
	return recv != nil && infallibleRecv[types.TypeString(recv, nil)]
}

// calleeName renders the called expression for the message.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
