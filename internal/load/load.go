// Package load is the closed-loop load harness behind `cloudy
// loadgen`: N concurrent clients hammer the query service with a
// zipf-weighted endpoint mix, revalidating with remembered ETags like
// real HTTP caches do, and every response is checked for anomalies —
// unexpected status codes, validator/epoch disagreements, whatever the
// caller's Validate hook rejects. The result carries the latency
// quantiles (p50/p95/p99 straight from an obs histogram), the status
// mix and every store epoch observed, which is exactly the evidence
// the live re-seal chaos test and BENCH_serve.json need.
//
// The package never reads the wall clock: request latency is measured
// through obs.Time (the allowlisted stopwatch) and quantiles come from
// the histogram snapshot, so load stays inside the repo's norawtime
// contract. Wall-clock throughput is the caller's business — cmd/cloudy
// times the whole run and divides.
package load

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Doer issues one HTTP request. *http.Client satisfies it; the
// in-process HandlerClient below avoids sockets entirely.
type Doer interface {
	Do(req *http.Request) (*http.Response, error)
}

// HandlerClient is a Doer that invokes an http.Handler directly — the
// loadgen path for in-process benchmarks and chaos tests, where the
// kernel's TCP stack would only add noise to the numbers.
type HandlerClient struct {
	Handler http.Handler
}

// Do serves the request against the wrapped handler and materializes
// the recorded response.
func (c HandlerClient) Do(req *http.Request) (*http.Response, error) {
	w := &memWriter{header: http.Header{}}
	c.Handler.ServeHTTP(w, req)
	code := w.code
	if code == 0 {
		code = http.StatusOK
	}
	return &http.Response{
		StatusCode: code,
		Header:     w.header,
		Body:       io.NopCloser(bytes.NewReader(w.buf.Bytes())),
		Request:    req,
	}, nil
}

// memWriter is a minimal in-memory http.ResponseWriter.
type memWriter struct {
	header http.Header
	buf    bytes.Buffer
	code   int
}

func (w *memWriter) Header() http.Header { return w.header }

func (w *memWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.buf.Write(p)
}

func (w *memWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
}

// Endpoint is one entry in the request mix.
type Endpoint struct {
	// Path is the request path (plus query string) relative to the base
	// URL, e.g. "/v1/latency-map".
	Path string
	// Weight is the relative request share. Zero weights are assigned
	// zipf-style by position: endpoint i gets 1/(i+1)^s, so the first
	// few endpoints dominate the mix the way a handful of dashboards
	// dominate real query traffic.
	Weight float64
}

// DefaultEndpoints is the query mix when Options.Endpoints is empty:
// the four figure endpoints, zipf-weighted in dashboard order.
func DefaultEndpoints() []Endpoint {
	return []Endpoint{
		{Path: "/v1/latency-map"},
		{Path: "/v1/cdf?platform=speedchecker"},
		{Path: "/v1/cdf?platform=atlas"},
		{Path: "/v1/platform-diff"},
		{Path: "/v1/peering-shares"},
	}
}

// zipfExponent shapes the positional default weights.
const zipfExponent = 1.2

// Options tunes a load run.
type Options struct {
	// Clients is the number of concurrent closed-loop clients
	// (default 64). Each carries its own X-Client-ID, so per-client
	// quotas see them as distinct callers.
	Clients int
	// RequestsPerClient is how many requests each client issues
	// (default 100). The run is closed-loop: a client fires its next
	// request the moment the previous response is consumed.
	RequestsPerClient int
	// Endpoints is the request mix (default DefaultEndpoints()).
	Endpoints []Endpoint
	// RevalidateFraction is the share of repeat requests that replay
	// the last ETag seen for that path via If-None-Match (default 0.5,
	// negative disables) — real caches revalidate, so the harness does.
	RevalidateFraction float64
	// Seed feeds the per-client RNGs; runs with equal seeds issue the
	// identical request sequence.
	Seed int64
	// AllowedStatus is the set of status codes that are not anomalies
	// (default 200, 304, 429, 503 — the codes a robust server may
	// legitimately answer under fire).
	AllowedStatus []int
	// Validate, when set, inspects every allowed response; a non-nil
	// error records an anomaly. The chaos test uses it to catch
	// mixed-epoch bodies.
	Validate func(status int, epoch string, header http.Header, body []byte) error
	// Obs receives the harness instruments (loadgen_request_ms,
	// loadgen_requests_total, per-status counters). Nil gets a private
	// registry; the latency quantiles in Result work either way.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Clients <= 0 {
		o.Clients = 64
	}
	if o.RequestsPerClient <= 0 {
		o.RequestsPerClient = 100
	}
	if len(o.Endpoints) == 0 {
		o.Endpoints = DefaultEndpoints()
	}
	if o.RevalidateFraction == 0 {
		o.RevalidateFraction = 0.5
	}
	if o.RevalidateFraction < 0 {
		o.RevalidateFraction = 0
	}
	if len(o.AllowedStatus) == 0 {
		o.AllowedStatus = []int{http.StatusOK, http.StatusNotModified,
			http.StatusTooManyRequests, http.StatusServiceUnavailable}
	}
	return o
}

// maxRecordedAnomalies bounds Result.Anomalies; the count keeps
// climbing past it.
const maxRecordedAnomalies = 16

// Result summarizes one load run.
type Result struct {
	// Requests is the number of requests issued.
	Requests int `json:"requests"`
	// Status maps status code → count.
	Status map[int]int `json:"status"`
	// AnomalyCount is the total number of anomalous responses:
	// disallowed status codes, transport errors and Validate failures.
	AnomalyCount int `json:"anomaly_count"`
	// Anomalies holds the first few anomaly descriptions for debugging.
	Anomalies []string `json:"anomalies,omitempty"`
	// Epochs lists every distinct X-Store-Epoch value observed, sorted
	// — a run across a live re-seal sees at least two.
	Epochs []string `json:"epochs"`
	// Latency quantiles in milliseconds, from the harness histogram.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// MeanMs is the mean request latency in milliseconds.
	MeanMs float64 `json:"mean_ms"`
}

// clientState is one client's partial tally, merged after the run.
type clientState struct {
	requests  int
	status    map[int]int
	anomalies []string
	anomalyN  int
	epochs    map[string]struct{}
	etags     map[string]string // path → last ETag seen
}

// Run drives the load: opts.Clients concurrent clients issue
// closed-loop requests against base (e.g. "http://host:port" for a
// real socket, "http://loadgen" for a HandlerClient) until each has
// sent its share or ctx is cancelled. Cancellation is not an error —
// the partial Result is returned with whatever was observed.
func Run(ctx context.Context, base string, d Doer, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if d == nil {
		return Result{}, fmt.Errorf("load: nil Doer")
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	hist := reg.Histogram("loadgen_request_ms", obs.LatencyBuckets)
	mRequests := reg.Counter("loadgen_requests_total")
	mAnomalies := reg.Counter("loadgen_anomalies_total")

	cum := cumulativeWeights(opts.Endpoints)
	states := make([]*clientState, opts.Clients)
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			states[c] = runClient(ctx, base, d, opts, cum, c, hist, mRequests, mAnomalies)
		}(c)
	}
	wg.Wait()

	res := Result{Status: map[int]int{}}
	epochs := map[string]struct{}{}
	for _, st := range states {
		res.Requests += st.requests
		res.AnomalyCount += st.anomalyN
		for code, n := range st.status {
			res.Status[code] += n
		}
		for _, a := range st.anomalies {
			if len(res.Anomalies) < maxRecordedAnomalies {
				res.Anomalies = append(res.Anomalies, a)
			}
		}
		for e := range st.epochs {
			epochs[e] = struct{}{}
		}
	}
	res.Epochs = make([]string, 0, len(epochs))
	for e := range epochs {
		res.Epochs = append(res.Epochs, e)
	}
	sort.Strings(res.Epochs)
	snap := hist.Snapshot()
	res.P50Ms = snap.Quantile(0.50)
	res.P95Ms = snap.Quantile(0.95)
	res.P99Ms = snap.Quantile(0.99)
	if snap.Count > 0 {
		res.MeanMs = snap.Sum / float64(snap.Count)
	}
	return res, nil
}

// runClient is one closed-loop client: pick an endpoint from the zipf
// mix, maybe revalidate with the remembered ETag, issue, tally.
func runClient(ctx context.Context, base string, d Doer, opts Options, cum []float64, idx int,
	hist *obs.Histogram, mRequests, mAnomalies *obs.Counter) *clientState {
	st := &clientState{
		status: map[int]int{},
		epochs: map[string]struct{}{},
		etags:  map[string]string{},
	}
	rng := rand.New(rand.NewSource(opts.Seed + int64(idx)*7919))
	clientID := fmt.Sprintf("load-%d", idx)
	for i := 0; i < opts.RequestsPerClient; i++ {
		if ctx.Err() != nil {
			return st
		}
		path := opts.Endpoints[pickEndpoint(cum, rng.Float64())].Path
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			st.anomaly(fmt.Sprintf("build %s: %v", path, err))
			mAnomalies.Inc()
			continue
		}
		req.Header.Set("X-Client-ID", clientID)
		if etag := st.etags[path]; etag != "" && rng.Float64() < opts.RevalidateFraction {
			req.Header.Set("If-None-Match", etag)
		}
		st.requests++
		mRequests.Inc()

		stop := obs.Time(hist)
		resp, err := d.Do(req)
		if err != nil {
			stop()
			if ctx.Err() != nil {
				return st // cancellation, not an anomaly
			}
			st.anomaly(fmt.Sprintf("GET %s: %v", path, err))
			mAnomalies.Inc()
			continue
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		stop()
		if readErr != nil {
			st.anomaly(fmt.Sprintf("GET %s: read: %v", path, readErr))
			mAnomalies.Inc()
			continue
		}
		st.status[resp.StatusCode]++
		if epoch := resp.Header.Get("X-Store-Epoch"); epoch != "" {
			st.epochs[epoch] = struct{}{}
		}
		if etag := resp.Header.Get("ETag"); etag != "" {
			st.etags[path] = etag
		}
		if !statusAllowed(opts.AllowedStatus, resp.StatusCode) {
			st.anomaly(fmt.Sprintf("GET %s: status %d: %.120s", path, resp.StatusCode, body))
			mAnomalies.Inc()
			continue
		}
		if opts.Validate != nil {
			if verr := opts.Validate(resp.StatusCode, resp.Header.Get("X-Store-Epoch"), resp.Header, body); verr != nil {
				st.anomaly(fmt.Sprintf("GET %s: %v", path, verr))
				mAnomalies.Inc()
			}
		}
	}
	return st
}

func (st *clientState) anomaly(desc string) {
	st.anomalyN++
	if len(st.anomalies) < maxRecordedAnomalies {
		st.anomalies = append(st.anomalies, desc)
	}
}

// cumulativeWeights normalizes the endpoint weights (filling zeros
// zipf-style by position) into a cumulative distribution over [0, 1).
func cumulativeWeights(eps []Endpoint) []float64 {
	weights := make([]float64, len(eps))
	total := 0.0
	for i, ep := range eps {
		w := ep.Weight
		if w <= 0 {
			w = 1 / math.Pow(float64(i+1), zipfExponent)
		}
		weights[i] = w
		total += w
	}
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // guard against float drift
	return cum
}

// pickEndpoint maps a uniform draw onto the cumulative mix.
func pickEndpoint(cum []float64, u float64) int {
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

func statusAllowed(allowed []int, code int) bool {
	for _, a := range allowed {
		if a == code {
			return true
		}
	}
	return false
}
