package load_test

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/load"
	"repro/internal/obs"
)

// stubHandler answers every path with a tiny JSON body, an ETag and a
// fixed store epoch, honouring If-None-Match.
type stubHandler struct {
	epoch atomic.Uint64
	hits  atomic.Int64
	paths chan string
}

func newStub() *stubHandler {
	s := &stubHandler{paths: make(chan string, 1<<16)}
	s.epoch.Store(1)
	return s
}

func (s *stubHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.hits.Add(1)
	select {
	case s.paths <- r.URL.Path + "?" + r.URL.RawQuery:
	default:
	}
	epoch := s.epoch.Load()
	etag := fmt.Sprintf("%q", fmt.Sprintf("e%d-stub", epoch))
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Store-Epoch", fmt.Sprintf("%d", epoch))
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"epoch":%d}`, epoch)
}

func TestRunClosedLoop(t *testing.T) {
	stub := newStub()
	reg := obs.NewRegistry()
	res, err := load.Run(context.Background(), "http://stub", load.HandlerClient{Handler: stub},
		load.Options{Clients: 8, RequestsPerClient: 25, Seed: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 {
		t.Errorf("requests = %d, want 200", res.Requests)
	}
	if got := stub.hits.Load(); got != 200 {
		t.Errorf("handler saw %d requests, want 200", got)
	}
	if res.AnomalyCount != 0 {
		t.Errorf("anomalies = %d (%v), want 0", res.AnomalyCount, res.Anomalies)
	}
	if res.Status[http.StatusOK]+res.Status[http.StatusNotModified] != 200 {
		t.Errorf("status mix = %v, want only 200/304", res.Status)
	}
	// ETag replay must have produced some revalidations.
	if res.Status[http.StatusNotModified] == 0 {
		t.Error("no 304s: ETag revalidation never happened")
	}
	if len(res.Epochs) != 1 || res.Epochs[0] != "1" {
		t.Errorf("epochs = %v, want [1]", res.Epochs)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms || res.MeanMs <= 0 {
		t.Errorf("quantiles p50=%v p99=%v mean=%v", res.P50Ms, res.P99Ms, res.MeanMs)
	}
	if got := reg.Counter("loadgen_requests_total").Load(); got != 200 {
		t.Errorf("loadgen_requests_total = %d, want 200", got)
	}
}

// The endpoint mix must be zipf-ish: earlier endpoints get strictly
// more traffic, and a fixed seed reproduces the exact mix.
func TestZipfMixAndDeterminism(t *testing.T) {
	counts := func(seed int64) map[string]int {
		stub := newStub()
		_, err := load.Run(context.Background(), "http://stub", load.HandlerClient{Handler: stub},
			load.Options{Clients: 4, RequestsPerClient: 250, Seed: seed, RevalidateFraction: -1})
		if err != nil {
			t.Fatal(err)
		}
		close(stub.paths)
		got := map[string]int{}
		for p := range stub.paths {
			got[p]++
		}
		return got
	}
	a := counts(42)
	first := a["/v1/latency-map?"]
	last := a["/v1/peering-shares?"]
	if first == 0 || last == 0 {
		t.Fatalf("mix missed endpoints entirely: %v", a)
	}
	if first <= last {
		t.Errorf("zipf mix inverted: first endpoint %d ≤ last %d", first, last)
	}
	b := counts(42)
	for k, v := range a {
		if b[k] != v {
			t.Errorf("seeded rerun diverged at %s: %d vs %d", k, v, b[k])
		}
	}
}

// Disallowed statuses and Validate rejections are anomalies; allowed
// shed/throttle codes are not.
func TestAnomalyDetection(t *testing.T) {
	boom := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	})
	res, err := load.Run(context.Background(), "http://stub", load.HandlerClient{Handler: boom},
		load.Options{Clients: 2, RequestsPerClient: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnomalyCount != 20 {
		t.Errorf("anomalies = %d, want 20 (every 502)", res.AnomalyCount)
	}
	if len(res.Anomalies) == 0 || !strings.Contains(res.Anomalies[0], "status 502") {
		t.Errorf("anomaly descriptions = %v", res.Anomalies)
	}

	shed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	res, err = load.Run(context.Background(), "http://stub", load.HandlerClient{Handler: shed},
		load.Options{Clients: 2, RequestsPerClient: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnomalyCount != 0 {
		t.Errorf("503s counted as anomalies: %d", res.AnomalyCount)
	}

	stub := newStub()
	res, err = load.Run(context.Background(), "http://stub", load.HandlerClient{Handler: stub},
		load.Options{Clients: 1, RequestsPerClient: 5, Validate: func(status int, epoch string, _ http.Header, _ []byte) error {
			return fmt.Errorf("reject everything")
		}})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnomalyCount != 5 {
		t.Errorf("Validate rejections = %d anomalies, want 5", res.AnomalyCount)
	}
}

// Cancellation stops the run early and is not an anomaly.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := atomic.Int64{}
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 4 {
			cancel()
		}
		w.Write([]byte("{}"))
	})
	res, err := load.Run(ctx, "http://stub", load.HandlerClient{Handler: slow},
		load.Options{Clients: 2, RequestsPerClient: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests >= 1<<20 {
		t.Error("cancellation did not stop the run")
	}
	if res.AnomalyCount != 0 {
		t.Errorf("cancellation produced %d anomalies: %v", res.AnomalyCount, res.Anomalies)
	}
}

func TestRunNilDoer(t *testing.T) {
	if _, err := load.Run(context.Background(), "http://x", nil, load.Options{}); err == nil {
		t.Error("nil Doer accepted")
	}
}
