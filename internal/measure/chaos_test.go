package measure

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/pipeline"
)

// chaosConfig spans three cycles: the partition opens at cycle 1, its
// probes trip the breaker there, and cycle 2 re-selects some of them
// while still benched (the 24h virtual cooldown outlasts the campaign).
func chaosConfig() Config {
	cfg := smallConfig()
	cfg.Cycles = 3
	cfg.ProbesPerCountry = 3
	return cfg
}

// chaosRun is one campaign's complete output.
type chaosRun struct {
	store *dataset.Store
	stats Stats
}

// runChaos executes the campaign under the named profile ("" = fault
// free), wiring the injector into both the simulator (data plane) and
// the campaign config (control plane), and streaming through a
// StoreSink so sink faults are exercised too.
func runChaos(t *testing.T, profile string) chaosRun {
	t.Helper()
	cfg := chaosConfig()
	sim := netsim.New(testW)
	if profile != "" {
		plan, err := faults.Profile(profile, cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		sim.Faults = plan
		cfg.Faults = plan
	}
	sink := dataset.NewStoreSink(nil)
	cfg.Sink = sink
	camp, err := New(sim, testSC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spill, st, err := camp.Run(context.Background())
	if err != nil {
		// Graceful degradation is allowed: a persistent sink failure is
		// surfaced but must not have aborted the campaign.
		if !errors.Is(err, faults.ErrQuota) && !errors.Is(err, faults.ErrSinkDown) {
			t.Fatalf("campaign under %q aborted: %v", profile, err)
		}
		if st.Spilled == 0 || !st.SinkDegraded {
			t.Fatalf("sink error without spill accounting: %+v", st)
		}
	}
	// The complete dataset is the sink's records plus anything spilled
	// after degradation.
	sink.Store.Merge(spill)
	return chaosRun{store: sink.Store, stats: st}
}

// checkLossIdentity verifies the Stats contract Attempts = Pings +
// Retries + Lost and basic cross-field consistency.
func checkLossIdentity(t *testing.T, st Stats) {
	t.Helper()
	if st.Attempts != st.Pings+st.Retries+st.Lost {
		t.Errorf("loss identity broken: Attempts %d != Pings %d + Retries %d + Lost %d",
			st.Attempts, st.Pings, st.Retries, st.Lost)
	}
	if st.TimedOut > st.Retries+st.Lost {
		t.Errorf("TimedOut %d exceeds total failures (%d retries + %d lost)",
			st.TimedOut, st.Retries, st.Lost)
	}
	if st.Pings == 0 {
		t.Error("campaign collected nothing")
	}
}

// f3Medians computes the Figure 3 per-country median map.
func f3Medians(store *dataset.Store) map[string]float64 {
	out := map[string]float64{}
	for _, e := range analysis.LatencyMap(store, 5) {
		out[e.Country] = e.MedianMs
	}
	return out
}

// f10Aggregate computes the Figure 10 interconnection shares aggregated
// over providers, weighted by sample count.
func f10Aggregate(t *testing.T, store *dataset.Store) (direct, oneAS, multiAS float64) {
	t.Helper()
	processed := pipeline.NewProcessor(testW).ProcessAll(store)
	rows := analysis.Interconnections(processed)
	if len(rows) == 0 {
		t.Fatal("no interconnection rows")
	}
	total := 0
	for _, r := range rows {
		direct += r.DirectPct * float64(r.N)
		oneAS += r.OneASPct * float64(r.N)
		multiAS += r.MultiASPct * float64(r.N)
		total += r.N
	}
	return direct / float64(total), oneAS / float64(total), multiAS / float64(total)
}

// TestChaosProfiles is the tentpole integration test: under every named
// fault profile the campaign must complete, account for its losses, and
// still reproduce the paper's F3 latency map and F10 peering
// classification within tolerance of the fault-free run.
func TestChaosProfiles(t *testing.T) {
	base := runChaos(t, "")
	checkLossIdentity(t, base.stats)
	if base.stats.Retries != 0 || base.stats.Lost != 0 || base.stats.ProbeDropouts != 0 {
		t.Fatalf("fault-free run booked faults: %+v", base.stats)
	}
	baseF3 := f3Medians(base.store)
	baseD, base1, baseM := f10Aggregate(t, base.store)
	if len(baseF3) < 20 {
		t.Fatalf("baseline F3 map too thin: %d countries", len(baseF3))
	}

	for _, profile := range faults.Names() {
		t.Run(profile, func(t *testing.T) {
			run := runChaos(t, profile)
			st := run.stats
			checkLossIdentity(t, st)

			// Per-profile loss accounting must be non-zero where the
			// profile injects.
			switch profile {
			case faults.ProfileFlakyWireless:
				if st.ProbeDropouts == 0 {
					t.Error("flaky-wireless: no probe dropouts")
				}
				if st.TimedOut == 0 {
					t.Error("flaky-wireless: no timeouts despite 8s delays")
				}
				if st.Retries == 0 || st.Lost == 0 {
					t.Errorf("flaky-wireless: retries %d, lost %d — loss path never exercised",
						st.Retries, st.Lost)
				}
				if st.TracesLost == 0 {
					t.Error("flaky-wireless: no traceroutes lost")
				}
			case faults.ProfileQuotaStorm:
				if st.SinkRetries == 0 {
					t.Error("quota-storm: no transient sink retries")
				}
				if st.TimedOut == 0 {
					t.Error("quota-storm: no slow responses timed out")
				}
			case faults.ProfilePartition:
				if st.Lost == 0 {
					t.Error("partition: no measurements lost")
				}
				if st.Quarantined == 0 {
					t.Error("partition: circuit breaker never tripped on partitioned probes")
				}
				if st.QuarantineSkipped == 0 {
					t.Error("partition: quarantined probes were never benched")
				}
			}

			// F3: the latency map keeps its shape. Most baseline
			// countries survive, and common-country medians stay within
			// max(20ms, 35%) — faults cost samples, not truth.
			got := f3Medians(run.store)
			common := 0
			for country, want := range baseF3 {
				med, ok := got[country]
				if !ok {
					continue
				}
				common++
				tol := math.Max(20, 0.35*want)
				if math.Abs(med-want) > tol {
					t.Errorf("F3 %s: median %.1f vs baseline %.1f (tolerance %.1f)",
						country, med, want, tol)
				}
			}
			if common < len(baseF3)*7/10 {
				t.Errorf("F3 kept only %d of %d baseline countries", common, len(baseF3))
			}

			// F10: the interconnection mix holds. Aggregate shares stay
			// within 15 points and the category ranking is preserved.
			d, one, multi := f10Aggregate(t, run.store)
			for _, c := range []struct {
				name      string
				got, want float64
			}{{"direct", d, baseD}, {"1 AS", one, base1}, {"2+ AS", multi, baseM}} {
				if math.Abs(c.got-c.want) > 15 {
					t.Errorf("F10 %s share = %.1f%%, baseline %.1f%%", c.name, c.got, c.want)
				}
			}
			rank := func(a, b, c float64) [3]int {
				var r [3]int
				vals := []float64{a, b, c}
				for i, v := range vals {
					for _, w := range vals {
						if w > v {
							r[i]++
						}
					}
				}
				return r
			}
			if rank(d, one, multi) != rank(baseD, base1, baseM) {
				t.Errorf("F10 category ranking flipped: (%.1f, %.1f, %.1f) vs baseline (%.1f, %.1f, %.1f)",
					d, one, multi, baseD, base1, baseM)
			}
		})
	}
}
