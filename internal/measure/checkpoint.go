package measure

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sample"
)

// checkpointVersion guards the serialized layout. Version 2 added the
// campaign time-axis position (VTimeMs, CycleRequests); version-1
// checkpoints predate the longitudinal axis and cannot be resumed.
const checkpointVersion = 2

// Checkpoint is the full serializable state of a paused campaign: the
// dispatch position, the virtual clock (rate limit and daily quota
// spent), the circuit-breaker quarantines, the probe-persistence
// bookkeeping and every Stats counter. A campaign resumed from a
// checkpoint under the same Config and seed dispatches exactly the
// measurements the uninterrupted campaign would have — no record is
// double-counted and none is skipped — which is the simulated analogue
// of the paper's six-month campaign surviving restarts.
//
// Checkpoints are taken at country boundaries after a flush barrier
// (every enqueued task collected), so the position is always exact.
type Checkpoint struct {
	Version int   `json:"version"`
	Seed    int64 `json:"seed"`
	// Cycle and NextCountry are the dispatch position: the next unit of
	// work is countries[NextCountry] of Cycle.
	Cycle       int `json:"cycle"`
	NextCountry int `json:"next_country"`
	// VTimeMs is the campaign-relative virtual timestamp of the dispatch
	// position — the start of Cycle on the virtual timeline
	// (sample.CycleMillis per cycle). Purely derived from Cycle; carried
	// so operators and the cluster plane can place a checkpoint on the
	// six-month axis without measure's internals.
	VTimeMs int64 `json:"vtime_ms"`
	// CycleRequests is the measurement budget spent inside Cycle so far
	// — the per-cycle quota position (Config.CycleQuota).
	CycleRequests int `json:"cycle_requests,omitempty"`
	// Clock is the virtual rate-limit/quota clock.
	Clock clockState `json:"clock"`
	// Breaker holds per-probe quarantine state.
	Breaker map[string]breakerEntry `json:"breaker,omitempty"`
	// ConnectedCycles backs the §3.3 probe-persistence accounting.
	ConnectedCycles map[string]int `json:"connected_cycles,omitempty"`
	// Snapshot is the in-progress cycle's partial discovery poll.
	Snapshot DiscoverySnapshot `json:"snapshot"`
	// Stats carries every counter accumulated so far.
	Stats Stats `json:"stats"`
}

// Encode writes the checkpoint as JSON.
func (cp *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(cp); err != nil {
		return fmt.Errorf("measure: encoding checkpoint: %w", err)
	}
	return nil
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("measure: decoding checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("measure: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	return &cp, nil
}

// checkpoint assembles the serializable state at a flush barrier.
func (c *Campaign) checkpoint(cycle, nextCountry int, snap DiscoverySnapshot, cycleSpent int,
	clock *virtualClock, brk *breaker, connectedCycles map[string]int, st *Stats) Checkpoint {
	cc := make(map[string]int, len(connectedCycles))
	for k, v := range connectedCycles {
		cc[k] = v
	}
	return Checkpoint{
		Version:         checkpointVersion,
		Seed:            c.Cfg.Seed,
		Cycle:           cycle,
		NextCountry:     nextCountry,
		VTimeMs:         int64(sample.CampaignCycle(cycle)) * sample.CycleMillis,
		CycleRequests:   cycleSpent,
		Clock:           clock.state(),
		Breaker:         brk.snapshot(),
		ConnectedCycles: cc,
		Snapshot:        snap,
		Stats:           st.clone(),
	}
}
