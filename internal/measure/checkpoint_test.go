package measure

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/faults"
)

// ckptConfig is a campaign long enough to cross several checkpoint
// boundaries.
func ckptConfig() Config {
	cfg := smallConfig()
	cfg.Cycles = 2
	cfg.CheckpointEvery = 20
	return cfg
}

// runToCompletion runs cfg uninterrupted and returns the sorted RTT
// multiset plus the final stats.
func runToCompletion(t *testing.T, cfg Config) ([]float64, Stats) {
	t.Helper()
	store, st, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r := append([]float64(nil), rtts(store)...)
	sort.Float64s(r)
	return r, st
}

// TestCheckpointResume is the headline resilience contract: a campaign
// interrupted at a checkpoint and resumed from it produces exactly the
// records (and loss accounting) of an uninterrupted run under the same
// seed — nothing double-counted, nothing skipped.
func TestCheckpointResume(t *testing.T) {
	for _, profile := range []string{"", faults.ProfileFlakyWireless} {
		name := profile
		if name == "" {
			name = "fault-free"
		}
		t.Run(name, func(t *testing.T) {
			base := ckptConfig()
			if profile != "" {
				plan, err := faults.Profile(profile, base.Seed)
				if err != nil {
					t.Fatal(err)
				}
				base.Faults = plan
			}
			wantRTTs, wantStats := runToCompletion(t, base)

			// First leg: stop at the second checkpoint, keeping the
			// serialized state and the records collected so far.
			var saved bytes.Buffer
			stopAt := 2
			seen := 0
			cfgA := base
			cfgA.OnCheckpoint = func(cp Checkpoint) error {
				seen++
				if seen == stopAt {
					if err := cp.Encode(&saved); err != nil {
						return err
					}
					return errors.New("shutdown requested")
				}
				return nil
			}
			storeA, stA, err := mustNew(t, cfgA).Run(context.Background())
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("interrupted run: err = %v, want ErrStopped wrap", err)
			}
			if saved.Len() == 0 {
				t.Fatal("no checkpoint serialized")
			}
			npA, _ := storeA.Len()
			if npA == 0 || npA >= len(wantRTTs) {
				t.Fatalf("first leg collected %d pings, want partial (full run has %d)", npA, len(wantRTTs))
			}
			if stA.Checkpoints != stopAt {
				t.Errorf("first leg checkpoints = %d, want %d", stA.Checkpoints, stopAt)
			}

			// Second leg: resume from the decoded checkpoint.
			cp, err := DecodeCheckpoint(&saved)
			if err != nil {
				t.Fatal(err)
			}
			cfgB := base
			cfgB.Resume = cp
			storeB, stB, err := mustNew(t, cfgB).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if stB.CheckpointResumes != 1 {
				t.Errorf("CheckpointResumes = %d, want 1", stB.CheckpointResumes)
			}

			// The two legs together are exactly the uninterrupted run.
			// The checkpoint fired at a flush barrier, so leg A's store
			// holds precisely the records the checkpoint accounts for.
			got := append(append([]float64(nil), rtts(storeA)...), rtts(storeB)...)
			sort.Float64s(got)
			if len(got) != len(wantRTTs) {
				t.Fatalf("split run collected %d pings (%d+%d), uninterrupted run %d",
					len(got), npA, len(got)-npA, len(wantRTTs))
			}
			for i := range got {
				if got[i] != wantRTTs[i] {
					t.Fatalf("RTT multiset diverges at %d: %v vs %v", i, got[i], wantRTTs[i])
				}
			}
			// Loss accounting carries across the restart: the resumed
			// run's final counters match the uninterrupted run's.
			if stB.Pings != wantStats.Pings || stB.Attempts != wantStats.Attempts ||
				stB.Retries != wantStats.Retries || stB.Lost != wantStats.Lost ||
				stB.Traceroutes != wantStats.Traceroutes {
				t.Errorf("resumed stats diverge:\n got %+v\nwant %+v", stB, wantStats)
			}
			if stB.Requests != wantStats.Requests {
				t.Errorf("resumed Requests = %d, want %d (quota/rate state lost?)",
					stB.Requests, wantStats.Requests)
			}
		})
	}
}

// TestCheckpointEncodeDecode round-trips the serialized form.
func TestCheckpointEncodeDecode(t *testing.T) {
	cp := Checkpoint{
		Version: checkpointVersion, Seed: 9, Cycle: 1, NextCountry: 42,
		Clock:           clockState{Requests: 100, Today: 10, DayNumber: 2, Minutes: 3000},
		Breaker:         map[string]breakerEntry{"p1": {UntilMin: 99, Trips: 2}},
		ConnectedCycles: map[string]int{"p1": 2, "p2": 1},
		Snapshot:        DiscoverySnapshot{Cycle: 1, Connected: 17},
		Stats:           Stats{Pings: 5, Attempts: 7, Retries: 1, Lost: 1, SamplesPerCountry: map[string]int{"DE": 5}},
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != cp.Seed || got.Cycle != cp.Cycle || got.NextCountry != cp.NextCountry ||
		got.Clock != cp.Clock || got.Snapshot != cp.Snapshot {
		t.Errorf("round trip lost position: %+v", got)
	}
	if got.Breaker["p1"] != cp.Breaker["p1"] || got.ConnectedCycles["p2"] != 1 {
		t.Errorf("round trip lost breaker/persistence state: %+v", got)
	}
	if got.Stats.Pings != 5 || got.Stats.Attempts != 7 || got.Stats.SamplesPerCountry["DE"] != 5 {
		t.Errorf("round trip lost stats: %+v", got.Stats)
	}

	// Version guard.
	bad := cp
	bad.Version = 99
	buf.Reset()
	if err := bad.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(&buf); err == nil {
		t.Error("decoder accepted a future version")
	}
	if _, err := DecodeCheckpoint(bytes.NewBufferString("{garbage")); err == nil {
		t.Error("decoder accepted garbage")
	}
}

// TestOnCheckpointErrorStops: a failing callback stops the campaign
// with ErrStopped, and the partial store is returned intact.
func TestOnCheckpointErrorStops(t *testing.T) {
	cfg := ckptConfig()
	boom := errors.New("disk full")
	cfg.OnCheckpoint = func(Checkpoint) error { return boom }
	store, st, err := mustNew(t, cfg).Run(context.Background())
	if !errors.Is(err, ErrStopped) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want ErrStopped wrapping the callback error", err)
	}
	if np, _ := store.Len(); np == 0 {
		t.Error("stopped campaign should return its partial store")
	}
	if st.Checkpoints != 1 {
		t.Errorf("checkpoints = %d, want 1 (stopped at the first)", st.Checkpoints)
	}
}

// TestNoCheckpointsWithoutCallback: checkpoints cost a flush barrier,
// so none are taken unless someone is listening.
func TestNoCheckpointsWithoutCallback(t *testing.T) {
	cfg := ckptConfig()
	cfg.OnCheckpoint = nil
	_, st, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Checkpoints != 0 {
		t.Errorf("checkpoints = %d without a callback", st.Checkpoints)
	}
}
