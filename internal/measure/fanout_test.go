package measure

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

// TestSinksFanOut runs the same seeded campaign twice — once
// materializing, once fanning out to two StoreSinks through the bus —
// and requires all three record streams to be identical.
func TestSinksFanOut(t *testing.T) {
	base, _, err := mustNew(t, smallConfig()).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	a := dataset.NewStoreSink(nil)
	b := dataset.NewStoreSink(nil)
	cfg := smallConfig()
	cfg.Sinks = []dataset.Sink{a, b}
	cfg.SinkBuffer = 16
	spill, st, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.SinkDegraded || st.Spilled > 0 {
		t.Fatalf("healthy sinks degraded: %+v", st)
	}
	if np, nt := spill.Len(); np != 0 || nt != 0 {
		t.Fatalf("returned store should be empty when sinks are healthy, got %d pings, %d traces", np, nt)
	}
	// Both bus sinks see the one delivery order, so they must match
	// record-for-record.
	if !reflect.DeepEqual(a.Store.Pings, b.Store.Pings) || !reflect.DeepEqual(a.Store.Traces, b.Store.Traces) {
		t.Error("the two bus sinks received different streams")
	}
	// Worker-completion order varies between runs, so the comparison with
	// the materialized baseline is as multisets.
	if got, want := multiset(a.Store), multiset(base); !reflect.DeepEqual(got, want) {
		t.Error("fan-out record multiset diverges from the materialized run")
	}
}

// multiset counts records irrespective of arrival order.
func multiset(ds *dataset.Store) map[string]int {
	m := map[string]int{}
	for i := range ds.Pings {
		m[fmt.Sprintf("p%+v", ds.Pings[i])]++
	}
	for i := range ds.Traces {
		m[fmt.Sprintf("t%+v", ds.Traces[i])]++
	}
	return m
}

// failAfterSink fails every ping after the first n.
type failAfterSink struct {
	n     int
	seen  int
	limit error
}

func (f *failAfterSink) Ping(dataset.PingRecord) error {
	f.seen++
	if f.seen > f.n {
		return f.limit
	}
	return nil
}
func (f *failAfterSink) Trace(dataset.TracerouteRecord) error { return nil }
func (f *failAfterSink) Close() error                         { return nil }

// TestSinksFanOutDegrades checks that a dying bus sink degrades the
// streaming path exactly like a dying direct sink: the campaign
// finishes, the remainder spills into the returned store, and the error
// is reported.
func TestSinksFanOutDegrades(t *testing.T) {
	boom := errors.New("disk full")
	bad := &failAfterSink{n: 5, limit: boom}
	good := dataset.NewStoreSink(nil)
	cfg := smallConfig()
	cfg.Sinks = []dataset.Sink{bad, good}
	cfg.SinkBuffer = 1
	spill, st, err := mustNew(t, cfg).Run(context.Background())
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if !st.SinkDegraded {
		t.Fatal("SinkDegraded not set")
	}
	if st.Spilled == 0 {
		t.Fatal("nothing spilled")
	}
	np, _ := spill.Len()
	goodN, _ := good.Store.Len()
	if goodN+np < st.Pings {
		t.Errorf("records lost: %d delivered + %d spilled < %d pings", goodN, np, st.Pings)
	}
}

// TestValidateSinkBuffer rejects a negative buffer.
func TestValidateSinkBuffer(t *testing.T) {
	cfg := smallConfig()
	cfg.SinkBuffer = -1
	if _, err := New(testSim, testSC, cfg); err == nil {
		t.Fatal("negative SinkBuffer accepted")
	}
}
