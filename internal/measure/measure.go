// Package measure implements the measurement campaign of §3.3: it
// cycles through every country with enough vantage points, selects the
// probes that happen to be connected (Speedchecker Android probes are
// transient), targets every cloud region on the probe's continent —
// plus the neighbouring continents' regions for Africa and South
// America (§4.3) — and records TCP pings, ICMP pings and ICMP
// traceroutes through the simulator.
//
// The engine honours the paper's operational constraints: a self-imposed
// rate limit of one measurement request per minute and a daily API
// quota, both tracked against a virtual clock so campaigns are
// reproducible and fast. One full pass over all countries takes about
// two virtual weeks, matching the paper's cycle time.
package measure

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/probes"
	"repro/internal/stats"
)

// Config parameterizes a campaign.
type Config struct {
	// Seed drives probe sampling (independent of the world seed).
	Seed int64
	// Cycles is the number of two-week country sweeps; the paper's six
	// months correspond to roughly 12 (default 2).
	Cycles int
	// ProbesPerCountry caps how many connected probes a country
	// contributes per cycle; probes beyond the cap are dropped after a
	// deterministic shuffle. Zero (the default) means no cap, so
	// measurement volume follows probe density as it does on the real
	// platform.
	ProbesPerCountry int
	// TargetsPerProbe is how many regions each selected probe measures
	// per cycle: always the probe's nearest regions plus a rotating
	// window over the rest of the pool, so every probe tracks its
	// closest datacenter every cycle while full coverage accumulates
	// across cycles (default 10).
	TargetsPerProbe int
	// MinProbesPerCountry gates countries into the experiment; the
	// paper required at least 100 probes (default 100). Scaled-down
	// fleets should scale this down too.
	MinProbesPerCountry int
	// RequestsPerMinute is the self-imposed rate limit (default 1).
	RequestsPerMinute float64
	// DailyQuota is the measurement budget per virtual day; zero means
	// unlimited.
	DailyQuota int
	// Workers is the number of concurrent measurement workers
	// (default: GOMAXPROCS).
	Workers int
	// BothPingProtocols issues ICMP pings alongside TCP (default true
	// via DefaultConfig).
	BothPingProtocols bool
	// Traceroutes enables ICMP traceroute collection.
	Traceroutes bool
	// NeighborContinentTargets adds EU+NA regions for African probes
	// and NA regions for South American probes (§4.3).
	NeighborContinentTargets bool
	// Sink, when set, streams records to it instead of accumulating
	// them in the returned store — the full-scale path: a 115K-probe
	// campaign writes gigabytes that should not live in memory. The
	// sink is called from a single goroutine and closed before Run
	// returns.
	Sink dataset.Sink
}

// DefaultConfig returns the paper-shaped configuration.
func DefaultConfig() Config {
	return Config{
		Cycles:                   2,
		TargetsPerProbe:          10,
		MinProbesPerCountry:      100,
		RequestsPerMinute:        1,
		Workers:                  runtime.GOMAXPROCS(0),
		BothPingProtocols:        true,
		Traceroutes:              true,
		NeighborContinentTargets: true,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Cycles == 0 {
		c.Cycles = d.Cycles
	}
	if c.TargetsPerProbe == 0 {
		c.TargetsPerProbe = d.TargetsPerProbe
	}
	if c.MinProbesPerCountry == 0 {
		c.MinProbesPerCountry = d.MinProbesPerCountry
	}
	if c.RequestsPerMinute == 0 {
		c.RequestsPerMinute = d.RequestsPerMinute
	}
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	return c
}

// Stats summarizes a finished campaign.
type Stats struct {
	Requests        int
	Pings           int
	Traceroutes     int
	CountriesCycled int
	// VirtualDuration is how long the campaign would have taken on the
	// real platform under the rate limit and quota.
	VirtualDuration time.Duration
	// SamplesPerCountry counts ping samples per VP country.
	SamplesPerCountry map[string]int
	// Discovery records the 4-hourly connectivity polls (§3.3): how
	// many probes answered each cycle's discovery — the paper's "29K+
	// probes available at any given time" statistic.
	Discovery []DiscoverySnapshot
	// EverConnected counts probes that answered at least one discovery;
	// PersistentProbes counts those that answered every cycle. The gap
	// is the platform's transience (§3.3: "the majority of Android
	// probes were transient across days").
	EverConnected    int
	PersistentProbes int
}

// DiscoverySnapshot is one cycle's probe-connectivity poll.
type DiscoverySnapshot struct {
	Cycle     int
	Connected int
}

// ConnectedShare returns the mean fraction of the fleet connected per
// cycle, given the fleet size.
func (s Stats) ConnectedShare(fleetSize int) float64 {
	if fleetSize == 0 || len(s.Discovery) == 0 {
		return 0
	}
	total := 0
	for _, d := range s.Discovery {
		total += d.Connected
	}
	return float64(total) / float64(len(s.Discovery)) / float64(fleetSize)
}

// ConfidentCountries returns the countries whose sample count meets the
// n = z²p(1−p)/ε² bound at 95% confidence and 2% margin — the paper's
// ">2400 measurements per country" requirement.
func (s Stats) ConfidentCountries() []string {
	need := stats.RequiredSampleSize(1.96, 0.5, 0.02)
	var out []string
	for c, n := range s.SamplesPerCountry {
		if n >= need {
			out = append(out, c)
		}
	}
	return out
}

// task is one <probe, region> measurement unit.
type task struct {
	probe  *probes.Probe
	region *cloud.Region
	cycle  int
}

// Campaign runs measurements for one fleet over one simulator.
type Campaign struct {
	Sim   *netsim.Simulator
	Fleet *probes.Fleet
	Cfg   Config
}

// New assembles a campaign.
func New(sim *netsim.Simulator, fleet *probes.Fleet, cfg Config) *Campaign {
	return &Campaign{Sim: sim, Fleet: fleet, Cfg: cfg.withDefaults()}
}

// Run executes the campaign and returns the collected dataset. It
// respects ctx cancellation, returning the records collected so far
// together with ctx.Err().
func (c *Campaign) Run(ctx context.Context) (*dataset.Store, Stats, error) {
	cfg := c.Cfg
	st := Stats{SamplesPerCountry: make(map[string]int)}
	store := &dataset.Store{}

	tasks := make(chan task)
	results := make(chan any, cfg.Workers*2)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				c.runTask(tk, results)
			}
		}()
	}
	collectorDone := make(chan struct{})
	var sinkErr error
	go func() {
		defer close(collectorDone)
		for r := range results {
			switch rec := r.(type) {
			case dataset.PingRecord:
				st.Pings++
				st.SamplesPerCountry[rec.VP.Country]++
				if cfg.Sink != nil {
					if err := cfg.Sink.Ping(rec); err != nil && sinkErr == nil {
						sinkErr = err
					}
				} else {
					store.AddPing(rec)
				}
			case dataset.TracerouteRecord:
				st.Traceroutes++
				if cfg.Sink != nil {
					if err := cfg.Sink.Trace(rec); err != nil && sinkErr == nil {
						sinkErr = err
					}
				} else {
					store.AddTrace(rec)
				}
			}
		}
	}()

	clock := newVirtualClock(cfg.RequestsPerMinute, cfg.DailyQuota)
	err := c.dispatch(ctx, tasks, clock, &st)
	close(tasks)
	wg.Wait()
	close(results)
	<-collectorDone
	if cfg.Sink != nil {
		if cerr := cfg.Sink.Close(); cerr != nil && sinkErr == nil {
			sinkErr = cerr
		}
	}
	if err == nil && sinkErr != nil {
		err = fmt.Errorf("measure: sink: %w", sinkErr)
	}
	st.Requests = clock.requests
	st.VirtualDuration = clock.elapsed()
	return store, st, err
}

// dispatch walks cycles → countries → probes → targets, enqueueing
// tasks under the rate limit and quota. It also books the per-cycle
// discovery snapshots and probe-persistence counters.
func (c *Campaign) dispatch(ctx context.Context, tasks chan<- task, clock *virtualClock, st *Stats) error {
	cfg := c.Cfg
	connectedCycles := make(map[string]int)
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		snap := DiscoverySnapshot{Cycle: cycle}
		for _, country := range geo.AllCountries() {
			all := c.Fleet.InCountry(country.Code)
			if len(all) < cfg.MinProbesPerCountry {
				continue
			}
			if cycle == 0 {
				st.CountriesCycled++
			}
			connected := c.connectedProbes(all, cycle, cfg.ProbesPerCountry)
			snap.Connected += len(connected)
			for _, p := range connected {
				connectedCycles[p.ID]++
			}
			for pi, p := range connected {
				for _, r := range c.targetsFor(p, cycle, pi) {
					if err := ctx.Err(); err != nil {
						return fmt.Errorf("measure: campaign interrupted: %w", err)
					}
					clock.admit()
					select {
					case tasks <- task{probe: p, region: r, cycle: cycle}:
					case <-ctx.Done():
						return fmt.Errorf("measure: campaign interrupted: %w", ctx.Err())
					}
				}
			}
		}
		st.Discovery = append(st.Discovery, snap)
	}
	st.EverConnected = len(connectedCycles)
	for _, n := range connectedCycles {
		if n == cfg.Cycles {
			st.PersistentProbes++
		}
	}
	return nil
}

// connectedProbes samples which probes answer the 4-hourly discovery
// poll this cycle, then keeps up to limit of them.
func (c *Campaign) connectedProbes(all []*probes.Probe, cycle, limit int) []*probes.Probe {
	var connected []*probes.Probe
	for _, p := range all {
		if c.rngFor(p.ID, cycle).Float64() < p.Availability {
			connected = append(connected, p)
		}
	}
	if limit <= 0 || len(connected) <= limit {
		return connected
	}
	rng := c.rngFor(all[0].Country, cycle)
	rng.Shuffle(len(connected), func(i, j int) {
		connected[i], connected[j] = connected[j], connected[i]
	})
	return connected[:limit]
}

// targetsFor selects which regions this probe measures this cycle: a
// rotating window over the same-continent regions plus the §4.3
// neighbour-continent regions for AF and SA.
func (c *Campaign) targetsFor(p *probes.Probe, cycle, probeIdx int) []*cloud.Region {
	inv := c.Sim.W.Inventory
	home := append([]*cloud.Region(nil), inv.RegionsIn(p.Continent)...)
	var neighbor []*cloud.Region
	if c.Cfg.NeighborContinentTargets {
		switch p.Continent {
		case geo.AF:
			neighbor = append(neighbor, inv.RegionsIn(geo.EU)...)
			neighbor = append(neighbor, inv.RegionsIn(geo.NA)...)
		case geo.SA:
			neighbor = append(neighbor, inv.RegionsIn(geo.NA)...)
		}
	}
	if len(home)+len(neighbor) == 0 {
		return nil
	}
	n := c.Cfg.TargetsPerProbe
	if n >= len(home)+len(neighbor) {
		return append(home, neighbor...)
	}
	// The probe's geographically nearest in-continent regions — and,
	// where the §4.3 neighbour targeting applies, the nearest
	// neighbour-continent regions — are measured every cycle: the
	// paper's per-probe "closest datacenter" series needs density
	// there. A rotating window covers the rest of the pool across
	// cycles.
	byDistance := func(pool []*cloud.Region) {
		sort.Slice(pool, func(i, j int) bool {
			di := geo.DistanceKm(p.Loc, pool[i].Loc)
			dj := geo.DistanceKm(p.Loc, pool[j].Loc)
			if di != dj {
				return di < dj
			}
			return pool[i].ID < pool[j].ID
		})
	}
	byDistance(home)
	byDistance(neighbor)
	alwaysHome := 3
	if alwaysHome > n {
		alwaysHome = n
	}
	if alwaysHome > len(home) {
		alwaysHome = len(home)
	}
	out := append([]*cloud.Region(nil), home[:alwaysHome]...)
	alwaysNeighbor := 2
	if alwaysNeighbor > len(neighbor) {
		alwaysNeighbor = len(neighbor)
	}
	if len(out)+alwaysNeighbor > n {
		alwaysNeighbor = n - len(out)
	}
	out = append(out, neighbor[:alwaysNeighbor]...)
	rest := append(home[alwaysHome:], neighbor[alwaysNeighbor:]...)
	if len(rest) == 0 {
		return out
	}
	// Stride through the remainder so each cycle samples a spread of
	// distances rather than one contiguous (and geographically
	// clustered) run of the sorted pool.
	rotating := n - len(out)
	if rotating <= 0 {
		return out
	}
	stride := len(rest) / rotating
	if stride < 1 {
		stride = 1
	}
	start := (cycle + probeIdx*7) % len(rest)
	for i := 0; len(out) < n; i++ {
		out = append(out, rest[(start+i*stride+i)%len(rest)])
	}
	return out
}

func (c *Campaign) runTask(tk task, results chan<- any) {
	results <- c.Sim.Ping(tk.probe, tk.region, dataset.TCP, tk.cycle)
	if c.Cfg.BothPingProtocols {
		results <- c.Sim.Ping(tk.probe, tk.region, dataset.ICMP, tk.cycle)
	}
	if c.Cfg.Traceroutes {
		results <- c.Sim.Traceroute(tk.probe, tk.region, tk.cycle)
		// The published dataset holds roughly twice as many traceroutes
		// as pings; a second trace per task approximates the parallel
		// traceroute campaign.
		results <- c.Sim.Traceroute(tk.probe, tk.region, tk.cycle+1<<20)
	}
}

func (c *Campaign) rngFor(key string, cycle int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{byte(cycle), byte(cycle >> 8)})
	var seed [8]byte
	for i := range seed {
		seed[i] = byte(c.Cfg.Seed >> (8 * i))
	}
	h.Write(seed[:])
	return rand.New(rand.NewSource(int64(splitmix64(h.Sum64()))))
}

// splitmix64 finalizes a hash before it seeds math/rand: related FNV
// values (same probe, consecutive cycles) otherwise produce visibly
// structured first draws from rand.NewSource, which correlated probe
// availability across cycles.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// virtualClock books measurement requests against the rate limit and
// the daily quota without sleeping.
type virtualClock struct {
	minutesPerRequest float64
	dailyQuota        int

	requests  int
	today     int
	dayNumber int
	minutes   float64
}

func newVirtualClock(requestsPerMinute float64, dailyQuota int) *virtualClock {
	return &virtualClock{
		minutesPerRequest: 1 / requestsPerMinute,
		dailyQuota:        dailyQuota,
	}
}

// admit books one request. When the daily quota is exhausted the
// campaign waits for the budget refresh at the next day boundary
// (§3.3), which the virtual clock models as a time jump.
func (v *virtualClock) admit() {
	day := int(v.minutes / (24 * 60))
	if day > v.dayNumber {
		v.dayNumber = day
		v.today = 0
	}
	if v.dailyQuota > 0 && v.today >= v.dailyQuota {
		// Jump to the next day boundary and retry there.
		v.minutes = float64(v.dayNumber+1) * 24 * 60
		v.dayNumber++
		v.today = 0
	}
	v.requests++
	v.today++
	v.minutes += v.minutesPerRequest
}

func (v *virtualClock) elapsed() time.Duration {
	return time.Duration(v.minutes * float64(time.Minute))
}
