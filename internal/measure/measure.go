// Package measure implements the measurement campaign of §3.3: it
// cycles through every country with enough vantage points, selects the
// probes that happen to be connected (Speedchecker Android probes are
// transient), targets every cloud region on the probe's continent —
// plus the neighbouring continents' regions for Africa and South
// America (§4.3) — and records TCP pings, ICMP pings and ICMP
// traceroutes through the simulator.
//
// The engine honours the paper's operational constraints: a self-imposed
// rate limit of one measurement request per minute and a daily API
// quota, both tracked against a virtual clock so campaigns are
// reproducible and fast. One full pass over all countries takes about
// two virtual weeks, matching the paper's cycle time.
//
// The engine is also resilient the way a six-month campaign has to be:
// lost or timed-out measurements are retried with exponential backoff
// and deterministic jitter, a per-probe circuit breaker quarantines
// probes that fail repeatedly, persistent sink failures degrade to an
// in-memory spill instead of aborting, and the whole campaign can be
// checkpointed and resumed without double-counting. Failures come from
// an optional faults.Injector, so chaos campaigns stay reproducible.
package measure

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/probes"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Flag is a tri-state boolean distinguishing "unset" from an explicit
// false, so zero-value Configs pick up documented defaults while an
// explicit FlagOff still means off.
type Flag uint8

// Flag states.
const (
	FlagUnset Flag = iota
	FlagOn
	FlagOff
)

// Enabled reports whether the flag resolved to on.
func (f Flag) Enabled() bool { return f == FlagOn }

// FlagOf converts a plain bool into a Flag.
func FlagOf(b bool) Flag {
	if b {
		return FlagOn
	}
	return FlagOff
}

// ErrStopped is returned (wrapped) by Run when an OnCheckpoint callback
// asked the campaign to stop; the partial store and the checkpoint the
// callback received allow a later resume.
var ErrStopped = errors.New("measure: campaign stopped at checkpoint")

// Config parameterizes a campaign.
type Config struct {
	// Seed drives probe sampling (independent of the world seed).
	Seed int64
	// Cycles is the number of two-week country sweeps; the paper's six
	// months correspond to roughly 12 (default 2).
	Cycles int
	// ProbesPerCountry caps how many connected probes a country
	// contributes per cycle; probes beyond the cap are dropped after a
	// deterministic shuffle. Zero (the default) means no cap, so
	// measurement volume follows probe density as it does on the real
	// platform.
	ProbesPerCountry int
	// TargetsPerProbe is how many regions each selected probe measures
	// per cycle: always the probe's nearest regions plus a rotating
	// window over the rest of the pool, so every probe tracks its
	// closest datacenter every cycle while full coverage accumulates
	// across cycles (default 10).
	TargetsPerProbe int
	// MinProbesPerCountry gates countries into the experiment; the
	// paper required at least 100 probes (default 100). Scaled-down
	// fleets should scale this down too.
	MinProbesPerCountry int
	// Countries, when non-empty, restricts the sweep to these country
	// codes — the distributed campaign plane's shard unit. Probe and
	// target selection, retry jitter and record values are all pure
	// functions of (probe, country, cycle), so a fault-free,
	// quota-free campaign over a country subset emits exactly the
	// records the full sweep would emit for those countries, in the
	// same per-probe order (internal/cluster relies on this for its
	// replay-on-reassign determinism).
	Countries []string
	// FromCycle and ToCycle restrict the sweep to the cycle window
	// [FromCycle, ToCycle) on the campaign time axis — the longitudinal
	// analogue of Countries, and the other half of the cluster plane's
	// shard unit. Zero values impose no bound (ToCycle <= 0 runs through
	// Cycles). Because everything a record carries is a pure function of
	// (probe, country, cycle), a windowed run emits exactly the records
	// the full campaign would emit for those cycles.
	FromCycle int
	ToCycle   int
	// DiurnalAmplitude modulates probe availability over the virtual
	// day (0 disables, the default): a country's discovery probability
	// is scaled by 1 − A·nightShare, where nightShare follows a cosine
	// over the country's sweep-phase time of day. The factor is a pure
	// function of (country, cycle), so modulated campaigns stay
	// replayable.
	DiurnalAmplitude float64
	// CycleQuota bounds the measurement requests dispatched per cycle;
	// zero means unlimited. When a cycle exhausts its quota the rest of
	// that cycle's sweep is skipped (booked in
	// Stats.CycleQuotaExhausted) and the budget refreshes at the next
	// cycle boundary — the §3.3 budget, re-anchored to the campaign
	// time axis.
	CycleQuota int
	// RegionAvailable, when set, filters the target pool per cycle:
	// targetsFor only considers regions for which it returns true. The
	// scenario plane uses this for provider-region launches mid-campaign
	// (netsim.Scenario.RegionAvailable); it must be a pure function of
	// (regionID, cycle) to keep campaigns replayable.
	RegionAvailable func(regionID string, cycle int) bool
	// RequestsPerMinute is the self-imposed rate limit (default 1).
	RequestsPerMinute float64
	// DailyQuota is the measurement budget per virtual day; zero means
	// unlimited.
	DailyQuota int
	// Workers is the number of concurrent measurement workers
	// (default: GOMAXPROCS).
	Workers int
	// BothPingProtocols issues ICMP pings alongside TCP. The unset
	// (zero) value means on — the paper ran both (§3.3); use FlagOff to
	// collect TCP only.
	BothPingProtocols Flag
	// Traceroutes enables ICMP traceroute collection.
	Traceroutes bool
	// NeighborContinentTargets adds EU+NA regions for African probes
	// and NA regions for South American probes (§4.3).
	NeighborContinentTargets bool
	// Sink, when set, streams records to it instead of accumulating
	// them in the returned store — the full-scale path: a 115K-probe
	// campaign writes gigabytes that should not live in memory. The
	// sink is called from a single goroutine and closed before Run
	// returns. If the sink fails persistently the campaign does not
	// abort: remaining records spill into the returned store and the
	// sink error is reported alongside the complete dataset.
	Sink dataset.Sink
	// Sinks adds further destinations. When the effective sink set
	// (Sink plus Sinks) has more than one member, the campaign fans
	// records out through a bounded sample.Bus, so one run can feed the
	// export files, an in-memory store and an incremental columnar
	// store.Feed at once under backpressure. Each sink is closed before
	// Run returns; a failed sink degrades the whole streaming path and
	// the remainder spills into the returned store, as with Sink.
	Sinks []dataset.Sink
	// SinkBuffer is the fan-out bus capacity when more than one sink is
	// configured (default sample.DefaultBusBuffer). A full buffer blocks
	// the collector — backpressure, not unbounded queueing.
	SinkBuffer int

	// Obs registers the campaign's instruments (pings, retries, breaker
	// trips, quota burn, RTT histogram, checkpoint age) and, when the
	// fan-out bus engages, the bus's queue telemetry. Nil runs
	// uninstrumented; the engine's behaviour is identical either way —
	// instruments observe the campaign, they never steer it. Span-style
	// tracing is carried separately, via the ctx handed to Run.
	Obs *obs.Registry

	// Faults injects deterministic failures (nil = fault-free run).
	Faults faults.Injector
	// MaxRetries bounds the retries after a lost or timed-out ping
	// attempt (default 2; -1 disables retries entirely).
	MaxRetries int
	// TaskDeadlineMs is the per-measurement deadline: an attempt whose
	// injected delay exceeds it counts as timed out (default 3000).
	TaskDeadlineMs float64
	// BackoffBaseMs and BackoffMaxMs shape the exponential retry
	// backoff charged to the virtual clock (defaults 100 and 60000).
	BackoffBaseMs float64
	BackoffMaxMs  float64
	// BreakerThreshold quarantines a probe after this many consecutive
	// lost measurements (default 4; -1 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a quarantined probe stays benched in
	// virtual time before re-admission (default 24h).
	BreakerCooldown time.Duration
	// CheckpointEvery takes a checkpoint after every N dispatched
	// countries (default 25). Checkpoints are only taken when
	// OnCheckpoint is set: each one costs a flush barrier.
	CheckpointEvery int
	// OnCheckpoint receives each checkpoint; returning a non-nil error
	// stops the campaign gracefully (Run returns the partial store and
	// an error wrapping ErrStopped).
	OnCheckpoint func(Checkpoint) error
	// Resume restores a previous checkpoint: the campaign skips the
	// work the checkpoint covers and continues its clock, quota,
	// quarantine and loss accounting.
	Resume *Checkpoint
}

// DefaultConfig returns the paper-shaped configuration.
func DefaultConfig() Config {
	return Config{
		Cycles:                   2,
		TargetsPerProbe:          10,
		MinProbesPerCountry:      100,
		RequestsPerMinute:        1,
		Workers:                  runtime.GOMAXPROCS(0),
		BothPingProtocols:        FlagOn,
		Traceroutes:              true,
		NeighborContinentTargets: true,
		MaxRetries:               2,
		TaskDeadlineMs:           3000,
		BackoffBaseMs:            100,
		BackoffMaxMs:             60000,
		BreakerThreshold:         4,
		BreakerCooldown:          24 * time.Hour,
		CheckpointEvery:          25,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Cycles == 0 {
		c.Cycles = d.Cycles
	}
	if c.TargetsPerProbe == 0 {
		c.TargetsPerProbe = d.TargetsPerProbe
	}
	if c.MinProbesPerCountry == 0 {
		c.MinProbesPerCountry = d.MinProbesPerCountry
	}
	if c.RequestsPerMinute == 0 {
		c.RequestsPerMinute = d.RequestsPerMinute
	}
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.BothPingProtocols == FlagUnset {
		c.BothPingProtocols = d.BothPingProtocols
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = d.MaxRetries
	}
	if c.TaskDeadlineMs == 0 {
		c.TaskDeadlineMs = d.TaskDeadlineMs
	}
	if c.BackoffBaseMs == 0 {
		c.BackoffBaseMs = d.BackoffBaseMs
	}
	if c.BackoffMaxMs == 0 {
		c.BackoffMaxMs = d.BackoffMaxMs
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = d.BreakerThreshold
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = d.BreakerCooldown
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = d.CheckpointEvery
	}
	return c
}

// Validate rejects nonsensical configurations before they can corrupt a
// campaign: negative sizes, a negative or non-finite rate limit, or a
// resume checkpoint from a different seed or layout. Zero values are
// fine — withDefaults fills them in.
func (c Config) Validate() error {
	switch {
	case c.Cycles < 0:
		return fmt.Errorf("measure: Cycles %d is negative", c.Cycles)
	case c.ProbesPerCountry < 0:
		return fmt.Errorf("measure: ProbesPerCountry %d is negative", c.ProbesPerCountry)
	case c.TargetsPerProbe < 0:
		return fmt.Errorf("measure: TargetsPerProbe %d is negative", c.TargetsPerProbe)
	case c.MinProbesPerCountry < 0:
		return fmt.Errorf("measure: MinProbesPerCountry %d is negative", c.MinProbesPerCountry)
	case c.RequestsPerMinute < 0 || math.IsNaN(c.RequestsPerMinute) || math.IsInf(c.RequestsPerMinute, 0):
		return fmt.Errorf("measure: RequestsPerMinute %v is not a valid rate", c.RequestsPerMinute)
	case c.DailyQuota < 0:
		return fmt.Errorf("measure: DailyQuota %d is negative", c.DailyQuota)
	case c.Workers < 0:
		return fmt.Errorf("measure: Workers %d is negative", c.Workers)
	case c.BothPingProtocols > FlagOff:
		return fmt.Errorf("measure: BothPingProtocols %d is not a valid Flag", c.BothPingProtocols)
	case c.MaxRetries < -1:
		return fmt.Errorf("measure: MaxRetries %d is invalid (use -1 to disable)", c.MaxRetries)
	case c.TaskDeadlineMs < 0 || math.IsNaN(c.TaskDeadlineMs):
		return fmt.Errorf("measure: TaskDeadlineMs %v is invalid", c.TaskDeadlineMs)
	case c.BackoffBaseMs < 0 || c.BackoffMaxMs < 0:
		return fmt.Errorf("measure: backoff bounds (%v, %v) are negative", c.BackoffBaseMs, c.BackoffMaxMs)
	case c.BreakerThreshold < -1:
		return fmt.Errorf("measure: BreakerThreshold %d is invalid (use -1 to disable)", c.BreakerThreshold)
	case c.BreakerCooldown < 0:
		return fmt.Errorf("measure: BreakerCooldown %v is negative", c.BreakerCooldown)
	case c.CheckpointEvery < 0:
		return fmt.Errorf("measure: CheckpointEvery %d is negative", c.CheckpointEvery)
	case c.SinkBuffer < 0:
		return fmt.Errorf("measure: SinkBuffer %d is negative", c.SinkBuffer)
	case c.FromCycle < 0:
		return fmt.Errorf("measure: FromCycle %d is negative", c.FromCycle)
	case c.ToCycle < 0:
		return fmt.Errorf("measure: ToCycle %d is negative", c.ToCycle)
	case c.FromCycle > 0 && c.ToCycle > 0 && c.FromCycle >= c.ToCycle:
		return fmt.Errorf("measure: cycle window [%d, %d) is empty", c.FromCycle, c.ToCycle)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude > 1 || math.IsNaN(c.DiurnalAmplitude):
		return fmt.Errorf("measure: DiurnalAmplitude %v is outside [0, 1]", c.DiurnalAmplitude)
	case c.CycleQuota < 0:
		return fmt.Errorf("measure: CycleQuota %d is negative", c.CycleQuota)
	}
	if c.Resume != nil {
		if c.Resume.Version != checkpointVersion {
			return fmt.Errorf("measure: resume checkpoint version %d, want %d", c.Resume.Version, checkpointVersion)
		}
		if c.Resume.Seed != c.Seed {
			return fmt.Errorf("measure: resume checkpoint was taken under seed %d, campaign uses %d",
				c.Resume.Seed, c.Seed)
		}
	}
	return nil
}

// Stats summarizes a finished campaign.
type Stats struct {
	Requests        int
	Pings           int
	Traceroutes     int
	CountriesCycled int
	// VirtualDuration is how long the campaign would have taken on the
	// real platform under the rate limit and quota.
	VirtualDuration time.Duration
	// SamplesPerCountry counts ping samples per VP country.
	SamplesPerCountry map[string]int
	// Discovery records the 4-hourly connectivity polls (§3.3): how
	// many probes answered each cycle's discovery — the paper's "29K+
	// probes available at any given time" statistic.
	Discovery []DiscoverySnapshot
	// EverConnected counts probes that answered at least one discovery;
	// PersistentProbes counts those that answered every cycle. The gap
	// is the platform's transience (§3.3: "the majority of Android
	// probes were transient across days").
	EverConnected    int
	PersistentProbes int

	// Loss accounting. Attempts counts every ping attempt including
	// retries; each attempt either delivers a record, is retried, or is
	// finally lost, so Attempts = Pings + Retries + Lost holds on any
	// campaign that ran to completion.
	Attempts int
	Retries  int
	// TimedOut counts attempts that exceeded the per-task deadline (a
	// subset of the failures behind Retries and Lost).
	TimedOut int
	// Lost counts ping measurements abandoned after exhausting retries.
	Lost int
	// TracesLost counts traceroutes that never came back.
	TracesLost int
	// ProbeDropouts counts probes that answered discovery but vanished
	// before measuring — the §3.3 mid-campaign churn.
	ProbeDropouts int
	// Quarantined counts circuit-breaker trips; QuarantineSkipped
	// counts probe selections skipped while quarantined.
	Quarantined       int
	QuarantineSkipped int
	// CycleQuotaExhausted counts cycles whose per-cycle measurement
	// budget (Config.CycleQuota) ran out before the sweep finished.
	CycleQuotaExhausted int
	// Checkpoints and CheckpointResumes count resilience round trips.
	Checkpoints       int
	CheckpointResumes int
	// SinkRetries counts transient sink errors that were retried;
	// Spilled counts records diverted to the in-memory store after the
	// sink degraded permanently.
	SinkRetries  int
	Spilled      int
	SinkDegraded bool

	// Fan-out bus telemetry (zero unless the campaign streamed through
	// a multi-sink sample.Bus). BusHighWater is the deepest buffer
	// occupancy seen; BusStalls counts sends that blocked on a full
	// buffer; BusDropped counts deliveries skipped because a sink had
	// already degraded (the records behind Spilled).
	BusHighWater int
	BusStalls    int
	BusDropped   int
}

// clone deep-copies the stats (map and slice included) for checkpoints.
func (s Stats) clone() Stats {
	out := s
	if s.SamplesPerCountry != nil {
		out.SamplesPerCountry = make(map[string]int, len(s.SamplesPerCountry))
		for k, v := range s.SamplesPerCountry {
			out.SamplesPerCountry[k] = v
		}
	}
	out.Discovery = append([]DiscoverySnapshot(nil), s.Discovery...)
	return out
}

// LossRate returns the fraction of ping measurements finally lost.
func (s Stats) LossRate() float64 {
	done := s.Pings + s.Lost
	if done == 0 {
		return 0
	}
	return float64(s.Lost) / float64(done)
}

// DiscoverySnapshot is one cycle's probe-connectivity poll.
type DiscoverySnapshot struct {
	Cycle     int
	Connected int
}

// ConnectedShare returns the mean fraction of the fleet connected per
// cycle, given the fleet size.
func (s Stats) ConnectedShare(fleetSize int) float64 {
	if fleetSize == 0 || len(s.Discovery) == 0 {
		return 0
	}
	total := 0
	for _, d := range s.Discovery {
		total += d.Connected
	}
	return float64(total) / float64(len(s.Discovery)) / float64(fleetSize)
}

// ConfidentCountries returns the countries whose sample count meets the
// n = z²p(1−p)/ε² bound at 95% confidence and 2% margin — the paper's
// ">2400 measurements per country" requirement.
func (s Stats) ConfidentCountries() []string {
	need := stats.RequiredSampleSize(1.96, 0.5, 0.02)
	var out []string
	for c, n := range s.SamplesPerCountry {
		if n >= need {
			out = append(out, c)
		}
	}
	return out
}

// task is one <probe, region> measurement unit, with the control-plane
// outcome (which measurements survived fault resolution) already
// decided by the dispatcher.
type task struct {
	probe  *probes.Probe
	region *cloud.Region
	cycle  int
	doTCP  bool
	doICMP bool
	// traces holds the traceroute cycle keys to run (two per task — the
	// published dataset holds roughly twice as many traceroutes as
	// pings — minus any the injector lost).
	traces []int
}

// taskDone flows through the results channel after a task's records,
// letting the collector acknowledge collection for flush barriers.
type taskDone struct{}

// Campaign runs measurements for one fleet over one simulator.
type Campaign struct {
	Sim   *netsim.Simulator
	Fleet *probes.Fleet
	Cfg   Config
}

// New assembles a campaign, validating cfg first.
func New(sim *netsim.Simulator, fleet *probes.Fleet, cfg Config) (*Campaign, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Campaign{Sim: sim, Fleet: fleet, Cfg: cfg.withDefaults()}, nil
}

// Run executes the campaign and returns the collected dataset. It
// respects ctx cancellation, returning the records collected so far
// together with ctx.Err(); all workers are joined before Run returns,
// cancelled or not.
func (c *Campaign) Run(ctx context.Context) (*dataset.Store, Stats, error) {
	cfg := c.Cfg
	st := Stats{SamplesPerCountry: make(map[string]int)}
	m := newCampaignMetrics(cfg.Obs)
	ctx, span := obs.StartSpan(ctx, "measure.campaign")
	defer span.End()
	clock := newVirtualClock(cfg.RequestsPerMinute, cfg.DailyQuota)
	brk := newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown.Minutes())
	if cfg.Resume != nil {
		st = cfg.Resume.Stats.clone()
		if st.SamplesPerCountry == nil {
			st.SamplesPerCountry = make(map[string]int)
		}
		st.CheckpointResumes++
		clock.restore(cfg.Resume.Clock)
		brk.restore(cfg.Resume.Breaker)
	}
	store := &dataset.Store{}

	tasks := make(chan task)
	results := make(chan any, cfg.Workers*2)
	var wg, inflight sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				c.runTask(tk, results)
			}
		}()
	}
	// The collector always emits onto a sink. With no configured sinks
	// the default is a StoreSink over the returned store (the historical
	// materializing path); with several, a bounded bus fans records out
	// to all of them. Injected sink faults only apply to user-supplied
	// sinks, so fault profiles keep their historical meaning for
	// materializing campaigns.
	sinks := make([]dataset.Sink, 0, len(cfg.Sinks)+1)
	if cfg.Sink != nil {
		sinks = append(sinks, cfg.Sink)
	}
	for _, s := range cfg.Sinks {
		if s != nil {
			sinks = append(sinks, s)
		}
	}
	external := len(sinks) > 0
	if !external {
		sinks = append(sinks, dataset.NewStoreSink(store))
	}
	sink := sinks[0]
	if len(sinks) > 1 {
		sink = sample.NewBus(sample.BusOptions{Buffer: cfg.SinkBuffer, Obs: cfg.Obs}, sinks...)
	}

	col := &collector{sink: sink, external: external, inj: cfg.Faults, store: store, st: &st, m: m, inflight: &inflight}
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		col.run(results)
	}()

	err := c.dispatch(ctx, tasks, clock, brk, &st, m, &inflight)
	close(tasks)
	wg.Wait()
	close(results)
	<-collectorDone
	if cerr := sink.Close(); cerr != nil && external && col.err == nil {
		col.err = cerr
	}
	if err == nil && col.err != nil {
		err = fmt.Errorf("measure: sink degraded, %d records spilled to the in-memory store: %w",
			st.Spilled, col.err)
	}
	if bus, ok := sink.(*sample.Bus); ok {
		bs := bus.Stats()
		st.BusHighWater = bs.HighWater
		st.BusStalls = int(bs.Stalls)
		st.BusDropped = int(bs.Dropped)
	}
	st.Requests = clock.requests
	st.VirtualDuration = clock.elapsed()
	span.SetAttr("pings", fmt.Sprint(st.Pings))
	span.SetAttr("traceroutes", fmt.Sprint(st.Traceroutes))
	span.SetAttr("countries", fmt.Sprint(st.CountriesCycled))
	return store, st, err
}

// collector is the single goroutine that owns record delivery onto the
// sink (possibly a fan-out bus), with transient-error retries and
// permanent-failure spill into the in-memory store.
type collector struct {
	sink dataset.Sink
	// external is true when the sink set was supplied by the caller;
	// injected sink faults and spill accounting only apply then — the
	// internal default StoreSink cannot fail.
	external bool
	inj      faults.Injector
	store    *dataset.Store
	st       *Stats
	m        *campaignMetrics
	inflight *sync.WaitGroup
	seq      int
	broken   bool
	err      error // first permanent sink error
}

func (co *collector) run(results <-chan any) {
	for r := range results {
		switch rec := r.(type) {
		case dataset.PingRecord:
			co.st.Pings++
			co.st.SamplesPerCountry[rec.VP.Country]++
			co.m.pings.Inc()
			co.m.rtt.Observe(rec.RTTms)
			co.deliver(func() error { return co.sink.Ping(rec) }, func() { co.store.AddPing(rec) })
		case dataset.TracerouteRecord:
			co.st.Traceroutes++
			co.m.traces.Inc()
			co.deliver(func() error { return co.sink.Trace(rec) }, func() { co.store.AddTrace(rec) })
		case taskDone:
			co.inflight.Done()
		}
	}
}

// maxSinkRetries bounds consecutive transient-error retries per record;
// a storm longer than this counts as a persistent failure.
const maxSinkRetries = 3

// deliver routes one record: to the sink (retrying injected transient
// errors), or — once the sink has degraded — into the in-memory store,
// so a broken sink costs memory, never data.
func (co *collector) deliver(toSink func() error, toStore func()) {
	if co.broken {
		toStore()
		co.spill()
		return
	}
	for try := 0; ; try++ {
		if co.external && co.inj != nil {
			if err := co.inj.Sink(co.seq); err != nil {
				co.seq++
				if faults.IsTransient(err) && try < maxSinkRetries {
					co.st.SinkRetries++
					co.m.sinkRetries.Inc()
					continue
				}
				co.degrade(err)
				toStore()
				co.spill()
				return
			}
		}
		co.seq++
		if err := toSink(); err != nil {
			// A real write error is not safely retryable (the write may
			// have partially landed): degrade immediately.
			co.degrade(err)
			toStore()
			co.spill()
			return
		}
		return
	}
}

func (co *collector) spill() {
	co.st.Spilled++
	co.m.spilled.Inc()
}

func (co *collector) degrade(err error) {
	co.broken = true
	co.st.SinkDegraded = true
	if co.err == nil {
		co.err = err
	}
}

// dispatch walks cycles → countries → probes → targets, enqueueing
// tasks under the rate limit and quota. It also books the per-cycle
// discovery snapshots, probe-persistence counters, fault resolution
// (retries, breaker) and checkpoint barriers.
func (c *Campaign) dispatch(ctx context.Context, tasks chan<- task, clock *virtualClock,
	brk *breaker, st *Stats, m *campaignMetrics, inflight *sync.WaitGroup) error {
	cfg := c.Cfg
	countries := geo.AllCountries()
	var only map[string]bool
	if len(cfg.Countries) > 0 {
		only = make(map[string]bool, len(cfg.Countries))
		for _, cc := range cfg.Countries {
			only[cc] = true
		}
	}
	connectedCycles := make(map[string]int)
	startCycle, startCountry := 0, 0
	var snap DiscoverySnapshot
	cycleSpent := 0
	if cfg.Resume != nil {
		startCycle, startCountry = cfg.Resume.Cycle, cfg.Resume.NextCountry
		for k, v := range cfg.Resume.ConnectedCycles {
			connectedCycles[k] = v
		}
		snap = cfg.Resume.Snapshot
		cycleSpent = cfg.Resume.CycleRequests
	}
	// The cycle window [FromCycle, ToCycle) clamps the sweep onto a slice
	// of the campaign time axis; a resume position inside the window wins
	// over its lower bound.
	firstCycle := startCycle
	if cfg.FromCycle > firstCycle {
		firstCycle = cfg.FromCycle
	}
	endCycle := cfg.Cycles
	if cfg.ToCycle > 0 && cfg.ToCycle < endCycle {
		endCycle = cfg.ToCycle
	}
	countCycle := 0
	if cfg.Resume == nil {
		countCycle = firstCycle
	}
	sinceCkpt := 0
	lastCkptMinute := clock.now()
	// One span per country sweep; cspan outlives each iteration so the
	// deferred End covers the early returns mid-cycle (End is idempotent,
	// so the per-iteration End makes the deferred one a no-op normally).
	var cspan *obs.Span
	defer func() { cspan.End() }()
	for cycle := firstCycle; cycle < endCycle; cycle++ {
		_, cspan = obs.StartSpan(ctx, "measure.cycle")
		cspan.SetAttr("cycle", fmt.Sprint(cycle))
		start := 0
		if cycle == startCycle {
			start = startCountry
		}
		if cfg.Resume == nil || cycle != startCycle {
			snap = DiscoverySnapshot{Cycle: cycle}
			cycleSpent = 0
		}
		quotaOut := false
		for ci := start; ci < len(countries); ci++ {
			country := countries[ci]
			if only != nil && !only[country.Code] {
				continue
			}
			all := c.Fleet.InCountry(country.Code)
			if len(all) < cfg.MinProbesPerCountry {
				continue
			}
			if cycle == countCycle {
				st.CountriesCycled++
			}
			connected := c.connectedProbes(all, cycle, cfg.ProbesPerCountry)
			snap.Connected += len(connected)
			for _, p := range connected {
				connectedCycles[p.ID]++
			}
			for pi, p := range connected {
				if quotaOut {
					break
				}
				if brk.quarantined(p.ID, clock.now()) {
					st.QuarantineSkipped++
					m.quarantineSkips.Inc()
					continue
				}
				if cfg.Faults != nil && cfg.Faults.ProbeDropout(p.ID, cycle) {
					st.ProbeDropouts++
					m.dropouts.Inc()
					continue
				}
				for _, r := range c.targetsFor(p, cycle, pi) {
					if err := ctx.Err(); err != nil {
						return fmt.Errorf("measure: campaign interrupted: %w", err)
					}
					if cfg.CycleQuota > 0 && cycleSpent >= cfg.CycleQuota {
						// This cycle's budget is gone; skip the rest of its
						// sweep and refresh at the next cycle boundary.
						quotaOut = true
						st.CycleQuotaExhausted++
						m.cycleQuotaExhausted.Inc()
						break
					}
					clock.admit()
					cycleSpent++
					m.quotaRemaining.Set(clock.quotaRemaining())
					m.checkpointAgeMin.Set(int64(clock.now() - lastCkptMinute))
					tk := task{probe: p, region: r, cycle: cycle}
					tripped := c.resolveTask(&tk, clock, brk, st, m)
					if tk.doTCP || tk.doICMP || len(tk.traces) > 0 {
						inflight.Add(1)
						select {
						case tasks <- tk:
						case <-ctx.Done():
							inflight.Done()
							return fmt.Errorf("measure: campaign interrupted: %w", ctx.Err())
						}
					}
					if tripped {
						st.Quarantined++
						m.breakerTrips.Inc()
						break // bench this probe's remaining targets
					}
				}
			}
			if cfg.OnCheckpoint != nil {
				sinceCkpt++
				if sinceCkpt >= cfg.CheckpointEvery {
					sinceCkpt = 0
					// Flush barrier: every enqueued task collected, so
					// the checkpointed Stats are exact.
					inflight.Wait()
					st.Checkpoints++
					m.checkpoints.Inc()
					lastCkptMinute = clock.now()
					m.checkpointAgeMin.Set(0)
					cp := c.checkpoint(cycle, ci+1, snap, cycleSpent, clock, brk, connectedCycles, st)
					if err := cfg.OnCheckpoint(cp); err != nil {
						if errors.Is(err, ErrStopped) {
							return err
						}
						return fmt.Errorf("%w: %w", ErrStopped, err)
					}
				}
			}
			if quotaOut {
				break // the rest of this cycle's countries are unfunded
			}
		}
		st.Discovery = append(st.Discovery, snap)
		cspan.End()
	}
	st.EverConnected = len(connectedCycles)
	st.PersistentProbes = 0
	// A probe is persistent when it answered every cycle the (possibly
	// windowed) campaign actually ran.
	fullCycles := endCycle - cfg.FromCycle
	for _, n := range connectedCycles {
		if n == fullCycles {
			st.PersistentProbes++
		}
	}
	return nil
}

// resolveTask decides, deterministically and on the dispatch goroutine,
// which of the task's measurements survive fault injection: each ping
// runs a retry ladder with backoff, each outcome feeds the probe's
// circuit breaker, and lost traceroutes are booked. It reports whether
// the breaker tripped on this task.
func (c *Campaign) resolveTask(tk *task, clock *virtualClock, brk *breaker, st *Stats, m *campaignMetrics) bool {
	tripped := false
	book := func(ok bool) {
		if brk.onResult(tk.probe.ID, ok, clock.now()) {
			tripped = true
		}
	}
	tk.doTCP = c.resolvePing(tk.probe, tk.region, faults.OpPingTCP, tk.cycle, clock, st, m)
	book(tk.doTCP)
	if c.Cfg.BothPingProtocols.Enabled() {
		tk.doICMP = c.resolvePing(tk.probe, tk.region, faults.OpPingICMP, tk.cycle, clock, st, m)
		book(tk.doICMP)
	}
	if c.Cfg.Traceroutes {
		// The second trace carries the decorated cycle so its samples
		// stay decorrelated from the first; sample.CampaignCycle maps it
		// back onto the campaign time axis downstream.
		for _, tc := range []int{tk.cycle, sample.DecorateTraceCycle(tk.cycle)} {
			if c.Cfg.Faults != nil && c.Cfg.Faults.Trace(tk.probe.ID, tk.region.ID, tc).Lost {
				st.TracesLost++
				m.tracesLost.Inc()
				continue
			}
			tk.traces = append(tk.traces, tc)
		}
	}
	return tripped
}

// resolvePing runs one ping measurement's control plane: attempts
// against the injector until success, a final loss, or no injector at
// all (always a success). Retries are booked as platform requests and
// backoff is charged to the virtual clock.
func (c *Campaign) resolvePing(p *probes.Probe, r *cloud.Region, op faults.Op, cycle int,
	clock *virtualClock, st *Stats, m *campaignMetrics) bool {
	cfg := c.Cfg
	st.Attempts++
	m.attempts.Inc()
	if cfg.Faults == nil {
		return true
	}
	maxRetries := cfg.MaxRetries
	if maxRetries < 0 {
		maxRetries = 0
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			st.Attempts++
			m.attempts.Inc()
		}
		f := cfg.Faults.Ping(p.ID, r.ID, op, cycle, attempt)
		failed := f.Lost
		if !failed && f.DelayMs > cfg.TaskDeadlineMs {
			st.TimedOut++
			m.timedOut.Inc()
			failed = true
		}
		if !failed {
			return true
		}
		if attempt >= maxRetries {
			st.Lost++
			m.lost.Inc()
			return false
		}
		st.Retries++
		m.retries.Inc()
		clock.admit() // every retry is one more platform request
		clock.delay(backoffMs(cfg.BackoffBaseMs, cfg.BackoffMaxMs, attempt,
			jitterU(cfg.Seed, p.ID, r.ID, int(op), cycle, attempt)))
	}
}

// connectedProbes samples which probes answer the 4-hourly discovery
// poll this cycle, then keeps up to limit of them. With diurnal
// modulation on, the country's sweep-phase time of day scales every
// probe's availability — the same RNG draws decide connectivity either
// way, so an amplitude of zero reproduces the unmodulated campaign
// bit-for-bit.
func (c *Campaign) connectedProbes(all []*probes.Probe, cycle, limit int) []*probes.Probe {
	var connected []*probes.Probe
	for _, p := range all {
		avail := p.Availability * diurnalFactor(c.Cfg.DiurnalAmplitude, p.Country, cycle)
		if c.rngFor(p.ID, cycle).Float64() < avail {
			connected = append(connected, p)
		}
	}
	if limit <= 0 || len(connected) <= limit {
		return connected
	}
	rng := c.rngFor(all[0].Country, cycle)
	rng.Shuffle(len(connected), func(i, j int) {
		connected[i], connected[j] = connected[j], connected[i]
	})
	return connected[:limit]
}

// targetsFor selects which regions this probe measures this cycle: a
// rotating window over the same-continent regions plus the §4.3
// neighbour-continent regions for AF and SA.
func (c *Campaign) targetsFor(p *probes.Probe, cycle, probeIdx int) []*cloud.Region {
	inv := c.Sim.W.Inventory
	home := append([]*cloud.Region(nil), inv.RegionsIn(p.Continent)...)
	var neighbor []*cloud.Region
	if c.Cfg.NeighborContinentTargets {
		switch p.Continent {
		case geo.AF:
			neighbor = append(neighbor, inv.RegionsIn(geo.EU)...)
			neighbor = append(neighbor, inv.RegionsIn(geo.NA)...)
		case geo.SA:
			neighbor = append(neighbor, inv.RegionsIn(geo.NA)...)
		}
	}
	if f := c.Cfg.RegionAvailable; f != nil {
		home = filterRegions(home, f, cycle)
		neighbor = filterRegions(neighbor, f, cycle)
	}
	if len(home)+len(neighbor) == 0 {
		return nil
	}
	n := c.Cfg.TargetsPerProbe
	if n >= len(home)+len(neighbor) {
		return append(home, neighbor...)
	}
	// The probe's geographically nearest in-continent regions — and,
	// where the §4.3 neighbour targeting applies, the nearest
	// neighbour-continent regions — are measured every cycle: the
	// paper's per-probe "closest datacenter" series needs density
	// there. A rotating window covers the rest of the pool across
	// cycles.
	byDistance := func(pool []*cloud.Region) {
		sort.Slice(pool, func(i, j int) bool {
			di := geo.DistanceKm(p.Loc, pool[i].Loc)
			dj := geo.DistanceKm(p.Loc, pool[j].Loc)
			if di != dj {
				return di < dj
			}
			return pool[i].ID < pool[j].ID
		})
	}
	byDistance(home)
	byDistance(neighbor)
	alwaysHome := 3
	if alwaysHome > n {
		alwaysHome = n
	}
	if alwaysHome > len(home) {
		alwaysHome = len(home)
	}
	out := append([]*cloud.Region(nil), home[:alwaysHome]...)
	alwaysNeighbor := 2
	if alwaysNeighbor > len(neighbor) {
		alwaysNeighbor = len(neighbor)
	}
	if len(out)+alwaysNeighbor > n {
		alwaysNeighbor = n - len(out)
	}
	out = append(out, neighbor[:alwaysNeighbor]...)
	rest := append(home[alwaysHome:], neighbor[alwaysNeighbor:]...)
	if len(rest) == 0 {
		return out
	}
	// Stride through the remainder so each cycle samples a spread of
	// distances rather than one contiguous (and geographically
	// clustered) run of the sorted pool.
	rotating := n - len(out)
	if rotating <= 0 {
		return out
	}
	stride := len(rest) / rotating
	if stride < 1 {
		stride = 1
	}
	start := (cycle + probeIdx*7) % len(rest)
	for i := 0; len(out) < n; i++ {
		out = append(out, rest[(start+i*stride+i)%len(rest)])
	}
	return out
}

// filterRegions keeps the regions avail admits for this cycle — the
// scenario plane's launch gate. pool is always a fresh slice here, so
// filtering in place is safe.
func filterRegions(pool []*cloud.Region, avail func(string, int) bool, cycle int) []*cloud.Region {
	kept := pool[:0]
	for _, r := range pool {
		if avail(r.ID, cycle) {
			kept = append(kept, r)
		}
	}
	return kept
}

// diurnalFactor is the availability multiplier of a country's discovery
// poll at the virtual time of day its sweep phase lands on: a cosine
// night share scaled by the configured amplitude, so the factor spans
// [1−A, 1]. Pure in (country, cycle) — modulated campaigns replay
// bit-identically.
func diurnalFactor(amplitude float64, country string, cycle int) float64 {
	if amplitude == 0 {
		return 1
	}
	const dayMillis = 24 * 3600 * 1000
	tod := sample.VTimeOf(cycle, country) % dayMillis
	nightShare := 0.5 - 0.5*math.Cos(2*math.Pi*float64(tod)/float64(dayMillis))
	return 1 - amplitude*nightShare
}

// runTask executes a task's surviving measurements on a worker.
func (c *Campaign) runTask(tk task, results chan<- any) {
	if tk.doTCP {
		results <- c.Sim.Ping(tk.probe, tk.region, dataset.TCP, tk.cycle)
	}
	if tk.doICMP {
		results <- c.Sim.Ping(tk.probe, tk.region, dataset.ICMP, tk.cycle)
	}
	for _, tc := range tk.traces {
		results <- c.Sim.Traceroute(tk.probe, tk.region, tc)
	}
	results <- taskDone{}
}

func (c *Campaign) rngFor(key string, cycle int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{byte(cycle), byte(cycle >> 8)})
	var seed [8]byte
	for i := range seed {
		seed[i] = byte(c.Cfg.Seed >> (8 * i))
	}
	h.Write(seed[:])
	return rand.New(rand.NewSource(int64(splitmix64(h.Sum64()))))
}

// splitmix64 finalizes a hash before it seeds math/rand: related FNV
// values (same probe, consecutive cycles) otherwise produce visibly
// structured first draws from rand.NewSource, which correlated probe
// availability across cycles.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// virtualClock books measurement requests against the rate limit and
// the daily quota without sleeping.
type virtualClock struct {
	minutesPerRequest float64
	dailyQuota        int

	requests  int
	today     int
	dayNumber int
	minutes   float64
}

func newVirtualClock(requestsPerMinute float64, dailyQuota int) *virtualClock {
	return &virtualClock{
		minutesPerRequest: 1 / requestsPerMinute,
		dailyQuota:        dailyQuota,
	}
}

// admit books one request. When the daily quota is exhausted the
// campaign waits for the budget refresh at the next day boundary
// (§3.3), which the virtual clock models as a time jump.
func (v *virtualClock) admit() {
	day := int(v.minutes / (24 * 60))
	if day > v.dayNumber {
		v.dayNumber = day
		v.today = 0
	}
	if v.dailyQuota > 0 && v.today >= v.dailyQuota {
		// Jump to the next day boundary and retry there.
		v.minutes = float64(v.dayNumber+1) * 24 * 60
		v.dayNumber++
		v.today = 0
	}
	v.requests++
	v.today++
	v.minutes += v.minutesPerRequest
}

// delay charges ms of virtual wall time (retry backoff) to the clock.
func (v *virtualClock) delay(ms float64) {
	v.minutes += ms / 60000
}

// now returns the current virtual minute.
func (v *virtualClock) now() float64 { return v.minutes }

// quotaRemaining returns the requests left in the current virtual day,
// or -1 when the quota is unlimited.
func (v *virtualClock) quotaRemaining() int64 {
	if v.dailyQuota <= 0 {
		return -1
	}
	if rem := v.dailyQuota - v.today; rem > 0 {
		return int64(rem)
	}
	return 0
}

func (v *virtualClock) elapsed() time.Duration {
	return time.Duration(v.minutes * float64(time.Minute))
}

// clockState is the serializable clock for checkpoints.
type clockState struct {
	Requests  int     `json:"requests"`
	Today     int     `json:"today"`
	DayNumber int     `json:"day_number"`
	Minutes   float64 `json:"minutes"`
}

func (v *virtualClock) state() clockState {
	return clockState{Requests: v.requests, Today: v.today, DayNumber: v.dayNumber, Minutes: v.minutes}
}

func (v *virtualClock) restore(s clockState) {
	v.requests, v.today, v.dayNumber, v.minutes = s.Requests, s.Today, s.DayNumber, s.Minutes
}
