package measure

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/probes"
	"repro/internal/world"
)

var (
	testW   = world.MustBuild(world.Config{Seed: 1})
	testSim = netsim.New(testW)
	testSC  = probes.GenerateSpeedchecker(testW, probes.Config{Seed: 1, Scale: 0.01})
)

func smallConfig() Config {
	return Config{
		Seed:                     1,
		Cycles:                   1,
		ProbesPerCountry:         2,
		TargetsPerProbe:          3,
		MinProbesPerCountry:      2,
		RequestsPerMinute:        60,
		Workers:                  4,
		BothPingProtocols:        FlagOn,
		Traceroutes:              true,
		NeighborContinentTargets: true,
	}
}

// mustNew builds a campaign from a config the test knows is valid.
func mustNew(t *testing.T, cfg Config) *Campaign {
	t.Helper()
	c, err := New(testSim, testSC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCampaignCollects(t *testing.T) {
	camp := mustNew(t, smallConfig())
	store, st, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	np, nt := store.Len()
	if np == 0 || nt == 0 {
		t.Fatalf("no data collected: %d pings, %d traces", np, nt)
	}
	if st.Pings != np || st.Traceroutes != nt {
		t.Errorf("stats disagree with store: %+v vs (%d,%d)", st, np, nt)
	}
	// Both protocols → pings are an even count, half TCP half ICMP.
	tcp, icmp := dataset.TCP, dataset.ICMP
	nTCP := len(store.FilterPings(dataset.PingFilter{Protocol: &tcp}))
	nICMP := len(store.FilterPings(dataset.PingFilter{Protocol: &icmp}))
	if nTCP != nICMP || nTCP == 0 {
		t.Errorf("protocol split = %d TCP / %d ICMP", nTCP, nICMP)
	}
	// Two traceroutes per task (the 7M-vs-3.8M dataset ratio).
	if nt != nTCP*2 {
		t.Errorf("traceroutes = %d, want %d (2 per task)", nt, nTCP*2)
	}
	if st.CountriesCycled < 100 {
		t.Errorf("countries cycled = %d", st.CountriesCycled)
	}
	if st.Requests != nTCP {
		t.Errorf("requests = %d, want one per task (%d)", st.Requests, nTCP)
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c1 := mustNew(t, smallConfig())
	s1, st1, err := c1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c2 := mustNew(t, smallConfig())
	s2, st2, err := c2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st1.Requests != st2.Requests || st1.Pings != st2.Pings {
		t.Fatalf("stats differ: %+v vs %+v", st1, st2)
	}
	// Collection order varies across workers, so compare aggregates.
	n1, _ := s1.Len()
	n2, _ := s2.Len()
	if n1 != n2 {
		t.Fatalf("ping counts differ: %d vs %d", n1, n2)
	}
	// Collection order (and hence float summation order) varies across
	// workers; compare the sorted sample multisets instead.
	r1 := append([]float64(nil), rtts(s1)...)
	r2 := append([]float64(nil), rtts(s2)...)
	sort.Float64s(r1)
	sort.Float64s(r2)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("RTT multiset differs at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestMinProbeGate(t *testing.T) {
	cfg := smallConfig()
	cfg.MinProbesPerCountry = 1 << 30 // nothing qualifies
	store, st, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if np, _ := store.Len(); np != 0 || st.CountriesCycled != 0 {
		t.Errorf("gate failed: %d pings, %d countries", np, st.CountriesCycled)
	}
}

func TestNeighborContinentTargets(t *testing.T) {
	cfg := smallConfig()
	cfg.TargetsPerProbe = 200 // take the whole pool
	store, _, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// African probes must have measured EU and NA datacenters.
	af := store.FilterPings(dataset.PingFilter{VPContinent: geo.AF})
	targets := map[geo.Continent]bool{}
	for i := range af {
		targets[af[i].Target.Continent] = true
	}
	for _, want := range []geo.Continent{geo.AF, geo.EU, geo.NA} {
		if !targets[want] {
			t.Errorf("African probes never targeted %v", want)
		}
	}
	// European probes must stay in-continent.
	eu := store.FilterPings(dataset.PingFilter{VPContinent: geo.EU})
	for i := range eu {
		if eu[i].Target.Continent != geo.EU {
			t.Fatalf("EU probe measured %v", eu[i].Target.Continent)
		}
	}
	// Disabled → Africa stays in-continent.
	cfg.NeighborContinentTargets = false
	store2, _, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range store2.FilterPings(dataset.PingFilter{VPContinent: geo.AF}) {
		if r.Target.Continent != geo.AF {
			t.Fatalf("with neighbours disabled, AF probe measured %v", r.Target.Continent)
		}
	}
}

func TestVirtualClockPacing(t *testing.T) {
	cfg := smallConfig()
	cfg.RequestsPerMinute = 1
	_, st, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := time.Duration(st.Requests) * time.Minute
	if st.VirtualDuration != want {
		t.Errorf("virtual duration = %v, want %v at 1 req/min", st.VirtualDuration, want)
	}
}

func TestDailyQuotaStretchesTime(t *testing.T) {
	cfg := smallConfig()
	cfg.RequestsPerMinute = 1000 // rate limit negligible
	cfg.DailyQuota = 50
	_, st, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	days := st.Requests / cfg.DailyQuota
	if st.VirtualDuration < time.Duration(days-1)*24*time.Hour {
		t.Errorf("quota should stretch the campaign to ≈%d days, got %v", days, st.VirtualDuration)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	store, _, err := mustNew(t, smallConfig()).Run(ctx)
	if err == nil {
		t.Fatal("cancelled campaign should report an error")
	}
	if np, _ := store.Len(); np > 100 {
		t.Errorf("cancelled campaign still collected %d pings", np)
	}
}

// TestCancellationMidRunPartialStore interrupts a campaign partway
// through and checks the three contract points: the error wraps
// ctx.Err(), the records collected before the cut survive in the store,
// and every worker goroutine is joined (no leak).
func TestCancellationMidRunPartialStore(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := smallConfig()
	cfg.Cycles = 4
	// Cancel after a couple of checkpoints' worth of work: mid-run, not
	// at the start and not at the end.
	n := 0
	cfg.OnCheckpoint = func(Checkpoint) error {
		n++
		if n == 2 {
			cancel()
		}
		return nil
	}
	cfg.CheckpointEvery = 10
	store, _, err := mustNew(t, cfg).Run(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled wrap", err)
	}
	if np, _ := store.Len(); np == 0 {
		t.Error("mid-run cancellation should return the partial dataset, store is empty")
	}
	// The checkpoint flush barrier ran before the cancel, so everything
	// collected up to that point must be intact and queryable.
	if len(store.RTTs(dataset.PingFilter{})) == 0 {
		t.Error("partial store has no queryable RTTs")
	}
	// All workers and the collector must be joined: give the runtime a
	// moment, then compare goroutine counts.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after cancelled run", before, after)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative cycles", func(c *Config) { c.Cycles = -1 }},
		{"negative probes per country", func(c *Config) { c.ProbesPerCountry = -5 }},
		{"negative targets", func(c *Config) { c.TargetsPerProbe = -1 }},
		{"negative min probes", func(c *Config) { c.MinProbesPerCountry = -1 }},
		{"negative rate", func(c *Config) { c.RequestsPerMinute = -3 }},
		{"NaN rate", func(c *Config) { c.RequestsPerMinute = math.NaN() }},
		{"infinite rate", func(c *Config) { c.RequestsPerMinute = math.Inf(1) }},
		{"negative quota", func(c *Config) { c.DailyQuota = -1 }},
		{"negative workers", func(c *Config) { c.Workers = -2 }},
		{"bad flag", func(c *Config) { c.BothPingProtocols = Flag(7) }},
		{"retries below -1", func(c *Config) { c.MaxRetries = -2 }},
		{"negative deadline", func(c *Config) { c.TaskDeadlineMs = -1 }},
		{"negative backoff", func(c *Config) { c.BackoffBaseMs = -1 }},
		{"breaker below -1", func(c *Config) { c.BreakerThreshold = -3 }},
		{"negative cooldown", func(c *Config) { c.BreakerCooldown = -time.Hour }},
		{"negative checkpoint stride", func(c *Config) { c.CheckpointEvery = -1 }},
		{"resume version mismatch", func(c *Config) { c.Resume = &Checkpoint{Version: 99, Seed: c.Seed} }},
		{"resume seed mismatch", func(c *Config) { c.Resume = &Checkpoint{Version: checkpointVersion, Seed: c.Seed + 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
			if _, err := New(testSim, testSC, cfg); err == nil {
				t.Errorf("New accepted %s", tc.name)
			}
		})
	}
	// The zero config and the explicit disables are valid.
	for _, cfg := range []Config{{}, {MaxRetries: -1, BreakerThreshold: -1}, smallConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate rejected valid config: %v", err)
		}
	}
}

// TestFlagTriState pins the unset-vs-false distinction: an untouched
// config gets both protocols (the paper ran both), FlagOff really turns
// ICMP off.
func TestFlagTriState(t *testing.T) {
	if c := mustNew(t, Config{}); c.Cfg.BothPingProtocols != FlagOn {
		t.Errorf("unset flag resolved to %v, want FlagOn", c.Cfg.BothPingProtocols)
	}
	if c := mustNew(t, Config{BothPingProtocols: FlagOff}); c.Cfg.BothPingProtocols != FlagOff {
		t.Errorf("explicit FlagOff overridden to %v", c.Cfg.BothPingProtocols)
	}
	if !FlagOf(true).Enabled() || FlagOf(false).Enabled() {
		t.Error("FlagOf round trip broken")
	}
	cfg := smallConfig()
	cfg.Traceroutes = false
	cfg.BothPingProtocols = FlagOff
	store, _, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	icmp := dataset.ICMP
	if n := len(store.FilterPings(dataset.PingFilter{Protocol: &icmp})); n != 0 {
		t.Errorf("FlagOff still produced %d ICMP pings", n)
	}
}

func TestConfidentCountries(t *testing.T) {
	st := Stats{SamplesPerCountry: map[string]int{"DE": 5000, "FR": 100, "JP": 2401}}
	got := st.ConfidentCountries()
	want := map[string]bool{"DE": true, "JP": true}
	if len(got) != 2 {
		t.Fatalf("confident countries = %v", got)
	}
	for _, c := range got {
		if !want[c] {
			t.Errorf("unexpected confident country %s", c)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := mustNew(t, Config{})
	if c.Cfg.Cycles == 0 || c.Cfg.Workers == 0 || c.Cfg.RequestsPerMinute == 0 ||
		c.Cfg.TargetsPerProbe == 0 || c.Cfg.MinProbesPerCountry == 0 {
		t.Errorf("defaults not applied: %+v", c.Cfg)
	}
	if c.Cfg.BothPingProtocols != FlagOn {
		t.Errorf("BothPingProtocols default = %v, want FlagOn", c.Cfg.BothPingProtocols)
	}
	if c.Cfg.MaxRetries == 0 || c.Cfg.TaskDeadlineMs == 0 || c.Cfg.BackoffBaseMs == 0 ||
		c.Cfg.BreakerThreshold == 0 || c.Cfg.BreakerCooldown == 0 || c.Cfg.CheckpointEvery == 0 {
		t.Errorf("resilience defaults not applied: %+v", c.Cfg)
	}
	// ProbesPerCountry deliberately defaults to zero: no cap, so volume
	// follows probe density as on the real platform.
	if c.Cfg.ProbesPerCountry != 0 {
		t.Errorf("ProbesPerCountry default = %d, want uncapped", c.Cfg.ProbesPerCountry)
	}
}

func TestProbeCapRespected(t *testing.T) {
	cfg := smallConfig()
	cfg.ProbesPerCountry = 1
	cfg.Traceroutes = false
	cfg.BothPingProtocols = FlagOff
	store, _, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	perCountry := map[string]map[string]bool{}
	for i := range store.Pings {
		r := &store.Pings[i]
		if perCountry[r.VP.Country] == nil {
			perCountry[r.VP.Country] = map[string]bool{}
		}
		perCountry[r.VP.Country][r.VP.ProbeID] = true
	}
	for cc, ps := range perCountry {
		if len(ps) > cfg.Cycles*cfg.ProbesPerCountry {
			t.Errorf("%s: %d probes used, cap is %d per cycle", cc, len(ps), cfg.ProbesPerCountry)
		}
	}
}

func TestNearestRegionsAlwaysMeasured(t *testing.T) {
	cfg := smallConfig()
	cfg.Traceroutes = false
	cfg.BothPingProtocols = FlagOff
	cfg.TargetsPerProbe = 4
	store, _, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Every German probe's sample set must include the geographically
	// closest region (a Frankfurt DC).
	byProbe := map[string]map[string]bool{}
	for i := range store.Pings {
		r := &store.Pings[i]
		if r.VP.Country != "DE" {
			continue
		}
		if byProbe[r.VP.ProbeID] == nil {
			byProbe[r.VP.ProbeID] = map[string]bool{}
		}
		byProbe[r.VP.ProbeID][r.Target.Region] = true
	}
	if len(byProbe) == 0 {
		t.Skip("no German probes selected")
	}
	for probe, regions := range byProbe {
		sawNear := false
		for id := range regions {
			for _, near := range []string{"frankfurt", "berlin"} {
				if len(id) > len(near) && id[len(id)-len(near):] == near {
					sawNear = true
				}
			}
		}
		if !sawNear {
			t.Errorf("probe %s never measured a nearby German region: %v", probe, regions)
		}
	}
}

func rtts(s *dataset.Store) []float64 {
	out := make([]float64, 0, len(s.Pings))
	for i := range s.Pings {
		out = append(out, s.Pings[i].RTTms)
	}
	return out
}

func TestDiscoveryAccounting(t *testing.T) {
	cfg := smallConfig()
	cfg.Cycles = 4
	cfg.ProbesPerCountry = 0 // uncapped: discovery reflects raw availability
	cfg.Traceroutes = false
	cfg.BothPingProtocols = FlagOff
	_, st, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Discovery) != cfg.Cycles {
		t.Fatalf("discovery snapshots = %d, want %d", len(st.Discovery), cfg.Cycles)
	}
	// §3.2: roughly a quarter of the fleet answers any given poll.
	share := st.ConnectedShare(testSC.Len())
	if share < 0.18 || share > 0.33 {
		t.Errorf("connected share = %.2f, want ≈ 0.25 (29K of 115K)", share)
	}
	for i, d := range st.Discovery {
		if d.Cycle != i || d.Connected == 0 {
			t.Errorf("snapshot %d malformed: %+v", i, d)
		}
	}
	// §3.3 transience: far more probes appear at least once than appear
	// every cycle.
	if st.EverConnected == 0 {
		t.Fatal("no probes ever connected")
	}
	if st.PersistentProbes*5 > st.EverConnected {
		t.Errorf("persistent %d of %d ever-connected — Android probes should be transient",
			st.PersistentProbes, st.EverConnected)
	}
	if st.PersistentProbes == 0 {
		t.Error("some probes should persist across all cycles")
	}
	// Degenerate accessor inputs.
	if (Stats{}).ConnectedShare(100) != 0 {
		t.Error("empty stats share should be 0")
	}
	if st.ConnectedShare(0) != 0 {
		t.Error("zero fleet share should be 0")
	}
}

type failingSink struct{ after int }

func (f *failingSink) Ping(dataset.PingRecord) error {
	f.after--
	if f.after < 0 {
		return errSinkBoom
	}
	return nil
}
func (f *failingSink) Trace(dataset.TracerouteRecord) error { return nil }
func (f *failingSink) Close() error                         { return nil }

var errSinkBoom = errors.New("boom")

func TestStreamingSink(t *testing.T) {
	cfg := smallConfig()
	cfg.BothPingProtocols = FlagOff
	var pings, traces bytes.Buffer
	cfg.Sink = dataset.NewFileSink(&pings, &traces)
	store, st, err := mustNew(t, cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The store stays empty; everything went to the sink.
	if np, nt := store.Len(); np != 0 || nt != 0 {
		t.Errorf("store should be empty with a sink: %d/%d", np, nt)
	}
	gotPings, err := dataset.ReadPingsCSV(&pings)
	if err != nil {
		t.Fatal(err)
	}
	gotTraces, err := dataset.ReadTracesJSONL(&traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPings) != st.Pings || len(gotTraces) != st.Traceroutes {
		t.Errorf("streamed %d/%d records, stats say %d/%d",
			len(gotPings), len(gotTraces), st.Pings, st.Traceroutes)
	}
	if st.Pings == 0 {
		t.Error("nothing streamed")
	}
}

func TestSinkErrorSurfaces(t *testing.T) {
	cfg := smallConfig()
	cfg.Sink = &failingSink{after: 3}
	_, _, err := mustNew(t, cfg).Run(context.Background())
	if err == nil || !errors.Is(err, errSinkBoom) {
		t.Errorf("sink failure not surfaced: %v", err)
	}
}

func TestEmptySinkStreamsParse(t *testing.T) {
	// A campaign that collects nothing must still emit parseable files.
	var pings, traces bytes.Buffer
	sink := dataset.NewFileSink(&pings, &traces)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got, err := dataset.ReadPingsCSV(&pings); err != nil || len(got) != 0 {
		t.Errorf("empty ping stream: %v, %d records", err, len(got))
	}
	if got, err := dataset.ReadTracesJSONL(&traces); err != nil || len(got) != 0 {
		t.Errorf("empty trace stream: %v, %d records", err, len(got))
	}
}

func TestVirtualClockUnits(t *testing.T) {
	// One request per minute, no quota: time is linear in requests.
	v := newVirtualClock(1, 0)
	for i := 0; i < 10; i++ {
		v.admit()
	}
	if v.requests != 10 || v.elapsed() != 10*time.Minute {
		t.Errorf("clock = %d requests, %v", v.requests, v.elapsed())
	}
	// Quota of 2 per day at high rate: the third request jumps a day.
	v = newVirtualClock(1000, 2)
	v.admit()
	v.admit()
	if v.elapsed() >= time.Hour {
		t.Fatalf("pre-quota elapsed = %v", v.elapsed())
	}
	v.admit()
	if v.elapsed() < 24*time.Hour {
		t.Errorf("quota exhaustion should jump to the next day, elapsed = %v", v.elapsed())
	}
	// And the jump resets the daily budget.
	v.admit()
	if v.elapsed() >= 25*time.Hour {
		t.Errorf("second request of the new day should not jump again: %v", v.elapsed())
	}
}
