package measure

import "repro/internal/obs"

// campaignMetrics interns every instrument the engine touches once, at
// campaign start, so the hot paths (one ping record, one retry ladder
// step) cost a single atomic add each. All instruments are valid even
// without a registry (see obs: nil-registry constructors), so no call
// site branches on whether observability is enabled.
//
// Naming (DESIGN.md §10): measure_<noun>_total for counters,
// measure_<noun> for gauges, milliseconds for histograms. Labels are
// deliberately absent here — probe and country would be unbounded
// cardinality; per-country sample counts stay in Stats.
type campaignMetrics struct {
	pings, traces        *obs.Counter
	attempts, retries    *obs.Counter
	lost, timedOut       *obs.Counter
	tracesLost           *obs.Counter
	spilled, sinkRetries *obs.Counter
	breakerTrips         *obs.Counter
	quarantineSkips      *obs.Counter
	dropouts             *obs.Counter
	checkpoints          *obs.Counter
	cycleQuotaExhausted  *obs.Counter

	rtt *obs.Histogram

	// quotaRemaining is the daily budget left (-1 when unlimited);
	// checkpointAgeMin is the virtual minutes elapsed since the last
	// checkpoint barrier — the "how much would a crash lose" gauge.
	quotaRemaining   *obs.Gauge
	checkpointAgeMin *obs.Gauge
}

func newCampaignMetrics(reg *obs.Registry) *campaignMetrics {
	return &campaignMetrics{
		pings:               reg.Counter("measure_pings_total"),
		traces:              reg.Counter("measure_traceroutes_total"),
		attempts:            reg.Counter("measure_attempts_total"),
		retries:             reg.Counter("measure_retries_total"),
		lost:                reg.Counter("measure_lost_total"),
		timedOut:            reg.Counter("measure_timeouts_total"),
		tracesLost:          reg.Counter("measure_traces_lost_total"),
		spilled:             reg.Counter("measure_spilled_total"),
		sinkRetries:         reg.Counter("measure_sink_retries_total"),
		breakerTrips:        reg.Counter("measure_breaker_trips_total"),
		quarantineSkips:     reg.Counter("measure_quarantine_skips_total"),
		dropouts:            reg.Counter("measure_probe_dropouts_total"),
		checkpoints:         reg.Counter("measure_checkpoints_total"),
		cycleQuotaExhausted: reg.Counter("measure_cycle_quota_exhausted_total"),
		rtt:                 reg.Histogram("measure_rtt_ms", obs.RTTBuckets),
		quotaRemaining:      reg.Gauge("measure_quota_remaining"),
		checkpointAgeMin:    reg.Gauge("measure_checkpoint_age_virtual_minutes"),
	}
}
