package measure

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/obs"
)

// TestCampaignSpanTree runs a two-cycle campaign with a tracer on the
// context and checks the recorded span tree: one measure.campaign root
// with campaign-total attrs, and one measure.cycle child per cycle
// parented on it. It also cross-checks the obs counters against the
// campaign's own Stats, so the two accounting paths cannot drift apart
// silently.
func TestCampaignSpanTree(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallConfig()
	cfg.Cycles = 2
	cfg.Obs = reg
	camp := mustNew(t, cfg)

	tr := obs.NewTracer(0)
	ctx := obs.ContextWithTracer(context.Background(), tr)
	_, st, err := camp.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	var root obs.SpanData
	var cycles []obs.SpanData
	for _, sp := range tr.Recent() {
		switch sp.Name {
		case "measure.campaign":
			root = sp
		case "measure.cycle":
			cycles = append(cycles, sp)
		}
	}
	if root.ID == 0 {
		t.Fatal("no measure.campaign span recorded")
	}
	if root.ParentID != 0 {
		t.Errorf("campaign span has parent %d, want root", root.ParentID)
	}
	if len(cycles) != cfg.Cycles {
		t.Fatalf("got %d measure.cycle spans, want %d", len(cycles), cfg.Cycles)
	}
	for _, c := range cycles {
		if c.ParentID != root.ID {
			t.Errorf("cycle span %d parented on %d, want campaign span %d", c.ID, c.ParentID, root.ID)
		}
	}
	if got, want := root.Attrs["pings"], fmt.Sprint(st.Pings); got != want {
		t.Errorf("campaign span pings attr = %q, want %q", got, want)
	}

	// The interned instruments must agree with the campaign's Stats.
	if got := reg.Counter("measure_pings_total").Load(); got != uint64(st.Pings) {
		t.Errorf("measure_pings_total = %d, stats say %d", got, st.Pings)
	}
	if got := reg.Counter("measure_traceroutes_total").Load(); got != uint64(st.Traceroutes) {
		t.Errorf("measure_traceroutes_total = %d, stats say %d", got, st.Traceroutes)
	}
	if got := reg.Histogram("measure_rtt_ms", obs.RTTBuckets).Count(); got != uint64(st.Pings) {
		t.Errorf("measure_rtt_ms count = %d, want one observation per ping (%d)", got, st.Pings)
	}

	// Stage rollups cover both span names.
	stages := map[string]uint64{}
	for _, s := range tr.Stages() {
		stages[s.Name] = s.Count
	}
	if stages["measure.campaign"] != 1 || stages["measure.cycle"] != uint64(cfg.Cycles) {
		t.Errorf("stage rollups = %v, want campaign×1 and cycle×%d", stages, cfg.Cycles)
	}
}

// TestCampaignUninstrumented pins the zero-config path: no registry, no
// tracer, and the campaign still runs (every instrument call no-ops).
func TestCampaignUninstrumented(t *testing.T) {
	camp := mustNew(t, smallConfig())
	_, st, err := camp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Pings == 0 {
		t.Fatal("uninstrumented campaign collected nothing")
	}
}
