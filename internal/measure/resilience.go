package measure

import (
	"hash/fnv"
	"math"
)

// backoffMs returns the virtual backoff charged before retry attempt+1:
// exponential in the attempt number, capped at max, with deterministic
// jitter spreading the wait over [d/2, d). u is the jitter draw in
// [0,1).
func backoffMs(base, max float64, attempt int, u float64) float64 {
	if base <= 0 {
		return 0
	}
	d := base * math.Pow(2, float64(attempt))
	if max > 0 && d > max {
		d = max
	}
	return d/2 + d/2*u
}

// jitterU derives the deterministic jitter draw for one retry, keyed by
// the campaign seed and the measurement identity — re-running the same
// campaign replays the same backoff schedule.
func jitterU(seed int64, probe, region string, op, cycle, attempt int) float64 {
	h := fnv.New64a()
	var sb [8]byte
	for i := range sb {
		sb[i] = byte(seed >> (8 * i))
	}
	h.Write(sb[:])
	h.Write([]byte(probe))
	h.Write([]byte{0})
	h.Write([]byte(region))
	h.Write([]byte{byte(op), byte(cycle), byte(cycle >> 8), byte(attempt)})
	return float64(splitmix64(h.Sum64())>>11) / float64(1<<53)
}

// breakerEntry is one probe's circuit-breaker state. Exported fields so
// checkpoints can serialize quarantines across a restart.
type breakerEntry struct {
	// Consecutive counts lost measurements since the last success.
	Consecutive int `json:"consecutive"`
	// UntilMin, when nonzero, quarantines the probe until this virtual
	// minute.
	UntilMin float64 `json:"until_min,omitempty"`
	// Trips counts how often this probe's breaker has opened.
	Trips int `json:"trips,omitempty"`
}

// breaker is the per-probe circuit breaker: a probe that loses
// threshold measurements in a row is quarantined — no tasks — until a
// cooldown of virtual time passes, then re-admitted with a clean slate.
// It models the operational reality that hammering a dead probe burns
// API quota for nothing. All access is from the dispatch goroutine.
type breaker struct {
	threshold   int
	cooldownMin float64
	probes      map[string]*breakerEntry
}

func newBreaker(threshold int, cooldownMin float64) *breaker {
	return &breaker{threshold: threshold, cooldownMin: cooldownMin,
		probes: make(map[string]*breakerEntry)}
}

// quarantined reports whether the probe is benched at virtual minute
// now, re-admitting it first if its cooldown has expired.
func (b *breaker) quarantined(id string, now float64) bool {
	e := b.probes[id]
	if e == nil || e.UntilMin == 0 {
		return false
	}
	if now < e.UntilMin {
		return true
	}
	// Cooldown over: readmit with a fresh failure budget.
	e.UntilMin = 0
	e.Consecutive = 0
	return false
}

// onResult books one measurement outcome and reports whether this
// failure tripped the breaker.
func (b *breaker) onResult(id string, ok bool, now float64) (tripped bool) {
	if b.threshold <= 0 {
		return false
	}
	e := b.probes[id]
	if ok {
		if e != nil {
			e.Consecutive = 0
		}
		return false
	}
	if e == nil {
		e = &breakerEntry{}
		b.probes[id] = e
	}
	e.Consecutive++
	if e.Consecutive < b.threshold {
		return false
	}
	e.Consecutive = 0
	e.UntilMin = now + b.cooldownMin
	e.Trips++
	return true
}

// snapshot deep-copies the breaker state for a checkpoint.
func (b *breaker) snapshot() map[string]breakerEntry {
	if len(b.probes) == 0 {
		return nil
	}
	out := make(map[string]breakerEntry, len(b.probes))
	for id, e := range b.probes {
		out[id] = *e
	}
	return out
}

// restore loads checkpointed breaker state.
func (b *breaker) restore(m map[string]breakerEntry) {
	for id, e := range m {
		cp := e
		b.probes[id] = &cp
	}
}
