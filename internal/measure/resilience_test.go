package measure

import (
	"reflect"
	"testing"
)

// TestBreakerTable drives the circuit breaker through scripted outcome
// sequences and checks quarantine-after-K and cooldown re-admission.
func TestBreakerTable(t *testing.T) {
	type step struct {
		ok       bool    // measurement outcome to book
		at       float64 // virtual minute of the outcome
		wantTrip bool    // onResult should report a trip
		checkAt  float64 // minute to query quarantined at afterwards
		wantQuar bool    // expected quarantined answer
	}
	cases := []struct {
		name      string
		threshold int
		cooldown  float64
		steps     []step
	}{
		{
			name: "trips after K consecutive failures", threshold: 3, cooldown: 60,
			steps: []step{
				{ok: false, at: 0, checkAt: 0, wantQuar: false},
				{ok: false, at: 1, checkAt: 1, wantQuar: false},
				{ok: false, at: 2, wantTrip: true, checkAt: 2, wantQuar: true},
			},
		},
		{
			name: "success resets the failure budget", threshold: 3, cooldown: 60,
			steps: []step{
				{ok: false, at: 0},
				{ok: false, at: 1},
				{ok: true, at: 2}, // streak broken
				{ok: false, at: 3},
				{ok: false, at: 4, checkAt: 4, wantQuar: false},
				{ok: false, at: 5, wantTrip: true, checkAt: 5, wantQuar: true},
			},
		},
		{
			name: "cooldown readmits with a fresh budget", threshold: 2, cooldown: 30,
			steps: []step{
				{ok: false, at: 0},
				{ok: false, at: 1, wantTrip: true, checkAt: 10, wantQuar: true},
				// Still benched one minute before the cooldown ends...
				{ok: true, at: 30, checkAt: 30, wantQuar: true},
				// ...readmitted once the cooldown has passed (the check
				// itself re-admits, as the dispatcher's gate does)...
				{ok: true, at: 31, checkAt: 31, wantQuar: false},
				// ...and the budget is fresh: one failure does not
				// re-trip, the second does.
				{ok: false, at: 32, checkAt: 32, wantQuar: false},
				{ok: false, at: 33, wantTrip: true, checkAt: 33, wantQuar: true},
			},
		},
		{
			name: "threshold -1 disables the breaker", threshold: -1, cooldown: 60,
			steps: []step{
				{ok: false, at: 0},
				{ok: false, at: 1},
				{ok: false, at: 2},
				{ok: false, at: 3, checkAt: 3, wantQuar: false},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := newBreaker(tc.threshold, tc.cooldown)
			for i, s := range tc.steps {
				if got := b.onResult("p", s.ok, s.at); got != s.wantTrip {
					t.Fatalf("step %d: tripped = %v, want %v", i, got, s.wantTrip)
				}
				if s.checkAt != 0 || s.wantQuar {
					if got := b.quarantined("p", s.checkAt); got != s.wantQuar {
						t.Fatalf("step %d: quarantined(%v) = %v, want %v", i, s.checkAt, got, s.wantQuar)
					}
				}
			}
		})
	}
}

// TestBreakerIndependentProbes: one probe's failures never bench
// another.
func TestBreakerIndependentProbes(t *testing.T) {
	b := newBreaker(2, 60)
	b.onResult("bad", false, 0)
	if b.onResult("bad", false, 1) != true {
		t.Fatal("bad probe did not trip")
	}
	if b.quarantined("good", 1) {
		t.Error("untouched probe quarantined")
	}
	if !b.quarantined("bad", 1) {
		t.Error("tripped probe not quarantined")
	}
}

// TestBreakerSnapshotRestore: quarantine state survives a serialize/
// restore round trip, including trips-so-far.
func TestBreakerSnapshotRestore(t *testing.T) {
	b := newBreaker(2, 30)
	b.onResult("p1", false, 0)
	b.onResult("p1", false, 1) // trips, benched until 31
	b.onResult("p2", false, 5) // one failure, no trip
	snap := b.snapshot()

	b2 := newBreaker(2, 30)
	b2.restore(snap)
	if !b2.quarantined("p1", 10) {
		t.Error("restored breaker lost p1's quarantine")
	}
	if b2.quarantined("p1", 31) {
		t.Error("restored breaker did not honour cooldown expiry")
	}
	if b2.onResult("p2", false, 6) != true {
		t.Error("restored breaker lost p2's failure streak")
	}
	if !reflect.DeepEqual(snap["p1"], breakerEntry{UntilMin: 31, Trips: 1}) {
		t.Errorf("snapshot entry = %+v", snap["p1"])
	}
	// Mutating the restored breaker must not touch the snapshot.
	b2.onResult("p1", false, 40)
	if snap["p1"].Consecutive != 0 {
		t.Error("snapshot aliases live state")
	}
	if newBreaker(2, 30).snapshot() != nil {
		t.Error("empty breaker should snapshot to nil")
	}
}

// TestJitterDeterministic pins the jitter contract: the same (seed,
// identity) replays the same draw, different identities and seeds
// decorrelate, and every draw is in [0,1).
func TestJitterDeterministic(t *testing.T) {
	var first []float64
	for attempt := 0; attempt < 5; attempt++ {
		u := jitterU(42, "probe-1", "region-a", 0, 3, attempt)
		if u < 0 || u >= 1 {
			t.Fatalf("jitter draw %v outside [0,1)", u)
		}
		first = append(first, u)
	}
	for attempt := 0; attempt < 5; attempt++ {
		if got := jitterU(42, "probe-1", "region-a", 0, 3, attempt); got != first[attempt] {
			t.Fatalf("replayed jitter differs at attempt %d: %v vs %v", attempt, got, first[attempt])
		}
	}
	distinct := map[float64]bool{}
	for _, u := range first {
		distinct[u] = true
	}
	if len(distinct) < 4 {
		t.Errorf("attempt draws not spread: %v", first)
	}
	if jitterU(43, "probe-1", "region-a", 0, 3, 0) == first[0] {
		t.Error("seed does not decorrelate jitter")
	}
	if jitterU(42, "probe-2", "region-a", 0, 3, 0) == first[0] {
		t.Error("probe does not decorrelate jitter")
	}
	if jitterU(42, "probe-1", "region-a", 1, 3, 0) == first[0] {
		t.Error("op does not decorrelate jitter")
	}
}

// TestBackoffSchedule pins the backoff shape: exponential growth, the
// cap, jitter landing in [d/2, d), and the deterministic sequence under
// a fixed seed.
func TestBackoffSchedule(t *testing.T) {
	// Deterministic endpoints of the jitter range.
	if got := backoffMs(100, 60000, 0, 0); got != 50 {
		t.Errorf("attempt 0 with u=0 → %v, want 50", got)
	}
	if got := backoffMs(100, 60000, 3, 0); got != 400 {
		t.Errorf("attempt 3 with u=0 → %v, want 400 (100·2³/2)", got)
	}
	// The cap clamps deep attempts.
	if got := backoffMs(100, 1000, 10, 0.999); got >= 1000 {
		t.Errorf("capped backoff = %v, want < 1000", got)
	}
	// Zero base disables backoff entirely.
	if got := backoffMs(0, 60000, 5, 0.5); got != 0 {
		t.Errorf("zero base → %v, want 0", got)
	}
	// Jitter stays inside [d/2, d).
	for attempt := 0; attempt < 6; attempt++ {
		d := 100.0 * float64(int(1)<<attempt)
		for _, u := range []float64{0, 0.25, 0.5, 0.999} {
			got := backoffMs(100, 1<<30, attempt, u)
			if got < d/2 || got >= d {
				t.Fatalf("attempt %d u=%v: backoff %v outside [%v, %v)", attempt, u, got, d/2, d)
			}
		}
	}
	// Fixed seed → fixed full schedule (jitter included).
	var a, b []float64
	for attempt := 0; attempt < 4; attempt++ {
		a = append(a, backoffMs(100, 60000, attempt, jitterU(7, "p", "r", 0, 1, attempt)))
		b = append(b, backoffMs(100, 60000, attempt, jitterU(7, "p", "r", 0, 1, attempt)))
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("backoff schedule not reproducible: %v vs %v", a, b)
	}
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1]/2 {
			t.Errorf("schedule not growing roughly exponentially: %v", a)
		}
	}
}
