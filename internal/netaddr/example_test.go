package netaddr_test

import (
	"fmt"

	"repro/internal/netaddr"
)

func ExampleTrie() {
	var asDB netaddr.Trie[string]
	asDB.Insert(netaddr.MustParsePrefix("62.115.0.0/16"), "AS1299 Telia")
	asDB.Insert(netaddr.MustParsePrefix("62.0.0.0/8"), "larger block")

	owner, plen, _ := asDB.Lookup(netaddr.MustParseIP("62.115.44.1"))
	fmt.Printf("%s (/%d)\n", owner, plen)
	// Output: AS1299 Telia (/16)
}

func ExampleAllocator() {
	pool := netaddr.NewAllocator(netaddr.MustParsePrefix("10.0.0.0/8"))
	a, _ := pool.Allocate(16)
	b, _ := pool.Allocate(16)
	fmt.Println(a, b, a.Overlaps(b))
	// Output: 10.0.0.0/16 10.1.0.0/16 false
}

func ExampleIP_IsPrivate() {
	fmt.Println(netaddr.MustParseIP("192.168.1.1").IsPrivate())
	fmt.Println(netaddr.MustParseIP("100.64.0.1").IsCGN())
	fmt.Println(netaddr.MustParseIP("8.8.8.8").IsPrivate())
	// Output:
	// true
	// true
	// false
}
