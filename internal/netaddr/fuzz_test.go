package netaddr

import "testing"

// FuzzParseIP: parser totality plus round-trip on accepted input.
func FuzzParseIP(f *testing.F) {
	f.Add("1.2.3.4")
	f.Add("255.255.255.255")
	f.Add("")
	f.Add("1.2.3.4.5")
	f.Fuzz(func(t *testing.T, s string) {
		ip, err := ParseIP(s)
		if err != nil {
			return
		}
		back, err := ParseIP(ip.String())
		if err != nil || back != ip {
			t.Fatalf("round trip broke for %q", s)
		}
	})
}

// FuzzParsePrefix: same for CIDR notation.
func FuzzParsePrefix(f *testing.F) {
	f.Add("10.0.0.0/8")
	f.Add("0.0.0.0/0")
	f.Add("1.2.3.4/32")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		back, err := ParsePrefix(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip broke for %q", s)
		}
		if !p.Contains(p.Addr) {
			t.Fatalf("prefix %v does not contain its own base", p)
		}
	})
}
