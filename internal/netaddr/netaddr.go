// Package netaddr provides the IPv4 address machinery the study's
// traceroute-processing pipeline is built on: address and prefix values,
// a deterministic prefix allocator used when synthesizing the Internet,
// and a longest-prefix-match radix trie that plays the role PyASN plays
// in the paper (§3.3, "Processing Traceroutes").
package netaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address held as a big-endian 32-bit integer. The zero
// value is 0.0.0.0.
type IP uint32

// MustParseIP parses a dotted-quad string and panics on error. Intended
// for constants and tests.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: bad IPv4 %q", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: bad IPv4 octet %q in %q", p, s)
		}
		v = v<<8 | uint32(n)
	}
	return IP(v), nil
}

// String formats the address as a dotted quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// IsPrivate reports whether the address falls in the RFC 1918 private
// ranges or the RFC 6598 CGN range. Home-router first hops in the study
// are identified through this predicate (§5).
func (ip IP) IsPrivate() bool {
	return privateTen.Contains(ip) ||
		private172.Contains(ip) ||
		private192.Contains(ip) ||
		cgn100.Contains(ip)
}

// IsCGN reports whether the address falls in the RFC 6598 carrier-grade
// NAT shared range 100.64.0.0/10.
func (ip IP) IsCGN() bool { return cgn100.Contains(ip) }

var (
	privateTen = MustParsePrefix("10.0.0.0/8")
	private172 = MustParsePrefix("172.16.0.0/12")
	private192 = MustParsePrefix("192.168.0.0/16")
	cgn100     = MustParsePrefix("100.64.0.0/10")
)

// Prefix is an IPv4 CIDR block. Bits beyond the prefix length are zero
// in a normalized Prefix; use Normalize or the parsers to ensure that.
type Prefix struct {
	Addr IP
	Len  int // 0..32
}

// MustParsePrefix parses CIDR notation and panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/len" CIDR notation. The returned prefix is
// normalized (host bits cleared).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: missing / in prefix %q", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	n, err := strconv.Atoi(s[slash+1:])
	if err != nil || n < 0 || n > 32 {
		return Prefix{}, fmt.Errorf("netaddr: bad prefix length in %q", s)
	}
	return Prefix{Addr: ip, Len: n}.Normalize(), nil
}

// Normalize returns the prefix with host bits cleared.
func (p Prefix) Normalize() Prefix {
	return Prefix{Addr: p.Addr & p.mask(), Len: p.Len}
}

func (p Prefix) mask() IP {
	if p.Len == 0 {
		return 0
	}
	return IP(^uint32(0) << (32 - p.Len))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	return ip&p.mask() == p.Addr&p.mask()
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.Addr) || q.Contains(p.Addr)
}

// NumAddresses returns the number of addresses covered by the prefix.
func (p Prefix) NumAddresses() uint64 { return 1 << (32 - p.Len) }

// Nth returns the i-th address in the prefix. It panics if i is out of
// range.
func (p Prefix) Nth(i uint64) IP {
	if i >= p.NumAddresses() {
		panic(fmt.Sprintf("netaddr: address index %d out of range for %v", i, p))
	}
	return p.Addr&p.mask() + IP(i)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Len) }

// ErrExhausted is returned by Allocator when the pool has no room left.
var ErrExhausted = errors.New("netaddr: allocation pool exhausted")

// Allocator hands out non-overlapping sub-prefixes of a pool in
// deterministic order. It is used when synthesizing the Internet to give
// every AS a distinct address block, so that IP→ASN resolution is exact.
// Allocator is not safe for concurrent use.
type Allocator struct {
	pool Prefix
	next uint64 // next free address offset within pool
}

// NewAllocator returns an allocator over the given pool.
func NewAllocator(pool Prefix) *Allocator {
	return &Allocator{pool: pool.Normalize()}
}

// Allocate returns the next free prefix of the requested length,
// aligned to its natural boundary.
func (a *Allocator) Allocate(length int) (Prefix, error) {
	if length < a.pool.Len || length > 32 {
		return Prefix{}, fmt.Errorf("netaddr: cannot allocate /%d from %v", length, a.pool)
	}
	size := uint64(1) << (32 - length)
	// Align the cursor up to the block size.
	start := (a.next + size - 1) / size * size
	if start+size > a.pool.NumAddresses() {
		return Prefix{}, ErrExhausted
	}
	a.next = start + size
	return Prefix{Addr: a.pool.Addr + IP(start), Len: length}, nil
}

// Remaining returns the number of unallocated addresses in the pool.
func (a *Allocator) Remaining() uint64 { return a.pool.NumAddresses() - a.next }
