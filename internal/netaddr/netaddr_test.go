package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseIPRoundTrip(t *testing.T) {
	for _, s := range []string{"0.0.0.0", "255.255.255.255", "10.1.2.3", "192.168.0.1", "100.64.0.1"} {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("ParseIP(%q): %v", s, err)
		}
		if ip.String() != s {
			t.Errorf("round trip %q -> %q", s, ip.String())
		}
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "-1.0.0.0", "a.b.c.d", "01.2.3.4", "1..2.3"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) should fail", s)
		}
	}
}

func TestIPRoundTripQuick(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPrivate(t *testing.T) {
	cases := []struct {
		ip      string
		private bool
		cgn     bool
	}{
		{"10.0.0.1", true, false},
		{"10.255.255.255", true, false},
		{"172.16.0.1", true, false},
		{"172.31.255.1", true, false},
		{"172.32.0.1", false, false},
		{"192.168.1.1", true, false},
		{"192.169.0.1", false, false},
		{"100.64.0.1", true, true},
		{"100.127.255.255", true, true},
		{"100.128.0.0", false, false},
		{"8.8.8.8", false, false},
	}
	for _, c := range cases {
		ip := MustParseIP(c.ip)
		if got := ip.IsPrivate(); got != c.private {
			t.Errorf("IsPrivate(%s) = %v, want %v", c.ip, got, c.private)
		}
		if got := ip.IsCGN(); got != c.cgn {
			t.Errorf("IsCGN(%s) = %v, want %v", c.ip, got, c.cgn)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/8")
	if p.Addr != MustParseIP("10.0.0.0") || p.Len != 8 {
		t.Errorf("normalize failed: %v", p)
	}
	if p.String() != "10.0.0.0/8" {
		t.Errorf("String = %q", p.String())
	}
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "x/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", s)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if !p.Contains(MustParseIP("192.0.2.255")) {
		t.Error("should contain last address")
	}
	if p.Contains(MustParseIP("192.0.3.0")) {
		t.Error("should not contain next block")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseIP("255.255.255.255")) {
		t.Error("/0 should contain everything")
	}
}

func TestPrefixNth(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/30")
	if p.NumAddresses() != 4 {
		t.Fatalf("NumAddresses = %d", p.NumAddresses())
	}
	if got := p.Nth(3); got != MustParseIP("10.0.0.3") {
		t.Errorf("Nth(3) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range should panic")
		}
	}()
	p.Nth(4)
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes should not overlap")
	}
}

func TestAllocator(t *testing.T) {
	a := NewAllocator(MustParsePrefix("10.0.0.0/8"))
	p1, err := a.Allocate(16)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Allocate(16)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Overlaps(p2) {
		t.Errorf("allocations overlap: %v %v", p1, p2)
	}
	if p1.String() != "10.0.0.0/16" || p2.String() != "10.1.0.0/16" {
		t.Errorf("unexpected allocations: %v %v", p1, p2)
	}
	// Allocation alignment: a /24 after the /16s starts at the next /24.
	p3, err := a.Allocate(24)
	if err != nil {
		t.Fatal(err)
	}
	if p3.String() != "10.2.0.0/24" {
		t.Errorf("p3 = %v", p3)
	}
	// A /16 must skip ahead to alignment, not overlap the /24.
	p4, err := a.Allocate(16)
	if err != nil {
		t.Fatal(err)
	}
	if p4.Overlaps(p3) {
		t.Errorf("p4 %v overlaps p3 %v", p4, p3)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(MustParsePrefix("192.0.2.0/24"))
	if _, err := a.Allocate(25); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Allocate(25); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Allocate(25); err != ErrExhausted {
		t.Errorf("want ErrExhausted, got %v", err)
	}
	if a.Remaining() != 0 {
		t.Errorf("Remaining = %d", a.Remaining())
	}
	if _, err := a.Allocate(4); err == nil {
		t.Error("allocating shorter than pool should fail")
	}
}

func TestAllocatorNonOverlapProperty(t *testing.T) {
	a := NewAllocator(MustParsePrefix("10.0.0.0/8"))
	lengths := []int{16, 24, 12, 20, 24, 16, 28, 10}
	var got []Prefix
	for _, l := range lengths {
		p, err := a.Allocate(l)
		if err == ErrExhausted {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
	}
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if got[i].Overlaps(got[j]) {
				t.Errorf("allocations %v and %v overlap", got[i], got[j])
			}
		}
	}
}

func TestTrieLongestMatch(t *testing.T) {
	var tr Trie[string]
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "big")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "mid")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "small")

	cases := []struct {
		ip   string
		want string
		plen int
	}{
		{"10.1.2.3", "small", 24},
		{"10.1.3.1", "mid", 16},
		{"10.2.0.1", "big", 8},
	}
	for _, c := range cases {
		v, plen, ok := tr.Lookup(MustParseIP(c.ip))
		if !ok || v != c.want || plen != c.plen {
			t.Errorf("Lookup(%s) = (%q,%d,%v), want (%q,%d,true)", c.ip, v, plen, ok, c.want, c.plen)
		}
	}
	if _, _, ok := tr.Lookup(MustParseIP("11.0.0.1")); ok {
		t.Error("lookup outside all prefixes should miss")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie[int]
	tr.Insert(MustParsePrefix("0.0.0.0/0"), 99)
	v, plen, ok := tr.Lookup(MustParseIP("203.0.113.9"))
	if !ok || v != 99 || plen != 0 {
		t.Errorf("default route lookup = (%d,%d,%v)", v, plen, ok)
	}
}

func TestTrieReplace(t *testing.T) {
	var tr Trie[int]
	p := MustParsePrefix("10.0.0.0/8")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d", tr.Len())
	}
	v, _, _ := tr.Lookup(MustParseIP("10.0.0.1"))
	if v != 2 {
		t.Errorf("value after replace = %d", v)
	}
}

func TestTrieEmpty(t *testing.T) {
	var tr Trie[int]
	if _, _, ok := tr.Lookup(MustParseIP("1.2.3.4")); ok {
		t.Error("empty trie lookup should miss")
	}
	if tr.Len() != 0 {
		t.Errorf("empty trie Len = %d", tr.Len())
	}
	tr.Walk(func(Prefix, int) bool { t.Error("walk on empty trie visited a node"); return true })
}

func TestTrieWalkOrder(t *testing.T) {
	var tr Trie[string]
	prefixes := []string{"10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "0.0.0.0/0"}
	for _, s := range prefixes {
		tr.Insert(MustParsePrefix(s), s)
	}
	var visited []string
	tr.Walk(func(p Prefix, v string) bool {
		visited = append(visited, v)
		return true
	})
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16"}
	if len(visited) != len(want) {
		t.Fatalf("visited %d prefixes, want %d", len(visited), len(want))
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Errorf("walk[%d] = %s, want %s", i, visited[i], want[i])
		}
	}
	// Early stop.
	count := 0
	tr.Walk(func(Prefix, string) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early-stop walk visited %d", count)
	}
}

// TestTrieMatchesLinearScan is the property test from DESIGN.md: for
// random address/prefix sets the trie must agree with a brute-force
// longest-prefix scan.
func TestTrieMatchesLinearScan(t *testing.T) {
	type entry struct {
		p Prefix
		v int
	}
	build := func(seeds []uint32) ([]entry, *Trie[int]) {
		var entries []entry
		tr := &Trie[int]{}
		for i, s := range seeds {
			p := Prefix{Addr: IP(s), Len: int(s % 33)}.Normalize()
			entries = append(entries, entry{p, i})
			tr.Insert(p, i)
		}
		return entries, tr
	}
	linear := func(entries []entry, ip IP) (int, int, bool) {
		best, bestLen, ok := 0, -1, false
		for _, e := range entries {
			if e.p.Contains(ip) && e.p.Len > bestLen {
				best, bestLen, ok = e.v, e.p.Len, true
			}
		}
		return best, bestLen, ok
	}
	f := func(seeds []uint32, probes []uint32) bool {
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		entries, tr := build(seeds)
		// Deduplicate: later Insert replaces earlier same-prefix entries,
		// so the linear model must keep only the last value per prefix.
		lastByPrefix := map[Prefix]int{}
		for _, e := range entries {
			lastByPrefix[e.p] = e.v
		}
		var dedup []entry
		for p, v := range lastByPrefix {
			dedup = append(dedup, entry{p, v})
		}
		for _, pr := range probes {
			ip := IP(pr)
			wv, wl, wok := linear(dedup, ip)
			gv, gl, gok := tr.Lookup(ip)
			if wok != gok || (wok && (wv != gv || wl != gl)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
