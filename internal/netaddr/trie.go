package netaddr

// Trie is a binary radix trie mapping prefixes to values, answering
// longest-prefix-match lookups. It is the in-process equivalent of the
// PyASN IP→ASN database used in the paper's traceroute pipeline.
//
// The zero value is an empty trie ready for use. Trie is safe for
// concurrent readers once all inserts have completed.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	value V
	set   bool
}

// Insert associates value with the prefix, replacing any existing value
// at exactly that prefix.
func (t *Trie[V]) Insert(p Prefix, value V) {
	p = p.Normalize()
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for i := 0; i < p.Len; i++ {
		bit := (p.Addr >> (31 - i)) & 1
		if n.child[bit] == nil {
			n.child[bit] = &trieNode[V]{}
		}
		n = n.child[bit]
	}
	if !n.set {
		t.size++
	}
	n.value = value
	n.set = true
}

// Lookup returns the value of the longest prefix containing ip and the
// length of that prefix. ok is false when no inserted prefix covers ip.
func (t *Trie[V]) Lookup(ip IP) (value V, prefixLen int, ok bool) {
	n := t.root
	if n == nil {
		return value, 0, false
	}
	if n.set {
		value, prefixLen, ok = n.value, 0, true
	}
	for i := 0; i < 32 && n != nil; i++ {
		bit := (ip >> (31 - i)) & 1
		n = n.child[bit]
		if n != nil && n.set {
			value, prefixLen, ok = n.value, i+1, true
		}
	}
	return value, prefixLen, ok
}

// Len returns the number of distinct prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored prefix/value pair in address order. The walk
// stops early if fn returns false.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	var walk func(n *trieNode[V], addr IP, depth int) bool
	walk = func(n *trieNode[V], addr IP, depth int) bool {
		if n == nil {
			return true
		}
		if n.set && !fn(Prefix{Addr: addr, Len: depth}, n.value) {
			return false
		}
		if !walk(n.child[0], addr, depth+1) {
			return false
		}
		return walk(n.child[1], addr|1<<(31-depth), depth+1)
	}
	walk(t.root, 0, 0)
}
