package netsim

import (
	"fmt"
	"sort"
)

// CableCut is a longitudinal data-plane event: starting at FromCycle, a
// submarine cable serving the Src countries is cut and every
// measurement from a Src probe towards a foreign region pays ExtraRTTms
// of detour. Dst, when non-empty, restricts the affected destinations
// to those region countries; empty means every foreign destination (a
// cut on the country's main international path). The extra is additive
// and applied after all random draws, so the un-cut portion of the
// timeline is bit-identical with or without the event.
type CableCut struct {
	FromCycle  int
	Src        map[string]bool // affected probe countries
	Dst        map[string]bool // affected region countries (empty = all foreign)
	ExtraRTTms float64
}

// affects reports whether the cut applies to a measurement.
func (c CableCut) affects(srcCountry, dstCountry string, campaignCycle int) bool {
	if campaignCycle < c.FromCycle || !c.Src[srcCountry] || srcCountry == dstCountry {
		return false
	}
	return len(c.Dst) == 0 || c.Dst[dstCountry]
}

// Events is the set of timeline events a simulator applies to its data
// plane. Nil means no events.
type Events struct {
	Cuts []CableCut
}

// ExtraRTT returns the additive RTT penalty for one measurement on the
// (normalized) campaign cycle.
func (e *Events) ExtraRTT(srcCountry, dstCountry string, campaignCycle int) float64 {
	if e == nil {
		return 0
	}
	var extra float64
	for _, c := range e.Cuts {
		if c.affects(srcCountry, dstCountry, campaignCycle) {
			extra += c.ExtraRTTms
		}
	}
	return extra
}

// Scenario is a named, seeded, reproducible event schedule: data-plane
// events for the simulator plus control-plane region availability for
// the campaign engine.
type Scenario struct {
	Name string
	// Events is applied to the simulator's data plane.
	Events *Events
	// RegionLaunches maps region ID → the first campaign cycle the
	// region accepts measurements. Regions not listed exist from cycle
	// 0.
	RegionLaunches map[string]int
	// LaunchProvider, for the region-launch scenario, names the
	// provider whose regions launch late (every RegionLaunches key
	// belongs to it).
	LaunchProvider string
}

// RegionAvailable reports whether a region accepts measurements on the
// given campaign cycle.
func (sc *Scenario) RegionAvailable(regionID string, campaignCycle int) bool {
	if sc == nil {
		return true
	}
	from, ok := sc.RegionLaunches[regionID]
	return !ok || campaignCycle >= from
}

// Scenario names.
const (
	// ScenarioCableCut cuts the Fig. 6a African countries off their
	// international paths at the campaign midpoint: every measurement
	// from those countries towards a foreign region gains 45 ms.
	ScenarioCableCut = "cable-cut"
	// ScenarioRegionLaunch holds back every DigitalOcean region until
	// the campaign midpoint, modelling a provider launching a new
	// footprint mid-study: (country, DO) pairs appear in the store only
	// from that cycle on.
	ScenarioRegionLaunch = "region-launch"
)

// cableCutCountries is the Fig. 6a country list — the African vantage
// points the paper studies for inter-continental latency.
var cableCutCountries = []string{"DZ", "EG", "ET", "KE", "MA", "SN", "TN", "ZA"}

// ScenarioNames lists the built-in scenarios in a stable order.
func ScenarioNames() []string {
	return []string{ScenarioCableCut, ScenarioRegionLaunch}
}

// ScenarioProfile resolves a scenario name for a campaign of the given
// cycle count. Events fire at the campaign midpoint (cycle
// max(1, cycles/2)), so every scenario has both a pre-event and a
// post-event window. The empty string and "none" resolve to nil.
func ScenarioProfile(name string, cycles int, regionIDs []string) (*Scenario, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	at := cycles / 2
	if at < 1 {
		at = 1
	}
	switch name {
	case ScenarioCableCut:
		src := make(map[string]bool, len(cableCutCountries))
		for _, c := range cableCutCountries {
			src[c] = true
		}
		return &Scenario{
			Name:   name,
			Events: &Events{Cuts: []CableCut{{FromCycle: at, Src: src, ExtraRTTms: 45}}},
		}, nil
	case ScenarioRegionLaunch:
		const provider = "do"
		launches := map[string]int{}
		for _, id := range regionIDs {
			if len(id) > len(provider) && id[:len(provider)+1] == provider+"-" {
				launches[id] = at
			}
		}
		if len(launches) == 0 {
			return nil, fmt.Errorf("netsim: scenario %q found no regions to launch", name)
		}
		return &Scenario{Name: name, RegionLaunches: launches, LaunchProvider: "DO"}, nil
	default:
		names := ScenarioNames()
		sort.Strings(names)
		return nil, fmt.Errorf("netsim: unknown scenario %q (have %v)", name, names)
	}
}
