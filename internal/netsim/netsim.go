// Package netsim emulates the data plane of the synthetic Internet: it
// turns a <probe, cloud region> pair into the TCP ping RTTs and ICMP
// traceroutes the measurement campaign records.
//
// The latency model composes, in order: the wireless (or wired)
// last-mile, the serving ISP's intra-country aggregation, the AS-level
// transit path with geography-aware waypoints and per-region
// path-inflation factors, and finally the cloud segment — which rides
// the provider's private WAN at low inflation and low jitter when the
// interconnection is direct or private, and the public Internet
// otherwise. That composition is what reproduces every latency shape in
// the paper: distance dominates (§4.1), wireless adds a 2-3× last-mile
// penalty over wired (§4.2, §5), and direct peering tames the tails on
// long under-provisioned routes while barely moving the median in
// Europe (§6.2).
//
// All sampling is deterministic: each measurement derives its RNG from
// a hash of (world seed, probe, region, protocol, cycle), so campaigns
// are reproducible and safe to run from many goroutines.
package netsim

import (
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/asn"
	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/probes"
	"repro/internal/sample"
	"repro/internal/world"
)

// FibreKmPerMsRTT converts fibre distance to round-trip milliseconds:
// light in fibre covers ≈200 km per one-way millisecond, i.e. 100 km
// per RTT millisecond.
const FibreKmPerMsRTT = 100.0

// Simulator evaluates measurements over a built world. It is safe for
// concurrent use.
type Simulator struct {
	W        *world.World
	LastMile lastmile.Model

	// UnresponsiveHopProb is the chance a mid-path router ignores the
	// traceroute probe (default 0.08).
	UnresponsiveHopProb float64
	// CGNCellProb is the fraction of cellular probes behind a
	// carrier-grade NAT whose first hop shows a 100.64/10 address —
	// the misclassification caveat of §5 (default 0.08).
	CGNCellProb float64
	// PublicRouterWiFiProb is the fraction of home probes whose router
	// answers with a public address, hiding the home segment (default
	// 0.05).
	PublicRouterWiFiProb float64
	// DisablePrivateWAN is an ablation switch: cloud segments always
	// ride public-Internet inflation and jitter, even behind direct
	// peering — isolating what the providers' private backbones buy.
	DisablePrivateWAN bool
	// Faults, when set, injects data-plane corruption: RTT outliers and
	// truncated traceroutes with extra missing hops. Fault draws hash
	// their own keys and never consume this simulator's RNG stream, so
	// the un-faulted samples are bit-identical with Faults nil or set.
	Faults faults.Injector
	// Events, when set, applies timeline events (cable cuts) to the
	// data plane. Event penalties are additive and drawn from no RNG,
	// so unaffected measurements are bit-identical with Events nil or
	// set.
	Events *Events
}

// New returns a simulator with the paper-calibrated defaults.
func New(w *world.World) *Simulator {
	return &Simulator{
		W:                    w,
		LastMile:             lastmile.DefaultModel(),
		UnresponsiveHopProb:  0.08,
		CGNCellProb:          0.08,
		PublicRouterWiFiProb: 0.05,
	}
}

// rngFor derives the deterministic per-measurement RNG.
func (s *Simulator) rngFor(probeID, regionID string, proto dataset.Protocol, cycle int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(probeID))
	h.Write([]byte{0})
	h.Write([]byte(regionID))
	h.Write([]byte{byte(proto), byte(cycle), byte(cycle >> 8), byte(cycle >> 16)})
	var seedBytes [8]byte
	for i := range seedBytes {
		seedBytes[i] = byte(s.W.Config.Seed >> (8 * i))
	}
	h.Write(seedBytes[:])
	return rand.New(rand.NewSource(int64(splitmix64(h.Sum64()))))
}

// splitmix64 finalizes the hash before seeding math/rand; without it,
// related hash values (same pair, consecutive cycles) yield visibly
// structured first draws, which would correlate jitter across cycles.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// segment is one wired stretch of the path with its owner AS.
type segment struct {
	from, to     geo.Point
	fromC, toC   string // country codes for inflation lookup
	owner        asn.Number
	privateWAN   bool
	routersAtEnd int // routers the owner answers with at the end of the segment
}

// plan is the full forwarding plan for one <probe, region> pair.
type plan struct {
	kind     world.Interconnect
	asPath   []asn.Number
	segments []segment
	ixp      *world.IXP // non-nil when the peering happens at an exchange
}

// buildPlan lays the geographic waypoints of the path.
func (s *Simulator) buildPlan(p *probes.Probe, r *cloud.Region) plan {
	asPath, kind, ok := s.W.CloudPath(p.ISP, r)
	if !ok || len(asPath) == 0 {
		// Unreachable pairs do not occur in a well-formed world; treat
		// as a degenerate single-segment path to keep callers total.
		return plan{kind: world.IcPublic, asPath: []asn.Number{p.ISP.Number, r.Provider.ASN},
			segments: []segment{{from: p.Loc, to: r.Loc, fromC: p.Country, toC: r.Country,
				owner: r.Provider.ASN, routersAtEnd: 1}}}
	}
	pl := plan{kind: kind, asPath: asPath}
	if kind == world.IcDirectIXP {
		pl.ixp = s.W.IXPForPeering(p.ISP)
	}

	cur, curC := p.Loc, p.Country
	// Serving-ISP aggregation: probe location to the ISP PoP.
	ispPoP, _ := s.W.NearestPoP(p.ISP.Number, p.Loc)
	pl.segments = append(pl.segments, segment{
		from: cur, to: ispPoP.Loc, fromC: curC, toC: ispPoP.Country,
		owner: p.ISP.Number, routersAtEnd: 2,
	})
	cur, curC = ispPoP.Loc, ispPoP.Country

	ingress := s.W.CloudIngress(kind, p.Loc, r)
	ingressC := r.Country
	if pop, ok := s.W.NearestPoP(r.Provider.ASN, ingress); ok && pop.Loc == ingress {
		ingressC = pop.Country
	}

	// Transit ASes walk from the ISP PoP towards the cloud ingress.
	inter := asPath[1 : len(asPath)-1]
	for i, a := range inter {
		frac := float64(i+1) / float64(len(inter)+1)
		towards := geo.Interpolate(cur, ingress, frac)
		pop, ok := s.W.NearestPoP(a, towards)
		if !ok {
			pop = world.PoP{Loc: towards, Country: curC}
		}
		pl.segments = append(pl.segments, segment{
			from: cur, to: pop.Loc, fromC: curC, toC: pop.Country,
			// Carriers answer with at least two routers: a transit AS
			// vanishing entirely from a trace should be rare, as the
			// §6.1 classification depends on seeing it.
			owner: a, routersAtEnd: 2 + i%2,
		})
		cur, curC = pop.Loc, pop.Country
	}

	// Hand-off into the provider edge.
	if cur != ingress {
		pl.segments = append(pl.segments, segment{
			from: cur, to: ingress, fromC: curC, toC: ingressC,
			owner: r.Provider.ASN, privateWAN: false, routersAtEnd: 1,
		})
		cur, curC = ingress, ingressC
	}
	// The cloud segment proper: ingress to the datacenter.
	wanPrivate := !s.DisablePrivateWAN && r.Provider.Backbone != cloud.BackbonePublic &&
		(kind == world.IcDirect || kind == world.IcDirectIXP || kind == world.IcPrivateTransit)
	dist := geo.DistanceKm(cur, r.Loc)
	routers := 1 + int(dist/3000)
	if wanPrivate {
		routers += 2
	}
	if routers > 6 {
		routers = 6
	}
	pl.segments = append(pl.segments, segment{
		from: cur, to: r.Loc, fromC: curC, toC: r.Country,
		owner: r.Provider.ASN, privateWAN: wanPrivate, routersAtEnd: routers,
	})
	return pl
}

// wiredRTT evaluates the wired part of the plan (everything past the
// last-mile): base propagation plus congestion jitter.
func (s *Simulator) wiredRTT(pl plan, rng *rand.Rand) float64 {
	var total float64
	for _, seg := range pl.segments {
		total += s.segmentRTT(seg, rng)
	}
	return total
}

func (s *Simulator) segmentRTT(seg segment, rng *rand.Rand) float64 {
	dist := geo.DistanceKm(seg.from, seg.to)
	inflation := world.PathInflation(seg.fromC, seg.toC)
	jitterScale := 0.06 + (inflation-1.3)*0.09 // poorly provisioned ⇒ noisier
	if jitterScale < 0.04 {
		jitterScale = 0.04
	}
	if seg.privateWAN {
		inflation = world.PrivateWANInflationFor(seg.fromC, seg.toC)
		jitterScale = 0.015
	}
	base := dist / FibreKmPerMsRTT * inflation
	// Router processing: a fraction of a millisecond per hop.
	base += float64(seg.routersAtEnd) * (0.15 + rng.Float64()*0.2)
	// Multiplicative congestion jitter with an occasional spike on
	// public segments.
	jitter := base * jitterScale * math.Abs(rng.NormFloat64())
	if !seg.privateWAN && rng.Float64() < 0.02 {
		jitter += base * (0.3 + rng.Float64()*0.9)
	}
	return base + jitter
}

// lastMileScale damps the access latency for countries with unusually
// fast urban wireless deployments. China is the one country the paper
// finds under the 20 ms MTP bound end-to-end (§4.1), which is only
// possible on a fast last-mile.
func lastMileScale(country string) float64 {
	switch country {
	case "CN":
		return 0.45
	case "KR", "JP":
		return 0.85
	default:
		return 1.0
	}
}

// drawLastMile samples the probe's access segment.
func (s *Simulator) drawLastMile(p *probes.Probe, rng *rand.Rand) lastmile.Sample {
	sample := s.LastMile.Draw(p.Access, rng)
	scale := lastMileScale(p.Country)
	sample.UserToISPms *= scale
	sample.RouterToISPms *= scale
	return sample
}

// Ping runs one ping measurement. TCP pings measure the end-to-end
// handshake RTT; ICMP echoes run marginally higher with more variance,
// matching the within-2% gap §3.3 reports for Speedchecker.
func (s *Simulator) Ping(p *probes.Probe, r *cloud.Region, proto dataset.Protocol, cycle int) dataset.PingRecord {
	rng := s.rngFor(p.ID, r.ID, proto, cycle)
	pl := s.buildPlan(p, r)
	lm := s.drawLastMile(p, rng)
	rtt := lm.UserToISPms + s.wiredRTT(pl, rng)
	if proto == dataset.ICMP {
		rtt *= 1.015
		rtt += math.Abs(rng.NormFloat64()) * 1.2
	}
	if s.Faults != nil {
		rtt = s.Faults.CorruptRTT(p.ID, r.ID, cycle, rtt)
	}
	rtt += s.Events.ExtraRTT(p.Country, r.Country, sample.CampaignCycle(cycle))
	return dataset.PingRecord{
		VP:       s.vantage(p),
		Target:   s.target(r),
		Protocol: proto,
		RTTms:    rtt,
		Cycle:    cycle,
		VTime:    sample.VTimeOf(cycle, p.Country),
	}
}

// Traceroute runs one ICMP traceroute, reproducing the capture
// artifacts the paper has to cope with: private and CGN first hops,
// unresponsive routers, IXP hops that only sometimes appear, and the
// occasional truncated trace.
func (s *Simulator) Traceroute(p *probes.Probe, r *cloud.Region, cycle int) dataset.TracerouteRecord {
	rng := s.rngFor(p.ID, r.ID, dataset.ICMP, cycle)
	pl := s.buildPlan(p, r)
	lm := s.drawLastMile(p, rng)

	var tf faults.TraceFault
	if s.Faults != nil {
		tf = s.Faults.Trace(p.ID, r.ID, cycle)
	}
	rec := dataset.TracerouteRecord{
		VP: s.vantage(p), Target: s.target(r), Cycle: cycle,
		VTime: sample.VTimeOf(cycle, p.Country),
	}
	ttl := 0
	cum := 0.0
	// A cable cut inflates the long-haul: the detour lands on the final
	// (cloud) segment, shifting its hops and the destination RTT.
	eventExtra := s.Events.ExtraRTT(p.Country, r.Country, sample.CampaignCycle(cycle))
	addHop := func(ip netaddr.IP, rtt float64, forceRespond bool) {
		ttl++
		h := dataset.Hop{TTL: ttl, IP: ip, RTTms: rtt, Responded: true}
		if !forceRespond && rng.Float64() < s.UnresponsiveHopProb {
			h = dataset.Hop{TTL: ttl, Responded: false}
		}
		// Injected hop loss draws only when a fault plan asks for it, so
		// a fault-free simulator's RNG stream is untouched.
		if h.Responded && !forceRespond && tf.DropHopProb > 0 && rng.Float64() < tf.DropHopProb {
			h = dataset.Hop{TTL: ttl, Responded: false}
		}
		rec.Hops = append(rec.Hops, h)
	}

	// Last-mile hops. The first responding hop inside the ISP carries
	// the full USR-ISP latency; a preceding private hop exposes the
	// home-router split the paper uses to isolate the wireless segment.
	switch p.Access {
	case lastmile.WiFi:
		if rng.Float64() < s.PublicRouterWiFiProb {
			// Router answers with a public ISP address: the home
			// segment is invisible and the probe looks cellular.
			addHop(s.W.RouterIP(p.ISP.Number, hopIndex(rng)), lm.UserToISPms, true)
		} else {
			air := lm.UserToISPms - lm.RouterToISPms
			addHop(netaddr.MustParseIP("192.168.1.1"), air, true)
			addHop(s.W.RouterIP(p.ISP.Number, hopIndex(rng)), lm.UserToISPms, true)
		}
	case lastmile.Cellular:
		if rng.Float64() < s.CGNCellProb {
			cgn := netaddr.MustParsePrefix("100.64.0.0/10").Nth(uint64(rng.Intn(1 << 16)))
			addHop(cgn, lm.UserToISPms*0.7, true)
			addHop(s.W.RouterIP(p.ISP.Number, hopIndex(rng)), lm.UserToISPms, true)
		} else {
			addHop(s.W.RouterIP(p.ISP.Number, hopIndex(rng)), lm.UserToISPms, true)
		}
	default: // wired
		addHop(s.W.RouterIP(p.ISP.Number, hopIndex(rng)), lm.UserToISPms, true)
	}
	cum = lm.UserToISPms

	// Wired segments, hop by hop.
	for i, seg := range pl.segments {
		segRTT := s.segmentRTT(seg, rng)
		if i == len(pl.segments)-1 {
			segRTT += eventExtra
		}
		cum += segRTT
		perHop := segRTT / float64(seg.routersAtEnd)
		at := cum - segRTT
		for h := 0; h < seg.routersAtEnd; h++ {
			at += perHop
			noise := math.Abs(rng.NormFloat64()) * 0.8
			addHop(s.W.RouterIP(seg.owner, hopIndex(rng)), at+noise, false)
		}
		// The exchange fabric sits between the serving ISP and the
		// provider edge, and answers only sometimes (§6.1 caveat).
		if pl.ixp != nil && i == 0 && rng.Float64() < 0.7 {
			addHop(pl.ixp.Prefix.Nth(uint64(2+rng.Intn(200))), cum+0.3, false)
		}
	}

	// Destination VM. A small fraction of traces die before the target.
	if rng.Float64() < 0.02 && len(rec.Hops) > 2 {
		rec.Hops = rec.Hops[:len(rec.Hops)-1-rng.Intn(2)]
		return truncateTrace(rec, tf)
	}
	ttl++
	rec.Hops = append(rec.Hops, dataset.Hop{
		TTL: ttl, IP: s.W.RegionIP(r), RTTms: cum + 0.2 + math.Abs(rng.NormFloat64())*0.5,
		Responded: true,
	})
	return truncateTrace(rec, tf)
}

// truncateTrace applies an injected mid-path capture death: the tail of
// the trace — including the target — never comes back.
func truncateTrace(rec dataset.TracerouteRecord, tf faults.TraceFault) dataset.TracerouteRecord {
	if tf.MaxHops > 0 && len(rec.Hops) > tf.MaxHops {
		rec.Hops = rec.Hops[:tf.MaxHops]
	}
	return rec
}

// PlanInfo exposes the forwarding plan for analyses that need ground
// truth (tests, pervasiveness oracles).
type PlanInfo struct {
	Kind   world.Interconnect
	ASPath []asn.Number
}

// Plan returns the interconnection kind and AS path for a pair.
func (s *Simulator) Plan(p *probes.Probe, r *cloud.Region) PlanInfo {
	pl := s.buildPlan(p, r)
	return PlanInfo{Kind: pl.kind, ASPath: pl.asPath}
}

func hopIndex(rng *rand.Rand) int { return rng.Intn(4096) }

func (s *Simulator) vantage(p *probes.Probe) dataset.VantagePoint {
	return dataset.VantagePoint{
		ProbeID: p.ID, Platform: p.Platform.String(), Country: p.Country,
		Continent: p.Continent, ISP: p.ISP.Number, Access: p.Access,
	}
}

func (s *Simulator) target(r *cloud.Region) dataset.Target {
	return dataset.Target{
		Region: r.ID, Provider: r.Provider.Code, Country: r.Country,
		Continent: r.Continent, IP: s.W.RegionIP(r),
	}
}
