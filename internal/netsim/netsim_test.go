package netsim

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/probes"
	"repro/internal/stats"
	"repro/internal/world"
)

var (
	testW   = world.MustBuild(world.Config{Seed: 1})
	testSim = New(testW)
	scFleet = probes.GenerateSpeedchecker(testW, probes.Config{Seed: 1, Scale: 0.02})
)

func probeIn(t *testing.T, country string, access lastmile.Access) *probes.Probe {
	t.Helper()
	for _, p := range scFleet.InCountry(country) {
		if p.Access == access {
			return p
		}
	}
	t.Fatalf("no %v probe in %s", access, country)
	return nil
}

func regionOf(t *testing.T, provider, city string) *cloud.Region {
	t.Helper()
	for _, r := range testW.Inventory.RegionsOf(provider) {
		if r.City == city {
			return r
		}
	}
	t.Fatalf("no %s region in %s", provider, city)
	return nil
}

func pingSeries(p *probes.Probe, r *cloud.Region, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = testSim.Ping(p, r, dataset.TCP, i).RTTms
	}
	return out
}

func TestPingDeterminism(t *testing.T) {
	p := probeIn(t, "DE", lastmile.WiFi)
	r := regionOf(t, "AMZN", "Frankfurt")
	a := testSim.Ping(p, r, dataset.TCP, 7)
	b := testSim.Ping(p, r, dataset.TCP, 7)
	if a.RTTms != b.RTTms {
		t.Errorf("same measurement drew different RTTs: %v vs %v", a.RTTms, b.RTTms)
	}
	c := testSim.Ping(p, r, dataset.TCP, 8)
	if a.RTTms == c.RTTms {
		t.Error("different cycles should draw different RTTs")
	}
}

func TestSpeedOfLightBound(t *testing.T) {
	r := regionOf(t, "AMZN", "Sydney")
	for _, cc := range []string{"DE", "US", "BR", "JP", "ZA"} {
		p := scFleet.InCountry(cc)[0]
		minRTT := geo.DistanceKm(p.Loc, r.Loc) / FibreKmPerMsRTT
		for i := 0; i < 20; i++ {
			rtt := testSim.Ping(p, r, dataset.TCP, i).RTTms
			if rtt < minRTT {
				t.Fatalf("%s→Sydney RTT %.1f ms beats light in fibre (%.1f ms)", cc, rtt, minRTT)
			}
		}
	}
}

func TestEuropeanInCountryLatency(t *testing.T) {
	p := probeIn(t, "DE", lastmile.WiFi)
	r := regionOf(t, "AMZN", "Frankfurt")
	med, _ := stats.Median(pingSeries(p, r, 400))
	if med < 22 || med > 65 {
		t.Errorf("DE→Frankfurt median = %.1f ms, want ≈ 30-55 (wireless last-mile dominated)", med)
	}
}

func TestDistanceDominates(t *testing.T) {
	// §4.1: geographic distance to the DC is the primary factor.
	p := probeIn(t, "EG", lastmile.Cellular)
	za := regionOf(t, "AMZN", "Cape Town")
	fra := regionOf(t, "AMZN", "Frankfurt")
	medZA, _ := stats.Median(pingSeries(p, za, 300))
	medEU, _ := stats.Median(pingSeries(p, fra, 300))
	if medEU >= medZA {
		t.Errorf("Egypt: EU datacenter (%.0f ms) should beat the in-continent ZA one (%.0f ms)", medEU, medZA)
	}
	if medZA < 120 {
		t.Errorf("Egypt→Cape Town median = %.0f ms, implausibly fast", medZA)
	}
	if medEU > 120 {
		t.Errorf("Egypt→Frankfurt median = %.0f ms, implausibly slow", medEU)
	}
}

func TestAndeanCrossover(t *testing.T) {
	// §4.3: Bolivia reaches NA datacenters about as fast as the Brazilian
	// ones despite the shorter distance to Brazil.
	p := scFleet.InCountry("BO")[0]
	br := regionOf(t, "AMZN", "Sao Paulo")
	na := regionOf(t, "AMZN", "Ashburn")
	medBR, _ := stats.Median(pingSeries(p, br, 300))
	medNA, _ := stats.Median(pingSeries(p, na, 300))
	ratio := medBR / medNA
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("Bolivia BR/NA median ratio = %.2f (BR %.0f, NA %.0f), want near parity", ratio, medBR, medNA)
	}
}

func TestDirectPeeringCutsTailsInAsia(t *testing.T) {
	// §6.2 / Fig 13b: towards Indian DCs, direct peering keeps latency
	// variation far below transit paths.
	mumbai := regionOf(t, "GCP", "Mumbai")     // KDDI peers directly with GCP
	mumbaiDO := regionOf(t, "DO", "Bangalore") // DO is strictly public in Asia
	var p *probes.Probe
	for _, cand := range scFleet.InCountry("JP") {
		if cand.ISP.Number == 2516 { // KDDI: overridden to direct (Fig 13a)
			p = cand
			break
		}
	}
	if p == nil {
		t.Skip("no KDDI probe at this scale")
	}

	direct, _ := stats.Summarize(pingSeries(p, mumbai, 400))
	public, _ := stats.Summarize(pingSeries(p, mumbaiDO, 400))
	if got := testSim.Plan(p, mumbai).Kind; got != world.IcDirect && got != world.IcDirectIXP {
		t.Fatalf("JP→GCP plan kind = %v, want direct", got)
	}
	if got := testSim.Plan(p, mumbaiDO).Kind; got != world.IcPublic {
		t.Fatalf("JP→DO plan kind = %v, want public", got)
	}
	if direct.IQR() >= public.IQR() {
		t.Errorf("direct IQR %.1f should be below public IQR %.1f", direct.IQR(), public.IQR())
	}
	if direct.Median >= public.Median {
		t.Errorf("direct median %.0f should not exceed public median %.0f", direct.Median, public.Median)
	}
}

func TestEuropeDirectVsTransitComparable(t *testing.T) {
	// §6.2 / Fig 12b: DE→UK, direct peering barely moves the median.
	p := probeIn(t, "DE", lastmile.WiFi)
	direct := regionOf(t, "AMZN", "London") // DT/Vodafone peer directly
	lin := regionOf(t, "LIN", "London")     // Linode via one carrier
	medDirect, _ := stats.Median(pingSeries(p, direct, 400))
	medTransit, _ := stats.Median(pingSeries(p, lin, 400))
	if diff := medTransit - medDirect; diff < -8 || diff > 12 {
		t.Errorf("DE→UK direct %.1f vs transit %.1f: gap %.1f ms, want minimal", medDirect, medTransit, diff)
	}
}

func TestICMPSlightlyAboveTCP(t *testing.T) {
	p := probeIn(t, "DE", lastmile.WiFi)
	r := regionOf(t, "AMZN", "Frankfurt")
	var tcp, icmp []float64
	for i := 0; i < 400; i++ {
		tcp = append(tcp, testSim.Ping(p, r, dataset.TCP, i).RTTms)
		icmp = append(icmp, testSim.Ping(p, r, dataset.ICMP, i).RTTms)
	}
	mt, _ := stats.Median(tcp)
	mi, _ := stats.Median(icmp)
	if mi <= mt {
		t.Errorf("ICMP median %.2f should sit above TCP %.2f", mi, mt)
	}
	if (mi-mt)/mt > 0.12 {
		t.Errorf("ICMP/TCP gap = %.1f%%, want small (§3.3: ≈2%%)", 100*(mi-mt)/mt)
	}
}

func TestWiredBeatsWireless(t *testing.T) {
	// §4.2: the wired Atlas last-mile beats wireless by 2-3× at the
	// access segment, pulling the end-to-end RTT down.
	at := probes.GenerateAtlas(testW, probes.Config{Seed: 1, Scale: 0.3})
	var wired *probes.Probe
	for _, p := range at.InCountry("DE") {
		wired = p
		break
	}
	if wired == nil {
		t.Skip("no Atlas probe in DE at this scale")
	}
	wireless := probeIn(t, "DE", lastmile.WiFi)
	r := regionOf(t, "AMZN", "Frankfurt")
	mWired, _ := stats.Median(pingSeries(wired, r, 300))
	mWireless, _ := stats.Median(pingSeries(wireless, r, 300))
	if mWired >= mWireless {
		t.Errorf("wired median %.1f should beat wireless %.1f", mWired, mWireless)
	}
}

func TestTracerouteStructure(t *testing.T) {
	p := probeIn(t, "DE", lastmile.WiFi)
	r := regionOf(t, "AMZN", "Frankfurt")
	sawPrivateFirst, sawReached := false, false
	for i := 0; i < 50; i++ {
		tr := testSim.Traceroute(p, r, i)
		if len(tr.Hops) < 3 {
			t.Fatalf("trace %d too short: %d hops", i, len(tr.Hops))
		}
		for j, h := range tr.Hops {
			if h.TTL != j+1 {
				t.Fatalf("trace %d hop %d has TTL %d", i, j, h.TTL)
			}
		}
		if tr.Hops[0].Responded && tr.Hops[0].IP.IsPrivate() {
			sawPrivateFirst = true
		}
		if tr.Reached() {
			sawReached = true
			if tr.RTTms() <= 0 {
				t.Fatal("reached trace with non-positive RTT")
			}
		}
	}
	if !sawPrivateFirst {
		t.Error("home probe never showed a private first hop")
	}
	if !sawReached {
		t.Error("no trace reached the target in 50 tries")
	}
}

func TestTracerouteDeterminism(t *testing.T) {
	p := probeIn(t, "JP", lastmile.Cellular)
	r := regionOf(t, "GCP", "Tokyo")
	a := testSim.Traceroute(p, r, 3)
	b := testSim.Traceroute(p, r, 3)
	if len(a.Hops) != len(b.Hops) {
		t.Fatalf("hop counts differ: %d vs %d", len(a.Hops), len(b.Hops))
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			t.Fatalf("hop %d differs", i)
		}
	}
}

func TestTracerouteLastMileSegment(t *testing.T) {
	// The first responding in-ISP hop carries the USR-ISP latency; for
	// home probes the preceding private hop carries the air segment, so
	// the RTR-ISP wired tail is the difference (§5 methodology).
	p := probeIn(t, "GB", lastmile.WiFi)
	r := regionOf(t, "AMZN", "London")
	for i := 0; i < 30; i++ {
		tr := testSim.Traceroute(p, r, i)
		if !tr.Hops[0].Responded || !tr.Hops[0].IP.IsPrivate() {
			continue // public-router artifact draw
		}
		air := tr.Hops[0].RTTms
		full := tr.Hops[1].RTTms
		if full <= air {
			t.Fatalf("trace %d: USR-ISP %.2f not above air segment %.2f", i, full, air)
		}
		if full > 120 {
			t.Fatalf("trace %d: absurd last-mile %.1f ms", i, full)
		}
	}
}

func TestPervasivenessShape(t *testing.T) {
	// Fig 11: hypergiants own most of the route; public-backbone
	// providers own only the datacenter edge.
	p := probeIn(t, "DE", lastmile.WiFi)
	gcp := regionOf(t, "GCP", "London")
	vltr := regionOf(t, "VLTR", "London")
	count := func(r *cloud.Region) (provider, total int) {
		for i := 0; i < 40; i++ {
			tr := testSim.Traceroute(p, r, i)
			for _, h := range tr.Hops {
				if !h.Responded || h.IP.IsPrivate() {
					continue
				}
				total++
				if a, ok := testW.Registry.ResolveIP(h.IP); ok && a.Number == r.Provider.ASN {
					provider++
				}
			}
		}
		return
	}
	gp, gt := count(gcp)
	vp, vt := count(vltr)
	gFrac := float64(gp) / float64(gt)
	vFrac := float64(vp) / float64(vt)
	if gFrac <= vFrac {
		t.Errorf("GCP pervasiveness %.2f should exceed Vultr %.2f", gFrac, vFrac)
	}
	if gFrac < 0.4 {
		t.Errorf("GCP pervasiveness = %.2f, want hypergiant-level", gFrac)
	}
}

func TestIXPHopAppears(t *testing.T) {
	// DT→IBM is a direct-via-IXP interconnect; the exchange LAN should
	// show up in most traces.
	var dtProbe *probes.Probe
	for _, p := range scFleet.InCountry("DE") {
		if p.ISP.Number == 3320 {
			dtProbe = p
			break
		}
	}
	if dtProbe == nil {
		t.Skip("no DT-homed probe at this scale")
	}
	r := regionOf(t, "IBM", "Frankfurt")
	if kind := testSim.Plan(dtProbe, r).Kind; kind != world.IcDirectIXP {
		t.Fatalf("DT→IBM kind = %v", kind)
	}
	seen := 0
	for i := 0; i < 60; i++ {
		tr := testSim.Traceroute(dtProbe, r, i)
		for _, h := range tr.Hops {
			if !h.Responded {
				continue
			}
			if a, ok := testW.Registry.ResolveIP(h.IP); ok {
				if _, isIXP := testW.IXPByASN(a.Number); isIXP {
					seen++
					break
				}
			}
		}
	}
	if seen < 20 || seen == 60 {
		t.Errorf("IXP hop visible in %d/60 traces, want sometimes-but-not-always", seen)
	}
}

func TestCGNArtifact(t *testing.T) {
	p := probeIn(t, "EG", lastmile.Cellular)
	r := regionOf(t, "AMZN", "Frankfurt")
	cgn := 0
	for i := 0; i < 200; i++ {
		tr := testSim.Traceroute(p, r, i)
		if tr.Hops[0].Responded && tr.Hops[0].IP.IsCGN() {
			cgn++
		}
	}
	if cgn == 0 || cgn > 40 {
		t.Errorf("CGN first hops = %d/200, want a small but present fraction", cgn)
	}
}
