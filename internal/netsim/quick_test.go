package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/geo"
)

// TestQuickPingInvariants drives random <probe, region, protocol, cycle>
// tuples through the simulator and checks the physical and structural
// invariants from DESIGN.md §5.
func TestQuickPingInvariants(t *testing.T) {
	all := scFleet.All()
	regions := testW.Inventory.Regions()
	f := func(pi, ri uint16, icmp bool, cycle uint8) bool {
		p := all[int(pi)%len(all)]
		r := regions[int(ri)%len(regions)]
		proto := dataset.TCP
		if icmp {
			proto = dataset.ICMP
		}
		rec := testSim.Ping(p, r, proto, int(cycle))
		// Physics: never beats light in fibre over the great circle.
		if rec.RTTms < geo.DistanceKm(p.Loc, r.Loc)/FibreKmPerMsRTT {
			return false
		}
		// Sanity: positive, bounded (nothing on Earth needs 5 seconds).
		if rec.RTTms <= 0 || rec.RTTms > 5000 {
			return false
		}
		// Metadata faithfully copied.
		return rec.VP.ProbeID == p.ID && rec.Target.Region == r.ID &&
			rec.VP.ISP == p.ISP.Number && rec.Protocol == proto &&
			rec.Target.IP == testW.RegionIP(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickTracerouteInvariants checks every random traceroute is
// structurally sound: contiguous TTLs, cumulative RTTs that respect the
// light bound at the destination, and hops that resolve to on-path ASes.
func TestQuickTracerouteInvariants(t *testing.T) {
	all := scFleet.All()
	regions := testW.Inventory.Regions()
	f := func(pi, ri uint16, cycle uint8) bool {
		p := all[int(pi)%len(all)]
		r := regions[int(ri)%len(regions)]
		tr := testSim.Traceroute(p, r, int(cycle))
		if len(tr.Hops) < 2 {
			return false
		}
		for i, h := range tr.Hops {
			if h.TTL != i+1 {
				return false
			}
			if h.Responded && h.RTTms <= 0 {
				return false
			}
			if !h.Responded && (h.IP != 0 || h.RTTms != 0) {
				return false
			}
		}
		if tr.Reached() {
			minRTT := geo.DistanceKm(p.Loc, r.Loc) / FibreKmPerMsRTT
			if tr.RTTms() < minRTT {
				return false
			}
		}
		// Every responding public hop resolves to the serving ISP, an
		// AS on the planned path, an exchange, or the provider.
		plan := testSim.Plan(p, r)
		onPath := map[uint32]bool{}
		for _, n := range plan.ASPath {
			onPath[uint32(n)] = true
		}
		for _, h := range tr.Hops {
			if !h.Responded || h.IP.IsPrivate() {
				continue
			}
			a, ok := testW.Registry.ResolveIP(h.IP)
			if !ok {
				return false // every synthetic hop is attributable
			}
			if _, isIXP := testW.IXPByASN(a.Number); isIXP {
				continue
			}
			if !onPath[uint32(a.Number)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickPlanStability: the forwarding plan is a pure function of the
// pair — identical across calls — and its AS path endpoints are right.
func TestQuickPlanStability(t *testing.T) {
	all := scFleet.All()
	regions := testW.Inventory.Regions()
	f := func(pi, ri uint16) bool {
		p := all[int(pi)%len(all)]
		r := regions[int(ri)%len(regions)]
		a := testSim.Plan(p, r)
		b := testSim.Plan(p, r)
		if a.Kind != b.Kind || len(a.ASPath) != len(b.ASPath) {
			return false
		}
		for i := range a.ASPath {
			if a.ASPath[i] != b.ASPath[i] {
				return false
			}
		}
		return a.ASPath[0] == p.ISP.Number && a.ASPath[len(a.ASPath)-1] == r.Provider.ASN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
