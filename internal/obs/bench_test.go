package obs_test

// Benchmarks live in an external test package so they can drive the
// real spine — campaign engine streaming into the sharded store feed —
// once uninstrumented and once with a registry and tracer attached.
// BenchmarkObsOverhead is the acceptance benchmark for the subsystem:
// the instrumented run must stay within a few percent of the bare one
// (recorded in BENCH_obs.json; CI replays it in -benchtime=1x smoke
// mode).

import (
	"context"
	"testing"

	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/store"
	"repro/internal/world"
)

var (
	benchWorld = world.MustBuild(world.Config{Seed: 7})
	benchSim   = netsim.New(benchWorld)
	benchFleet = probes.GenerateSpeedchecker(benchWorld, probes.Config{Seed: 7, Scale: 0.01})
)

// runSpine executes one campaign→feed→seal pass. instrumented attaches
// a fresh registry and tracer exactly the way cmd/cloudy's serve path
// does; uninstrumented leaves both nil so every instrument call takes
// the no-op branch.
func runSpine(b *testing.B, instrumented bool) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var reg *obs.Registry
		ctx := context.Background()
		if instrumented {
			reg = obs.NewRegistry()
			ctx = obs.ContextWithTracer(ctx, obs.NewTracer(0))
		}
		feed := store.NewFeed(pipeline.NewProcessor(benchWorld), store.Options{Obs: reg})
		cfg := measure.Config{
			Seed:                7,
			Cycles:              1,
			ProbesPerCountry:    2,
			TargetsPerProbe:     2,
			MinProbesPerCountry: 2,
			RequestsPerMinute:   60,
			Workers:             4,
			Traceroutes:         true,
			Sink:                feed,
			Obs:                 reg,
		}
		camp, err := measure.New(benchSim, benchFleet, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := camp.Run(ctx); err != nil {
			b.Fatal(err)
		}
		st := feed.SealContext(ctx)
		if n, _ := feed.Len(); n == 0 {
			b.Fatal("spine produced no pings")
		}
		_ = st
	}
}

// BenchmarkObsOverhead compares the full spine with and without
// instrumentation. Compare the two sub-benchmark ns/op figures; the
// instrumented one must stay within ~5%.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("uninstrumented", func(b *testing.B) { runSpine(b, false) })
	b.Run("instrumented", func(b *testing.B) { runSpine(b, true) })
}

// Instrument micro-costs, for sizing the per-event budget.

func BenchmarkCounterInc(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := obs.NewRegistry().Counter("bench_total")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := obs.NewRegistry().Histogram("bench_ms", obs.RTTBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 250))
	}
}

func BenchmarkNilInstruments(b *testing.B) {
	var reg *obs.Registry
	c := reg.Counter("bench_total")
	h := reg.Histogram("bench_ms", obs.RTTBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	ctx := obs.ContextWithTracer(context.Background(), obs.NewTracer(0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := obs.StartSpan(ctx, "bench.op")
		sp.End()
	}
}
