package obs

import "time"

// After returns a channel that delivers one value after d has elapsed
// on the wall clock. Like Time, it exists so deterministic-scope
// packages can wait out an *operational* delay — a hedge trigger, a
// shed backoff — without referencing the clock themselves: the wait
// lives here, inside the one allowlisted package, and no simulation
// decision may depend on it. Non-positive d fires immediately.
func After(d time.Duration) <-chan time.Time {
	return time.After(d)
}
