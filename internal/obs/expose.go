package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteMetrics renders every registered instrument in a Prometheus-style
// text exposition, sorted by instrument identity so the output is
// stable for tests and diffing. Counters and gauges are one line each;
// histograms expand to cumulative _bucket lines plus _sum and _count.
// A nil registry writes nothing.
func (r *Registry) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+8*len(r.hists))
	for id, c := range r.counters {
		lines = append(lines, id+" "+strconv.FormatUint(c.Load(), 10))
	}
	for id, g := range r.gauges {
		lines = append(lines, id+" "+strconv.FormatInt(g.Load(), 10))
	}
	for id, f := range r.funcs {
		lines = append(lines, id+" "+formatFloat(f()))
	}
	for id, h := range r.hists {
		lines = append(lines, histLines(id, h.Snapshot())...)
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := io.WriteString(w, ln+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// histLines renders one histogram: cumulative buckets with an `le`
// label spliced into the instrument's label set, then _sum and _count.
func histLines(id string, s HistSnapshot) []string {
	name, labels := id, ""
	if i := strings.IndexByte(id, '{'); i >= 0 {
		name = id[:i]
		labels = strings.TrimSuffix(id[i+1:], "}")
	}
	bucketID := func(le string) string {
		if labels == "" {
			return name + `_bucket{le="` + le + `"}`
		}
		return name + "_bucket{" + labels + `,le="` + le + `"}`
	}
	suffixed := func(suffix string) string {
		if labels == "" {
			return name + suffix
		}
		return name + suffix + "{" + labels + "}"
	}
	out := make([]string, 0, len(s.Counts)+2)
	cum := uint64(0)
	for i, n := range s.Counts {
		cum += n
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		out = append(out, bucketID(le)+" "+strconv.FormatUint(cum, 10))
	}
	out = append(out,
		suffixed("_sum")+" "+formatFloat(s.Sum),
		suffixed("_count")+" "+strconv.FormatUint(s.Count, 10))
	return out
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Tracez is the /v1/tracez payload: the retained spans (oldest first)
// and the per-stage latency rollups.
type Tracez struct {
	Spans  []SpanData     `json:"spans"`
	Stages []StageLatency `json:"stages"`
}

// Export builds the tracez payload. A nil tracer exports empty (non-nil)
// slices so the JSON shape is stable.
func (t *Tracer) Export() Tracez {
	if t == nil {
		return Tracez{Spans: []SpanData{}, Stages: []StageLatency{}}
	}
	spans := t.Recent()
	stages := t.Stages()
	if spans == nil {
		spans = []SpanData{}
	}
	if stages == nil {
		stages = []StageLatency{}
	}
	return Tracez{Spans: spans, Stages: stages}
}

// String implements fmt.Stringer for quick logging of one stage line.
func (s StageLatency) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.3fms max=%.3fms", s.Name, s.Count, s.MeanMs, s.MaxMs)
}
