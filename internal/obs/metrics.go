package obs

import (
	"math"
	"sync/atomic"
)

// RTTBuckets are the histogram bounds (milliseconds) tuned to the
// paper's RTT range: dense below the 100 ms QoE thresholds of §4.1
// (MTP 20 ms, HPL 75 ms, HRT 100 ms), sparse in the intercontinental
// tail.
var RTTBuckets = []float64{1, 2.5, 5, 10, 20, 35, 50, 75, 100, 150, 250, 500, 1000, 2500}

// LatencyBuckets are the bounds (milliseconds) for in-process
// latencies — HTTP handlers, shard fan-out/merge, store seal — which
// sit orders of magnitude below network RTTs.
var LatencyBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 1000}

// Counter is a lock-free monotonic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark update, lock-free via CAS.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with lock-free observation:
// one atomic add for the bucket, one for the count, and a CAS loop for
// the float sum. Bounds are upper bucket edges; an implicit +Inf bucket
// catches the tail.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// HistSnapshot is a consistent-enough copy of a histogram for
// exposition (buckets are loaded individually; under concurrent
// observation the snapshot may be mid-update by a single observation,
// which text exposition tolerates).
type HistSnapshot struct {
	Bounds []float64 // upper edges; the +Inf bucket is Counts[len(Bounds)]
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile (0 < q < 1) of the observed
// distribution by linear interpolation inside the bucket that crosses
// the target rank — the standard histogram_quantile estimate. The
// lowest bucket interpolates from zero; an answer that lands in the
// +Inf bucket is clamped to the highest finite bound (the histogram
// cannot say more). Returns 0 with no observations.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: clamp to last finite edge
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}
