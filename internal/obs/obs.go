// Package obs is the repo's unified observability subsystem: a
// stdlib-only metrics registry (lock-free counters, gauges and
// fixed-bucket histograms), span-style tracing carried through
// context.Context, and the text/JSON expositions behind the
// /v1/metricsz and /v1/tracez endpoints of internal/serve.
//
// Design rules (DESIGN.md §10):
//
//   - Instruments are interned at registration: looking one up twice
//     returns the same pointer, so components resolve their instruments
//     once at construction and the hot path is a single atomic add.
//   - Every constructor is nil-receiver safe. A component built without
//     a registry still gets working (just unregistered) instruments, so
//     call sites carry no "is observability on?" branches.
//   - Label sets are baked into the instrument identity at registration
//     (`name{k="v"}`); there is no per-call label lookup and therefore
//     no per-call allocation. Labels must be low-cardinality — endpoint
//     names, fault kinds, shard indices — never probe or country IDs.
//
// obs is the one deterministic-scope package allowed to read the wall
// clock (see internal/lint/config.go): span timestamps and latency
// rollups are operational telemetry about the process, not simulation
// state, and no simulation decision may depend on them.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry holds every registered instrument. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid "unobserved"
// registry: instrument constructors still return working instruments,
// they are simply not retained or exposed.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() float64{},
	}
}

// instrumentID renders the canonical identity of an instrument: the
// name plus its label pairs in sorted order, Prometheus-style. Labels
// come as alternating key, value strings.
func instrumentID(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: instrument %q has odd label list %q", name, labels))
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", labels[i], labels[i+1]))
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// Counter returns the counter registered under name and the given
// alternating label key/value pairs, creating it on first use. On a nil
// registry it returns a fresh unregistered counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	id := instrumentID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[id]
	if c == nil {
		c = &Counter{}
		r.counters[id] = c
	}
	return c
}

// Gauge returns the gauge registered under name/labels, creating it on
// first use. On a nil registry it returns a fresh unregistered gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	id := instrumentID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[id]
	if g == nil {
		g = &Gauge{}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns the histogram registered under name/labels,
// creating it with the given bucket upper bounds on first use. Buckets
// must be ascending; an implicit +Inf bucket is always appended. On a
// nil registry it returns a fresh unregistered histogram. Re-registering
// with different buckets keeps the original (first registration wins).
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return newHistogram(buckets)
	}
	id := instrumentID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[id]
	if h == nil {
		h = newHistogram(buckets)
		r.hists[id] = h
	}
	return h
}

// SumCounters sums every registered counter with the given base name
// across all label sets — the rollup a cluster worker ships in its
// heartbeat when the per-label breakdown (faults_injected_total by
// profile and kind) is not worth putting on the wire. Zero on a nil
// registry.
func (r *Registry) SumCounters(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum uint64
	for id, c := range r.counters {
		if id == name || strings.HasPrefix(id, name+"{") {
			sum += c.Load()
		}
	}
	return sum
}

// GaugeFunc registers a callback evaluated at exposition time — for
// values that live elsewhere (queue depth, cache entries) and would be
// wasteful to mirror on every change. Re-registering the same id
// replaces the callback, so a component recreated mid-process (a second
// campaign's bus) observes its own state. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, f func() float64, labels ...string) {
	if r == nil || f == nil {
		return
	}
	id := instrumentID(name, labels)
	r.mu.Lock()
	r.funcs[id] = f
	r.mu.Unlock()
}
