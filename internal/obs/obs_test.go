package obs

import (
	"strings"
	"sync"
	"testing"
)

// 32 goroutines hammer one counter; the total must be exact — a torn
// or dropped increment is a correctness bug, not noise. Run under
// -race by make verify.
func TestCounterConcurrentExact(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total")
	const goroutines, perG = 32, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	// The registry interned the instrument: a second lookup is the same
	// counter, so late registrants see the same value.
	if again := reg.Counter("hammer_total"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
}

// Same contract for histograms: exact count, exact per-bucket counts,
// exact sum (the observations are integer-valued so float addition is
// lossless at this magnitude).
func TestHistogramConcurrentExact(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("rtt_ms", []float64{10, 100})
	const goroutines, perG = 32, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(5)   // bucket le=10
				h.Observe(50)  // bucket le=100
				h.Observe(500) // bucket +Inf
			}
		}()
	}
	wg.Wait()
	const n = goroutines * perG
	if got := h.Count(); got != 3*n {
		t.Fatalf("count = %d, want %d", got, 3*n)
	}
	if got, want := h.Sum(), float64(n*(5+50+500)); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	s := h.Snapshot()
	for i, want := range []uint64{n, n, n} {
		if s.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	if got, want := h.Mean(), float64(5+50+500)/3; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestGaugeSetMaxConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 1; i <= 32; i++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			for k := int64(0); k <= v; k++ {
				g.SetMax(k)
			}
		}(int64(i * 10))
	}
	wg.Wait()
	if got := g.Load(); got != 320 {
		t.Fatalf("max gauge = %d, want 320", got)
	}
}

// Instruments from a nil registry must work (and stay unregistered) so
// uninstrumented components carry no branches.
func TestNilRegistryInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	if c.Load() != 1 {
		t.Fatal("nil-registry counter did not count")
	}
	h := r.Histogram("y", RTTBuckets)
	h.Observe(3)
	if h.Count() != 1 {
		t.Fatal("nil-registry histogram did not observe")
	}
	r.Gauge("z").Set(5)
	r.GaugeFunc("f", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, %v; want empty, nil", sb.String(), err)
	}
}

func TestExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve_requests_total", "endpoint", "cdf").Add(7)
	reg.Gauge("bus_queue_depth_high_water").Set(12)
	reg.GaugeFunc("store_rows", func() float64 { return 42 })
	h := reg.Histogram("serve_latency_ms", []float64{1, 10}, "endpoint", "cdf")
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := reg.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`serve_requests_total{endpoint="cdf"} 7`,
		`bus_queue_depth_high_water 12`,
		`store_rows 42`,
		`serve_latency_ms_bucket{endpoint="cdf",le="1"} 1`,
		`serve_latency_ms_bucket{endpoint="cdf",le="10"} 2`,
		`serve_latency_ms_bucket{endpoint="cdf",le="+Inf"} 3`,
		`serve_latency_ms_sum{endpoint="cdf"} 55.5`,
		`serve_latency_ms_count{endpoint="cdf"} 3`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	// Output is sorted, so identical registries render identically.
	lines := strings.Split(strings.TrimSpace(got), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("exposition not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
}

func TestLabelInterning(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "k", "v", "a", "b")
	b := reg.Counter("x_total", "a", "b", "k", "v") // label order must not matter
	if a != b {
		t.Fatal("label order produced distinct instruments")
	}
	c := reg.Counter("x_total", "k", "w")
	if c == a {
		t.Fatal("distinct label values interned together")
	}
}
