package obs

import (
	"math"
	"testing"
)

func TestHistSnapshotQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform over (0, 1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 of uniform(0,1] = %v, want 0.5", got)
	}
	if got := s.Quantile(0.95); math.Abs(got-0.95) > 1e-9 {
		t.Errorf("p95 = %v, want 0.95", got)
	}

	// Spread across buckets: 50 in (0,1], 50 in (1,2]. p75 interpolates
	// halfway through the second bucket.
	h2 := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h2.Observe(0.5)
		h2.Observe(1.5)
	}
	if got := h2.Snapshot().Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %v, want 1.5", got)
	}

	// Tail beyond the last finite bound clamps to it.
	h3 := newHistogram([]float64{1, 2})
	for i := 0; i < 10; i++ {
		h3.Observe(100)
	}
	if got := h3.Snapshot().Quantile(0.99); got != 2 {
		t.Errorf("overflow-bucket quantile = %v, want clamp to 2", got)
	}

	// Empty histogram answers 0.
	if got := newHistogram([]float64{1}).Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}
