package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is one finished span as held in the tracer's ring buffer
// and served by /v1/tracez. Timestamps are monotonic-clock readings
// (time.Now carries the monotonic component), so durations are immune
// to wall-clock steps; they are telemetry about the process, never
// simulation input.
type SpanData struct {
	ID       uint64            `json:"id"`
	ParentID uint64            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Ms       float64           `json:"duration_ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// StageLatency is the per-stage rollup across every finished span with
// the same name: the pipeline's latency ledger (campaign, bus drain,
// store seal, serve query) without keeping every span.
type StageLatency struct {
	Name    string  `json:"name"`
	Count   uint64  `json:"count"`
	TotalMs float64 `json:"total_ms"`
	MaxMs   float64 `json:"max_ms"`
	MeanMs  float64 `json:"mean_ms"`
}

type stageAgg struct {
	count   uint64
	totalMs float64
	maxMs   float64
}

// Tracer collects finished spans into a bounded ring buffer (newest
// win, oldest evicted) and aggregates per-stage latency rollups. Safe
// for concurrent use.
type Tracer struct {
	nextID atomic.Uint64

	mu     sync.Mutex
	ring   []SpanData
	next   int
	filled bool
	stages map[string]*stageAgg
}

// DefaultSpanBuffer is the ring capacity when NewTracer gets n <= 0.
const DefaultSpanBuffer = 256

// NewTracer returns a tracer retaining the last n finished spans.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultSpanBuffer
	}
	return &Tracer{ring: make([]SpanData, n), stages: map[string]*stageAgg{}}
}

// Span is one in-flight operation. A nil *Span (no tracer on the
// context) is valid: every method is a no-op, so call sites never
// branch on whether tracing is enabled.
type Span struct {
	tr    *Tracer
	data  SpanData
	start time.Time
	ended atomic.Bool
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// ContextWithTracer returns a context carrying tr; StartSpan calls on
// descendants record into it.
func ContextWithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, tr)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	return tr
}

// StartSpan begins a span named name under the context's current span
// (if any) and returns a context carrying the new span. Without a
// tracer on the context it returns ctx unchanged and a nil span, whose
// methods all no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := TracerFrom(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := &Span{
		tr:    tr,
		start: time.Now(),
		data:  SpanData{ID: tr.nextID.Add(1), Name: name},
	}
	if parent, _ := ctx.Value(spanKey).(*Span); parent != nil {
		sp.data.ParentID = parent.data.ID
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// SetAttr attaches a key=value annotation to the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = map[string]string{}
	}
	s.data.Attrs[k] = v
}

// End finishes the span, recording it into the tracer's ring and the
// per-stage rollups. End is idempotent; only the first call records.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.data.Start = s.start
	s.data.Ms = float64(time.Since(s.start)) / float64(time.Millisecond)
	s.tr.record(s.data)
}

func (t *Tracer) record(d SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = d
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	agg := t.stages[d.Name]
	if agg == nil {
		agg = &stageAgg{}
		t.stages[d.Name] = agg
	}
	agg.count++
	agg.totalMs += d.Ms
	if d.Ms > agg.maxMs {
		agg.maxMs = d.Ms
	}
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanData
	if t.filled {
		out = append(out, t.ring[t.next:]...)
	}
	return append(out, t.ring[:t.next]...)
}

// Stages returns the per-stage latency rollups sorted by name.
func (t *Tracer) Stages() []StageLatency {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageLatency, 0, len(t.stages))
	for name, a := range t.stages {
		s := StageLatency{Name: name, Count: a.count, TotalMs: a.totalMs, MaxMs: a.maxMs}
		if a.count > 0 {
			s.MeanMs = a.totalMs / float64(a.count)
		}
		out = append(out, s)
	}
	sortStages(out)
	return out
}

func sortStages(s []StageLatency) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Name < s[j-1].Name; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Time starts a stopwatch and returns a stop function that records the
// elapsed milliseconds into h. It exists so deterministic-scope
// packages (internal/store) can measure their own operational latency
// without touching the wall clock themselves: the clock reads live
// here, inside the one allowlisted package. Safe on a nil histogram.
func Time(h *Histogram) func() {
	if h == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		h.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
}
