package obs

import (
	"context"
	"strings"
	"testing"
)

func TestSpanParentChild(t *testing.T) {
	tr := NewTracer(16)
	ctx := ContextWithTracer(context.Background(), tr)

	rootCtx, root := StartSpan(ctx, "root")
	childCtx, child := StartSpan(rootCtx, "child")
	_, grand := StartSpan(childCtx, "grandchild")
	grand.End()
	child.End()
	// A sibling started from the root context parents onto root, not
	// onto the (already ended) child.
	_, sibling := StartSpan(rootCtx, "sibling")
	sibling.End()
	root.End()

	spans := tr.Recent()
	if len(spans) != 4 {
		t.Fatalf("%d spans, want 4", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].ParentID != 0 {
		t.Errorf("root has parent %d", byName["root"].ParentID)
	}
	if got, want := byName["child"].ParentID, byName["root"].ID; got != want {
		t.Errorf("child parent = %d, want %d", got, want)
	}
	if got, want := byName["grandchild"].ParentID, byName["child"].ID; got != want {
		t.Errorf("grandchild parent = %d, want %d", got, want)
	}
	if got, want := byName["sibling"].ParentID, byName["root"].ID; got != want {
		t.Errorf("sibling parent = %d, want %d", got, want)
	}
}

func TestSpanNoTracerNoOps(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "orphan")
	if sp != nil {
		t.Fatal("StartSpan without tracer returned a live span")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()
	if ctx != context.Background() {
		t.Fatal("context rewritten without a tracer")
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	ctx := ContextWithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	spans := tr.Recent()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest first, and only the newest four survive (IDs 7..10).
	for i, s := range spans {
		if want := uint64(7 + i); s.ID != want {
			t.Errorf("span %d has ID %d, want %d", i, s.ID, want)
		}
	}
	st := tr.Stages()
	if len(st) != 1 || st[0].Count != 10 {
		t.Fatalf("stage rollup = %+v, want one stage with count 10 (rollups outlive eviction)", st)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(8)
	ctx := ContextWithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "once")
	sp.SetAttr("cycle", "3")
	sp.End()
	sp.End()
	spans := tr.Recent()
	if len(spans) != 1 {
		t.Fatalf("double End recorded %d spans", len(spans))
	}
	if spans[0].Attrs["cycle"] != "3" {
		t.Errorf("attrs lost: %+v", spans[0].Attrs)
	}
	if spans[0].Ms < 0 {
		t.Errorf("negative duration %v", spans[0].Ms)
	}
}

func TestTracezExport(t *testing.T) {
	var nilTr *Tracer
	z := nilTr.Export()
	if z.Spans == nil || z.Stages == nil {
		t.Fatal("nil tracer export has nil slices; JSON shape must be stable")
	}
	tr := NewTracer(8)
	ctx := ContextWithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "stage.a")
	sp.End()
	z = tr.Export()
	if len(z.Spans) != 1 || len(z.Stages) != 1 || z.Stages[0].Name != "stage.a" {
		t.Fatalf("export = %+v", z)
	}
	if !strings.Contains(z.Stages[0].String(), "stage.a") {
		t.Fatalf("stage string = %q", z.Stages[0].String())
	}
}

func TestTimeHelper(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	stop := Time(h)
	stop()
	if h.Count() != 1 {
		t.Fatalf("Time recorded %d observations, want 1", h.Count())
	}
	Time(nil)() // nil histogram must be safe
}
