// Package pipeline processes raw traceroutes the way §3.3 and §6.1 of
// the paper do: it resolves router hops to ASes (PyASN / Team Cymru
// equivalent), enriches them with organization metadata (PeeringDB
// equivalent), tags and strips IXP hops (CAIDA IXP dataset), infers the
// last-mile segment and its access type from the path shape, classifies
// the ISP–cloud interconnection (direct / one intermediate AS / public
// Internet / via IXP), and computes route pervasiveness — the fraction
// of on-path routers owned by the cloud provider (Fig 11).
package pipeline

import (
	"repro/internal/asn"
	"repro/internal/dataset"
	"repro/internal/netaddr"
	"repro/internal/world"
)

// Class is the interconnection classification derived from a path.
type Class uint8

// Interconnection classes, labelled as in Figure 10/12a/13a.
const (
	ClassUnknown   Class = iota
	ClassDirect          // ISP and cloud are adjacent
	ClassDirectIXP       // adjacent across an exchange fabric
	ClassPrivate         // exactly one intermediate AS (private interconnect)
	ClassPublic          // two or more intermediate ASes
)

// String returns the figure label.
func (c Class) String() string {
	switch c {
	case ClassDirect:
		return "direct"
	case ClassDirectIXP:
		return "1 IXP"
	case ClassPrivate:
		return "1 AS"
	case ClassPublic:
		return "2+ AS"
	default:
		return "?"
	}
}

// ProbeKind is the access type inferred from the path shape (§5): a
// private first hop implies a home router (WiFi), a direct first hop
// into the ISP implies cellular. Wired managed probes look identical to
// cellular on the wire; the platform field disambiguates them.
type ProbeKind uint8

// Inferred access kinds.
const (
	KindUnknown ProbeKind = iota
	KindHome
	KindCell
	KindWired
)

// String returns the paper's label.
func (k ProbeKind) String() string {
	switch k {
	case KindHome:
		return "home"
	case KindCell:
		return "cell"
	case KindWired:
		return "wired"
	default:
		return "?"
	}
}

// ASHop is one AS-level step of the resolved path.
type ASHop struct {
	ASN     asn.Number
	Name    string
	Type    asn.Type
	Routers int // responding routers attributed to this AS
}

// LastMile is the inferred access segment.
type LastMile struct {
	Kind ProbeKind
	// UserToISPms is the RTT of the first hop inside the serving ISP
	// (the USR-ISP segment).
	UserToISPms float64
	// RouterToISPms is the wired tail between home router and ISP
	// (RTR-ISP); zero when no private first hop was observed.
	RouterToISPms float64
	// ShareOfTotal is UserToISPms over the end-to-end RTT, in [0,1].
	ShareOfTotal float64
}

// Processed is the fully analyzed traceroute.
type Processed struct {
	Record *dataset.TracerouteRecord

	// ASPath is the AS-level path with IXPs removed, consecutive
	// duplicates collapsed, starting at the serving ISP.
	ASPath []ASHop
	// IXPs lists exchange ASNs seen on the path.
	IXPs []asn.Number
	// Class is the interconnection classification; ClassUnknown when
	// the trace never reached the provider network.
	Class Class
	// Intermediates counts ASes strictly between serving ISP and cloud.
	Intermediates int
	// LastMile is the inferred access segment.
	LastMile LastMile
	// Pervasiveness is provider-owned responding routers over all
	// responding public routers on the path.
	Pervasiveness float64
	// EndToEndRTTms is the RTT at the last responding hop.
	EndToEndRTTms float64
	// ReachedCloud reports whether any hop resolved into the provider's
	// network.
	ReachedCloud bool
	// NonMonotoneHops counts responding hops whose RTT is lower than an
	// earlier hop's — the path-inflation artifact the paper cites
	// (Fontugne et al.) as a reason to treat traceroute latencies as
	// best-case estimates.
	NonMonotoneHops int
	// HopCountries lists the geolocated country of each responding
	// public hop, in path order, when the processor has a Locator.
	// Entries the locator cannot resolve are empty strings.
	HopCountries []string
}

// HopLocator geolocates individual router addresses (the GeoIPLookup
// stage of §3.3; see internal/geoip and internal/hloc).
type HopLocator interface {
	LocateCountry(ip netaddr.IP) (string, bool)
}

// Processor resolves traceroutes against a world's registries.
type Processor struct {
	W *world.World
	// Locator, when set, annotates each processed trace with per-hop
	// countries. The paper geolocates hops but deliberately refrains
	// from routing-geography conclusions because databases are noisy —
	// the same caveat applies here, which is why this stage is opt-in.
	Locator HopLocator
}

// NewProcessor returns a processor over the given world.
func NewProcessor(w *world.World) *Processor { return &Processor{W: w} }

// Process analyzes one traceroute.
func (pr *Processor) Process(rec *dataset.TracerouteRecord) Processed {
	out := Processed{Record: rec, EndToEndRTTms: rec.RTTms()}
	providerAS := pr.providerASN(rec.Target.Provider)

	out.LastMile = pr.inferLastMile(rec, out.EndToEndRTTms)

	// Stage 1: hop → AS attribution.
	var path []ASHop
	providerRouters, publicRouters := 0, 0
	for _, h := range rec.Hops {
		if !h.Responded || h.IP.IsPrivate() {
			continue
		}
		a, ok := pr.W.Registry.ResolveIP(h.IP)
		if !ok {
			continue // unresolvable hop (the Team Cymru fallback missed too)
		}
		publicRouters++
		if a.Number == providerAS {
			providerRouters++
		}
		if pr.Locator != nil {
			cc, _ := pr.Locator.LocateCountry(h.IP)
			out.HopCountries = append(out.HopCountries, cc)
		}
		if a.Type == asn.TypeIXP {
			out.IXPs = append(out.IXPs, a.Number)
			continue // exchanges are stripped from the AS-level topology
		}
		if n := len(path); n > 0 && path[n-1].ASN == a.Number {
			path[n-1].Routers++
			continue
		}
		path = append(path, ASHop{ASN: a.Number, Name: a.Name, Type: a.Type, Routers: 1})
	}
	out.ASPath = path
	if publicRouters > 0 {
		out.Pervasiveness = float64(providerRouters) / float64(publicRouters)
	}
	maxSeen := 0.0
	for _, h := range rec.Hops {
		if !h.Responded {
			continue
		}
		if h.RTTms < maxSeen {
			out.NonMonotoneHops++
		} else {
			maxSeen = h.RTTms
		}
	}

	// Stage 2: interconnection classification (§6.1).
	ispIdx, cloudIdx := -1, -1
	for i, h := range path {
		if ispIdx < 0 && h.ASN == rec.VP.ISP {
			ispIdx = i
		}
		if h.ASN == providerAS {
			cloudIdx = i
			break
		}
	}
	if cloudIdx >= 0 {
		out.ReachedCloud = true
	}
	if ispIdx >= 0 && cloudIdx > ispIdx {
		out.Intermediates = cloudIdx - ispIdx - 1
		switch {
		case out.Intermediates == 0 && len(out.IXPs) > 0:
			out.Class = ClassDirectIXP
		case out.Intermediates == 0:
			out.Class = ClassDirect
		case out.Intermediates == 1:
			out.Class = ClassPrivate
		default:
			out.Class = ClassPublic
		}
	}
	return out
}

// inferLastMile applies the §5 methodology: the first hop inside the
// serving ISP carries the USR-ISP latency; a preceding private hop
// exposes the home split.
func (pr *Processor) inferLastMile(rec *dataset.TracerouteRecord, total float64) LastMile {
	lm := LastMile{}
	if len(rec.Hops) == 0 {
		return lm
	}
	privateRTT := -1.0
	for _, h := range rec.Hops {
		if !h.Responded {
			continue
		}
		if h.IP.IsPrivate() {
			if privateRTT < 0 {
				privateRTT = h.RTTms
			}
			continue
		}
		a, ok := pr.W.Registry.ResolveIP(h.IP)
		if !ok || a.Number != rec.VP.ISP {
			return lm // first public hop outside the serving ISP: no inference
		}
		lm.UserToISPms = h.RTTms
		if privateRTT >= 0 {
			lm.Kind = KindHome
			if d := h.RTTms - privateRTT; d > 0 {
				lm.RouterToISPms = d
			}
		} else if rec.VP.Platform == "atlas" {
			lm.Kind = KindWired
			lm.RouterToISPms = h.RTTms
		} else {
			lm.Kind = KindCell
		}
		if total > 0 {
			lm.ShareOfTotal = lm.UserToISPms / total
			if lm.ShareOfTotal > 1 {
				lm.ShareOfTotal = 1
			}
		}
		return lm
	}
	return lm
}

func (pr *Processor) providerASN(code string) asn.Number {
	if p, ok := pr.W.Inventory.Provider(code); ok {
		return p.ASN
	}
	return 0
}

// ProcessAll analyzes every traceroute in the store.
func (pr *Processor) ProcessAll(store *dataset.Store) []Processed {
	out := make([]Processed, 0, len(store.Traces))
	for i := range store.Traces {
		out = append(out, pr.Process(&store.Traces[i]))
	}
	return out
}
