package pipeline

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/dataset"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/netsim"
	"repro/internal/probes"
	"repro/internal/world"
)

var (
	testW   = world.MustBuild(world.Config{Seed: 1})
	testSim = netsim.New(testW)
	scFleet = probes.GenerateSpeedchecker(testW, probes.Config{Seed: 1, Scale: 0.02})
	proc    = NewProcessor(testW)
)

func regionOf(t *testing.T, provider, city string) *cloud.Region {
	t.Helper()
	for _, r := range testW.Inventory.RegionsOf(provider) {
		if r.City == city {
			return r
		}
	}
	t.Fatalf("no %s region in %s", provider, city)
	return nil
}

func probeOnISP(t *testing.T, country string, ispASN uint32) *probes.Probe {
	t.Helper()
	for _, p := range scFleet.InCountry(country) {
		if uint32(p.ISP.Number) == ispASN {
			return p
		}
	}
	t.Skipf("no probe on AS%d in %s at this scale", ispASN, country)
	return nil
}

func TestClassificationMatchesGroundTruth(t *testing.T) {
	// Over many traces the derived classes must agree with the builder's
	// intent except where capture artifacts (unresponsive hops) hide the
	// carrier — the §6.1 caveat.
	match, total := 0, 0
	for _, cc := range []string{"DE", "JP", "US", "BR", "EG"} {
		ps := scFleet.InCountry(cc)
		if len(ps) > 6 {
			ps = ps[:6]
		}
		for _, p := range ps {
			for _, r := range testW.Inventory.Regions()[:40] {
				tr := testSim.Traceroute(p, r, 0)
				got := proc.Process(&tr)
				if !got.ReachedCloud {
					continue
				}
				want := testW.Interconnect(p.ISP.Number, r.Provider.Code)
				total++
				switch want {
				case world.IcDirect:
					if got.Class == ClassDirect {
						match++
					}
				case world.IcDirectIXP:
					if got.Class == ClassDirectIXP || got.Class == ClassDirect {
						match++ // IXP hop only sometimes answers
					}
				case world.IcPrivateTransit:
					if got.Class == ClassPrivate {
						match++
					}
				case world.IcPublic:
					if got.Class == ClassPublic {
						match++
					}
				}
			}
		}
	}
	if total < 500 {
		t.Fatalf("too few classified traces: %d", total)
	}
	if frac := float64(match) / float64(total); frac < 0.75 {
		t.Errorf("classification agreement = %.2f (%d/%d), want ≥ 0.75", frac, match, total)
	}
}

func TestDirectClassExact(t *testing.T) {
	p := probeOnISP(t, "DE", 3320)
	r := regionOf(t, "AMZN", "Frankfurt")
	for i := 0; i < 20; i++ {
		tr := testSim.Traceroute(p, r, i)
		got := proc.Process(&tr)
		if !got.ReachedCloud {
			continue
		}
		if got.Class != ClassDirect {
			t.Errorf("trace %d: DT→AMZN class = %v, want direct", i, got.Class)
		}
		if got.Intermediates != 0 {
			t.Errorf("trace %d: %d intermediates on a direct path", i, got.Intermediates)
		}
	}
}

func TestPrivateTransitShowsCarrier(t *testing.T) {
	p := probeOnISP(t, "JP", 4713) // NTT OCN → Amazon is private transit
	r := regionOf(t, "AMZN", "Tokyo")
	sawCarrier := false
	for i := 0; i < 30; i++ {
		tr := testSim.Traceroute(p, r, i)
		got := proc.Process(&tr)
		if got.Class != ClassPrivate {
			continue
		}
		for _, h := range got.ASPath {
			if h.ASN == 2914 { // NTT GIN hauls in-country traffic (§6.2)
				sawCarrier = true
			}
		}
	}
	if !sawCarrier {
		t.Error("never observed NTT AS2914 as the private-transit carrier")
	}
}

func TestIXPTaggedAndStripped(t *testing.T) {
	p := probeOnISP(t, "DE", 3320)
	r := regionOf(t, "IBM", "Frankfurt") // DT→IBM is direct-via-IXP
	sawIXPClass := false
	for i := 0; i < 40; i++ {
		tr := testSim.Traceroute(p, r, i)
		got := proc.Process(&tr)
		for _, h := range got.ASPath {
			if _, isIXP := testW.IXPByASN(h.ASN); isIXP {
				t.Fatal("IXP left inside the AS-level path")
			}
		}
		if got.Class == ClassDirectIXP {
			sawIXPClass = true
			if len(got.IXPs) == 0 {
				t.Fatal("direct-via-IXP class without a tagged IXP")
			}
		}
	}
	if !sawIXPClass {
		t.Error("DT→IBM never classified as via-IXP")
	}
}

func TestLastMileInference(t *testing.T) {
	r := regionOf(t, "AMZN", "Frankfurt")
	kinds := map[ProbeKind]int{}
	for _, p := range scFleet.InCountry("DE") {
		for i := 0; i < 4; i++ {
			tr := testSim.Traceroute(p, r, i)
			got := proc.Process(&tr)
			kinds[got.LastMile.Kind]++
			if got.LastMile.Kind == KindUnknown {
				continue
			}
			if got.LastMile.UserToISPms <= 0 {
				t.Fatal("inferred last-mile without latency")
			}
			if got.LastMile.ShareOfTotal < 0 || got.LastMile.ShareOfTotal > 1 {
				t.Fatalf("share out of range: %v", got.LastMile.ShareOfTotal)
			}
			if got.LastMile.Kind == KindHome && got.LastMile.RouterToISPms >= got.LastMile.UserToISPms {
				t.Fatal("RTR-ISP must be a strict part of USR-ISP")
			}
		}
	}
	if kinds[KindHome] == 0 || kinds[KindCell] == 0 {
		t.Errorf("kind inference degenerate: %v", kinds)
	}
	// WiFi probes should mostly classify as home, cellular as cell —
	// with some artifact-driven crossover (§5 caveats).
	var homeRight, homeTotal int
	for _, p := range scFleet.InCountry("DE") {
		if p.Access != lastmile.WiFi {
			continue
		}
		tr := testSim.Traceroute(p, r, 0)
		got := proc.Process(&tr)
		if got.LastMile.Kind == KindUnknown {
			continue
		}
		homeTotal++
		if got.LastMile.Kind == KindHome {
			homeRight++
		}
	}
	if homeTotal > 10 && float64(homeRight)/float64(homeTotal) < 0.8 {
		t.Errorf("WiFi probes classified home only %d/%d", homeRight, homeTotal)
	}
}

func TestAtlasLastMileIsWired(t *testing.T) {
	at := probes.GenerateAtlas(testW, probes.Config{Seed: 1, Scale: 0.3})
	r := regionOf(t, "AMZN", "Frankfurt")
	ps := at.InCountry("DE")
	if len(ps) == 0 {
		t.Skip("no DE Atlas probes at this scale")
	}
	tr := testSim.Traceroute(ps[0], r, 0)
	got := proc.Process(&tr)
	if got.LastMile.Kind != KindWired {
		t.Errorf("Atlas probe inferred as %v", got.LastMile.Kind)
	}
}

func TestPervasivenessOrdering(t *testing.T) {
	p := scFleet.InCountry("DE")[0]
	gcp := regionOf(t, "GCP", "Frankfurt")
	vltr := regionOf(t, "VLTR", "Frankfurt")
	avg := func(r *cloud.Region) float64 {
		var sum float64
		n := 0
		for i := 0; i < 30; i++ {
			tr := testSim.Traceroute(p, r, i)
			got := proc.Process(&tr)
			if got.ReachedCloud {
				sum += got.Pervasiveness
				n++
			}
		}
		return sum / float64(n)
	}
	g, v := avg(gcp), avg(vltr)
	if g <= v {
		t.Errorf("GCP pervasiveness %.2f should exceed Vultr %.2f", g, v)
	}
}

func TestProcessAllAndDegenerates(t *testing.T) {
	p := scFleet.InCountry("FR")[0]
	r := regionOf(t, "GCP", "Frankfurt")
	store := &dataset.Store{}
	for i := 0; i < 5; i++ {
		tr := testSim.Traceroute(p, r, i)
		store.AddTrace(tr)
	}
	out := proc.ProcessAll(store)
	if len(out) != 5 {
		t.Fatalf("ProcessAll returned %d", len(out))
	}
	// Degenerate: empty trace.
	empty := dataset.TracerouteRecord{VP: store.Traces[0].VP, Target: store.Traces[0].Target}
	got := proc.Process(&empty)
	if got.Class != ClassUnknown || got.ReachedCloud || got.LastMile.Kind != KindUnknown {
		t.Errorf("empty trace should be fully unknown: %+v", got)
	}
	// Degenerate: first public hop outside the serving ISP.
	odd := empty
	odd.Hops = []dataset.Hop{{TTL: 1, IP: netaddr.MustParseIP("5.0.0.17"), RTTms: 10, Responded: true}}
	got = proc.Process(&odd)
	if got.LastMile.Kind != KindUnknown {
		t.Errorf("foreign first hop should not infer a last mile, got %v", got.LastMile.Kind)
	}
}

type fixedLocator map[uint32]string

func (f fixedLocator) LocateCountry(ip netaddr.IP) (string, bool) {
	cc, ok := f[uint32(ip)]
	return cc, ok
}

func TestHopGeolocationOptIn(t *testing.T) {
	p := scFleet.InCountry("DE")[0]
	r := regionOf(t, "GCP", "Frankfurt")
	tr := testSim.Traceroute(p, r, 0)

	// Without a locator: no annotations.
	plain := proc.Process(&tr)
	if plain.HopCountries != nil {
		t.Errorf("locator-less processing annotated hops: %v", plain.HopCountries)
	}

	// With a locator that knows every responding public hop.
	loc := fixedLocator{}
	publicHops := 0
	for _, h := range tr.Hops {
		if h.Responded && !h.IP.IsPrivate() {
			loc[uint32(h.IP)] = "DE"
			publicHops++
		}
	}
	annotating := &Processor{W: testW, Locator: loc}
	got := annotating.Process(&tr)
	if len(got.HopCountries) != publicHops {
		t.Fatalf("annotated %d of %d public hops", len(got.HopCountries), publicHops)
	}
	for i, cc := range got.HopCountries {
		if cc != "DE" {
			t.Errorf("hop %d annotated %q", i, cc)
		}
	}
	// Unknown hops annotate as empty strings, preserving positions.
	empty := &Processor{W: testW, Locator: fixedLocator{}}
	got = empty.Process(&tr)
	if len(got.HopCountries) != publicHops {
		t.Fatalf("unknown locator annotated %d hops", len(got.HopCountries))
	}
	for _, cc := range got.HopCountries {
		if cc != "" {
			t.Errorf("unknown hop annotated %q", cc)
		}
	}
	// Classification is unaffected by annotation.
	if got.Class != plain.Class || got.Intermediates != plain.Intermediates {
		t.Error("annotation changed classification")
	}
}
