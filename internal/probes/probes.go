// Package probes synthesizes the study's two vantage-point fleets:
//
//   - Speedchecker: ~115,000 Android probes on end-user devices with a
//     wireless last-mile, distributed per Figure 1b (EU 72K, AS 31K,
//     NA 5.4K, AF 4K, SA 2.8K, OC 351), transient across days;
//   - RIPE Atlas: ~8,500 mostly wired probes in managed networks,
//     distributed per Figure 2 (EU 5574, AS 1083, NA 866, AF 261,
//     SA 216, OC 289), biased towards datacenter-hosting countries.
//
// The fleets reproduce the deployment skews §4.2 and §5 hinge on:
// Speedchecker's African probes sit mostly in the north on cellular
// links while its few home probes sit in the south; Atlas probes
// cluster near the South African datacenters; more than 80% of
// Speedchecker's South American probes are Brazilian versus roughly
// 40% for Atlas.
package probes

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/world"
)

// Platform identifies the measurement platform a probe belongs to.
type Platform uint8

// Platforms.
const (
	Speedchecker Platform = iota
	RIPEAtlas
)

// String returns the platform name.
func (p Platform) String() string {
	if p == RIPEAtlas {
		return "atlas"
	}
	return "speedchecker"
}

// Probe is one vantage point.
type Probe struct {
	ID        string
	Platform  Platform
	Country   string
	Continent geo.Continent
	Loc       geo.Point
	ISP       *asn.AS
	Access    lastmile.Access
	PublicIP  netaddr.IP
	// Availability is the probability the probe is connected when a
	// measurement cycle polls it; Speedchecker Android probes are
	// transient (§3.3), Atlas probes are always on.
	Availability float64
	// Managed marks probes hosted in managed (non-residential)
	// networks — the RIPE Atlas deployment bias (§4.2).
	Managed bool
}

// Fleet is a set of probes with country and continent indexes.
type Fleet struct {
	Platform  Platform
	probes    []*Probe
	byCountry map[string][]*Probe
}

// All returns every probe. Callers must not mutate the slice.
func (f *Fleet) All() []*Probe { return f.probes }

// Len returns the fleet size.
func (f *Fleet) Len() int { return len(f.probes) }

// InCountry returns the probes homed in the given country.
func (f *Fleet) InCountry(code string) []*Probe { return f.byCountry[code] }

// Countries returns the covered country codes, sorted.
func (f *Fleet) Countries() []string {
	out := make([]string, 0, len(f.byCountry))
	for c := range f.byCountry {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// InContinent returns the probes on the given continent.
func (f *Fleet) InContinent(cont geo.Continent) []*Probe {
	var out []*Probe
	for _, p := range f.probes {
		if p.Continent == cont {
			out = append(out, p)
		}
	}
	return out
}

// CountByContinent returns per-continent probe counts.
func (f *Fleet) CountByContinent() map[geo.Continent]int {
	out := make(map[geo.Continent]int)
	for _, p := range f.probes {
		out[p.Continent]++
	}
	return out
}

// ISPNumbers returns the set of serving-ISP ASNs hosting at least one
// probe — the "ASes hosting vantage points" statistic of §3.2.
func (f *Fleet) ISPNumbers() map[asn.Number]bool {
	out := make(map[asn.Number]bool)
	for _, p := range f.probes {
		out[p.ISP.Number] = true
	}
	return out
}

// Config scales and seeds fleet generation.
type Config struct {
	// Seed drives placement; the same seed yields an identical fleet.
	Seed int64
	// Scale multiplies the paper's fleet sizes (default 1.0). Use a
	// small scale in tests; per-country minimums keep coverage intact.
	Scale float64
	// UniformWeights is an ablation switch: probes spread evenly over a
	// continent's countries, erasing the deployment skews (Brazil-heavy
	// South America, north-African cellular bias) that drive §4.2.
	UniformWeights bool
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	return c
}

// speedcheckerTotals is Figure 1b.
var speedcheckerTotals = map[geo.Continent]int{
	geo.EU: 72000, geo.AS: 31000, geo.NA: 5400,
	geo.AF: 4000, geo.SA: 2800, geo.OC: 351,
}

// atlasTotals is Figure 2.
var atlasTotals = map[geo.Continent]int{
	geo.EU: 5574, geo.AS: 1083, geo.NA: 866,
	geo.AF: 261, geo.SA: 216, geo.OC: 289,
}

// scWeightOverride boosts or damps Speedchecker country weights to
// match the paper's observations: Germany, Great Britain, Iran and
// Japan are the densest (5,000+ probes); China is barely covered; more
// than 80% of the South American probes are Brazilian.
var scWeightOverride = map[string]float64{
	"DE": 3.0, "GB": 3.5, "IR": 6.0, "JP": 4.0,
	"CN": 0.02,
	"BR": 4.5,
	// Bahrain punches above its population: the A.4 case study needs
	// measurable volume from all four named ISPs.
	"BH": 6.0,
}

// atlasWeightOverride reproduces the Atlas deployment bias: probes
// cluster in the south of Africa near the datacenters.
var atlasWeightOverride = map[string]float64{
	"ZA": 12.0,
	"CN": 0.05,
	// North American Atlas probes overwhelmingly sit in the US and
	// Canada, not in Central America or the Caribbean.
	"US": 3.0,
	"CA": 2.0,
}

// scApportionment computes the Speedchecker fleet's per-country probe
// allocation in generation order: GenerateSpeedchecker materializes it,
// CountryQuotas exposes it without building a fleet.
func scApportionment(cfg Config) []countryCount {
	weightFn, overrides := identity, scWeightOverride
	if cfg.UniformWeights {
		weightFn, overrides = uniform, nil
	}
	var out []countryCount
	for _, cont := range geo.Continents() {
		total := int(float64(speedcheckerTotals[cont]) * cfg.Scale)
		out = append(out, apportion(cont, total, overrides, weightFn)...)
	}
	return out
}

// CountryQuotas returns the per-country Speedchecker probe counts the
// generator would allocate under cfg, without synthesizing a world or
// building probes. The cluster coordinator weighs its country shards
// with it so every lease carries comparable work.
func CountryQuotas(cfg Config) map[string]int {
	cfg = cfg.withDefaults()
	out := make(map[string]int)
	for _, cc := range scApportionment(cfg) {
		out[cc.country.Code] = cc.n
	}
	return out
}

// GenerateSpeedchecker builds the wireless end-user fleet.
func GenerateSpeedchecker(w *world.World, cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5c5c))
	f := &Fleet{Platform: Speedchecker, byCountry: make(map[string][]*Probe)}
	for _, cc := range scApportionment(cfg) {
		for i := 0; i < cc.n; i++ {
			f.add(makeProbe(w, rng, Speedchecker, cc.country, i))
		}
	}
	return f
}

// GenerateAtlas builds the wired managed fleet.
func GenerateAtlas(w *world.World, cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xa71a5))
	dcCountries := make(map[string]bool)
	for _, r := range w.Inventory.Regions() {
		dcCountries[r.Country] = true
	}
	weight := func(c geo.Country) float64 {
		// Atlas spreads more evenly (network enthusiasts, not user
		// mass) but clusters where infrastructure lives.
		v := sqrtWeight(c)
		if dcCountries[c.Code] {
			v *= 1.6
		}
		return v
	}
	f := &Fleet{Platform: RIPEAtlas, byCountry: make(map[string][]*Probe)}
	overrides := atlasWeightOverride
	if cfg.UniformWeights {
		weight, overrides = uniform, nil
	}
	for _, cont := range geo.Continents() {
		total := int(float64(atlasTotals[cont]) * cfg.Scale)
		counts := apportion(cont, total, overrides, weight)
		for _, cc := range counts {
			for i := 0; i < cc.n; i++ {
				f.add(makeProbe(w, rng, RIPEAtlas, cc.country, i))
			}
		}
	}
	return f
}

func (f *Fleet) add(p *Probe) {
	f.probes = append(f.probes, p)
	f.byCountry[p.Country] = append(f.byCountry[p.Country], p)
}

func identity(c geo.Country) float64 { return c.UserWeight }

func uniform(geo.Country) float64 { return 1 }

func sqrtWeight(c geo.Country) float64 { return math.Sqrt(c.UserWeight) }

type countryCount struct {
	country geo.Country
	n       int
}

// apportion distributes total probes over a continent's countries
// proportionally to weight (with overrides), guaranteeing at least two
// probes per covered country, using largest-remainder rounding.
func apportion(cont geo.Continent, total int, override map[string]float64, weight func(geo.Country) float64) []countryCount {
	countries := geo.CountriesIn(cont)
	if total < 2*len(countries) {
		total = 2 * len(countries)
	}
	var sum float64
	ws := make([]float64, len(countries))
	for i, c := range countries {
		w := weight(c)
		if o, ok := override[c.Code]; ok {
			w *= o
		}
		ws[i] = w
		sum += w
	}
	type alloc struct {
		i    int
		frac float64
	}
	counts := make([]countryCount, len(countries))
	used := 0
	var rem []alloc
	for i, c := range countries {
		exact := float64(total) * ws[i] / sum
		n := int(exact)
		if n < 2 {
			n = 2
		}
		counts[i] = countryCount{country: c, n: n}
		used += n
		rem = append(rem, alloc{i, exact - float64(int(exact))})
	}
	sort.Slice(rem, func(a, b int) bool {
		if rem[a].frac != rem[b].frac {
			return rem[a].frac > rem[b].frac
		}
		// Deterministic tiebreak: sort.Slice is unstable, and equal
		// fractions are common; fall back to country order.
		return rem[a].i < rem[b].i
	})
	for k := 0; used < total && k < len(rem); k++ {
		counts[rem[k].i].n++
		used++
	}
	return counts
}

func makeProbe(w *world.World, rng *rand.Rand, plat Platform, country geo.Country, idx int) *Probe {
	isps := w.AccessISPs(country.Code)
	isp := pickISP(isps, rng)
	loc := jitterLoc(country.Centroid, rng)
	p := &Probe{
		ID:        fmt.Sprintf("%s-%s-%05d", plat, country.Code, idx),
		Platform:  plat,
		Country:   country.Code,
		Continent: country.Continent,
		Loc:       loc,
		ISP:       isp,
		PublicIP:  w.ProbeIP(isp.Number, idx),
	}
	if plat == RIPEAtlas {
		p.Access = lastmile.Wired
		p.Availability = 1.0
		p.Managed = rng.Float64() < 0.8
		return p
	}
	p.Access = speedcheckerAccess(country, loc, rng)
	// Android probes are transient: availability clusters around 25%
	// (≈29K of 115K connected at any time, §3.2).
	p.Availability = 0.10 + rng.Float64()*0.30
	return p
}

// speedcheckerAccess draws the access technology. Globally the fleet is
// a rough 55/45 WiFi/cellular split; in Africa home probes concentrate
// in the south while the northern majority is cellular (§5, A.5).
func speedcheckerAccess(country geo.Country, loc geo.Point, rng *rand.Rand) lastmile.Access {
	wifiProb := 0.55
	if country.Continent == geo.AF {
		if country.Centroid.Lat < -15 { // southern Africa
			wifiProb = 0.70
		} else {
			wifiProb = 0.22
		}
	}
	if rng.Float64() < wifiProb {
		return lastmile.WiFi
	}
	return lastmile.Cellular
}

// pickISP samples a serving ISP proportionally to its user population.
func pickISP(isps []*asn.AS, rng *rand.Rand) *asn.AS {
	var sum float64
	for _, a := range isps {
		sum += a.Users
	}
	r := rng.Float64() * sum
	for _, a := range isps {
		r -= a.Users
		if r <= 0 {
			return a
		}
	}
	return isps[len(isps)-1]
}

// jitterLoc scatters a probe around the population centroid.
func jitterLoc(center geo.Point, rng *rand.Rand) geo.Point {
	lat := center.Lat + rng.NormFloat64()*1.5
	lon := center.Lon + rng.NormFloat64()*1.5
	if lat > 89 {
		lat = 89
	}
	if lat < -89 {
		lat = -89
	}
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return geo.Point{Lat: lat, Lon: lon}
}
