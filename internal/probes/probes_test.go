package probes

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/world"
)

var testW = world.MustBuild(world.Config{Seed: 1})

func TestSpeedcheckerContinentTotals(t *testing.T) {
	f := GenerateSpeedchecker(testW, Config{Seed: 1, Scale: 0.05})
	counts := f.CountByContinent()
	// EU must dominate, AS second (Fig 1b ordering), with per-country
	// minimums allowed to inflate the small continents.
	if counts[geo.EU] < counts[geo.AS] || counts[geo.AS] < counts[geo.NA] {
		t.Errorf("continent ordering wrong: %v", counts)
	}
	if f.Len() < 5000 {
		t.Errorf("fleet too small at scale 0.05: %d", f.Len())
	}
	if f.Platform != Speedchecker {
		t.Error("platform mislabelled")
	}
}

func TestSpeedcheckerFullScaleTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet in -short mode")
	}
	f := GenerateSpeedchecker(testW, Config{Seed: 1})
	if f.Len() < 110000 || f.Len() > 121000 {
		t.Errorf("full fleet size = %d, want ≈115,500", f.Len())
	}
	counts := f.CountByContinent()
	if counts[geo.EU] < 68000 || counts[geo.EU] > 76000 {
		t.Errorf("EU probes = %d, want ≈72,000", counts[geo.EU])
	}
	// Densest countries: DE, GB, IR, JP with 5000+ (§3.2).
	for _, cc := range []string{"DE", "GB", "IR", "JP"} {
		if n := len(f.InCountry(cc)); n < 5000 {
			t.Errorf("%s probes = %d, want 5000+", cc, n)
		}
	}
	// China is barely covered (§6.1 explains Alibaba's public paths
	// through exactly this gap).
	if n := len(f.InCountry("CN")); n > 500 {
		t.Errorf("CN probes = %d, want sparse coverage", n)
	}
}

func TestSouthAmericaSkew(t *testing.T) {
	sc := GenerateSpeedchecker(testW, Config{Seed: 1, Scale: 0.2})
	at := GenerateAtlas(testW, Config{Seed: 1})
	scSA := sc.InContinent(geo.SA)
	atSA := at.InContinent(geo.SA)
	scBR := float64(len(sc.InCountry("BR"))) / float64(len(scSA))
	atBR := float64(len(at.InCountry("BR"))) / float64(len(atSA))
	if scBR < 0.7 {
		t.Errorf("Speedchecker BR share = %.2f, want > 0.7 (paper: >80%%)", scBR)
	}
	if atBR > 0.55 || atBR < 0.2 {
		t.Errorf("Atlas BR share = %.2f, want ≈0.4", atBR)
	}
	if scBR <= atBR {
		t.Error("Speedchecker must be more Brazil-skewed than Atlas")
	}
}

func TestAfricaDeploymentBias(t *testing.T) {
	sc := GenerateSpeedchecker(testW, Config{Seed: 1, Scale: 0.5})
	at := GenerateAtlas(testW, Config{Seed: 1})
	// Atlas Africa clusters in the south near the DCs.
	atAF := at.InContinent(geo.AF)
	za := float64(len(at.InCountry("ZA"))) / float64(len(atAF))
	if za < 0.4 {
		t.Errorf("Atlas ZA share = %.2f, want dominant", za)
	}
	// Speedchecker home (WiFi) probes in Africa sit mostly in the
	// south; cellular probes mostly in the north (§5).
	var homeSouth, homeTotal, cellNorth, cellTotal int
	for _, p := range sc.InContinent(geo.AF) {
		c, _ := geo.CountryByCode(p.Country)
		south := c.Centroid.Lat < -15
		switch p.Access {
		case lastmile.WiFi:
			homeTotal++
			if south {
				homeSouth++
			}
		case lastmile.Cellular:
			cellTotal++
			if !south {
				cellNorth++
			}
		}
	}
	if homeTotal == 0 || cellTotal == 0 {
		t.Fatal("no African probes generated")
	}
	if frac := float64(cellNorth) / float64(cellTotal); frac < 0.6 {
		t.Errorf("cellular-in-north share = %.2f, want ≈0.75", frac)
	}
}

func TestAtlasProbesAreWiredAndManaged(t *testing.T) {
	at := GenerateAtlas(testW, Config{Seed: 1})
	if at.Len() < 8000 || at.Len() > 9500 {
		t.Errorf("Atlas fleet size = %d, want ≈8,300", at.Len())
	}
	managed := 0
	for _, p := range at.All() {
		if p.Access != lastmile.Wired {
			t.Fatalf("Atlas probe %s has access %v", p.ID, p.Access)
		}
		if p.Availability != 1.0 {
			t.Fatalf("Atlas probe %s transient", p.ID)
		}
		if p.Managed {
			managed++
		}
	}
	if frac := float64(managed) / float64(at.Len()); frac < 0.7 {
		t.Errorf("managed share = %.2f, want ≈0.8", frac)
	}
}

func TestSpeedcheckerWirelessAndTransient(t *testing.T) {
	sc := GenerateSpeedchecker(testW, Config{Seed: 1, Scale: 0.02})
	var availSum float64
	for _, p := range sc.All() {
		if !p.Access.Wireless() {
			t.Fatalf("Speedchecker probe %s is wired", p.ID)
		}
		if p.Availability <= 0 || p.Availability > 0.5 {
			t.Fatalf("probe %s availability %v out of transient band", p.ID, p.Availability)
		}
		availSum += p.Availability
	}
	mean := availSum / float64(sc.Len())
	if mean < 0.2 || mean > 0.3 {
		t.Errorf("mean availability = %.2f, want ≈0.25 (29K/115K online)", mean)
	}
}

func TestProbesWellFormed(t *testing.T) {
	for _, f := range []*Fleet{
		GenerateSpeedchecker(testW, Config{Seed: 1, Scale: 0.02}),
		GenerateAtlas(testW, Config{Seed: 1, Scale: 0.3}),
	} {
		ids := map[string]bool{}
		for _, p := range f.All() {
			if ids[p.ID] {
				t.Fatalf("duplicate probe ID %s", p.ID)
			}
			ids[p.ID] = true
			if !p.Loc.Valid() {
				t.Errorf("%s: invalid location", p.ID)
			}
			if p.ISP == nil || p.ISP.Country != p.Country {
				t.Errorf("%s: ISP mismatch", p.ID)
			}
			if p.PublicIP == 0 {
				t.Errorf("%s: no public IP", p.ID)
			}
			if got, ok := testW.Registry.ResolveIP(p.PublicIP); !ok || got.Number != p.ISP.Number {
				t.Errorf("%s: public IP does not resolve to its ISP", p.ID)
			}
			c, _ := geo.CountryByCode(p.Country)
			if geo.DistanceKm(p.Loc, c.Centroid) > 900 {
				t.Errorf("%s: %0.f km from country centroid", p.ID, geo.DistanceKm(p.Loc, c.Centroid))
			}
		}
	}
}

func TestFleetIndexes(t *testing.T) {
	f := GenerateSpeedchecker(testW, Config{Seed: 1, Scale: 0.02})
	if len(f.Countries()) < 100 {
		t.Errorf("coverage = %d countries, want 140-ish", len(f.Countries()))
	}
	total := 0
	for _, cc := range f.Countries() {
		n := len(f.InCountry(cc))
		if n < 2 {
			t.Errorf("%s: %d probes, want ≥2 minimum", cc, n)
		}
		total += n
	}
	if total != f.Len() {
		t.Errorf("country index covers %d of %d", total, f.Len())
	}
	if len(f.ISPNumbers()) < 100 {
		t.Errorf("ISP coverage = %d ASes", len(f.ISPNumbers()))
	}
}

func TestUserPopulationCoverageGap(t *testing.T) {
	// §3.2: Speedchecker ISPs cover ≈95.6% of Internet users, Atlas
	// ≈69.2%. At small scale the gap narrows, so assert ordering and a
	// high Speedchecker bound only.
	sc := GenerateSpeedchecker(testW, Config{Seed: 1, Scale: 0.3})
	at := GenerateAtlas(testW, Config{Seed: 1})
	scCov := testW.UserCoverageOf(sc.ISPNumbers())
	atCov := testW.UserCoverageOf(at.ISPNumbers())
	if scCov < 0.85 {
		t.Errorf("Speedchecker coverage = %.3f, want ≥0.85", scCov)
	}
	if scCov <= atCov {
		t.Errorf("Speedchecker coverage (%.3f) must exceed Atlas (%.3f)", scCov, atCov)
	}
}

func TestDeterminism(t *testing.T) {
	a := GenerateSpeedchecker(testW, Config{Seed: 7, Scale: 0.02})
	b := GenerateSpeedchecker(testW, Config{Seed: 7, Scale: 0.02})
	if a.Len() != b.Len() {
		t.Fatal("sizes differ")
	}
	for i := range a.All() {
		pa, pb := a.All()[i], b.All()[i]
		if pa.ID != pb.ID || pa.Loc != pb.Loc || pa.ISP.Number != pb.ISP.Number ||
			pa.Access != pb.Access || pa.Availability != pb.Availability {
			t.Fatalf("probe %d differs across identical seeds", i)
		}
	}
}

func TestPlatformString(t *testing.T) {
	if Speedchecker.String() != "speedchecker" || RIPEAtlas.String() != "atlas" {
		t.Error("platform names wrong")
	}
}
