// Package report renders analysis results as plain-text tables and
// series — the same rows the paper's tables and figures report, in a
// form that diffs cleanly across runs. Every renderer writes to an
// io.Writer so the CLI, the benchmark harness and EXPERIMENTS.md share
// one formatting path.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/stats"
)

// Table1 renders the datacenter inventory (Table 1).
func Table1(w io.Writer, inv *cloud.Inventory) {
	fmt.Fprintf(w, "Table 1: datacenters per continent and backbone class\n")
	fmt.Fprintf(w, "%-22s %4s %4s %4s %4s %4s %4s %6s  %s\n",
		"provider", "EU", "NA", "SA", "AS", "AF", "OC", "total", "backbone")
	counts := inv.CountByContinent()
	conts := []geo.Continent{geo.EU, geo.NA, geo.SA, geo.AS, geo.AF, geo.OC}
	grand := 0
	for _, p := range inv.Providers() {
		row := counts[p.Code]
		total := 0
		fmt.Fprintf(w, "%-22s", p.Name)
		for _, c := range conts {
			fmt.Fprintf(w, " %4d", row[c])
			total += row[c]
		}
		grand += total
		fmt.Fprintf(w, " %6d  %s\n", total, p.Backbone)
	}
	fmt.Fprintf(w, "%-22s %36d\n", "total", grand)
}

// Density renders a fleet distribution (Figures 1b, 2, 14).
func Density(w io.Writer, d analysis.FleetDensity, topN int) {
	fmt.Fprintf(w, "Probe distribution (%s): %d probes\n", d.Platform, d.Total)
	for _, cont := range geo.Continents() {
		fmt.Fprintf(w, "  %s %d", cont, d.PerContinent[cont])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  densest countries:")
	for i, cd := range d.PerCountry {
		if i >= topN {
			break
		}
		fmt.Fprintf(w, " %s:%d", cd.Country, cd.Probes)
	}
	fmt.Fprintln(w)
}

// GeoDensities renders the §3.2 coverage comparison.
func GeoDensities(w io.Writer, gds []analysis.GeoDensity) {
	fmt.Fprintf(w, "geoDensity (probes per M km²): %-4s %10s %10s %8s %10s\n",
		"cont", "sc", "atlas", "ratio", "dc/Mkm2")
	for _, g := range gds {
		fmt.Fprintf(w, "%31s %-4s %10.0f %10.0f %7.1fx %10.2f\n",
			"", g.Continent, g.SCPerMKm2, g.AtlasPerMKm2, g.Ratio, g.DCsPerMKm2)
	}
}

// LatencyMap renders the Figure 3 world map as per-country rows.
func LatencyMap(w io.Writer, entries []analysis.CountryLatency) {
	fmt.Fprintf(w, "Figure 3: median RTT to the closest in-continent datacenter\n")
	fmt.Fprintf(w, "%-4s %-4s %10s %16s %12s %8s\n", "cc", "cont", "median ms", "95%% CI", "band", "samples")
	for _, e := range entries {
		fmt.Fprintf(w, "%-4s %-4s %10.1f [%6.1f,%6.1f] %12s %8d\n",
			e.Country, e.Continent, e.MedianMs, e.CILowMs, e.CIHighMs, e.Band, e.Samples)
	}
	s := analysis.Thresholds(entries)
	fmt.Fprintf(w, "takeaway: %d countries; <MTP %d, <HPL %d, <HRT %d\n",
		s.Countries, s.UnderMTP, s.UnderHPL, s.UnderHRT)
}

// ContinentCDFs renders Figure 4: per-continent threshold attainment
// plus a sampled CDF curve.
func ContinentCDFs(w io.Writer, dists []analysis.ContinentDistribution, points int) {
	fmt.Fprintf(w, "Figure 4: RTT distribution to the nearest datacenter per continent\n")
	fmt.Fprintf(w, "%-4s %8s %8s %8s %8s\n", "cont", "n", "<MTP", "<HPL", "<HRT")
	for _, d := range dists {
		fmt.Fprintf(w, "%-4s %8d %7.1f%% %7.1f%% %7.1f%%\n",
			d.Continent, d.N, 100*d.UnderMTP, 100*d.UnderHPL, 100*d.UnderHRT)
	}
	for _, d := range dists {
		fmt.Fprintf(w, "  %s:", d.Continent)
		for _, xy := range d.CDF.Series(points) {
			fmt.Fprintf(w, " (%.0f,%.2f)", xy[0], xy[1])
		}
		fmt.Fprintln(w)
	}
	// ASCII rendition: one bar per continent at the HPL threshold.
	for _, d := range dists {
		fmt.Fprintf(w, "  %-4s <HPL %s %.0f%%\n", d.Continent, bar(d.UnderHPL, 30), 100*d.UnderHPL)
	}
}

// bar renders a fraction as a fixed-width ASCII bar.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}

// PlatformDiffs renders Figure 5.
func PlatformDiffs(w io.Writer, diffs []analysis.PlatformDiff) {
	fmt.Fprintf(w, "Figure 5: Speedchecker − Atlas latency differences (negative ⇒ Speedchecker faster)\n")
	fmt.Fprintf(w, "%-4s %10s %10s %10s %14s\n", "cont", "p10 ms", "p50 ms", "p90 ms", "atlas faster")
	for _, d := range diffs {
		q10, _ := stats.Quantile(d.Diffs, 0.10)
		q50, _ := stats.Quantile(d.Diffs, 0.50)
		q90, _ := stats.Quantile(d.Diffs, 0.90)
		fmt.Fprintf(w, "%-4s %10.1f %10.1f %10.1f %13.0f%%\n",
			d.Continent, q10, q50, q90, 100*d.AtlasFasterShare)
	}
}

// InterContinental renders Figure 6.
func InterContinental(w io.Writer, boxes []analysis.InterContinentBox) {
	fmt.Fprintf(w, "Figure 6: access latency to nearest DC per target continent\n")
	fmt.Fprintf(w, "%-4s %-6s %8s %8s %8s %8s\n", "cc", "target", "q1", "median", "q3", "n")
	for _, b := range boxes {
		fmt.Fprintf(w, "%-4s %-6s %8.0f %8.0f %8.0f %8d\n",
			b.Country, b.TargetContinent, b.Box.Q1, b.Box.Median, b.Box.Q3, b.Box.N)
	}
}

// LastMile renders Figures 7a/7b (or Figure 19 when computed with
// nearestOnly) plus the global rows.
func LastMile(w io.Writer, imps, global []analysis.LastMileImpact, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s %-20s %10s %12s %8s\n", "cont", "category", "share %", "abs ms", "n")
	for _, im := range imps {
		fmt.Fprintf(w, "%-8s %-20s %10.1f %12.1f %8d\n",
			im.Continent, im.Category, im.SharePct.Median, im.AbsMs.Median, im.N)
	}
	for _, im := range global {
		fmt.Fprintf(w, "%-8s %-20s %10.1f %12.1f %8d\n",
			"Global", im.Category, im.SharePct.Median, im.AbsMs.Median, im.N)
	}
}

// CvGroups renders Figures 8 and 9.
func CvGroups(w io.Writer, groups []analysis.CvGroup, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s %-20s %10s %8s\n", "group", "category", "median Cv", "probes")
	for _, g := range groups {
		label := g.Country
		if label == "" {
			label = g.Continent.String()
		}
		fmt.Fprintf(w, "%-8s %-20s %10.2f %8d\n", label, g.Category, g.MedianCv, len(g.Cvs))
	}
}

// Interconnections renders Figure 10.
func Interconnections(w io.Writer, shares []analysis.InterconnectShare) {
	fmt.Fprintf(w, "Figure 10: ISP-cloud interconnections per provider\n")
	fmt.Fprintf(w, "%-6s %8s %8s %8s %8s\n", "prov", "direct", "1 AS", "2+ AS", "paths")
	for _, s := range shares {
		fmt.Fprintf(w, "%-6s %7.1f%% %7.1f%% %7.1f%% %8d\n",
			s.Provider, s.DirectPct, s.OneASPct, s.MultiASPct, s.N)
	}
}

// Pervasiveness renders Figure 11.
func Pervasiveness(w io.Writer, rows []analysis.PervasivenessRow) {
	fmt.Fprintf(w, "Figure 11: provider route pervasiveness per continent\n")
	fmt.Fprintf(w, "%-6s", "prov")
	for _, c := range geo.Continents() {
		fmt.Fprintf(w, " %6s", c)
	}
	fmt.Fprintf(w, " %8s\n", "paths")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s", r.Provider)
		for _, c := range geo.Continents() {
			if v, ok := r.PerContinent[c]; ok {
				fmt.Fprintf(w, " %6.2f", v)
			} else {
				fmt.Fprintf(w, " %6s", "-")
			}
		}
		fmt.Fprintf(w, " %8d\n", r.N)
	}
}

// Flattening renders the §2.1 AS-path-length view.
func Flattening(w io.Writer, rows []analysis.Flattening) {
	fmt.Fprintf(w, "Internet flattening: ASes on the path per provider\n")
	fmt.Fprintf(w, "%-6s %8s %8s %8s %8s\n", "prov", "mean", "median", "q3", "paths")
	for _, row := range rows {
		fmt.Fprintf(w, "%-6s %8.2f %8.0f %8.0f %8d\n",
			row.Provider, row.MeanASes, row.Box.Median, row.Box.Q3, row.N)
	}
}

// CaseStudy renders one Figure 12/13/17/18 pair: the peering matrix and
// the direct-vs-transit latency comparison.
func CaseStudy(w io.Writer, m analysis.PeeringMatrix, lat []analysis.PeeringLatency, label string) {
	fmt.Fprintf(w, "%s: peering of top ISPs in %s towards DCs in %s\n", label, m.VPCountry, m.DCCountry)
	provs := cloud.FigureProviderCodes()
	fmt.Fprintf(w, "%-28s", "ISP")
	for _, p := range provs {
		fmt.Fprintf(w, " %-10s", p)
	}
	fmt.Fprintln(w)
	for _, row := range m.Rows {
		fmt.Fprintf(w, "%-28s", fmt.Sprintf("%s (%s)", row.Name, row.ISP))
		for _, p := range provs {
			if cell, ok := row.Cells[p]; ok {
				fmt.Fprintf(w, " %-10s", fmt.Sprintf("%s %.0f%%", cell.Class, cell.Pct))
			} else {
				fmt.Fprintf(w, " %-10s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	if len(lat) > 0 {
		fmt.Fprintf(w, "latency by interconnection (median [q1-q3] ms):\n")
		for _, pl := range lat {
			fmt.Fprintf(w, "  %-6s direct %6.0f [%5.0f-%5.0f] (n=%d)  transit %6.0f [%5.0f-%5.0f] (n=%d)\n",
				pl.Provider,
				pl.Direct.Median, pl.Direct.Q1, pl.Direct.Q3, pl.NDirect,
				pl.Transit.Median, pl.Transit.Q1, pl.Transit.Q3, pl.NTransit)
		}
	}
}

// Closeness renders the Figure 14 probe-clustering view: the densest
// and sparsest ends of the per-country nearest-neighbour distances.
func Closeness(w io.Writer, rows []analysis.Closeness, edge int) {
	fmt.Fprintf(w, "Figure 14: probe closeness (median km to nearest in-country neighbour)\n")
	show := func(r analysis.Closeness) {
		fmt.Fprintf(w, "  %-4s %7.1f km  (%d probes)\n", r.Country, r.MedianNN, r.Probes)
	}
	for i := 0; i < edge && i < len(rows); i++ {
		show(rows[i])
	}
	if len(rows) > 2*edge {
		fmt.Fprintf(w, "  ...\n")
	}
	for i := len(rows) - edge; i < len(rows); i++ {
		if i < edge || i < 0 {
			continue
		}
		show(rows[i])
	}
}

// Protocols renders Figure 15.
func Protocols(w io.Writer, rows []analysis.ProtocolComparison) {
	fmt.Fprintf(w, "Figure 15: ICMP vs TCP per continent (per <country, DC> pair medians)\n")
	fmt.Fprintf(w, "%-4s %10s %10s %10s %8s\n", "cont", "tcp med", "icmp med", "gap", "pairs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4s %10.1f %10.1f %9.1f%% %8d\n",
			r.Continent, r.TCP.Median, r.ICMP.Median, r.MedianGapPct, r.Pairs)
	}
}

// Matched renders Figure 16.
func Matched(w io.Writer, rows []analysis.MatchedDiff) {
	fmt.Fprintf(w, "Figure 16: SC − Atlas within matched <country, ISP> groups\n")
	fmt.Fprintf(w, "%-4s %8s %10s %10s\n", "cont", "groups", "p50 diff", "atlas wins")
	for _, m := range rows {
		med, _ := stats.Median(m.Diffs)
		wins := 0
		for _, d := range m.Diffs {
			if d > 0 {
				wins++
			}
		}
		fmt.Fprintf(w, "%-4s %8d %10.1f %9.0f%%\n",
			m.Continent, m.MatchedGroups, med, 100*float64(wins)/float64(len(m.Diffs)))
	}
}

// ProviderConsistency renders the §8 cross-provider comparison.
func ProviderConsistency(w io.Writer, rows []analysis.ProviderConsistency) {
	fmt.Fprintf(w, "Provider consistency (nearest-DC medians per provider):\n")
	for _, r := range rows {
		fmt.Fprintf(w, "  %s spread %.1f ms, max KS %.2f:", r.Continent, r.MedianSpreadMs, r.MaxKS)
		for _, p := range r.Providers {
			fmt.Fprintf(w, " %s:%.0f", p.Provider, p.Box.Median)
		}
		fmt.Fprintln(w)
	}
}

// EdgeScenarios renders the §7 what-if placements.
func EdgeScenarios(w io.Writer, scenarios []edge.Scenario, verdicts []edge.Verdict) {
	fmt.Fprintf(w, "Edge what-if (§7): attainable latency per compute placement\n")
	fmt.Fprintf(w, "%-5s %-15s %9s %7s %7s %7s %8s\n", "cont", "placement", "median", "<MTP", "<HPL", "<HRT", "n")
	for _, s := range scenarios {
		fmt.Fprintf(w, "%-5s %-15s %7.1fms %6.0f%% %6.0f%% %6.0f%% %8d\n",
			s.Continent, s.Placement, s.Latency.Median,
			100*s.UnderMTP, 100*s.UnderHPL, 100*s.UnderHRT, s.N)
	}
	for _, v := range verdicts {
		verdict := "cloud suffices"
		if v.EdgeWorthwhile {
			verdict = "regional edge worthwhile"
		}
		fmt.Fprintf(w, "  %s: regional-edge gain %.1f ms — %s\n", v.Continent, v.GainMs, verdict)
	}
}

// FiveG renders the §7 wireless what-if.
func FiveG(w io.Writer, today, promised []edge.FiveG) {
	fmt.Fprintf(w, "5G what-if: share of accesses under MTP (20 ms)\n")
	fmt.Fprintf(w, "%-5s %18s %18s %18s\n", "cont", "early 5G @edge", "promised @edge", "promised via cloud")
	byCont := map[geo.Continent]edge.FiveG{}
	for _, row := range promised {
		byCont[row.Continent] = row
	}
	for _, row := range today {
		p := byCont[row.Continent]
		fmt.Fprintf(w, "%-5s %17.0f%% %17.0f%% %17.0f%%\n",
			row.Continent, 100*row.MTPAtLastMile, 100*p.MTPAtLastMile, 100*p.MTPViaCloud)
	}
}

// CampaignStats renders the §3.3 operational summary.
func CampaignStats(w io.Writer, label string, st measure.Stats) {
	conf := st.ConfidentCountries()
	sort.Strings(conf)
	fmt.Fprintf(w, "%s: %d requests, %d pings, %d traceroutes, %d countries, virtual duration %s\n",
		label, st.Requests, st.Pings, st.Traceroutes, st.CountriesCycled,
		st.VirtualDuration.Round(1e9))
	fmt.Fprintf(w, "  countries meeting the 2400-sample confidence bound: %d\n", len(conf))
}

// DataQuality renders the campaign's loss accounting — what the
// resilient engine absorbed on the way to a complete dataset. Quiet
// campaigns (no faults, no retries) print a single clean-run line.
func DataQuality(w io.Writer, label string, st measure.Stats) {
	fmt.Fprintf(w, "%s data quality:\n", label)
	// The fan-out bus ledger prints whenever a multi-sink campaign
	// engaged the bus — even on a clean run, because the high-water mark
	// is the capacity-planning number for the next campaign.
	bus := func() {
		if st.BusHighWater > 0 || st.BusStalls > 0 || st.BusDropped > 0 {
			fmt.Fprintf(w, "  fan-out bus: high-water %d, %d backpressure stalls, %d deliveries dropped to spill\n",
				st.BusHighWater, st.BusStalls, st.BusDropped)
		}
	}
	if st.Attempts == st.Pings && st.Lost == 0 && st.TracesLost == 0 &&
		st.ProbeDropouts == 0 && st.SinkRetries == 0 && !st.SinkDegraded {
		fmt.Fprintf(w, "  clean run: %d attempts, all delivered\n", st.Attempts)
		bus()
		return
	}
	fmt.Fprintf(w, "  pings: %d attempts → %d delivered, %d retried, %d lost (%.2f%% loss), %d timed out\n",
		st.Attempts, st.Pings, st.Retries, st.Lost, 100*st.LossRate(), st.TimedOut)
	fmt.Fprintf(w, "  traceroutes: %d delivered, %d lost\n", st.Traceroutes, st.TracesLost)
	fmt.Fprintf(w, "  probes: %d dropped out mid-cycle, %d quarantine trips, %d selections benched\n",
		st.ProbeDropouts, st.Quarantined, st.QuarantineSkipped)
	if st.SinkRetries > 0 || st.SinkDegraded {
		fmt.Fprintf(w, "  sink: %d transient errors retried, degraded=%v, %d records spilled to memory\n",
			st.SinkRetries, st.SinkDegraded, st.Spilled)
	}
	bus()
	if st.Checkpoints > 0 || st.CheckpointResumes > 0 {
		fmt.Fprintf(w, "  checkpoints: %d taken, %d resumes\n", st.Checkpoints, st.CheckpointResumes)
	}
}

// Rule prints a section separator.
func Rule(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
