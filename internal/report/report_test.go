package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asn"
	"repro/internal/cloud"
	"repro/internal/edge"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

func box(vals ...float64) stats.FiveNum {
	s, _ := stats.Summarize(vals)
	return s
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, cloud.NewInventory())
	out := buf.String()
	for _, want := range []string{"Amazon EC2", "Private", "Semi", "Public", "195", "IBM Cloud"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 13 { // title + header + 10 providers + total
		t.Errorf("Table 1 lines = %d", lines)
	}
}

func TestLatencyMapRenders(t *testing.T) {
	var buf bytes.Buffer
	LatencyMap(&buf, []analysis.CountryLatency{
		{Country: "DE", Continent: geo.EU, MedianMs: 34.5, Band: analysis.Band30to60, Samples: 120},
		{Country: "EG", Continent: geo.AF, MedianMs: 280, Band: analysis.BandOver250, Samples: 45},
	})
	out := buf.String()
	if !strings.Contains(out, "DE") || !strings.Contains(out, ">250 ms") {
		t.Errorf("map output wrong:\n%s", out)
	}
	if !strings.Contains(out, "takeaway: 2 countries; <MTP 0, <HPL 1, <HRT 1") {
		t.Errorf("takeaway wrong:\n%s", out)
	}
}

func TestFigureRenderersNonEmpty(t *testing.T) {
	cdf, _ := stats.NewCDF([]float64{10, 20, 30, 200})
	checks := []struct {
		name string
		fn   func(*bytes.Buffer)
		want string
	}{
		{"fig4", func(b *bytes.Buffer) {
			ContinentCDFs(b, []analysis.ContinentDistribution{
				{Continent: geo.EU, CDF: cdf, UnderMTP: 0.25, UnderHPL: 0.75, UnderHRT: 1, N: 4},
			}, 4)
		}, "75.0%"},
		{"fig5", func(b *bytes.Buffer) {
			PlatformDiffs(b, []analysis.PlatformDiff{
				{Continent: geo.AF, Diffs: []float64{5, 10, 20}, AtlasFasterShare: 1, NSC: 3, NAtlas: 3},
			})
		}, "100%"},
		{"fig6", func(b *bytes.Buffer) {
			InterContinental(b, []analysis.InterContinentBox{
				{Country: "EG", TargetContinent: geo.EU, Box: box(60, 70, 80)},
			})
		}, "EG"},
		{"fig7", func(b *bytes.Buffer) {
			LastMile(b, []analysis.LastMileImpact{
				{Continent: geo.EU, Category: analysis.CatHomeUserISP, SharePct: box(40, 50), AbsMs: box(20, 25), N: 2},
			}, []analysis.LastMileImpact{
				{Category: analysis.CatCell, SharePct: box(45), AbsMs: box(23), N: 1},
			}, "Figure 7")
		}, "Global"},
		{"fig8", func(b *bytes.Buffer) {
			CvGroups(b, []analysis.CvGroup{
				{Continent: geo.AS, Category: analysis.CatCell, Cvs: []float64{0.4, 0.6}, MedianCv: 0.5},
			}, "Figure 8")
		}, "0.50"},
		{"fig9", func(b *bytes.Buffer) {
			CvGroups(b, []analysis.CvGroup{
				{Country: "JP", Category: analysis.CatHomeUserISP, Cvs: []float64{0.5}, MedianCv: 0.5},
			}, "Figure 9")
		}, "JP"},
		{"fig10", func(b *bytes.Buffer) {
			Interconnections(b, []analysis.InterconnectShare{
				{Provider: "GCP", DirectPct: 80, OneASPct: 15, MultiASPct: 5, N: 1000},
			})
		}, "GCP"},
		{"fig11", func(b *bytes.Buffer) {
			Pervasiveness(b, []analysis.PervasivenessRow{
				{Provider: "MSFT", PerContinent: map[geo.Continent]float64{geo.EU: 0.66}, N: 10},
			})
		}, "0.66"},
		{"fig15", func(b *bytes.Buffer) {
			Protocols(b, []analysis.ProtocolComparison{
				{Continent: geo.EU, TCP: box(30), ICMP: box(31), MedianGapPct: 2.1, Pairs: 50},
			})
		}, "2.1%"},
		{"fig16", func(b *bytes.Buffer) {
			Matched(b, []analysis.MatchedDiff{
				{Continent: geo.NA, Diffs: []float64{3, 6}, MatchedGroups: 4},
			})
		}, "100%"},
	}
	for _, c := range checks {
		var buf bytes.Buffer
		c.fn(&buf)
		if !strings.Contains(buf.String(), c.want) {
			t.Errorf("%s: output missing %q:\n%s", c.name, c.want, buf.String())
		}
	}
}

func TestCaseStudyRenders(t *testing.T) {
	var buf bytes.Buffer
	m := analysis.PeeringMatrix{
		VPCountry: "DE", DCCountry: "GB",
		Rows: []analysis.ISPRow{{
			ISP: asn.Number(3320), Name: "Deutsche Telekom", N: 100,
			Cells: map[string]analysis.MatrixCell{
				"AMZN": {Class: pipeline.ClassDirect, Pct: 97, N: 40},
				"LIN":  {Class: pipeline.ClassPrivate, Pct: 88, N: 12},
			},
		}},
	}
	lat := []analysis.PeeringLatency{{
		Provider: "AMZN", Direct: box(30, 32, 35), Transit: box(33, 36, 40),
		NDirect: 3, NTransit: 3,
	}}
	CaseStudy(&buf, m, lat, "Figure 12 (DE→UK)")
	out := buf.String()
	for _, want := range []string{"Deutsche Telekom", "direct 97%", "1 AS 88%", "AMZN", "transit"} {
		if !strings.Contains(out, want) {
			t.Errorf("case study missing %q:\n%s", want, out)
		}
	}
}

func TestDensityAndStatsRender(t *testing.T) {
	var buf bytes.Buffer
	Density(&buf, analysis.FleetDensity{
		Platform: "speedchecker", Total: 100,
		PerContinent: map[geo.Continent]int{geo.EU: 60, geo.AS: 40},
		PerCountry:   []analysis.CountryDensity{{Country: "DE", Probes: 30}, {Country: "JP", Probes: 20}},
	}, 1)
	if !strings.Contains(buf.String(), "DE:30") || strings.Contains(buf.String(), "JP:20") {
		t.Errorf("topN cut wrong:\n%s", buf.String())
	}
	buf.Reset()
	CampaignStats(&buf, "test", measure.Stats{
		Requests: 5, Pings: 10, Traceroutes: 20, CountriesCycled: 3,
		SamplesPerCountry: map[string]int{"DE": 5000},
	})
	if !strings.Contains(buf.String(), "confidence bound: 1") {
		t.Errorf("stats render wrong:\n%s", buf.String())
	}
	buf.Reset()
	Rule(&buf, "Title")
	if !strings.Contains(buf.String(), "=====") {
		t.Errorf("rule wrong: %q", buf.String())
	}
}

func TestDataQualityRenders(t *testing.T) {
	// A clean campaign collapses to one line.
	var buf bytes.Buffer
	DataQuality(&buf, "clean", measure.Stats{Attempts: 10, Pings: 10})
	if !strings.Contains(buf.String(), "clean run: 10 attempts") {
		t.Errorf("clean render wrong:\n%s", buf.String())
	}
	// A faulted campaign itemizes its losses.
	buf.Reset()
	DataQuality(&buf, "chaos", measure.Stats{
		Attempts: 120, Pings: 100, Retries: 15, Lost: 5, TimedOut: 8,
		Traceroutes: 180, TracesLost: 20, ProbeDropouts: 4,
		Quarantined: 2, QuarantineSkipped: 3,
		SinkRetries: 6, SinkDegraded: true, Spilled: 40,
		Checkpoints: 2, CheckpointResumes: 1,
	})
	out := buf.String()
	for _, want := range []string{
		"120 attempts", "100 delivered", "15 retried", "5 lost", "8 timed out",
		"180 delivered, 20 lost", "4 dropped out", "2 quarantine trips",
		"6 transient errors retried", "40 records spilled", "2 taken, 1 resumes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("data quality render missing %q:\n%s", want, out)
		}
	}
	// A multi-sink campaign prints the bus ledger even on a clean run
	// (the high-water mark sizes the next campaign's buffer) — and a
	// single-sink run, which never engages the bus, stays silent.
	buf.Reset()
	DataQuality(&buf, "fanout", measure.Stats{
		Attempts: 10, Pings: 10, BusHighWater: 7, BusStalls: 2, BusDropped: 1,
	})
	if !strings.Contains(buf.String(), "fan-out bus: high-water 7, 2 backpressure stalls, 1 deliveries dropped to spill") {
		t.Errorf("bus ledger missing:\n%s", buf.String())
	}
	buf.Reset()
	DataQuality(&buf, "single", measure.Stats{Attempts: 10, Pings: 10})
	if strings.Contains(buf.String(), "fan-out bus") {
		t.Errorf("bus ledger printed without bus engagement:\n%s", buf.String())
	}
}

func TestExtensionRenderers(t *testing.T) {
	var buf bytes.Buffer
	GeoDensities(&buf, []analysis.GeoDensity{{
		Continent: geo.EU, SCPerMKm2: 7000, AtlasPerMKm2: 550, Ratio: 12.9,
		DCsPerMKm2: 5.1, SCProbes: 72000, AtlasProbes: 5574, Datacenters: 52,
	}})
	if !strings.Contains(buf.String(), "12.9x") {
		t.Errorf("geoDensity render wrong:\n%s", buf.String())
	}
	buf.Reset()
	Flattening(&buf, []analysis.Flattening{{Provider: "GCP", MeanASes: 2.31, Box: box(2, 2, 3), N: 100}})
	if !strings.Contains(buf.String(), "2.31") {
		t.Errorf("flattening render wrong:\n%s", buf.String())
	}
	buf.Reset()
	ProviderConsistency(&buf, []analysis.ProviderConsistency{{
		Continent: geo.EU, MedianSpreadMs: 10.1, MaxKS: 0.35,
		Providers: []analysis.ProviderLatency{{Provider: "AMZN", Box: box(37), N: 10}},
	}})
	if !strings.Contains(buf.String(), "AMZN:37") {
		t.Errorf("consistency render wrong:\n%s", buf.String())
	}
	buf.Reset()
	EdgeScenarios(&buf, []edge.Scenario{{
		Continent: geo.AF, Placement: edge.PlacementCloud,
		Latency: box(130, 140, 150), UnderMTP: 0, UnderHPL: 0.3, UnderHRT: 0.9, N: 10,
	}}, []edge.Verdict{{Continent: geo.AF, CloudMedianMs: 140, EdgeMedianMs: 27, GainMs: 113, EdgeWorthwhile: true}})
	if !strings.Contains(buf.String(), "regional edge worthwhile") {
		t.Errorf("edge render wrong:\n%s", buf.String())
	}
	buf.Reset()
	FiveG(&buf, []edge.FiveG{{Continent: geo.EU, MTPAtLastMile: 0.4, MTPViaCloud: 0.1, N: 5}},
		[]edge.FiveG{{Continent: geo.EU, MTPAtLastMile: 0.98, MTPViaCloud: 0.2, N: 5}})
	if !strings.Contains(buf.String(), "98%") {
		t.Errorf("5G render wrong:\n%s", buf.String())
	}
	buf.Reset()
	Closeness(&buf, []analysis.Closeness{
		{Country: "DE", Probes: 500, MedianNN: 22.5},
		{Country: "CA", Probes: 40, MedianNN: 310.0},
	}, 1)
	out := buf.String()
	if !strings.Contains(out, "DE") || !strings.Contains(out, "CA") {
		t.Errorf("closeness render wrong:\n%s", out)
	}
}
